// ABL1 — ablation of the -xhwcprof nop padding (paper §2.1): without
// padding between memory ops and join nodes, counter skid carries more
// deliveries across branch targets, so more events become (Unresolvable).
// This motivates the codegen change the paper describes.
#include <cstdio>

#include "analyze/analysis.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main() {
  std::puts("== ABL1: nop-padding ablation (pad_nops sweep) ==");
  std::puts("  pad  ecstall-eff  ecrm-eff  instr-overhead");
  u64 base_instr = 0;
  for (u32 pad : {0u, 1u, 2u, 4u}) {
    auto setup = mcfsim::PaperSetup::small();
    setup.build.compile.pad_nops = pad;
    const auto exps = mcfsim::collect_paper_experiments(setup);
    analyze::Analysis a({&exps.ex1, &exps.ex2});
    double eff_stall = 0, eff_rm = 0;
    for (const auto& r : a.effectiveness()) {
      if (r.metric == static_cast<size_t>(machine::HwEvent::EC_stall_cycles)) {
        eff_stall = r.effectiveness();
      }
      if (r.metric == static_cast<size_t>(machine::HwEvent::EC_rd_miss)) {
        eff_rm = r.effectiveness();
      }
    }
    if (pad == 0) base_instr = exps.ex1.total_instructions;
    const double ovh = 100.0 * (static_cast<double>(exps.ex1.total_instructions) /
                                    static_cast<double>(base_instr) -
                                1.0);
    std::printf("  %3u    %7.1f%%    %6.1f%%        %+5.2f%%\n", pad, 100.0 * eff_stall,
                100.0 * eff_rm, ovh);
  }
  std::puts("\nMore padding -> higher effectiveness at a small instruction cost;");
  std::puts("the paper ships with padding on under -xhwcprof.");
  return 0;
}
