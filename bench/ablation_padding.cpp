// ABL1 — ablation of the -xhwcprof nop padding (paper §2.1): without
// padding between memory ops and join nodes, counter skid carries more
// deliveries across branch targets, so more events become (Unresolvable).
// This motivates the codegen change the paper describes.
#include <cstdio>

#include <string>

#include "analyze/analysis.hpp"
#include "bench_json.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "ablation_padding");
  std::puts("== ABL1: nop-padding ablation (pad_nops sweep) ==");
  std::puts("  pad  ecstall-eff  ecrm-eff  instr-overhead");
  u64 base_instr = 0;
  std::string rows;
  for (u32 pad : {0u, 1u, 2u, 4u}) {
    auto setup = mcfsim::PaperSetup::small();
    setup.build.compile.pad_nops = pad;
    const auto exps = mcfsim::collect_paper_experiments(setup);
    analyze::Analysis a({&exps.ex1, &exps.ex2});
    double eff_stall = 0, eff_rm = 0;
    for (const auto& r : a.effectiveness()) {
      if (r.metric == static_cast<size_t>(machine::HwEvent::EC_stall_cycles)) {
        eff_stall = r.effectiveness();
      }
      if (r.metric == static_cast<size_t>(machine::HwEvent::EC_rd_miss)) {
        eff_rm = r.effectiveness();
      }
    }
    if (pad == 0) base_instr = exps.ex1.total_instructions;
    const double ovh = 100.0 * (static_cast<double>(exps.ex1.total_instructions) /
                                    static_cast<double>(base_instr) -
                                1.0);
    std::printf("  %3u    %7.1f%%    %6.1f%%        %+5.2f%%\n", pad, 100.0 * eff_stall,
                100.0 * eff_rm, ovh);
    char row[160];
    std::snprintf(row, sizeof(row),
                  "%s{\"pad_nops\":%u,\"eff_ecstall_pct\":%.2f,\"eff_ecrm_pct\":%.2f,"
                  "\"instr_overhead_pct\":%.3f}",
                  rows.empty() ? "" : ",", pad, 100.0 * eff_stall, 100.0 * eff_rm, ovh);
    rows += row;
  }
  std::puts("\nMore padding -> higher effectiveness at a small instruction cost;");
  std::puts("the paper ships with padding on under -xhwcprof.");
  json_out.emit("{\"bench\":\"ablation_padding\",\"sweep\":[%s]}", rows.c_str());
  return 0;
}
