// ABL2 — ablation of counter skid (paper §2.2.2): scaling the skid
// distribution shows why imprecise traps force the apropos backtracking
// design — with zero skid every counter is precise; with growing skid,
// validation rejects more candidates.
#include <cstdio>

#include <string>

#include "analyze/analysis.hpp"
#include "bench_json.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "ablation_skid");
  std::puts("== ABL2: counter-skid ablation (skid_scale sweep) ==");
  std::puts("  scale  ecstall-eff  ecrm-eff  ecref-eff");
  std::string rows;
  for (double scale : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    auto setup = mcfsim::PaperSetup::small();
    setup.cpu.skid_scale = scale;
    const auto exps = mcfsim::collect_paper_experiments(setup);
    analyze::Analysis a({&exps.ex1, &exps.ex2});
    double eff[analyze::kNumMetrics] = {};
    for (const auto& r : a.effectiveness()) eff[r.metric] = r.effectiveness();
    std::printf("  %4.1f    %7.1f%%   %7.1f%%   %7.1f%%\n", scale,
                100.0 * eff[static_cast<size_t>(machine::HwEvent::EC_stall_cycles)],
                100.0 * eff[static_cast<size_t>(machine::HwEvent::EC_rd_miss)],
                100.0 * eff[static_cast<size_t>(machine::HwEvent::EC_ref)]);
    char row[160];
    std::snprintf(row, sizeof(row),
                  "%s{\"skid_scale\":%.1f,\"eff_ecstall_pct\":%.2f,\"eff_ecrm_pct\":%.2f,"
                  "\"eff_ecref_pct\":%.2f}",
                  rows.empty() ? "" : ",", scale,
                  100.0 * eff[static_cast<size_t>(machine::HwEvent::EC_stall_cycles)],
                  100.0 * eff[static_cast<size_t>(machine::HwEvent::EC_rd_miss)],
                  100.0 * eff[static_cast<size_t>(machine::HwEvent::EC_ref)]);
    rows += row;
  }
  std::puts("\nZero skid -> 100% everywhere (a precise-trap chip would not need");
  std::puts("backtracking); increasing skid degrades E$ refs fastest, matching the");
  std::puts("paper's observation that refs have the greatest skid.");
  json_out.emit("{\"bench\":\"ablation_skid\",\"sweep\":[%s]}", rows.c_str());
  return 0;
}
