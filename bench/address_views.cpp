// FW2 — paper §4 (future work): aggregate event data addresses by machine
// entity — memory segment, page, and E$ cache line.
#include <cstdio>

#include "analyze/reports.hpp"
#include "bench_json.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "address_views");
  std::puts("== FW2: address-space aggregation views (paper §4) ==");
  const auto setup = mcfsim::PaperSetup::standard();
  const auto exps = mcfsim::collect_paper_experiments(setup);
  analyze::Analysis a({&exps.ex1, &exps.ex2});
  const auto stall = static_cast<size_t>(machine::HwEvent::EC_stall_cycles);
  const std::string segments = analyze::render_segments(a);
  const std::string pages = analyze::render_pages(a, stall, 10);
  const std::string lines = analyze::render_cache_lines(a, stall, 10);
  std::fputs(segments.c_str(), stdout);
  std::puts("");
  std::fputs(pages.c_str(), stdout);
  std::puts("");
  std::fputs(lines.c_str(), stdout);
  std::puts("\nAll of MCF's costly references are heap accesses, spread over many");
  std::puts("pages — the concentration justifies the §3.3 large-page experiment.");
  json_out.emit(
      "{\"bench\":\"address_views\",\"events\":%zu,\"segments_bytes\":%zu,"
      "\"pages_bytes\":%zu,\"cache_lines_bytes\":%zu}",
      exps.ex1.events.size() + exps.ex2.events.size(), segments.size(), pages.size(),
      lines.size());
  return 0;
}
