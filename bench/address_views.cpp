// FW2 — paper §4 (future work): aggregate event data addresses by machine
// entity — memory segment, page, and E$ cache line.
#include <cstdio>

#include "analyze/reports.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main() {
  std::puts("== FW2: address-space aggregation views (paper §4) ==");
  const auto setup = mcfsim::PaperSetup::standard();
  const auto exps = mcfsim::collect_paper_experiments(setup);
  analyze::Analysis a({&exps.ex1, &exps.ex2});
  const auto stall = static_cast<size_t>(machine::HwEvent::EC_stall_cycles);
  std::fputs(analyze::render_segments(a).c_str(), stdout);
  std::puts("");
  std::fputs(analyze::render_pages(a, stall, 10).c_str(), stdout);
  std::puts("");
  std::fputs(analyze::render_cache_lines(a, stall, 10).c_str(), stdout);
  std::puts("\nAll of MCF's costly references are heap accesses, spread over many");
  std::puts("pages — the concentration justifies the §3.3 large-page experiment.");
  return 0;
}
