// BACKTRACK — throughput of overflow-event backtracking: the seed's dynamic
// per-event decode loop (`backtrack_dynamic`, O(window) per event) against
// the precomputed sa::BacktrackTable (one array load per event).
//
// The query stream replays every word-aligned delivered PC of the MCF image
// (the paper's case-study program) under both trigger kinds, with a
// deterministic pseudo-random register file per query — the same stream for
// both engines.  Before timing anything, every query is checked for exact
// agreement: candidate PC, found flag, EA-known flag, and the EA itself must
// be bit-identical.  A disagreement is a correctness bug, not a perf result,
// and exits 1 immediately.
//
// Emits one machine-readable JSON object on the last line.  Acceptance bar
// (ISSUE): table >= 2x dynamic throughput; exits 1 below that.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "collect/collector.hpp"
#include "mcfsim/mcfsim.hpp"
#include "sa/backtrack_table.hpp"

using namespace dsprof;
using collect::backtrack_dynamic;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best-of-N wall time of `fn` (seconds).
template <typename F>
double best_of(int n, F&& fn) {
  double best = 1e300;
  for (int i = 0; i < n; ++i) {
    const auto t0 = Clock::now();
    fn();
    const double s = seconds_since(t0);
    if (s < best) best = s;
  }
  return best;
}

struct Query {
  u64 delivered_pc;
  machine::TriggerKind kind;
  std::array<u64, 32> regs;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "backtrack_table");
  std::puts("== BACKTRACK: table-driven vs dynamic backtracking (MCF image) ==");
  const sym::Image img = mcfsim::build_mcf_image();
  constexpr u32 kWindow = 16;

  // Build the query stream: every delivered PC in text (plus the one-past-end
  // PC a trailing overflow can deliver), both trigger kinds, splitmix regs.
  std::vector<Query> queries;
  queries.reserve((img.text_words.size() + 1) * 2);
  u64 seed = 0x9e3779b97f4a7c15ULL;
  for (size_t w = 0; w <= img.text_words.size(); ++w) {
    for (const auto kind : {machine::TriggerKind::Load, machine::TriggerKind::LoadStore}) {
      Query q;
      q.delivered_pc = img.text_base + w * 4;
      q.kind = kind;
      q.regs[0] = 0;
      for (size_t r = 1; r < 32; ++r) q.regs[r] = seed = mix_u64(seed + r);
      queries.push_back(q);
    }
  }
  std::printf("image: %zu instructions   queries: %zu   window: %u\n",
              img.text_words.size(), queries.size(), kWindow);

  // Table construction (amortized once per image by the collector).
  const auto tb0 = Clock::now();
  const sa::BacktrackTable table = sa::BacktrackTable::build(img, kWindow);
  const double t_build = seconds_since(tb0);
  std::printf("table: %zu entries, %zu bytes, built in %.3f ms\n", table.num_entries(),
              table.size_bytes(), t_build * 1e3);

  // Correctness gate before any timing: bit-identical answers on every query.
  size_t n_found = 0, n_ea = 0;
  for (const auto& q : queries) {
    const sa::BacktrackAnswer d =
        backtrack_dynamic(img, q.delivered_pc, q.kind, q.regs, kWindow);
    const sa::BacktrackAnswer t = table.query(q.delivered_pc, q.kind, q.regs);
    if (d.found != t.found || d.candidate_pc != t.candidate_pc ||
        d.ea_known != t.ea_known || d.ea != t.ea) {
      std::fprintf(stderr,
                   "FATAL: engines disagree at pc 0x%llx kind %u: "
                   "dynamic{found=%d pc=0x%llx ea_known=%d ea=0x%llx} "
                   "table{found=%d pc=0x%llx ea_known=%d ea=0x%llx}\n",
                   (unsigned long long)q.delivered_pc, (unsigned)q.kind, d.found,
                   (unsigned long long)d.candidate_pc, d.ea_known,
                   (unsigned long long)d.ea, t.found,
                   (unsigned long long)t.candidate_pc, t.ea_known,
                   (unsigned long long)t.ea);
      return 1;
    }
    n_found += d.found ? 1 : 0;
    n_ea += d.ea_known ? 1 : 0;
  }
  std::printf("agreement: %zu/%zu queries bit-identical (%zu resolved, %zu with EA)\n",
              queries.size(), queries.size(), n_found, n_ea);

  // Timed passes.  The volatile sink keeps the answer live without letting
  // the compiler hoist anything out of the loop.
  volatile u64 sink = 0;
  const double t_dynamic = best_of(5, [&] {
    u64 acc = 0;
    for (const auto& q : queries) {
      const auto a = backtrack_dynamic(img, q.delivered_pc, q.kind, q.regs, kWindow);
      acc += a.candidate_pc + a.ea + (a.found ? 1 : 0);
    }
    sink = acc;
  });
  const double t_table = best_of(5, [&] {
    u64 acc = 0;
    for (const auto& q : queries) {
      const auto a = table.query(q.delivered_pc, q.kind, q.regs);
      acc += a.candidate_pc + a.ea + (a.found ? 1 : 0);
    }
    sink = acc;
  });
  (void)sink;

  const double dyn_qps = static_cast<double>(queries.size()) / t_dynamic;
  const double tab_qps = static_cast<double>(queries.size()) / t_table;
  const double speedup = tab_qps / dyn_qps;
  // Queries handled before table construction pays for itself.
  const double breakeven =
      t_build / ((t_dynamic - t_table) / static_cast<double>(queries.size()));

  std::printf("\n%-24s %12s %14s\n", "engine", "time (ms)", "queries/sec");
  std::printf("%-24s %12.2f %14.3e\n", "dynamic (decode loop)", t_dynamic * 1e3, dyn_qps);
  std::printf("%-24s %12.2f %14.3e\n", "table (precomputed)", t_table * 1e3, tab_qps);
  std::printf("\ntable vs dynamic speedup: %.2fx %s   break-even: %.0f queries\n", speedup,
              speedup >= 2.0 ? "(>= 2x: PASS)" : "(< 2x: FAIL)", breakeven);

  json_out.emit(
      "{\"bench\":\"backtrack_table\",\"workload\":\"mcf-image\",\"queries\":%zu,"
      "\"window\":%u,\"table_bytes\":%zu,\"build_ms\":%.3f,"
      "\"dynamic_queries_per_sec\":%.6e,\"table_queries_per_sec\":%.6e,"
      "\"speedup\":%.3f,\"breakeven_queries\":%.0f,\"agree\":true}",
      queries.size(), kWindow, table.size_bytes(), t_build * 1e3, dyn_qps, tab_qps,
      speedup, breakeven);
  return speedup >= 2.0 ? 0 : 1;
}
