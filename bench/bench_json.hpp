// --json [path] support shared by every bench/ target.
//
// Uniform contract (scripts/check.sh relies on it): each bench prints its
// human-readable summary on stdout and finishes with exactly one
// machine-readable JSON object on the last line. JsonSink routes that
// object: it always stays the last stdout line, and `--json <path>`
// additionally writes it to <path>; a bare `--json` defaults to
// BENCH_<name>.json in the current directory. The flag is consumed from
// argv so benches with their own flags can parse the rest.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <string>

namespace dsprof::bench {

class JsonSink {
 public:
  JsonSink(int& argc, char** argv, const std::string& bench_name) {
    int w = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json") {
        path_ = "BENCH_" + bench_name + ".json";
        if (i + 1 < argc && argv[i + 1][0] != '-') path_ = argv[++i];
      } else {
        argv[w++] = argv[i];
      }
    }
    argc = w;
  }

  /// printf-style: format the bench's one JSON object, print it as the
  /// last stdout line, and mirror it to the --json file when requested.
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((format(printf, 2, 3)))
#endif
  void emit(const char* fmt, ...) const {
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string s(n > 0 ? static_cast<size_t>(n) : 0, '\0');
    if (n > 0) std::vsnprintf(s.data(), s.size() + 1, fmt, ap2);
    va_end(ap2);
    std::printf("%s\n", s.c_str());
    if (!path_.empty()) {
      std::ofstream out(path_);
      out << s << "\n";
    }
  }

 private:
  std::string path_;
};

}  // namespace dsprof::bench
