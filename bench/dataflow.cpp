// DATAFLOW — throughput of the static dataflow pipeline (sa/dataflow.hpp,
// sa/loops.hpp): ProgramFacts + liveness + reaching definitions +
// attribution coverage + dominators/loops/strides, end to end over the MCF
// case-study images.
//
// The analyses run once per image at verify time (s3verify) and before any
// simulation is spent, so the bar is absolute throughput, not a speedup:
// the whole pipeline must clear 1M instrs/s — orders of magnitude faster
// than simulating the image even once. Before timing, the coverage facts
// are gated: both hwcprof MCF images must be >= 90% statically attributable
// (the same floor scripts/check.sh enforces via s3verify --json).
//
// Emits one machine-readable JSON object on the last line.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "mcfsim/mcfsim.hpp"
#include "sa/cfg.hpp"
#include "sa/dataflow.hpp"
#include "sa/loops.hpp"

using namespace dsprof;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

template <typename F>
double best_of(int n, F&& fn) {
  double best = 1e300;
  for (int i = 0; i < n; ++i) {
    const auto t0 = Clock::now();
    fn();
    const double s = seconds_since(t0);
    if (s < best) best = s;
  }
  return best;
}

constexpr u32 kWindow = 16;
constexpr double kCoverageFloor = 0.90;
constexpr double kThroughputFloor = 1e6;  // instrs/s, full pipeline

/// One full static-analysis pipeline pass; returns a checksum so nothing
/// gets optimized away.
u64 run_pipeline(const sym::Image& img, const sa::Cfg& cfg,
                 const sa::BacktrackTable& table) {
  const sa::ProgramFacts pf = sa::ProgramFacts::build(img, cfg);
  const sa::Liveness lv = sa::Liveness::build(pf);
  const sa::ReachingDefs rd = sa::ReachingDefs::build(pf);
  const sa::AttributionCoverage cov = sa::AttributionCoverage::build(img, cfg, table);
  const sa::LoopAnalysis la = sa::LoopAnalysis::build(pf, img);
  return lv.solver_iterations() + rd.def_sites().size() + cov.attributable() +
         la.loops().size();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "dataflow");
  std::puts("== DATAFLOW: static-analysis pipeline throughput (MCF images) ==");

  struct Target {
    std::string name;
    sym::Image img;
  };
  std::vector<Target> targets;
  targets.push_back({"mcf", mcfsim::build_mcf_image()});
  {
    mcfsim::BuildOptions bo;
    bo.optimized_node_layout = true;
    bo.align_heap_arrays = true;
    targets.push_back({"mcf-opt", mcfsim::build_mcf_image(bo)});
  }

  size_t total_instrs = 0;
  std::vector<double> fractions;
  bool coverage_ok = true;
  std::vector<sa::Cfg> cfgs;
  std::vector<sa::BacktrackTable> tables;
  for (const auto& t : targets) {
    cfgs.push_back(sa::Cfg::build(t.img));
    tables.push_back(sa::BacktrackTable::build(t.img, kWindow));
    const sa::AttributionCoverage cov =
        sa::AttributionCoverage::build(t.img, cfgs.back(), tables.back());
    const sa::ProgramFacts pf = sa::ProgramFacts::build(t.img, cfgs.back());
    const sa::LoopAnalysis la = sa::LoopAnalysis::build(pf, t.img);
    size_t strided = 0;
    for (const auto& l : la.loops()) {
      for (const auto& m : l.mem_refs) strided += m.has_stride ? 1 : 0;
    }
    total_instrs += t.img.text_words.size();
    fractions.push_back(cov.fraction());
    coverage_ok = coverage_ok && cov.fraction() >= kCoverageFloor;
    std::printf(
        "%-8s %5zu instrs  coverage %zu/%zu (%.1f%%)  %zu loop(s), %zu strided ref(s)%s\n",
        t.name.c_str(), t.img.text_words.size(), cov.attributable(),
        cov.reachable_mem_ops(), cov.fraction() * 100.0, la.loops().size(), strided,
        la.irreducible() ? "  [irreducible]" : "");
  }
  if (!coverage_ok) {
    std::fprintf(stderr, "FATAL: coverage below the %.0f%% floor\n",
                 kCoverageFloor * 100.0);
    return 1;
  }

  volatile u64 sink = 0;
  const double t_pipeline = best_of(5, [&] {
    u64 acc = 0;
    for (size_t i = 0; i < targets.size(); ++i) {
      acc += run_pipeline(targets[i].img, cfgs[i], tables[i]);
    }
    sink = acc;
  });
  (void)sink;

  const double instrs_per_sec = static_cast<double>(total_instrs) / t_pipeline;
  std::printf("\npipeline: %zu instrs over %zu images in %.2f ms  ->  %.3e instrs/s %s\n",
              total_instrs, targets.size(), t_pipeline * 1e3, instrs_per_sec,
              instrs_per_sec >= kThroughputFloor ? "(>= 1e6: PASS)" : "(< 1e6: FAIL)");

  json_out.emit(
      "{\"bench\":\"dataflow\",\"workload\":\"mcf-images\",\"images\":%zu,"
      "\"instrs\":%zu,\"window\":%u,\"pipeline_ms\":%.3f,"
      "\"pipeline_instrs_per_sec\":%.6e,\"coverage_mcf\":%.6f,"
      "\"coverage_mcf_opt\":%.6f,\"coverage_floor\":%.2f,"
      "\"throughput_floor\":%.1e,\"pass\":%s}",
      targets.size(), total_instrs, kWindow, t_pipeline * 1e3, instrs_per_sec,
      fractions[0], fractions[1], kCoverageFloor, kThroughputFloor,
      instrs_per_sec >= kThroughputFloor ? "true" : "false");
  return instrs_per_sec >= kThroughputFloor ? 0 : 1;
}
