// EFF — paper §3.2.5: apropos backtracking effectiveness per counter
// (100% - (Unresolvable) - (Unascertainable)), plus ground-truth accuracy
// that only the simulator can provide: how often the candidate trigger PC
// is exactly the true trigger, and how often it names the right data object.
//
// Paper: >99% (ecstall), ~100% (ecrm), 100% (dtlbm, precise), ~94% (ecref,
// greatest skid); "accuracies of nearly 100%" for well-understood events.
#include <cstdio>
#include <map>

#include "analyze/reports.hpp"
#include "bench_json.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "effectiveness");
  std::puts("== EFF: backtracking effectiveness & ground-truth accuracy ==");
  const auto setup = mcfsim::PaperSetup::standard();
  const auto exps = mcfsim::collect_paper_experiments(setup);
  analyze::Analysis a({&exps.ex1, &exps.ex2});
  std::fputs(analyze::render_effectiveness(a).c_str(), stdout);

  std::puts("\n-- ground truth (simulator-only oracle) --");
  const sym::SymbolTable& st = exps.ex1.image.symtab;
  u64 gt_events = 0, gt_exact = 0, gt_object = 0;
  for (const experiment::Experiment* ex : {&exps.ex1, &exps.ex2}) {
    std::map<u64, machine::TruthRecord> truth;
    for (const auto& t : ex->truth) truth[t.seq] = t;
    std::map<machine::HwEvent, std::array<u64, 3>> acc;  // [events, exact, same-object]
    for (const auto& e : ex->events) {
      if (e.pic == machine::kClockPic || !e.has_candidate) continue;
      auto& c = acc[e.event];
      ++c[0];
      const auto& t = truth.at(e.seq);
      if (e.candidate_pc == t.trigger_pc) ++c[1];
      const sym::MemRef* cr = st.memref_for(e.candidate_pc);
      const sym::MemRef* tr = st.memref_for(t.trigger_pc);
      if (cr && tr && cr->kind == tr->kind && cr->aggregate == tr->aggregate) ++c[2];
    }
    for (const auto& [ev, c] : acc) {
      std::printf("  %-8s events %6llu  exact-PC %5.1f%%  same-object %5.1f%%\n",
                  machine::hw_event_info(ev).name, static_cast<unsigned long long>(c[0]),
                  100.0 * static_cast<double>(c[1]) / static_cast<double>(c[0]),
                  100.0 * static_cast<double>(c[2]) / static_cast<double>(c[0]));
      gt_events += c[0];
      gt_exact += c[1];
      gt_object += c[2];
    }
  }
  double eff[analyze::kNumMetrics] = {};
  for (const auto& r : a.effectiveness()) eff[r.metric] = r.effectiveness();
  json_out.emit(
      "{\"bench\":\"effectiveness\",\"eff_ecstall_pct\":%.2f,\"eff_ecrm_pct\":%.2f,"
      "\"eff_ecref_pct\":%.2f,\"eff_dtlbm_pct\":%.2f,\"ground_truth_events\":%llu,"
      "\"exact_pc_pct\":%.2f,\"same_object_pct\":%.2f}",
      100.0 * eff[static_cast<size_t>(machine::HwEvent::EC_stall_cycles)],
      100.0 * eff[static_cast<size_t>(machine::HwEvent::EC_rd_miss)],
      100.0 * eff[static_cast<size_t>(machine::HwEvent::EC_ref)],
      100.0 * eff[static_cast<size_t>(machine::HwEvent::DTLB_miss)],
      static_cast<unsigned long long>(gt_events),
      gt_events ? 100.0 * static_cast<double>(gt_exact) / static_cast<double>(gt_events) : 0.0,
      gt_events ? 100.0 * static_cast<double>(gt_object) / static_cast<double>(gt_events)
                : 0.0);
  return 0;
}
