// OPT (closed loop) — the er_opt feedback-directed layout optimizer run
// end-to-end, compared against the hand-tuned fixes it is meant to replace:
//   1. churn: auto plan vs the hand-written pack-the-hot-pair layout
//      (the automatic plan must match the hand fix within 2% relative)
//   2. mcf-small: the paper's §3.3 case study driven by the loop — the
//      headline speedup plus the per-metric deltas with significance.
// Exits nonzero if the auto plan falls short of the hand-tuned reference or
// the mcf loop fails to find a significant improvement, so check.sh can gate
// on it.
#include <cstdio>

#include "analyze/metrics.hpp"
#include "bench_json.hpp"
#include "opt/driver.hpp"

using namespace dsprof;

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "er_opt");
  std::puts("== OPT: er_opt closed-loop layout optimizer ==");

  // -- churn: auto vs hand-tuned -------------------------------------------
  const opt::Workload churn = opt::make_churn_workload();
  const opt::LoopResult cr = opt::run_loop(churn);
  const opt::LayoutPlan hand = opt::churn_hand_plan();
  const sym::Image hand_img = churn.build(&hand);
  mem::Memory hand_mem;
  hand_img.load_into(hand_mem);
  machine::Cpu hand_cpu(hand_mem, churn.cpu_for(&hand));
  hand_cpu.set_truth_log_enabled(false);
  hand_cpu.set_pc(hand_img.entry);
  const u64 hand_cycles = hand_cpu.run().cycles;
  const double hand_pct =
      100.0 * (1.0 - static_cast<double>(hand_cycles) /
                         static_cast<double>(cr.baseline_cycles));
  std::printf("  churn  baseline %llu cycles\n",
              static_cast<unsigned long long>(cr.baseline_cycles));
  std::printf("    auto plan  %12llu cycles   speedup %5.1f%%\n",
              static_cast<unsigned long long>(cr.optimized_cycles), cr.speedup_pct);
  std::printf("    hand plan  %12llu cycles   speedup %5.1f%%\n",
              static_cast<unsigned long long>(hand_cycles), hand_pct);
  // Acceptance: auto within 2% relative of the hand-tuned fix (or better).
  const bool churn_ok = cr.speedup_pct >= hand_pct * 0.98;

  // -- mcf-small: the full paper loop --------------------------------------
  const opt::Workload mcf = opt::make_mcf_workload(true);
  const opt::LoopResult mr = opt::run_loop(mcf);
  std::printf("  mcf-small  baseline %llu cycles, speedup %.1f%% (paper: 20.7%% on mcf)\n",
              static_cast<unsigned long long>(mr.baseline_cycles), mr.speedup_pct);
  for (const auto& d : mr.deltas) {
    std::printf("    %-8s %14.0f -> %14.0f   %+6.1f%%  z=%5.1f%s\n", d.name.c_str(),
                d.before, d.after, d.delta_pct, d.z,
                d.significant ? "  significant" : "");
  }
  const opt::MetricDelta* ucpu = mr.delta_for(analyze::kUserCpuMetric);
  const bool mcf_ok = mr.speedup_pct > 0 && ucpu != nullptr && ucpu->delta_pct > 0 &&
                      ucpu->significant;

  if (!churn_ok) std::puts("FAIL: auto churn plan short of the hand-tuned reference");
  if (!mcf_ok) std::puts("FAIL: mcf-small loop found no significant improvement");

  json_out.emit(
      "{\"bench\":\"er_opt\",\"churn\":{\"baseline_cycles\":%llu,"
      "\"auto_speedup_pct\":%.2f,\"hand_speedup_pct\":%.2f,\"auto_within_2pct\":%s},"
      "\"mcf_small\":{\"baseline_cycles\":%llu,\"speedup_pct\":%.2f,"
      "\"ucpu_delta_pct\":%.2f,\"ucpu_z\":%.2f,\"significant\":%s}}",
      static_cast<unsigned long long>(cr.baseline_cycles), cr.speedup_pct, hand_pct,
      churn_ok ? "true" : "false",
      static_cast<unsigned long long>(mr.baseline_cycles), mr.speedup_pct,
      ucpu != nullptr ? ucpu->delta_pct : 0.0, ucpu != nullptr ? ucpu->z : 0.0,
      mcf_ok ? "true" : "false");
  return churn_ok && mcf_ok ? 0 : 1;
}
