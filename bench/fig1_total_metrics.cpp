// FIG1 — paper Figure 1: performance metrics for the artificial <Total>
// function, from the two MCF collect runs (§3.2.1).
//
// Paper values (550 s run, 900 MHz US-III Cu):
//   User CPU 549.4 s of 552.7 s LWP (~100% CPU bound)
//   E$ Stall 297.6 s  = 54% of User CPU
//   E$ Read Miss rate 6.4% (1.58e9 misses / 24.9e9 refs)
//   DTLB miss cost (at 100 cycles) ~28 s = ~5% of run
#include <cstdio>

#include "analyze/reports.hpp"
#include "bench_json.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "fig1_total_metrics");
  std::puts("== FIG1: <Total> metrics (paper Figure 1) ==");
  const auto setup = mcfsim::PaperSetup::standard();
  const auto exps = mcfsim::collect_paper_experiments(setup);
  analyze::Analysis a({&exps.ex1, &exps.ex2});
  std::fputs(analyze::render_overview(a).c_str(), stdout);

  const auto& t = a.total();
  const double stall = t[static_cast<size_t>(machine::HwEvent::EC_stall_cycles)];
  const double ucpu = t[analyze::kUserCpuMetric];
  const double ecrm = t[static_cast<size_t>(machine::HwEvent::EC_rd_miss)];
  const double ecref = t[static_cast<size_t>(machine::HwEvent::EC_ref)];
  const double dtlb = t[static_cast<size_t>(machine::HwEvent::DTLB_miss)];
  std::puts("\n-- paper-vs-measured (shape) --");
  std::printf("E$ stall / User CPU:    paper 0.54   measured %.2f\n",
              ucpu > 0 ? stall / ucpu : 0.0);
  std::printf("E$ read miss rate:      paper 6.4%%   measured %.1f%%\n",
              ecref > 0 ? 100.0 * ecrm / ecref : 0.0);
  std::printf("DTLB cost / run:        paper ~5%%    measured %.1f%%\n",
              100.0 * dtlb * 100.0 / static_cast<double>(a.run_cycles()));
  json_out.emit(
      "{\"bench\":\"fig1_total_metrics\",\"ecstall_over_ucpu\":%.4f,"
      "\"ec_rd_miss_rate_pct\":%.2f,\"dtlb_cost_pct\":%.2f,"
      "\"paper_ecstall_over_ucpu\":0.54,\"paper_ec_rd_miss_rate_pct\":6.4,"
      "\"paper_dtlb_cost_pct\":5.0}",
      ucpu > 0 ? stall / ucpu : 0.0, ecref > 0 ? 100.0 * ecrm / ecref : 0.0,
      100.0 * dtlb * 100.0 / static_cast<double>(a.run_cycles()));
  return 0;
}
