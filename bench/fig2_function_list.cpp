// FIG2 — paper Figure 2: the function list with exclusive User CPU, E$ Stall
// Cycles, E$ Read Misses, E$ Refs and DTLB Misses (§3.2.2).
//
// Paper shape: refresh_potential 51% CPU / 62% stall / 62% misses / 88% DTLB;
// primal_bea_mpp 23% CPU / 30% stall / 42% refs but only 4% misses (0.6%
// miss rate vs refresh_potential's 10.3%); price_out_impl 22% CPU.
#include <cstdio>

#include "analyze/reports.hpp"
#include "bench_json.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "fig2_function_list");
  std::puts("== FIG2: function list (paper Figure 2) ==");
  const auto setup = mcfsim::PaperSetup::standard();
  const auto exps = mcfsim::collect_paper_experiments(setup);
  analyze::Analysis a({&exps.ex1, &exps.ex2});
  std::fputs(analyze::render_function_list(a).c_str(), stdout);

  // Per-function E$ read miss rate, the paper's §3.2.2 observation.
  std::puts("\n-- E$ read miss rates --");
  const auto ecrm = static_cast<size_t>(machine::HwEvent::EC_rd_miss);
  const auto ecref = static_cast<size_t>(machine::HwEvent::EC_ref);
  double refresh_rate = 0.0, primal_rate = 0.0;
  for (const auto& f : a.functions(ecrm)) {
    if (f.mv[ecref] <= 0) continue;
    const double rate = 100.0 * f.mv[ecrm] / f.mv[ecref];
    if (f.name == "refresh_potential") refresh_rate = rate;
    if (f.name == "primal_bea_mpp") primal_rate = rate;
    if (f.mv[ecref] / a.total()[ecref] > 0.01) {
      std::printf("  %-24s %6.1f%%\n", f.name.c_str(), rate);
    }
  }
  std::puts("\npaper: refresh_potential dominates CPU/stalls/DTLB;");
  std::puts("       primal_bea_mpp has many refs but a ~17x lower miss rate.");

  // The §2.3 callers-callees view for the top function.
  std::puts("");
  std::fputs(analyze::render_callers_callees(a, "refresh_potential").c_str(), stdout);
  const auto& top = a.functions(analyze::kUserCpuMetric);
  json_out.emit(
      "{\"bench\":\"fig2_function_list\",\"top_function\":\"%s\","
      "\"refresh_potential_miss_rate_pct\":%.2f,"
      "\"primal_bea_mpp_miss_rate_pct\":%.2f,"
      "\"paper_miss_rates_pct\":[10.3,0.6]}",
      top.empty() ? "" : top.front().name.c_str(), refresh_rate, primal_rate);
  return 0;
}
