// FIG3 — paper Figure 3: annotated source of refresh_potential's critical
// loop, with User CPU and E$ Stall Cycles per source line (§3.2.3).
#include <cstdio>

#include "analyze/reports.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main() {
  std::puts("== FIG3: annotated source of refresh_potential (paper Figure 3) ==");
  const auto setup = mcfsim::PaperSetup::standard();
  const auto exps = mcfsim::collect_paper_experiments(setup);
  analyze::Analysis a({&exps.ex1, &exps.ex2});
  std::fputs(analyze::render_annotated_source(a, "refresh_potential").c_str(), stdout);
  std::puts("\npaper: the potential-update lines (node->potential = "
            "node->basic_arc->cost ...) carry the bulk of E$ stall time.");
  return 0;
}
