// FIG3 — paper Figure 3: annotated source of refresh_potential's critical
// loop, with User CPU and E$ Stall Cycles per source line (§3.2.3).
#include <cstdio>

#include "analyze/reports.hpp"
#include "bench_json.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "fig3_annotated_source");
  std::puts("== FIG3: annotated source of refresh_potential (paper Figure 3) ==");
  const auto setup = mcfsim::PaperSetup::standard();
  const auto exps = mcfsim::collect_paper_experiments(setup);
  analyze::Analysis a({&exps.ex1, &exps.ex2});
  const std::string report = analyze::render_annotated_source(a, "refresh_potential");
  std::fputs(report.c_str(), stdout);
  std::puts("\npaper: the potential-update lines (node->potential = "
            "node->basic_arc->cost ...) carry the bulk of E$ stall time.");
  json_out.emit(
      "{\"bench\":\"fig3_annotated_source\",\"function\":\"refresh_potential\","
      "\"events\":%zu,\"render_bytes\":%zu}",
      exps.ex1.events.size() + exps.ex2.events.size(), report.size());
  return 0;
}
