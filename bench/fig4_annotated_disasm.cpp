// FIG4 — paper Figure 4: annotated disassembly of refresh_potential's
// critical loop: per-instruction metrics, compiler-inserted nop padding,
// `*<branch target>` rows for blocked backtracking, and data descriptors
// ({structure:node -}.{long orientation}, {structure:arc -}.{cost_t=long
// cost}) on the memory-referencing instructions (§3.2.3).
#include <cstdio>

#include "analyze/reports.hpp"
#include "bench_json.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "fig4_annotated_disasm");
  std::puts("== FIG4: annotated disassembly of refresh_potential (paper Figure 4) ==");
  const auto setup = mcfsim::PaperSetup::standard();
  const auto exps = mcfsim::collect_paper_experiments(setup);
  analyze::Analysis a({&exps.ex1, &exps.ex2});
  const std::string report = analyze::render_annotated_disassembly(a, "refresh_potential");
  std::fputs(report.c_str(), stdout);
  std::puts("\npaper observations reproduced here:");
  std::puts(" * E$ stall lands on ldx instructions (backtracking found the trigger)");
  std::puts(" * User CPU appears on unlikely instructions (clock skid, uncorrectable)");
  std::puts(" * starred <branch target> rows absorb events blocked by control flow");
  std::puts(" * nop padding separates memory ops from join nodes (-xhwcprof)");
  json_out.emit(
      "{\"bench\":\"fig4_annotated_disasm\",\"function\":\"refresh_potential\","
      "\"events\":%zu,\"render_bytes\":%zu}",
      exps.ex1.events.size() + exps.ex2.events.size(), report.size());
  return 0;
}
