// FIG5 — paper Figure 5: PCs ranked by E$ Read Misses, named as
// "function + 0xOFFSET" with their data descriptors (§3.2.4).
//
// Paper shape: the top PC is in primal_bea_mpp ({structure:arc}.{ident});
// the next several are refresh_potential's node.orientation and arc.cost
// loads.
#include <cstdio>

#include "analyze/reports.hpp"
#include "bench_json.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "fig5_hot_pcs");
  std::puts("== FIG5: hot PCs by E$ Read Misses (paper Figure 5) ==");
  const auto setup = mcfsim::PaperSetup::standard();
  const auto exps = mcfsim::collect_paper_experiments(setup);
  analyze::Analysis a({&exps.ex1, &exps.ex2});
  const std::string report =
      analyze::render_hot_pcs(a, static_cast<size_t>(machine::HwEvent::EC_rd_miss), 17);
  std::fputs(report.c_str(), stdout);
  json_out.emit(
      "{\"bench\":\"fig5_hot_pcs\",\"metric\":\"ecrm\",\"top_n\":17,"
      "\"events\":%zu,\"render_bytes\":%zu}",
      exps.ex1.events.size() + exps.ex2.events.size(), report.size());
  return 0;
}
