// FIG6 — paper Figure 6: data objects ranked by E$ Stall Cycles, with the
// <Unknown> breakdown, plus the §3.2.5 backtracking-effectiveness figures.
//
// Paper shape: structure:arc 56% of stalls / 59% of read misses;
// structure:node 42% / 40%; <Unknown> ~2% of stalls but 19% of E$ refs
// (refs skid the most). Effectiveness: >99% stalls, ~100% read misses,
// 100% DTLB, ~94% refs.
#include <cstdio>

#include "analyze/reports.hpp"
#include "bench_json.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "fig6_data_objects");
  std::puts("== FIG6: data objects by E$ Stall Cycles (paper Figure 6) ==");
  const auto setup = mcfsim::PaperSetup::standard();
  const auto exps = mcfsim::collect_paper_experiments(setup);
  analyze::Analysis a({&exps.ex1, &exps.ex2});
  std::fputs(
      analyze::render_data_objects(a, static_cast<size_t>(machine::HwEvent::EC_stall_cycles))
          .c_str(),
      stdout);
  std::puts("");
  std::fputs(analyze::render_effectiveness(a).c_str(), stdout);
  std::puts("\npaper: arc+node carry ~98% of stalls; effectiveness 100% (dtlb),");
  std::puts("       ~100% (ecrm), >99% (ecstall), ~94% (ecref, largest skid).");
  double eff[analyze::kNumMetrics] = {};
  for (const auto& r : a.effectiveness()) eff[r.metric] = r.effectiveness();
  json_out.emit(
      "{\"bench\":\"fig6_data_objects\",\"eff_ecstall_pct\":%.2f,"
      "\"eff_ecrm_pct\":%.2f,\"eff_ecref_pct\":%.2f,\"eff_dtlbm_pct\":%.2f,"
      "\"paper_eff_pct\":[99.0,100.0,94.0,100.0]}",
      100.0 * eff[static_cast<size_t>(machine::HwEvent::EC_stall_cycles)],
      100.0 * eff[static_cast<size_t>(machine::HwEvent::EC_rd_miss)],
      100.0 * eff[static_cast<size_t>(machine::HwEvent::EC_ref)],
      100.0 * eff[static_cast<size_t>(machine::HwEvent::DTLB_miss)]);
  return 0;
}
