// FIG7 — paper Figure 7: expansion of the structure:node data object into
// its members (§3.2.5), plus the cache-line-split statistic that motivates
// the §3.3 layout fix.
//
// Paper shape: of node's 42% stall share, the bulk is orientation (+56),
// child (+24) and potential (+88); 28% of the 120-byte nodes straddle a
// 512-byte E$ line.
#include <cstdio>

#include "analyze/reports.hpp"
#include "bench_json.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "fig7_node_expansion");
  std::puts("== FIG7: structure:node member expansion (paper Figure 7) ==");
  const auto setup = mcfsim::PaperSetup::standard();
  const auto exps = mcfsim::collect_paper_experiments(setup);
  analyze::Analysis a({&exps.ex1, &exps.ex2});
  std::fputs(analyze::render_member_expansion(a, "node").c_str(), stdout);
  std::puts("");
  std::fputs(analyze::render_member_expansion(a, "arc").c_str(), stdout);

  // Split-object statistic: the node array is the second allocation
  // (network struct is first).
  double split_pct = 0.0, split128_pct = 0.0;
  if (a.allocations().size() >= 2) {
    const u64 base = a.allocations()[1].addr;
    const u64 size = a.allocations()[1].size;
    const u64 count = size / 120;
    const double frac = analyze::Analysis::split_fraction(base, 120, count, 512);
    std::printf("\n%.0f%% of the %llu 120-byte node objects straddle a 512 B E$ line "
                "(paper: 28%%)\n",
                100.0 * frac, static_cast<unsigned long long>(count));
    const double frac128 = analyze::Analysis::split_fraction(base & ~u64{511}, 128, count, 512);
    std::printf("after pad-to-128 + array alignment: %.0f%%\n", 100.0 * frac128);
    split_pct = 100.0 * frac;
    split128_pct = 100.0 * frac128;
  }
  json_out.emit(
      "{\"bench\":\"fig7_node_expansion\",\"node_split_pct\":%.1f,"
      "\"node_split_after_pad128_pct\":%.1f,\"paper_split_pct\":28.0}",
      split_pct, split128_pct);
  return 0;
}
