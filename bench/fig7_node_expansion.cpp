// FIG7 — paper Figure 7: expansion of the structure:node data object into
// its members (§3.2.5), plus the cache-line-split statistic that motivates
// the §3.3 layout fix.
//
// Paper shape: of node's 42% stall share, the bulk is orientation (+56),
// child (+24) and potential (+88); 28% of the 120-byte nodes straddle a
// 512-byte E$ line.
#include <cstdio>

#include "analyze/reports.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main() {
  std::puts("== FIG7: structure:node member expansion (paper Figure 7) ==");
  const auto setup = mcfsim::PaperSetup::standard();
  const auto exps = mcfsim::collect_paper_experiments(setup);
  analyze::Analysis a({&exps.ex1, &exps.ex2});
  std::fputs(analyze::render_member_expansion(a, "node").c_str(), stdout);
  std::puts("");
  std::fputs(analyze::render_member_expansion(a, "arc").c_str(), stdout);

  // Split-object statistic: the node array is the second allocation
  // (network struct is first).
  if (a.allocations().size() >= 2) {
    const auto [base, size] = a.allocations()[1];
    const u64 count = size / 120;
    const double frac = analyze::Analysis::split_fraction(base, 120, count, 512);
    std::printf("\n%.0f%% of the %llu 120-byte node objects straddle a 512 B E$ line "
                "(paper: 28%%)\n",
                100.0 * frac, static_cast<unsigned long long>(count));
    const double frac128 = analyze::Analysis::split_fraction(base & ~u64{511}, 128, count, 512);
    std::printf("after pad-to-128 + array alignment: %.0f%%\n", 100.0 * frac128);
  }
  return 0;
}
