// FLEET — fleet-scale concurrent ingest through one dsprofd over TCP
// loopback: N collector clients connect (tcp://127.0.0.1:<ephemeral>),
// stream the paper's MCF collect run concurrently, and close; the daemon
// folds every session into live per-session aggregates.
//
// What it proves, beyond raw throughput:
//   - exact accounting at fleet scale: every session's flush triple
//     satisfies events_in == events_reduced + events_dropped, and the
//     server-wide totals equal the sum of the per-client triples;
//   - the merged fleet view stays byte-identical to an offline
//     multi-experiment reduction of the same runs while sessions are
//     retained (checked on a 3-session wave under the Block policy, where
//     nothing can drop);
//   - retention works under load: with more sessions than retain_sessions
//     the oldest completed sessions are evicted, the eviction counters add
//     up, and the cumulative totals never move backwards.
//
// Floor: the ROADMAP's production north star is 100+ concurrent
// collectors on one daemon. The bench sweeps 8/32/128 sessions and gates
// on the 128-session aggregate ingest rate, machine-normalized with the
// same Baseline-engine yardstick as bench/ingest_throughput (shared
// runners vary 2x between sweeps; an absolute floor would gate the
// runner, not the code). DSPROF_BENCH_FLOOR_EVENTS_PER_SEC overrides with
// an absolute events/s floor; 0 disables.
//
// Emits one machine-readable JSON object on the last line.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "analyze/analysis.hpp"
#include "analyze/reduction.hpp"
#include "analyze/reports.hpp"
#include "bench_json.hpp"
#include "mcfsim/experiments.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace dsprof;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct WaveResult {
  double secs = 0;
  serve::ServerStats stats;
};

/// One wave: `n_sessions` clients connect over TCP loopback and stream `ex`
/// concurrently; returns wall seconds from first connect to last flush and
/// the server stats after every session finalized.
WaveResult run_wave(const experiment::Experiment& ex, size_t n_sessions, size_t batch_events,
                    serve::ServerOptions sopt) {
  serve::Server server(sopt);
  serve::TcpListener listener("127.0.0.1", 0);
  const std::string uri = listener.endpoint();
  std::thread acceptor([&] { server.serve(listener); });

  WaveResult wr;
  std::vector<serve::Accounting> accts(n_sessions);
  std::vector<std::thread> clients;
  clients.reserve(n_sessions);
  const auto t0 = Clock::now();
  for (size_t i = 0; i < n_sessions; ++i) {
    clients.emplace_back([&, i] {
      serve::Status st;
      auto transport = serve::connect_with_retry(uri, st);
      DSP_CHECK(transport != nullptr, "connect failed: " + st.to_string());
      serve::Client client(std::move(transport));
      st = serve::stream_experiment(client, ex, batch_events, accts[i]);
      DSP_CHECK(st.ok(), "stream failed: " + st.to_string());
      serve::Accounting closed;
      st = client.close(closed);
      DSP_CHECK(st.ok(), "close failed: " + st.to_string());
    });
  }
  for (auto& t : clients) t.join();
  wr.secs = seconds_since(t0);

  listener.close();
  acceptor.join();
  server.wait_all();

  // Exact accounting, per session and fleet-wide: the per-client flush
  // triples must each balance, and the server totals must be their sum.
  serve::Accounting sum;
  for (size_t i = 0; i < n_sessions; ++i) {
    DSP_CHECK(accts[i].events_in == ex.events.size(), "accounting mismatch: events_in");
    DSP_CHECK(accts[i].events_in == accts[i].events_reduced + accts[i].events_dropped,
              "per-session accounting invariant violated");
    sum.events_in += accts[i].events_in;
    sum.events_reduced += accts[i].events_reduced;
    sum.events_dropped += accts[i].events_dropped;
  }
  wr.stats = server.stats();
  DSP_CHECK(wr.stats.events_in == sum.events_in, "server events_in != sum of clients");
  DSP_CHECK(wr.stats.events_reduced == sum.events_reduced,
            "server events_reduced != sum of clients");
  DSP_CHECK(wr.stats.events_dropped == sum.events_dropped,
            "server events_dropped != sum of clients");
  DSP_CHECK(wr.stats.sessions_total == n_sessions, "session count mismatch");
  // Retention bookkeeping: retained + evicted covers every completed
  // session, and eviction never disturbed the cumulative totals above.
  DSP_CHECK(wr.stats.sessions_retained + wr.stats.sessions_evicted == n_sessions,
            "retained + evicted != sessions");
  server.stop();
  return wr;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "fleet_load");
  std::puts("FLEET: concurrent TCP sessions through one dsprofd");

  const auto setup = mcfsim::PaperSetup::small();
  const auto exps = mcfsim::collect_paper_experiments(setup);
  const experiment::Experiment& ex = exps.ex1;
  const size_t n_events = ex.events.size();
  std::printf("workload: %zu events per session (MCF counter pair 1)\n", n_events);

  // Correctness on the side: a 3-session wave under the Block policy (no
  // loss possible), then the merged fleet view from a monitoring client
  // must render exactly the offline multi-experiment report of the same
  // three runs — the cross-session extension of the bit-identity invariant.
  {
    serve::ServerOptions sopt;
    sopt.overload = serve::ServerOptions::Overload::Block;
    serve::Server server(sopt);
    serve::TcpListener listener("127.0.0.1", 0);
    const std::string uri = listener.endpoint();
    std::thread acceptor([&] { server.serve(listener); });
    const size_t kCheckSessions = 3;
    std::vector<std::thread> clients;
    for (size_t i = 0; i < kCheckSessions; ++i) {
      clients.emplace_back([&] {
        serve::Status st;
        auto transport = serve::connect_with_retry(uri, st);
        DSP_CHECK(transport != nullptr, "connect failed: " + st.to_string());
        serve::Client client(std::move(transport));
        serve::Accounting acct;
        st = serve::stream_experiment(client, ex, 8192, acct);
        DSP_CHECK(st.ok(), "stream failed: " + st.to_string());
        DSP_CHECK(acct.events_dropped == 0, "drops under Block policy");
        serve::Accounting closed;
        st = client.close(closed);
        DSP_CHECK(st.ok(), "close failed: " + st.to_string());
      });
    }
    for (auto& t : clients) t.join();

    serve::Status st;
    auto transport = serve::connect_with_retry(uri, st);
    DSP_CHECK(transport != nullptr, "monitor connect failed: " + st.to_string());
    serve::Client monitor(std::move(transport));
    serve::Accounting macct;
    std::string merged_json;
    st = monitor.merged_snapshot(macct, merged_json);
    DSP_CHECK(st.ok(), "merged snapshot failed: " + st.to_string());
    DSP_CHECK(macct.events_in == kCheckSessions * n_events, "merged accounting mismatch");

    const std::vector<const experiment::Experiment*> three = {&ex, &ex, &ex};
    analyze::Analysis offline(three);
    const std::string offline_json = analyze::render_json_report(offline);
    DSP_CHECK(merged_json == offline_json, "merged snapshot != offline multi-dir report");
    std::puts("merged snapshot == offline multi-dir er_print -J: ok");

    serve::Accounting closed;
    (void)monitor.close(closed);
    listener.close();
    acceptor.join();
    server.stop();
  }

  // The load sweep: 8/32/128 concurrent sessions, default server options
  // (DropOldest + direct fold) so retention and drop accounting are
  // exercised exactly as deployed; 128 sessions > retain_sessions (64)
  // forces evictions under load.
  const std::vector<size_t> kSweep = {8, 32, 128};
  std::vector<double> sweep_eps;
  for (const size_t n : kSweep) {
    const WaveResult wr = run_wave(ex, n, 8192, serve::ServerOptions{});
    const double eps =
        static_cast<double>(n) * static_cast<double>(n_events) / wr.secs;
    sweep_eps.push_back(eps);
    std::printf(
        "fleet %3zu sessions: %.2fM events/s aggregate (%.2fs; dropped %llu, "
        "retained %llu, evicted %llu)\n",
        n, eps / 1e6, wr.secs, static_cast<unsigned long long>(wr.stats.events_dropped),
        static_cast<unsigned long long>(wr.stats.sessions_retained),
        static_cast<unsigned long long>(wr.stats.sessions_evicted));
  }
  const double eps_fleet = sweep_eps.back();

  // Machine-speed yardstick: the untouched Baseline reduction engine
  // against its committed rate (see bench/ingest_throughput). The fleet
  // floor asks the 128-session aggregate to sustain 40% of the
  // single-stream ingest floor — the dominant costs (decode + fold) are
  // per-session threads, but 128 sessions over a handful of cores pay real
  // scheduling and TCP loopback overhead.
  const std::vector<const experiment::Experiment*> one = {&exps.ex1};
  double t_base = 1e300;
  for (int i = 0; i < 2; ++i) {
    const auto t0 = Clock::now();
    analyze::Reduction::run(one, 1, analyze::Reduction::Engine::Baseline);
    t_base = std::min(t_base, seconds_since(t0));
  }
  const double base_eps = static_cast<double>(exps.ex1.events.size()) / t_base;
  const double committed_baseline = 1.802810e6;
  double floor = 4e6 * (base_eps / committed_baseline) * 0.8;
  if (const char* env = std::getenv("DSPROF_BENCH_FLOOR_EVENTS_PER_SEC")) {
    floor = std::atof(env);
  }
  const bool pass = floor <= 0.0 || eps_fleet >= floor;
  std::printf("baseline yardstick: %.2fM events/s (committed %.2fM)\n", base_eps / 1e6,
              committed_baseline / 1e6);
  std::printf("floor (128 sessions, aggregate): %.0f events/s (machine-normalized) -> %s\n",
              floor, pass ? "pass" : "FAIL");

  json_out.emit(
      "{\"bench\":\"fleet_load\",\"events_per_session\":%zu,\"batch_events\":8192,"
      "\"sessions\":[8,32,128],"
      "\"events_per_sec\":[%.0f,%.0f,%.0f],"
      "\"fleet_events_per_sec\":%.0f,"
      "\"baseline_events_per_sec\":%.0f,\"floor_events_per_sec\":%.0f,"
      "\"merged_matches_offline\":true,\"pass\":%s}",
      n_events, sweep_eps[0], sweep_eps[1], sweep_eps[2], eps_fleet, base_eps, floor,
      pass ? "true" : "false");
  return pass ? 0 : 1;
}
