// INGEST — end-to-end streaming ingest throughput of the dsprofd stack
// (DESIGN.md §3.3): events/second from a collector client, through the
// in-process pipe transport and the framed wire protocol, into a Server
// session's live IncrementalReducer aggregates.
//
// The measured path is the full production pipeline:
//   client: slice events into batches -> EventStore columnar encode ->
//           frame -> pipe send (with real backpressure)
//   server: frame decode -> EventStore decode -> bounded queue ->
//           incremental fold into live aggregates
// ending with a flush barrier, so the clock stops only after every event
// is folded. Snapshot correctness (bit-identity vs offline) is asserted
// on the side.
//
// Floor: the ROADMAP's production-scale north star needs ingest to keep up
// with many concurrent collectors; with the zero-copy fast path (range
// batch encode, frozen decode, queue-free reader-thread folds into the
// radix engine) the acceptance bar is >= 10,000,000 events/s sustained
// through the in-process transport into live aggregates — normalized for
// machine speed using the untouched Baseline reduction engine as an
// in-run yardstick against its committed rate, exactly like
// bench/pipeline_throughput's fold floor (shared runners vary 2x between
// sweeps; an absolute floor would gate the runner, not the code). The
// bench measures both ingest modes (direct = queue-free, queued = the
// bounded queue hop) and applies the floor to the default direct path;
// it exits nonzero below the floor (DSPROF_BENCH_FLOOR_EVENTS_PER_SEC
// overrides with an absolute events/s floor; 0 disables).
//
// Emits one machine-readable JSON object on the last line.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analyze/analysis.hpp"
#include "analyze/reduction.hpp"
#include "analyze/reports.hpp"
#include "bench_json.hpp"
#include "mcfsim/experiments.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace dsprof;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One full streaming session over `ex`; returns wall seconds to the flush
/// barrier (hello/teardown excluded from the timed region would flatter the
/// result — everything a real collector pays is included).
double stream_once(const experiment::Experiment& ex, size_t batch_events,
                   std::string* snapshot_json, bool direct_fold = true) {
  serve::ServerOptions sopt;
  sopt.direct_fold = direct_fold;
  serve::Server server(sopt);
  auto [client_end, server_end] = serve::make_pipe_pair(/*capacity=*/4u << 20);
  server.add_session(std::move(server_end));
  serve::Client client(std::move(client_end));

  const auto t0 = Clock::now();
  serve::Accounting acct;
  serve::Status st = serve::stream_experiment(client, ex, batch_events, acct);
  const double secs = seconds_since(t0);
  DSP_CHECK(st.ok(), "stream failed: " + st.to_string());
  DSP_CHECK(acct.events_in == ex.events.size(), "accounting mismatch: events_in");
  DSP_CHECK(acct.events_in == acct.events_reduced + acct.events_dropped,
            "accounting invariant violated");
  DSP_CHECK(acct.events_dropped == 0, "unexpected drops in bench");

  if (snapshot_json != nullptr) {
    serve::Accounting a2;
    st = client.snapshot(a2, *snapshot_json);
    DSP_CHECK(st.ok(), "snapshot failed: " + st.to_string());
  }
  st = client.close(acct);
  DSP_CHECK(st.ok(), "close failed: " + st.to_string());
  server.stop();
  return secs;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "ingest_throughput");
  std::puts("INGEST: dsprofd streaming ingest throughput (pipe transport)");

  // The paper's first MCF collect run is the workload; replicate it to get
  // a stream long enough to measure steady-state ingest.
  const auto setup = mcfsim::PaperSetup::small();
  const auto exps = mcfsim::collect_paper_experiments(setup);
  experiment::Experiment ex;
  ex.image = exps.ex1.image;
  ex.counters = exps.ex1.counters;
  ex.clock_interval = exps.ex1.clock_interval;
  ex.clock_hz = exps.ex1.clock_hz;
  ex.page_size = exps.ex1.page_size;
  ex.ec_line_size = exps.ex1.ec_line_size;
  ex.allocations = exps.ex1.allocations;
  const size_t kReplicas = 16;
  ex.events.reserve(exps.ex1.events.size() * kReplicas);
  for (size_t i = 0; i < kReplicas; ++i) ex.events.append_store(exps.ex1.events);
  const size_t n_events = ex.events.size();
  std::printf("workload: %zu events (MCF counter pair 1, x%zu)\n", n_events, kReplicas);

  // Correctness on the side: the streamed snapshot must render exactly the
  // offline report of the same events.
  std::string snapshot_json;
  (void)stream_once(ex, 8192, &snapshot_json);
  analyze::Analysis offline(ex);
  const std::string offline_json = analyze::render_json_report(offline);
  DSP_CHECK(snapshot_json == offline_json, "streamed snapshot != offline report");
  std::puts("snapshot == offline er_print -J: ok");

  const int kRuns = 3;
  double best_direct = 1e300, best_queued = 1e300;
  for (int i = 0; i < kRuns; ++i) {
    best_direct = std::min(best_direct, stream_once(ex, 8192, nullptr, /*direct_fold=*/true));
    best_queued = std::min(best_queued, stream_once(ex, 8192, nullptr, /*direct_fold=*/false));
  }
  const double eps = static_cast<double>(n_events) / best_direct;
  const double eps_queued = static_cast<double>(n_events) / best_queued;
  std::printf("ingest direct (queue-free): %.2fM events/s (best of %d, batch 8192)\n",
              eps / 1e6, kRuns);
  std::printf("ingest queued (bounded queue): %.2fM events/s (best of %d, batch 8192)\n",
              eps_queued / 1e6, kRuns);

  // Machine-speed yardstick: fold the unreplicated run through the seed
  // Baseline engine (untouched by the fast path) and scale the 10M floor
  // by its rate relative to the committed 1.802810M events/s
  // (BENCH_pipeline_throughput.json). The 0.8 allowance absorbs
  // stage-to-stage runner drift and the slight workload difference (one
  // collect run here vs the FIG1 pair there).
  const std::vector<const experiment::Experiment*> one = {&exps.ex1};
  double t_base = 1e300;
  for (int i = 0; i < 2; ++i) {
    const auto t0 = Clock::now();
    analyze::Reduction::run(one, 1, analyze::Reduction::Engine::Baseline);
    t_base = std::min(t_base, seconds_since(t0));
  }
  const double base_eps = static_cast<double>(exps.ex1.events.size()) / t_base;
  const double committed_baseline = 1.802810e6;
  double floor = 10e6 * (base_eps / committed_baseline) * 0.8;
  if (const char* env = std::getenv("DSPROF_BENCH_FLOOR_EVENTS_PER_SEC")) {
    floor = std::atof(env);
  }
  const bool pass = floor <= 0.0 || eps >= floor;
  std::printf("baseline yardstick: %.2fM events/s (committed %.2fM)\n", base_eps / 1e6,
              committed_baseline / 1e6);
  std::printf("floor (direct): %.0f events/s (machine-normalized) -> %s\n", floor,
              pass ? "pass" : "FAIL");

  json_out.emit(
      "{\"bench\":\"ingest_throughput\",\"events\":%zu,\"batch_events\":8192,"
      "\"events_per_sec\":%.0f,\"queued_events_per_sec\":%.0f,"
      "\"baseline_events_per_sec\":%.0f,"
      "\"floor_events_per_sec\":%.0f,\"snapshot_matches_offline\":true,"
      "\"pass\":%s}",
      n_events, eps, eps_queued, base_eps, floor, pass ? "true" : "false");
  return pass ? 0 : 1;
}
