// FW3 — paper §4 (future work): translate effective addresses into structure
// object instances via the allocation log and aggregate per instance.
#include <cstdio>

#include "analyze/reports.hpp"
#include "bench_json.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "instance_view");
  std::puts("== FW3: per-instance aggregation (paper §4) ==");
  const auto setup = mcfsim::PaperSetup::standard();
  const auto exps = mcfsim::collect_paper_experiments(setup);
  analyze::Analysis a({&exps.ex1, &exps.ex2});
  const std::string report =
      analyze::render_instances(a, static_cast<size_t>(machine::HwEvent::EC_stall_cycles), 8);
  std::fputs(report.c_str(), stdout);
  std::puts("\nMCF's allocations are a few big arrays (read_min allocates the node,");
  std::puts("arc and dummy-arc arrays), so instances map 1:1 onto those arrays;");
  std::puts("programs with per-object allocation get per-object resolution.");
  json_out.emit(
      "{\"bench\":\"instance_view\",\"allocations\":%zu,\"render_bytes\":%zu}",
      a.allocations().size(), report.size());
  return 0;
}
