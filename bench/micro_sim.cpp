// PERF — google-benchmark microbenchmarks of the simulator substrate itself:
// cache model throughput, TLB throughput, and interpreter speed.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "cache/hierarchy.hpp"
#include "isa/assembler.hpp"
#include "machine/cpu.hpp"
#include "support/rng.hpp"

using namespace dsprof;

namespace {

void BM_CacheHit(benchmark::State& state) {
  cache::Cache c({64 * 1024, 4, 32, true});
  c.access(0x1000, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.access(0x1000, false).hit);
  }
}
BENCHMARK(BM_CacheHit);

void BM_CacheRandom(benchmark::State& state) {
  cache::Cache c({static_cast<u64>(state.range(0)), 4, 64, true});
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.access(rng.next() & 0xFFFFFF, false).hit);
  }
}
BENCHMARK(BM_CacheRandom)->Arg(64 * 1024)->Arg(8 * 1024 * 1024);

void BM_TlbLookup(benchmark::State& state) {
  cache::Tlb t({512, 2, 8192});
  Xoshiro256 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.lookup(rng.next() & 0x3FFFFFF));
  }
}
BENCHMARK(BM_TlbLookup);

void BM_HierarchyLoad(benchmark::State& state) {
  cache::MemoryHierarchy h(cache::HierarchyConfig::ultrasparc3());
  Xoshiro256 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.load(rng.next() & 0xFFFFFF).stall_cycles);
  }
}
BENCHMARK(BM_HierarchyLoad);

/// Interpreter speed on a tight ALU loop (reports instructions/second).
void BM_InterpreterLoop(benchmark::State& state) {
  mem::Memory m;
  isa::Assembler a(mem::kTextBase);
  const auto head = a.new_label();
  a.emit(isa::mov_ri(isa::O1, 10000));
  a.bind(head);
  a.emit(isa::alu_ri(isa::Op::SUB, isa::O1, isa::O1, 1));
  a.emit(isa::cmp_ri(isa::O1, 0));
  a.emit_branch(isa::Cond::NE, head);
  a.emit(isa::nop());
  a.emit(isa::hcall(0));
  const auto out = a.finish();
  m.add_segment({"text", mem::SegKind::Text, mem::kTextBase, round_up(out.words.size() * 4, 8),
                 false, true});
  m.write_bytes(mem::kTextBase, out.words.data(), out.words.size() * 4);
  u64 instructions = 0;
  for (auto _ : state) {
    machine::Cpu cpu(m, machine::CpuConfig{});
    cpu.set_truth_log_enabled(false);
    cpu.set_pc(mem::kTextBase);
    const machine::RunResult r = cpu.run();
    benchmark::DoNotOptimize(r.cycles);
    instructions += r.instructions;
  }
  state.SetItemsProcessed(static_cast<i64>(instructions));
}
BENCHMARK(BM_InterpreterLoop);

void BM_MemoryLoad(benchmark::State& state) {
  mem::Memory m;
  m.add_segment({"heap", mem::SegKind::Heap, mem::kHeapBase, 1 << 26, true, false});
  Xoshiro256 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.load(mem::kHeapBase + (rng.next() & 0x3FFFF8), 8));
  }
}
BENCHMARK(BM_MemoryLoad);

}  // namespace

// Same --json [path] contract as the plain benches (bench_json.hpp),
// translated into google-benchmark's file-reporter flags.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag, fmt_flag;
  for (size_t i = 1; i < args.size(); ++i) {
    if (std::string(args[i]) == "--json") {
      std::string path = "BENCH_micro_sim.json";
      if (i + 1 < args.size() && args[i + 1][0] != '-') {
        path = args[i + 1];
        args.erase(args.begin() + static_cast<long>(i) + 1);
      }
      args.erase(args.begin() + static_cast<long>(i));
      out_flag = "--benchmark_out=" + path;
      fmt_flag = "--benchmark_out_format=json";
      args.push_back(out_flag.data());
      args.push_back(fmt_flag.data());
      break;
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
