// MPX — renormalization accuracy of time-multiplexed counter sets.
//
// A 4-counter spec (cycles, ecstall, ecrm, dtlbm) cannot fit the two PIC
// registers at once, so the collector time-slices it into three sets and
// the analyzer renormalizes each metric by its live-cycle fraction. This
// bench runs the multiplexed collection against dedicated ground truth —
// one non-multiplexed run per counter set, same intervals, same machine,
// same input — and gates the renormalized totals within +/-5% of the
// dedicated totals at the default slice length. It also reports the
// collector wall-clock overhead of multiplexing vs a plain 2-counter run
// (extra work: slice timer + rotation residual save/restore).
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "analyze/analysis.hpp"
#include "bench_json.hpp"
#include "collect/collector.hpp"
#include "mcfsim/experiments.hpp"
#include "mcfsim/mcfsim.hpp"

using namespace dsprof;

namespace {

experiment::Experiment collect_one(const mcfsim::PaperSetup& s, const sym::Image& image,
                                   const std::string& hw) {
  collect::CollectOptions opt;
  opt.hw = hw;
  opt.clock = "on";
  opt.cpu = s.cpu;
  collect::Collector c(image, opt);
  return c.run([&](machine::Cpu& cpu) { mcfsim::write_input(cpu.memory(), s.run); });
}

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "multiplex");
  std::puts("== MPX: multiplexed 4-counter run vs dedicated ground truth ==");
  const mcfsim::PaperSetup s = mcfsim::PaperSetup::small();
  const sym::Image image = mcfsim::build_mcf_image(s.build);

  // The multiplexed spec partitions into {cycles, ecstall} / {ecrm} /
  // {dtlbm} (ecrm and dtlbm both only fit PIC1), so the dedicated ground
  // truth is one run per set with identical intervals.
  const std::string mpx_spec = "cycles,100003,+ecstall,20011,+ecrm,211,+dtlbm,101";
  experiment::Experiment ex_mpx;
  const double t_mpx = wall_seconds([&] { ex_mpx = collect_one(s, image, mpx_spec); });

  experiment::Experiment ex_plain;
  const double t_plain =
      wall_seconds([&] { ex_plain = collect_one(s, image, "+ecstall,20011,+ecrm,211"); });

  const experiment::Experiment ex_ded1 = collect_one(s, image, "cycles,100003,+ecstall,20011");
  const experiment::Experiment ex_ded2 = collect_one(s, image, "+ecrm,211");
  const experiment::Experiment ex_ded3 = collect_one(s, image, "+dtlbm,101");

  DSP_CHECK(ex_mpx.multiplexed(), "4-counter run did not multiplex");
  u64 switches = 0;
  u64 live_sum = 0;
  for (const auto& sl : ex_mpx.slices) {
    switches += sl.switches;
    live_sum += sl.live_cycles;
  }
  DSP_CHECK(live_sum == ex_mpx.total_cycles,
            "slice live cycles do not sum to the run total");
  std::printf("  sets %zu, %llu slice activations, %llu total cycles\n",
              ex_mpx.slices.size(), static_cast<unsigned long long>(switches),
              static_cast<unsigned long long>(ex_mpx.total_cycles));

  const analyze::Analysis a_mpx(ex_mpx);
  const analyze::Analysis a_ded1(ex_ded1);
  const analyze::Analysis a_ded2(ex_ded2);
  const analyze::Analysis a_ded3(ex_ded3);

  struct Row {
    const char* name;
    machine::HwEvent ev;
    const analyze::Analysis* dedicated;
  };
  const Row rows[] = {
      {"cycles", machine::HwEvent::Cycle_cnt, &a_ded1},
      {"ecstall", machine::HwEvent::EC_stall_cycles, &a_ded1},
      {"ecrm", machine::HwEvent::EC_rd_miss, &a_ded2},
      {"dtlbm", machine::HwEvent::DTLB_miss, &a_ded3},
  };

  std::string metrics_json;
  double max_err_pct = 0;
  bool ok = true;
  std::puts("  metric      dedicated          mpx (renormalized)   error");
  for (const Row& r : rows) {
    const size_t m = static_cast<size_t>(r.ev);
    const double ded = r.dedicated->total()[m];
    const double mpx = a_mpx.total()[m];
    const double err_pct = ded == 0 ? 0 : 100.0 * (mpx - ded) / ded;
    const double abs_err = err_pct < 0 ? -err_pct : err_pct;
    max_err_pct = abs_err > max_err_pct ? abs_err : max_err_pct;
    if (abs_err > 5.0) ok = false;
    std::printf("  %-10s %14.0f  %18.0f  %+6.2f%% (scale x%.2f, se %.0f)\n", r.name, ded,
                mpx, err_pct, a_mpx.metric_scale(m), a_mpx.metric_stderr(m));
    if (!metrics_json.empty()) metrics_json += ",";
    metrics_json += std::string("{\"name\":\"") + r.name + "\",\"dedicated\":" +
                    std::to_string(ded) + ",\"mpx\":" + std::to_string(mpx) +
                    ",\"err_pct\":" + std::to_string(err_pct) + "}";
  }

  const double overhead_pct = 100.0 * (t_mpx / t_plain - 1.0);
  std::printf("  collect wall time: mpx %.3fs vs 2-counter %.3fs (%+.1f%%)\n", t_mpx,
              t_plain, overhead_pct);
  std::printf("  max |error| %.2f%% (bar: 5%%) -> %s\n", max_err_pct,
              ok ? "PASS" : "FAIL");

  json_out.emit(
      "{\"bench\":\"multiplex\",\"sets\":%zu,\"switches\":%llu,"
      "\"slice_cycles\":%llu,\"metrics\":[%s],\"max_err_pct\":%.3f,"
      "\"overhead_pct\":%.3f,\"ok\":%s}",
      ex_mpx.slices.size(), static_cast<unsigned long long>(switches),
      static_cast<unsigned long long>(collect::CollectOptions{}.mpx_slice_cycles),
      metrics_json.c_str(), max_err_pct, overhead_pct, ok ? "true" : "false");
  return ok ? 0 : 1;
}
