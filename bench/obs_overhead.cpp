// OBS — the self-observability layer's acceptance bar (src/obs/): the
// instrumentation wired through the pipeline hot paths (per-shard fold
// timing in reduce_sharded, queue/fold accounting in the serve stack) must
// cost < 3% on the two throughput benches it rides in, *with obs enabled*.
//
// Method: the same process measures each hot path twice — obs disabled
// (set_enabled(false): every probe is one relaxed atomic-bool load) and
// obs enabled — as adjacent off/on pairs. The reported overhead is the
// median of the per-pair on/off ratios: pairing cancels slow clock/load
// drift and the median rejects scheduler outliers, which best-of-N does
// not on a loaded single-core box.
//
//   reduce: analyze::Reduction sharded engine at the default thread count
//           over the FIG1 small workload (the pipeline_throughput path);
//   ingest: full streaming session through the in-process pipe transport
//           into a live server session (the ingest_throughput path).
//
// On the side, the cross-layer agreement invariant (the er_print -O vs
// dsprofd Stats check, in-process): the obs counter "reduce.events.folded"
// must advance by exactly the events the engines report reduced, and
// "serve.events.dropped" by exactly the session's drop count.
//
// Exits nonzero when either overhead exceeds the bar
// (DSPROF_BENCH_OBS_MAX_PCT overrides; 0 disables) or the counters
// disagree. Emits one machine-readable JSON object on the last line
// (BENCH_obs.json under --json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analyze/reduction.hpp"
#include "bench_json.hpp"
#include "mcfsim/experiments.hpp"
#include "obs/obs.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace dsprof;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One full streaming session over `ex` (the ingest_throughput measured
/// path); returns wall seconds to the flush barrier.
double stream_once(const experiment::Experiment& ex, serve::Accounting* acct_out) {
  serve::Server server;
  auto [client_end, server_end] = serve::make_pipe_pair(/*capacity=*/4u << 20);
  server.add_session(std::move(server_end));
  serve::Client client(std::move(client_end));

  const auto t0 = Clock::now();
  serve::Accounting acct;
  const serve::Status st = serve::stream_experiment(client, ex, /*batch=*/8192, acct);
  const double secs = seconds_since(t0);
  DSP_CHECK(st.ok(), "stream failed: " + st.to_string());
  DSP_CHECK(acct.events_in == acct.events_reduced + acct.events_dropped,
            "accounting invariant violated");
  (void)client.close(acct);
  server.stop();
  if (acct_out != nullptr) *acct_out = acct;
  return secs;
}

/// Wall seconds of one `fn` run with obs in state `on`.
template <typename F>
double timed(bool on, F&& fn) {
  obs::set_enabled(on);
  const auto t0 = Clock::now();
  fn();
  return seconds_since(t0);
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "obs");
  std::puts("== OBS: self-observability overhead on the pipeline hot paths ==");

  const auto setup = mcfsim::PaperSetup::small();
  const auto exps = mcfsim::collect_paper_experiments(setup);
  const std::vector<const experiment::Experiment*> both = {&exps.ex1, &exps.ex2};
  const size_t n_reduce_events = exps.ex1.events.size() + exps.ex2.events.size();
  const unsigned threads = analyze::Reduction::resolve_threads();

  // Ingest workload: replicate the first run so a session is long enough to
  // measure (same construction as bench/ingest_throughput).
  experiment::Experiment ex;
  ex.image = exps.ex1.image;
  ex.counters = exps.ex1.counters;
  ex.clock_interval = exps.ex1.clock_interval;
  ex.clock_hz = exps.ex1.clock_hz;
  ex.page_size = exps.ex1.page_size;
  ex.ec_line_size = exps.ex1.ec_line_size;
  ex.allocations = exps.ex1.allocations;
  const size_t kReplicas = 8;
  ex.events.reserve(exps.ex1.events.size() * kReplicas);
  for (size_t i = 0; i < kReplicas; ++i) ex.events.append_store(exps.ex1.events);
  const size_t n_ingest_events = ex.events.size();
  std::printf("workload: reduce %zu events (%u threads), ingest %zu events\n",
              n_reduce_events, threads, n_ingest_events);

  // --- agreement: obs counters vs the engines' own accounting --------------
  // (er_print -O and a dsprofd Stats frame key on exactly these counters.)
  obs::set_enabled(true);
  const obs::Snapshot s0 = obs::snapshot();
  const auto rr = analyze::Reduction::run(both, threads, analyze::Reduction::Engine::Sharded);
  serve::Accounting acct;
  (void)stream_once(ex, &acct);
  const obs::Snapshot s1 = obs::snapshot();
  const u64 folded_delta = s1.counter_value("reduce.events.folded") -
                           s0.counter_value("reduce.events.folded");
  const u64 dropped_delta = s1.counter_value("serve.events.dropped") -
                            s0.counter_value("serve.events.dropped");
  const bool agree = folded_delta == rr.events_reduced + acct.events_reduced &&
                     dropped_delta == acct.events_dropped;
  std::printf("agreement: obs folded %llu == reduced %llu+%llu, obs dropped %llu == %llu: %s\n",
              static_cast<unsigned long long>(folded_delta),
              static_cast<unsigned long long>(rr.events_reduced),
              static_cast<unsigned long long>(acct.events_reduced),
              static_cast<unsigned long long>(dropped_delta),
              static_cast<unsigned long long>(acct.events_dropped),
              agree ? "ok" : "MISMATCH");

  // --- overhead: adjacent off/on pairs, median ratio ------------------------
  const int kReps = 13;
  // Each timed reduce sample folds the workload several times so the sample
  // is long enough (~50 ms) that scheduler ticks don't dominate the ratio.
  auto do_reduce = [&] {
    for (int k = 0; k < 4; ++k)
      (void)analyze::Reduction::run(both, threads, analyze::Reduction::Engine::Sharded);
  };
  auto do_ingest = [&] { (void)stream_once(ex, nullptr); };
  (void)timed(false, do_reduce);  // warmup (allocator, page faults)
  (void)timed(false, do_ingest);
  std::vector<double> reduce_ratio, ingest_ratio;
  std::vector<double> reduce_off, ingest_off, reduce_on, ingest_on;
  for (int i = 0; i < kReps; ++i) {
    const double r_off = timed(false, do_reduce);
    const double r_on = timed(true, do_reduce);
    const double i_off = timed(false, do_ingest);
    const double i_on = timed(true, do_ingest);
    reduce_ratio.push_back(r_on / r_off);
    ingest_ratio.push_back(i_on / i_off);
    reduce_off.push_back(r_off);
    reduce_on.push_back(r_on);
    ingest_off.push_back(i_off);
    ingest_on.push_back(i_on);
  }
  obs::set_enabled(true);

  // Two noise-robust estimators of the true overhead: the median of the
  // paired ratios (cancels drift) and the ratio of the best-of floors
  // (noise-free lower envelope). Background load inflates each differently;
  // the gate takes the smaller — a real regression shows up in both.
  auto best = [](const std::vector<double>& v) { return *std::min_element(v.begin(), v.end()); };
  auto overhead_pct = [&](const std::vector<double>& ratios, const std::vector<double>& off,
                          const std::vector<double>& on) {
    return 100.0 * (std::min(median(ratios), best(on) / best(off)) - 1.0);
  };
  const double reduce_pct = overhead_pct(reduce_ratio, reduce_off, reduce_on);
  const double ingest_pct = overhead_pct(ingest_ratio, ingest_off, ingest_on);
  std::printf("\n%-8s %16s %18s\n", "path", "median off (ms)", "overhead");
  std::printf("%-8s %16.3f %+17.2f%%\n", "reduce", median(reduce_off) * 1e3, reduce_pct);
  std::printf("%-8s %16.3f %+17.2f%%\n", "ingest", median(ingest_off) * 1e3, ingest_pct);

  double max_pct = 3.0;
  if (const char* env = std::getenv("DSPROF_BENCH_OBS_MAX_PCT")) max_pct = std::atof(env);
  const bool under_bar =
      max_pct <= 0.0 || (reduce_pct < max_pct && ingest_pct < max_pct);
  const bool pass = under_bar && agree;
  std::printf("bar: < %.1f%% -> %s\n", max_pct, pass ? "pass" : "FAIL");

  json_out.emit(
      "{\"bench\":\"obs_overhead\",\"reduce_events\":%zu,\"ingest_events\":%zu,"
      "\"threads\":%u,\"reduce_overhead_pct\":%.3f,\"ingest_overhead_pct\":%.3f,"
      "\"max_overhead_pct\":%.1f,\"counters_agree\":%s,\"pass\":%s}",
      n_reduce_events, n_ingest_events, threads, reduce_pct, ingest_pct, max_pct,
      agree ? "true" : "false", pass ? "true" : "false");
  return pass ? 0 : 1;
}
