// OPT — paper §3.3: the two optimizations the data-space analysis suggests,
// measured as end-to-end runtime change on identical work:
//   1. reorder node members by reference frequency, pad 120 -> 128 bytes,
//      align the heap arrays to E$ lines          (paper: 16.2% speedup)
//   2. large pages for the heap (-xpagesize_heap) (paper:  3.9% speedup)
//   3. both                                       (paper: 20.7% speedup)
#include <cstdio>

#include "bench_json.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "opt_speedups");
  std::puts("== OPT: §3.3 optimization speedups ==");
  auto base = mcfsim::PaperSetup::standard();
  // Machine regime for the §3.3 experiment. The 16.2% layout gain on the
  // US-III is mostly a D$-locality effect: the node's hot members span
  // three 32-byte D$ lines, so every node visit pays ~3 D$ misses whose
  // cost is the E$ *hit* latency (the E$ mostly holds mcf's hot nodes).
  // Packing the hot members into one line cuts that to one. We put the
  // scaled machine in the same regime: D$ far smaller than the node array
  // (no D$ reuse across a sweep), E$ large enough to back D$ misses with
  // hits, and a DTLB whose reach the heap exceeds (for the page-size fix).
  base.cpu.hierarchy.dcache = {8 * 1024, 4, 32, false};
  base.cpu.hierarchy.ecache = {1024 * 1024, 2, 512, true};
  base.cpu.hierarchy.dtlb = {64, 2, 8 * 1024};

  auto run_cfg = [&](bool layout, bool bigpages) {
    mcfsim::PaperSetup s = base;
    s.build.optimized_node_layout = layout;
    s.build.align_heap_arrays = layout;
    if (bigpages) s.cpu.hierarchy.dtlb.page_size = 512 * 1024;
    return mcfsim::measure_run(s).cycles;
  };

  const u64 baseline = run_cfg(false, false);
  const u64 layout = run_cfg(true, false);
  const u64 pages = run_cfg(false, true);
  const u64 both = run_cfg(true, true);

  auto report = [&](const char* name, u64 cycles, double paper_pct) {
    const double gain = 100.0 * (1.0 - static_cast<double>(cycles) /
                                           static_cast<double>(baseline));
    std::printf("  %-34s %12llu cycles   speedup %5.1f%%   (paper %4.1f%%)\n", name,
                static_cast<unsigned long long>(cycles), gain, paper_pct);
  };
  std::printf("  %-34s %12llu cycles\n", "baseline (declaration layout, 8K pages)",
              static_cast<unsigned long long>(baseline));
  report("node reorder + pad 128 + align", layout, 16.2);
  report("512 kB heap pages", pages, 3.9);
  report("both optimizations", both, 20.7);
  std::puts("\npaper: 16.2% + 3.9% combine to 20.7% on MCF total execution time.");
  auto gain = [&](u64 cycles) {
    return 100.0 * (1.0 - static_cast<double>(cycles) / static_cast<double>(baseline));
  };
  json_out.emit(
      "{\"bench\":\"opt_speedups\",\"baseline_cycles\":%llu,"
      "\"layout_speedup_pct\":%.2f,\"pages_speedup_pct\":%.2f,"
      "\"both_speedup_pct\":%.2f,\"paper_speedups_pct\":[16.2,3.9,20.7]}",
      static_cast<unsigned long long>(baseline), gain(layout), gain(pages), gain(both));
  return 0;
}
