// OVH — paper §2.1: the runtime overhead of compiling with -xhwcprof
// (nop padding between memory ops and join nodes; no memory ops in branch
// delay slots). Paper: MCF compiled with -xhwcprof runs ~1.3% slower.
#include <cstdio>

#include "bench_json.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "overhead_hwcprof");
  std::puts("== OVH: -xhwcprof compilation overhead (paper §2.1) ==");
  auto with = mcfsim::PaperSetup::small();
  auto without = with;
  without.build.compile.hwcprof = false;

  const machine::RunResult rw = mcfsim::measure_run(with);
  const machine::RunResult ro = mcfsim::measure_run(without);

  const double cyc_pct = 100.0 * (static_cast<double>(rw.cycles) /
                                      static_cast<double>(ro.cycles) -
                                  1.0);
  const double ins_pct = 100.0 * (static_cast<double>(rw.instructions) /
                                      static_cast<double>(ro.instructions) -
                                  1.0);
  std::printf("  without -xhwcprof: %12llu cycles, %12llu instructions\n",
              static_cast<unsigned long long>(ro.cycles),
              static_cast<unsigned long long>(ro.instructions));
  std::printf("  with    -xhwcprof: %12llu cycles, %12llu instructions\n",
              static_cast<unsigned long long>(rw.cycles),
              static_cast<unsigned long long>(rw.instructions));
  std::printf("  overhead: %+.2f%% cycles, %+.2f%% instructions (paper: ~+1.3%% runtime)\n",
              cyc_pct, ins_pct);
  json_out.emit(
      "{\"bench\":\"overhead_hwcprof\",\"cycles_overhead_pct\":%.3f,"
      "\"instructions_overhead_pct\":%.3f,\"paper_runtime_overhead_pct\":1.3}",
      cyc_pct, ins_pct);
  return 0;
}
