// PIPELINE — throughput of the two hot pipeline stages over the FIG1
// workload (the paper's two MCF collect runs, §3.1):
//
//   append:    events/sec appended into the columnar EventStore (the
//              collection hot path: column pushes + callstack interning);
//   reduce:    events/sec folded into view aggregates, for the seed's
//              serial std::map engine (Engine::Baseline), the hash-probing
//              sharded engine (1 thread and the default thread count), and
//              the radix-partitioned engine (1 thread and default) — the
//              default fold since the zero-copy fast path landed;
//   backtrack: events/sec through overflow backtracking, replaying the
//              delivered PCs of the collected events against the dynamic
//              decode loop and the precomputed sa::BacktrackTable.
//
// Emits one machine-readable JSON object on the last line; the human-
// readable summary goes before it. Acceptance bars: sharded >= 2x baseline
// (the PR 3 refactor's bar), and a fold-stage floor on the radix engine —
// 5x the committed sharded engine's 7.3M events/s, normalized for machine
// speed via the in-run Baseline measurement (see the floor computation
// below; DSPROF_BENCH_FLOOR_FOLD_EVENTS_PER_SEC overrides with an absolute
// events/s floor, 0 disables). The backtrack table's own >= 2x bar is
// enforced by bench/backtrack_table.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analyze/reduction.hpp"
#include "bench_json.hpp"
#include "collect/collector.hpp"
#include "mcfsim/experiments.hpp"
#include "sa/backtrack_table.hpp"

using namespace dsprof;
using collect::backtrack_dynamic;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best-of-N wall time of `fn` (seconds).
template <typename F>
double best_of(int n, F&& fn) {
  double best = 1e300;
  for (int i = 0; i < n; ++i) {
    const auto t0 = Clock::now();
    fn();
    const double s = seconds_since(t0);
    if (s < best) best = s;
  }
  return best;
}

/// Replay every event of `ex` into `out` (the collection append path,
/// minus the simulated machine).
void replay(const experiment::Experiment& ex, experiment::EventStore& out) {
  const auto& ev = ex.events;
  for (size_t i = 0; i < ev.size(); ++i) {
    const auto e = ev[i];
    const auto cs = ev.callstack(i);
    out.append(e.pic, e.event, e.weight, e.delivered_pc, e.has_candidate, e.candidate_pc,
               e.has_ea, e.ea, cs.ptr, cs.len, e.seq);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "pipeline_throughput");
  std::puts("== PIPELINE: event-store append + reduction throughput (FIG1 workload) ==");
  const auto setup = mcfsim::PaperSetup::standard();
  const auto exps = mcfsim::collect_paper_experiments(setup);
  const std::vector<const experiment::Experiment*> both = {&exps.ex1, &exps.ex2};
  const size_t n_events = exps.ex1.events.size() + exps.ex2.events.size();
  const size_t n_unique =
      exps.ex1.events.unique_callstacks() + exps.ex2.events.unique_callstacks();
  std::printf("events: %zu   unique callstacks: %zu   arena: %zu words\n", n_events,
              n_unique, exps.ex1.events.arena_words() + exps.ex2.events.arena_words());

  // --- append ---------------------------------------------------------------
  const double t_append = best_of(5, [&] {
    experiment::EventStore store;
    replay(exps.ex1, store);
    replay(exps.ex2, store);
    if (store.size() != n_events) std::abort();
  });
  const double append_eps = static_cast<double>(n_events) / t_append;

  // --- reduction ------------------------------------------------------------
  const unsigned threads = analyze::Reduction::resolve_threads();
  const double t_baseline = best_of(3, [&] {
    analyze::Reduction::run(both, 1, analyze::Reduction::Engine::Baseline);
  });
  const double t_sharded1 = best_of(5, [&] {
    analyze::Reduction::run(both, 1, analyze::Reduction::Engine::Sharded);
  });
  const double t_sharded = best_of(5, [&] {
    analyze::Reduction::run(both, threads, analyze::Reduction::Engine::Sharded);
  });
  const double t_radix1 = best_of(5, [&] {
    analyze::Reduction::run(both, 1, analyze::Reduction::Engine::Radix);
  });
  const double t_radix = best_of(5, [&] {
    analyze::Reduction::run(both, threads, analyze::Reduction::Engine::Radix);
  });

  // Equivalence spot-check: the engines must agree exactly.
  const auto rb = analyze::Reduction::run(both, 1, analyze::Reduction::Engine::Baseline);
  const auto rs = analyze::Reduction::run(both, threads, analyze::Reduction::Engine::Sharded);
  const auto rr = analyze::Reduction::run(both, threads, analyze::Reduction::Engine::Radix);
  if (rb.events_reduced != rs.events_reduced || rb.total != rs.total ||
      rb.data_total != rs.data_total) {
    std::fputs("FATAL: baseline and sharded reductions disagree\n", stderr);
    return 1;
  }
  if (rb.events_reduced != rr.events_reduced || rb.total != rr.total ||
      rb.data_total != rr.data_total) {
    std::fputs("FATAL: baseline and radix reductions disagree\n", stderr);
    return 1;
  }

  // --- backtrack ------------------------------------------------------------
  // Replay the delivered PCs of the collected events through both backtracking
  // engines (same synthetic register file per event for both).
  struct BtQuery {
    u64 delivered_pc;
    machine::TriggerKind kind;
  };
  std::vector<BtQuery> bt;
  for (const auto* ex : both) {
    for (size_t i = 0; i < ex->events.size(); ++i) {
      const auto e = ex->events[i];
      bt.push_back({e.delivered_pc, machine::hw_event_info(e.event).trigger});
    }
  }
  constexpr u32 kWindow = 16;
  std::array<u64, 32> regs{};
  u64 seed = 0x2545f4914f6cdd1dULL;
  for (size_t r = 1; r < 32; ++r) regs[r] = seed = mix_u64(seed + r);
  const sym::Image& img = exps.ex1.image;
  const sa::BacktrackTable btab = sa::BacktrackTable::build(img, kWindow);
  volatile u64 bt_sink = 0;
  const double t_bt_dyn = best_of(5, [&] {
    u64 acc = 0;
    for (const auto& q : bt)
      acc += backtrack_dynamic(img, q.delivered_pc, q.kind, regs, kWindow).candidate_pc;
    bt_sink = acc;
  });
  const double t_bt_tab = best_of(5, [&] {
    u64 acc = 0;
    for (const auto& q : bt) acc += btab.query(q.delivered_pc, q.kind, regs).candidate_pc;
    bt_sink = acc;
  });
  (void)bt_sink;
  const double bt_dyn_eps = static_cast<double>(bt.size()) / t_bt_dyn;
  const double bt_tab_eps = static_cast<double>(bt.size()) / t_bt_tab;
  const double bt_speedup = bt_tab_eps / bt_dyn_eps;

  const double base_eps = static_cast<double>(n_events) / t_baseline;
  const double sh1_eps = static_cast<double>(n_events) / t_sharded1;
  const double sh_eps = static_cast<double>(n_events) / t_sharded;
  const double rx1_eps = static_cast<double>(n_events) / t_radix1;
  const double rx_eps = static_cast<double>(n_events) / t_radix;
  const double speedup = sh_eps / base_eps;
  const double radix_speedup = rx_eps / sh_eps;

  std::printf("\n%-28s %12s %14s\n", "stage", "time (ms)", "events/sec");
  std::printf("%-28s %12.2f %14.3e\n", "append (columnar store)", t_append * 1e3, append_eps);
  std::printf("%-28s %12.2f %14.3e\n", "reduce baseline (std::map)", t_baseline * 1e3,
              base_eps);
  std::printf("%-28s %12.2f %14.3e\n", "reduce sharded (1 thread)", t_sharded1 * 1e3, sh1_eps);
  std::printf("reduce sharded (%2u threads)  %12.2f %14.3e\n", threads, t_sharded * 1e3,
              sh_eps);
  std::printf("%-28s %12.2f %14.3e\n", "reduce radix (1 thread)", t_radix1 * 1e3, rx1_eps);
  std::printf("reduce radix (%2u threads)    %12.2f %14.3e\n", threads, t_radix * 1e3, rx_eps);
  std::printf("%-28s %12.2f %14.3e\n", "backtrack dynamic (loop)", t_bt_dyn * 1e3,
              bt_dyn_eps);
  std::printf("%-28s %12.2f %14.3e\n", "backtrack table (sa)", t_bt_tab * 1e3, bt_tab_eps);
  std::printf("\nsharded vs baseline speedup: %.2fx %s\n", speedup,
              speedup >= 2.0 ? "(>= 2x: PASS)" : "(< 2x: FAIL)");
  std::printf("radix vs sharded speedup: %.2fx\n", radix_speedup);
  std::printf("backtrack table vs dynamic speedup: %.2fx\n", bt_speedup);

  // Fold-stage floor: the radix engine must deliver the PR's acceptance bar
  // — 5x the committed sharded engine (7.302848M events/s, from the machine
  // that committed BENCH_pipeline_throughput.json) — normalized for runner
  // speed using the untouched Baseline engine as the in-run yardstick
  // (committed 1.802810M events/s). A fixed absolute floor conflates engine
  // speedup with machine speed: shared runners here vary by 30%+ between
  // sweeps, and stage-to-stage within one run. The 0.7 noise allowance
  // absorbs that intra-run variance while still failing loudly if the fused
  // fast path regresses toward per-event folding (which would land at the
  // sharded engine's ~4x baseline, less than half the gate).
  // DSPROF_BENCH_FLOOR_FOLD_EVENTS_PER_SEC overrides with an absolute
  // floor; 0 disables.
  const double committed_sharded = 7.302848e6;
  const double committed_baseline = 1.802810e6;
  double fold_floor = 5.0 * (committed_sharded / committed_baseline) * 0.7 * base_eps;
  if (const char* env = std::getenv("DSPROF_BENCH_FLOOR_FOLD_EVENTS_PER_SEC")) {
    fold_floor = std::atof(env);
  }
  const bool fold_pass = fold_floor <= 0.0 || rx_eps >= fold_floor;
  std::printf("fold floor: %.0f events/s (machine-normalized) -> %s\n", fold_floor,
              fold_pass ? "pass" : "FAIL");

  const bool pass = speedup >= 2.0 && fold_pass;
  json_out.emit(
      "{\"bench\":\"pipeline_throughput\",\"workload\":\"FIG1\",\"events\":%zu,"
      "\"unique_callstacks\":%zu,"
      "\"append_events_per_sec\":%.6e,\"baseline_events_per_sec\":%.6e,"
      "\"sharded1_events_per_sec\":%.6e,\"sharded_events_per_sec\":%.6e,"
      "\"radix1_events_per_sec\":%.6e,\"radix_events_per_sec\":%.6e,"
      "\"threads\":%u,\"speedup\":%.3f,\"radix_speedup\":%.3f,"
      "\"fold_floor_events_per_sec\":%.0f,"
      "\"backtrack_dynamic_events_per_sec\":%.6e,"
      "\"backtrack_table_events_per_sec\":%.6e,\"backtrack_speedup\":%.3f}",
      n_events, n_unique, append_eps, base_eps, sh1_eps, sh_eps, rx1_eps, rx_eps, threads,
      speedup, radix_speedup, fold_floor, bt_dyn_eps, bt_tab_eps, bt_speedup);
  return pass ? 0 : 1;
}
