// FW1 — paper §4 (future work): use the experiment to construct a prefetch
// feedback file, recompile with prefetch insertion, and measure.
//
// Two regimes, both anticipated by the paper:
//  * the streaming arc scan (primal_bea_mpp) CAN be prefetched ahead;
//  * the pointer-chasing arc.cost loads in refresh_potential CANNOT —
//    "their address was determined ... too soon to be effectively
//    prefetched" (§3.2.3).
#include <cstdio>

#include "analyze/feedback.hpp"
#include "bench_json.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main(int argc, char** argv) {
  const bench::JsonSink json_out(argc, argv, "prefetch_feedback");
  std::puts("== FW1: prefetch feedback -> recompile with prefetch insertion ==");
  auto setup = mcfsim::PaperSetup::small();
  // Disable the hardware stream prefetch so the software prefetch matters.
  setup.cpu.hierarchy.ec_stream_prefetch = false;

  // 1. Profile and write the feedback file.
  const auto exps = mcfsim::collect_paper_experiments(setup);
  analyze::Analysis a({&exps.ex1, &exps.ex2});
  const auto entries =
      analyze::prefetch_feedback(a, static_cast<size_t>(machine::HwEvent::EC_stall_cycles));
  std::puts("-- feedback file --");
  std::fputs(analyze::feedback_to_text(entries).c_str(), stdout);

  // 2. Recompile with prefetch insertion for the feedback's streaming
  //    reference (the arc scan) and re-measure.
  const machine::RunResult before = mcfsim::measure_run(setup);
  auto pf = setup;
  pf.build.prefetch_arc_scan = true;
  const machine::RunResult after = mcfsim::measure_run(pf);
  const double gain =
      100.0 * (1.0 - static_cast<double>(after.cycles) / static_cast<double>(before.cycles));
  std::printf("\n  baseline:            %12llu cycles\n",
              static_cast<unsigned long long>(before.cycles));
  std::printf("  with arc-scan prefetch: %9llu cycles   speedup %.1f%%\n",
              static_cast<unsigned long long>(after.cycles), gain);
  std::puts("\nThe pointer-chasing refresh_potential references remain in the");
  std::puts("feedback file but cannot be prefetched (address known too late),");
  std::puts("exactly as the paper notes for node->basic_arc->cost.");
  json_out.emit(
      "{\"bench\":\"prefetch_feedback\",\"feedback_entries\":%zu,"
      "\"baseline_cycles\":%llu,\"prefetch_cycles\":%llu,\"speedup_pct\":%.2f}",
      entries.size(), static_cast<unsigned long long>(before.cycles),
      static_cast<unsigned long long>(after.cycles), gain);
  return 0;
}
