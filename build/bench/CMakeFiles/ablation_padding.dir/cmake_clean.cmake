file(REMOVE_RECURSE
  "CMakeFiles/ablation_padding.dir/ablation_padding.cpp.o"
  "CMakeFiles/ablation_padding.dir/ablation_padding.cpp.o.d"
  "ablation_padding"
  "ablation_padding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_padding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
