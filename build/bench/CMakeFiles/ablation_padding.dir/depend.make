# Empty dependencies file for ablation_padding.
# This may be replaced when dependencies are built.
