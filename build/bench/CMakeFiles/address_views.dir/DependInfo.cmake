
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/address_views.cpp" "bench/CMakeFiles/address_views.dir/address_views.cpp.o" "gcc" "bench/CMakeFiles/address_views.dir/address_views.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dsp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dsp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dsp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dsp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/dsp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sym/CMakeFiles/dsp_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/scc/CMakeFiles/dsp_scc.dir/DependInfo.cmake"
  "/root/repo/build/src/experiment/CMakeFiles/dsp_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/dsp_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/analyze/CMakeFiles/dsp_analyze.dir/DependInfo.cmake"
  "/root/repo/build/src/mcf/CMakeFiles/dsp_mcf.dir/DependInfo.cmake"
  "/root/repo/build/src/mcfsim/CMakeFiles/dsp_mcfsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
