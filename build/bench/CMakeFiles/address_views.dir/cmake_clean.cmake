file(REMOVE_RECURSE
  "CMakeFiles/address_views.dir/address_views.cpp.o"
  "CMakeFiles/address_views.dir/address_views.cpp.o.d"
  "address_views"
  "address_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/address_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
