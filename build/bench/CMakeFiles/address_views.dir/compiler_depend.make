# Empty compiler generated dependencies file for address_views.
# This may be replaced when dependencies are built.
