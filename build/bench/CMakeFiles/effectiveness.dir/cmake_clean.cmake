file(REMOVE_RECURSE
  "CMakeFiles/effectiveness.dir/effectiveness.cpp.o"
  "CMakeFiles/effectiveness.dir/effectiveness.cpp.o.d"
  "effectiveness"
  "effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
