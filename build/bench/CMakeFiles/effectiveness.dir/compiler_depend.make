# Empty compiler generated dependencies file for effectiveness.
# This may be replaced when dependencies are built.
