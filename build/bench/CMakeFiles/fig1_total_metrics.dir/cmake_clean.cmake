file(REMOVE_RECURSE
  "CMakeFiles/fig1_total_metrics.dir/fig1_total_metrics.cpp.o"
  "CMakeFiles/fig1_total_metrics.dir/fig1_total_metrics.cpp.o.d"
  "fig1_total_metrics"
  "fig1_total_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_total_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
