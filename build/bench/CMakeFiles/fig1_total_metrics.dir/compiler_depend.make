# Empty compiler generated dependencies file for fig1_total_metrics.
# This may be replaced when dependencies are built.
