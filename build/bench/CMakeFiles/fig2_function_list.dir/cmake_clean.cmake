file(REMOVE_RECURSE
  "CMakeFiles/fig2_function_list.dir/fig2_function_list.cpp.o"
  "CMakeFiles/fig2_function_list.dir/fig2_function_list.cpp.o.d"
  "fig2_function_list"
  "fig2_function_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_function_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
