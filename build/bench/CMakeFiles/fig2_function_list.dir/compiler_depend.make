# Empty compiler generated dependencies file for fig2_function_list.
# This may be replaced when dependencies are built.
