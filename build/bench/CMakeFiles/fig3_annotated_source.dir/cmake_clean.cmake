file(REMOVE_RECURSE
  "CMakeFiles/fig3_annotated_source.dir/fig3_annotated_source.cpp.o"
  "CMakeFiles/fig3_annotated_source.dir/fig3_annotated_source.cpp.o.d"
  "fig3_annotated_source"
  "fig3_annotated_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_annotated_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
