# Empty dependencies file for fig3_annotated_source.
# This may be replaced when dependencies are built.
