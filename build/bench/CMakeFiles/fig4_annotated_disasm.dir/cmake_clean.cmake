file(REMOVE_RECURSE
  "CMakeFiles/fig4_annotated_disasm.dir/fig4_annotated_disasm.cpp.o"
  "CMakeFiles/fig4_annotated_disasm.dir/fig4_annotated_disasm.cpp.o.d"
  "fig4_annotated_disasm"
  "fig4_annotated_disasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_annotated_disasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
