# Empty compiler generated dependencies file for fig4_annotated_disasm.
# This may be replaced when dependencies are built.
