file(REMOVE_RECURSE
  "CMakeFiles/fig5_hot_pcs.dir/fig5_hot_pcs.cpp.o"
  "CMakeFiles/fig5_hot_pcs.dir/fig5_hot_pcs.cpp.o.d"
  "fig5_hot_pcs"
  "fig5_hot_pcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_hot_pcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
