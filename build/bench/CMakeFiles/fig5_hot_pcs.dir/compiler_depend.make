# Empty compiler generated dependencies file for fig5_hot_pcs.
# This may be replaced when dependencies are built.
