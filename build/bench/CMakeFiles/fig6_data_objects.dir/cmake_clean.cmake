file(REMOVE_RECURSE
  "CMakeFiles/fig6_data_objects.dir/fig6_data_objects.cpp.o"
  "CMakeFiles/fig6_data_objects.dir/fig6_data_objects.cpp.o.d"
  "fig6_data_objects"
  "fig6_data_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_data_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
