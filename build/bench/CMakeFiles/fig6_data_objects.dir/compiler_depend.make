# Empty compiler generated dependencies file for fig6_data_objects.
# This may be replaced when dependencies are built.
