file(REMOVE_RECURSE
  "CMakeFiles/fig7_node_expansion.dir/fig7_node_expansion.cpp.o"
  "CMakeFiles/fig7_node_expansion.dir/fig7_node_expansion.cpp.o.d"
  "fig7_node_expansion"
  "fig7_node_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_node_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
