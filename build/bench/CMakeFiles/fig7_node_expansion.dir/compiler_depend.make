# Empty compiler generated dependencies file for fig7_node_expansion.
# This may be replaced when dependencies are built.
