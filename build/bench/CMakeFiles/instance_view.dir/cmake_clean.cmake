file(REMOVE_RECURSE
  "CMakeFiles/instance_view.dir/instance_view.cpp.o"
  "CMakeFiles/instance_view.dir/instance_view.cpp.o.d"
  "instance_view"
  "instance_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
