# Empty compiler generated dependencies file for instance_view.
# This may be replaced when dependencies are built.
