file(REMOVE_RECURSE
  "CMakeFiles/opt_speedups.dir/opt_speedups.cpp.o"
  "CMakeFiles/opt_speedups.dir/opt_speedups.cpp.o.d"
  "opt_speedups"
  "opt_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
