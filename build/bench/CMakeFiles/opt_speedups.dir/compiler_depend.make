# Empty compiler generated dependencies file for opt_speedups.
# This may be replaced when dependencies are built.
