file(REMOVE_RECURSE
  "CMakeFiles/overhead_hwcprof.dir/overhead_hwcprof.cpp.o"
  "CMakeFiles/overhead_hwcprof.dir/overhead_hwcprof.cpp.o.d"
  "overhead_hwcprof"
  "overhead_hwcprof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_hwcprof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
