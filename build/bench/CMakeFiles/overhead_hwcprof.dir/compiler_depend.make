# Empty compiler generated dependencies file for overhead_hwcprof.
# This may be replaced when dependencies are built.
