# Empty dependencies file for overhead_hwcprof.
# This may be replaced when dependencies are built.
