file(REMOVE_RECURSE
  "CMakeFiles/prefetch_feedback.dir/prefetch_feedback.cpp.o"
  "CMakeFiles/prefetch_feedback.dir/prefetch_feedback.cpp.o.d"
  "prefetch_feedback"
  "prefetch_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
