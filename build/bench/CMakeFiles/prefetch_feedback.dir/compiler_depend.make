# Empty compiler generated dependencies file for prefetch_feedback.
# This may be replaced when dependencies are built.
