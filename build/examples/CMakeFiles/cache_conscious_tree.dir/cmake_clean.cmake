file(REMOVE_RECURSE
  "CMakeFiles/cache_conscious_tree.dir/cache_conscious_tree.cpp.o"
  "CMakeFiles/cache_conscious_tree.dir/cache_conscious_tree.cpp.o.d"
  "cache_conscious_tree"
  "cache_conscious_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_conscious_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
