# Empty dependencies file for cache_conscious_tree.
# This may be replaced when dependencies are built.
