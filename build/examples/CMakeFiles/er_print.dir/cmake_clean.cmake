file(REMOVE_RECURSE
  "CMakeFiles/er_print.dir/er_print.cpp.o"
  "CMakeFiles/er_print.dir/er_print.cpp.o.d"
  "er_print"
  "er_print.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_print.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
