# Empty compiler generated dependencies file for er_print.
# This may be replaced when dependencies are built.
