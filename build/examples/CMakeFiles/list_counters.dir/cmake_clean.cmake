file(REMOVE_RECURSE
  "CMakeFiles/list_counters.dir/list_counters.cpp.o"
  "CMakeFiles/list_counters.dir/list_counters.cpp.o.d"
  "list_counters"
  "list_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
