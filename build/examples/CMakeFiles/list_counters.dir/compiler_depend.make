# Empty compiler generated dependencies file for list_counters.
# This may be replaced when dependencies are built.
