file(REMOVE_RECURSE
  "CMakeFiles/matrix_traversal.dir/matrix_traversal.cpp.o"
  "CMakeFiles/matrix_traversal.dir/matrix_traversal.cpp.o.d"
  "matrix_traversal"
  "matrix_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
