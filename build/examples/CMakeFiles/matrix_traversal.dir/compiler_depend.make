# Empty compiler generated dependencies file for matrix_traversal.
# This may be replaced when dependencies are built.
