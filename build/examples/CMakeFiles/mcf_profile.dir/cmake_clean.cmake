file(REMOVE_RECURSE
  "CMakeFiles/mcf_profile.dir/mcf_profile.cpp.o"
  "CMakeFiles/mcf_profile.dir/mcf_profile.cpp.o.d"
  "mcf_profile"
  "mcf_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcf_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
