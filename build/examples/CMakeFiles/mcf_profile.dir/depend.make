# Empty dependencies file for mcf_profile.
# This may be replaced when dependencies are built.
