file(REMOVE_RECURSE
  "CMakeFiles/struct_layout_tuning.dir/struct_layout_tuning.cpp.o"
  "CMakeFiles/struct_layout_tuning.dir/struct_layout_tuning.cpp.o.d"
  "struct_layout_tuning"
  "struct_layout_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/struct_layout_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
