# Empty compiler generated dependencies file for struct_layout_tuning.
# This may be replaced when dependencies are built.
