# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("isa")
subdirs("mem")
subdirs("cache")
subdirs("machine")
subdirs("sym")
subdirs("scc")
subdirs("experiment")
subdirs("collect")
subdirs("analyze")
subdirs("mcf")
subdirs("mcfsim")
