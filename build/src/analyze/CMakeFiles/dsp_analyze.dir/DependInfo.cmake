
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyze/analysis.cpp" "src/analyze/CMakeFiles/dsp_analyze.dir/analysis.cpp.o" "gcc" "src/analyze/CMakeFiles/dsp_analyze.dir/analysis.cpp.o.d"
  "/root/repo/src/analyze/feedback.cpp" "src/analyze/CMakeFiles/dsp_analyze.dir/feedback.cpp.o" "gcc" "src/analyze/CMakeFiles/dsp_analyze.dir/feedback.cpp.o.d"
  "/root/repo/src/analyze/metrics.cpp" "src/analyze/CMakeFiles/dsp_analyze.dir/metrics.cpp.o" "gcc" "src/analyze/CMakeFiles/dsp_analyze.dir/metrics.cpp.o.d"
  "/root/repo/src/analyze/reports.cpp" "src/analyze/CMakeFiles/dsp_analyze.dir/reports.cpp.o" "gcc" "src/analyze/CMakeFiles/dsp_analyze.dir/reports.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dsp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dsp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sym/CMakeFiles/dsp_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/dsp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/experiment/CMakeFiles/dsp_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dsp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dsp_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
