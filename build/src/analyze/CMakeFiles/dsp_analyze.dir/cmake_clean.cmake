file(REMOVE_RECURSE
  "CMakeFiles/dsp_analyze.dir/analysis.cpp.o"
  "CMakeFiles/dsp_analyze.dir/analysis.cpp.o.d"
  "CMakeFiles/dsp_analyze.dir/feedback.cpp.o"
  "CMakeFiles/dsp_analyze.dir/feedback.cpp.o.d"
  "CMakeFiles/dsp_analyze.dir/metrics.cpp.o"
  "CMakeFiles/dsp_analyze.dir/metrics.cpp.o.d"
  "CMakeFiles/dsp_analyze.dir/reports.cpp.o"
  "CMakeFiles/dsp_analyze.dir/reports.cpp.o.d"
  "libdsp_analyze.a"
  "libdsp_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
