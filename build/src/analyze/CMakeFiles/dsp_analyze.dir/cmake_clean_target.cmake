file(REMOVE_RECURSE
  "libdsp_analyze.a"
)
