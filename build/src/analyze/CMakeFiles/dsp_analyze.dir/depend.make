# Empty dependencies file for dsp_analyze.
# This may be replaced when dependencies are built.
