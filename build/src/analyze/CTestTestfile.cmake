# CMake generated Testfile for 
# Source directory: /root/repo/src/analyze
# Build directory: /root/repo/build/src/analyze
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
