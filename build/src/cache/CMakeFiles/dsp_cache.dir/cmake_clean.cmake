file(REMOVE_RECURSE
  "CMakeFiles/dsp_cache.dir/cache.cpp.o"
  "CMakeFiles/dsp_cache.dir/cache.cpp.o.d"
  "CMakeFiles/dsp_cache.dir/hierarchy.cpp.o"
  "CMakeFiles/dsp_cache.dir/hierarchy.cpp.o.d"
  "libdsp_cache.a"
  "libdsp_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
