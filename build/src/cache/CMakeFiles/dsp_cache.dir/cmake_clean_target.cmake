file(REMOVE_RECURSE
  "libdsp_cache.a"
)
