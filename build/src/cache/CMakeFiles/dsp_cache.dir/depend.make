# Empty dependencies file for dsp_cache.
# This may be replaced when dependencies are built.
