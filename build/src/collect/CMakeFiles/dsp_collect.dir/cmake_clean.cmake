file(REMOVE_RECURSE
  "CMakeFiles/dsp_collect.dir/collector.cpp.o"
  "CMakeFiles/dsp_collect.dir/collector.cpp.o.d"
  "libdsp_collect.a"
  "libdsp_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
