file(REMOVE_RECURSE
  "libdsp_collect.a"
)
