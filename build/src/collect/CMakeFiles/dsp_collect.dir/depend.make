# Empty dependencies file for dsp_collect.
# This may be replaced when dependencies are built.
