file(REMOVE_RECURSE
  "CMakeFiles/dsp_experiment.dir/experiment.cpp.o"
  "CMakeFiles/dsp_experiment.dir/experiment.cpp.o.d"
  "libdsp_experiment.a"
  "libdsp_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
