file(REMOVE_RECURSE
  "libdsp_experiment.a"
)
