# Empty compiler generated dependencies file for dsp_experiment.
# This may be replaced when dependencies are built.
