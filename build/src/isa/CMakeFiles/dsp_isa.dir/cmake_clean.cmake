file(REMOVE_RECURSE
  "CMakeFiles/dsp_isa.dir/assembler.cpp.o"
  "CMakeFiles/dsp_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/dsp_isa.dir/disasm.cpp.o"
  "CMakeFiles/dsp_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/dsp_isa.dir/isa.cpp.o"
  "CMakeFiles/dsp_isa.dir/isa.cpp.o.d"
  "libdsp_isa.a"
  "libdsp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
