file(REMOVE_RECURSE
  "libdsp_isa.a"
)
