# Empty compiler generated dependencies file for dsp_isa.
# This may be replaced when dependencies are built.
