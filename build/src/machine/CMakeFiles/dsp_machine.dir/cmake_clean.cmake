file(REMOVE_RECURSE
  "CMakeFiles/dsp_machine.dir/counters.cpp.o"
  "CMakeFiles/dsp_machine.dir/counters.cpp.o.d"
  "CMakeFiles/dsp_machine.dir/cpu.cpp.o"
  "CMakeFiles/dsp_machine.dir/cpu.cpp.o.d"
  "libdsp_machine.a"
  "libdsp_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
