file(REMOVE_RECURSE
  "libdsp_machine.a"
)
