# Empty dependencies file for dsp_machine.
# This may be replaced when dependencies are built.
