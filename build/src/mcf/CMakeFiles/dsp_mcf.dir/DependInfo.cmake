
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcf/generator.cpp" "src/mcf/CMakeFiles/dsp_mcf.dir/generator.cpp.o" "gcc" "src/mcf/CMakeFiles/dsp_mcf.dir/generator.cpp.o.d"
  "/root/repo/src/mcf/simplex.cpp" "src/mcf/CMakeFiles/dsp_mcf.dir/simplex.cpp.o" "gcc" "src/mcf/CMakeFiles/dsp_mcf.dir/simplex.cpp.o.d"
  "/root/repo/src/mcf/ssp.cpp" "src/mcf/CMakeFiles/dsp_mcf.dir/ssp.cpp.o" "gcc" "src/mcf/CMakeFiles/dsp_mcf.dir/ssp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
