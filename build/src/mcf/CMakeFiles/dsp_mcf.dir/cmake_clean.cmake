file(REMOVE_RECURSE
  "CMakeFiles/dsp_mcf.dir/generator.cpp.o"
  "CMakeFiles/dsp_mcf.dir/generator.cpp.o.d"
  "CMakeFiles/dsp_mcf.dir/simplex.cpp.o"
  "CMakeFiles/dsp_mcf.dir/simplex.cpp.o.d"
  "CMakeFiles/dsp_mcf.dir/ssp.cpp.o"
  "CMakeFiles/dsp_mcf.dir/ssp.cpp.o.d"
  "libdsp_mcf.a"
  "libdsp_mcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_mcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
