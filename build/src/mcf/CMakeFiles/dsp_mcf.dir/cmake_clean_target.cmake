file(REMOVE_RECURSE
  "libdsp_mcf.a"
)
