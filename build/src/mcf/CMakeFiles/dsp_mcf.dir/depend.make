# Empty dependencies file for dsp_mcf.
# This may be replaced when dependencies are built.
