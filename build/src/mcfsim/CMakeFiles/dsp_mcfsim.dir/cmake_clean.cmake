file(REMOVE_RECURSE
  "CMakeFiles/dsp_mcfsim.dir/experiments.cpp.o"
  "CMakeFiles/dsp_mcfsim.dir/experiments.cpp.o.d"
  "CMakeFiles/dsp_mcfsim.dir/mcfsim.cpp.o"
  "CMakeFiles/dsp_mcfsim.dir/mcfsim.cpp.o.d"
  "libdsp_mcfsim.a"
  "libdsp_mcfsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_mcfsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
