file(REMOVE_RECURSE
  "libdsp_mcfsim.a"
)
