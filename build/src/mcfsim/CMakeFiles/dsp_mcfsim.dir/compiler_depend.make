# Empty compiler generated dependencies file for dsp_mcfsim.
# This may be replaced when dependencies are built.
