file(REMOVE_RECURSE
  "CMakeFiles/dsp_mem.dir/memory.cpp.o"
  "CMakeFiles/dsp_mem.dir/memory.cpp.o.d"
  "libdsp_mem.a"
  "libdsp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
