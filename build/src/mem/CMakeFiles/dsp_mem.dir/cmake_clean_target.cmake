file(REMOVE_RECURSE
  "libdsp_mem.a"
)
