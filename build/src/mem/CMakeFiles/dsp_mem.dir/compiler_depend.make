# Empty compiler generated dependencies file for dsp_mem.
# This may be replaced when dependencies are built.
