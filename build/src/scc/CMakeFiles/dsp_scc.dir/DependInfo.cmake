
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scc/ast.cpp" "src/scc/CMakeFiles/dsp_scc.dir/ast.cpp.o" "gcc" "src/scc/CMakeFiles/dsp_scc.dir/ast.cpp.o.d"
  "/root/repo/src/scc/builder.cpp" "src/scc/CMakeFiles/dsp_scc.dir/builder.cpp.o" "gcc" "src/scc/CMakeFiles/dsp_scc.dir/builder.cpp.o.d"
  "/root/repo/src/scc/codegen.cpp" "src/scc/CMakeFiles/dsp_scc.dir/codegen.cpp.o" "gcc" "src/scc/CMakeFiles/dsp_scc.dir/codegen.cpp.o.d"
  "/root/repo/src/scc/module.cpp" "src/scc/CMakeFiles/dsp_scc.dir/module.cpp.o" "gcc" "src/scc/CMakeFiles/dsp_scc.dir/module.cpp.o.d"
  "/root/repo/src/scc/type.cpp" "src/scc/CMakeFiles/dsp_scc.dir/type.cpp.o" "gcc" "src/scc/CMakeFiles/dsp_scc.dir/type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dsp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dsp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sym/CMakeFiles/dsp_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dsp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/dsp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dsp_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
