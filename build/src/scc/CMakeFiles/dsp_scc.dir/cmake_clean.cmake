file(REMOVE_RECURSE
  "CMakeFiles/dsp_scc.dir/ast.cpp.o"
  "CMakeFiles/dsp_scc.dir/ast.cpp.o.d"
  "CMakeFiles/dsp_scc.dir/builder.cpp.o"
  "CMakeFiles/dsp_scc.dir/builder.cpp.o.d"
  "CMakeFiles/dsp_scc.dir/codegen.cpp.o"
  "CMakeFiles/dsp_scc.dir/codegen.cpp.o.d"
  "CMakeFiles/dsp_scc.dir/module.cpp.o"
  "CMakeFiles/dsp_scc.dir/module.cpp.o.d"
  "CMakeFiles/dsp_scc.dir/type.cpp.o"
  "CMakeFiles/dsp_scc.dir/type.cpp.o.d"
  "libdsp_scc.a"
  "libdsp_scc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_scc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
