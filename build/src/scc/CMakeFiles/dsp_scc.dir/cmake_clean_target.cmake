file(REMOVE_RECURSE
  "libdsp_scc.a"
)
