# Empty dependencies file for dsp_scc.
# This may be replaced when dependencies are built.
