file(REMOVE_RECURSE
  "CMakeFiles/dsp_support.dir/bytestream.cpp.o"
  "CMakeFiles/dsp_support.dir/bytestream.cpp.o.d"
  "CMakeFiles/dsp_support.dir/rng.cpp.o"
  "CMakeFiles/dsp_support.dir/rng.cpp.o.d"
  "CMakeFiles/dsp_support.dir/table.cpp.o"
  "CMakeFiles/dsp_support.dir/table.cpp.o.d"
  "libdsp_support.a"
  "libdsp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
