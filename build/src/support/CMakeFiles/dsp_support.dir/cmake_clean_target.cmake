file(REMOVE_RECURSE
  "libdsp_support.a"
)
