# Empty dependencies file for dsp_support.
# This may be replaced when dependencies are built.
