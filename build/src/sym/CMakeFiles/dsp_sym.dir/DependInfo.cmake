
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sym/image.cpp" "src/sym/CMakeFiles/dsp_sym.dir/image.cpp.o" "gcc" "src/sym/CMakeFiles/dsp_sym.dir/image.cpp.o.d"
  "/root/repo/src/sym/symtab.cpp" "src/sym/CMakeFiles/dsp_sym.dir/symtab.cpp.o" "gcc" "src/sym/CMakeFiles/dsp_sym.dir/symtab.cpp.o.d"
  "/root/repo/src/sym/types.cpp" "src/sym/CMakeFiles/dsp_sym.dir/types.cpp.o" "gcc" "src/sym/CMakeFiles/dsp_sym.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dsp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dsp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
