file(REMOVE_RECURSE
  "CMakeFiles/dsp_sym.dir/image.cpp.o"
  "CMakeFiles/dsp_sym.dir/image.cpp.o.d"
  "CMakeFiles/dsp_sym.dir/symtab.cpp.o"
  "CMakeFiles/dsp_sym.dir/symtab.cpp.o.d"
  "CMakeFiles/dsp_sym.dir/types.cpp.o"
  "CMakeFiles/dsp_sym.dir/types.cpp.o.d"
  "libdsp_sym.a"
  "libdsp_sym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_sym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
