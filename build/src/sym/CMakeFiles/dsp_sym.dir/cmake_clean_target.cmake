file(REMOVE_RECURSE
  "libdsp_sym.a"
)
