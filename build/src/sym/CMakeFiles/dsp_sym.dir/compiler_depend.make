# Empty compiler generated dependencies file for dsp_sym.
# This may be replaced when dependencies are built.
