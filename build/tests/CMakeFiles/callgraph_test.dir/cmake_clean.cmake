file(REMOVE_RECURSE
  "CMakeFiles/callgraph_test.dir/callgraph_test.cpp.o"
  "CMakeFiles/callgraph_test.dir/callgraph_test.cpp.o.d"
  "callgraph_test"
  "callgraph_test.pdb"
  "callgraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/callgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
