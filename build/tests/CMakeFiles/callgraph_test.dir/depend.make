# Empty dependencies file for callgraph_test.
# This may be replaced when dependencies are built.
