file(REMOVE_RECURSE
  "CMakeFiles/collect_test.dir/collect_test.cpp.o"
  "CMakeFiles/collect_test.dir/collect_test.cpp.o.d"
  "collect_test"
  "collect_test.pdb"
  "collect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
