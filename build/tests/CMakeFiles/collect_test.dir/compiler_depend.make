# Empty compiler generated dependencies file for collect_test.
# This may be replaced when dependencies are built.
