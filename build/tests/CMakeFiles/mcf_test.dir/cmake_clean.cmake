file(REMOVE_RECURSE
  "CMakeFiles/mcf_test.dir/mcf_test.cpp.o"
  "CMakeFiles/mcf_test.dir/mcf_test.cpp.o.d"
  "mcf_test"
  "mcf_test.pdb"
  "mcf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
