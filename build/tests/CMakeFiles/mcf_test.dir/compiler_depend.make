# Empty compiler generated dependencies file for mcf_test.
# This may be replaced when dependencies are built.
