file(REMOVE_RECURSE
  "CMakeFiles/mcfsim_test.dir/mcfsim_test.cpp.o"
  "CMakeFiles/mcfsim_test.dir/mcfsim_test.cpp.o.d"
  "mcfsim_test"
  "mcfsim_test.pdb"
  "mcfsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcfsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
