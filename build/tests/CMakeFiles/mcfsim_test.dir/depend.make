# Empty dependencies file for mcfsim_test.
# This may be replaced when dependencies are built.
