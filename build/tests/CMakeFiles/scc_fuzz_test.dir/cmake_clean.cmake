file(REMOVE_RECURSE
  "CMakeFiles/scc_fuzz_test.dir/scc_fuzz_test.cpp.o"
  "CMakeFiles/scc_fuzz_test.dir/scc_fuzz_test.cpp.o.d"
  "scc_fuzz_test"
  "scc_fuzz_test.pdb"
  "scc_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scc_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
