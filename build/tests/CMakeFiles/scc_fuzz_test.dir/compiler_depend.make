# Empty compiler generated dependencies file for scc_fuzz_test.
# This may be replaced when dependencies are built.
