file(REMOVE_RECURSE
  "CMakeFiles/sym_test.dir/sym_test.cpp.o"
  "CMakeFiles/sym_test.dir/sym_test.cpp.o.d"
  "sym_test"
  "sym_test.pdb"
  "sym_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sym_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
