# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/sym_test[1]_include.cmake")
include("/root/repo/build/tests/scc_test[1]_include.cmake")
include("/root/repo/build/tests/scc_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/collect_test[1]_include.cmake")
include("/root/repo/build/tests/analyze_test[1]_include.cmake")
include("/root/repo/build/tests/callgraph_test[1]_include.cmake")
include("/root/repo/build/tests/mcf_test[1]_include.cmake")
include("/root/repo/build/tests/mcfsim_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
