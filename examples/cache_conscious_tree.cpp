// Cache-conscious structure layout (the paper's related work [16-18],
// Chilimbi et al.), driven by dsprof's data-space views: binary search over
// a pointer-linked BST versus the same tree stored in breadth-first array
// order (children of slot i at 2i+1/2i+2 — one malloc, no pointers).
//
// The pointer tree's nodes are placed in (pseudo-random) allocation order —
// the usual malloc-per-node situation Chilimbi's work targets — while the
// array layout packs the hot top levels into a few cache lines. The
// code-space profiles look similar (compare, descend); the data-space view
// shows where the pointer layout bleeds.
#include <cstdio>

#include "analyze/reports.hpp"
#include "collect/collector.hpp"
#include "scc/builder.hpp"
#include "scc/compile.hpp"

using namespace dsprof;
using scc::FunctionBuilder;
using scc::Type;
using scc::Val;

int main() {
  constexpr i64 kNodes = (1 << 15) - 1;  // complete tree of depth 15
  constexpr i64 kQueries = 20000;

  scc::Module mod;
  scc::StructDef* tnode = mod.add_struct("tree_node");
  tnode->field("key", Type::i64())
      .field("left", Type::ptr(tnode))
      .field("right", Type::ptr(tnode))
      .field("payload", Type::i64());
  scc::Function* mal = scc::add_runtime(mod);

  // Build a complete BST over keys 0..kNodes-1: node for slot i (heap order)
  // gets the key that an in-order traversal would assign — computed
  // iteratively by descending the implicit tree.
  scc::Function* ptr_search = mod.add_function("pointer_search");
  {
    FunctionBuilder fb(mod, *ptr_search);
    auto root = fb.param("root", Type::ptr(tnode));
    auto key = fb.param("key", Type::i64());
    auto cur = fb.local("cur", Type::ptr(tnode));
    fb.set(cur, root);
    fb.while_(cur != 0, [&] {
      fb.if_(cur["key"] == key, [&] { fb.ret(cur["payload"]); });
      fb.if_else(key < cur["key"], [&] { fb.set(cur, cur["left"]); },
                 [&] { fb.set(cur, cur["right"]); });
    });
    fb.ret(Val(-1));
  }

  scc::Function* array_search = mod.add_function("array_search");
  {
    FunctionBuilder fb(mod, *array_search);
    auto keys = fb.param("keys", Type::ptr_i64());
    auto payloads = fb.param("payloads", Type::ptr_i64());
    auto n = fb.param("n", Type::i64());
    auto key = fb.param("key", Type::i64());
    auto i = fb.local("i", Type::i64());
    fb.set(i, 0);
    fb.while_(i < n, [&] {
      fb.if_(keys.idx(i) == key, [&] { fb.ret(payloads.idx(i)); });
      fb.if_else(key < keys.idx(i), [&] { fb.set(i, i * 2 + 1); },
                 [&] { fb.set(i, i * 2 + 2); });
    });
    fb.ret(Val(-1));
  }

  scc::Function* main_fn = mod.add_function("main");
  {
    FunctionBuilder fb(mod, *main_fn);
    auto nodes = fb.local("nodes", Type::ptr(tnode));
    auto keys = fb.local("keys", Type::ptr_i64());
    auto payloads = fb.local("payloads", Type::ptr_i64());
    auto i = fb.local("i", Type::i64());
    auto lo = fb.local("lo", Type::i64());
    auto hi = fb.local("hi", Type::i64());
    auto stacksz = fb.local("stacksz", Type::i64());
    auto work = fb.local("work", Type::ptr_i64());  // (slot, lo, hi) triples
    auto slot = fb.local("slot", Type::i64());
    auto mid = fb.local("mid", Type::i64());
    auto p = fb.local("p", Type::ptr(tnode));
    auto acc = fb.local("acc", Type::i64());
    auto q = fb.local("q", Type::i64());

    fb.set(nodes,
           scc::cast(fb.call(mal, {Val(kNodes * static_cast<i64>(tnode->size()))}),
                     Type::ptr(tnode)));
    fb.set(keys, scc::cast(fb.call(mal, {Val(kNodes * 8)}), Type::ptr_i64()));
    fb.set(payloads, scc::cast(fb.call(mal, {Val(kNodes * 8)}), Type::ptr_i64()));
    fb.set(work, scc::cast(fb.call(mal, {Val(kNodes * 24 + 64)}), Type::ptr_i64()));

    // Assign in-order keys to heap-ordered slots with an explicit worklist:
    // push (slot 0, range [0, kNodes)).
    fb.set(work.idx(Val(0)), 0);
    fb.set(work.idx(Val(1)), 0);
    fb.set(work.idx(Val(2)), kNodes);
    fb.set(stacksz, 1);
    fb.while_(stacksz > 0, [&] {
      fb.set(stacksz, stacksz - 1);
      fb.set(slot, work.idx(stacksz * 3));
      fb.set(lo, work.idx(stacksz * 3 + 1));
      fb.set(hi, work.idx(stacksz * 3 + 2));
      fb.set(mid, (lo + hi) / 2);
      // Pointer nodes live at a pseudo-random permutation of their slot —
      // modelling per-node allocation order unrelated to access order.
      fb.set(p, nodes + (slot * 1997 + 3) % kNodes);
      fb.set(p["key"], mid);
      fb.set(p["payload"], mid * 3);
      fb.set(keys.idx(slot), mid);
      fb.set(payloads.idx(slot), mid * 3);
      fb.if_else(slot * 2 + 1 < kNodes,
                 [&] { fb.set(p["left"], nodes + ((slot * 2 + 1) * 1997 + 3) % kNodes); },
                 [&] { fb.set(p["left"], 0); });
      fb.if_else(slot * 2 + 2 < kNodes,
                 [&] { fb.set(p["right"], nodes + ((slot * 2 + 2) * 1997 + 3) % kNodes); },
                 [&] { fb.set(p["right"], 0); });
      fb.if_(lo < mid, [&] {  // push left child range
        fb.set(work.idx(stacksz * 3), slot * 2 + 1);
        fb.set(work.idx(stacksz * 3 + 1), lo);
        fb.set(work.idx(stacksz * 3 + 2), mid);
        fb.set(stacksz, stacksz + 1);
      });
      fb.if_(mid + 1 < hi, [&] {  // push right child range
        fb.set(work.idx(stacksz * 3), slot * 2 + 2);
        fb.set(work.idx(stacksz * 3 + 1), mid + 1);
        fb.set(work.idx(stacksz * 3 + 2), hi);
        fb.set(stacksz, stacksz + 1);
      });
    });

    // Query both structures with the same pseudo-random keys.
    fb.set(acc, 0);
    fb.set(q, 0);
    fb.while_(q < kQueries, [&] {
      fb.set(i, (q * 48271 + 11) % kNodes);
      fb.set(acc, acc + fb.call(ptr_search, {nodes + Val(3), i}));  // root at perm(0)=3
      fb.set(q, q + 1);
    });
    fb.set(q, 0);
    fb.while_(q < kQueries, [&] {
      fb.set(i, (q * 48271 + 11) % kNodes);
      fb.set(acc, acc - fb.call(array_search, {keys, payloads, Val(kNodes), i}));
      fb.set(q, q + 1);
    });
    fb.trace(acc);  // both find every key: payload sums cancel to 0
    fb.ret(Val(0));
  }

  const sym::Image image = scc::compile(mod);
  collect::CollectOptions opt;
  opt.hw = "+ecstall,on,+ecrm,hi";
  opt.clock = "hi";
  opt.cpu.hierarchy.dcache = {16 * 1024, 4, 32, false};
  opt.cpu.hierarchy.ecache = {256 * 1024, 2, 512, true};
  collect::Collector collector(image, opt);
  const experiment::Experiment ex = collector.run();

  analyze::Analysis a(ex);
  std::puts("Pointer BST vs breadth-first array layout, same queries:\n");
  std::fputs(analyze::render_function_list(a).c_str(), stdout);
  std::puts("\n-- data objects --");
  std::fputs(analyze::render_data_objects(
                 a, static_cast<size_t>(machine::HwEvent::EC_stall_cycles))
                 .c_str(),
             stdout);
  std::puts("\n-- tree_node members --");
  std::fputs(analyze::render_member_expansion(a, "tree_node").c_str(), stdout);

  const auto stall = static_cast<size_t>(machine::HwEvent::EC_stall_cycles);
  double ptr_cost = 0, arr_cost = 0;
  for (const auto& f : a.functions(stall)) {
    if (f.name == "pointer_search") ptr_cost = f.mv[stall];
    if (f.name == "array_search") arr_cost = f.mv[stall];
  }
  std::printf("\nE$ stall, pointer vs array layout: %.1fx\n",
              arr_cost > 0 ? ptr_cost / arr_cost : 0.0);
  std::puts("Both searches do the same comparisons; the pointer layout pays for");
  std::puts("32-byte nodes scattered in allocation order (Chilimbi et al., the");
  std::puts("paper's refs [16-18]); the array layout keeps hot levels resident.");
  return 0;
}
