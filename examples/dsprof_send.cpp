// dsprof_send — collector-side streaming client for dsprofd.
//
// Collects the paper's MCF workload (§3.1, first counter pair) and streams
// the events to a running dsprofd *during the run* via the Collector's
// batch_export hook — the live-ingest path — then flushes, fetches a
// snapshot, and closes. Alternatively replays a saved experiment directory,
// or (--merged) acts as a monitoring client: fetch the daemon's merged
// fleet view without streaming anything.
//
// Usage:
//   dsprof_send --connect <uri> [--dir <experiment-dir>]
//               [--workload mcf|mcf-small] [--batch N]
//               [--save <dir>] [--report <file>] [--stats] [--merged]
//
//   --connect <uri>  dsprofd endpoint: unix://<path>, tcp://<host>:<port>,
//                    or a bare path (unix). Connection retries with backoff.
//   --dir <dir>      replay a saved experiment instead of collecting
//   --workload       which MCF setup to collect (default mcf-small)
//   --batch N        events per EventBatch frame (default 4096)
//   --save <dir>     also save the collected experiment (for offline diff:
//                    `er_print <dir> -J` must equal the streamed snapshot)
//   --report <file>  write the snapshot JSON to <file>
//   --stats          print the daemon's stats frame
//   --merged         fetch the merged fleet view instead of streaming
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "mcfsim/experiments.hpp"
#include "serve/client.hpp"

using namespace dsprof;

namespace {

void print_usage() {
  std::puts(
      "usage: dsprof_send --connect <uri> [options]\n"
      "options:\n"
      "  --connect <uri>    dsprofd endpoint: unix://<path>, tcp://<host>:<port>,\n"
      "                     or a bare socket path (required; retries with backoff)\n"
      "  --socket <path>    alias for --connect unix://<path>\n"
      "  --dir <dir>        replay a saved experiment instead of collecting\n"
      "  --workload <name>  which MCF setup to collect: mcf or mcf-small\n"
      "                     (default mcf-small)\n"
      "  --batch <N>        events per EventBatch frame (default 4096)\n"
      "  --save <dir>       also save the collected experiment for offline diff\n"
      "  --report <file>    write the snapshot JSON to <file>\n"
      "  --stats            print the daemon's stats frame (includes the\n"
      "                     daemon's obs self-profile)\n"
      "  --merged           monitoring mode: fetch the merged fleet view (every\n"
      "                     retained session on the daemon, byte-identical to an\n"
      "                     offline multi-dir er_print -J) and exit — streams\n"
      "                     nothing, needs no Hello\n"
      "  --help             print this help and exit");
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect_uri, dir, save_dir, report_path;
  std::string workload = "mcf-small";
  size_t batch = 4096;
  bool want_stats = false;
  bool merged = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) connect_uri = argv[++i];
    else if (arg == "--socket" && i + 1 < argc) connect_uri = std::string("unix://") + argv[++i];
    else if (arg == "--dir" && i + 1 < argc) dir = argv[++i];
    else if (arg == "--workload" && i + 1 < argc) workload = argv[++i];
    else if (arg == "--batch" && i + 1 < argc) batch = std::stoul(argv[++i]);
    else if (arg == "--save" && i + 1 < argc) save_dir = argv[++i];
    else if (arg == "--report" && i + 1 < argc) report_path = argv[++i];
    else if (arg == "--stats") want_stats = true;
    else if (arg == "--merged") merged = true;
    else if (arg == "--help") {
      print_usage();
      return 0;
    } else {
      std::printf("unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (connect_uri.empty()) {
    print_usage();
    return 2;
  }

  serve::Status st;
  auto transport = serve::connect_with_retry(connect_uri, st);
  if (!transport) {
    std::printf("dsprof_send: %s\n", st.to_string().c_str());
    return 1;
  }
  serve::ClientOptions copt;
  copt.client_name = "dsprof_send";
  serve::Client client(std::move(transport), copt);

  if (merged) {
    // Monitoring mode: no Hello, no events — just the fleet view.
    serve::Accounting acct;
    std::string json;
    if (st = client.merged_snapshot(acct, json); !st.ok()) {
      std::printf("dsprof_send: merged snapshot failed: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("dsprof_send: merged: in=%llu reduced=%llu dropped=%llu\n",
                static_cast<unsigned long long>(acct.events_in),
                static_cast<unsigned long long>(acct.events_reduced),
                static_cast<unsigned long long>(acct.events_dropped));
    if (!report_path.empty()) {
      std::ofstream out(report_path);
      out << json << "\n";
      std::printf("dsprof_send: merged snapshot written to %s\n", report_path.c_str());
    } else {
      std::printf("%s\n", json.c_str());
    }
    if (want_stats) {
      std::string stats_json;
      if (st = client.server_stats(stats_json); st.ok())
        std::printf("dsprof_send: server stats %s\n", stats_json.c_str());
    }
    serve::Accounting close_acct;
    if (st = client.close(close_acct); !st.ok()) {
      std::printf("dsprof_send: close failed: %s\n", st.to_string().c_str());
      return 1;
    }
    return acct.events_in == acct.events_reduced + acct.events_dropped ? 0 : 1;
  }

  experiment::Experiment ex;
  serve::Accounting acct;
  if (!dir.empty()) {
    // Replay a saved collect run.
    ex = experiment::Experiment::load(dir);
    std::printf("dsprof_send: replaying %s (%zu events)\n", dir.c_str(), ex.events.size());
    st = serve::stream_experiment(client, ex, batch, acct);
    if (!st.ok()) {
      std::printf("dsprof_send: stream failed: %s\n", st.to_string().c_str());
      return 1;
    }
  } else {
    // Live collection: stream batches out of the overflow handler as the
    // simulated MCF run produces them.
    const auto setup =
        workload == "mcf" ? mcfsim::PaperSetup::standard() : mcfsim::PaperSetup::small();
    const sym::Image image = mcfsim::build_mcf_image(setup.build);

    collect::CollectOptions opt;
    opt.hw = "+ecstall,20011,+ecrm,211";  // the paper's first counter pair
    opt.clock = "hi";
    opt.cpu = setup.cpu;

    // Handshake before the run: the image and counter specs are known as
    // soon as the collector is configured.
    {
      experiment::Experiment ctx;
      ctx.image = image;
      ctx.counters = collect::parse_counter_spec(opt.hw);
      ctx.clock_hz = opt.cpu.clock_hz;
      ctx.page_size = opt.cpu.hierarchy.dtlb.page_size;
      ctx.ec_line_size = opt.cpu.hierarchy.ecache.line_size;
      u64 session_id = 0;
      if (st = client.hello(ctx, session_id); !st.ok()) {
        std::printf("dsprof_send: hello failed: %s\n", st.to_string().c_str());
        return 1;
      }
    }

    serve::Status stream_st;
    opt.batch_export_events = batch;
    opt.batch_export = [&](const experiment::EventStore& b, bool) {
      if (!stream_st.ok()) return;  // first error wins; drain the run
      stream_st = client.send_batch(b);
    };
    collect::Collector c(image, opt);
    ex = c.run([&](machine::Cpu& cpu) { mcfsim::write_input(cpu.memory(), setup.run); });
    if (!stream_st.ok()) {
      std::printf("dsprof_send: stream failed: %s\n", stream_st.to_string().c_str());
      return 1;
    }
    if (!ex.allocations.empty()) {
      if (st = client.send_allocations(ex.allocations); !st.ok()) {
        std::printf("dsprof_send: alloc send failed: %s\n", st.to_string().c_str());
        return 1;
      }
    }
    if (st = client.flush(acct); !st.ok()) {
      std::printf("dsprof_send: flush failed: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("dsprof_send: collected and streamed %zu events\n", ex.events.size());
  }

  std::printf("dsprof_send: flushed: in=%llu reduced=%llu dropped=%llu\n",
              static_cast<unsigned long long>(acct.events_in),
              static_cast<unsigned long long>(acct.events_reduced),
              static_cast<unsigned long long>(acct.events_dropped));

  std::string json;
  if (st = client.snapshot(acct, json); !st.ok()) {
    std::printf("dsprof_send: snapshot failed: %s\n", st.to_string().c_str());
    return 1;
  }
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    out << json << "\n";
    std::printf("dsprof_send: snapshot written to %s\n", report_path.c_str());
  } else {
    std::printf("%s\n", json.c_str());
  }

  if (want_stats) {
    std::string stats_json;
    if (st = client.server_stats(stats_json); st.ok())
      std::printf("dsprof_send: server stats %s\n", stats_json.c_str());
  }

  if (!save_dir.empty()) {
    ex.save(save_dir);
    std::printf("dsprof_send: experiment saved to %s\n", save_dir.c_str());
  }

  if (st = client.close(acct); !st.ok()) {
    std::printf("dsprof_send: close failed: %s\n", st.to_string().c_str());
    return 1;
  }
  return acct.events_in == acct.events_reduced + acct.events_dropped ? 0 : 1;
}
