// dsprofd — the profiling daemon (DESIGN.md §3.3): listen on a Unix-domain
// or TCP socket, accept any number of concurrent collector clients
// (dsprof_send), fold their streamed event batches into live per-session
// aggregates, and answer snapshot/stats queries — no experiment directory
// round-trip. Completed sessions are retained (up to --retain) for the
// merged fleet view (`dsprof_send --merged`).
//
// Usage:
//   dsprofd --listen <uri> [--once] [--queue N] [--policy drop|block]
//           [--ingest direct|queued] [--retain N] [--window MS]
//           [--trace <file>]
//
// The final stats line carries the daemon's self-profile (src/obs/) inside
// the ServerStats JSON, and --trace dumps the span timeline for
// chrome://tracing when the daemon exits.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "obs/obs.hpp"
#include "serve/server.hpp"

using namespace dsprof;

namespace {

serve::Listener* g_listener = nullptr;

void handle_signal(int) {
  if (g_listener != nullptr) g_listener->close();  // unblocks accept()
}

void print_usage() {
  std::puts(
      "usage: dsprofd --listen <uri> [options]\n"
      "options:\n"
      "  --listen <uri>        endpoint to listen on: unix://<path>,\n"
      "                        tcp://<host>:<port> (port 0 picks an ephemeral\n"
      "                        port, printed on the readiness line), or a bare\n"
      "                        path (treated as unix://)\n"
      "  --socket <path>       alias for --listen unix://<path>\n"
      "  --once                serve exactly one session, print stats, exit\n"
      "  --queue <N>           bounded per-session batch queue depth (default 64)\n"
      "  --policy <drop|block> overload policy: drop-oldest with exact drop\n"
      "                        accounting (default), or block the reader and\n"
      "                        let backpressure reach the client\n"
      "  --ingest <direct|queued>\n"
      "                        direct (default): fold batches in the reader\n"
      "                        thread when the reducer keeps up (queue-free\n"
      "                        fast path); queued: always go through the\n"
      "                        bounded queue\n"
      "  --retain <N>          completed sessions kept for the merged fleet\n"
      "                        view; the oldest beyond the cap is evicted,\n"
      "                        accounting kept (default 64)\n"
      "  --window <MS>         rolling self-profile window in the Stats frame\n"
      "                        (default 60000)\n"
      "  --trace <file>        write the span timeline (chrome://tracing JSON)\n"
      "                        on exit\n"
      "  --help                print this help and exit");
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen_uri;
  std::string trace_path;
  bool once = false;
  serve::ServerOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--listen" && i + 1 < argc) {
      listen_uri = argv[++i];
    } else if (arg == "--socket" && i + 1 < argc) {
      listen_uri = std::string("unix://") + argv[++i];
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--queue" && i + 1 < argc) {
      opt.max_queued_batches = std::stoul(argv[++i]);
    } else if (arg == "--policy" && i + 1 < argc) {
      const std::string p = argv[++i];
      opt.overload = p == "block" ? serve::ServerOptions::Overload::Block
                                  : serve::ServerOptions::Overload::DropOldest;
    } else if (arg == "--ingest" && i + 1 < argc) {
      const std::string p = argv[++i];
      if (p != "direct" && p != "queued") {
        std::printf("unknown --ingest mode: %s (want direct or queued)\n", p.c_str());
        return 2;
      }
      opt.direct_fold = p == "direct";
    } else if (arg == "--retain" && i + 1 < argc) {
      opt.retain_sessions = std::stoul(argv[++i]);
    } else if (arg == "--window" && i + 1 < argc) {
      opt.stats_window_ms = std::stoull(argv[++i]);
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--help") {
      print_usage();
      return 0;
    } else {
      std::printf("unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (listen_uri.empty()) {
    print_usage();
    return 2;
  }

  try {
    auto listener = serve::make_listener(listen_uri);
    g_listener = listener.get();
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    // endpoint() reports the *bound* endpoint — for tcp://host:0 it carries
    // the kernel-assigned port, so scripts can discover it from this line.
    std::printf("dsprofd: listening on %s\n", listener->endpoint().c_str());
    std::fflush(stdout);

    serve::Server server(opt);
    if (once) {
      serve::Status st;
      auto t = listener->accept(st, /*timeout_ms=*/-1);
      if (!t) {
        std::printf("dsprofd: accept failed: %s\n", st.to_string().c_str());
        return 1;
      }
      const u64 id = server.add_session(std::move(t));
      server.wait_session(id);
    } else {
      server.serve(*listener);  // returns when the listener is closed
      server.wait_all();
    }
    const serve::ServerStats stats = server.stats();
    std::printf("dsprofd: stats %s\n", stats.to_json().c_str());
    server.stop();
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      out << obs::chrome_trace_json() << "\n";
      std::printf("dsprofd: trace written to %s\n", trace_path.c_str());
    }
    // The smoke gate checks the daemon's own accounting too.
    return stats.events_in == stats.events_reduced + stats.events_dropped ? 0 : 1;
  } catch (const Error& e) {
    std::printf("dsprofd: %s\n", e.what());
    return 1;
  }
}
