// er_opt — closed-loop feedback-directed data-layout optimizer (the
// automated §3.3 methodology).
//
// Two modes:
//
//   er_opt <experiment-dir>...        offline: analyze a saved profile into
//                                     a member-affinity report and a layout
//                                     plan (printed, or saved via --plan-out)
//   er_opt --run [--workload <name>]  closed loop on a builtin workload:
//                                     profile baseline -> plan -> apply ->
//                                     re-profile -> per-metric delta with
//                                     sampling significance, plus an
//                                     uninstrumented cycle comparison
//
// The plan's text form round-trips (src/opt/plan.hpp), so a saved plan can
// be inspected, edited, and replayed.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "opt/driver.hpp"

using namespace dsprof;

namespace {

void print_usage() {
  std::puts(
      "usage: er_opt [<experiment-dir>...] [options]\n"
      "options:\n"
      "  --run              closed loop on a builtin workload: profile,\n"
      "                     plan, apply, re-profile, report deltas\n"
      "  --workload <name>  builtin workload for --run (mcf | mcf-small |\n"
      "                     churn; default mcf-small)\n"
      "  --hw <spec>        counter spec override for the --run profiling\n"
      "                     runs; >2 counters are time-multiplexed\n"
      "  --metric <name>    rank metric short name (default ecstall)\n"
      "  --affinity         print the full affinity/hot-line/page report\n"
      "                     in offline mode (always part of --run output)\n"
      "  --plan-out <file>  also write the plan (text form) to a file\n"
      "  --top <n>          hot E$ lines to report (default 10)\n"
      "  --threads <n>      reduction threads (default $DSPROF_THREADS)\n"
      "  -J                 JSON output: the plan (offline) or the full\n"
      "                     loop report (--run)\n"
      "  --help             print this help and exit\n"
      "run examples/mcf_profile first to produce ./mcf_experiment_{1,2}");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> dirs;
  bool run = false;
  bool json = false;
  bool show_affinity = false;
  std::string workload = "mcf-small";
  std::string plan_out;
  opt::DriverOptions dopt;
  try {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--run") == 0) {
        run = true;
      } else if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc) {
        workload = argv[++i];
      } else if (std::strcmp(argv[i], "--hw") == 0 && i + 1 < argc) {
        dopt.hw = argv[++i];
      } else if (std::strcmp(argv[i], "--metric") == 0 && i + 1 < argc) {
        dopt.metric = analyze::metric_by_short_name(argv[++i]);
      } else if (std::strcmp(argv[i], "--affinity") == 0) {
        show_affinity = true;
      } else if (std::strcmp(argv[i], "--plan-out") == 0 && i + 1 < argc) {
        plan_out = argv[++i];
      } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
        dopt.top_lines = static_cast<size_t>(std::stoul(argv[++i]));
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        dopt.threads = static_cast<unsigned>(std::stoul(argv[++i]));
      } else if (std::strcmp(argv[i], "-J") == 0) {
        json = true;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        print_usage();
        return 0;
      } else {
        dirs.push_back(argv[i]);
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "er_opt: %s\n", e.what());
    return 2;
  }

  try {
    opt::LayoutPlan plan;
    if (run) {
      const opt::Workload w = opt::workload_by_name(workload);
      const opt::LoopResult r = opt::run_loop(w, dopt);
      plan = r.plan;
      if (json) {
        std::printf("%s\n", opt::loop_to_json(r).c_str());
      } else {
        std::fputs(opt::loop_to_text(r).c_str(), stdout);
      }
    } else {
      if (dirs.empty()) {
        print_usage();
        return 2;
      }
      std::vector<std::unique_ptr<experiment::Experiment>> exps;
      std::vector<const experiment::Experiment*> ptrs;
      for (const auto& dir : dirs) {
        exps.push_back(
            std::make_unique<experiment::Experiment>(experiment::Experiment::load(dir)));
        ptrs.push_back(exps.back().get());
      }
      analyze::AnalysisOptions aopt;
      aopt.threads = dopt.threads;
      analyze::Analysis a(ptrs, aopt);
      // Offline: no machine to read the DTLB from, so no large-page hint.
      const opt::Planned p = opt::plan_for(a, dopt, /*dtlb_entries=*/0);
      plan = p.plan;
      if (json) {
        std::printf("%s\n", opt::plan_to_json(p.plan).c_str());
      } else {
        if (show_affinity) std::fputs(opt::affinity_to_text(p.affinity).c_str(), stdout);
        std::fputs(opt::plan_to_text(p.plan).c_str(), stdout);
      }
    }
    if (!plan_out.empty()) {
      std::ofstream out(plan_out);
      if (!out) {
        std::fprintf(stderr, "er_opt: cannot write %s\n", plan_out.c_str());
        return 2;
      }
      out << opt::plan_to_text(plan);
      if (!json) std::printf("plan written to %s\n", plan_out.c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "er_opt: %s\n", e.what());
    return 2;
  }
  return 0;
}
