// er_print — command-line analyzer over saved experiment directories,
// mirroring the paper's er_print user model (§2.3): load one or more
// experiments from the same binary, then run report commands.
//
// Usage:
//   er_print <experiment-dir>... [-c command]... [-J] [-O] [--trace <file>]
//
// -J prints the machine-diffable JSON report (analyze::render_json_report)
// and nothing else — the same renderer dsprofd snapshots use, so
// `er_print <dir> -J` diffs byte-for-byte against a streamed session's
// snapshot over the same events (scripts/check.sh relies on this).
//
// -O appends the analyzer's *self-profile* (src/obs/): counters, latency
// histograms, and span totals for er_print's own reduction work over this
// invocation. `-O -J` prints the self-profile as one JSON object instead of
// the report — its "reduce.events.folded" / "serve.events.dropped" counters
// are the cross-check against a dsprofd Stats snapshot for the same events
// (scripts/check.sh smoke gate). --trace writes the span timeline as
// chrome://tracing JSON.
//
// Commands (each also works interactively via -c):
//   overview                       Figure 1 metrics for <Total>
//   functions [metric]             function list (sorted by metric)
//   inclusive [metric]             inclusive function list
//   callers <function>             callers-callees of a function
//   source <function>              annotated source
//   disasm <function>              annotated disassembly
//   pcs [metric [n]]               hottest PCs
//   dataobjects [metric]           data-object view (Figure 6)
//   members <struct>               member expansion (Figure 7)
//   effectiveness                  backtracking effectiveness
//   segments | pages | lines | instances   address views (§4)
//   metrics                        list available metric names
//
// With no -c arguments, a default report (overview + functions +
// dataobjects) is printed.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/reports.hpp"
#include "obs/obs.hpp"

using namespace dsprof;
using analyze::Analysis;

namespace {

size_t parse_metric(const std::string& word, size_t fallback) {
  if (word.empty()) return fallback;
  return analyze::metric_by_short_name(word);
}

void run_command(const Analysis& a, const std::string& cmdline) {
  std::istringstream is(cmdline);
  std::string cmd, arg1, arg2;
  is >> cmd >> arg1 >> arg2;
  const size_t stall = static_cast<size_t>(machine::HwEvent::EC_stall_cycles);
  try {
    if (cmd == "overview") {
      std::fputs(analyze::render_overview(a).c_str(), stdout);
    } else if (cmd == "functions") {
      std::fputs(analyze::render_function_list(a).c_str(), stdout);
    } else if (cmd == "inclusive") {
      const size_t m = parse_metric(arg1, analyze::kUserCpuMetric);
      for (const auto& f : a.functions_inclusive(m)) {
        std::printf("  %14.0f  %s\n", f.mv[m], f.name.c_str());
      }
    } else if (cmd == "callers") {
      std::fputs(analyze::render_callers_callees(a, arg1).c_str(), stdout);
    } else if (cmd == "source") {
      std::fputs(analyze::render_annotated_source(a, arg1).c_str(), stdout);
    } else if (cmd == "disasm") {
      std::fputs(analyze::render_annotated_disassembly(a, arg1).c_str(), stdout);
    } else if (cmd == "pcs") {
      const size_t m = parse_metric(arg1, stall);
      const size_t n = arg2.empty() ? 20 : static_cast<size_t>(std::stoul(arg2));
      std::fputs(analyze::render_hot_pcs(a, m, n).c_str(), stdout);
    } else if (cmd == "dataobjects") {
      std::fputs(analyze::render_data_objects(a, parse_metric(arg1, stall)).c_str(), stdout);
    } else if (cmd == "members") {
      std::fputs(analyze::render_member_expansion(a, arg1).c_str(), stdout);
    } else if (cmd == "effectiveness") {
      std::fputs(analyze::render_effectiveness(a).c_str(), stdout);
    } else if (cmd == "segments") {
      std::fputs(analyze::render_segments(a).c_str(), stdout);
    } else if (cmd == "pages") {
      std::fputs(analyze::render_pages(a, stall, 10).c_str(), stdout);
    } else if (cmd == "lines") {
      std::fputs(analyze::render_cache_lines(a, stall, 10).c_str(), stdout);
    } else if (cmd == "instances") {
      std::fputs(analyze::render_instances(a, stall, 10).c_str(), stdout);
    } else if (cmd == "metrics") {
      for (size_t m = 0; m < analyze::kNumMetrics; ++m) {
        if (a.present()[m]) {
          std::printf("  %-10s %s\n", analyze::metric_short_name(m).c_str(),
                      analyze::metric_name(m).c_str());
        }
      }
    } else {
      std::printf("unknown command: %s\n", cmd.c_str());
    }
  } catch (const Error& e) {
    std::printf("error: %s\n", e.what());
  }
}

}  // namespace

namespace {

void print_usage() {
  std::puts(
      "usage: er_print <experiment-dir>... [options]\n"
      "options:\n"
      "  -c <command>    run one report command (repeatable; default:\n"
      "                  overview + functions + dataobjects)\n"
      "  -J              print the machine-diffable JSON report and nothing\n"
      "                  else (byte-identical to a dsprofd snapshot)\n"
      "  -O              self-profile report (obs counters/histograms/spans\n"
      "                  of this er_print run); with -J, one JSON object\n"
      "  --trace <file>  write the span timeline as chrome://tracing JSON\n"
      "  --help          print this help and exit\n"
      "run examples/mcf_profile first to produce ./mcf_experiment_{1,2}");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> dirs;
  std::vector<std::string> commands;
  bool json = false;
  bool self_profile = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-c") == 0 && i + 1 < argc) {
      commands.push_back(argv[++i]);
    } else if (std::strcmp(argv[i], "-J") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "-O") == 0) {
      self_profile = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_usage();
      return 0;
    } else {
      dirs.push_back(argv[i]);
    }
  }
  if (dirs.empty()) {
    print_usage();
    return 2;
  }
  std::vector<std::unique_ptr<experiment::Experiment>> exps;
  std::vector<const experiment::Experiment*> ptrs;
  const bool quiet = json;  // both -J modes print exactly one JSON line
  for (const auto& dir : dirs) {
    try {
      exps.push_back(
          std::make_unique<experiment::Experiment>(experiment::Experiment::load(dir)));
    } catch (const Error& e) {
      std::fprintf(stderr, "er_print: cannot load %s: %s\n", dir.c_str(), e.what());
      return 2;
    }
    if (!quiet) std::printf("loaded %s: %zu events\n", dir.c_str(), exps.back()->events.size());
    ptrs.push_back(exps.back().get());
  }
  Analysis a(ptrs);
  if (self_profile && json) {
    // Self-profile JSON: force the (lazy) reduction so the obs counters
    // reflect this invocation's full analysis work, then print the obs
    // snapshot — one line, nothing else. "reduce.events.folded" here equals
    // the events_reduced a dsprofd Stats frame reports for the same events
    // (and the drop counters are 0: offline analysis never sheds load).
    (void)a.total();
    std::printf("%s\n", obs::snapshot().to_json().c_str());
  } else if (json) {
    // Exactly the JSON a dsprofd snapshot of the same events returns
    // (zero drops): one line, nothing else on stdout.
    std::printf("%s\n", analyze::render_json_report(a).c_str());
  } else {
    if (commands.empty()) commands = {"overview", "functions", "dataobjects"};
    for (const auto& c : commands) {
      std::printf("\n== %s ==\n", c.c_str());
      run_command(a, c);
    }
    if (self_profile) {
      (void)a.total();
      std::printf("\n== self-profile ==\n%s", obs::snapshot().to_text().c_str());
    }
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    out << obs::chrome_trace_json() << "\n";
    if (!quiet) std::printf("trace written to %s\n", trace_path.c_str());
  }
  return 0;
}
