// `collect` with no arguments: list the available hardware counters for
// this machine (paper §2.2.1).
#include <cstdio>

#include "collect/collector.hpp"

int main() {
  std::fputs(dsprof::collect::list_counters().c_str(), stdout);
  std::puts("\nExamples:");
  std::puts("  collect -p on  -h +ecstall,on,+ecrm,on a.out   # stalls + read misses");
  std::puts("  collect -p off -h +ecref,on,+dtlbm,on  a.out   # refs + TLB misses");
  return 0;
}
