// `collect` with no arguments: list the available hardware counters for
// this machine (paper §2.2.1).
//
// --json prints one machine-readable JSON object per the uniform CLI
// contract: per counter the PIC programmability mask (which of the two
// performance registers can count it), skid bounds, and whether the event
// can join a time-multiplexed counter set (every PIC event can; the clock
// profiler runs on its own register and is never sliced).
#include <cstdio>
#include <cstring>
#include <string>

#include "collect/collector.hpp"
#include "machine/counters.hpp"

using namespace dsprof;

namespace {

void print_usage() {
  std::puts(
      "usage: list_counters [options]\n"
      "options:\n"
      "  --json   print the counter table as one JSON object (name,\n"
      "           description, kind, pic_mask, pics, skid, multiplexable)\n"
      "  --help   print this help and exit");
}

std::string json_escape(const char* s) {
  std::string out;
  for (const char* p = s; *p; ++p) {
    if (*p == '"' || *p == '\\') out += '\\';
    out += *p;
  }
  return out;
}

void print_json() {
  std::string s = "{\"num_pics\":" + std::to_string(machine::kNumPics) +
                  ",\"max_counters_per_slice\":" + std::to_string(machine::kNumPics) +
                  ",\"counters\":[";
  for (size_t i = 0; i < machine::kNumHwEvents; ++i) {
    const machine::HwEventInfo& e = machine::hw_event_info(static_cast<machine::HwEvent>(i));
    if (i != 0) s += ",";
    s += "{\"name\":\"" + json_escape(e.name) + "\"";
    s += ",\"description\":\"" + json_escape(e.description) + "\"";
    s += std::string(",\"kind\":\"") + (e.counts_cycles ? "cycles" : "events") + "\"";
    s += ",\"pic_mask\":" + std::to_string(e.pic_mask);
    s += ",\"pics\":[";
    bool first = true;
    for (unsigned pic = 0; pic < machine::kNumPics; ++pic) {
      if ((e.pic_mask >> pic) & 1u) {
        if (!first) s += ",";
        s += std::to_string(pic);
        first = false;
      }
    }
    s += "]";
    s += ",\"skid_min\":" + std::to_string(e.skid_min);
    s += ",\"skid_max\":" + std::to_string(e.skid_max);
    // Every PIC event can join a time-sliced counter set; only the clock
    // profiler (its own register) stays live across every slice.
    s += ",\"multiplexable\":true}";
  }
  s += "]}";
  std::printf("%s\n", s.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "list_counters: unknown option %s\n", argv[i]);
      print_usage();
      return 2;
    }
  }
  if (json) {
    print_json();
    return 0;
  }
  std::fputs(collect::list_counters().c_str(), stdout);
  std::puts("\nMore than 2 counters in one spec are time-multiplexed: the sets");
  std::puts("rotate on a cycle budget and the analyzer renormalizes by live time.");
  std::puts("\nExamples:");
  std::puts("  collect -p on  -h +ecstall,on,+ecrm,on a.out   # stalls + read misses");
  std::puts("  collect -p off -h +ecref,on,+dtlbm,on  a.out   # refs + TLB misses");
  std::puts("  collect -p on  -h cycles,on,ecstall,on,ecrm,on,dtlbm,on a.out  # multiplexed");
  return 0;
}
