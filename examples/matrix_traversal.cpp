// Row-major vs column-major traversal: two loops whose code-space profiles
// look identical (same instructions, same loads), but whose memory behaviour
// differs wildly — exactly the observability gap data-space profiling fills.
#include <cstdio>

#include "analyze/reports.hpp"
#include "collect/collector.hpp"
#include "scc/builder.hpp"
#include "scc/compile.hpp"

using namespace dsprof;
using scc::FunctionBuilder;
using scc::Type;
using scc::Val;

int main() {
  constexpr i64 kN = 768;  // kN*kN*8 = 4.5 MB, far beyond the 64 kB D$

  scc::Module mod;
  scc::Function* mal = scc::add_runtime(mod);

  auto make_sweep = [&](const char* name, bool row_major) {
    scc::Function* f = mod.add_function(name);
    FunctionBuilder fb(mod, *f);
    auto a = fb.param("a", Type::ptr_i64());
    auto i = fb.local("i", Type::i64());
    auto j = fb.local("j", Type::i64());
    auto sum = fb.local("sum", Type::i64());
    fb.set(sum, 0);
    fb.set(i, 0);
    fb.while_(i < kN, [&] {
      fb.set(j, 0);
      fb.while_(j < kN, [&] {
        if (row_major) {
          fb.set(sum, sum + a.idx(i * kN + j));
        } else {
          fb.set(sum, sum + a.idx(j * kN + i));
        }
        fb.set(j, j + 1);
      });
      fb.set(i, i + 1);
    });
    fb.ret(sum);
    return f;
  };
  scc::Function* by_rows = make_sweep("sum_by_rows", true);
  scc::Function* by_cols = make_sweep("sum_by_cols", false);

  scc::Function* main_fn = mod.add_function("main");
  {
    FunctionBuilder fb(mod, *main_fn);
    auto a = fb.local("a", Type::ptr_i64());
    fb.set(a, scc::cast(fb.call(mal, {Val(kN * kN * 8)}), Type::ptr_i64()));
    auto r = fb.local("r", Type::i64());
    fb.set(r, fb.call(by_rows, {a}));
    fb.set(r, r + fb.call(by_cols, {a}));
    fb.ret(Val(0));
  }
  const sym::Image image = scc::compile(mod);

  collect::CollectOptions opt;
  opt.hw = "+ecstall,on,+ecrm,hi";
  opt.clock = "hi";
  // Scale the machine so one column's footprint (kN lines) exceeds both the
  // D$ and the E$ — the regime where traversal order matters.
  opt.cpu.hierarchy.dcache = {16 * 1024, 4, 32, false};
  opt.cpu.hierarchy.ecache = {256 * 1024, 2, 512, true};
  collect::Collector collector(image, opt);
  const experiment::Experiment ex = collector.run();

  analyze::Analysis a(ex);
  std::puts("Row-major vs column-major sweep of the same matrix:\n");
  std::fputs(analyze::render_function_list(a).c_str(), stdout);
  const auto stall = static_cast<size_t>(machine::HwEvent::EC_stall_cycles);
  double rows = 0, cols = 0;
  for (const auto& f : a.functions(stall)) {
    if (f.name == "sum_by_rows") rows = f.mv[stall];
    if (f.name == "sum_by_cols") cols = f.mv[stall];
  }
  std::printf("\nE$ stall ratio cols/rows: %.1fx — identical code, different data "
              "behaviour.\n",
              rows > 0 ? cols / rows : 0.0);
  return 0;
}
