// The full paper workflow on the MCF benchmark (§3): two collect runs with
// the paper's counter pairs, then every analysis view of Figures 1-7, then
// the optimization advice of §3.3.
//
// Also demonstrates the on-disk experiment format: both experiments are
// saved to ./mcf_experiment_{1,2} and re-loaded before analysis, like
// er_print reading a collect result.
#include <cstdio>

#include "analyze/reports.hpp"
#include "mcfsim/experiments.hpp"

using namespace dsprof;

int main() {
  std::puts("=== MCF data-space profiling, end to end (paper §3) ===\n");
  const auto setup = mcfsim::PaperSetup::standard();
  std::puts("collect -S off -p on  -h +ecstall,on,+ecrm,on mcf.exe mcf.in");
  std::puts("collect -S off -p off -h +ecref,on,+dtlbm,on  mcf.exe mcf.in\n");
  const auto exps = mcfsim::collect_paper_experiments(setup);
  std::fputs(exps.ex1.log.c_str(), stdout);
  std::fputs(exps.ex2.log.c_str(), stdout);

  exps.ex1.save("mcf_experiment_1");
  exps.ex2.save("mcf_experiment_2");
  const auto ex1 = experiment::Experiment::load("mcf_experiment_1");
  const auto ex2 = experiment::Experiment::load("mcf_experiment_2");
  std::puts("experiments saved to ./mcf_experiment_{1,2} and reloaded\n");

  analyze::Analysis a({&ex1, &ex2});
  const auto stall = static_cast<size_t>(machine::HwEvent::EC_stall_cycles);
  const auto ecrm = static_cast<size_t>(machine::HwEvent::EC_rd_miss);

  std::puts("---- overview (Figure 1) ----");
  std::fputs(analyze::render_overview(a).c_str(), stdout);
  std::puts("\n---- function list (Figure 2) ----");
  std::fputs(analyze::render_function_list(a).c_str(), stdout);
  std::puts("\n---- annotated source of refresh_potential (Figure 3) ----");
  std::fputs(analyze::render_annotated_source(a, "refresh_potential").c_str(), stdout);
  std::puts("\n---- callers-callees of refresh_potential (§2.3) ----");
  std::fputs(analyze::render_callers_callees(a, "refresh_potential").c_str(), stdout);
  std::puts("\n---- hot PCs (Figure 5) ----");
  std::fputs(analyze::render_hot_pcs(a, ecrm, 12).c_str(), stdout);
  std::puts("\n---- data objects (Figure 6) ----");
  std::fputs(analyze::render_data_objects(a, stall).c_str(), stdout);
  std::puts("\n---- structure:node expansion (Figure 7) ----");
  std::fputs(analyze::render_member_expansion(a, "node").c_str(), stdout);
  std::puts("\n---- backtracking effectiveness (§3.2.5) ----");
  std::fputs(analyze::render_effectiveness(a).c_str(), stdout);

  std::puts("\n---- §3.3: apply the suggested optimizations ----");
  const u64 base = mcfsim::measure_run(setup).cycles;
  auto optimized = setup;
  optimized.build.optimized_node_layout = true;
  optimized.build.align_heap_arrays = true;
  optimized.cpu.hierarchy.dtlb.page_size = 512 * 1024;
  const u64 opt = mcfsim::measure_run(optimized).cycles;
  std::printf("baseline %llu cycles -> optimized %llu cycles: %.1f%% faster "
              "(paper: 20.7%%)\n",
              static_cast<unsigned long long>(base), static_cast<unsigned long long>(opt),
              100.0 * (1.0 - static_cast<double>(opt) / static_cast<double>(base)));
  return 0;
}
