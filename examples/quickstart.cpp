// Quickstart: the three-step user model of the paper (§2) in one file.
//
//   1. "Compile" — build a program with the scc DSL and compile it with
//      -xhwcprof -xdebugformat=dwarf equivalents.
//   2. "Collect" — run it under the collector with hardware counters and
//      apropos backtracking: collect -p on -h +ecstall,on,+ecrm,on a.out
//   3. "Analyze" — print the function list and, the point of the paper,
//      the data-object view that names WHICH STRUCT MEMBERS hurt.
#include <cstdio>

#include "analyze/reports.hpp"
#include "collect/collector.hpp"
#include "scc/builder.hpp"
#include "scc/compile.hpp"

using namespace dsprof;
using scc::FunctionBuilder;
using scc::Type;
using scc::Val;

int main() {
  // --- 1. compile ------------------------------------------------------------
  scc::Module mod;
  scc::StructDef* particle = mod.add_struct("particle");
  particle->field("x", Type::i64())
      .field("y", Type::i64())
      .field("vx", Type::i64())
      .field("vy", Type::i64())
      .field("mass", Type::i64());
  scc::Function* mal = scc::add_runtime(mod);

  scc::Function* step = mod.add_function("advance");
  {
    FunctionBuilder fb(mod, *step);
    auto ps = fb.param("ps", Type::ptr(particle));
    auto n = fb.param("n", Type::i64());
    auto i = fb.local("i", Type::i64());
    auto p = fb.local("p", Type::ptr(particle));
    fb.set(i, 0);
    fb.while_(i < n, [&] {
      // Stride through the array with a big prime so every access misses.
      fb.set(p, ps + (i * 7919) % n);
      fb.set(p["x"], p["x"] + p["vx"]);
      fb.set(p["y"], p["y"] + p["vy"]);
      fb.set(i, i + 1);
    });
    fb.ret0();
  }
  scc::Function* main_fn = mod.add_function("main");
  {
    FunctionBuilder fb(mod, *main_fn);
    auto ps = fb.local("ps", Type::ptr(particle));
    auto it = fb.local("it", Type::i64());
    const i64 n = 300000;  // 12 MB of particles: exceeds the 8 MB E$
    fb.set(ps, scc::cast(fb.call(mal, {Val(n * static_cast<i64>(particle->size()))}),
                         Type::ptr(particle)));
    fb.set(it, 0);
    fb.while_(it < 4, [&] {
      fb.call_stmt(step, {ps, Val(n)});
      fb.set(it, it + 1);
    });
    fb.ret(Val(0));
  }
  const sym::Image image = scc::compile(mod);
  std::printf("compiled: %zu instructions of text\n\n", image.text_words.size());

  // --- 2. collect ------------------------------------------------------------
  collect::CollectOptions opt;
  opt.hw = "+ecstall,hi,+ecrm,hi";  // '+' requests apropos backtracking
  opt.clock = "hi";
  collect::Collector collector(image, opt);
  const experiment::Experiment ex = collector.run();
  std::fputs(ex.log.c_str(), stdout);

  // --- 3. analyze ------------------------------------------------------------
  analyze::Analysis a(ex);
  std::puts("\n-- functions --");
  std::fputs(analyze::render_function_list(a).c_str(), stdout);
  std::puts("\n-- data objects (the data-space view) --");
  std::fputs(analyze::render_data_objects(
                 a, static_cast<size_t>(machine::HwEvent::EC_stall_cycles))
                 .c_str(),
             stdout);
  std::puts("\n-- structure:particle members --");
  std::fputs(analyze::render_member_expansion(a, "particle").c_str(), stdout);
  std::puts("\nx/y/vx/vy are hot, mass is cold: splitting the struct or");
  std::puts("reordering members is the §3.3-style fix this view suggests.");
  return 0;
}
