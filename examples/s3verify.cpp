// s3verify: static verification of compiled s3 images (the sa subsystem's
// CLI front end).
//
//   s3verify [--json] [--window N] [--pad-nops N] <target>...
//
// Each <target> is one of:
//   * a builtin image name — a program compiled on the spot with the default
//     -xhwcprof -xdebugformat=dwarf options:
//       mcf       the paper's MCF case-study program (mcfsim)
//       mcf-opt   MCF with the §3.3 optimized node layout
//       particle  the quickstart particle stepper
//       chase     a pointer-chasing list walker
//       all       every builtin above
//   * a path to an experiment directory (verifies its loadobjects.bin), or
//     to a loadobjects.bin file directly.
//
// For every target, the tool reconstructs the CFG, precomputes the
// backtracking table, runs the hwcprof invariant lint (including the
// dataflow-backed attribution-coverage rules), and prints a report
// (human-readable by default, one JSON object per line with --json).
// --coverage adds the per-function attributable-PC fractions and the
// loop/stride table.
//
// Exit status: 0 when every target is lint-clean (no error-severity
// diagnostics; with --strict, no warnings either), 1 when any target has
// errors, 2 on usage/load problems. Statuses aggregate across targets as
// the worst seen — a failing target is never masked by a later clean one,
// and a load failure still verifies the remaining targets.
// scripts/check.sh runs `s3verify all` as part of tier-1 verification.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "mcfsim/mcfsim.hpp"
#include "sa/verifier.hpp"
#include "scc/builder.hpp"
#include "scc/compile.hpp"

using namespace dsprof;
using scc::FunctionBuilder;
using scc::Type;
using scc::Val;

namespace {

sym::Image build_particle() {
  scc::Module mod;
  scc::StructDef* particle = mod.add_struct("particle");
  particle->field("x", Type::i64())
      .field("y", Type::i64())
      .field("vx", Type::i64())
      .field("vy", Type::i64())
      .field("mass", Type::i64());
  scc::Function* mal = scc::add_runtime(mod);
  scc::Function* step = mod.add_function("advance");
  {
    FunctionBuilder fb(mod, *step);
    auto ps = fb.param("ps", Type::ptr(particle));
    auto n = fb.param("n", Type::i64());
    auto i = fb.local("i", Type::i64());
    auto p = fb.local("p", Type::ptr(particle));
    fb.set(i, 0);
    fb.while_(i < n, [&] {
      fb.set(p, ps + (i * 7919) % n);
      fb.set(p["x"], p["x"] + p["vx"]);
      fb.set(p["y"], p["y"] + p["vy"]);
      fb.set(i, i + 1);
    });
    fb.ret0();
  }
  scc::Function* main_fn = mod.add_function("main");
  {
    FunctionBuilder fb(mod, *main_fn);
    auto ps = fb.local("ps", Type::ptr(particle));
    const i64 n = 1000;
    fb.set(ps, scc::cast(fb.call(mal, {Val(n * static_cast<i64>(particle->size()))}),
                         Type::ptr(particle)));
    fb.call_stmt(step, {ps, Val(n)});
    fb.ret(Val(0));
  }
  return scc::compile(mod);
}

sym::Image build_chase() {
  scc::Module mod;
  scc::StructDef* node = mod.add_struct("node");
  node->field("key", Type::i64()).field("next", Type::ptr(node));
  scc::Function* mal = scc::add_runtime(mod);
  scc::Function* main_fn = mod.add_function("main");
  {
    FunctionBuilder fb(mod, *main_fn);
    auto nodes = fb.local("nodes", Type::ptr(node));
    auto cur = fb.local("cur", Type::ptr(node));
    auto i = fb.local("i", Type::i64());
    auto sum = fb.local("sum", Type::i64());
    const i64 n = 100;
    fb.set(nodes, scc::cast(fb.call(mal, {Val(n * static_cast<i64>(node->size()))}),
                            Type::ptr(node)));
    fb.set(i, 0);
    fb.while_(i < n, [&] {
      fb.set(cur, nodes + i);
      fb.set(cur["key"], i);
      fb.set(cur["next"], nodes + (i + 13) % n);
      fb.set(i, i + 1);
    });
    fb.set(sum, 0);
    fb.set(cur, nodes);
    fb.set(i, 0);
    fb.while_(i < n, [&] {
      fb.set(sum, sum + cur["key"]);
      fb.set(cur, cur["next"]);
      fb.set(i, i + 1);
    });
    fb.ret(sum & 0x7F);
  }
  return scc::compile(mod);
}

struct Target {
  std::string name;
  sym::Image image;
};

bool load_builtin(const std::string& name, std::vector<Target>& out) {
  if (name == "mcf" || name == "all") {
    out.push_back({"mcf", mcfsim::build_mcf_image()});
  }
  if (name == "mcf-opt" || name == "all") {
    mcfsim::BuildOptions bo;
    bo.optimized_node_layout = true;
    bo.align_heap_arrays = true;
    out.push_back({"mcf-opt", mcfsim::build_mcf_image(bo)});
  }
  if (name == "particle" || name == "all") out.push_back({"particle", build_particle()});
  if (name == "chase" || name == "all") out.push_back({"chase", build_chase()});
  return name == "all" || name == "mcf" || name == "mcf-opt" || name == "particle" ||
         name == "chase";
}

bool load_path(const std::string& path, std::vector<Target>& out) {
  namespace fs = std::filesystem;
  std::string file = path;
  if (fs::is_directory(path)) file = path + "/loadobjects.bin";
  if (!fs::exists(file)) return false;
  const std::vector<u8> bytes = read_file(file);
  ByteReader r(bytes);
  out.push_back({path, sym::Image::deserialize(r)});
  return true;
}

void print_usage(FILE* to) {
  std::fputs(
      "usage: s3verify [options] <target>...\n"
      "  target: builtin image (mcf, mcf-opt, particle, chase, all),\n"
      "          an experiment directory, or a loadobjects.bin file\n"
      "options:\n"
      "  --json          one JSON report object per line instead of text\n"
      "  --coverage      add per-function coverage and the loop/stride table\n"
      "  --strict        treat warning diagnostics as errors (exit 1)\n"
      "  --window N      backtracking window in instructions (default 16)\n"
      "  --pad-nops N    hwcprof lint: required scheduling padding\n"
      "  --help          print this help and exit\n"
      "exit: worst across targets — 0 lint-clean, 1 error diagnostics present\n"
      "      (with --strict: warnings too), 2 usage/load failure\n",
      to);
}

int usage() {
  print_usage(stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool strict = false;
  sa::VerifyOptions opt;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help") {
      print_usage(stdout);
      return 0;
    } else if (a == "--json") {
      json = true;
    } else if (a == "--coverage") {
      opt.coverage = true;
    } else if (a == "--strict") {
      strict = true;
    } else if (a == "--window" && i + 1 < argc) {
      opt.backtrack_window = static_cast<u32>(std::atoi(argv[++i]));
    } else if (a == "--pad-nops" && i + 1 < argc) {
      opt.lint.pad_nops = static_cast<u32>(std::atoi(argv[++i]));
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else {
      names.push_back(a);
    }
  }
  if (names.empty()) return usage();

  // Worst exit status across every target: diagnostics from an early target
  // must never be masked by a later clean one, and a target that fails to
  // load must not short-circuit verification of the rest.
  int status = 0;
  std::vector<Target> targets;
  for (const auto& n : names) {
    try {
      if (load_builtin(n, targets)) continue;
      if (load_path(n, targets)) continue;
      std::fprintf(stderr, "s3verify: unknown target '%s'\n", n.c_str());
      status = 2;
    } catch (const Error& e) {
      std::fprintf(stderr, "s3verify: cannot load '%s': %s\n", n.c_str(), e.what());
      status = 2;
    }
  }

  for (const auto& t : targets) {
    const sa::VerifyReport report = sa::verify(t.image, t.name, opt);
    if (json) {
      std::printf("%s\n", sa::to_json(report).c_str());
    } else {
      std::fputs(sa::to_text(report).c_str(), stdout);
    }
    const bool ok = report.clean() && (!strict || report.warnings() == 0);
    if (!ok) status = std::max(status, 1);
  }
  return status;
}
