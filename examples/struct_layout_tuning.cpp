// The §3.3 methodology as a reusable recipe: profile -> read the member
// heat from the data-space view -> reorder/pad the struct -> re-measure.
//
// The workload walks a large array of `record`s touching only two of eight
// members; the default layout puts them 40 bytes apart (two D$ lines), the
// tuned layout packs them into one line and pads the record to a power of
// two so objects never straddle E$ lines.
#include <cstdio>
#include <vector>

#include "analyze/reports.hpp"
#include "collect/collector.hpp"
#include "scc/builder.hpp"
#include "scc/compile.hpp"

using namespace dsprof;
using scc::FunctionBuilder;
using scc::Type;
using scc::Val;

namespace {

struct BuildResult {
  sym::Image image;
};

sym::Image build(bool tuned) {
  scc::Module mod;
  scc::StructDef* rec = mod.add_struct("record");
  rec->field("id", Type::i64())
      .field("hot_a", Type::i64())
      .field("pad1", Type::i64())
      .field("pad2", Type::i64())
      .field("pad3", Type::i64())
      .field("hot_b", Type::i64())
      .field("pad4", Type::i64())
      .field("pad5", Type::i64());
  if (tuned) {
    rec->set_layout_order(
        {"hot_a", "hot_b", "id", "pad1", "pad2", "pad3", "pad4", "pad5"});
    rec->set_pad_to(64);
  }
  scc::Function* mal = scc::add_runtime(mod);
  scc::Function* churn = mod.add_function("churn");
  {
    FunctionBuilder fb(mod, *churn);
    auto rs = fb.param("rs", Type::ptr(rec));
    auto n = fb.param("n", Type::i64());
    auto i = fb.local("i", Type::i64());
    auto p = fb.local("p", Type::ptr(rec));
    auto sum = fb.local("sum", Type::i64());
    fb.set(sum, 0);
    fb.set(i, 0);
    fb.while_(i < n, [&] {
      fb.set(p, rs + (i * 6151) % n);  // prime stride: cache-hostile order
      fb.set(sum, sum + p["hot_a"] + p["hot_b"]);
      fb.set(i, i + 1);
    });
    fb.ret(sum);
  }
  scc::Function* main_fn = mod.add_function("main");
  {
    FunctionBuilder fb(mod, *main_fn);
    auto rs = fb.local("rs", Type::ptr(rec));
    auto it = fb.local("it", Type::i64());
    const i64 n = 40000;
    fb.set(rs, scc::cast(fb.call(mal, {Val(n * static_cast<i64>(rec->size()))}),
                         Type::ptr(rec)));
    fb.set(it, 0);
    fb.while_(it < 12, [&] {
      fb.call_stmt(churn, {rs, Val(n)});
      fb.set(it, it + 1);
    });
    fb.ret(Val(0));
  }
  return scc::compile(mod);
}

machine::CpuConfig tuned_machine() {
  // D$ far smaller than the record array (no sweep reuse), E$ large enough
  // to back D$ misses with hits — the regime where member packing pays.
  machine::CpuConfig cfg;
  cfg.hierarchy.dcache = {8 * 1024, 4, 32, false};
  cfg.hierarchy.ecache = {4 * 1024 * 1024, 2, 512, true};
  return cfg;
}

u64 measure(const sym::Image& image) {
  mem::Memory mem;
  image.load_into(mem);
  machine::Cpu cpu(mem, tuned_machine());
  cpu.set_truth_log_enabled(false);
  cpu.set_pc(image.entry);
  return cpu.run().cycles;
}

}  // namespace

int main() {
  std::puts("=== struct layout tuning, the §3.3 recipe ===\n");
  const sym::Image before = build(false);

  // Step 1: profile the untouched binary.
  collect::CollectOptions opt;
  opt.hw = "+ecstall,on,+ecrm,hi";
  opt.cpu = tuned_machine();
  collect::Collector collector(before, opt);
  const experiment::Experiment ex = collector.run();
  analyze::Analysis a(ex);
  std::puts("-- member heat before tuning --");
  std::fputs(analyze::render_member_expansion(a, "record").c_str(), stdout);

  // Step 2: the view shows hot_a (+8) and hot_b (+40) in different D$ lines;
  // reorder them together and pad the struct. Re-measure.
  const u64 cyc_before = measure(before);
  const u64 cyc_after = measure(build(true));
  std::printf("\nbaseline layout: %llu cycles\n",
              static_cast<unsigned long long>(cyc_before));
  std::printf("tuned layout:    %llu cycles  (%.1f%% faster)\n",
              static_cast<unsigned long long>(cyc_after),
              100.0 * (1.0 - static_cast<double>(cyc_after) /
                                 static_cast<double>(cyc_before)));
  std::puts("\nSame loop, same instructions — the speedup is pure data layout,");
  std::puts("found by the member-level view (paper §3.3: 16.2% on MCF).");
  return 0;
}
