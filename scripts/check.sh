#!/usr/bin/env bash
# Tier-1 verification: build + full test suite, once normally and once under
# AddressSanitizer (DSPROF_SANITIZE=address). Usage:
#
#   scripts/check.sh            # both passes
#   scripts/check.sh --fast     # normal pass only
#   scripts/check.sh --asan     # ASan pass only
#
# Exits nonzero on the first failing step.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
mode="${1:-all}"

run_pass() {
  local name="$1" dir="$2"
  shift 2
  echo "== ${name}: configure + build (${dir}) =="
  cmake -B "${dir}" -S "${repo}" "$@"
  cmake --build "${dir}" -j "${jobs}"
  echo "== ${name}: ctest =="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

case "${mode}" in
  --fast|fast)
    run_pass "normal" "${repo}/build"
    ;;
  --asan|asan)
    run_pass "asan" "${repo}/build-asan" -DDSPROF_SANITIZE=address
    ;;
  all|--all)
    run_pass "normal" "${repo}/build"
    run_pass "asan" "${repo}/build-asan" -DDSPROF_SANITIZE=address
    ;;
  *)
    echo "usage: $0 [--fast|--asan]" >&2
    exit 2
    ;;
esac

echo "== check.sh: all requested passes green =="
