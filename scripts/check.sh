#!/usr/bin/env bash
# Tier-1 verification: build + full test suite, once normally and once under
# AddressSanitizer (DSPROF_SANITIZE=address), plus three static/dynamic gates:
#   - clang-tidy over src/sa/, src/opt/, src/collect/, src/machine/,
#     src/obs/, src/serve/, src/experiment/ and src/analyze/ (skipped with a
#     notice when clang-tidy is not installed — the reference container does
#     not ship it); src/sa/, src/opt/, src/collect/, src/machine/ and
#     src/serve/ additionally run with WarningsAsErrors on;
#   - `s3verify all`, which lints every built-in compiled image and exits
#     nonzero on any error-severity diagnostic, plus the attribution-coverage
#     floor: every hwcprof built-in image must have >= 90% of its reachable
#     memory ops statically attributable;
#   - the cli-docs gate: docs/CLI.md flag tables must match each binary's
#     live --help output in both directions;
#   - the wire-docs gate: docs/WIRE.md must document every frame type
#     src/serve/wire.hpp declares (and nothing it does not), carry the same
#     protocol version as kWireVersion, and list a history row for every
#     version up to it — in both directions, so neither file drifts;
#   - the dsprofd smoke gate: spawn the daemon on a temp Unix socket, stream a
#     live MCF collect run into it with dsprof_send, and require the streamed
#     snapshot to be byte-identical to `er_print <saved-dir> -J` over the same
#     events (the serve subsystem's central invariant, end to end over real
#     processes and a real socket);
#   - the fleet smoke gate: spawn the daemon on a TCP loopback port, stream
#     three concurrent collect sessions into it, and require the merged
#     fleet view to be byte-identical to offline multi-dir
#     `er_print dir1 dir2 dir3 -J` over the three saved directories (the
#     cross-session extension of the same invariant);
#   - the er_opt smoke gate: run the closed feedback loop on the builtin
#     mcf-small workload and require a positive end-to-end speedup plus a
#     positive, sampling-significant User-CPU delta (the optimizer must
#     actually improve the program it claims to improve);
#   - the mpx smoke gate: list_counters --json must advertise the PIC
#     constraints, and the er_opt loop profiled through a 4-counter
#     time-multiplexed spec must still find a positive speedup
#     (bench/multiplex holds the +/-5% renormalization-accuracy bar).
# Usage:
#
#   scripts/check.sh            # both build passes + all gates + benches
#   scripts/check.sh --fast     # normal pass + gates only
#   scripts/check.sh --asan     # ASan pass only
#   scripts/check.sh --bench    # benchmark sweep only (BENCH_*.json)
#
# Exits nonzero on the first failing step.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
mode="${1:-all}"

run_pass() {
  local name="$1" dir="$2"
  shift 2
  echo "== ${name}: configure + build (${dir}) =="
  cmake -B "${dir}" -S "${repo}" "$@"
  cmake --build "${dir}" -j "${jobs}"
  echo "== ${name}: ctest =="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

# clang-tidy over the static-analysis, layout-optimizer, collect, machine,
# obs, serve, experiment and analyze subsystems (the code on the zero-copy
# fast path and the profiling hot paths, held to the strictest bar). Graceful
# skip when the tool is absent; any emitted "error:" diagnostic fails the
# script. src/sa/, src/opt/, src/collect/, src/machine/ and src/serve/ — the
# static analyses, the feedback optimizer, the multiplexing collector/CPU
# pair, and the fleet daemon — run with WarningsAsErrors on; the broader tree
# keeps warnings advisory so it can adopt the profile incrementally (ROADMAP).
run_tidy() {
  local dir="$1"
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "== tidy: clang-tidy not installed; skipping (install it or use -DDSPROF_TIDY=ON) =="
    return 0
  fi
  echo "== tidy: clang-tidy over src/sa/, src/opt/, src/collect/, src/machine/," \
       "src/serve/ (warnings-as-errors), src/obs/, src/experiment/, src/analyze/ =="
  cmake -B "${dir}" -S "${repo}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  clang-tidy -p "${dir}" --quiet --warnings-as-errors='*' \
    "${repo}"/src/sa/*.cpp "${repo}"/src/opt/*.cpp \
    "${repo}"/src/collect/*.cpp "${repo}"/src/machine/*.cpp "${repo}"/src/serve/*.cpp
  clang-tidy -p "${dir}" --quiet "${repo}"/src/obs/*.cpp \
    "${repo}"/src/experiment/*.cpp "${repo}"/src/analyze/*.cpp
}

# Static verification of every built-in compiled image (CFG + hwcprof lint +
# backtrack-table build); s3verify exits nonzero on error diagnostics. Then
# the attribution-coverage floor: every hwcprof image must have >= 90% of its
# reachable memory ops classified statically attributable (the dataflow
# coverage proof — a drop below means codegen started emitting patterns the
# profiler cannot attribute).
run_s3verify() {
  local dir="$1"
  echo "== s3verify: lint all built-in images =="
  cmake --build "${dir}" -j "${jobs}" --target s3verify
  "${dir}/examples/s3verify" all
  echo "== s3verify: attribution-coverage floor (>= 90% on hwcprof images) =="
  local line name frac ok=1
  while IFS= read -r line; do
    grep -q '"hwcprof":true' <<<"${line}" || continue
    name="$(grep -oE '"name":"[^"]+"' <<<"${line}" | head -1 | cut -d'"' -f4)"
    frac="$(grep -oE '"fraction":[0-9.eE+-]+' <<<"${line}" | head -1 | cut -d: -f2)"
    if [[ -z "${frac}" ]]; then
      echo "s3verify coverage FAILED: ${name:-?}: no coverage fraction in JSON"; ok=0
      continue
    fi
    if awk -v f="${frac}" 'BEGIN { exit (f + 0 >= 0.90) ? 0 : 1 }'; then
      echo "s3verify coverage: ${name} ${frac} attributable"
    else
      echo "s3verify coverage FAILED: ${name} fraction ${frac} < 0.90"; ok=0
    fi
  done < <("${dir}/examples/s3verify" --json all)
  [[ ${ok} -eq 1 ]] || return 1
}

# Benchmark sweep: every bench/ target supports --json <path> (bench_json.hpp
# contract) and is collected as BENCH_<name>.json at the repo root;
# bench/obs_overhead doubles as the self-observability acceptance gate (< 3%
# enabled-instrumentation overhead on the reduce and ingest hot paths) and
# writes BENCH_obs.json. Benches with built-in acceptance bars (pipeline,
# backtrack, ingest floor, obs) fail the script through their exit codes.
run_bench() {
  local dir="$1"
  local plain=(fig1_total_metrics fig2_function_list fig3_annotated_source
    fig4_annotated_disasm fig5_hot_pcs fig6_data_objects fig7_node_expansion
    opt_speedups overhead_hwcprof effectiveness ablation_padding ablation_skid
    prefetch_feedback address_views instance_view pipeline_throughput
    backtrack_table ingest_throughput fleet_load dataflow multiplex)
  echo "== bench: run every bench target, collect BENCH_*.json =="
  cmake --build "${dir}" -j "${jobs}" --target "${plain[@]}" bench_er_opt obs_overhead micro_sim
  local b log
  log="$(mktemp)"
  for b in "${plain[@]}"; do
    echo "-- bench: ${b} --"
    "${dir}/bench/${b}" --json "${repo}/BENCH_${b}.json" >"${log}" 2>&1 \
      || { echo "bench ${b} FAILED"; cat "${log}"; rm -f "${log}"; return 1; }
    tail -1 "${log}"
  done
  # er_opt's bench binary is built as target bench_er_opt (the name er_opt
  # belongs to the example); it carries its own acceptance bars — auto plan
  # within 2% of the hand-tuned churn fix, significant mcf-small improvement.
  echo "-- bench: er_opt --"
  "${dir}/bench/er_opt" --json "${repo}/BENCH_er_opt.json" >"${log}" 2>&1 \
    || { echo "bench er_opt FAILED"; cat "${log}"; rm -f "${log}"; return 1; }
  tail -1 "${log}"
  echo "-- bench: obs_overhead --"
  "${dir}/bench/obs_overhead" --json "${repo}/BENCH_obs.json" >"${log}" 2>&1 \
    || { echo "bench obs_overhead FAILED"; cat "${log}"; rm -f "${log}"; return 1; }
  tail -1 "${log}"
  echo "-- bench: micro_sim --"
  "${dir}/bench/micro_sim" --json "${repo}/BENCH_micro_sim.json" >"${log}" 2>&1 \
    || { echo "bench micro_sim FAILED"; cat "${log}"; rm -f "${log}"; return 1; }
  rm -f "${log}"
  echo "bench: $(ls "${repo}"/BENCH_*.json | wc -l) BENCH_*.json files collected"
}

# docs/CLI.md drift gate: every flag a binary advertises in --help must be
# documented in that binary's section of docs/CLI.md, and every flag the
# section documents must exist in --help. Help flag lines are formatted
# "  --flag ..." by convention; doc flags are the backticked table rows.
run_cli_docs() {
  local dir="$1"
  echo "== cli-docs: docs/CLI.md vs live --help =="
  cmake --build "${dir}" -j "${jobs}" --target er_print er_opt s3verify dsprofd \
    dsprof_send list_counters
  local bin section flag ok=1
  for bin in er_print er_opt s3verify dsprofd dsprof_send list_counters; do
    section="$(awk "/^## ${bin}\$/{f=1;next} /^## /{f=0} f" "${repo}/docs/CLI.md")"
    [[ -n "${section}" ]] || { echo "cli-docs: no '## ${bin}' section in docs/CLI.md"; ok=0; continue; }
    while read -r flag; do
      grep -qF "\`${flag}" <<<"${section}" \
        || { echo "cli-docs: ${bin}: ${flag} in --help but not in docs/CLI.md"; ok=0; }
    done < <("${dir}/examples/${bin}" --help 2>&1 \
               | grep -oE '^ +-{1,2}[A-Za-z][A-Za-z0-9_-]*' | tr -d ' ' | sort -u)
    while read -r flag; do
      "${dir}/examples/${bin}" --help 2>&1 | grep -qE "^ +${flag}([ ,<]|\$)" \
        || { echo "cli-docs: ${bin}: ${flag} documented but absent from --help"; ok=0; }
    done < <(grep -oE '^\| `-{1,2}[A-Za-z][A-Za-z0-9_-]*' <<<"${section}" \
               | sed 's/^| `//' | sort -u)
  done
  [[ ${ok} -eq 1 ]] || return 1
  echo "cli-docs: flag lists match --help for all six binaries"
}

# docs/WIRE.md drift gate: the wire-protocol reference must agree with
# src/serve/wire.hpp in both directions. Frame tags: every FrameType the
# enum declares must have a row in WIRE.md's frame table, and every frame
# the table documents must exist in the enum. Versions: the "current
# protocol version is **N**" sentence must match kWireVersion, the history
# table must carry a row for every version v1..vN, and no row beyond vN.
run_wire_docs() {
  echo "== wire-docs: docs/WIRE.md vs src/serve/wire.hpp =="
  local hpp="${repo}/src/serve/wire.hpp" doc="${repo}/docs/WIRE.md" ok=1
  local enum_names doc_names name
  enum_names="$(awk '/^enum class FrameType/{f=1;next} f && /^};/{exit} f' "${hpp}" \
                  | grep -oE '^  [A-Za-z]+' | tr -d ' ' | sort -u)"
  doc_names="$(grep -oE '^\| `[A-Za-z]+` \|' "${doc}" | grep -oE '[A-Za-z]+' | sort -u)"
  [[ -n "${enum_names}" ]] || { echo "wire-docs: no FrameType enum found in wire.hpp"; return 1; }
  [[ -n "${doc_names}" ]] || { echo "wire-docs: no frame table rows found in WIRE.md"; return 1; }
  while read -r name; do
    grep -qx "${name}" <<<"${doc_names}" \
      || { echo "wire-docs: frame '${name}' in wire.hpp but not in WIRE.md's frame table"; ok=0; }
  done <<<"${enum_names}"
  while read -r name; do
    grep -qx "${name}" <<<"${enum_names}" \
      || { echo "wire-docs: frame '${name}' documented in WIRE.md but absent from wire.hpp"; ok=0; }
  done <<<"${doc_names}"

  local ver doc_ver hist_max i
  ver="$(grep -oE 'kWireVersion = [0-9]+' "${hpp}" | grep -oE '[0-9]+')"
  doc_ver="$(grep -oE 'current protocol version is \*\*[0-9]+\*\*' "${doc}" | grep -oE '[0-9]+')"
  if [[ -z "${ver}" || -z "${doc_ver}" || "${ver}" != "${doc_ver}" ]]; then
    echo "wire-docs: version mismatch (wire.hpp kWireVersion=${ver:-?}, WIRE.md says ${doc_ver:-?})"
    ok=0
  fi
  for ((i = 1; i <= ${ver:-0}; i++)); do
    grep -q "^| v${i} |" "${doc}" \
      || { echo "wire-docs: WIRE.md history table lacks a row for v${i}"; ok=0; }
  done
  hist_max="$(grep -oE '^\| v[0-9]+ \|' "${doc}" | grep -oE '[0-9]+' | sort -n | tail -1)"
  if [[ -n "${hist_max}" && -n "${ver}" && "${hist_max}" -gt "${ver}" ]]; then
    echo "wire-docs: WIRE.md history documents v${hist_max} beyond kWireVersion=${ver}"
    ok=0
  fi
  grep -q 'kSnapshotMergedFlag' "${doc}" \
    || { echo "wire-docs: WIRE.md does not document kSnapshotMergedFlag"; ok=0; }
  [[ ${ok} -eq 1 ]] || return 1
  echo "wire-docs: WIRE.md matches wire.hpp ($(wc -l <<<"${enum_names}") frames, version ${ver})"
}

# Fleet smoke gate: the cross-session extension of the central invariant,
# end to end over real processes and a real TCP socket. A daemon on an
# ephemeral loopback port (discovered from its readiness line) takes three
# concurrent collect sessions under the Block policy (nothing may drop);
# afterwards a monitoring client's merged fleet view must be byte-identical
# to offline multi-dir `er_print exp1 exp2 exp3 -J` over the directories
# the same three sessions saved.
run_fleet_smoke() {
  local dir="$1"
  echo "== fleet smoke: merged TCP fleet view vs offline multi-dir er_print -J =="
  cmake --build "${dir}" -j "${jobs}" --target dsprofd dsprof_send er_print
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN

  "${dir}/examples/dsprofd" --listen tcp://127.0.0.1:0 --policy block \
    >"${tmp}/daemon.log" 2>&1 &
  local daemon_pid=$!
  local uri=""
  for _ in $(seq 1 100); do
    uri="$(grep -oE 'tcp://[0-9.]+:[0-9]+' "${tmp}/daemon.log" | head -1 || true)"
    [[ -n "${uri}" ]] && break
    sleep 0.05
  done
  [[ -n "${uri}" ]] || { echo "fleet smoke FAILED: no readiness line from dsprofd"
                         cat "${tmp}/daemon.log"; kill "${daemon_pid}" 2>/dev/null; return 1; }

  local i send_pids=()
  for i in 1 2 3; do
    "${dir}/examples/dsprof_send" --connect "${uri}" --workload mcf-small \
      --save "${tmp}/exp${i}" >"${tmp}/send${i}.log" 2>&1 &
    send_pids+=($!)
  done
  local failed=0
  for i in 1 2 3; do
    wait "${send_pids[$((i - 1))]}" \
      || { echo "fleet smoke FAILED: dsprof_send session ${i} exited nonzero"
           cat "${tmp}/send${i}.log"; failed=1; }
  done
  [[ ${failed} -eq 0 ]] || { kill "${daemon_pid}" 2>/dev/null; return 1; }

  "${dir}/examples/dsprof_send" --connect "${uri}" --merged \
    --report "${tmp}/merged.json" >"${tmp}/merged.log" 2>&1 \
    || { echo "fleet smoke FAILED: merged fetch exited nonzero"
         cat "${tmp}/merged.log"; kill "${daemon_pid}" 2>/dev/null; return 1; }

  # Graceful stop: the daemon checks its own accounting invariant on the way
  # out and exits nonzero if it broke.
  kill "${daemon_pid}"
  wait "${daemon_pid}" \
    || { echo "fleet smoke FAILED: dsprofd exited nonzero (accounting broke)"
         cat "${tmp}/daemon.log"; return 1; }

  "${dir}/examples/er_print" "${tmp}/exp1" "${tmp}/exp2" "${tmp}/exp3" -J \
    >"${tmp}/offline.json"
  if ! diff -q "${tmp}/merged.json" "${tmp}/offline.json" >/dev/null; then
    echo "fleet smoke FAILED: merged fleet view differs from offline multi-dir report"
    diff "${tmp}/merged.json" "${tmp}/offline.json" | head -20
    return 1
  fi
  echo "fleet smoke: merged view of 3 TCP sessions is byte-identical to er_print exp1 exp2 exp3 -J"
}

# Multiplexing smoke gate: more than two counters must time-slice end to end.
# list_counters --json has to advertise the per-counter PIC constraints the
# set partitioner honors, and the er_opt closed loop profiled through a
# 4-counter multiplexed spec (three sets on this machine) must still finish
# and find a positive end-to-end speedup — the renormalized profile has to be
# good enough to steer the optimizer. bench/multiplex holds the tighter
# +/-5% accuracy bar in the bench sweep.
run_mpx_smoke() {
  local dir="$1"
  echo "== mpx smoke: 4-counter multiplexed profile must drive the er_opt loop =="
  cmake --build "${dir}" -j "${jobs}" --target er_opt list_counters
  local counters out speedup
  counters="$("${dir}/examples/list_counters" --json)" \
    || { echo "mpx smoke FAILED: list_counters --json exited nonzero"; return 1; }
  for field in '"pic_mask":' '"multiplexable":' '"skid_min":'; do
    grep -qF "${field}" <<<"${counters}" \
      || { echo "mpx smoke FAILED: list_counters --json lacks ${field}"; return 1; }
  done
  out="$("${dir}/examples/er_opt" --run --workload mcf-small \
           --hw "cycles,100003,+ecstall,on,+ecrm,on,+dtlbm,on" -J)" \
    || { echo "mpx smoke FAILED: er_opt loop over multiplexed profile exited nonzero"; return 1; }
  speedup="$(grep -oE '"speedup_pct":-?[0-9.]+' <<<"${out}" | head -1 | cut -d: -f2)"
  if [[ -z "${speedup}" ]] || ! awk -v s="${speedup}" 'BEGIN { exit (s + 0 > 0) ? 0 : 1 }'; then
    echo "mpx smoke FAILED: speedup_pct '${speedup:-missing}' not positive"
    echo "${out}" | tail -1
    return 1
  fi
  echo "mpx smoke: multiplexed 4-counter loop speedup ${speedup}%"
}

# er_opt smoke gate: the closed feedback loop on the builtin mcf-small
# workload must produce a positive end-to-end speedup AND a positive,
# sampling-significant User-CPU delta. This is the optimizer's contract — a
# plan that does not move the total metric is a regression even if every
# stage "worked".
run_er_opt_smoke() {
  local dir="$1"
  echo "== er_opt smoke: closed loop on mcf-small must significantly improve ucpu =="
  cmake --build "${dir}" -j "${jobs}" --target er_opt
  local out ucpu speedup
  out="$("${dir}/examples/er_opt" --run --workload mcf-small -J)" \
    || { echo "er_opt smoke FAILED: loop exited nonzero"; return 1; }
  speedup="$(grep -oE '"speedup_pct":-?[0-9.]+' <<<"${out}" | head -1 | cut -d: -f2)"
  ucpu="$(grep -oE '\{"metric":"ucpu"[^}]*\}' <<<"${out}" | head -1)"
  if [[ -z "${speedup}" || -z "${ucpu}" ]]; then
    echo "er_opt smoke FAILED: no speedup_pct / ucpu delta in -J output"
    echo "${out}" | tail -1
    return 1
  fi
  if ! awk -v s="${speedup}" 'BEGIN { exit (s + 0 > 0) ? 0 : 1 }'; then
    echo "er_opt smoke FAILED: speedup_pct ${speedup} not positive"
    return 1
  fi
  if ! grep -qE '"delta_pct":[0-9.]+.*"significant":true' <<<"${ucpu}"; then
    echo "er_opt smoke FAILED: ucpu delta not positive+significant: ${ucpu}"
    return 1
  fi
  echo "er_opt smoke: mcf-small speedup ${speedup}%, ucpu delta significant"
}

# End-to-end dsprofd smoke gate over a real Unix-domain socket: the streamed
# snapshot of a live collect run must be byte-identical to the offline
# er_print -J report of the experiment directory the same run saved. Runs
# once per ingest mode ($2: direct = queue-free reader-thread folds, queued =
# every batch through the bounded queue) — the snapshot and the obs
# accounting cross-check must hold identically in both.
run_dsprofd_smoke() {
  local dir="$1" ingest="${2:-direct}"
  echo "== dsprofd smoke (--ingest ${ingest}): streamed snapshot vs offline er_print -J =="
  cmake --build "${dir}" -j "${jobs}" --target dsprofd dsprof_send er_print
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  local sock="${tmp}/dsprofd.sock"

  "${dir}/examples/dsprofd" --socket "${sock}" --once --ingest "${ingest}" \
    >"${tmp}/daemon.log" 2>&1 &
  local daemon_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "${sock}" ]] && break
    sleep 0.05
  done
  [[ -S "${sock}" ]] || { echo "dsprofd did not come up"; cat "${tmp}/daemon.log"; return 1; }

  "${dir}/examples/dsprof_send" --socket "${sock}" --workload mcf-small \
    --save "${tmp}/exp" --report "${tmp}/online.json" >"${tmp}/send.log" 2>&1 \
    || { echo "dsprof_send failed"; cat "${tmp}/send.log"; return 1; }
  wait "${daemon_pid}" \
    || { echo "dsprofd exited nonzero (accounting broke)"; cat "${tmp}/daemon.log"; return 1; }

  "${dir}/examples/er_print" "${tmp}/exp" -J >"${tmp}/offline.json"
  if ! diff -q "${tmp}/online.json" "${tmp}/offline.json" >/dev/null; then
    echo "dsprofd smoke FAILED: streamed snapshot differs from offline report"
    diff "${tmp}/online.json" "${tmp}/offline.json" | head -20
    return 1
  fi
  echo "dsprofd smoke: streamed snapshot is byte-identical to er_print -J"

  # Obs cross-check: the daemon's self-profile (Stats frame, in daemon.log)
  # and an offline er_print -O -J over the saved directory must agree on
  # event counts — offline folds every saved event, the daemon folded all it
  # did not drop, so offline == daemon_folded + daemon_dropped.
  local pick='grep -oE "\"reduce.events.folded\":[0-9]+" | head -1 | cut -d: -f2'
  local daemon_folded daemon_dropped offline_folded
  daemon_folded="$(eval "${pick}" <"${tmp}/daemon.log")"
  # Counters appear in a snapshot once registered; a drop-free run may not
  # have touched serve.events.dropped at all — treat absent as zero. The
  # grep legitimately matches nothing then, so shield it from pipefail.
  daemon_dropped="$(grep -oE '"serve.events.dropped":[0-9]+' "${tmp}/daemon.log" | head -1 | cut -d: -f2 || true)"
  daemon_dropped="${daemon_dropped:-0}"
  offline_folded="$("${dir}/examples/er_print" "${tmp}/exp" -O -J | eval "${pick}")"
  if [[ -z "${daemon_folded}" || -z "${offline_folded}" || \
        "${offline_folded}" -ne $((daemon_folded + daemon_dropped)) ]]; then
    echo "dsprofd smoke FAILED: obs self-profiles disagree" \
         "(offline folded=${offline_folded:-?}, daemon folded=${daemon_folded:-?} dropped=${daemon_dropped:-?})"
    return 1
  fi
  echo "dsprofd smoke: obs self-profiles agree (folded ${offline_folded} = ${daemon_folded} + ${daemon_dropped} dropped)"

  # Mode check: direct ingest must actually take the queue-free path (the
  # first batch always can — queue empty, reducer idle), queued must never.
  local direct_folds
  direct_folds="$(grep -oE '"direct_folds":[0-9]+' "${tmp}/daemon.log" | head -1 | cut -d: -f2)"
  direct_folds="${direct_folds:-0}"
  if [[ "${ingest}" == direct && "${direct_folds}" -eq 0 ]]; then
    echo "dsprofd smoke FAILED: --ingest direct but no batch took the queue-free path"
    return 1
  fi
  if [[ "${ingest}" == queued && "${direct_folds}" -ne 0 ]]; then
    echo "dsprofd smoke FAILED: --ingest queued but ${direct_folds} batches folded inline"
    return 1
  fi
  echo "dsprofd smoke: ingest mode ${ingest} honored (direct_folds=${direct_folds})"
}

case "${mode}" in
  --fast|fast)
    run_pass "normal" "${repo}/build"
    run_tidy "${repo}/build"
    run_s3verify "${repo}/build"
    run_cli_docs "${repo}/build"
    run_wire_docs
    run_dsprofd_smoke "${repo}/build" direct
    run_dsprofd_smoke "${repo}/build" queued
    run_fleet_smoke "${repo}/build"
    run_er_opt_smoke "${repo}/build"
    run_mpx_smoke "${repo}/build"
    ;;
  --asan|asan)
    run_pass "asan" "${repo}/build-asan" -DDSPROF_SANITIZE=address
    ;;
  --bench|bench)
    cmake -B "${repo}/build" -S "${repo}" >/dev/null
    run_bench "${repo}/build"
    ;;
  all|--all)
    run_pass "normal" "${repo}/build"
    run_tidy "${repo}/build"
    run_s3verify "${repo}/build"
    run_cli_docs "${repo}/build"
    run_wire_docs
    run_dsprofd_smoke "${repo}/build" direct
    run_dsprofd_smoke "${repo}/build" queued
    run_fleet_smoke "${repo}/build"
    run_er_opt_smoke "${repo}/build"
    run_mpx_smoke "${repo}/build"
    run_bench "${repo}/build"
    run_pass "asan" "${repo}/build-asan" -DDSPROF_SANITIZE=address
    ;;
  *)
    echo "usage: $0 [--fast|--asan|--bench]" >&2
    exit 2
    ;;
esac

echo "== check.sh: all requested passes green =="
