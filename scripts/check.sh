#!/usr/bin/env bash
# Tier-1 verification: build + full test suite, once normally and once under
# AddressSanitizer (DSPROF_SANITIZE=address), plus two static gates:
#   - clang-tidy over src/sa/ (skipped with a notice when clang-tidy is not
#     installed — the reference container does not ship it);
#   - `s3verify all`, which lints every built-in compiled image and exits
#     nonzero on any error-severity diagnostic.
# Usage:
#
#   scripts/check.sh            # both build passes + static gates
#   scripts/check.sh --fast     # normal pass + static gates only
#   scripts/check.sh --asan     # ASan pass only
#
# Exits nonzero on the first failing step.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
mode="${1:-all}"

run_pass() {
  local name="$1" dir="$2"
  shift 2
  echo "== ${name}: configure + build (${dir}) =="
  cmake -B "${dir}" -S "${repo}" "$@"
  cmake --build "${dir}" -j "${jobs}"
  echo "== ${name}: ctest =="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

# clang-tidy over the static-analysis subsystem (the newest code, held to the
# strictest bar). Graceful skip when the tool is absent; any emitted
# "error:" diagnostic fails the script (WarningsAsErrors stays off so the
# broader tree can adopt the profile incrementally).
run_tidy() {
  local dir="$1"
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "== tidy: clang-tidy not installed; skipping (install it or use -DDSPROF_TIDY=ON) =="
    return 0
  fi
  echo "== tidy: clang-tidy over src/sa/ =="
  cmake -B "${dir}" -S "${repo}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  clang-tidy -p "${dir}" --quiet "${repo}"/src/sa/*.cpp
}

# Static verification of every built-in compiled image (CFG + hwcprof lint +
# backtrack-table build); s3verify exits nonzero on error diagnostics.
run_s3verify() {
  local dir="$1"
  echo "== s3verify: lint all built-in images =="
  cmake --build "${dir}" -j "${jobs}" --target s3verify
  "${dir}/examples/s3verify" all
}

case "${mode}" in
  --fast|fast)
    run_pass "normal" "${repo}/build"
    run_tidy "${repo}/build"
    run_s3verify "${repo}/build"
    ;;
  --asan|asan)
    run_pass "asan" "${repo}/build-asan" -DDSPROF_SANITIZE=address
    ;;
  all|--all)
    run_pass "normal" "${repo}/build"
    run_tidy "${repo}/build"
    run_s3verify "${repo}/build"
    run_pass "asan" "${repo}/build-asan" -DDSPROF_SANITIZE=address
    ;;
  *)
    echo "usage: $0 [--fast|--asan]" >&2
    exit 2
    ;;
esac

echo "== check.sh: all requested passes green =="
