#!/usr/bin/env bash
# Tier-1 verification: build + full test suite, once normally and once under
# AddressSanitizer (DSPROF_SANITIZE=address), plus three static/dynamic gates:
#   - clang-tidy over src/sa/ and src/serve/ (skipped with a notice when
#     clang-tidy is not installed — the reference container does not ship it);
#   - `s3verify all`, which lints every built-in compiled image and exits
#     nonzero on any error-severity diagnostic;
#   - the dsprofd smoke gate: spawn the daemon on a temp Unix socket, stream a
#     live MCF collect run into it with dsprof_send, and require the streamed
#     snapshot to be byte-identical to `er_print <saved-dir> -J` over the same
#     events (the serve subsystem's central invariant, end to end over real
#     processes and a real socket).
# Usage:
#
#   scripts/check.sh            # both build passes + all gates
#   scripts/check.sh --fast     # normal pass + gates only
#   scripts/check.sh --asan     # ASan pass only
#
# Exits nonzero on the first failing step.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
mode="${1:-all}"

run_pass() {
  local name="$1" dir="$2"
  shift 2
  echo "== ${name}: configure + build (${dir}) =="
  cmake -B "${dir}" -S "${repo}" "$@"
  cmake --build "${dir}" -j "${jobs}"
  echo "== ${name}: ctest =="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

# clang-tidy over the static-analysis and serve subsystems (the newest code,
# held to the strictest bar). Graceful skip when the tool is absent; any
# emitted "error:" diagnostic fails the script (WarningsAsErrors stays off so
# the broader tree can adopt the profile incrementally).
run_tidy() {
  local dir="$1"
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "== tidy: clang-tidy not installed; skipping (install it or use -DDSPROF_TIDY=ON) =="
    return 0
  fi
  echo "== tidy: clang-tidy over src/sa/ and src/serve/ =="
  cmake -B "${dir}" -S "${repo}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  clang-tidy -p "${dir}" --quiet "${repo}"/src/sa/*.cpp "${repo}"/src/serve/*.cpp
}

# Static verification of every built-in compiled image (CFG + hwcprof lint +
# backtrack-table build); s3verify exits nonzero on error diagnostics.
run_s3verify() {
  local dir="$1"
  echo "== s3verify: lint all built-in images =="
  cmake --build "${dir}" -j "${jobs}" --target s3verify
  "${dir}/examples/s3verify" all
}

# End-to-end dsprofd smoke gate over a real Unix-domain socket: the streamed
# snapshot of a live collect run must be byte-identical to the offline
# er_print -J report of the experiment directory the same run saved.
run_dsprofd_smoke() {
  local dir="$1"
  echo "== dsprofd smoke: streamed snapshot vs offline er_print -J =="
  cmake --build "${dir}" -j "${jobs}" --target dsprofd dsprof_send er_print
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  local sock="${tmp}/dsprofd.sock"

  "${dir}/examples/dsprofd" --socket "${sock}" --once >"${tmp}/daemon.log" 2>&1 &
  local daemon_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "${sock}" ]] && break
    sleep 0.05
  done
  [[ -S "${sock}" ]] || { echo "dsprofd did not come up"; cat "${tmp}/daemon.log"; return 1; }

  "${dir}/examples/dsprof_send" --socket "${sock}" --workload mcf-small \
    --save "${tmp}/exp" --report "${tmp}/online.json" >"${tmp}/send.log" 2>&1 \
    || { echo "dsprof_send failed"; cat "${tmp}/send.log"; return 1; }
  wait "${daemon_pid}" \
    || { echo "dsprofd exited nonzero (accounting broke)"; cat "${tmp}/daemon.log"; return 1; }

  "${dir}/examples/er_print" "${tmp}/exp" -J >"${tmp}/offline.json"
  if ! diff -q "${tmp}/online.json" "${tmp}/offline.json" >/dev/null; then
    echo "dsprofd smoke FAILED: streamed snapshot differs from offline report"
    diff "${tmp}/online.json" "${tmp}/offline.json" | head -20
    return 1
  fi
  echo "dsprofd smoke: streamed snapshot is byte-identical to er_print -J"
}

case "${mode}" in
  --fast|fast)
    run_pass "normal" "${repo}/build"
    run_tidy "${repo}/build"
    run_s3verify "${repo}/build"
    run_dsprofd_smoke "${repo}/build"
    ;;
  --asan|asan)
    run_pass "asan" "${repo}/build-asan" -DDSPROF_SANITIZE=address
    ;;
  all|--all)
    run_pass "normal" "${repo}/build"
    run_tidy "${repo}/build"
    run_s3verify "${repo}/build"
    run_dsprofd_smoke "${repo}/build"
    run_pass "asan" "${repo}/build-asan" -DDSPROF_SANITIZE=address
    ;;
  *)
    echo "usage: $0 [--fast|--asan]" >&2
    exit 2
    ;;
esac

echo "== check.sh: all requested passes green =="
