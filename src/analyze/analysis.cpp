#include "analyze/analysis.hpp"

#include <algorithm>
#include <cstdio>

#include "isa/isa.hpp"

namespace dsprof::analyze {

const char* data_cat_name(DataCat c) {
  switch (c) {
    case DataCat::Struct: return "";
    case DataCat::Scalars: return "<Scalars>";
    case DataCat::Unspecified: return "(Unspecified)";
    case DataCat::Unresolvable: return "(Unresolvable)";
    case DataCat::Unascertainable: return "(Unascertainable)";
    case DataCat::Unidentified: return "(Unidentified)";
    case DataCat::Unverifiable: return "(Unverifiable)";
  }
  return "?";
}

bool data_cat_is_unknown(DataCat c) {
  return c == DataCat::Unspecified || c == DataCat::Unresolvable ||
         c == DataCat::Unascertainable || c == DataCat::Unidentified ||
         c == DataCat::Unverifiable;
}

Analysis::Analysis(std::vector<const experiment::Experiment*> exps) {
  DSP_CHECK(!exps.empty(), "no experiments to analyze");
  image_ = &exps[0]->image;
  clock_hz_ = exps[0]->clock_hz;
  page_size_ = exps[0]->page_size;
  ec_line_size_ = exps[0]->ec_line_size;
  for (const auto* ex : exps) {
    DSP_CHECK(ex->image.text_words == image_->text_words && ex->image.entry == image_->entry,
              "experiments must come from the same binary");
    add_experiment(*ex);
  }
}

void Analysis::add_experiment(const experiment::Experiment& ex) {
  if (run_cycles_ == 0) {
    run_cycles_ = ex.total_cycles;
    run_instructions_ = ex.total_instructions;
  }
  if (allocations_.empty()) allocations_ = ex.allocations;
  for (const auto& e : ex.events) add_event(ex, e);
}

void Analysis::attribute_code(u64 pc, bool artificial, size_t metric, double w,
                              const std::vector<u64>& callstack) {
  add_to(pc_map_[{pc, artificial}], metric, w);
  const sym::FuncInfo* f = image_->symtab.find_function(pc);
  const std::string leaf = f ? f->name : "<unknown code>";
  add_to(func_map_[leaf], metric, w);
  if (auto line = image_->symtab.line_for(pc)) add_to(line_map_[*line], metric, w);

  // Inclusive metrics and caller->callee edges from the recorded callstack.
  std::vector<std::string> frames;
  frames.reserve(callstack.size() + 1);
  for (u64 site : callstack) {
    const sym::FuncInfo* cf = image_->symtab.find_function(site);
    frames.push_back(cf ? cf->name : "<unknown code>");
  }
  frames.push_back(leaf);
  // Each function on the stack gets the weight once (recursion-safe).
  std::vector<const std::string*> seen;
  for (const auto& name : frames) {
    bool dup = false;
    for (const auto* s : seen) dup |= *s == name;
    if (!dup) {
      add_to(incl_map_[name], metric, w);
      seen.push_back(&name);
    }
  }
  for (size_t i = 0; i + 1 < frames.size(); ++i) {
    add_to(edge_map_[{frames[i], frames[i + 1]}], metric, w);
  }
}

void Analysis::add_event(const experiment::Experiment& ex, const experiment::EventRecord& e) {
  const double w = static_cast<double>(e.weight);
  if (e.pic == machine::kClockPic) {
    // Clock-profile sample: code-space only; skid cannot be corrected
    // (paper §3.2.3 — User CPU shows against unlikely instructions).
    present_[kUserCpuMetric] = true;
    add_to(total_, kUserCpuMetric, w);
    attribute_code(e.delivered_pc, false, kUserCpuMetric, w, e.callstack);
    return;
  }

  const size_t metric = static_cast<size_t>(e.event);
  present_[metric] = true;
  add_to(total_, metric, w);

  const sym::SymbolTable& st = image_->symtab;

  // Was backtracking requested for this counter?
  bool backtracked = false;
  for (const auto& c : ex.counters) {
    if (c.pic == e.pic) backtracked = c.backtrack;
  }

  auto data_bucket = [&](DataCat cat, sym::TypeId sid) {
    add_to(data_map_[{static_cast<u8>(cat), sid}], metric, w);
    add_to(data_total_, metric, w);
  };

  if (!backtracked || !e.has_candidate) {
    // No candidate trigger: attribute code space to the delivered PC; the
    // data object cannot be determined.
    attribute_code(e.delivered_pc, false, metric, w, e.callstack);
    data_bucket(DataCat::Unresolvable, sym::kInvalidType);
    return;
  }

  if (!st.has_branch_targets()) {
    // Cannot validate the candidate (no branch-target info, e.g. STABS).
    attribute_code(e.candidate_pc, false, metric, w, e.callstack);
    data_bucket(DataCat::Unverifiable, sym::kInvalidType);
    return;
  }

  if (auto target = st.branch_target_in(e.candidate_pc, e.delivered_pc)) {
    // A branch target between the candidate and the delivered PC: the path
    // to the interrupt is unknown. Attribute to an artificial branch-target
    // PC (paper §2.3, the `*<branch target>` rows of Figure 4).
    attribute_code(*target, true, metric, w, e.callstack);
    data_bucket(DataCat::Unresolvable, sym::kInvalidType);
    return;
  }

  // Validated trigger PC.
  attribute_code(e.candidate_pc, false, metric, w, e.callstack);

  if (!st.hwcprof()) {
    data_bucket(DataCat::Unascertainable, sym::kInvalidType);
    return;
  }
  const sym::MemRef* ref = st.memref_for(e.candidate_pc);
  if (!ref) {
    data_bucket(DataCat::Unspecified, sym::kInvalidType);
    return;
  }
  switch (ref->kind) {
    case sym::MemRef::Kind::Unidentified:
      data_bucket(DataCat::Unidentified, sym::kInvalidType);
      break;
    case sym::MemRef::Kind::Scalar:
      data_bucket(DataCat::Scalars, sym::kInvalidType);
      break;
    case sym::MemRef::Kind::StructMember:
      data_bucket(DataCat::Struct, ref->aggregate);
      add_to(member_map_[{ref->aggregate, ref->member}], metric, w);
      break;
  }
  if (e.has_ea) ea_samples_.push_back({e.ea, metric, w});
}

// ---------------------------------------------------------------------------
// Code-space views

std::vector<Analysis::FunctionRow> Analysis::functions(size_t sort_metric) const {
  std::vector<FunctionRow> rows;
  for (const auto& [name, mv] : func_map_) rows.push_back({name, mv});
  std::sort(rows.begin(), rows.end(), [&](const FunctionRow& a, const FunctionRow& b) {
    if (a.mv[sort_metric] != b.mv[sort_metric]) return a.mv[sort_metric] > b.mv[sort_metric];
    return a.name < b.name;
  });
  return rows;
}

std::vector<Analysis::FunctionRow> Analysis::functions_inclusive(size_t sort_metric) const {
  std::vector<FunctionRow> rows;
  for (const auto& [name, mv] : incl_map_) rows.push_back({name, mv});
  std::sort(rows.begin(), rows.end(), [&](const FunctionRow& a, const FunctionRow& b) {
    if (a.mv[sort_metric] != b.mv[sort_metric]) return a.mv[sort_metric] > b.mv[sort_metric];
    return a.name < b.name;
  });
  return rows;
}

std::vector<Analysis::EdgeRow> Analysis::callers_of(const std::string& function) const {
  std::vector<EdgeRow> rows;
  for (const auto& [edge, mv] : edge_map_) {
    if (edge.second == function) rows.push_back({edge.first, mv});
  }
  std::sort(rows.begin(), rows.end(),
            [](const EdgeRow& a, const EdgeRow& b) { return a.name < b.name; });
  return rows;
}

std::vector<Analysis::EdgeRow> Analysis::callees_of(const std::string& function) const {
  std::vector<EdgeRow> rows;
  for (const auto& [edge, mv] : edge_map_) {
    if (edge.first == function) rows.push_back({edge.second, mv});
  }
  std::sort(rows.begin(), rows.end(),
            [](const EdgeRow& a, const EdgeRow& b) { return a.name < b.name; });
  return rows;
}

std::vector<Analysis::PcRow> Analysis::pcs(size_t sort_metric) const {
  std::vector<PcRow> rows;
  for (const auto& [key, mv] : pc_map_) rows.push_back({key.first, key.second, mv});
  std::sort(rows.begin(), rows.end(), [&](const PcRow& a, const PcRow& b) {
    if (a.mv[sort_metric] != b.mv[sort_metric]) return a.mv[sort_metric] > b.mv[sort_metric];
    return a.pc < b.pc;
  });
  return rows;
}

std::string Analysis::pc_name(u64 pc) const {
  const sym::FuncInfo* f = image_->symtab.find_function(pc);
  char buf[64];
  if (f) {
    std::snprintf(buf, sizeof buf, "%s + 0x%08llX", f->name.c_str(),
                  static_cast<unsigned long long>(pc - f->lo));
    return buf;
  }
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(pc));
  return buf;
}

std::vector<Analysis::LineRow> Analysis::annotated_source(const std::string& function) const {
  const sym::SymbolTable& st = image_->symtab;
  const sym::FuncInfo* fi = nullptr;
  for (const auto& f : st.functions()) {
    if (f.name == function) fi = &f;
  }
  DSP_CHECK(fi != nullptr, "no such function: " + function);

  // Line range covered by the function's instructions.
  u32 lo = ~u32{0}, hi = 0;
  for (u64 pc = fi->lo; pc < fi->hi; pc += 4) {
    if (auto l = st.line_for(pc)) {
      lo = std::min(lo, *l);
      hi = std::max(hi, *l);
    }
  }
  std::vector<LineRow> rows;
  if (hi == 0) return rows;
  for (u32 line = lo; line <= hi; ++line) {
    LineRow r;
    r.line = line;
    if (const std::string* text = st.source_text(line)) r.text = *text;
    if (auto it = line_map_.find(line); it != line_map_.end()) r.mv = it->second;
    rows.push_back(std::move(r));
  }
  return rows;
}

std::vector<Analysis::DisasmRow> Analysis::annotated_disassembly(
    const std::string& function) const {
  const sym::SymbolTable& st = image_->symtab;
  const sym::FuncInfo* fi = nullptr;
  for (const auto& f : st.functions()) {
    if (f.name == function) fi = &f;
  }
  DSP_CHECK(fi != nullptr, "no such function: " + function);

  std::vector<DisasmRow> rows;
  for (u64 pc = fi->lo; pc < fi->hi; pc += 4) {
    // Artificial branch-target row first (paper Figure 4's starred lines).
    if (auto t = st.branch_target_in(pc - 1, pc)) {
      if (*t == pc) {
        DisasmRow r;
        r.pc = pc;
        r.artificial = true;
        r.line = st.line_for(pc).value_or(0);
        r.text = "<branch target>";
        if (auto it = pc_map_.find({pc, true}); it != pc_map_.end()) r.mv = it->second;
        rows.push_back(std::move(r));
      }
    }
    DisasmRow r;
    r.pc = pc;
    r.line = st.line_for(pc).value_or(0);
    const u64 idx = (pc - image_->text_base) / 4;
    r.text = isa::disassemble(isa::decode(image_->text_words[idx]), pc);
    r.data_annot = st.memref_string(pc);
    if (auto it = pc_map_.find({pc, false}); it != pc_map_.end()) r.mv = it->second;
    rows.push_back(std::move(r));
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Data-space views

std::vector<Analysis::DataObjectRow> Analysis::data_objects(size_t sort_metric) const {
  std::vector<DataObjectRow> rows;
  for (const auto& [key, mv] : data_map_) {
    DataObjectRow r;
    r.cat = static_cast<DataCat>(key.first);
    r.sid = key.second;
    r.mv = mv;
    if (r.cat == DataCat::Struct) {
      r.name = image_->symtab.types().aggregate_string(r.sid);
    } else {
      r.name = data_cat_name(r.cat);
    }
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end(), [&](const DataObjectRow& a, const DataObjectRow& b) {
    if (a.mv[sort_metric] != b.mv[sort_metric]) return a.mv[sort_metric] > b.mv[sort_metric];
    return a.name < b.name;
  });
  return rows;
}

std::vector<Analysis::MemberRow> Analysis::members(const std::string& struct_name) const {
  const sym::TypeTable& tt = image_->symtab.types();
  const sym::TypeId sid = tt.find_struct(struct_name);
  DSP_CHECK(sid != sym::kInvalidType, "no such struct: " + struct_name);
  const sym::Type& t = tt.get(sid);

  std::vector<MemberRow> rows;
  for (u32 m = 0; m < t.members.size(); ++m) {
    const sym::Member& mem = t.members[m];
    MemberRow r;
    r.member = m;
    r.offset = mem.offset;
    r.name = "+" + std::to_string(mem.offset) + ". {" + tt.type_string(mem.type) + " " +
             mem.name + "}";
    if (auto it = member_map_.find({sid, m}); it != member_map_.end()) r.mv = it->second;
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end(),
            [](const MemberRow& a, const MemberRow& b) { return a.offset < b.offset; });
  return rows;
}

std::vector<Analysis::EffectivenessRow> Analysis::effectiveness() const {
  std::vector<EffectivenessRow> rows;
  for (size_t metric = 0; metric < machine::kNumHwEvents; ++metric) {
    if (!present_[metric]) continue;
    EffectivenessRow r;
    r.metric = metric;
    for (const auto& [key, mv] : data_map_) {
      const auto cat = static_cast<DataCat>(key.first);
      r.total += mv[metric];
      if (cat == DataCat::Unresolvable || cat == DataCat::Unascertainable ||
          cat == DataCat::Unverifiable) {
        r.unresolved += mv[metric];
      }
    }
    if (r.total > 0) rows.push_back(r);
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Address-space views

namespace {

const char* classify_segment(const sym::Image& img, u64 ea) {
  if (ea >= img.text_base && ea < img.text_base + img.text_size()) return "text";
  if (ea >= img.data_base && ea < img.data_base + std::max(img.data_size, u64{8})) return "data";
  if (ea >= img.heap_base && ea < img.heap_base + img.heap_size) return "heap";
  if (ea >= mem::kStackTop - mem::kStackSize && ea < mem::kStackTop + 0x4000) return "stack";
  return "other";
}

}  // namespace

std::vector<Analysis::AddrRow> Analysis::segments() const {
  std::map<std::string, MetricVector> acc;
  for (const auto& s : ea_samples_) {
    add_to(acc[classify_segment(*image_, s.ea)], s.metric, s.w);
  }
  std::vector<AddrRow> rows;
  for (const auto& [name, mv] : acc) rows.push_back({name, 0, mv});
  return rows;
}

std::vector<Analysis::AddrRow> Analysis::pages(size_t sort_metric, size_t top_n) const {
  std::map<u64, MetricVector> acc;
  for (const auto& s : ea_samples_) add_to(acc[s.ea / page_size_ * page_size_], s.metric, s.w);
  std::vector<AddrRow> rows;
  for (const auto& [page, mv] : acc) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(page));
    rows.push_back({buf, page, mv});
  }
  std::sort(rows.begin(), rows.end(), [&](const AddrRow& a, const AddrRow& b) {
    return a.mv[sort_metric] > b.mv[sort_metric];
  });
  if (rows.size() > top_n) rows.resize(top_n);
  return rows;
}

std::vector<Analysis::AddrRow> Analysis::cache_lines(size_t sort_metric, size_t top_n) const {
  std::map<u64, MetricVector> acc;
  for (const auto& s : ea_samples_) {
    add_to(acc[s.ea / ec_line_size_ * ec_line_size_], s.metric, s.w);
  }
  std::vector<AddrRow> rows;
  for (const auto& [line, mv] : acc) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(line));
    rows.push_back({buf, line, mv});
  }
  std::sort(rows.begin(), rows.end(), [&](const AddrRow& a, const AddrRow& b) {
    return a.mv[sort_metric] > b.mv[sort_metric];
  });
  if (rows.size() > top_n) rows.resize(top_n);
  return rows;
}

std::vector<Analysis::InstanceRow> Analysis::instances(size_t sort_metric, size_t top_n) const {
  if (allocations_.empty()) return {};
  // Allocations from a bump allocator are address-sorted; be safe anyway.
  std::vector<std::pair<u64, u64>> allocs = allocations_;
  std::sort(allocs.begin(), allocs.end());
  std::map<size_t, MetricVector> acc;
  for (const auto& s : ea_samples_) {
    auto it = std::upper_bound(allocs.begin(), allocs.end(), std::make_pair(s.ea, ~u64{0}));
    if (it == allocs.begin()) continue;
    --it;
    if (s.ea >= it->first && s.ea < it->first + it->second) {
      add_to(acc[static_cast<size_t>(it - allocs.begin())], s.metric, s.w);
    }
  }
  std::vector<InstanceRow> rows;
  for (const auto& [idx, mv] : acc) {
    rows.push_back({allocs[idx].first, allocs[idx].second, idx, mv});
  }
  std::sort(rows.begin(), rows.end(), [&](const InstanceRow& a, const InstanceRow& b) {
    return a.mv[sort_metric] > b.mv[sort_metric];
  });
  if (rows.size() > top_n) rows.resize(top_n);
  return rows;
}

double Analysis::split_fraction(u64 base, u64 obj_size, u64 count, u64 line_size) {
  DSP_CHECK(obj_size > 0 && count > 0 && is_pow2(line_size), "bad split_fraction args");
  u64 split = 0;
  for (u64 i = 0; i < count; ++i) {
    const u64 start = base + i * obj_size;
    const u64 end = start + obj_size - 1;
    if ((start / line_size) != (end / line_size)) ++split;
  }
  return static_cast<double>(split) / static_cast<double>(count);
}

}  // namespace dsprof::analyze
