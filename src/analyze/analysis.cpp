#include "analyze/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <tuple>

#include "isa/isa.hpp"

namespace dsprof::analyze {

// reduction.cpp mirrors these category values as plain integers; keep the
// public enum pinned to them.
static_assert(static_cast<u8>(DataCat::Struct) == 0);
static_assert(static_cast<u8>(DataCat::Scalars) == 1);
static_assert(static_cast<u8>(DataCat::Unspecified) == 2);
static_assert(static_cast<u8>(DataCat::Unresolvable) == 3);
static_assert(static_cast<u8>(DataCat::Unascertainable) == 4);
static_assert(static_cast<u8>(DataCat::Unidentified) == 5);
static_assert(static_cast<u8>(DataCat::Unverifiable) == 6);

const char* data_cat_name(DataCat c) {
  switch (c) {
    case DataCat::Struct: return "";
    case DataCat::Scalars: return "<Scalars>";
    case DataCat::Unspecified: return "(Unspecified)";
    case DataCat::Unresolvable: return "(Unresolvable)";
    case DataCat::Unascertainable: return "(Unascertainable)";
    case DataCat::Unidentified: return "(Unidentified)";
    case DataCat::Unverifiable: return "(Unverifiable)";
  }
  return "?";
}

bool data_cat_is_unknown(DataCat c) {
  return c == DataCat::Unspecified || c == DataCat::Unresolvable ||
         c == DataCat::Unascertainable || c == DataCat::Unidentified ||
         c == DataCat::Unverifiable;
}

Analysis::Analysis(std::vector<const experiment::Experiment*> exps, AnalysisOptions options)
    : exps_(std::move(exps)), opt_(options) {
  DSP_CHECK(!exps_.empty(), "no experiments to analyze");
  image_ = &exps_[0]->image;
  clock_hz_ = exps_[0]->clock_hz;
  page_size_ = exps_[0]->page_size;
  ec_line_size_ = exps_[0]->ec_line_size;
  for (const auto* ex : exps_) {
    DSP_CHECK(ex->image.text_words == image_->text_words && ex->image.entry == image_->entry,
              "experiments must come from the same binary");
    if (run_cycles_ == 0) {
      run_cycles_ = ex->total_cycles;
      run_instructions_ = ex->total_instructions;
    }
    if (allocations_.empty()) allocations_ = ex->allocations;
  }
  compute_scales();
}

void Analysis::compute_scales() {
  // Renormalization (paper §2.2 sampling model, extended to time-sliced
  // counter sets): a multiplexed counter observes only the slices its set
  // was live, so its sampled aggregates estimate live_cycles worth of the
  // run. Scaling by total/live — summed across experiments that collected
  // the metric — extrapolates to the full run. A counter live for the whole
  // run (every counter of a non-multiplexed experiment, and the clock, which
  // never rotates) gets exactly 1.0: multiplying a double by 1.0 is
  // bit-identical, which is what keeps pre-multiplexing outputs byte-exact.
  std::array<u64, kNumMetrics> tot{};
  std::array<u64, kNumMetrics> live{};
  for (const auto* ex : exps_) {
    mpx_ = mpx_ || ex->multiplexed();
    if (ex->clock_interval != 0) {
      tot[kUserCpuMetric] += ex->total_cycles;
      live[kUserCpuMetric] += ex->total_cycles;
    }
    for (const auto& c : ex->counters) {
      const auto m = static_cast<size_t>(c.event);
      tot[m] += ex->total_cycles;
      live[m] += ex->multiplexed() && c.set < ex->slices.size()
                     ? ex->slices[c.set].live_cycles
                     : ex->total_cycles;
    }
  }
  for (size_t m = 0; m < kNumMetrics; ++m) {
    scale_[m] = (live[m] == 0 || tot[m] == live[m])
                    ? 1.0
                    : static_cast<double>(tot[m]) / static_cast<double>(live[m]);
  }
}

MetricVector Analysis::scaled(const MetricCounts& c) const {
  MetricVector v{};
  for (size_t i = 0; i < kNumMetrics; ++i) v[i] = static_cast<double>(c[i]) * scale_[i];
  return v;
}

double Analysis::metric_stderr(size_t metric) const {
  const u64 n = sample_counts()[metric];
  if (n == 0) return 0.0;
  u64 interval = 0;
  for (const auto* ex : exps_) {
    if (metric == kUserCpuMetric) {
      interval = ex->clock_interval;
    } else {
      for (const auto& c : ex->counters) {
        if (static_cast<size_t>(c.event) == metric) {
          interval = c.interval;
          break;
        }
      }
    }
    if (interval != 0) break;
  }
  return scale_[metric] * static_cast<double>(interval) *
         std::sqrt(static_cast<double>(n));
}

Analysis::Analysis(const experiment::Experiment& ex, ReductionResult precomputed,
                   AnalysisOptions options)
    : Analysis(std::vector<const experiment::Experiment*>{&ex}, std::move(precomputed),
               options) {}

Analysis::Analysis(std::vector<const experiment::Experiment*> exps,
                   ReductionResult precomputed, AnalysisOptions options)
    : Analysis(std::move(exps), options) {
  // The dsprofd snapshot path: adopt the live aggregates of an
  // IncrementalReducer (or a merge_results over several) instead of
  // re-reducing on first view access. The rendering experiments hold no
  // events here, so the sampling-error n comes from the reduction itself —
  // fold() tallied the same per-metric counts an offline scan of the
  // events would.
  r_ = std::make_unique<ReductionResult>(std::move(precomputed));
  total_ = scaled(r_->total);
  data_total_ = scaled(r_->data_total);
  sample_counts_cache_ = r_->sample_counts;
}

const ReductionResult& Analysis::reduce_locked() const {
  if (!r_) {
    r_ = std::make_unique<ReductionResult>(
        Reduction::run(exps_, opt_.threads, opt_.engine));
    total_ = scaled(r_->total);
    data_total_ = scaled(r_->data_total);
  }
  return *r_;
}

const ReductionResult& Analysis::reduce() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reduce_locked();
}

const std::array<bool, kNumMetrics>& Analysis::present() const { return reduce().present; }

const MetricVector& Analysis::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  reduce_locked();
  return total_;
}

const MetricVector& Analysis::data_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  reduce_locked();
  return data_total_;
}

const std::string& Analysis::func_name(u32 id) const { return r_->func_names[id]; }

// ---------------------------------------------------------------------------
// Code-space views

const std::vector<Analysis::FunctionRow>& Analysis::functions(size_t sort_metric) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = functions_cache_.find(sort_metric);
  if (it != functions_cache_.end()) return it->second;
  const ReductionResult& r = reduce_locked();
  std::vector<FunctionRow> rows;
  rows.reserve(r.func.size());
  for (const auto& e : r.func.entries()) {
    rows.push_back({func_name(static_cast<u32>(e.key)), scaled(e.value)});
  }
  std::sort(rows.begin(), rows.end(), [&](const FunctionRow& a, const FunctionRow& b) {
    if (a.mv[sort_metric] != b.mv[sort_metric]) return a.mv[sort_metric] > b.mv[sort_metric];
    return a.name < b.name;
  });
  return functions_cache_.emplace(sort_metric, std::move(rows)).first->second;
}

const std::vector<Analysis::FunctionRow>& Analysis::functions_inclusive(
    size_t sort_metric) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inclusive_cache_.find(sort_metric);
  if (it != inclusive_cache_.end()) return it->second;
  const ReductionResult& r = reduce_locked();
  std::vector<FunctionRow> rows;
  rows.reserve(r.incl.size());
  for (const auto& e : r.incl.entries()) {
    rows.push_back({func_name(static_cast<u32>(e.key)), scaled(e.value)});
  }
  std::sort(rows.begin(), rows.end(), [&](const FunctionRow& a, const FunctionRow& b) {
    if (a.mv[sort_metric] != b.mv[sort_metric]) return a.mv[sort_metric] > b.mv[sort_metric];
    return a.name < b.name;
  });
  return inclusive_cache_.emplace(sort_metric, std::move(rows)).first->second;
}

const std::vector<Analysis::EdgeRow>& Analysis::callers_of(const std::string& function) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = callers_cache_.find(function);
  if (it != callers_cache_.end()) return it->second;
  const ReductionResult& r = reduce_locked();
  std::vector<EdgeRow> rows;
  for (const auto& e : r.edge.entries()) {
    const u32 callee = static_cast<u32>(e.key & 0xffffffffu);
    if (func_name(callee) == function) {
      rows.push_back({func_name(static_cast<u32>(e.key >> 32)), scaled(e.value)});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const EdgeRow& a, const EdgeRow& b) { return a.name < b.name; });
  return callers_cache_.emplace(function, std::move(rows)).first->second;
}

const std::vector<Analysis::EdgeRow>& Analysis::callees_of(const std::string& function) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = callees_cache_.find(function);
  if (it != callees_cache_.end()) return it->second;
  const ReductionResult& r = reduce_locked();
  std::vector<EdgeRow> rows;
  for (const auto& e : r.edge.entries()) {
    const u32 caller = static_cast<u32>(e.key >> 32);
    if (func_name(caller) == function) {
      rows.push_back(
          {func_name(static_cast<u32>(e.key & 0xffffffffu)), scaled(e.value)});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const EdgeRow& a, const EdgeRow& b) { return a.name < b.name; });
  return callees_cache_.emplace(function, std::move(rows)).first->second;
}

const std::vector<Analysis::PcRow>& Analysis::pcs(size_t sort_metric) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pcs_cache_.find(sort_metric);
  if (it != pcs_cache_.end()) return it->second;
  const ReductionResult& r = reduce_locked();
  std::vector<PcRow> rows;
  rows.reserve(r.pc.size());
  for (const auto& e : r.pc.entries()) {
    rows.push_back({e.key >> 1, (e.key & 1) != 0, scaled(e.value)});
  }
  std::sort(rows.begin(), rows.end(), [&](const PcRow& a, const PcRow& b) {
    if (a.mv[sort_metric] != b.mv[sort_metric]) return a.mv[sort_metric] > b.mv[sort_metric];
    if (a.pc != b.pc) return a.pc < b.pc;
    return a.artificial < b.artificial;
  });
  return pcs_cache_.emplace(sort_metric, std::move(rows)).first->second;
}

std::string Analysis::pc_name(u64 pc) const {
  const sym::FuncInfo* f = image_->symtab.find_function(pc);
  char buf[64];
  if (f) {
    std::snprintf(buf, sizeof buf, "%s + 0x%08llX", f->name.c_str(),
                  static_cast<unsigned long long>(pc - f->lo));
    return buf;
  }
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(pc));
  return buf;
}

const std::vector<Analysis::LineRow>& Analysis::annotated_source(
    const std::string& function) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = source_cache_.find(function);
  if (it != source_cache_.end()) return it->second;
  const ReductionResult& r = reduce_locked();
  const sym::SymbolTable& st = image_->symtab;
  const sym::FuncInfo* fi = nullptr;
  for (const auto& f : st.functions()) {
    if (f.name == function) fi = &f;
  }
  DSP_CHECK(fi != nullptr, "no such function: " + function);

  // Line range covered by the function's instructions.
  u32 lo = ~u32{0}, hi = 0;
  for (u64 pc = fi->lo; pc < fi->hi; pc += 4) {
    if (auto l = st.line_for(pc)) {
      lo = std::min(lo, *l);
      hi = std::max(hi, *l);
    }
  }
  std::vector<LineRow> rows;
  if (hi != 0) {
    for (u32 line = lo; line <= hi; ++line) {
      LineRow row;
      row.line = line;
      if (const std::string* text = st.source_text(line)) row.text = *text;
      if (const MetricCounts* c = r.line.find(line)) row.mv = scaled(*c);
      rows.push_back(std::move(row));
    }
  }
  return source_cache_.emplace(function, std::move(rows)).first->second;
}

const std::vector<Analysis::DisasmRow>& Analysis::annotated_disassembly(
    const std::string& function) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = disasm_cache_.find(function);
  if (it != disasm_cache_.end()) return it->second;
  const ReductionResult& r = reduce_locked();
  const sym::SymbolTable& st = image_->symtab;
  const sym::FuncInfo* fi = nullptr;
  for (const auto& f : st.functions()) {
    if (f.name == function) fi = &f;
  }
  DSP_CHECK(fi != nullptr, "no such function: " + function);

  std::vector<DisasmRow> rows;
  for (u64 pc = fi->lo; pc < fi->hi; pc += 4) {
    // Artificial branch-target row first (paper Figure 4's starred lines).
    if (auto t = st.branch_target_in(pc - 1, pc)) {
      if (*t == pc) {
        DisasmRow row;
        row.pc = pc;
        row.artificial = true;
        row.line = st.line_for(pc).value_or(0);
        row.text = "<branch target>";
        if (const MetricCounts* c = r.pc.find((pc << 1) | 1)) row.mv = scaled(*c);
        rows.push_back(std::move(row));
      }
    }
    DisasmRow row;
    row.pc = pc;
    row.line = st.line_for(pc).value_or(0);
    const u64 idx = (pc - image_->text_base) / 4;
    row.text = isa::disassemble(isa::decode(image_->text_words[idx]), pc);
    row.data_annot = st.memref_string(pc);
    if (const MetricCounts* c = r.pc.find(pc << 1)) row.mv = scaled(*c);
    rows.push_back(std::move(row));
  }
  return disasm_cache_.emplace(function, std::move(rows)).first->second;
}

// ---------------------------------------------------------------------------
// Data-space views

const std::vector<Analysis::DataObjectRow>& Analysis::data_objects(size_t sort_metric) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_objects_cache_.find(sort_metric);
  if (it != data_objects_cache_.end()) return it->second;
  const ReductionResult& r = reduce_locked();
  std::vector<DataObjectRow> rows;
  rows.reserve(r.data.size());
  for (const auto& e : r.data.entries()) {
    DataObjectRow row;
    row.cat = static_cast<DataCat>(e.key >> 32);
    row.sid = static_cast<sym::TypeId>(e.key & 0xffffffffu);
    row.mv = scaled(e.value);
    if (row.cat == DataCat::Struct) {
      row.name = image_->symtab.types().aggregate_string(row.sid);
    } else {
      row.name = data_cat_name(row.cat);
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [&](const DataObjectRow& a, const DataObjectRow& b) {
    if (a.mv[sort_metric] != b.mv[sort_metric]) return a.mv[sort_metric] > b.mv[sort_metric];
    return a.name < b.name;
  });
  return data_objects_cache_.emplace(sort_metric, std::move(rows)).first->second;
}

const std::vector<Analysis::MemberRow>& Analysis::members(const std::string& struct_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = members_cache_.find(struct_name);
  if (it != members_cache_.end()) return it->second;
  const ReductionResult& r = reduce_locked();
  const sym::TypeTable& tt = image_->symtab.types();
  const sym::TypeId sid = tt.find_struct(struct_name);
  DSP_CHECK(sid != sym::kInvalidType, "no such struct: " + struct_name);
  const sym::Type& t = tt.get(sid);

  std::vector<MemberRow> rows;
  for (u32 m = 0; m < t.members.size(); ++m) {
    const sym::Member& mem = t.members[m];
    MemberRow row;
    row.member = m;
    row.offset = mem.offset;
    row.name = "+" + std::to_string(mem.offset) + ". {" + tt.type_string(mem.type) + " " +
               mem.name + "}";
    if (const MetricCounts* c = r.member.find((u64{sid} << 32) | m)) {
      row.mv = scaled(*c);
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const MemberRow& a, const MemberRow& b) { return a.offset < b.offset; });
  return members_cache_.emplace(struct_name, std::move(rows)).first->second;
}

const std::vector<Analysis::EffectivenessRow>& Analysis::effectiveness() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (effectiveness_cache_) return *effectiveness_cache_;
  const ReductionResult& r = reduce_locked();
  std::vector<EffectivenessRow> rows;
  for (size_t metric = 0; metric < machine::kNumHwEvents; ++metric) {
    if (!r.present[metric]) continue;
    EffectivenessRow row;
    row.metric = metric;
    for (const auto& e : r.data.entries()) {
      const auto cat = static_cast<DataCat>(e.key >> 32);
      // Scaled like every other view; the effectiveness ratio itself is
      // scale-invariant (numerator and denominator share the factor).
      row.total += static_cast<double>(e.value[metric]) * scale_[metric];
      if (cat == DataCat::Unresolvable || cat == DataCat::Unascertainable ||
          cat == DataCat::Unverifiable) {
        row.unresolved += static_cast<double>(e.value[metric]) * scale_[metric];
      }
    }
    if (row.total > 0) rows.push_back(row);
  }
  effectiveness_cache_ = std::move(rows);
  return *effectiveness_cache_;
}

// ---------------------------------------------------------------------------
// Address-space views

namespace {

const char* classify_segment(const sym::Image& img, u64 ea) {
  if (ea >= img.text_base && ea < img.text_base + img.text_size()) return "text";
  if (ea >= img.data_base && ea < img.data_base + std::max(img.data_size, u64{8})) return "data";
  if (ea >= img.heap_base && ea < img.heap_base + img.heap_size) return "heap";
  if (ea >= mem::kStackTop - mem::kStackSize && ea < mem::kStackTop + 0x4000) return "stack";
  return "other";
}

}  // namespace

const std::vector<Analysis::AddrRow>& Analysis::segments() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (segments_cache_) return *segments_cache_;
  const ReductionResult& r = reduce_locked();
  std::map<std::string, MetricVector> acc;
  for (const auto& s : r.ea_samples) {
    add_to(acc[classify_segment(*image_, s.ea)], s.metric, s.w * scale_[s.metric]);
  }
  std::vector<AddrRow> rows;
  for (const auto& [name, mv] : acc) rows.push_back({name, 0, mv});
  segments_cache_ = std::move(rows);
  return *segments_cache_;
}

const std::vector<Analysis::AddrRow>& Analysis::pages(size_t sort_metric, size_t top_n) const {
  const auto key = std::make_pair(sort_metric, top_n);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pages_cache_.find(key);
  if (it != pages_cache_.end()) return it->second;
  const ReductionResult& r = reduce_locked();
  std::map<u64, MetricVector> acc;
  for (const auto& s : r.ea_samples) {
    add_to(acc[s.ea / page_size_ * page_size_], s.metric, s.w * scale_[s.metric]);
  }
  std::vector<AddrRow> rows;
  for (const auto& [page, mv] : acc) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(page));
    rows.push_back({buf, page, mv});
  }
  std::sort(rows.begin(), rows.end(), [&](const AddrRow& a, const AddrRow& b) {
    return a.mv[sort_metric] > b.mv[sort_metric];
  });
  if (rows.size() > top_n) rows.resize(top_n);
  return pages_cache_.emplace(key, std::move(rows)).first->second;
}

const std::vector<Analysis::AddrRow>& Analysis::cache_lines(size_t sort_metric,
                                                            size_t top_n) const {
  const auto key = std::make_pair(sort_metric, top_n);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_lines_cache_.find(key);
  if (it != cache_lines_cache_.end()) return it->second;
  const ReductionResult& r = reduce_locked();
  std::map<u64, MetricVector> acc;
  for (const auto& s : r.ea_samples) {
    add_to(acc[s.ea / ec_line_size_ * ec_line_size_], s.metric, s.w * scale_[s.metric]);
  }
  std::vector<AddrRow> rows;
  for (const auto& [line, mv] : acc) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(line));
    rows.push_back({buf, line, mv});
  }
  std::sort(rows.begin(), rows.end(), [&](const AddrRow& a, const AddrRow& b) {
    return a.mv[sort_metric] > b.mv[sort_metric];
  });
  if (rows.size() > top_n) rows.resize(top_n);
  return cache_lines_cache_.emplace(key, std::move(rows)).first->second;
}

const std::vector<Analysis::InstanceRow>& Analysis::instances(size_t sort_metric,
                                                              size_t top_n) const {
  const auto key = std::make_pair(sort_metric, top_n);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instances_cache_.find(key);
  if (it != instances_cache_.end()) return it->second;
  const ReductionResult& r = reduce_locked();
  std::vector<InstanceRow> rows;
  if (!allocations_.empty()) {
    // Name instances the paper's way — allocating function + per-function
    // ordinal in allocation order ("mcf_arena[0]", "mcf_arena[1]", ...);
    // "alloc[k]" when no site PC was recorded (legacy experiment files).
    struct Named {
      u64 addr, size, orig;
      std::string name;
    };
    std::vector<Named> allocs;
    allocs.reserve(allocations_.size());
    std::map<std::string, u64> ordinal;
    for (size_t i = 0; i < allocations_.size(); ++i) {
      const auto& a = allocations_[i];
      std::string fn = "alloc";
      if (a.site_pc != 0) {
        if (const sym::FuncInfo* f = symtab().find_function(a.site_pc)) fn = f->name;
      }
      const u64 k = ordinal[fn]++;
      allocs.push_back({a.addr, a.size, i, fn + "[" + std::to_string(k) + "]"});
    }
    // Allocations from a bump allocator are address-sorted; be safe anyway.
    std::sort(allocs.begin(), allocs.end(),
              [](const Named& a, const Named& b) { return a.addr < b.addr; });
    std::map<size_t, MetricVector> acc;
    for (const auto& s : r.ea_samples) {
      auto ub = std::upper_bound(allocs.begin(), allocs.end(), s.ea,
                                 [](u64 ea, const Named& a) { return ea < a.addr; });
      if (ub == allocs.begin()) continue;
      --ub;
      if (s.ea >= ub->addr && s.ea < ub->addr + ub->size) {
        add_to(acc[static_cast<size_t>(ub - allocs.begin())], s.metric,
               s.w * scale_[s.metric]);
      }
    }
    for (const auto& [idx, mv] : acc) {
      rows.push_back({allocs[idx].addr, allocs[idx].size, allocs[idx].orig,
                      allocs[idx].name, mv});
    }
    std::sort(rows.begin(), rows.end(), [&](const InstanceRow& a, const InstanceRow& b) {
      return a.mv[sort_metric] > b.mv[sort_metric];
    });
    if (rows.size() > top_n) rows.resize(top_n);
  }
  return instances_cache_.emplace(key, std::move(rows)).first->second;
}

// ---------------------------------------------------------------------------
// Per-access samples (the src/opt/ feedback loop)

const std::vector<Analysis::AccessSample>& Analysis::member_accesses() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (accesses_cache_) return *accesses_cache_;
  std::vector<AccessSample> out;
  // Window interning: (experiment, interned-callstack handle, leaf function
  // entry). Dense ids are assigned in event order — a serial pass over the
  // raw columns, so the result (and every plan derived from it) is
  // independent of DSPROF_THREADS.
  std::map<std::tuple<size_t, u64, u32, u64>, u32> windows;
  for (size_t x = 0; x < exps_.size(); ++x) {
    const experiment::Experiment& ex = *exps_[x];
    const sym::SymbolTable& st = ex.image.symtab;
    if (!st.hwcprof() || !st.has_branch_targets()) continue;
    // Backtracking keyed by event, not register: multiplexed sets share
    // registers across time slices (reduction.cpp documents the keying).
    std::array<bool, machine::kNumHwEvents> bt{};
    for (const auto& spec : ex.counters) {
      bt[static_cast<size_t>(spec.event)] = spec.backtrack;
    }
    const experiment::EventStore& ev = ex.events;
    const auto pic = ev.pic_col();
    const auto event = ev.event_col();
    const auto weight = ev.weight_col();
    const auto delivered = ev.delivered_pc_col();
    const auto flags = ev.flags_col();
    const auto candidate = ev.candidate_pc_col();
    const auto ea = ev.ea_col();
    const auto cs_off = ev.cs_offset_col();
    const auto cs_len = ev.cs_len_col();
    for (size_t i = 0, n = ev.size(); i < n; ++i) {
      const u8 p = pic[i];
      if (p >= machine::kNumPics || !bt[static_cast<size_t>(event[i])]) continue;
      const u8 f = flags[i];
      if ((f & experiment::EventStore::kHasCandidate) == 0) continue;
      // The reduction's validation rule verbatim: a branch target between
      // the candidate and the delivered PC invalidates the candidate.
      if (st.branch_target_in(candidate[i], delivered[i])) continue;
      const sym::MemRef* ref = st.memref_for(candidate[i]);
      if (!ref || ref->kind != sym::MemRef::Kind::StructMember) continue;
      const sym::FuncInfo* fn = st.find_function(candidate[i]);
      const auto key = std::make_tuple(x, cs_off[i], cs_len[i], fn ? fn->lo : u64{0});
      const auto ins = windows.emplace(key, static_cast<u32>(windows.size()));
      AccessSample s;
      s.trigger_pc = candidate[i];
      s.has_ea = (f & experiment::EventStore::kHasEa) != 0;
      s.ea = s.has_ea ? ea[i] : 0;
      s.window = ins.first->second;
      s.sid = ref->aggregate;
      s.member = ref->member;
      s.metric = static_cast<size_t>(event[i]);
      s.weight = weight[i];
      out.push_back(s);
    }
  }
  access_windows_ = static_cast<u32>(windows.size());
  accesses_cache_ = std::move(out);
  return *accesses_cache_;
}

u32 Analysis::access_windows() const {
  member_accesses();  // fills access_windows_
  std::lock_guard<std::mutex> lock(mu_);
  return access_windows_;
}

const std::array<u64, kNumMetrics>& Analysis::sample_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (sample_counts_cache_) return *sample_counts_cache_;
  std::array<u64, kNumMetrics> counts{};
  for (const auto* ex : exps_) {
    const auto pic = ex->events.pic_col();
    const auto event = ex->events.event_col();
    for (size_t i = 0, n = ex->events.size(); i < n; ++i) {
      counts[pic[i] == machine::kClockPic ? kUserCpuMetric
                                          : static_cast<size_t>(event[i])] += 1;
    }
  }
  sample_counts_cache_ = counts;
  return *sample_counts_cache_;
}

double Analysis::split_fraction(u64 base, u64 obj_size, u64 count, u64 line_size) {
  DSP_CHECK(obj_size > 0 && count > 0 && is_pow2(line_size), "bad split_fraction args");
  u64 split = 0;
  for (u64 i = 0; i < count; ++i) {
    const u64 start = base + i * obj_size;
    const u64 end = start + obj_size - 1;
    if ((start / line_size) != (end / line_size)) ++split;
  }
  return static_cast<double>(split) / static_cast<double>(count);
}

}  // namespace dsprof::analyze
