// The analyzer's data-reduction core (paper §2.3): validate candidate
// trigger PCs against the branch-target table, attribute metrics to PCs /
// functions / source lines (code space) and to data-object types and members
// (data space), with the <Unknown> breakdown of §3.2.5:
//   (Unspecified)     compiler gave no symbolic reference for the trigger PC
//   (Unresolvable)    backtracking could not determine the trigger PC
//                     (blocked by an intervening branch target, or no memory
//                     op within the search window)
//   (Unascertainable) module not compiled with -xhwcprof
//   (Unidentified)    compiler did not identify the object (temporary)
//   (Unverifiable)    branch-target info inadequate to validate the trigger
#pragma once

#include <map>
#include <vector>

#include "analyze/metrics.hpp"
#include "experiment/experiment.hpp"

namespace dsprof::analyze {

/// Data-object categories (the <Unknown> children plus real objects).
enum class DataCat : u8 {
  Struct,
  Scalars,
  Unspecified,
  Unresolvable,
  Unascertainable,
  Unidentified,
  Unverifiable,
};

const char* data_cat_name(DataCat c);
bool data_cat_is_unknown(DataCat c);  // true for the five <Unknown> children

class Analysis {
 public:
  /// Analyze one or more experiments from the *same binary* together (the
  /// paper's MCF study combines two collect runs).
  explicit Analysis(std::vector<const experiment::Experiment*> exps);
  explicit Analysis(const experiment::Experiment& ex)
      : Analysis(std::vector<const experiment::Experiment*>{&ex}) {}

  const sym::SymbolTable& symtab() const { return image_->symtab; }
  const sym::Image& image() const { return *image_; }
  u64 clock_hz() const { return clock_hz_; }
  /// Cycles/instructions of the (first) profiled run.
  u64 run_cycles() const { return run_cycles_; }
  u64 run_instructions() const { return run_instructions_; }
  const std::vector<std::pair<u64, u64>>& allocations() const { return allocations_; }
  u64 page_size() const { return page_size_; }
  u64 ec_line_size() const { return ec_line_size_; }

  /// Which metrics have any data.
  const std::array<bool, kNumMetrics>& present() const { return present_; }

  /// Grand totals per metric (the <Total> pseudo-function).
  const MetricVector& total() const { return total_; }
  /// Data-space grand totals (clock samples carry no data metrics).
  const MetricVector& data_total() const { return data_total_; }

  double seconds(double cycles) const { return cycles / static_cast<double>(clock_hz_); }

  // --- code-space views -----------------------------------------------------
  struct FunctionRow {
    std::string name;
    MetricVector mv{};
  };
  /// Exclusive metrics per function, descending by `sort_metric`.
  std::vector<FunctionRow> functions(size_t sort_metric) const;

  /// Inclusive metrics (exclusive + everything called from the function,
  /// via the recorded callstacks), descending by `sort_metric`.
  std::vector<FunctionRow> functions_inclusive(size_t sort_metric) const;

  /// Callers-callees view (paper §2.3: "to show callers and callees of a
  /// function, with information about how the performance metrics are
  /// attributed"). `attributed` is the weight flowing through that edge.
  struct EdgeRow {
    std::string name;
    MetricVector attributed{};
  };
  std::vector<EdgeRow> callers_of(const std::string& function) const;
  std::vector<EdgeRow> callees_of(const std::string& function) const;

  struct PcRow {
    u64 pc = 0;
    bool artificial = false;  // an inserted <branch target> PC
    MetricVector mv{};
  };
  std::vector<PcRow> pcs(size_t sort_metric) const;
  /// "refresh_potential + 0x000000D0" (paper Figure 5 naming).
  std::string pc_name(u64 pc) const;

  struct LineRow {
    u32 line = 0;
    std::string text;
    MetricVector mv{};
  };
  /// Annotated source of a function (paper Figure 3).
  std::vector<LineRow> annotated_source(const std::string& function) const;

  struct DisasmRow {
    u64 pc = 0;
    bool artificial = false;  // "<branch target>" marker row
    u32 line = 0;
    std::string text;        // disassembly, or "<branch target>"
    std::string data_annot;  // "{structure:node -}.{long orientation}"
    MetricVector mv{};
  };
  /// Annotated disassembly of a function (paper Figure 4).
  std::vector<DisasmRow> annotated_disassembly(const std::string& function) const;

  // --- data-space views -------------------------------------------------------
  struct DataObjectRow {
    DataCat cat = DataCat::Struct;
    sym::TypeId sid = sym::kInvalidType;
    std::string name;  // "{structure:arc -}", "(Unresolvable)", "<Scalars>"
    MetricVector mv{};
  };
  /// All data objects, descending by `sort_metric`. The <Unknown> aggregate
  /// is not included (it is the sum of the rows whose cat is an unknown).
  std::vector<DataObjectRow> data_objects(size_t sort_metric) const;

  struct MemberRow {
    u32 member = 0;
    u64 offset = 0;
    std::string name;  // "+56 {long orientation}"
    MetricVector mv{};
  };
  /// Member expansion of a struct data object (paper Figure 7), in layout
  /// (offset) order, including zero-metric members.
  std::vector<MemberRow> members(const std::string& struct_name) const;

  /// Backtracking effectiveness per hardware metric (§3.2.5): fraction of
  /// the metric's data-space total attributed to real objects, i.e.
  /// 1 - (Unresolvable + Unascertainable [+ Unverifiable]).
  struct EffectivenessRow {
    size_t metric = 0;
    double total = 0;
    double unresolved = 0;  // Unresolvable + Unascertainable + Unverifiable
    double effectiveness() const { return total == 0 ? 1.0 : 1.0 - unresolved / total; }
  };
  std::vector<EffectivenessRow> effectiveness() const;

  // --- address-space views (paper §4 future work) ----------------------------
  struct AddrRow {
    std::string name;
    u64 key = 0;
    MetricVector mv{};
  };
  /// Metrics by memory segment (text/data/heap/stack).
  std::vector<AddrRow> segments() const;
  /// Hottest pages / E$ lines by `sort_metric`.
  std::vector<AddrRow> pages(size_t sort_metric, size_t top_n) const;
  std::vector<AddrRow> cache_lines(size_t sort_metric, size_t top_n) const;
  /// Hottest allocated object instances (via the allocation log).
  struct InstanceRow {
    u64 base = 0, size = 0;
    u64 alloc_index = 0;
    MetricVector mv{};
  };
  std::vector<InstanceRow> instances(size_t sort_metric, size_t top_n) const;

  /// Fraction of `count` objects of `obj_size` bytes starting at `base` that
  /// straddle an `line_size`-byte cache-line boundary (the paper's "28% of
  /// these 120-byte data objects end up split" statistic).
  static double split_fraction(u64 base, u64 obj_size, u64 count, u64 line_size);

 private:
  void add_experiment(const experiment::Experiment& ex);
  void add_event(const experiment::Experiment& ex, const experiment::EventRecord& e);
  void attribute_code(u64 pc, bool artificial, size_t metric, double w,
                      const std::vector<u64>& callstack);

  const sym::Image* image_ = nullptr;
  u64 run_cycles_ = 0;
  u64 run_instructions_ = 0;
  u64 clock_hz_ = 900'000'000;
  u64 page_size_ = 8192;
  u64 ec_line_size_ = 512;
  std::vector<std::pair<u64, u64>> allocations_;

  std::array<bool, kNumMetrics> present_{};
  MetricVector total_{};
  MetricVector data_total_{};

  std::map<std::pair<u64, bool>, MetricVector> pc_map_;
  std::map<std::string, MetricVector> func_map_;
  std::map<std::string, MetricVector> incl_map_;
  std::map<std::pair<std::string, std::string>, MetricVector> edge_map_;  // caller -> callee
  std::map<u32, MetricVector> line_map_;
  std::map<std::pair<u8, u32>, MetricVector> data_map_;  // (cat, sid)
  std::map<std::pair<u32, u32>, MetricVector> member_map_;  // (sid, member)

  struct EaSample {
    u64 ea;
    size_t metric;
    double w;
  };
  std::vector<EaSample> ea_samples_;
};

}  // namespace dsprof::analyze
