// The analyzer's data-reduction core (paper §2.3): validate candidate
// trigger PCs against the branch-target table, attribute metrics to PCs /
// functions / source lines (code space) and to data-object types and members
// (data space), with the <Unknown> breakdown of §3.2.5:
//   (Unspecified)     compiler gave no symbolic reference for the trigger PC
//   (Unresolvable)    backtracking could not determine the trigger PC
//                     (blocked by an intervening branch target, or no memory
//                     op within the search window)
//   (Unascertainable) module not compiled with -xhwcprof
//   (Unidentified)    compiler did not identify the object (temporary)
//   (Unverifiable)    branch-target info inadequate to validate the trigger
//
// Analysis is a lazy facade over the sharded Reduction engine
// (reduction.hpp): construction only records which experiments to analyze;
// the single reduction pass runs on first view access (parallel across event
// shards, controlled by DSPROF_THREADS), and every rendered view is memoized
// so repeated render_* calls do not re-sort.
//
// Thread safety: the lazy reduction and every memoized view are guarded by
// one internal mutex, so concurrent readers (e.g. two dsprofd snapshot
// requests, or two report renderers sharing one Analysis) may call any
// const view accessor from any thread. The returned references stay valid
// for the lifetime of the Analysis — caches only grow, they are never
// invalidated.
//
// Lifetime: the analyzed experiments must outlive the Analysis (it keeps
// pointers, not copies — experiments can hold millions of events).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "analyze/metrics.hpp"
#include "analyze/reduction.hpp"
#include "experiment/experiment.hpp"

namespace dsprof::analyze {

/// Data-object categories (the <Unknown> children plus real objects).
enum class DataCat : u8 {
  Struct,
  Scalars,
  Unspecified,
  Unresolvable,
  Unascertainable,
  Unidentified,
  Unverifiable,
};

const char* data_cat_name(DataCat c);
bool data_cat_is_unknown(DataCat c);  // true for the five <Unknown> children

struct AnalysisOptions {
  /// Reduction threads: 0 = $DSPROF_THREADS or hardware concurrency;
  /// 1 = serial. Any value produces bit-identical results (the reduction
  /// accumulates integer weights).
  unsigned threads = 0;
  /// Reduction engine; Auto resolves DSPROF_REDUCE_ENGINE (default Radix).
  /// Baseline is the seed-equivalent std::map reference used by equivalence
  /// tests and bench/pipeline_throughput.
  Reduction::Engine engine = Reduction::Engine::Auto;
};

class Analysis {
 public:
  /// Analyze one or more experiments from the *same binary* together (the
  /// paper's MCF study combines two collect runs). The experiments must
  /// outlive this Analysis.
  explicit Analysis(std::vector<const experiment::Experiment*> exps,
                    AnalysisOptions options = {});
  explicit Analysis(const experiment::Experiment& ex, AnalysisOptions options = {})
      : Analysis(std::vector<const experiment::Experiment*>{&ex}, options) {}

  /// Wrap a *precomputed* reduction: views render from `precomputed` without
  /// re-reducing. This is the dsprofd snapshot path — the server folds
  /// batches into an IncrementalReducer as they arrive and hands a copy of
  /// the live aggregates here, so a snapshot renders the exact views an
  /// offline Analysis over the same events would (reduction.hpp documents
  /// why the two are bit-identical). `ex` supplies the image, clock, and
  /// allocation context and must outlive this Analysis.
  Analysis(const experiment::Experiment& ex, ReductionResult precomputed,
           AnalysisOptions options = {});

  /// Multi-experiment precomputed form: the fleet merged view. `exps`
  /// supply the combined rendering context exactly as the plain
  /// multi-experiment constructor would derive it — in particular the
  /// merged multiplexing scales — and `precomputed` is the merged
  /// reduction (merge_results over per-session reducer snapshots), so the
  /// rendered report is byte-identical to an offline multi-dir
  /// `er_print -J` over the same events.
  Analysis(std::vector<const experiment::Experiment*> exps, ReductionResult precomputed,
           AnalysisOptions options = {});

  const sym::SymbolTable& symtab() const { return image_->symtab; }
  const sym::Image& image() const { return *image_; }
  u64 clock_hz() const { return clock_hz_; }
  /// Cycles/instructions of the (first) profiled run.
  u64 run_cycles() const { return run_cycles_; }
  u64 run_instructions() const { return run_instructions_; }
  const std::vector<machine::AllocRecord>& allocations() const { return allocations_; }
  u64 page_size() const { return page_size_; }
  u64 ec_line_size() const { return ec_line_size_; }

  /// Which metrics have any data.
  const std::array<bool, kNumMetrics>& present() const;

  // --- multiplexing renormalization -----------------------------------------
  /// True when any analyzed experiment time-sliced its counters across more
  /// than one set. Every metric view is then renormalized: a counter that was
  /// live for only live_cycles of total_cycles had its aggregates scaled by
  /// total/live to estimate full-run counts.
  bool multiplexed() const { return mpx_; }
  /// The scale applied to `metric`'s aggregates. Exactly 1.0 for a metric
  /// whose counter was live for the whole run — in particular for every
  /// metric of a non-multiplexed experiment, where scaling by 1.0 leaves the
  /// doubles bit-identical to the unscaled pipeline.
  double metric_scale(size_t metric) const { return scale_[metric]; }
  /// Standard error of `metric`'s scaled total under the sampling model: the
  /// total is a sum of n samples of weight `interval`, so its error is
  /// ~ scale * interval * sqrt(n) (clock samples use the clock interval).
  double metric_stderr(size_t metric) const;
  /// Convert raw integer aggregates to a rendered MetricVector, applying the
  /// per-metric multiplexing scale. The single conversion point every view
  /// goes through — renormalization happens here, never inside the integer
  /// reduction (which stays exact and engine-agnostic). Public so report
  /// renderers that read reduction aggregates directly share the scaling.
  MetricVector scaled(const MetricCounts& c) const;

  /// Grand totals per metric (the <Total> pseudo-function).
  const MetricVector& total() const;
  /// Data-space grand totals (clock samples carry no data metrics).
  const MetricVector& data_total() const;

  double seconds(double cycles) const { return cycles / static_cast<double>(clock_hz_); }

  // --- code-space views -----------------------------------------------------
  struct FunctionRow {
    std::string name;
    MetricVector mv{};
  };
  /// Exclusive metrics per function, descending by `sort_metric`.
  const std::vector<FunctionRow>& functions(size_t sort_metric) const;

  /// Inclusive metrics (exclusive + everything called from the function,
  /// via the recorded callstacks), descending by `sort_metric`.
  const std::vector<FunctionRow>& functions_inclusive(size_t sort_metric) const;

  /// Callers-callees view (paper §2.3: "to show callers and callees of a
  /// function, with information about how the performance metrics are
  /// attributed"). `attributed` is the weight flowing through that edge.
  struct EdgeRow {
    std::string name;
    MetricVector attributed{};
  };
  const std::vector<EdgeRow>& callers_of(const std::string& function) const;
  const std::vector<EdgeRow>& callees_of(const std::string& function) const;

  struct PcRow {
    u64 pc = 0;
    bool artificial = false;  // an inserted <branch target> PC
    MetricVector mv{};
  };
  const std::vector<PcRow>& pcs(size_t sort_metric) const;
  /// "refresh_potential + 0x000000D0" (paper Figure 5 naming).
  std::string pc_name(u64 pc) const;

  struct LineRow {
    u32 line = 0;
    std::string text;
    MetricVector mv{};
  };
  /// Annotated source of a function (paper Figure 3).
  const std::vector<LineRow>& annotated_source(const std::string& function) const;

  struct DisasmRow {
    u64 pc = 0;
    bool artificial = false;  // "<branch target>" marker row
    u32 line = 0;
    std::string text;        // disassembly, or "<branch target>"
    std::string data_annot;  // "{structure:node -}.{long orientation}"
    MetricVector mv{};
  };
  /// Annotated disassembly of a function (paper Figure 4).
  const std::vector<DisasmRow>& annotated_disassembly(const std::string& function) const;

  // --- data-space views -------------------------------------------------------
  struct DataObjectRow {
    DataCat cat = DataCat::Struct;
    sym::TypeId sid = sym::kInvalidType;
    std::string name;  // "{structure:arc -}", "(Unresolvable)", "<Scalars>"
    MetricVector mv{};
  };
  /// All data objects, descending by `sort_metric`. The <Unknown> aggregate
  /// is not included (it is the sum of the rows whose cat is an unknown).
  const std::vector<DataObjectRow>& data_objects(size_t sort_metric) const;

  struct MemberRow {
    u32 member = 0;
    u64 offset = 0;
    std::string name;  // "+56 {long orientation}"
    MetricVector mv{};
  };
  /// Member expansion of a struct data object (paper Figure 7), in layout
  /// (offset) order, including zero-metric members.
  const std::vector<MemberRow>& members(const std::string& struct_name) const;

  /// Backtracking effectiveness per hardware metric (§3.2.5): fraction of
  /// the metric's data-space total attributed to real objects, i.e.
  /// 1 - (Unresolvable + Unascertainable [+ Unverifiable]).
  struct EffectivenessRow {
    size_t metric = 0;
    double total = 0;
    double unresolved = 0;  // Unresolvable + Unascertainable + Unverifiable
    double effectiveness() const { return total == 0 ? 1.0 : 1.0 - unresolved / total; }
  };
  const std::vector<EffectivenessRow>& effectiveness() const;

  // --- address-space views (paper §4 future work) ----------------------------
  struct AddrRow {
    std::string name;
    u64 key = 0;
    MetricVector mv{};
  };
  /// Metrics by memory segment (text/data/heap/stack).
  const std::vector<AddrRow>& segments() const;
  /// Hottest pages / E$ lines by `sort_metric`.
  const std::vector<AddrRow>& pages(size_t sort_metric, size_t top_n) const;
  const std::vector<AddrRow>& cache_lines(size_t sort_metric, size_t top_n) const;
  /// Hottest allocated object instances (via the allocation log). `name` is
  /// the paper's "mcf_arena[k]" style: the allocating function (from the
  /// recorded allocation-site PC) with a per-function ordinal; "alloc[k]"
  /// when no site was recorded (legacy experiment files).
  struct InstanceRow {
    u64 base = 0, size = 0;
    u64 alloc_index = 0;
    std::string name;
    MetricVector mv{};
  };
  const std::vector<InstanceRow>& instances(size_t sort_metric, size_t top_n) const;

  /// Fraction of `count` objects of `obj_size` bytes starting at `base` that
  /// straddle an `line_size`-byte cache-line boundary (the paper's "28% of
  /// these 120-byte data objects end up split" statistic).
  static double split_fraction(u64 base, u64 obj_size, u64 count, u64 line_size);

  // --- per-access samples (src/opt/ feedback loop) ---------------------------
  /// One validated struct-member access: the trigger PC survived candidate
  /// validation (same rule as the reduction's fold), the image is hwcprof,
  /// and the compiler's descriptor names a structure member. `window` is a
  /// dense id of the (callstack, leaf function) the event was delivered
  /// under — er_opt's co-access affinity matrix counts members that share
  /// windows. `ea` is valid only when `has_ea` (address registers survived
  /// the skid); cache-line sharing reports require it, affinity does not.
  struct AccessSample {
    u64 trigger_pc = 0;
    u64 ea = 0;
    bool has_ea = false;
    u32 window = 0;
    sym::TypeId sid = sym::kInvalidType;
    u32 member = 0;
    size_t metric = 0;
    u64 weight = 0;
  };
  /// All validated struct-member accesses in event order, aggregated in one
  /// serial pass over the raw SoA columns (thread-count independent, so
  /// everything derived from it — the er_opt plan in particular — is too).
  const std::vector<AccessSample>& member_accesses() const;
  /// Number of distinct (callstack, leaf) windows member_accesses() saw.
  u32 access_windows() const;

  /// Per-metric event (sample) counts, clock samples under kUserCpuMetric —
  /// the n behind the er_opt delta report's sampling-error estimate: a
  /// metric total is a sum of n samples of weight w, so its standard error
  /// is ~ w * sqrt(n).
  const std::array<u64, kNumMetrics>& sample_counts() const;

  /// Force the reduction pass now (it otherwise runs on first view access).
  const ReductionResult& reduce() const;

 private:
  /// The reduction body; callers must hold mu_.
  const ReductionResult& reduce_locked() const;
  const std::string& func_name(u32 id) const;
  void compute_scales();

  std::vector<const experiment::Experiment*> exps_;
  AnalysisOptions opt_;
  const sym::Image* image_ = nullptr;
  u64 run_cycles_ = 0;
  u64 run_instructions_ = 0;
  u64 clock_hz_ = 900'000'000;
  u64 page_size_ = 8192;
  u64 ec_line_size_ = 512;
  std::vector<machine::AllocRecord> allocations_;
  /// Per-metric renormalization scales (all exactly 1.0 unless some
  /// experiment multiplexed), fixed at construction from the slice tables.
  std::array<double, kNumMetrics> scale_{};
  bool mpx_ = false;

  // Guards the lazy reduction and every memoized view below: two threads
  // triggering the first view access race on r_ and the caches otherwise
  // (tests/analyze_test.cpp ConcurrentReaders, run under ASan/TSan).
  mutable std::mutex mu_;

  // Reduction output + converted totals, built on first access.
  mutable std::unique_ptr<ReductionResult> r_;
  mutable MetricVector total_{};
  mutable MetricVector data_total_{};

  // Memoized views (guarded by mu_; the reduction's parallelism lives
  // inside the reduction pass).
  mutable std::map<size_t, std::vector<FunctionRow>> functions_cache_;
  mutable std::map<size_t, std::vector<FunctionRow>> inclusive_cache_;
  mutable std::map<size_t, std::vector<PcRow>> pcs_cache_;
  mutable std::map<size_t, std::vector<DataObjectRow>> data_objects_cache_;
  mutable std::map<std::string, std::vector<EdgeRow>> callers_cache_;
  mutable std::map<std::string, std::vector<EdgeRow>> callees_cache_;
  mutable std::map<std::string, std::vector<LineRow>> source_cache_;
  mutable std::map<std::string, std::vector<DisasmRow>> disasm_cache_;
  mutable std::map<std::string, std::vector<MemberRow>> members_cache_;
  mutable std::optional<std::vector<EffectivenessRow>> effectiveness_cache_;
  mutable std::optional<std::vector<AccessSample>> accesses_cache_;
  mutable u32 access_windows_ = 0;
  mutable std::optional<std::array<u64, kNumMetrics>> sample_counts_cache_;
  mutable std::optional<std::vector<AddrRow>> segments_cache_;
  mutable std::map<std::pair<size_t, size_t>, std::vector<AddrRow>> pages_cache_;
  mutable std::map<std::pair<size_t, size_t>, std::vector<AddrRow>> cache_lines_cache_;
  mutable std::map<std::pair<size_t, size_t>, std::vector<InstanceRow>> instances_cache_;
};

}  // namespace dsprof::analyze
