#include "analyze/feedback.hpp"

#include <sstream>

namespace dsprof::analyze {

std::vector<FeedbackEntry> prefetch_feedback(const Analysis& a, size_t metric,
                                             double min_share) {
  std::vector<FeedbackEntry> out;
  const double total = a.total()[metric];
  if (total <= 0) return out;
  const sym::SymbolTable& st = a.symtab();
  for (const auto& pc_row : a.pcs(metric)) {
    if (pc_row.artificial) continue;
    const double share = pc_row.mv[metric] / total;
    if (share < min_share) break;  // rows are sorted descending
    const sym::MemRef* ref = st.memref_for(pc_row.pc);
    if (!ref) continue;
    FeedbackEntry e;
    const sym::FuncInfo* f = st.find_function(pc_row.pc);
    e.function = f ? f->name : "?";
    e.line = st.line_for(pc_row.pc).value_or(0);
    if (ref->kind == sym::MemRef::Kind::StructMember) {
      const sym::Type& agg = st.types().get(ref->aggregate);
      e.struct_name = agg.name;
      e.member = agg.members[ref->member].name;
    }
    e.metric_value = pc_row.mv[metric];
    e.share = share;
    out.push_back(std::move(e));
  }
  return out;
}

std::string feedback_to_text(const std::vector<FeedbackEntry>& entries) {
  std::ostringstream os;
  os << "# dsprof prefetch feedback: function line struct member share\n";
  for (const auto& e : entries) {
    os << e.function << " " << e.line << " " << (e.struct_name.empty() ? "-" : e.struct_name)
       << " " << (e.member.empty() ? "-" : e.member) << " " << e.share << "\n";
  }
  return os.str();
}

std::vector<FeedbackEntry> feedback_from_text(const std::string& text) {
  std::vector<FeedbackEntry> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    FeedbackEntry e;
    ls >> e.function >> e.line >> e.struct_name >> e.member >> e.share;
    DSP_CHECK(!ls.fail(), "bad feedback line: " + line);
    if (e.struct_name == "-") e.struct_name.clear();
    if (e.member == "-") e.member.clear();
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace dsprof::analyze
