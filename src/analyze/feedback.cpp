#include "analyze/feedback.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace dsprof::analyze {

std::vector<FeedbackEntry> prefetch_feedback(const Analysis& a, size_t metric,
                                             double min_share) {
  std::vector<FeedbackEntry> out;
  const double total = a.total()[metric];
  if (total <= 0) return out;
  const sym::SymbolTable& st = a.symtab();
  for (const auto& pc_row : a.pcs(metric)) {
    if (pc_row.artificial) continue;
    const double share = pc_row.mv[metric] / total;
    if (share < min_share) break;  // rows are sorted descending
    const sym::MemRef* ref = st.memref_for(pc_row.pc);
    if (!ref) continue;
    FeedbackEntry e;
    const sym::FuncInfo* f = st.find_function(pc_row.pc);
    e.function = f ? f->name : "?";
    e.line = st.line_for(pc_row.pc).value_or(0);
    if (ref->kind == sym::MemRef::Kind::StructMember) {
      const sym::Type& agg = st.types().get(ref->aggregate);
      e.struct_name = agg.name;
      e.member = agg.members[ref->member].name;
    }
    e.metric_value = pc_row.mv[metric];
    e.share = share;
    out.push_back(std::move(e));
  }
  return out;
}

std::string feedback_to_text(const std::vector<FeedbackEntry>& entries) {
  std::ostringstream os;
  os << "# dsprof prefetch feedback: function line struct member share\n";
  for (const auto& e : entries) {
    os << e.function << " " << e.line << " " << (e.struct_name.empty() ? "-" : e.struct_name)
       << " " << (e.member.empty() ? "-" : e.member) << " " << e.share << "\n";
  }
  return os.str();
}

namespace {

/// Parse a full token as an unsigned integer / double; false on trailing
/// junk, sign errors, or out-of-range values (no exceptions, no partial
/// assignment — the caller's entry stays untouched on failure).
bool parse_u32(const std::string& tok, u32& out) {
  if (tok.empty() || tok[0] == '-' || tok[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size() || v > ~u32{0}) return false;
  out = static_cast<u32>(v);
  return true;
}

bool parse_share(const std::string& tok, double& out) {
  if (tok.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  if (!(v >= 0.0 && v <= 1.0)) return false;  // a share is a fraction (NaN fails too)
  out = v;
  return true;
}

}  // namespace

std::vector<FeedbackEntry> feedback_from_text(const std::string& text,
                                              FeedbackParseStats* stats) {
  std::vector<FeedbackEntry> out;
  FeedbackParseStats local;
  std::istringstream is(text);
  std::string line;
  size_t lineno = 0;
  auto bad = [&](const std::string& why) {
    local.skipped += 1;
    if (local.first_error.empty()) {
      local.first_error = "line " + std::to_string(lineno) + ": " + why;
    }
  };
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::vector<std::string> tok;
    for (std::string t; ls >> t;) tok.push_back(std::move(t));
    if (tok.empty()) continue;  // whitespace-only
    if (tok.size() != 5) {
      bad("expected 5 fields, got " + std::to_string(tok.size()));
      continue;
    }
    FeedbackEntry e;
    e.function = tok[0];
    if (!parse_u32(tok[1], e.line)) {
      bad("non-numeric line '" + tok[1] + "'");
      continue;
    }
    e.struct_name = tok[2] == "-" ? "" : tok[2];
    e.member = tok[3] == "-" ? "" : tok[3];
    if (!parse_share(tok[4], e.share)) {
      bad("non-numeric share '" + tok[4] + "'");
      continue;
    }
    local.parsed += 1;
    out.push_back(std::move(e));
  }
  if (stats) *stats = std::move(local);
  return out;
}

}  // namespace dsprof::analyze
