// Prefetch feedback (paper §4, future work): the experiment knows which
// memory references cause the cache misses, so the analyzer can write a
// feedback file naming (function, line, structure, member); a recompilation
// can then insert prefetch instructions for those references.
#pragma once

#include <string>
#include <vector>

#include "analyze/analysis.hpp"

namespace dsprof::analyze {

struct FeedbackEntry {
  std::string function;
  u32 line = 0;
  std::string struct_name;  // empty for scalar references
  std::string member;
  double metric_value = 0;  // accumulated metric at this reference
  double share = 0;         // fraction of the metric's total
};

/// Extract hot memory references: validated trigger PCs whose `metric` share
/// exceeds `min_share`, with their data descriptors.
std::vector<FeedbackEntry> prefetch_feedback(const Analysis& a, size_t metric,
                                             double min_share = 0.02);

/// One line per entry: "function line struct member share".
std::string feedback_to_text(const std::vector<FeedbackEntry>& entries);

/// What feedback_from_text did with each input line. A feedback file may
/// come from an older toolchain or a hand edit, so malformed lines (wrong
/// field count, non-numeric line/share, share outside [0, 1]) are *skipped
/// and counted* — never folded into the result as garbage, and one bad line
/// never discards the parseable rest.
struct FeedbackParseStats {
  size_t parsed = 0;        // entries returned
  size_t skipped = 0;       // malformed lines ignored
  std::string first_error;  // "line 3: non-numeric share 'x'" (empty if none)
};

/// Parse feedback_to_text output. Blank lines and '#' comments are ignored;
/// malformed lines are skipped (see FeedbackParseStats). `stats` is optional.
std::vector<FeedbackEntry> feedback_from_text(const std::string& text,
                                              FeedbackParseStats* stats = nullptr);

}  // namespace dsprof::analyze
