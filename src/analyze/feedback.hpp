// Prefetch feedback (paper §4, future work): the experiment knows which
// memory references cause the cache misses, so the analyzer can write a
// feedback file naming (function, line, structure, member); a recompilation
// can then insert prefetch instructions for those references.
#pragma once

#include <string>
#include <vector>

#include "analyze/analysis.hpp"

namespace dsprof::analyze {

struct FeedbackEntry {
  std::string function;
  u32 line = 0;
  std::string struct_name;  // empty for scalar references
  std::string member;
  double metric_value = 0;  // accumulated metric at this reference
  double share = 0;         // fraction of the metric's total
};

/// Extract hot memory references: validated trigger PCs whose `metric` share
/// exceeds `min_share`, with their data descriptors.
std::vector<FeedbackEntry> prefetch_feedback(const Analysis& a, size_t metric,
                                             double min_share = 0.02);

/// One line per entry: "function line struct member share".
std::string feedback_to_text(const std::vector<FeedbackEntry>& entries);
std::vector<FeedbackEntry> feedback_from_text(const std::string& text);

}  // namespace dsprof::analyze
