#include "analyze/metrics.hpp"

namespace dsprof::analyze {

std::string metric_name(size_t metric) {
  if (metric == kUserCpuMetric) return "User CPU";
  return machine::hw_event_info(static_cast<machine::HwEvent>(metric)).description;
}

std::string metric_short_name(size_t metric) {
  if (metric == kUserCpuMetric) return "ucpu";
  return machine::hw_event_info(static_cast<machine::HwEvent>(metric)).name;
}

bool metric_in_cycles(size_t metric) {
  if (metric == kUserCpuMetric) return true;
  return machine::hw_event_info(static_cast<machine::HwEvent>(metric)).counts_cycles;
}

size_t metric_by_short_name(const std::string& name) {
  if (name == "ucpu") return kUserCpuMetric;
  return static_cast<size_t>(machine::hw_event_by_name(name));
}

}  // namespace dsprof::analyze
