// Metric vocabulary for the analyzer: one metric per hardware event plus
// User CPU time (from clock profiling). Values accumulate the per-sample
// weights (the overflow interval), which estimates the true event count;
// cycle-denominated metrics are rendered as seconds.
#pragma once

#include <array>
#include <string>

#include "machine/counters.hpp"

namespace dsprof::analyze {

inline constexpr size_t kUserCpuMetric = machine::kNumHwEvents;
inline constexpr size_t kNumMetrics = machine::kNumHwEvents + 1;

using MetricVector = std::array<double, kNumMetrics>;

inline MetricVector zero_metrics() { return MetricVector{}; }

inline void add_to(MetricVector& a, size_t metric, double w) { a[metric] += w; }

inline void add_all(MetricVector& a, const MetricVector& b) {
  for (size_t i = 0; i < kNumMetrics; ++i) a[i] += b[i];
}

/// Display name, e.g. "E$ Stall Cycles", "User CPU".
std::string metric_name(size_t metric);

/// Short name used in feedback files and CLI selection ("ecstall", "ucpu").
std::string metric_short_name(size_t metric);

/// True if the metric counts cycles (rendered as seconds).
bool metric_in_cycles(size_t metric);

/// Parse a short name; throws on unknown.
size_t metric_by_short_name(const std::string& name);

}  // namespace dsprof::analyze
