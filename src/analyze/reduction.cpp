#include "analyze/reduction.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

#include "obs/obs.hpp"

namespace dsprof::analyze {

namespace {

using experiment::EventStore;
using experiment::Experiment;

// Packed composite keys (documented in reduction.hpp).
constexpr u64 pc_key(u64 pc, bool artificial) { return (pc << 1) | (artificial ? 1 : 0); }
constexpr u64 edge_key(u32 caller, u32 callee) { return (u64{caller} << 32) | callee; }
constexpr u64 data_key(u8 cat, u32 sid) { return (u64{cat} << 32) | sid; }
constexpr u64 member_key(u32 sid, u32 member) { return (u64{sid} << 32) | member; }

// DataCat values, mirrored here to avoid a circular include with
// analysis.hpp (which owns the public enum). Kept in sync by
// static_asserts in analysis.cpp.
enum : u8 {
  kCatStruct = 0,
  kCatScalars = 1,
  kCatUnspecified = 2,
  kCatUnresolvable = 3,
  kCatUnascertainable = 4,
  kCatUnidentified = 5,
  kCatUnverifiable = 6,
};

/// Thread-local partial aggregates for one shard of events: a plain
/// ReductionResult (the fold target everywhere — shard partials, the merged
/// offline result, and the IncrementalReducer's live aggregates are the same
/// shape) plus reused per-event scratch.
struct Partial {
  ReductionResult r;
  std::vector<u32> frames;  // frame function ids, leaf included
};

/// Per-event attribution outcome tallies (paper §2.3 candidate validation).
/// Plain integers bumped inside the fold loop — sub-nanosecond next to the
/// fold itself — and flushed to obs counters once per shard / per fold()
/// call, keeping the per-event hot path free of atomics.
struct AttrOutcomes {
  u64 clock = 0;          // clock-profile samples (no data attribution)
  u64 validated = 0;      // candidate PC survived branch-target validation
  u64 branch_target = 0;  // a branch target intervened: artificial PC row
  u64 no_candidate = 0;   // no backtracking or no memory op in the window
  u64 unverifiable = 0;   // no branch-target info in the symbol tables

  void flush(u64 events_folded) const {
    static const obs::Counter c_folded = obs::counter("reduce.events.folded");
    static const obs::Counter c_clock = obs::counter("reduce.attr.clock");
    static const obs::Counter c_validated = obs::counter("reduce.attr.validated");
    static const obs::Counter c_branch = obs::counter("reduce.attr.branch_target");
    static const obs::Counter c_nocand = obs::counter("reduce.attr.no_candidate");
    static const obs::Counter c_unver = obs::counter("reduce.attr.unverifiable");
    c_folded.add(events_folded);
    if (clock != 0) c_clock.add(clock);
    if (validated != 0) c_validated.add(validated);
    if (branch_target != 0) c_branch.add(branch_target);
    if (no_candidate != 0) c_nocand.add(no_candidate);
    if (unverifiable != 0) c_unver.add(unverifiable);
  }
};

/// Immutable fold context: which events, which symbols, which counters were
/// collected with apropos backtracking. Built per experiment by the offline
/// engines and per session by the IncrementalReducer. Backtracking is keyed
/// by event, not by PIC register: a multiplexed run time-slices several
/// counter sets onto the same registers, so a register number no longer
/// identifies a counter spec (for a single always-live set the two keyings
/// are equivalent — at most one spec per register).
struct FoldContext {
  const EventStore* events = nullptr;
  const sym::SymbolTable* symtab = nullptr;
  std::array<bool, machine::kNumHwEvents> backtrack_by_event{};
};

FoldContext context_of(const Experiment& ex) {
  FoldContext c;
  c.events = &ex.events;
  c.symtab = &ex.image.symtab;
  for (const auto& spec : ex.counters) {
    c.backtrack_by_event[static_cast<size_t>(spec.event)] = spec.backtrack;
  }
  return c;
}

u32 func_id_for(const sym::SymbolTable& st, u64 pc, u32 unknown_id) {
  const sym::FuncInfo* f = st.find_function(pc);
  if (!f) return unknown_id;
  return static_cast<u32>(f - st.functions().data());
}

void add_counts(FlatHashU64Map<MetricCounts>& m, u64 key, size_t metric, u64 w) {
  m[key][metric] += w;
}

/// Code-space attribution for one event: PC, function, line, inclusive
/// functions (recursion-safe) and caller->callee edges from the callstack.
void attribute_code(ReductionResult& r, std::vector<u32>& frames, const sym::SymbolTable& st,
                    u32 unknown_id, u64 pc, bool artificial, size_t metric, u64 w,
                    const experiment::CallstackRef& callstack) {
  add_counts(r.pc, pc_key(pc, artificial), metric, w);
  const u32 leaf = func_id_for(st, pc, unknown_id);
  add_counts(r.func, leaf, metric, w);
  if (auto line = st.line_for(pc)) add_counts(r.line, *line, metric, w);

  frames.clear();
  for (u64 site : callstack) frames.push_back(func_id_for(st, site, unknown_id));
  frames.push_back(leaf);

  // Each function on the stack gets the weight once (recursion-safe).
  for (size_t i = 0; i < frames.size(); ++i) {
    bool dup = false;
    for (size_t j = 0; j < i; ++j) dup |= frames[j] == frames[i];
    if (!dup) add_counts(r.incl, frames[i], metric, w);
  }
  for (size_t i = 0; i + 1 < frames.size(); ++i) {
    add_counts(r.edge, edge_key(frames[i], frames[i + 1]), metric, w);
  }
}

/// Fold one event into the aggregates — the exact attribution pipeline of
/// the paper's §2.3 (candidate validation against branch targets, the
/// <Unknown> breakdown of §3.2.5), matching the seed Analysis
/// event-for-event. Shared verbatim by the offline sharded engine and the
/// online IncrementalReducer, which is what makes the streamed and offline
/// views bit-identical by construction.
void fold_event(ReductionResult& r, std::vector<u32>& frames, const FoldContext& ctx,
                u32 unknown_id, size_t i, AttrOutcomes& oc) {
  const EventStore& ev = *ctx.events;
  const sym::SymbolTable& st = *ctx.symtab;

  const u8 pic = ev.pic_col()[i];
  const u64 w = ev.weight_col()[i];
  const u64 delivered_pc = ev.delivered_pc_col()[i];
  const experiment::CallstackRef stack = ev.callstack(i);

  if (pic == machine::kClockPic) {
    // Clock-profile sample: code-space only; skid cannot be corrected
    // (paper §3.2.3 — User CPU shows against unlikely instructions).
    oc.clock += 1;
    r.present[kUserCpuMetric] = true;
    r.total[kUserCpuMetric] += w;
    attribute_code(r, frames, st, unknown_id, delivered_pc, false, kUserCpuMetric, w, stack);
    return;
  }

  const auto metric = static_cast<size_t>(ev.event_col()[i]);
  r.present[metric] = true;
  r.total[metric] += w;

  const u8 flags = ev.flags_col()[i];
  const bool has_candidate = (flags & EventStore::kHasCandidate) != 0;
  const bool has_ea = (flags & EventStore::kHasEa) != 0;
  const u64 candidate_pc = ev.candidate_pc_col()[i];
  const bool backtracked = pic < machine::kNumPics && ctx.backtrack_by_event[metric];

  auto data_bucket = [&](u8 cat, u32 sid) {
    add_counts(r.data, data_key(cat, sid), metric, w);
    r.data_total[metric] += w;
  };

  if (!backtracked || !has_candidate) {
    // No candidate trigger: attribute code space to the delivered PC; the
    // data object cannot be determined.
    oc.no_candidate += 1;
    attribute_code(r, frames, st, unknown_id, delivered_pc, false, metric, w, stack);
    data_bucket(kCatUnresolvable, sym::kInvalidType);
    return;
  }

  if (!st.has_branch_targets()) {
    // Cannot validate the candidate (no branch-target info, e.g. STABS).
    oc.unverifiable += 1;
    attribute_code(r, frames, st, unknown_id, candidate_pc, false, metric, w, stack);
    data_bucket(kCatUnverifiable, sym::kInvalidType);
    return;
  }

  if (auto target = st.branch_target_in(candidate_pc, delivered_pc)) {
    // A branch target between the candidate and the delivered PC: the path
    // to the interrupt is unknown. Attribute to an artificial branch-target
    // PC (paper §2.3, the `*<branch target>` rows of Figure 4).
    oc.branch_target += 1;
    attribute_code(r, frames, st, unknown_id, *target, true, metric, w, stack);
    data_bucket(kCatUnresolvable, sym::kInvalidType);
    return;
  }

  // Validated trigger PC.
  oc.validated += 1;
  attribute_code(r, frames, st, unknown_id, candidate_pc, false, metric, w, stack);

  if (!st.hwcprof()) {
    data_bucket(kCatUnascertainable, sym::kInvalidType);
    return;
  }
  const sym::MemRef* ref = st.memref_for(candidate_pc);
  if (!ref) {
    data_bucket(kCatUnspecified, sym::kInvalidType);
    return;
  }
  switch (ref->kind) {
    case sym::MemRef::Kind::Unidentified:
      data_bucket(kCatUnidentified, sym::kInvalidType);
      break;
    case sym::MemRef::Kind::Scalar:
      data_bucket(kCatScalars, sym::kInvalidType);
      break;
    case sym::MemRef::Kind::StructMember:
      data_bucket(kCatStruct, ref->aggregate);
      add_counts(r.member, member_key(ref->aggregate, ref->member), metric, w);
      break;
  }
  if (has_ea) {
    r.ea_samples.push_back({ev.ea_col()[i], metric, static_cast<double>(w)});
  }
}

void merge_map(FlatHashU64Map<MetricCounts>& into, const FlatHashU64Map<MetricCounts>& from) {
  for (const auto& e : from.entries()) {
    MetricCounts& c = into[e.key];
    for (size_t m = 0; m < kNumMetrics; ++m) c[m] += e.value[m];
  }
}

void merge_partial(ReductionResult& r, Partial&& p) {
  for (size_t m = 0; m < kNumMetrics; ++m) {
    r.present[m] = r.present[m] || p.r.present[m];
    r.total[m] += p.r.total[m];
    r.data_total[m] += p.r.data_total[m];
  }
  merge_map(r.pc, p.r.pc);
  merge_map(r.func, p.r.func);
  merge_map(r.incl, p.r.incl);
  merge_map(r.edge, p.r.edge);
  merge_map(r.line, p.r.line);
  merge_map(r.data, p.r.data);
  merge_map(r.member, p.r.member);
  r.ea_samples.insert(r.ea_samples.end(), p.r.ea_samples.begin(), p.r.ea_samples.end());
}

ReductionResult reduce_sharded(const std::vector<FoldContext>& ctxs, u32 unknown_id,
                               unsigned threads) {
  // Global event index space: experiments concatenated in order.
  std::vector<size_t> prefix{0};
  for (const auto& c : ctxs) prefix.push_back(prefix.back() + c.events->size());
  const size_t n = prefix.back();

  const size_t min_shard = 4096;  // don't spin threads for tiny stores
  size_t nshards = threads;
  if (nshards > 1 && n / nshards < min_shard) nshards = std::max<size_t>(1, n / min_shard);

  static const obs::SpanName kShardSpan = obs::span_name("reduce.shard");
  static const obs::Histogram kShardNs = obs::histogram("reduce.shard.fold_ns");

  std::vector<Partial> partials(nshards);
  auto work = [&](size_t s) {
    Partial& p = partials[s];
    const size_t lo = n * s / nshards;
    const size_t hi = n * (s + 1) / nshards;
    if (lo >= hi) return;  // empty shard (e.g. every experiment is empty)
    const obs::ScopedSpan span(kShardSpan);
    const obs::ScopedTimer timer(kShardNs);
    AttrOutcomes oc;
    // Locate the experiment containing `lo`.
    size_t e = 0;
    while (prefix[e + 1] <= lo) ++e;
    for (size_t g = lo; g < hi; ++g) {
      while (prefix[e + 1] <= g) ++e;
      fold_event(p.r, p.frames, ctxs[e], unknown_id, g - prefix[e], oc);
    }
    oc.flush(hi - lo);
  };

  if (nshards <= 1) {
    work(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(nshards);
    for (size_t s = 0; s < nshards; ++s) pool.emplace_back(work, s);
    for (auto& t : pool) t.join();
  }

  static const obs::Histogram kMergeNs = obs::histogram("reduce.merge_ns");
  const obs::ScopedTimer merge_timer(kMergeNs);
  ReductionResult r;
  r.events_reduced = n;
  for (auto& p : partials) merge_partial(r, std::move(p));
  return r;
}

// ---------------------------------------------------------------------------
// Baseline engine: the seed's std::map/string fold, kept as the reference
// implementation for equivalence tests and as the "seed-equivalent" mode of
// bench/pipeline_throughput. Deliberately mirrors the seed's data structures
// (string-keyed ordered maps, a per-event vector<string> of frame names) so
// that its cost profile is honest.

struct BaselineState {
  std::array<bool, kNumMetrics> present{};
  MetricVector total{};
  MetricVector data_total{};
  std::map<std::pair<u64, bool>, MetricVector> pc_map;
  std::map<std::string, MetricVector> func_map;
  std::map<std::string, MetricVector> incl_map;
  std::map<std::pair<std::string, std::string>, MetricVector> edge_map;
  std::map<u32, MetricVector> line_map;
  std::map<std::pair<u8, u32>, MetricVector> data_map;
  std::map<std::pair<u32, u32>, MetricVector> member_map;
  std::vector<EaSample> ea_samples;
};

void baseline_attribute_code(BaselineState& st, const sym::SymbolTable& symtab, u64 pc,
                             bool artificial, size_t metric, double w,
                             const experiment::CallstackRef& callstack) {
  add_to(st.pc_map[{pc, artificial}], metric, w);
  const sym::FuncInfo* f = symtab.find_function(pc);
  const std::string leaf = f ? f->name : "<unknown code>";
  add_to(st.func_map[leaf], metric, w);
  if (auto line = symtab.line_for(pc)) add_to(st.line_map[*line], metric, w);

  std::vector<std::string> frames;
  frames.reserve(callstack.size() + 1);
  for (u64 site : callstack) {
    const sym::FuncInfo* cf = symtab.find_function(site);
    frames.push_back(cf ? cf->name : "<unknown code>");
  }
  frames.push_back(leaf);
  std::vector<const std::string*> seen;
  for (const auto& name : frames) {
    bool dup = false;
    for (const auto* s : seen) dup |= *s == name;
    if (!dup) {
      add_to(st.incl_map[name], metric, w);
      seen.push_back(&name);
    }
  }
  for (size_t i = 0; i + 1 < frames.size(); ++i) {
    add_to(st.edge_map[{frames[i], frames[i + 1]}], metric, w);
  }
}

void baseline_fold_event(BaselineState& bs, const FoldContext& ctx, size_t i) {
  const EventStore& ev = *ctx.events;
  const sym::SymbolTable& st = *ctx.symtab;
  const experiment::EventView e = ev[i];
  const double w = static_cast<double>(e.weight);

  if (e.pic == machine::kClockPic) {
    bs.present[kUserCpuMetric] = true;
    add_to(bs.total, kUserCpuMetric, w);
    baseline_attribute_code(bs, st, e.delivered_pc, false, kUserCpuMetric, w, e.callstack);
    return;
  }

  const auto metric = static_cast<size_t>(e.event);
  bs.present[metric] = true;
  add_to(bs.total, metric, w);

  const bool backtracked =
      e.pic < machine::kNumPics && ctx.backtrack_by_event[static_cast<size_t>(e.event)];
  auto data_bucket = [&](u8 cat, u32 sid) {
    add_to(bs.data_map[{cat, sid}], metric, w);
    add_to(bs.data_total, metric, w);
  };

  if (!backtracked || !e.has_candidate) {
    baseline_attribute_code(bs, st, e.delivered_pc, false, metric, w, e.callstack);
    data_bucket(kCatUnresolvable, sym::kInvalidType);
    return;
  }
  if (!st.has_branch_targets()) {
    baseline_attribute_code(bs, st, e.candidate_pc, false, metric, w, e.callstack);
    data_bucket(kCatUnverifiable, sym::kInvalidType);
    return;
  }
  if (auto target = st.branch_target_in(e.candidate_pc, e.delivered_pc)) {
    baseline_attribute_code(bs, st, *target, true, metric, w, e.callstack);
    data_bucket(kCatUnresolvable, sym::kInvalidType);
    return;
  }
  baseline_attribute_code(bs, st, e.candidate_pc, false, metric, w, e.callstack);
  if (!st.hwcprof()) {
    data_bucket(kCatUnascertainable, sym::kInvalidType);
    return;
  }
  const sym::MemRef* ref = st.memref_for(e.candidate_pc);
  if (!ref) {
    data_bucket(kCatUnspecified, sym::kInvalidType);
    return;
  }
  switch (ref->kind) {
    case sym::MemRef::Kind::Unidentified:
      data_bucket(kCatUnidentified, sym::kInvalidType);
      break;
    case sym::MemRef::Kind::Scalar:
      data_bucket(kCatScalars, sym::kInvalidType);
      break;
    case sym::MemRef::Kind::StructMember:
      data_bucket(kCatStruct, ref->aggregate);
      add_to(bs.member_map[{ref->aggregate, ref->member}], metric, w);
      break;
  }
  if (e.has_ea) bs.ea_samples.push_back({e.ea, metric, w});
}

MetricCounts counts_of(const MetricVector& v) {
  MetricCounts c{};
  for (size_t m = 0; m < kNumMetrics; ++m) c[m] = static_cast<u64>(v[m]);
  return c;
}

ReductionResult reduce_baseline(const std::vector<FoldContext>& ctxs, u32 unknown_id) {
  BaselineState bs;
  size_t n = 0;
  for (const auto& ctx : ctxs) {
    n += ctx.events->size();
    for (size_t i = 0; i < ctx.events->size(); ++i) baseline_fold_event(bs, ctx, i);
  }

  // Convert the string-keyed maps into the packed-key result form.
  const sym::SymbolTable& st = *ctxs[0].symtab;
  auto id_of = [&](const std::string& name) -> u32 {
    for (size_t f = 0; f < st.functions().size(); ++f) {
      if (st.functions()[f].name == name) return static_cast<u32>(f);
    }
    return unknown_id;
  };

  ReductionResult r;
  r.events_reduced = n;
  r.present = bs.present;
  r.total = counts_of(bs.total);
  r.data_total = counts_of(bs.data_total);
  for (const auto& [k, v] : bs.pc_map) r.pc[pc_key(k.first, k.second)] = counts_of(v);
  for (const auto& [k, v] : bs.func_map) r.func[id_of(k)] = counts_of(v);
  for (const auto& [k, v] : bs.incl_map) r.incl[id_of(k)] = counts_of(v);
  for (const auto& [k, v] : bs.edge_map) {
    r.edge[edge_key(id_of(k.first), id_of(k.second))] = counts_of(v);
  }
  for (const auto& [k, v] : bs.line_map) r.line[k] = counts_of(v);
  for (const auto& [k, v] : bs.data_map) r.data[data_key(k.first, k.second)] = counts_of(v);
  for (const auto& [k, v] : bs.member_map) {
    r.member[member_key(k.first, k.second)] = counts_of(v);
  }
  r.ea_samples = std::move(bs.ea_samples);
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// Radix engine: batch-level radix partitioning by aggregation key.
//
// The hash engine pays, per event, a find_function per callstack frame, a
// line lookup, candidate validation against the branch-target table and half
// a dozen hash-map probes. Almost all of that work is a pure function of a
// small tuple that repeats enormously: the *decision* tuple
// (candidate_pc, delivered_pc, pic/event/flags) — a hot loop delivers
// thousands of events with identical tuples — and the *path* tuple
// (callstack, attributed leaf). The radix fold partitions each batch into
// dense ids over those tuples (the expensive classification runs once per
// unique tuple), accumulates weights into flat arrays indexed by id, and
// expands the dense accumulators into the hash-keyed ReductionResult once
// per fold call. The fold loop itself is fused over the product of the two
// tuples: a single hash probe per event against a cache of
// (decision ⊗ callstack) entries that carry their own accumulators, so the
// steady-state per-event cost is one cache line plus the column loads.
// Everything accumulated is a u64 sum, so the result is bit-identical to
// the hash and baseline engines for any batching, shard count, or thread
// count.

class RadixFolder {
 public:
  /// Bind a fold context (symbol table + per-event backtrack flags). Resets
  /// every cache: decisions depend on both, so a folder is rebound at
  /// experiment boundaries.
  void bind(const sym::SymbolTable* symtab,
            const std::array<bool, machine::kNumHwEvents>& backtrack_by_event, u32 unknown_id) {
    st_ = symtab;
    backtrack_by_event_ = backtrack_by_event;
    unknown_id_ = unknown_id;
    dec_slots_.clear();
    decs_.clear();
    dec_w_.clear();
    dec_n_.clear();
    touched_decs_.clear();
    fat_slots_.clear();
    fat_mask_ = 0;
    fats_.clear();  // entries embed decision ids, now invalid
  }

  /// Fold events [begin, end) of `ev` into `r`. Callstack identities are
  /// re-derived per call (handles are only meaningful within one store), so
  /// successive calls may pass different stores — the dsprofd batch path.
  void fold(ReductionResult& r, const experiment::EventStore& ev, size_t begin, size_t end,
            AttrOutcomes& oc);

 private:
  /// One classified event tuple: every per-event question the attribution
  /// pipeline asks, answered once. `cand`/`del`/`meta` are the exact key.
  struct Decision {
    u64 cand = 0;
    u64 del = 0;
    u32 meta = 0;  // pic | event << 8 | flags << 16
    // Precomputed attribution (fold_event's answers for this tuple).
    u64 pc_key = 0;
    u64 data_key = 0;
    u64 member_key = 0;
    u32 leaf = 0;
    u32 line = 0;
    u8 metric = 0;
    u8 outcome = 0;  // index into outcome_counts_ (AttrOutcomes order)
    bool has_line = false;
    bool has_data = false;
    bool has_member = false;
    bool emit_ea = false;
  };

  /// One unique (callstack handle, leaf) pair with its precomputed
  /// inclusive function ids (deduped, order of first appearance) and
  /// caller->callee edge keys (duplicates kept — recursion adds an edge's
  /// weight once per occurrence) pooled contiguously.
  struct PathInfo {
    u64 off = 0;
    u32 len = 0;
    u32 leaf = 0;
    u32 incl_begin = 0, incl_end = 0;
    u32 edge_begin = 0, edge_end = 0;
  };

  enum : u8 {
    kOutClock = 0,
    kOutValidated,
    kOutBranchTarget,
    kOutNoCandidate,
    kOutUnverifiable,
    kNumOutcomes,
  };

  /// One unique (decision tuple ⊗ callstack handle) pair — the fused fast
  /// path's unit of work. The fold loop makes a single hash probe per event
  /// against these and accumulates weight/count into the entry it just
  /// compared, so the per-event cost is one cache line plus the column
  /// loads; decisions and paths are only consulted on a miss. Sized to one
  /// cache line.
  struct FatEntry {
    u64 cand = 0;
    u64 del = 0;
    u64 off = 0;   // callstack handle (arena offset)
    u32 meta = 0;  // pic | event << 8 | flags << 16
    u32 len = 0;   // callstack length
    u32 did = 0;   // decision id
    u32 pid = 0;   // path id
    u64 w = 0;     // weight sum, consumed by flush()
    u64 n = 0;     // event count, consumed by flush()
    // Replayed answers copied from the decision so the hot loop never
    // touches decs_.
    u8 metric = 0;
    u8 outcome = 0;
    bool emit_ea = false;
  };

  u32 decision_id(u64 cand, u64 del, u32 meta) {
    u64 h = mix_u64(cand ^ mix_u64(del ^ (u64{meta} * 0x9e3779b97f4a7c15ULL)));
    for (;;) {
      u32& slot = dec_slots_[h];
      if (slot == 0) {
        const u32 id = classify(cand, del, meta);
        slot = id + 1;
        return id;
      }
      const Decision& d = decs_[slot - 1];
      if (d.cand == cand && d.del == del && d.meta == meta) return slot - 1;
      h = mix_u64(h + 0x9e3779b97f4a7c15ULL);
    }
  }

  /// The slow path: run the full §2.3 attribution pipeline for one tuple.
  /// Mirrors fold_event branch for branch; the dense fold then replays the
  /// cached answers for every event sharing the tuple.
  u32 classify(u64 cand, u64 del, u32 meta) {
    Decision d;
    d.cand = cand;
    d.del = del;
    d.meta = meta;
    const u8 pic = static_cast<u8>(meta & 0xff);
    const u8 flags = static_cast<u8>((meta >> 16) & 0xff);
    const bool has_candidate = (flags & experiment::EventStore::kHasCandidate) != 0;
    const bool has_ea = (flags & experiment::EventStore::kHasEa) != 0;

    auto set_code = [&](u64 pc, bool artificial) {
      d.pc_key = pc_key(pc, artificial);
      d.leaf = func_id_for(*st_, pc, unknown_id_);
      if (auto line = st_->line_for(pc)) {
        d.line = *line;
        d.has_line = true;
      }
    };
    auto set_data = [&](u8 cat, u32 sid) {
      d.data_key = data_key(cat, sid);
      d.has_data = true;
    };

    if (pic == machine::kClockPic) {
      d.metric = static_cast<u8>(kUserCpuMetric);
      d.outcome = kOutClock;
      set_code(del, false);
    } else {
      d.metric = static_cast<u8>((meta >> 8) & 0xff);
      const bool backtracked = pic < machine::kNumPics && backtrack_by_event_[d.metric];
      if (!backtracked || !has_candidate) {
        d.outcome = kOutNoCandidate;
        set_code(del, false);
        set_data(kCatUnresolvable, sym::kInvalidType);
      } else if (!st_->has_branch_targets()) {
        d.outcome = kOutUnverifiable;
        set_code(cand, false);
        set_data(kCatUnverifiable, sym::kInvalidType);
      } else if (auto target = st_->branch_target_in(cand, del)) {
        d.outcome = kOutBranchTarget;
        set_code(*target, true);
        set_data(kCatUnresolvable, sym::kInvalidType);
      } else {
        d.outcome = kOutValidated;
        set_code(cand, false);
        if (!st_->hwcprof()) {
          set_data(kCatUnascertainable, sym::kInvalidType);
        } else if (const sym::MemRef* ref = st_->memref_for(cand); ref == nullptr) {
          set_data(kCatUnspecified, sym::kInvalidType);
        } else {
          switch (ref->kind) {
            case sym::MemRef::Kind::Unidentified:
              set_data(kCatUnidentified, sym::kInvalidType);
              break;
            case sym::MemRef::Kind::Scalar:
              set_data(kCatScalars, sym::kInvalidType);
              break;
            case sym::MemRef::Kind::StructMember:
              set_data(kCatStruct, ref->aggregate);
              d.member_key = member_key(ref->aggregate, ref->member);
              d.has_member = true;
              break;
          }
          d.emit_ea = has_ea;  // fold_event pushes the EA sample only when
                               // hwcprof data and a memref are present
        }
      }
    }

    const u32 id = static_cast<u32>(decs_.size());
    decs_.push_back(d);
    dec_w_.push_back(0);
    dec_n_.push_back(0);
    return id;
  }

  u32 path_id(u64 off, u32 len, u32 leaf, const u64* arena) {
    u64 h = mix_u64(off ^ mix_u64((u64{len} << 32) | leaf));
    for (;;) {
      u32& slot = path_slots_[h];
      if (slot == 0) {
        const u32 id = build_path(off, len, leaf, arena);
        slot = id + 1;
        return id;
      }
      const PathInfo& p = paths_[slot - 1];
      if (p.off == off && p.len == len && p.leaf == leaf) return slot - 1;
      h = mix_u64(h + 0x9e3779b97f4a7c15ULL);
    }
  }

  /// Fat-tuple hash: one mix over independently-multiplied fields. Short
  /// dependency chain; quality only affects probe length (entries are
  /// verified by field compare, never by hash).
  static u64 fat_hash(u64 cand, u64 del, u64 off, u32 meta, u32 len) {
    return mix_u64(cand ^ (del * 0x9e3779b97f4a7c15ULL) ^ (off * 0xff51afd7ed558ccdULL) ^
                   (((u64{meta} << 32) | len) * 0xc4ceb9fe1a85ec53ULL));
  }

  /// Rebuild the fat slot array at `cap` slots (power of two) and reinsert
  /// every live entry. Slots hold fat id + 1 (0 = empty) with linear
  /// probing; the entries themselves are the keys, so a lookup is one slot
  /// load plus one entry line.
  void fat_rehash(size_t cap) {
    fat_slots_.assign(cap, 0);
    fat_mask_ = cap - 1;
    for (size_t id = 0; id < fats_.size(); ++id) {
      const FatEntry& e = fats_[id];
      size_t s = fat_hash(e.cand, e.del, e.off, e.meta, e.len) & fat_mask_;
      while (fat_slots_[s] != 0) s = (s + 1) & fat_mask_;
      fat_slots_[s] = static_cast<u32>(id + 1);
    }
  }

  /// Out-of-line probe: walk the table from scratch against its current
  /// state, creating the entry on an empty slot. The fast path only calls
  /// this when its prefetched snapshot missed or went stale (an insert or
  /// rehash earlier in the same chunk), so re-probing is always correct
  /// and duplicates are impossible.
  u32 probe_slow(u64 h, u64 c, u64 dl, u64 off, u32 meta, u32 len, const u64* arena) {
    size_t s = h & fat_mask_;
    for (;;) {
      const u32 slot = fat_slots_[s];
      if (slot == 0) {
        const u32 fid = make_fat(c, dl, off, meta, len, arena);
        if (fats_.size() * 2 > fat_slots_.size()) {
          fat_rehash(fat_slots_.size() * 2);  // reinserts the new entry too
        } else {
          fat_slots_[s] = fid + 1;
        }
        return fid;
      }
      const FatEntry& e = fats_[slot - 1];
      if (e.cand == c && e.del == dl && e.off == off && e.meta == meta && e.len == len) {
        return slot - 1;
      }
      s = (s + 1) & fat_mask_;
    }
  }

  /// Fat-cache miss: resolve (or create) the decision and path for this
  /// tuple and snapshot the per-event answers into a new entry.
  u32 make_fat(u64 cand, u64 del, u64 off, u32 meta, u32 len, const u64* arena) {
    FatEntry e;
    e.cand = cand;
    e.del = del;
    e.off = off;
    e.meta = meta;
    e.len = len;
    e.did = decision_id(cand, del, meta);
    const Decision& d = decs_[e.did];
    e.pid = path_id(off, len, d.leaf, arena);
    e.metric = d.metric;
    e.outcome = d.outcome;
    e.emit_ea = d.emit_ea;
    const u32 id = static_cast<u32>(fats_.size());
    fats_.push_back(e);
    return id;
  }

  u32 build_path(u64 off, u32 len, u32 leaf, const u64* arena) {
    PathInfo p;
    p.off = off;
    p.len = len;
    p.leaf = leaf;
    frames_.clear();
    for (u32 j = 0; j < len; ++j) {
      frames_.push_back(func_id_for(*st_, arena[off + j], unknown_id_));
    }
    frames_.push_back(leaf);

    p.incl_begin = static_cast<u32>(incl_pool_.size());
    for (size_t i = 0; i < frames_.size(); ++i) {
      bool dup = false;
      for (size_t j = 0; j < i; ++j) dup |= frames_[j] == frames_[i];
      if (!dup) incl_pool_.push_back(frames_[i]);
    }
    p.incl_end = static_cast<u32>(incl_pool_.size());

    p.edge_begin = static_cast<u32>(edge_pool_.size());
    for (size_t i = 0; i + 1 < frames_.size(); ++i) {
      edge_pool_.push_back(edge_key(frames_[i], frames_[i + 1]));
    }
    p.edge_end = static_cast<u32>(edge_pool_.size());

    const u32 id = static_cast<u32>(paths_.size());
    paths_.push_back(p);
    path_mc_.push_back(MetricCounts{});
    return id;
  }

  /// Expand the dense accumulators into the hash-keyed result and zero them.
  void flush(ReductionResult& r) {
    // First expand the fat entries into the decision/path accumulators —
    // pure u64 sums, so the result is identical to per-event accumulation.
    for (const FatEntry& e : fats_) {
      if (dec_n_[e.did] == 0) touched_decs_.push_back(e.did);
      dec_n_[e.did] += e.n;
      dec_w_[e.did] += e.w;
      outcome_counts_[e.outcome] += e.n;
      path_mc_[e.pid][e.metric] += e.w;
    }
    for (const u32 id : touched_decs_) {
      const Decision& d = decs_[id];
      const u64 w = dec_w_[id];
      r.present[d.metric] = true;
      r.total[d.metric] += w;
      r.pc[d.pc_key][d.metric] += w;
      r.func[d.leaf][d.metric] += w;
      if (d.has_line) r.line[d.line][d.metric] += w;
      if (d.has_data) {
        r.data[d.data_key][d.metric] += w;
        r.data_total[d.metric] += w;
      }
      if (d.has_member) r.member[d.member_key][d.metric] += w;
      dec_w_[id] = 0;
      dec_n_[id] = 0;
    }
    touched_decs_.clear();
    // The path cache is per fold call, so every path is live.
    for (size_t p = 0; p < paths_.size(); ++p) {
      const MetricCounts& mc = path_mc_[p];
      const PathInfo& pi = paths_[p];
      for (u32 i = pi.incl_begin; i < pi.incl_end; ++i) {
        MetricCounts& c = r.incl[incl_pool_[i]];
        for (size_t m = 0; m < kNumMetrics; ++m) c[m] += mc[m];
      }
      for (u32 i = pi.edge_begin; i < pi.edge_end; ++i) {
        MetricCounts& c = r.edge[edge_pool_[i]];
        for (size_t m = 0; m < kNumMetrics; ++m) c[m] += mc[m];
      }
    }
  }

  const sym::SymbolTable* st_ = nullptr;
  std::array<bool, machine::kNumHwEvents> backtrack_by_event_{};
  u32 unknown_id_ = 0;

  // Decision cache: lives from bind() to bind().
  FlatHashU64Map<u32> dec_slots_;  // hashed tuple -> id + 1
  std::vector<Decision> decs_;
  std::vector<u64> dec_w_;  // dense weight sums, zeroed by flush()
  std::vector<u64> dec_n_;  // dense event counts, zeroed by flush()
  std::vector<u32> touched_decs_;

  // Path cache: lives for one fold() call (handles are store-relative).
  FlatHashU64Map<u32> path_slots_;
  std::vector<PathInfo> paths_;
  std::vector<u32> incl_pool_;
  std::vector<u64> edge_pool_;
  std::vector<MetricCounts> path_mc_;

  // Fat cache: one entry per unique (decision, callstack) pair, also
  // per-fold (it embeds store-relative path ids and callstack handles).
  // The slot array is managed directly (see fat_rehash) — kept at most
  // half full so the expected probe is a single slot load.
  std::vector<u32> fat_slots_;
  size_t fat_mask_ = 0;
  std::vector<FatEntry> fats_;

  std::vector<u32> frames_;  // scratch for build_path
  std::array<u64, kNumOutcomes> outcome_counts_{};
};

void RadixFolder::fold(ReductionResult& r, const experiment::EventStore& ev, size_t begin,
                       size_t end, AttrOutcomes& oc) {
  DSP_CHECK(st_ != nullptr, "RadixFolder::fold before bind");
  // Fresh path cache per call: callstack handles only identify stacks
  // within one store, and callers may pass a different store each call.
  path_slots_.clear();
  paths_.clear();
  incl_pool_.clear();
  edge_pool_.clear();
  path_mc_.clear();
  fats_.clear();
  fat_rehash(1024);

  // Hoisted SoA column pointers — the fold loop touches nothing else.
  const u8* pic = ev.pic_col().data();
  const u8* event = ev.event_col().data();
  const u8* flags = ev.flags_col().data();
  const u64* weight = ev.weight_col().data();
  const u64* del = ev.delivered_pc_col().data();
  const u64* cand = ev.candidate_pc_col().data();
  const u64* ea = ev.ea_col().data();
  const u64* cs_off = ev.cs_offset_col().data();
  const u32* cs_len = ev.cs_len_col().data();
  const u64* arena = ev.arena().data();

  // Fused fold: one probe against the fat cache per event, accumulating
  // weight and count into the entry the probe just compared. Decision
  // classification and path construction only run on a fat miss — and a
  // tuple's first event is always a fat miss, so decisions and paths are
  // created in exactly the order a per-event partition would create them.
  //
  // The loop is software-pipelined in chunks: stage A computes hashes and
  // prefetches the slot lines, stage B reads the slots and prefetches the
  // entry lines, stage C verifies and accumulates. The two dependent
  // random loads per event thus overlap across the whole chunk instead of
  // serializing per event. Stage C's inserts can invalidate the snapshots
  // taken by stage B for later events in the same chunk — any snapshot
  // that is empty or fails the field compare falls back to probe_slow,
  // which re-walks the current table, so stale snapshots cost time, never
  // correctness (a nonzero snapshot that passes the compare is right by
  // construction: ids are stable and entries are immutable keys).
  constexpr size_t kChunk = 256;
  u64 h_arr[kChunk];
  u32 slot_arr[kChunk];
  for (size_t c0 = begin; c0 < end; c0 += kChunk) {
    const size_t cn = std::min(end - c0, kChunk);
    for (size_t j = 0; j < cn; ++j) {
      const size_t i = c0 + j;
      const u32 meta = u32{pic[i]} | (u32{event[i]} << 8) | (u32{flags[i]} << 16);
      const u64 h = fat_hash(cand[i], del[i], cs_off[i], meta, cs_len[i]);
      h_arr[j] = h;
      __builtin_prefetch(&fat_slots_[h & fat_mask_]);
    }
    for (size_t j = 0; j < cn; ++j) {
      const u32 slot = fat_slots_[h_arr[j] & fat_mask_];
      slot_arr[j] = slot;
      if (slot != 0) __builtin_prefetch(&fats_[slot - 1]);
    }
    for (size_t j = 0; j < cn; ++j) {
      const size_t i = c0 + j;
      const u32 meta = u32{pic[i]} | (u32{event[i]} << 8) | (u32{flags[i]} << 16);
      const u64 c = cand[i], dl = del[i], off = cs_off[i];
      const u32 len = cs_len[i];
      u32 fid;
      const u32 slot = slot_arr[j];
      if (slot != 0) {
        const FatEntry& e = fats_[slot - 1];
        fid = (e.cand == c && e.del == dl && e.off == off && e.meta == meta && e.len == len)
                  ? slot - 1
                  : probe_slow(h_arr[j], c, dl, off, meta, len, arena);
      } else {
        fid = probe_slow(h_arr[j], c, dl, off, meta, len, arena);
      }
      FatEntry& e = fats_[fid];
      const u64 w = weight[i];
      e.w += w;
      e.n += 1;
      if (e.emit_ea) r.ea_samples.push_back({ea[i], e.metric, static_cast<double>(w)});
    }
  }

  // Fold-shape introspection for perf work: cache populations per call.
  static const bool debug = std::getenv("DSPROF_RADIX_DEBUG") != nullptr;
  if (debug) {
    std::fprintf(stderr, "radix: events=%zu fats=%zu decs=%zu paths=%zu\n", end - begin,
                 fats_.size(), decs_.size(), paths_.size());
  }
  flush(r);
  oc.clock += outcome_counts_[kOutClock];
  oc.validated += outcome_counts_[kOutValidated];
  oc.branch_target += outcome_counts_[kOutBranchTarget];
  oc.no_candidate += outcome_counts_[kOutNoCandidate];
  oc.unverifiable += outcome_counts_[kOutUnverifiable];
  outcome_counts_ = {};
}

namespace {

/// The radix-engine shard driver: same shard geometry and obs spans as
/// reduce_sharded, with a RadixFolder per shard rebound at experiment
/// boundaries (decisions depend on the experiment's symbols and backtrack
/// flags).
ReductionResult reduce_radix(const std::vector<FoldContext>& ctxs, u32 unknown_id,
                             unsigned threads) {
  std::vector<size_t> prefix{0};
  for (const auto& c : ctxs) prefix.push_back(prefix.back() + c.events->size());
  const size_t n = prefix.back();

  const size_t min_shard = 4096;
  size_t nshards = threads;
  if (nshards > 1 && n / nshards < min_shard) nshards = std::max<size_t>(1, n / min_shard);

  static const obs::SpanName kShardSpan = obs::span_name("reduce.shard");
  static const obs::Histogram kShardNs = obs::histogram("reduce.shard.fold_ns");

  std::vector<Partial> partials(nshards);
  auto work = [&](size_t s) {
    Partial& p = partials[s];
    const size_t lo = n * s / nshards;
    const size_t hi = n * (s + 1) / nshards;
    if (lo >= hi) return;
    const obs::ScopedSpan span(kShardSpan);
    const obs::ScopedTimer timer(kShardNs);
    AttrOutcomes oc;
    RadixFolder folder;
    size_t e = 0;
    while (prefix[e + 1] <= lo) ++e;
    size_t g = lo;
    while (g < hi) {
      while (prefix[e + 1] <= g) ++e;
      const size_t seg_end = std::min(hi, prefix[e + 1]);
      folder.bind(ctxs[e].symtab, ctxs[e].backtrack_by_event, unknown_id);
      folder.fold(p.r, *ctxs[e].events, g - prefix[e], seg_end - prefix[e], oc);
      g = seg_end;
    }
    oc.flush(hi - lo);
  };

  if (nshards <= 1) {
    work(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(nshards);
    for (size_t s = 0; s < nshards; ++s) pool.emplace_back(work, s);
    for (auto& t : pool) t.join();
  }

  static const obs::Histogram kMergeNs = obs::histogram("reduce.merge_ns");
  const obs::ScopedTimer merge_timer(kMergeNs);
  ReductionResult r;
  r.events_reduced = n;
  for (auto& p : partials) merge_partial(r, std::move(p));
  return r;
}

/// Tally per-metric sample counts for events [begin, end) — clock samples
/// under kUserCpuMetric, hardware samples under their event id. Engine-
/// independent by construction (a straight column scan), so every engine
/// and the incremental fold agree on ReductionResult::sample_counts.
void count_samples_range(MetricCounts& counts, const experiment::EventStore& ev,
                         size_t begin, size_t end) {
  const auto pic = ev.pic_col();
  const auto event = ev.event_col();
  for (size_t i = begin; i < end; ++i) {
    counts[pic[i] == machine::kClockPic ? kUserCpuMetric
                                        : static_cast<size_t>(event[i])] += 1;
  }
}

void count_samples(MetricCounts& counts, const std::vector<FoldContext>& ctxs) {
  for (const auto& c : ctxs) count_samples_range(counts, *c.events, 0, c.events->size());
}

}  // namespace

unsigned Reduction::resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("DSPROF_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    DSP_CHECK(end != env && *end == '\0' && v >= 1 && v <= 1024,
              std::string("bad DSPROF_THREADS value: '") + env +
                  "' (expected an integer in [1, 1024])");
    return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

Reduction::Engine Reduction::resolve_engine(Engine requested) {
  if (requested != Engine::Auto) return requested;
  if (const char* env = std::getenv("DSPROF_REDUCE_ENGINE")) {
    const std::string v(env);
    if (v == "radix") return Engine::Radix;
    if (v == "sharded") return Engine::Sharded;
    if (v == "baseline") return Engine::Baseline;
    fail("bad DSPROF_REDUCE_ENGINE value: '" + v +
         "' (expected radix, sharded or baseline)");
  }
  return Engine::Radix;
}

ReductionResult Reduction::run(const std::vector<const Experiment*>& exps,
                               const ReduceOptions& options) {
  DSP_CHECK(!exps.empty(), "no experiments to analyze");
  std::vector<FoldContext> ctxs;
  ctxs.reserve(exps.size());
  for (const auto* ex : exps) ctxs.push_back(context_of(*ex));
  const sym::SymbolTable& st = exps[0]->image.symtab;
  const u32 unknown_id = static_cast<u32>(st.functions().size());

  ReductionResult r;
  switch (resolve_engine(options.engine)) {
    case Engine::Baseline:
      r = reduce_baseline(ctxs, unknown_id);
      break;
    case Engine::Sharded:
      r = reduce_sharded(ctxs, unknown_id, resolve_threads(options.threads));
      break;
    default:
      r = reduce_radix(ctxs, unknown_id, resolve_threads(options.threads));
      break;
  }

  r.func_names.reserve(st.functions().size() + 1);
  for (const auto& f : st.functions()) r.func_names.push_back(f.name);
  r.func_names.push_back("<unknown code>");
  count_samples(r.sample_counts, ctxs);
  return r;
}

ReductionResult merge_results(const std::vector<const ReductionResult*>& parts) {
  DSP_CHECK(!parts.empty(), "no reductions to merge");
  ReductionResult r;
  // func_names are derived from the symbol table alone, so agreement is the
  // same-binary check Analysis makes on experiments, applied to results.
  for (const auto* p : parts) {
    if (r.func_names.empty()) r.func_names = p->func_names;
    DSP_CHECK(p->func_names.empty() || p->func_names == r.func_names,
              "merged reductions must come from the same binary");
  }
  for (const auto* p : parts) {
    for (size_t m = 0; m < kNumMetrics; ++m) {
      r.present[m] = r.present[m] || p->present[m];
      r.total[m] += p->total[m];
      r.data_total[m] += p->data_total[m];
      r.sample_counts[m] += p->sample_counts[m];
    }
    merge_map(r.pc, p->pc);
    merge_map(r.func, p->func);
    merge_map(r.incl, p->incl);
    merge_map(r.edge, p->edge);
    merge_map(r.line, p->line);
    merge_map(r.data, p->data);
    merge_map(r.member, p->member);
    r.ea_samples.insert(r.ea_samples.end(), p->ea_samples.begin(), p->ea_samples.end());
    r.events_reduced += p->events_reduced;
  }
  return r;
}

// ---------------------------------------------------------------------------
// IncrementalReducer — the dsprofd online path.

IncrementalReducer::IncrementalReducer(const sym::SymbolTable& symtab,
                                       const std::vector<experiment::CounterSpec>& counters)
    : symtab_(&symtab), folder_(std::make_unique<RadixFolder>()) {
  for (const auto& spec : counters) {
    backtrack_by_event_[static_cast<size_t>(spec.event)] = spec.backtrack;
  }
  unknown_id_ = static_cast<u32>(symtab.functions().size());
  // One bind for the reducer's lifetime: the symbol table and backtrack
  // flags are fixed per session, so the decision cache warms across batches.
  folder_->bind(symtab_, backtrack_by_event_, unknown_id_);
  // func_names exactly as Reduction::run fills them, so a snapshot
  // ReductionResult is indistinguishable from an offline one.
  r_.func_names.reserve(symtab.functions().size() + 1);
  for (const auto& f : symtab.functions()) r_.func_names.push_back(f.name);
  r_.func_names.push_back("<unknown code>");
}

IncrementalReducer::~IncrementalReducer() = default;
IncrementalReducer::IncrementalReducer(IncrementalReducer&&) noexcept = default;
IncrementalReducer& IncrementalReducer::operator=(IncrementalReducer&&) noexcept = default;

void IncrementalReducer::fold(const experiment::EventStore& events, size_t begin,
                              size_t end) {
  DSP_CHECK(begin <= end && end <= events.size(), "fold range outside event store");
  static const obs::Histogram kFoldNs = obs::histogram("reduce.incremental.fold_ns");
  const obs::ScopedTimer timer(kFoldNs);
  AttrOutcomes oc;
  folder_->fold(r_, events, begin, end, oc);
  oc.flush(end - begin);
  r_.events_reduced += end - begin;
  count_samples_range(r_.sample_counts, events, begin, end);
}

}  // namespace dsprof::analyze
