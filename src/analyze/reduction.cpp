#include "analyze/reduction.hpp"

#include <cstdlib>
#include <map>
#include <thread>

#include "obs/obs.hpp"

namespace dsprof::analyze {

namespace {

using experiment::EventStore;
using experiment::Experiment;

// Packed composite keys (documented in reduction.hpp).
constexpr u64 pc_key(u64 pc, bool artificial) { return (pc << 1) | (artificial ? 1 : 0); }
constexpr u64 edge_key(u32 caller, u32 callee) { return (u64{caller} << 32) | callee; }
constexpr u64 data_key(u8 cat, u32 sid) { return (u64{cat} << 32) | sid; }
constexpr u64 member_key(u32 sid, u32 member) { return (u64{sid} << 32) | member; }

// DataCat values, mirrored here to avoid a circular include with
// analysis.hpp (which owns the public enum). Kept in sync by
// static_asserts in analysis.cpp.
enum : u8 {
  kCatStruct = 0,
  kCatScalars = 1,
  kCatUnspecified = 2,
  kCatUnresolvable = 3,
  kCatUnascertainable = 4,
  kCatUnidentified = 5,
  kCatUnverifiable = 6,
};

/// Thread-local partial aggregates for one shard of events: a plain
/// ReductionResult (the fold target everywhere — shard partials, the merged
/// offline result, and the IncrementalReducer's live aggregates are the same
/// shape) plus reused per-event scratch.
struct Partial {
  ReductionResult r;
  std::vector<u32> frames;  // frame function ids, leaf included
};

/// Per-event attribution outcome tallies (paper §2.3 candidate validation).
/// Plain integers bumped inside the fold loop — sub-nanosecond next to the
/// fold itself — and flushed to obs counters once per shard / per fold()
/// call, keeping the per-event hot path free of atomics.
struct AttrOutcomes {
  u64 clock = 0;          // clock-profile samples (no data attribution)
  u64 validated = 0;      // candidate PC survived branch-target validation
  u64 branch_target = 0;  // a branch target intervened: artificial PC row
  u64 no_candidate = 0;   // no backtracking or no memory op in the window
  u64 unverifiable = 0;   // no branch-target info in the symbol tables

  void flush(u64 events_folded) const {
    static const obs::Counter c_folded = obs::counter("reduce.events.folded");
    static const obs::Counter c_clock = obs::counter("reduce.attr.clock");
    static const obs::Counter c_validated = obs::counter("reduce.attr.validated");
    static const obs::Counter c_branch = obs::counter("reduce.attr.branch_target");
    static const obs::Counter c_nocand = obs::counter("reduce.attr.no_candidate");
    static const obs::Counter c_unver = obs::counter("reduce.attr.unverifiable");
    c_folded.add(events_folded);
    if (clock != 0) c_clock.add(clock);
    if (validated != 0) c_validated.add(validated);
    if (branch_target != 0) c_branch.add(branch_target);
    if (no_candidate != 0) c_nocand.add(no_candidate);
    if (unverifiable != 0) c_unver.add(unverifiable);
  }
};

/// Immutable fold context: which events, which symbols, which PICs were
/// collected with apropos backtracking. Built per experiment by the offline
/// engines and per session by the IncrementalReducer.
struct FoldContext {
  const EventStore* events = nullptr;
  const sym::SymbolTable* symtab = nullptr;
  std::array<bool, machine::kNumPics> backtrack_by_pic{};
};

FoldContext context_of(const Experiment& ex) {
  FoldContext c;
  c.events = &ex.events;
  c.symtab = &ex.image.symtab;
  for (const auto& spec : ex.counters) {
    if (spec.pic < machine::kNumPics) c.backtrack_by_pic[spec.pic] = spec.backtrack;
  }
  return c;
}

u32 func_id_for(const sym::SymbolTable& st, u64 pc, u32 unknown_id) {
  const sym::FuncInfo* f = st.find_function(pc);
  if (!f) return unknown_id;
  return static_cast<u32>(f - st.functions().data());
}

void add_counts(FlatHashU64Map<MetricCounts>& m, u64 key, size_t metric, u64 w) {
  m[key][metric] += w;
}

/// Code-space attribution for one event: PC, function, line, inclusive
/// functions (recursion-safe) and caller->callee edges from the callstack.
void attribute_code(ReductionResult& r, std::vector<u32>& frames, const sym::SymbolTable& st,
                    u32 unknown_id, u64 pc, bool artificial, size_t metric, u64 w,
                    const experiment::CallstackRef& callstack) {
  add_counts(r.pc, pc_key(pc, artificial), metric, w);
  const u32 leaf = func_id_for(st, pc, unknown_id);
  add_counts(r.func, leaf, metric, w);
  if (auto line = st.line_for(pc)) add_counts(r.line, *line, metric, w);

  frames.clear();
  for (u64 site : callstack) frames.push_back(func_id_for(st, site, unknown_id));
  frames.push_back(leaf);

  // Each function on the stack gets the weight once (recursion-safe).
  for (size_t i = 0; i < frames.size(); ++i) {
    bool dup = false;
    for (size_t j = 0; j < i; ++j) dup |= frames[j] == frames[i];
    if (!dup) add_counts(r.incl, frames[i], metric, w);
  }
  for (size_t i = 0; i + 1 < frames.size(); ++i) {
    add_counts(r.edge, edge_key(frames[i], frames[i + 1]), metric, w);
  }
}

/// Fold one event into the aggregates — the exact attribution pipeline of
/// the paper's §2.3 (candidate validation against branch targets, the
/// <Unknown> breakdown of §3.2.5), matching the seed Analysis
/// event-for-event. Shared verbatim by the offline sharded engine and the
/// online IncrementalReducer, which is what makes the streamed and offline
/// views bit-identical by construction.
void fold_event(ReductionResult& r, std::vector<u32>& frames, const FoldContext& ctx,
                u32 unknown_id, size_t i, AttrOutcomes& oc) {
  const EventStore& ev = *ctx.events;
  const sym::SymbolTable& st = *ctx.symtab;

  const u8 pic = ev.pic_col()[i];
  const u64 w = ev.weight_col()[i];
  const u64 delivered_pc = ev.delivered_pc_col()[i];
  const experiment::CallstackRef stack = ev.callstack(i);

  if (pic == machine::kClockPic) {
    // Clock-profile sample: code-space only; skid cannot be corrected
    // (paper §3.2.3 — User CPU shows against unlikely instructions).
    oc.clock += 1;
    r.present[kUserCpuMetric] = true;
    r.total[kUserCpuMetric] += w;
    attribute_code(r, frames, st, unknown_id, delivered_pc, false, kUserCpuMetric, w, stack);
    return;
  }

  const auto metric = static_cast<size_t>(ev.event_col()[i]);
  r.present[metric] = true;
  r.total[metric] += w;

  const u8 flags = ev.flags_col()[i];
  const bool has_candidate = (flags & EventStore::kHasCandidate) != 0;
  const bool has_ea = (flags & EventStore::kHasEa) != 0;
  const u64 candidate_pc = ev.candidate_pc_col()[i];
  const bool backtracked = pic < machine::kNumPics && ctx.backtrack_by_pic[pic];

  auto data_bucket = [&](u8 cat, u32 sid) {
    add_counts(r.data, data_key(cat, sid), metric, w);
    r.data_total[metric] += w;
  };

  if (!backtracked || !has_candidate) {
    // No candidate trigger: attribute code space to the delivered PC; the
    // data object cannot be determined.
    oc.no_candidate += 1;
    attribute_code(r, frames, st, unknown_id, delivered_pc, false, metric, w, stack);
    data_bucket(kCatUnresolvable, sym::kInvalidType);
    return;
  }

  if (!st.has_branch_targets()) {
    // Cannot validate the candidate (no branch-target info, e.g. STABS).
    oc.unverifiable += 1;
    attribute_code(r, frames, st, unknown_id, candidate_pc, false, metric, w, stack);
    data_bucket(kCatUnverifiable, sym::kInvalidType);
    return;
  }

  if (auto target = st.branch_target_in(candidate_pc, delivered_pc)) {
    // A branch target between the candidate and the delivered PC: the path
    // to the interrupt is unknown. Attribute to an artificial branch-target
    // PC (paper §2.3, the `*<branch target>` rows of Figure 4).
    oc.branch_target += 1;
    attribute_code(r, frames, st, unknown_id, *target, true, metric, w, stack);
    data_bucket(kCatUnresolvable, sym::kInvalidType);
    return;
  }

  // Validated trigger PC.
  oc.validated += 1;
  attribute_code(r, frames, st, unknown_id, candidate_pc, false, metric, w, stack);

  if (!st.hwcprof()) {
    data_bucket(kCatUnascertainable, sym::kInvalidType);
    return;
  }
  const sym::MemRef* ref = st.memref_for(candidate_pc);
  if (!ref) {
    data_bucket(kCatUnspecified, sym::kInvalidType);
    return;
  }
  switch (ref->kind) {
    case sym::MemRef::Kind::Unidentified:
      data_bucket(kCatUnidentified, sym::kInvalidType);
      break;
    case sym::MemRef::Kind::Scalar:
      data_bucket(kCatScalars, sym::kInvalidType);
      break;
    case sym::MemRef::Kind::StructMember:
      data_bucket(kCatStruct, ref->aggregate);
      add_counts(r.member, member_key(ref->aggregate, ref->member), metric, w);
      break;
  }
  if (has_ea) {
    r.ea_samples.push_back({ev.ea_col()[i], metric, static_cast<double>(w)});
  }
}

void merge_map(FlatHashU64Map<MetricCounts>& into, const FlatHashU64Map<MetricCounts>& from) {
  for (const auto& e : from.entries()) {
    MetricCounts& c = into[e.key];
    for (size_t m = 0; m < kNumMetrics; ++m) c[m] += e.value[m];
  }
}

void merge_partial(ReductionResult& r, Partial&& p) {
  for (size_t m = 0; m < kNumMetrics; ++m) {
    r.present[m] = r.present[m] || p.r.present[m];
    r.total[m] += p.r.total[m];
    r.data_total[m] += p.r.data_total[m];
  }
  merge_map(r.pc, p.r.pc);
  merge_map(r.func, p.r.func);
  merge_map(r.incl, p.r.incl);
  merge_map(r.edge, p.r.edge);
  merge_map(r.line, p.r.line);
  merge_map(r.data, p.r.data);
  merge_map(r.member, p.r.member);
  r.ea_samples.insert(r.ea_samples.end(), p.r.ea_samples.begin(), p.r.ea_samples.end());
}

ReductionResult reduce_sharded(const std::vector<FoldContext>& ctxs, u32 unknown_id,
                               unsigned threads) {
  // Global event index space: experiments concatenated in order.
  std::vector<size_t> prefix{0};
  for (const auto& c : ctxs) prefix.push_back(prefix.back() + c.events->size());
  const size_t n = prefix.back();

  const size_t min_shard = 4096;  // don't spin threads for tiny stores
  size_t nshards = threads;
  if (nshards > 1 && n / nshards < min_shard) nshards = std::max<size_t>(1, n / min_shard);

  static const obs::SpanName kShardSpan = obs::span_name("reduce.shard");
  static const obs::Histogram kShardNs = obs::histogram("reduce.shard.fold_ns");

  std::vector<Partial> partials(nshards);
  auto work = [&](size_t s) {
    Partial& p = partials[s];
    const size_t lo = n * s / nshards;
    const size_t hi = n * (s + 1) / nshards;
    if (lo >= hi) return;  // empty shard (e.g. every experiment is empty)
    const obs::ScopedSpan span(kShardSpan);
    const obs::ScopedTimer timer(kShardNs);
    AttrOutcomes oc;
    // Locate the experiment containing `lo`.
    size_t e = 0;
    while (prefix[e + 1] <= lo) ++e;
    for (size_t g = lo; g < hi; ++g) {
      while (prefix[e + 1] <= g) ++e;
      fold_event(p.r, p.frames, ctxs[e], unknown_id, g - prefix[e], oc);
    }
    oc.flush(hi - lo);
  };

  if (nshards <= 1) {
    work(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(nshards);
    for (size_t s = 0; s < nshards; ++s) pool.emplace_back(work, s);
    for (auto& t : pool) t.join();
  }

  static const obs::Histogram kMergeNs = obs::histogram("reduce.merge_ns");
  const obs::ScopedTimer merge_timer(kMergeNs);
  ReductionResult r;
  r.events_reduced = n;
  for (auto& p : partials) merge_partial(r, std::move(p));
  return r;
}

// ---------------------------------------------------------------------------
// Baseline engine: the seed's std::map/string fold, kept as the reference
// implementation for equivalence tests and as the "seed-equivalent" mode of
// bench/pipeline_throughput. Deliberately mirrors the seed's data structures
// (string-keyed ordered maps, a per-event vector<string> of frame names) so
// that its cost profile is honest.

struct BaselineState {
  std::array<bool, kNumMetrics> present{};
  MetricVector total{};
  MetricVector data_total{};
  std::map<std::pair<u64, bool>, MetricVector> pc_map;
  std::map<std::string, MetricVector> func_map;
  std::map<std::string, MetricVector> incl_map;
  std::map<std::pair<std::string, std::string>, MetricVector> edge_map;
  std::map<u32, MetricVector> line_map;
  std::map<std::pair<u8, u32>, MetricVector> data_map;
  std::map<std::pair<u32, u32>, MetricVector> member_map;
  std::vector<EaSample> ea_samples;
};

void baseline_attribute_code(BaselineState& st, const sym::SymbolTable& symtab, u64 pc,
                             bool artificial, size_t metric, double w,
                             const experiment::CallstackRef& callstack) {
  add_to(st.pc_map[{pc, artificial}], metric, w);
  const sym::FuncInfo* f = symtab.find_function(pc);
  const std::string leaf = f ? f->name : "<unknown code>";
  add_to(st.func_map[leaf], metric, w);
  if (auto line = symtab.line_for(pc)) add_to(st.line_map[*line], metric, w);

  std::vector<std::string> frames;
  frames.reserve(callstack.size() + 1);
  for (u64 site : callstack) {
    const sym::FuncInfo* cf = symtab.find_function(site);
    frames.push_back(cf ? cf->name : "<unknown code>");
  }
  frames.push_back(leaf);
  std::vector<const std::string*> seen;
  for (const auto& name : frames) {
    bool dup = false;
    for (const auto* s : seen) dup |= *s == name;
    if (!dup) {
      add_to(st.incl_map[name], metric, w);
      seen.push_back(&name);
    }
  }
  for (size_t i = 0; i + 1 < frames.size(); ++i) {
    add_to(st.edge_map[{frames[i], frames[i + 1]}], metric, w);
  }
}

void baseline_fold_event(BaselineState& bs, const FoldContext& ctx, size_t i) {
  const EventStore& ev = *ctx.events;
  const sym::SymbolTable& st = *ctx.symtab;
  const experiment::EventView e = ev[i];
  const double w = static_cast<double>(e.weight);

  if (e.pic == machine::kClockPic) {
    bs.present[kUserCpuMetric] = true;
    add_to(bs.total, kUserCpuMetric, w);
    baseline_attribute_code(bs, st, e.delivered_pc, false, kUserCpuMetric, w, e.callstack);
    return;
  }

  const auto metric = static_cast<size_t>(e.event);
  bs.present[metric] = true;
  add_to(bs.total, metric, w);

  const bool backtracked = e.pic < machine::kNumPics && ctx.backtrack_by_pic[e.pic];
  auto data_bucket = [&](u8 cat, u32 sid) {
    add_to(bs.data_map[{cat, sid}], metric, w);
    add_to(bs.data_total, metric, w);
  };

  if (!backtracked || !e.has_candidate) {
    baseline_attribute_code(bs, st, e.delivered_pc, false, metric, w, e.callstack);
    data_bucket(kCatUnresolvable, sym::kInvalidType);
    return;
  }
  if (!st.has_branch_targets()) {
    baseline_attribute_code(bs, st, e.candidate_pc, false, metric, w, e.callstack);
    data_bucket(kCatUnverifiable, sym::kInvalidType);
    return;
  }
  if (auto target = st.branch_target_in(e.candidate_pc, e.delivered_pc)) {
    baseline_attribute_code(bs, st, *target, true, metric, w, e.callstack);
    data_bucket(kCatUnresolvable, sym::kInvalidType);
    return;
  }
  baseline_attribute_code(bs, st, e.candidate_pc, false, metric, w, e.callstack);
  if (!st.hwcprof()) {
    data_bucket(kCatUnascertainable, sym::kInvalidType);
    return;
  }
  const sym::MemRef* ref = st.memref_for(e.candidate_pc);
  if (!ref) {
    data_bucket(kCatUnspecified, sym::kInvalidType);
    return;
  }
  switch (ref->kind) {
    case sym::MemRef::Kind::Unidentified:
      data_bucket(kCatUnidentified, sym::kInvalidType);
      break;
    case sym::MemRef::Kind::Scalar:
      data_bucket(kCatScalars, sym::kInvalidType);
      break;
    case sym::MemRef::Kind::StructMember:
      data_bucket(kCatStruct, ref->aggregate);
      add_to(bs.member_map[{ref->aggregate, ref->member}], metric, w);
      break;
  }
  if (e.has_ea) bs.ea_samples.push_back({e.ea, metric, w});
}

MetricCounts counts_of(const MetricVector& v) {
  MetricCounts c{};
  for (size_t m = 0; m < kNumMetrics; ++m) c[m] = static_cast<u64>(v[m]);
  return c;
}

ReductionResult reduce_baseline(const std::vector<FoldContext>& ctxs, u32 unknown_id) {
  BaselineState bs;
  size_t n = 0;
  for (const auto& ctx : ctxs) {
    n += ctx.events->size();
    for (size_t i = 0; i < ctx.events->size(); ++i) baseline_fold_event(bs, ctx, i);
  }

  // Convert the string-keyed maps into the packed-key result form.
  const sym::SymbolTable& st = *ctxs[0].symtab;
  auto id_of = [&](const std::string& name) -> u32 {
    for (size_t f = 0; f < st.functions().size(); ++f) {
      if (st.functions()[f].name == name) return static_cast<u32>(f);
    }
    return unknown_id;
  };

  ReductionResult r;
  r.events_reduced = n;
  r.present = bs.present;
  r.total = counts_of(bs.total);
  r.data_total = counts_of(bs.data_total);
  for (const auto& [k, v] : bs.pc_map) r.pc[pc_key(k.first, k.second)] = counts_of(v);
  for (const auto& [k, v] : bs.func_map) r.func[id_of(k)] = counts_of(v);
  for (const auto& [k, v] : bs.incl_map) r.incl[id_of(k)] = counts_of(v);
  for (const auto& [k, v] : bs.edge_map) {
    r.edge[edge_key(id_of(k.first), id_of(k.second))] = counts_of(v);
  }
  for (const auto& [k, v] : bs.line_map) r.line[k] = counts_of(v);
  for (const auto& [k, v] : bs.data_map) r.data[data_key(k.first, k.second)] = counts_of(v);
  for (const auto& [k, v] : bs.member_map) {
    r.member[member_key(k.first, k.second)] = counts_of(v);
  }
  r.ea_samples = std::move(bs.ea_samples);
  return r;
}

}  // namespace

unsigned Reduction::resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("DSPROF_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    DSP_CHECK(end != env && *end == '\0' && v >= 1 && v <= 1024,
              std::string("bad DSPROF_THREADS value: '") + env +
                  "' (expected an integer in [1, 1024])");
    return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ReductionResult Reduction::run(const std::vector<const Experiment*>& exps, unsigned threads,
                               Engine engine) {
  DSP_CHECK(!exps.empty(), "no experiments to analyze");
  std::vector<FoldContext> ctxs;
  ctxs.reserve(exps.size());
  for (const auto* ex : exps) ctxs.push_back(context_of(*ex));
  const sym::SymbolTable& st = exps[0]->image.symtab;
  const u32 unknown_id = static_cast<u32>(st.functions().size());

  ReductionResult r = engine == Engine::Baseline
                          ? reduce_baseline(ctxs, unknown_id)
                          : reduce_sharded(ctxs, unknown_id, resolve_threads(threads));

  r.func_names.reserve(st.functions().size() + 1);
  for (const auto& f : st.functions()) r.func_names.push_back(f.name);
  r.func_names.push_back("<unknown code>");
  return r;
}

// ---------------------------------------------------------------------------
// IncrementalReducer — the dsprofd online path.

IncrementalReducer::IncrementalReducer(const sym::SymbolTable& symtab,
                                       const std::vector<experiment::CounterSpec>& counters)
    : symtab_(&symtab) {
  for (const auto& spec : counters) {
    if (spec.pic < machine::kNumPics) backtrack_by_pic_[spec.pic] = spec.backtrack;
  }
  unknown_id_ = static_cast<u32>(symtab.functions().size());
  // func_names exactly as Reduction::run fills them, so a snapshot
  // ReductionResult is indistinguishable from an offline one.
  r_.func_names.reserve(symtab.functions().size() + 1);
  for (const auto& f : symtab.functions()) r_.func_names.push_back(f.name);
  r_.func_names.push_back("<unknown code>");
}

void IncrementalReducer::fold(const experiment::EventStore& events, size_t begin,
                              size_t end) {
  DSP_CHECK(begin <= end && end <= events.size(), "fold range outside event store");
  FoldContext ctx;
  ctx.events = &events;
  ctx.symtab = symtab_;
  ctx.backtrack_by_pic = backtrack_by_pic_;
  static const obs::Histogram kFoldNs = obs::histogram("reduce.incremental.fold_ns");
  const obs::ScopedTimer timer(kFoldNs);
  AttrOutcomes oc;
  for (size_t i = begin; i < end; ++i) fold_event(r_, frames_, ctx, unknown_id_, i, oc);
  oc.flush(end - begin);
  r_.events_reduced += end - begin;
}

}  // namespace dsprof::analyze
