// Sharded parallel metric reduction over columnar event stores.
//
// The seed's Analysis constructor folded every event into half a dozen
// std::maps (string keys, per-event frame-name vectors) — a serial,
// allocation-heavy pass over 10^5-10^6 events. The Reduction engine replaces
// it with a single-pass, shardable fold:
//
//   * events are partitioned into contiguous shards;
//   * each shard reduces into thread-local partial aggregates built on flat
//     hash maps keyed by small integer composites (function ids instead of
//     strings, packed (pc,artificial) / (caller,callee) / (cat,sid) keys);
//   * partials accumulate integer weights (u64) — integer addition is
//     associative and commutative, so the merged result is bit-identical
//     for ANY thread count (the seed summed the same integral weights in
//     doubles, exactly representable below 2^53, so results also match the
//     seed bit-for-bit);
//   * partials merge pairwise into one ReductionResult; per-event EA samples
//     concatenate in shard order, preserving the serial event order.
//
// Thread count comes from the DSPROF_THREADS environment knob (default:
// hardware concurrency; 1 = deterministic serial — which, by the argument
// above, produces the same bits anyway).
//
// Three engines share the shard scaffolding and produce bit-identical
// results (equivalence- and property-tested in tests/event_store_test.cpp):
//
//   Engine::Radix     the default. Per-event hash-map probes are replaced by
//                     radix partitioning over the SoA columns: each batch of
//                     events is first partitioned into dense decision ids
//                     (unique (candidate_pc, delivered_pc, pic/event/flags)
//                     tuples — symbol lookups and candidate validation run
//                     once per unique tuple, not per event) and dense path
//                     ids (unique (callstack, leaf) pairs), then a tight
//                     accumulation loop adds weights into per-shard dense
//                     arrays indexed by those ids. The id arrays expand into
//                     the hash-keyed ReductionResult once per fold call.
//   Engine::Sharded   the previous flat-hash fold (one probe per aggregate
//                     per event), kept as the reference hash engine.
//   Engine::Baseline  the seed's serial std::map/string fold verbatim — the
//                     equivalence reference and benchmark baseline.
//
// Engine::Auto resolves DSPROF_REDUCE_ENGINE (radix | sharded | baseline),
// defaulting to Radix.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analyze/metrics.hpp"
#include "experiment/experiment.hpp"
#include "support/flat_hash.hpp"

namespace dsprof::analyze {

/// Integer metric accumulator — exact, order-independent summation.
using MetricCounts = std::array<u64, kNumMetrics>;

inline MetricVector to_metric_vector(const MetricCounts& c) {
  MetricVector v{};
  for (size_t i = 0; i < kNumMetrics; ++i) v[i] = static_cast<double>(c[i]);
  return v;
}

/// One effective-address sample (validated trigger with a recomputed EA),
/// kept in event order for the address-space views.
struct EaSample {
  u64 ea;
  size_t metric;
  double w;
};

/// The merged aggregates the views render from. Keys are packed composites:
///   pc:     (pc << 1) | artificial
///   func:   function id (index into func_names)
///   incl:   function id
///   edge:   (caller id << 32) | callee id
///   line:   source line
///   data:   (cat << 32) | struct TypeId
///   member: (TypeId << 32) | member index
struct ReductionResult {
  std::array<bool, kNumMetrics> present{};
  MetricCounts total{};
  MetricCounts data_total{};

  FlatHashU64Map<MetricCounts> pc;
  FlatHashU64Map<MetricCounts> func;
  FlatHashU64Map<MetricCounts> incl;
  FlatHashU64Map<MetricCounts> edge;
  FlatHashU64Map<MetricCounts> line;
  FlatHashU64Map<MetricCounts> data;
  FlatHashU64Map<MetricCounts> member;

  std::vector<EaSample> ea_samples;

  /// Function id -> display name. Ids 0..N-1 are the symbol table's
  /// functions in table order; id N is "<unknown code>".
  std::vector<std::string> func_names;

  size_t events_reduced = 0;

  /// Per-metric event (sample) counts over the reduced events — clock
  /// samples under kUserCpuMetric, hardware samples under their event id.
  /// This is the n behind the sampling-error estimate (Analysis::
  /// metric_stderr); carrying it in the result lets the dsprofd snapshot
  /// path — where the rendering Experiment holds no events — report the
  /// same standard errors an offline analysis over the events would.
  MetricCounts sample_counts{};
};

/// Merge completed reductions into one, as if their event sequences had
/// been concatenated in part order and reduced offline. Exact: every
/// aggregate is an integer (u64) sum, so the merge is associative and
/// commutative per key, and EA samples concatenate in part order just like
/// the offline shard merge. This is the fleet MergedView primitive — the
/// cross-session extension of the online-vs-offline bit-identity invariant
/// (merging N sessions' live aggregates == one offline multi-dir
/// reduction). All parts must come from the same binary (func_names must
/// agree); throws dsprof::Error otherwise.
ReductionResult merge_results(const std::vector<const ReductionResult*>& parts);

class Reduction {
 public:
  enum class Engine {
    Auto,      // DSPROF_REDUCE_ENGINE if set, else Radix
    Radix,     // radix-partitioned dense fold (default production engine)
    Sharded,   // flat-hash partial aggregates (reference hash engine)
    Baseline,  // the seed's serial std::map fold (reference/benchmark)
  };

  /// Knobs for one reduction run. `threads` as in resolve_threads (the
  /// Baseline engine is always serial).
  struct ReduceOptions {
    unsigned threads = 0;
    Engine engine = Engine::Auto;
  };

  /// Resolve the thread count: `requested` if nonzero, else $DSPROF_THREADS,
  /// else std::thread::hardware_concurrency() (min 1).
  static unsigned resolve_threads(unsigned requested = 0);

  /// Resolve Engine::Auto against $DSPROF_REDUCE_ENGINE (radix | sharded |
  /// baseline; anything else is an Error), defaulting to Radix. Non-Auto
  /// engines pass through.
  static Engine resolve_engine(Engine requested = Engine::Auto);

  /// Reduce all events of `exps` (which must share one binary).
  static ReductionResult run(const std::vector<const experiment::Experiment*>& exps,
                             const ReduceOptions& options);
  static ReductionResult run(const std::vector<const experiment::Experiment*>& exps,
                             unsigned threads = 0, Engine engine = Engine::Auto) {
    return run(exps, ReduceOptions{threads, engine});
  }
};

/// The radix fold state shared by the offline Engine::Radix shards and the
/// online IncrementalReducer (defined in reduction.cpp). Caches decisions
/// (per unique event tuple) and paths (per unique callstack+leaf) so the
/// per-event work is a few probes plus dense array adds.
class RadixFolder;

/// Online incremental reduction: the dsprofd streaming path (src/serve/).
///
/// Batches of events are folded into a live ReductionResult as they arrive,
/// using the exact per-event attribution pipeline of Reduction::run. Because
/// every aggregate accumulates integer weights (u64) — associative and
/// commutative — the result after folding batches [0,a), [a,b), ... [y,n)
/// is bit-identical to one offline reduction over [0,n) for any batching,
/// and per-event EA samples concatenate in event order exactly as the
/// offline shard merge does. That is the serve subsystem's
/// online-vs-offline invariant (DESIGN.md §3.3); tests/serve_test.cpp and
/// the streamed-session integration test enforce it end to end.
///
/// Not thread-safe: one reducer per session, fold() called from a single
/// ingest thread. snapshot() returns a deep copy that Analysis can render
/// views from while folding continues.
class IncrementalReducer {
 public:
  /// `symtab` must outlive the reducer. `counters` supplies the per-event
  /// backtracking flags exactly as an Experiment's counter specs would.
  IncrementalReducer(const sym::SymbolTable& symtab,
                     const std::vector<experiment::CounterSpec>& counters);
  ~IncrementalReducer();
  IncrementalReducer(IncrementalReducer&&) noexcept;
  IncrementalReducer& operator=(IncrementalReducer&&) noexcept;

  /// Fold events [begin, end) of `events` into the live aggregates (via the
  /// radix folder — bit-identical to every offline engine by construction).
  /// The store must stay alive (and un-moved) only for the duration of the
  /// call; each call re-derives callstack identities, so stores may come
  /// and go between calls (the dsprofd batch decode path).
  void fold(const experiment::EventStore& events, size_t begin, size_t end);

  /// The live aggregates (valid until the next fold()).
  const ReductionResult& result() const { return r_; }

  /// Deep copy of the live aggregates for snapshot rendering.
  ReductionResult snapshot() const { return r_; }

  size_t events_folded() const { return r_.events_reduced; }

 private:
  const sym::SymbolTable* symtab_;
  std::array<bool, machine::kNumHwEvents> backtrack_by_event_{};
  u32 unknown_id_ = 0;
  ReductionResult r_;
  std::unique_ptr<RadixFolder> folder_;  // persistent decision/path caches
};

}  // namespace dsprof::analyze
