#include "analyze/reports.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/table.hpp"

namespace dsprof::analyze {

namespace {

using machine::HwEvent;

/// Canonical column order for listings (matches the paper's figures).
const size_t kColumnOrder[] = {
    kUserCpuMetric,
    static_cast<size_t>(HwEvent::EC_stall_cycles),
    static_cast<size_t>(HwEvent::EC_rd_miss),
    static_cast<size_t>(HwEvent::EC_ref),
    static_cast<size_t>(HwEvent::DTLB_miss),
    static_cast<size_t>(HwEvent::DC_rd_miss),
    static_cast<size_t>(HwEvent::DC_wr_miss),
    static_cast<size_t>(HwEvent::IC_miss),
    static_cast<size_t>(HwEvent::Instr_cnt),
    static_cast<size_t>(HwEvent::Cycle_cnt),
};

std::vector<size_t> present_columns(const Analysis& a) {
  std::vector<size_t> cols;
  for (size_t m : kColumnOrder) {
    if (a.present()[m]) cols.push_back(m);
  }
  return cols;
}

/// Two-line header like "Excl. E$\nStall Cycles sec. %".
std::string col_header(const Analysis&, size_t metric, bool with_seconds, bool with_pct) {
  std::string h = metric_name(metric);
  std::string units;
  if (metric_in_cycles(metric) && with_seconds) units = with_pct ? "sec.      %" : "sec.";
  else if (with_pct) units = "%";
  return h + (units.empty() ? "" : "\n" + units);
}

/// Format one metric cell: "sec. %" for cycle metrics, "%" for counts.
std::string metric_cell(const Analysis& a, const MetricVector& mv, const MetricVector& total,
                        size_t m, bool with_seconds, bool with_pct) {
  std::string s;
  if (metric_in_cycles(m) && with_seconds) {
    s += fmt_fixed(a.seconds(mv[m]), 3);
  }
  if (with_pct) {
    const double pct = total[m] > 0 ? mv[m] / total[m] : 0.0;
    if (!s.empty()) s += "  ";
    s += fmt_percent(pct);
  }
  if (s.empty()) s = fmt_count(static_cast<u64>(mv[m]));
  return s;
}

bool any_metric(const MetricVector& mv) {
  for (double v : mv) {
    if (v != 0) return true;
  }
  return false;
}

/// Renormalization note for a multiplexed run: one line per scaled metric,
/// "(Scaled ×1.97, ±1,234,567 se)". Empty (so every report is byte-identical
/// to the pre-multiplexing output) when nothing was scaled.
std::string mpx_note(const Analysis& a) {
  if (!a.multiplexed()) return "";
  std::ostringstream os;
  os << "Counter multiplexing: metrics renormalized by per-set live time:\n";
  for (size_t m : present_columns(a)) {
    if (a.metric_scale(m) == 1.0) continue;
    os << "  " << metric_name(m) << "  (Scaled x" << fmt_fixed(a.metric_scale(m), 2)
       << ", +/-" << fmt_count(static_cast<u64>(a.metric_stderr(m))) << " se)\n";
  }
  return os.str();
}

}  // namespace

std::string render_overview(const Analysis& a) {
  std::ostringstream os;
  const MetricVector& t = a.total();
  const double lwp = static_cast<double>(a.run_cycles()) / static_cast<double>(a.clock_hz());
  auto line = [&](const std::string& name, const std::string& value) {
    os << "  " << name;
    for (size_t i = name.size(); i < 36; ++i) os << ' ';
    os << value << "\n";
  };
  os << "Performance metrics for <Total>:\n";
  line("Exclusive Total LWP Time:", fmt_fixed(lwp, 3) + " secs.");
  if (a.present()[kUserCpuMetric]) {
    line("Exclusive User CPU Time:", fmt_fixed(a.seconds(t[kUserCpuMetric]), 3) + " secs.");
    line("Exclusive System CPU Time:", "0.000 secs.");
    line("Exclusive Wait CPU Time:", "0.000 secs.");
  }
  const auto es = static_cast<size_t>(HwEvent::EC_stall_cycles);
  if (a.present()[es]) {
    line("Exclusive E$ Stall Cycles:", fmt_fixed(a.seconds(t[es]), 3) + " secs.");
    line("    count", fmt_count(static_cast<u64>(t[es])));
  }
  const auto ecrm = static_cast<size_t>(HwEvent::EC_rd_miss);
  if (a.present()[ecrm]) line("Exclusive E$ Read Misses:", fmt_count(static_cast<u64>(t[ecrm])));
  const auto ecref = static_cast<size_t>(HwEvent::EC_ref);
  if (a.present()[ecref]) line("Exclusive E$ Refs:", fmt_count(static_cast<u64>(t[ecref])));
  const auto dtlb = static_cast<size_t>(HwEvent::DTLB_miss);
  if (a.present()[dtlb]) line("Exclusive DTLB Misses:", fmt_count(static_cast<u64>(t[dtlb])));

  // Derived observations the paper draws from Figure 1 (§3.2.1).
  if (a.present()[ecrm] && a.present()[ecref] && t[ecref] > 0) {
    line("E$ Read Miss rate:", fmt_percent(t[ecrm] / t[ecref]) + " %");
  }
  if (a.present()[es] && a.run_cycles() > 0) {
    line("E$ Stall fraction of run:", fmt_percent(t[es] / static_cast<double>(a.run_cycles())) + " %");
  }
  if (a.present()[dtlb] && a.run_cycles() > 0) {
    const double est_cycles = t[dtlb] * 100.0;  // 100-cycle DTLB miss estimate
    line("DTLB miss cost (est. 100 cyc):",
         fmt_fixed(a.seconds(est_cycles), 3) + " secs. (" +
             fmt_percent(est_cycles / static_cast<double>(a.run_cycles())) + " % of run)");
  }
  os << mpx_note(a);
  return os.str();
}

std::string render_function_list(const Analysis& a) {
  const auto cols = present_columns(a);
  std::vector<std::string> headers;
  std::vector<Align> aligns;
  for (size_t m : cols) {
    headers.push_back("Excl. " + col_header(a, m, true, true));
    aligns.push_back(Align::Right);
  }
  headers.push_back("Name");
  aligns.push_back(Align::Left);
  TextTable table(headers, aligns);

  const size_t sort = cols.empty() ? kUserCpuMetric : cols[0];
  auto add = [&](const std::string& name, const MetricVector& mv) {
    std::vector<std::string> cells;
    for (size_t m : cols) cells.push_back(metric_cell(a, mv, a.total(), m, true, true));
    cells.push_back(name);
    table.add_row(std::move(cells));
  };
  add("<Total>", a.total());
  for (const auto& f : a.functions(sort)) {
    if (any_metric(f.mv)) add(f.name, f.mv);
  }
  return table.render() + mpx_note(a);
}

std::string render_callers_callees(const Analysis& a, const std::string& function) {
  const auto cols = present_columns(a);
  std::vector<std::string> headers;
  std::vector<Align> aligns;
  for (size_t m : cols) {
    headers.push_back("Attr. " + col_header(a, m, true, true));
    aligns.push_back(Align::Right);
  }
  headers.push_back("Name");
  aligns.push_back(Align::Left);
  TextTable table(headers, aligns);

  auto add = [&](const std::string& name, const MetricVector& mv) {
    std::vector<std::string> cells;
    for (size_t m : cols) cells.push_back(metric_cell(a, mv, a.total(), m, true, true));
    cells.push_back(name);
    table.add_row(std::move(cells));
  };
  for (const auto& r : a.callers_of(function)) add("  " + r.name + " (caller)", r.attributed);
  MetricVector own{};
  for (const auto& f : a.functions_inclusive(0)) {
    if (f.name == function) own = f.mv;
  }
  add("*" + function + " (inclusive)", own);
  for (const auto& r : a.callees_of(function)) add("  " + r.name + " (callee)", r.attributed);
  return "Callers-callees of " + function + ":\n" + table.render();
}

std::string render_annotated_source(const Analysis& a, const std::string& function) {
  const auto cols = present_columns(a);
  std::ostringstream os;
  os << "Annotated source, function " << function << ":\n";
  os << "   ";
  for (size_t m : cols) os << "[" << metric_name(m) << (metric_in_cycles(m) ? " sec." : "") << "] ";
  os << "\n";
  const auto rows = a.annotated_source(function);
  for (const auto& r : rows) {
    // "##" marks lines above 3% of any displayed metric (hot lines).
    bool hot = false;
    for (size_t m : cols) {
      if (a.total()[m] > 0 && r.mv[m] / a.total()[m] > 0.03) hot = true;
    }
    os << (hot ? "## " : "   ");
    for (size_t m : cols) {
      const std::string cell = metric_in_cycles(m)
                                   ? fmt_fixed(a.seconds(r.mv[m]), 3)
                                   : fmt_count(static_cast<u64>(r.mv[m]));
      os << cell;
      for (size_t i = cell.size(); i < 12; ++i) os << ' ';
    }
    os << r.line << ". " << r.text << "\n";
  }
  return os.str();
}

std::string render_annotated_disassembly(const Analysis& a, const std::string& function) {
  const auto cols = present_columns(a);
  std::ostringstream os;
  os << "Annotated disassembly, function " << function << ":\n";
  os << "   ";
  for (size_t m : cols) os << "[" << metric_name(m) << (metric_in_cycles(m) ? " sec." : "") << "] ";
  os << "\n";
  for (const auto& r : a.annotated_disassembly(function)) {
    bool hot = false;
    for (size_t m : cols) {
      if (a.total()[m] > 0 && r.mv[m] / a.total()[m] > 0.03) hot = true;
    }
    os << (hot ? "## " : "   ");
    for (size_t m : cols) {
      const std::string cell = metric_in_cycles(m)
                                   ? fmt_fixed(a.seconds(r.mv[m]), 3)
                                   : fmt_count(static_cast<u64>(r.mv[m]));
      os << cell;
      for (size_t i = cell.size(); i < 12; ++i) os << ' ';
    }
    char pcbuf[32];
    std::snprintf(pcbuf, sizeof pcbuf, "%llx", static_cast<unsigned long long>(r.pc));
    os << "[" << r.line << "] " << pcbuf;
    if (r.artificial) {
      os << "*: " << r.text << "   <--- <<<\n";
      continue;
    }
    os << ":  " << r.text;
    if (!r.data_annot.empty()) os << "   " << r.data_annot;
    os << "\n";
  }
  return os.str();
}

std::string render_hot_pcs(const Analysis& a, size_t sort_metric, size_t top_n) {
  const auto cols = present_columns(a);
  std::vector<std::string> headers;
  std::vector<Align> aligns;
  for (size_t m : cols) {
    headers.push_back("Excl. " + col_header(a, m, true, true));
    aligns.push_back(Align::Right);
  }
  headers.push_back("Name");
  aligns.push_back(Align::Left);
  TextTable table(headers, aligns);

  auto add = [&](const std::string& name, const MetricVector& mv) {
    std::vector<std::string> cells;
    for (size_t m : cols) cells.push_back(metric_cell(a, mv, a.total(), m, true, true));
    cells.push_back(name);
    table.add_row(std::move(cells));
  };
  add("<Total>", a.total());
  size_t n = 0;
  for (const auto& r : a.pcs(sort_metric)) {
    if (n++ >= top_n) break;
    std::string name = a.pc_name(r.pc);
    if (r.artificial) name += " *<branch target>";
    const std::string annot = a.symtab().memref_string(r.pc);
    if (!annot.empty() && !r.artificial) name += "  " + annot;
    add(name, r.mv);
  }
  return table.render();
}

std::string render_data_objects(const Analysis& a, size_t sort_metric) {
  const auto all_cols = present_columns(a);
  std::vector<size_t> cols;
  for (size_t m : all_cols) {
    if (m != kUserCpuMetric) cols.push_back(m);  // no data metrics for clock profiles
  }
  std::vector<std::string> headers;
  std::vector<Align> aligns;
  for (size_t m : cols) {
    headers.push_back("Data. " + col_header(a, m, true, true));
    aligns.push_back(Align::Right);
  }
  headers.push_back("Name");
  aligns.push_back(Align::Left);
  TextTable table(headers, aligns);

  auto add = [&](const std::string& name, const MetricVector& mv) {
    std::vector<std::string> cells;
    for (size_t m : cols) cells.push_back(metric_cell(a, mv, a.data_total(), m, true, true));
    cells.push_back(name);
    table.add_row(std::move(cells));
  };
  add("<Total>", a.data_total());

  const auto rows = a.data_objects(sort_metric);
  // <Unknown> aggregate row: sum of the five indeterminate categories.
  MetricVector unknown{};
  for (const auto& r : rows) {
    if (data_cat_is_unknown(r.cat)) add_all(unknown, r.mv);
  }
  bool unknown_added = !any_metric(unknown);
  for (const auto& r : rows) {
    if (!unknown_added && unknown[sort_metric] >= r.mv[sort_metric]) {
      add("<Unknown>", unknown);
      unknown_added = true;
    }
    if (data_cat_is_unknown(r.cat)) {
      add("  " + r.name, r.mv);
    } else {
      add(r.name, r.mv);
    }
  }
  if (!unknown_added) add("<Unknown>", unknown);
  return table.render();
}

std::string render_member_expansion(const Analysis& a, const std::string& struct_name) {
  const auto all_cols = present_columns(a);
  std::vector<size_t> cols;
  for (size_t m : all_cols) {
    if (m != kUserCpuMetric) cols.push_back(m);
  }
  std::vector<std::string> headers;
  std::vector<Align> aligns;
  for (size_t m : cols) {
    headers.push_back("Data. " + col_header(a, m, true, true));
    aligns.push_back(Align::Right);
  }
  headers.push_back("Name (+offset field-name)");
  aligns.push_back(Align::Left);
  TextTable table(headers, aligns);

  // Struct total row.
  MetricVector total{};
  const auto member_rows = a.members(struct_name);
  for (const auto& r : member_rows) add_all(total, r.mv);
  {
    std::vector<std::string> cells;
    for (size_t m : cols) cells.push_back(metric_cell(a, total, a.data_total(), m, true, true));
    cells.push_back("{structure:" + struct_name + " -}");
    table.add_row(std::move(cells));
  }
  for (const auto& r : member_rows) {
    std::vector<std::string> cells;
    for (size_t m : cols) cells.push_back(metric_cell(a, r.mv, a.data_total(), m, true, true));
    cells.push_back("  " + r.name);
    table.add_row(std::move(cells));
  }
  return table.render();
}

namespace {

/// Minimal JSON string escaping: quote, backslash, and control characters.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// {"ucpu":123,"ecstall":456} over the present columns. Every metric weight
/// is an integral count (reduction.hpp: integer accumulation), so rendering
/// through fmt_count is exact and stable across platforms.
std::string json_metrics(const MetricVector& mv, const std::vector<size_t>& cols) {
  std::string out = "{";
  bool first = true;
  for (size_t m : cols) {
    if (!first) out += ",";
    first = false;
    out += "\"" + metric_short_name(m) + "\":" + std::to_string(static_cast<u64>(mv[m]));
  }
  out += "}";
  return out;
}

}  // namespace

std::string render_json_report(const Analysis& a, u64 dropped_events) {
  const std::vector<size_t> cols = present_columns(a);
  const size_t sort_metric = cols.empty() ? kUserCpuMetric : cols.front();
  std::ostringstream os;
  os << "{\"schema\":\"dsprof-report-v1\"";
  os << ",\"sort_metric\":\"" << metric_short_name(sort_metric) << "\"";
  os << ",\"events\":" << a.reduce().events_reduced;
  os << ",\"dropped_events\":" << dropped_events;
  os << ",\"totals\":" << json_metrics(a.total(), cols);
  os << ",\"data_totals\":" << json_metrics(a.data_total(), cols);
  if (a.multiplexed()) {
    // Per-metric renormalization factors and standard errors. The field is
    // emitted only for multiplexed runs, keeping non-multiplexed -J output
    // byte-identical to the pre-multiplexing schema.
    os << ",\"mpx\":{";
    bool mfirst = true;
    for (size_t m : cols) {
      if (!mfirst) os << ",";
      mfirst = false;
      char scale_buf[32], se_buf[32];
      std::snprintf(scale_buf, sizeof scale_buf, "%.6g", a.metric_scale(m));
      std::snprintf(se_buf, sizeof se_buf, "%.6g", a.metric_stderr(m));
      os << "\"" << metric_short_name(m) << "\":{\"scale\":" << scale_buf
         << ",\"se\":" << se_buf << "}";
    }
    os << "}";
  }

  os << ",\"functions\":[";
  bool first = true;
  for (const auto& f : a.functions(sort_metric)) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(f.name) << "\",\"metrics\":" << json_metrics(f.mv, cols)
       << "}";
  }
  if (dropped_events != 0) {
    if (!first) os << ",";
    os << "{\"name\":\"(Dropped)\",\"events\":" << dropped_events << "}";
  }
  os << "]";

  os << ",\"pcs\":[";
  first = true;
  for (const auto& p : a.pcs(sort_metric)) {
    if (!first) os << ",";
    first = false;
    char pc_hex[32];
    std::snprintf(pc_hex, sizeof(pc_hex), "0x%llx", static_cast<unsigned long long>(p.pc));
    os << "{\"pc\":\"" << pc_hex << "\",\"artificial\":" << (p.artificial ? "true" : "false")
       << ",\"metrics\":" << json_metrics(p.mv, cols) << "}";
  }
  os << "]";

  // Source lines straight from the reduction aggregates, ascending by line
  // number (the per-function annotated views slice this same map).
  os << ",\"lines\":[";
  {
    std::vector<std::pair<u64, MetricVector>> lines;
    lines.reserve(a.reduce().line.size());
    for (const auto& e : a.reduce().line.entries())
      lines.emplace_back(e.key, a.scaled(e.value));
    std::sort(lines.begin(), lines.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    first = true;
    for (const auto& [line, mv] : lines) {
      if (!first) os << ",";
      first = false;
      os << "{\"line\":" << line << ",\"metrics\":" << json_metrics(mv, cols) << "}";
    }
  }
  os << "]";

  os << ",\"data_objects\":[";
  first = true;
  for (const auto& d : a.data_objects(sort_metric)) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(d.name) << "\",\"metrics\":" << json_metrics(d.mv, cols)
       << "}";
  }
  os << "]}";
  return os.str();
}

std::string render_effectiveness(const Analysis& a) {
  TextTable table({"Metric", "Data total", "Unresolved", "Effectiveness %"},
                  {Align::Left, Align::Right, Align::Right, Align::Right});
  for (const auto& r : a.effectiveness()) {
    table.add_row({metric_name(r.metric), fmt_count(static_cast<u64>(r.total)),
                   fmt_count(static_cast<u64>(r.unresolved)),
                   fmt_percent(r.effectiveness())});
  }
  std::ostringstream os;
  os << "Apropos backtracking effectiveness (100% - unresolvable - unascertainable):\n"
     << table.render();
  return os.str();
}

namespace {

std::string render_addr_rows(const Analysis& a, const std::vector<Analysis::AddrRow>& rows,
                             const std::string& what) {
  const auto all_cols = present_columns(a);
  std::vector<size_t> cols;
  for (size_t m : all_cols) {
    if (m != kUserCpuMetric) cols.push_back(m);
  }
  std::vector<std::string> headers;
  std::vector<Align> aligns;
  for (size_t m : cols) {
    headers.push_back("Data. " + col_header(a, m, true, true));
    aligns.push_back(Align::Right);
  }
  headers.push_back(what);
  aligns.push_back(Align::Left);
  TextTable table(headers, aligns);
  for (const auto& r : rows) {
    std::vector<std::string> cells;
    for (size_t m : cols) cells.push_back(metric_cell(a, r.mv, a.data_total(), m, true, true));
    cells.push_back(r.name);
    table.add_row(std::move(cells));
  }
  return table.render();
}

}  // namespace

std::string render_segments(const Analysis& a) {
  return "Metrics by memory segment (events with known effective address):\n" +
         render_addr_rows(a, a.segments(), "Segment");
}

std::string render_pages(const Analysis& a, size_t sort_metric, size_t top_n) {
  return "Hottest pages (" + std::to_string(a.page_size() / 1024) + " kB):\n" +
         render_addr_rows(a, a.pages(sort_metric, top_n), "Page");
}

std::string render_cache_lines(const Analysis& a, size_t sort_metric, size_t top_n) {
  return "Hottest E$ lines (" + std::to_string(a.ec_line_size()) + " B):\n" +
         render_addr_rows(a, a.cache_lines(sort_metric, top_n), "E$ line");
}

std::string render_instances(const Analysis& a, size_t sort_metric, size_t top_n) {
  const auto rows = a.instances(sort_metric, top_n);
  std::vector<Analysis::AddrRow> addr_rows;
  for (const auto& r : rows) {
    char buf[96];
    std::snprintf(buf, sizeof buf, " @0x%llx (%llu bytes)",
                  static_cast<unsigned long long>(r.base),
                  static_cast<unsigned long long>(r.size));
    addr_rows.push_back({r.name + buf, r.base, r.mv});
  }
  return "Hottest allocated instances:\n" + render_addr_rows(a, addr_rows, "Instance");
}

}  // namespace dsprof::analyze
