// er_print-style text renderers producing the listings of the paper's
// Figures 1-7, plus the §4 future-work views (effectiveness, segments,
// pages, cache lines, instances).
#pragma once

#include <string>

#include "analyze/analysis.hpp"

namespace dsprof::analyze {

/// Figure 1: metrics for the artificial <Total> function.
std::string render_overview(const Analysis& a);

/// Figure 2: the function list with exclusive metrics.
std::string render_function_list(const Analysis& a);

/// Callers-callees of one function (paper §2.3): attributed metrics for the
/// callers above and the callees below the function's own row.
std::string render_callers_callees(const Analysis& a, const std::string& function);

/// Figure 3: annotated source of a function.
std::string render_annotated_source(const Analysis& a, const std::string& function);

/// Figure 4: annotated disassembly of a function (with <branch target> rows
/// and data-object descriptors).
std::string render_annotated_disassembly(const Analysis& a, const std::string& function);

/// Figure 5: PCs ranked by a metric, with data-object annotations.
std::string render_hot_pcs(const Analysis& a, size_t sort_metric, size_t top_n = 20);

/// Figure 6: data objects ranked by a metric, with the <Unknown> breakdown.
std::string render_data_objects(const Analysis& a, size_t sort_metric);

/// Figure 7: member expansion of one structure.
std::string render_member_expansion(const Analysis& a, const std::string& struct_name);

/// §3.2.5: apropos backtracking effectiveness per counter.
std::string render_effectiveness(const Analysis& a);

/// Machine-diffable JSON report: totals, function list, hot PCs, source
/// lines, and data objects, each with the present metrics as integral
/// counts. `er_print -J` and dsprofd snapshot frames share this renderer
/// byte-for-byte, which is what lets scripts/check.sh diff a streamed
/// session against an offline analysis of the same events mechanically.
///
/// `dropped_events` is the serve-path overload counter; when nonzero a
/// "(Dropped)" pseudo-row is appended to the function list (and the count
/// recorded at top level). Offline reports pass 0, so the zero-drop output
/// is bit-identical between the two paths.
std::string render_json_report(const Analysis& a, u64 dropped_events = 0);

/// §4 future work: metrics by memory segment / page / E$ line / instance.
std::string render_segments(const Analysis& a);
std::string render_pages(const Analysis& a, size_t sort_metric, size_t top_n = 10);
std::string render_cache_lines(const Analysis& a, size_t sort_metric, size_t top_n = 10);
std::string render_instances(const Analysis& a, size_t sort_metric, size_t top_n = 10);

}  // namespace dsprof::analyze
