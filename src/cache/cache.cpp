#include "cache/cache.hpp"

namespace dsprof::cache {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  DSP_CHECK(is_pow2(cfg_.line_size), "line size must be a power of two");
  num_sets_ = cfg_.num_sets();
  DSP_CHECK(is_pow2(num_sets_), "set count must be a power of two");
  DSP_CHECK(cfg_.ways >= 1, "cache needs at least one way");
  line_bits_ = log2_exact(cfg_.line_size);
  set_bits_ = log2_exact(num_sets_);
  lines_.resize(num_sets_ * cfg_.ways);
}

CacheAccess Cache::access(u64 addr, bool write) {
  ++accesses_;
  const u64 set = set_index(addr);
  const u64 tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.ways];
  for (u32 w = 0; w < cfg_.ways; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == tag) {
      ++hits_;
      l.lru = ++tick_;
      if (write) l.dirty = true;
      CacheAccess r;
      r.hit = true;
      return r;
    }
  }
  // Miss.
  if (write && !cfg_.write_allocate) {
    return CacheAccess{};  // write-through no-allocate: nothing changes
  }
  return allocate(addr, write);
}

CacheAccess Cache::allocate(u64 addr, bool write) {
  const u64 set = set_index(addr);
  const u64 tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.ways];
  Line* victim = base;
  for (u32 w = 0; w < cfg_.ways; ++w) {
    Line& l = base[w];
    if (!l.valid) {
      victim = &l;
      break;
    }
    if (l.lru < victim->lru) victim = &l;
  }
  CacheAccess r;
  r.filled = true;
  if (victim->valid && victim->dirty) {
    r.evicted_dirty = true;
    r.evicted_addr = (victim->tag << (line_bits_ + set_bits_)) | (set << line_bits_);
  }
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = write;
  victim->lru = ++tick_;
  return r;
}

CacheAccess Cache::fill_line(u64 addr) {
  const u64 set = set_index(addr);
  const u64 tag = tag_of(addr);
  Line* base = &lines_[set * cfg_.ways];
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return CacheAccess{true, false, false, 0};
  }
  ++prefetch_fills_;
  return allocate(addr, /*write=*/false);
}

bool Cache::probe(u64 addr) const {
  const u64 set = set_index(addr);
  const u64 tag = tag_of(addr);
  const Line* base = &lines_[set * cfg_.ways];
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void Cache::invalidate_all() {
  for (auto& l : lines_) l = Line{};
}

namespace {
CacheConfig tlb_as_cache(const TlbConfig& t) {
  CacheConfig c;
  DSP_CHECK(is_pow2(t.page_size), "page size must be a power of two");
  c.line_size = static_cast<u32>(std::min<u64>(t.page_size, 1u << 30));
  c.ways = t.ways;
  c.size_bytes = static_cast<u64>(t.entries) * c.line_size;
  return c;
}
}  // namespace

Tlb::Tlb(const TlbConfig& cfg) : cfg_(cfg), cache_(tlb_as_cache(cfg)) {
  DSP_CHECK(cfg.entries % cfg.ways == 0, "TLB entries not divisible by ways");
}

bool Tlb::lookup(u64 addr) { return cache_.access(addr, /*write=*/false).hit; }

bool Tlb::probe(u64 addr) const { return cache_.probe(addr); }

void Tlb::invalidate_all() { cache_.invalidate_all(); }

}  // namespace dsprof::cache
