// Generic set-associative cache and TLB models with true-LRU replacement.
// Geometry defaults mirror the paper's UltraSPARC-III Cu testbed (§3.1):
// 64 KB 4-way 32 B-line D$ (write-through, no-write-allocate) and an 8 MB
// 2-way 512 B-line E$ (write-back, write-allocate).
#pragma once

#include <vector>

#include "support/common.hpp"

namespace dsprof::cache {

struct CacheConfig {
  u64 size_bytes = 0;
  u32 ways = 1;
  u32 line_size = 32;
  bool write_allocate = true;  // false => write misses bypass (no fill)

  u64 num_sets() const {
    DSP_CHECK(size_bytes % (static_cast<u64>(ways) * line_size) == 0,
              "cache size not divisible by ways*line");
    return size_bytes / (static_cast<u64>(ways) * line_size);
  }
};

/// Result of one cache access.
struct CacheAccess {
  bool hit = false;
  bool filled = false;        // a line was allocated for this access
  bool evicted_dirty = false; // the allocation displaced a dirty line
  u64 evicted_addr = 0;       // line address of the displaced line (if any)
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Perform a read (write=false) or write (write=true) of the line
  /// containing `addr`. Writes mark the line dirty when it is (or becomes)
  /// resident.
  CacheAccess access(u64 addr, bool write);

  /// Fill the line containing `addr` without counting it as a demand access
  /// (used for prefetches). No-op if already resident.
  CacheAccess fill_line(u64 addr);

  /// True if the line containing `addr` is resident (does not disturb LRU).
  bool probe(u64 addr) const;

  void invalidate_all();

  const CacheConfig& config() const { return cfg_; }
  u64 line_addr(u64 addr) const { return addr & ~static_cast<u64>(cfg_.line_size - 1); }

  // Demand-access statistics (fills via fill_line are counted separately).
  u64 accesses() const { return accesses_; }
  u64 hits() const { return hits_; }
  u64 misses() const { return accesses_ - hits_; }
  u64 prefetch_fills() const { return prefetch_fills_; }

 private:
  struct Line {
    u64 tag = 0;
    bool valid = false;
    bool dirty = false;
    u64 lru = 0;
  };

  u64 set_index(u64 addr) const { return (addr >> line_bits_) & (num_sets_ - 1); }
  u64 tag_of(u64 addr) const { return addr >> (line_bits_ + set_bits_); }
  CacheAccess allocate(u64 addr, bool write);

  CacheConfig cfg_;
  unsigned line_bits_;
  unsigned set_bits_;
  u64 num_sets_;
  std::vector<Line> lines_;  // num_sets * ways, set-major
  u64 tick_ = 0;
  u64 accesses_ = 0;
  u64 hits_ = 0;
  u64 prefetch_fills_ = 0;
};

struct TlbConfig {
  u32 entries = 512;
  u32 ways = 2;
  u64 page_size = 8 * 1024;  // Solaris default 8 KB; 512 KB in the
                             // -xpagesize_heap experiment (§3.3)
};

/// A TLB is a cache of page translations; hits/misses only, no dirty state.
class Tlb {
 public:
  explicit Tlb(const TlbConfig& cfg);

  /// True on hit; on miss the translation is filled (hardware table walk).
  bool lookup(u64 addr);
  bool probe(u64 addr) const;
  void invalidate_all();

  const TlbConfig& config() const { return cfg_; }
  u64 accesses() const { return cache_.accesses(); }
  u64 misses() const { return cache_.misses(); }

 private:
  TlbConfig cfg_;
  Cache cache_;  // reuse the cache structure with line_size == page_size
};

}  // namespace dsprof::cache
