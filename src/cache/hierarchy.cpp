#include "cache/hierarchy.hpp"

namespace dsprof::cache {

HierarchyConfig HierarchyConfig::ultrasparc3() { return HierarchyConfig{}; }

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& cfg)
    : cfg_(cfg), dc_(cfg.dcache), ic_(cfg.icache), ec_(cfg.ecache), dtlb_(cfg.dtlb) {}

AccessOutcome MemoryHierarchy::data_access(u64 addr, bool write) {
  AccessOutcome out;
  if (!dtlb_.lookup(addr)) {
    out.dtlb_miss = true;
    out.stall_cycles += cfg_.dtlb_miss_cycles;
  }
  const CacheAccess dc = dc_.access(addr, write);
  if (write) {
    // Write-through: the store always reaches the E$ via the store buffer.
    out.dc_wr_miss = !dc.hit;
    out.ec_ref = true;
    const CacheAccess ec = ec_.access(addr, /*write=*/true);
    out.ec_wr_miss = !ec.hit;
    // Store-buffer latency is hidden; no stall charged.
    return out;
  }
  if (dc.hit) {
    out.stall_cycles += cfg_.dc_hit_cycles;
    return out;
  }
  out.dc_rd_miss = true;
  out.ec_ref = true;
  const CacheAccess ec = ec_.access(addr, /*write=*/false);
  const u64 line = ec_.line_addr(addr);
  if (ec.hit) {
    out.stall_cycles += cfg_.ec_hit_cycles;
    // Keep a detected stream running: a hit on the line we last prefetched
    // triggers the next-line fill.
    if (cfg_.ec_stream_prefetch && line == stream_next_line_) {
      ec_.fill_line(line + cfg_.ecache.line_size);
      stream_next_line_ = line + cfg_.ecache.line_size;
    }
  } else {
    out.ec_rd_miss = true;
    out.ec_stall_cycles = cfg_.ec_miss_cycles;
    out.stall_cycles += cfg_.ec_miss_cycles;
    if (cfg_.ec_stream_prefetch) {
      ec_.fill_line(line + cfg_.ecache.line_size);
      stream_next_line_ = line + cfg_.ecache.line_size;
    }
  }
  return out;
}

AccessOutcome MemoryHierarchy::load(u64 addr) { return data_access(addr, /*write=*/false); }

AccessOutcome MemoryHierarchy::store(u64 addr) { return data_access(addr, /*write=*/true); }

AccessOutcome MemoryHierarchy::prefetch(u64 addr) {
  // Non-faulting, non-blocking: fills E$ (and D$) in the background. A TLB
  // miss aborts a real prefetch, so we only proceed on a resident page.
  AccessOutcome out;
  if (!dtlb_.probe(addr)) return out;
  const CacheAccess ec = ec_.fill_line(addr);
  out.ec_ref = !ec.hit;
  dc_.fill_line(addr);
  return out;
}

AccessOutcome MemoryHierarchy::fetch(u64 pc) {
  AccessOutcome out;
  const u64 line = ic_.line_addr(pc);
  if (line == last_fetch_line_) return out;  // sequential fetch within a line
  last_fetch_line_ = line;
  const CacheAccess ic = ic_.access(pc, /*write=*/false);
  if (!ic.hit) {
    out.ic_miss = true;
    out.stall_cycles += cfg_.ic_miss_cycles;
  }
  return out;
}

}  // namespace dsprof::cache
