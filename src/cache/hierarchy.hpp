// The memory hierarchy timing model: D$ + E$ + DTLB + I$, producing per-
// access stall cycles and the event pulses the hardware counters count.
//
// Model notes (documented deviations from real US-III Cu, see DESIGN.md §2):
//  * D$ is write-through no-write-allocate; every store is also an E$
//    reference (store buffer), as on US-III. Store stalls are hidden by the
//    store buffer, matching the near-zero E$ stall the paper shows on `stx`.
//  * E$ stall cycles are charged on demand E$ read misses (the "cycles lost"
//    interpretation the paper highlights for cycle-counting cache counters).
//  * An optional next-line stream prefetch on E$ read misses stands in for
//    the memory-level parallelism of streaming code; it keeps sequential arc
//    scans (primal_bea_mpp) at a low miss rate as in Figure 2.
#pragma once

#include "cache/cache.hpp"

namespace dsprof::cache {

struct HierarchyConfig {
  CacheConfig dcache{64 * 1024, 4, 32, /*write_allocate=*/false};
  CacheConfig icache{32 * 1024, 4, 32, /*write_allocate=*/true};
  CacheConfig ecache{8 * 1024 * 1024, 2, 512, /*write_allocate=*/true};
  TlbConfig dtlb{512, 2, 8 * 1024};

  u32 dc_hit_cycles = 1;      // extra cycles for a load that hits D$
  u32 ec_hit_cycles = 14;     // D$ miss, E$ hit
  u32 ec_miss_cycles = 210;   // D$ miss, E$ miss: full memory latency
  u32 dtlb_miss_cycles = 100; // hardware table walk (paper's 100-cycle cost)
  u32 ic_miss_cycles = 12;

  bool ec_stream_prefetch = false;

  /// The paper's testbed: dual 900 MHz US-III Cu, Sun Fire 280R, Solaris 9.
  static HierarchyConfig ultrasparc3();
};

/// Event pulses and stall produced by one access; the machine feeds these
/// into the PIC counters.
struct AccessOutcome {
  u32 stall_cycles = 0;   // added to the instruction's base cost
  bool dc_rd_miss = false;
  bool dc_wr_miss = false;
  bool ec_ref = false;
  bool ec_rd_miss = false;
  bool ec_wr_miss = false;
  bool dtlb_miss = false;
  bool ic_miss = false;
  u32 ec_stall_cycles = 0;  // portion of stall attributed to E$ misses
};

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyConfig& cfg);

  AccessOutcome load(u64 addr);
  AccessOutcome store(u64 addr);
  AccessOutcome prefetch(u64 addr);
  AccessOutcome fetch(u64 pc);

  const HierarchyConfig& config() const { return cfg_; }
  const Cache& dcache() const { return dc_; }
  const Cache& ecache() const { return ec_; }
  const Cache& icache() const { return ic_; }
  const Tlb& dtlb() const { return dtlb_; }

 private:
  AccessOutcome data_access(u64 addr, bool write);

  HierarchyConfig cfg_;
  Cache dc_;
  Cache ic_;
  Cache ec_;
  Tlb dtlb_;
  u64 last_fetch_line_ = ~u64{0};
  u64 stream_next_line_ = ~u64{0};
};

}  // namespace dsprof::cache
