#include "collect/collector.hpp"

#include <sstream>

#include "obs/obs.hpp"
#include "support/rng.hpp"

namespace dsprof::collect {

using machine::HwEvent;
using machine::HwEventInfo;
using machine::TriggerKind;

u64 overflow_interval(HwEvent ev, const std::string& rate) {
  // Base "on" intervals tuned for simulator-scale runs (10^8-10^9 cycles):
  // enough samples for stable profiles, sparse enough not to distort them.
  u64 base = 0;
  switch (ev) {
    case HwEvent::Cycle_cnt: base = 900'000; break;  // ~1 ms at 900 MHz
    case HwEvent::Instr_cnt: base = 1'000'000; break;
    case HwEvent::IC_miss: base = 1'000; break;
    case HwEvent::DC_rd_miss: base = 10'000; break;
    case HwEvent::DC_wr_miss: base = 10'000; break;
    case HwEvent::EC_ref: base = 20'000; break;
    case HwEvent::EC_rd_miss: base = 1'000; break;
    case HwEvent::EC_stall_cycles: base = 100'000; break;
    case HwEvent::DTLB_miss: base = 500; break;
    default: fail("bad event");
  }
  if (rate == "on") return next_prime(base);
  if (rate == "hi") return next_prime(std::max<u64>(base / 10, 13));
  if (rate == "lo") return next_prime(base * 10);
  // Numeric interval.
  DSP_CHECK(!rate.empty(), "empty counter rate: expected 'hi', 'on', 'lo', or a "
                           "positive integer overflow interval");
  u64 v = 0;
  for (char c : rate) {
    DSP_CHECK(c >= '0' && c <= '9', "bad counter rate '" + rate +
                                        "': expected 'hi', 'on', 'lo', or a positive "
                                        "integer overflow interval");
    v = v * 10 + static_cast<u64>(c - '0');
  }
  DSP_CHECK(v > 0, "counter interval must be positive, got '" + rate + "'");
  return v;
}

std::vector<experiment::CounterSpec> parse_counter_spec(const std::string& spec) {
  return parse_counter_spec(spec, /*multiplex=*/false);
}

std::vector<experiment::CounterSpec> parse_counter_spec(const std::string& spec,
                                                        bool multiplex) {
  std::vector<experiment::CounterSpec> out;
  if (spec.empty()) return out;
  // Tokenize on commas: name,rate pairs.
  std::vector<std::string> tok;
  std::string cur;
  for (char c : spec) {
    if (c == ',') {
      tok.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  tok.push_back(cur);
  DSP_CHECK(tok.size() % 2 == 0, "counter spec must be comma-separated name,rate pairs "
                                 "(e.g. '+ecstall,on,+ecrm,hi'), got an odd token in: " +
                                     spec);
  if (!multiplex) {
    DSP_CHECK(tok.size() / 2 <= machine::kNumPics,
              "at most " + std::to_string(machine::kNumPics) +
                  " hardware counters can be collected at once (" +
                  std::to_string(machine::kNumPics) + " PIC registers), got " +
                  std::to_string(tok.size() / 2) + " in: " + spec);
  }

  // Pass 1: resolve names, rates, backtracking requests; reject duplicates
  // (two specs for one event would race for the same overflow stream —
  // meaningless with or without multiplexing).
  std::array<bool, machine::kNumHwEvents> seen{};
  for (size_t i = 0; i < tok.size(); i += 2) {
    std::string name = tok[i];
    DSP_CHECK(!name.empty(), "empty counter name in spec: " + spec);
    experiment::CounterSpec c;
    if (name[0] == '+') {
      c.backtrack = true;
      name = name.substr(1);
    }
    DSP_CHECK(name.empty() || name[0] != '+',
              "duplicate '+' prefix on counter '" + tok[i] +
                  "': a single '+' requests apropos backtracking");
    DSP_CHECK(!name.empty(), "missing counter name after '+' in spec: " + spec);
    c.event = machine::hw_event_by_name(name);
    DSP_CHECK(!seen[static_cast<size_t>(c.event)],
              "duplicate counter '" + name + "' in spec: " + spec);
    seen[static_cast<size_t>(c.event)] = true;
    c.interval = overflow_interval(c.event, tok[i + 1]);
    out.push_back(c);
  }

  // Pass 2: assign registers. Each set holds at most one counter per PIC
  // register, honoring each event's pic_mask. First-fit into the lowest
  // feasible free register, with (under multiplexing) a one-level augmenting
  // swap — moving an already-placed counter to its other feasible register —
  // before giving up on a set. With two registers the swap makes the greedy
  // exact: a set rejects a counter only when no assignment exists. Without
  // multiplexing there is a single set and a rejection is a hard error.
  struct SetState {
    std::array<int, machine::kNumPics> owner;  // counter index, -1 = free
  };
  std::vector<SetState> sets;
  auto try_place = [&](size_t ci, SetState& s) {
    const u8 mask = machine::hw_event_info(out[ci].event).pic_mask;
    for (unsigned pic = 0; pic < machine::kNumPics; ++pic) {
      if ((mask & (1u << pic)) && s.owner[pic] < 0) {
        s.owner[pic] = static_cast<int>(ci);
        out[ci].pic = pic;
        return true;
      }
    }
    for (unsigned pic = 0; pic < machine::kNumPics; ++pic) {
      if (!(mask & (1u << pic))) continue;
      const size_t occ = static_cast<size_t>(s.owner[pic]);
      const u8 omask = machine::hw_event_info(out[occ].event).pic_mask;
      for (unsigned other = 0; other < machine::kNumPics; ++other) {
        if (other != pic && (omask & (1u << other)) && s.owner[other] < 0) {
          s.owner[other] = static_cast<int>(occ);
          out[occ].pic = other;
          s.owner[pic] = static_cast<int>(ci);
          out[ci].pic = pic;
          return true;
        }
      }
    }
    return false;
  };
  for (size_t ci = 0; ci < out.size(); ++ci) {
    bool placed = false;
    for (size_t si = 0; si < sets.size() && !placed; ++si) {
      if (try_place(ci, sets[si])) {
        out[ci].set = static_cast<unsigned>(si);
        placed = true;
      }
    }
    if (placed) continue;
    if (multiplex || sets.empty()) {
      // Open a new set; placement into an empty set always succeeds (every
      // event's pic_mask names at least one register).
      SetState fresh;
      fresh.owner.fill(-1);
      sets.push_back(fresh);
      DSP_CHECK(try_place(ci, sets.back()), "internal: empty set rejected a counter");
      out[ci].set = static_cast<unsigned>(sets.size() - 1);
      continue;
    }
    // Name the conflicting assignment precisely (as on real hardware,
    // where the event->register constraints are fixed).
    const HwEventInfo& info = machine::hw_event_info(out[ci].event);
    std::string taken;
    for (unsigned pic = 0; pic < machine::kNumPics; ++pic) {
      if (info.pic_mask & (1u << pic)) {
        if (!taken.empty()) taken += ", ";
        const size_t occ = static_cast<size_t>(sets[0].owner[pic]);
        taken += "PIC" + std::to_string(pic) + " already counts '" +
                 machine::hw_event_info(out[occ].event).name + "'";
      }
    }
    fail("counter '" + std::string(machine::hw_event_info(out[ci].event).name) +
         "' cannot be scheduled: " + taken +
         " (each counter needs its own PIC register; see list_counters() for "
         "each event's register constraints)");
  }
  return out;
}

std::string list_counters() {
  std::ostringstream os;
  os << "Available hardware counters (UltraSPARC-III-like):\n";
  for (size_t i = 0; i < machine::kNumHwEvents; ++i) {
    const HwEventInfo& e = machine::hw_event_info(static_cast<HwEvent>(i));
    os << "  " << e.name;
    for (size_t pad = std::string(e.name).size(); pad < 10; ++pad) os << ' ';
    os << e.description << (e.counts_cycles ? " (cycles)" : " (events)") << ", PIC";
    if (e.pic_mask & 1) os << "0";
    if (e.pic_mask & 2) os << (e.pic_mask & 1 ? "/1" : "1");
    os << ", skid " << e.skid_min << "-" << e.skid_max << " instructions\n";
  }
  os << "Prefix a name with '+' to enable apropos backtracking search.\n";
  return os.str();
}

Collector::Collector(const sym::Image& image, CollectOptions opt)
    : image_(image), opt_(std::move(opt)) {
  counters_ = parse_counter_spec(opt_.hw, /*multiplex=*/opt_.mpx_slice_cycles != 0);
  for (const auto& c : counters_) {
    backtrack_by_event_[static_cast<size_t>(c.event)] = c.backtrack;
    set_by_event_[static_cast<size_t>(c.event)] = static_cast<u8>(c.set);
    num_sets_ = std::max(num_sets_, c.set + 1);
  }
  if (opt_.clock != "off" && !opt_.clock.empty()) {
    clock_interval_ = overflow_interval(HwEvent::Cycle_cnt, opt_.clock);
  }
}

sa::BacktrackAnswer backtrack_dynamic(const sym::Image& image, u64 delivered_pc,
                                      TriggerKind kind, const std::array<u64, 32>& regs,
                                      u32 window) {
  sa::BacktrackAnswer r;
  if (kind == TriggerKind::Any) return r;  // nothing to search for

  const u64 text_lo = image.text_base;
  const u64 text_hi = image.text_base + image.text_size();
  auto fetch = [&](u64 pc) {
    return image.text_words[static_cast<size_t>((pc - text_lo) >> 2)];
  };

  // Walk back in address order from the instruction before the delivered PC
  // (the delivered PC is the *next* instruction to issue, §2.2.2).
  u64 pc = delivered_pc;
  for (u32 step = 0; step < window; ++step) {
    if (pc < text_lo + 4 || pc > text_hi) break;
    pc -= 4;
    const isa::Instr ins = isa::decode(fetch(pc));
    const isa::OpInfo& info = isa::op_info(ins.op);
    const bool matches = kind == TriggerKind::Load
                             ? info.is_load
                             : (info.is_load || info.is_store || info.is_prefetch);
    if (!matches) continue;

    r.found = true;
    r.candidate_pc = pc;

    // Effective-address recomputation: usable only if neither the candidate
    // itself (a load overwriting its own base register) nor any instruction
    // between it and the delivered PC wrote the address registers
    // (registers may have been changed while the counter was skidding).
    //
    // Conservative annulled-delay-slot rule: instructions in the skid gap
    // are treated as executed writers even when they sit in the delay slot
    // of an annulling branch — the snapshot cannot prove the slot ran, so
    // we may drop a recoverable EA but never report a wrong one. The
    // sa::BacktrackTable applies the identical rule (see its header).
    const auto ea = isa::ea_expr(ins);
    DSP_CHECK(ea.has_value(), "memory op without EA expression");
    bool clobbered = false;
    if (info.is_load && ins.rd != 0 &&
        (ins.rd == ea->rs1 || (!ea->has_imm && ins.rd == ea->rs2))) {
      clobbered = true;
    }
    for (u64 q = pc + 4; q < delivered_pc; q += 4) {
      const isa::Instr between = isa::decode(fetch(q));
      const isa::OpInfo& binfo = isa::op_info(between.op);
      u8 written = 32;  // none
      if (binfo.is_load || (!binfo.is_store && !binfo.is_branch && !binfo.is_call &&
                            !binfo.is_prefetch && between.op != isa::Op::ILLEGAL &&
                            between.op != isa::Op::HCALL)) {
        written = between.rd;
      }
      if (binfo.is_call) written = isa::kLink;
      if (written != 32 && written != 0) {
        if (written == ea->rs1 || (!ea->has_imm && written == ea->rs2)) {
          clobbered = true;
          break;
        }
      }
    }
    if (!clobbered) {
      const u64 base = regs[ea->rs1];
      const u64 off = ea->has_imm ? static_cast<u64>(ea->imm) : regs[ea->rs2];
      r.ea_known = true;
      r.ea = base + off;
    }
    return r;
  }
  return r;  // nothing found within the window: (Unresolvable)
}

sa::BacktrackAnswer Collector::backtrack(const machine::OverflowDelivery& d) {
  // Self-observability (src/obs/): per-engine query latency plus the
  // clobber/unresolved outcome tallies the §2.2.3 search can produce.
  // Overflows are orders of magnitude sparser than instructions, so timing
  // each query does not distort collection (bench/obs_overhead).
  static const obs::Histogram kTableNs = obs::histogram("collect.backtrack.table_ns");
  static const obs::Histogram kDynamicNs = obs::histogram("collect.backtrack.dynamic_ns");
  static const obs::Counter kQueries = obs::counter("collect.backtrack.queries");
  static const obs::Counter kEaRecovered = obs::counter("collect.backtrack.ea_recovered");
  static const obs::Counter kEaClobbered = obs::counter("collect.backtrack.ea_clobbered");
  static const obs::Counter kUnresolved = obs::counter("collect.backtrack.unresolved");

  const TriggerKind kind = machine::hw_event_info(d.event).trigger;
  kQueries.add();
  sa::BacktrackAnswer r;
  if (btable_ != nullptr) {
    const obs::ScopedTimer timer(kTableNs);
    r = btable_->query(d.delivered_pc, kind, d.regs);
  } else {
    const obs::ScopedTimer timer(kDynamicNs);
    r = backtrack_dynamic(image_, d.delivered_pc, kind, d.regs, opt_.backtrack_window);
  }
  if (!r.found) {
    kUnresolved.add();
  } else if (r.ea_known) {
    kEaRecovered.add();
  } else {
    kEaClobbered.add();  // address registers written in the skid gap
  }
  return r;
}

void Collector::on_overflow(const machine::OverflowDelivery& d) {
  // Hot path: append straight into the columnar store. No EventRecord is
  // materialized and no per-event heap allocation happens — the callstack
  // words are interned into the store's shared arena.
  static const obs::Counter kOverflows = obs::counter("collect.overflows");
  kOverflows.add();
  const bool clock_sample = d.pic == machine::kClockPic;
  sa::BacktrackAnswer r;
  if (!clock_sample && backtrack_by_event_[static_cast<size_t>(d.event)]) {
    r = backtrack(d);
  }
  // Stamp the event with its counter set. A hardware overflow belongs to the
  // set that configured its event — which may no longer be the live set if
  // the delivery skidded across a rotation — while a clock sample belongs to
  // whichever set is live at delivery (the clock never rotates).
  const u8 set =
      clock_sample ? static_cast<u8>(cur_set_) : set_by_event_[static_cast<size_t>(d.event)];
  events_.append(static_cast<u8>(d.pic), d.event, d.interval, d.delivered_pc, r.found,
                 r.candidate_pc, r.ea_known, r.ea, d.callstack.data(), d.callstack.size(),
                 d.seq, set);
  if (opt_.batch_export && events_.size() - exported_ >= opt_.batch_export_events) {
    export_pending(/*last=*/false);
  }
}

void Collector::rotate_set() {
  // Fired by the slice timer between instructions: the outgoing set's
  // registers hold consistent residuals and no partially-counted
  // instruction straddles the switch.
  static const obs::Counter kSwitches = obs::counter("collect.mpx.switches");
  kSwitches.add();
  const u64 now = cpu_->total_cycles();
  slices_[cur_set_].live_cycles += now - slice_start_cycles_;
  slice_start_cycles_ = now;
  for (size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i].set != cur_set_) continue;
    // Save the partially-counted interval so the counter resumes mid-count
    // when its set comes back on duty (no samples lost to resets).
    residuals_[i] = cpu_->pic_value(counters_[i].pic);
    cpu_->disable_pic(counters_[i].pic);
  }
  cur_set_ = (cur_set_ + 1) % num_sets_;
  slices_[cur_set_].switches += 1;
  for (size_t i = 0; i < counters_.size(); ++i) {
    const auto& c = counters_[i];
    if (c.set != cur_set_) continue;
    cpu_->configure_pic(c.pic, c.event, c.interval, residuals_[i]);
  }
}

void Collector::export_pending(bool last) {
  if (!opt_.batch_export) return;
  if (exported_ == events_.size() && !last) return;
  static const obs::SpanName kExportSpan = obs::span_name("collect.export_batch");
  static const obs::Counter kBatches = obs::counter("collect.batches.exported");
  static const obs::Histogram kBatchEvents = obs::histogram("collect.export.batch_events");
  const obs::ScopedSpan span(kExportSpan);
  // Re-pack the pending range into a self-contained batch store (own arena)
  // so the consumer may keep or encode it independently of events_.
  experiment::EventStore batch;
  batch.append_range(events_, exported_, events_.size());
  exported_ = events_.size();
  kBatches.add();
  kBatchEvents.record(batch.size());
  opt_.batch_export(batch, last);
}

experiment::Experiment Collector::run(const std::function<void(machine::Cpu&)>& setup) {
  // Hoist the per-event backtracking work into a one-time static analysis
  // pass (BacktrackEngine::Table): the table answers every overflow with an
  // O(1) lookup instead of the O(window) decode loop above.
  bool want_backtrack = false;
  for (const auto& c : counters_) want_backtrack = want_backtrack || c.backtrack;
  if (opt_.backtrack_engine == BacktrackEngine::Table && want_backtrack &&
      btable_ == nullptr) {
    static const obs::Histogram kBuildNs = obs::histogram("collect.backtrack.table_build_ns");
    const obs::ScopedTimer timer(kBuildNs);
    btable_ = std::make_unique<sa::BacktrackTable>(
        sa::BacktrackTable::build(image_, opt_.backtrack_window));
  }

  mem_ = std::make_unique<mem::Memory>();
  image_.load_into(*mem_);
  cpu_ = std::make_unique<machine::Cpu>(*mem_, opt_.cpu);
  cpu_->set_pc(image_.entry);

  // Arm set 0 only; under multiplexing the slice timer rotates the remaining
  // sets onto the registers round-robin.
  for (const auto& c : counters_) {
    if (c.set == 0) cpu_->configure_pic(c.pic, c.event, c.interval);
  }
  if (num_sets_ > 1) {
    slices_.assign(num_sets_, {});
    slices_[0].switches = 1;  // set 0 starts on duty
    cur_set_ = 0;
    slice_start_cycles_ = 0;
    residuals_.assign(counters_.size(), 0);
    cpu_->configure_slice_timer(opt_.mpx_slice_cycles);
    cpu_->on_slice = [this] { rotate_set(); };
  } else {
    slices_.clear();
  }
  if (clock_interval_ != 0) cpu_->configure_clock_profiling(clock_interval_);
  cpu_->on_overflow = [this](const machine::OverflowDelivery& d) { on_overflow(d); };

  if (setup) setup(*cpu_);

  events_.clear();
  exported_ = 0;
  static const obs::SpanName kRunSpan = obs::span_name("collect.run");
  machine::RunResult rr;
  {
    const obs::ScopedSpan span(kRunSpan);
    rr = cpu_->run(opt_.max_instructions);
  }
  export_pending(/*last=*/true);

  if (num_sets_ > 1) {
    // Retire the final (partial) slice so the live-cycle totals partition
    // the whole run: sum(live_cycles) == total cycles.
    slices_[cur_set_].live_cycles += cpu_->total_cycles() - slice_start_cycles_;
  }

  experiment::Experiment ex;
  ex.image = image_;
  ex.counters = counters_;
  ex.clock_interval = clock_interval_;
  ex.clock_hz = opt_.cpu.clock_hz;
  ex.page_size = opt_.cpu.hierarchy.dtlb.page_size;
  ex.ec_line_size = opt_.cpu.hierarchy.ecache.line_size;
  ex.events = std::move(events_);
  ex.slices = slices_;
  ex.allocations = cpu_->allocations();
  ex.total_cycles = rr.cycles;
  ex.total_instructions = rr.instructions;
  ex.truth = cpu_->truth_log();

  std::ostringstream log;
  log << "collect: hw='" << opt_.hw << "' clock='" << opt_.clock << "'\n";
  if (num_sets_ > 1) {
    u64 switches = 0;
    for (const auto& s : slices_) switches += s.switches;
    log << "multiplex: " << num_sets_ << " counter sets, slice " << opt_.mpx_slice_cycles
        << " cycles, " << switches << " activations\n";
  }
  log << "target: " << image_.text_size() / 4 << " instructions of text, entry 0x" << std::hex
      << image_.entry << std::dec << "\n";
  log << "run: " << (rr.halted ? "exited" : "stopped") << ", exit code " << rr.exit_code
      << ", " << rr.instructions << " instructions, " << rr.cycles << " cycles ("
      << ex.seconds(rr.cycles) << " s at " << ex.clock_hz / 1'000'000 << " MHz)\n";
  log << "events recorded: " << ex.events.size() << "\n";
  ex.log = log.str();
  return ex;
}

}  // namespace dsprof::collect
