// The collect command (paper §2.2): run a target under hardware-counter and
// clock profiling, handle (skidded) overflow signals, perform the apropos
// backtracking search and effective-address recomputation at collection
// time, and produce an Experiment.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "experiment/experiment.hpp"
#include "machine/cpu.hpp"

namespace dsprof::collect {

/// Preset overflow intervals ("hi" / "on" / "lo"), per event, chosen as
/// primes to avoid correlation with loop periods (paper §2.2).
u64 overflow_interval(machine::HwEvent ev, const std::string& rate);

/// Parse a collect -h specification: "+ecstall,on,+ecrm,hi" or "+dtlbm,9973".
/// A leading '+' requests apropos backtracking for that counter. Counters are
/// assigned to PIC registers per event constraints; requesting two events
/// that need the same register is an error (as on real hardware).
std::vector<experiment::CounterSpec> parse_counter_spec(const std::string& spec);

/// Render the list of available counters (collect with no arguments).
std::string list_counters();

struct CollectOptions {
  /// -h: hardware counter spec; empty = no HW profiling.
  std::string hw = "";
  /// -p: clock profiling rate ("off", "hi", "on", "lo").
  std::string clock = "on";
  machine::CpuConfig cpu;
  u64 max_instructions = 0;  // safety stop; 0 = run to exit
  /// Instructions to search when backtracking from the delivered PC.
  u32 backtrack_window = 16;
};

class Collector {
 public:
  Collector(const sym::Image& image, CollectOptions opt);

  /// Run the target to completion and return the experiment.
  /// `setup` (optional) runs after loading, before execution — e.g. to poke
  /// input data into simulated memory.
  experiment::Experiment run(const std::function<void(machine::Cpu&)>& setup = {});

  /// The CPU of the last run (valid after run()); exposes program output
  /// and the ground-truth log for validation.
  machine::Cpu& cpu() {
    DSP_CHECK(cpu_ != nullptr, "run() has not been called");
    return *cpu_;
  }

 private:
  struct BacktrackResult {
    bool found = false;
    u64 candidate_pc = 0;
    bool ea_known = false;
    u64 ea = 0;
  };
  BacktrackResult backtrack(const machine::OverflowDelivery& d);
  void on_overflow(const machine::OverflowDelivery& d);

  const sym::Image& image_;
  CollectOptions opt_;
  std::vector<experiment::CounterSpec> counters_;
  /// Per-PIC backtracking requests, resolved once at construction so the
  /// overflow hot path does not re-scan the counter specs per event.
  std::array<bool, machine::kNumPics> backtrack_by_pic_{};
  u64 clock_interval_ = 0;

  std::unique_ptr<mem::Memory> mem_;
  std::unique_ptr<machine::Cpu> cpu_;
  /// Columnar event store filled during the run (zero per-event allocations).
  experiment::EventStore events_;
};

}  // namespace dsprof::collect
