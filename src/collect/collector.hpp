// The collect command (paper §2.2): run a target under hardware-counter and
// clock profiling, handle (skidded) overflow signals, perform the apropos
// backtracking search and effective-address recomputation at collection
// time, and produce an Experiment.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "experiment/experiment.hpp"
#include "machine/cpu.hpp"
#include "sa/backtrack_table.hpp"

namespace dsprof::collect {

/// Preset overflow intervals ("hi" / "on" / "lo"), per event, chosen as
/// primes to avoid correlation with loop periods (paper §2.2).
u64 overflow_interval(machine::HwEvent ev, const std::string& rate);

/// Parse a collect -h specification: "+ecstall,on,+ecrm,hi" or "+dtlbm,9973".
/// A leading '+' requests apropos backtracking for that counter. Counters are
/// assigned to PIC registers per event constraints; requesting two events
/// that need the same register is an error (as on real hardware).
std::vector<experiment::CounterSpec> parse_counter_spec(const std::string& spec);

/// As above, but with `multiplex` the register constraints bound each *set*
/// rather than the whole spec: counters are partitioned into sets of at most
/// kNumPics registers (honoring each event's pic_mask), and the collector
/// time-slices the sets onto the real registers. More than one resulting set
/// means the run multiplexes; a spec that fits one set behaves exactly as the
/// non-multiplexed parse. Duplicate counter names are an error either way.
std::vector<experiment::CounterSpec> parse_counter_spec(const std::string& spec,
                                                        bool multiplex);

/// Render the list of available counters (collect with no arguments).
std::string list_counters();

/// How the apropos backtracking answer is produced per overflow event.
enum class BacktrackEngine : u8 {
  /// Precomputed sa::BacktrackTable, built once per image: O(1) per event.
  Table,
  /// The original per-event decode loop (backtrack_dynamic): O(window) per
  /// event. Kept as the executable reference — the table must match it
  /// bit-for-bit (tests/sa_test.cpp, tests/scc_fuzz_test.cpp) and
  /// bench/backtrack_table measures the gap.
  Dynamic,
};

struct CollectOptions {
  /// -h: hardware counter spec; empty = no HW profiling.
  std::string hw = "";
  /// -p: clock profiling rate ("off", "hi", "on", "lo").
  std::string clock = "on";
  machine::CpuConfig cpu;
  u64 max_instructions = 0;  // safety stop; 0 = run to exit
  /// Instructions to search when backtracking from the delivered PC.
  u32 backtrack_window = 16;
  BacktrackEngine backtrack_engine = BacktrackEngine::Table;

  /// Counter-set multiplexing slice length in cycles: when -h names more
  /// counters than PIC registers, the collector partitions them into sets and
  /// rotates the sets round-robin every `mpx_slice_cycles` cycles (a prime,
  /// like the overflow intervals, to avoid phase-locking with loop periods).
  /// 0 disables multiplexing entirely — specs needing more than one set are
  /// then rejected exactly as before multiplexing existed.
  u64 mpx_slice_cycles = 1'000'003;

  /// Streaming export hook (the dsprofd ingest path, src/serve/): when set,
  /// the collector hands off a batch of events every `batch_export_events`
  /// recorded overflows, plus the final partial batch (`last = true`) at
  /// run end. The batch store is only valid for the duration of the call —
  /// a client typically encodes it onto the wire immediately. The run's
  /// Experiment still contains every event; streaming is additive.
  std::function<void(const experiment::EventStore& batch, bool last)> batch_export;
  size_t batch_export_events = 4096;
};

/// Reference apropos backtracking search (paper §2.2.3): walk backward from
/// the skidded delivered PC through at most `window` decoded instructions to
/// the nearest memory op matching the trigger kind, then decide whether its
/// effective address is still recomputable from the delivered register
/// snapshot (no write to the address registers in between).
///
/// Conservative annulled-delay-slot rule: the clobber scan treats *every*
/// instruction in the skid gap as an executed register writer — including a
/// branch delay slot the machine may have annulled at run time. The
/// delivered register snapshot cannot tell us whether the slot executed, so
/// assuming it did errs toward ea_known=false: a conservatively dropped
/// sample, never a wrong address attributed to a data object. The
/// sa::BacktrackTable precomputation applies the identical rule (the
/// bit-identity tests cover images with annulling branches).
sa::BacktrackAnswer backtrack_dynamic(const sym::Image& image, u64 delivered_pc,
                                      machine::TriggerKind kind,
                                      const std::array<u64, 32>& regs, u32 window);

class Collector {
 public:
  Collector(const sym::Image& image, CollectOptions opt);

  /// Run the target to completion and return the experiment.
  /// `setup` (optional) runs after loading, before execution — e.g. to poke
  /// input data into simulated memory.
  experiment::Experiment run(const std::function<void(machine::Cpu&)>& setup = {});

  /// The CPU of the last run (valid after run()); exposes program output
  /// and the ground-truth log for validation.
  machine::Cpu& cpu() {
    DSP_CHECK(cpu_ != nullptr, "run() has not been called");
    return *cpu_;
  }

 private:
  sa::BacktrackAnswer backtrack(const machine::OverflowDelivery& d);
  void on_overflow(const machine::OverflowDelivery& d);
  /// Slice-timer callback: retire the live slice, save the outgoing set's
  /// counter residuals, arm the next set's counters from theirs.
  void rotate_set();
  /// Hand events [exported_, size) to opt_.batch_export as one batch.
  void export_pending(bool last);

  const sym::Image& image_;
  CollectOptions opt_;
  std::vector<experiment::CounterSpec> counters_;
  /// Per-event backtracking requests and set membership, resolved once at
  /// construction so the overflow hot path does not re-scan the counter
  /// specs per event. Keyed by event (not PIC): under multiplexing several
  /// counters share a register across time slices, and a skidded delivery
  /// can arrive after its set was rotated out.
  std::array<bool, machine::kNumHwEvents> backtrack_by_event_{};
  std::array<u8, machine::kNumHwEvents> set_by_event_{};
  /// Number of counter sets the spec partitioned into (1 = no multiplexing).
  unsigned num_sets_ = 1;
  unsigned cur_set_ = 0;
  /// Per-set live-cycle / switch accounting (empty when not multiplexing).
  std::vector<experiment::SliceInfo> slices_;
  /// Saved counter register residuals, per counter, across rotations.
  std::vector<u64> residuals_;
  u64 slice_start_cycles_ = 0;
  u64 clock_interval_ = 0;
  /// Precomputed backtracking answers (BacktrackEngine::Table). Built once
  /// per Collector, lazily at run(), and only when some counter actually
  /// requests backtracking.
  std::unique_ptr<sa::BacktrackTable> btable_;

  std::unique_ptr<mem::Memory> mem_;
  std::unique_ptr<machine::Cpu> cpu_;
  /// Columnar event store filled during the run (zero per-event allocations).
  experiment::EventStore events_;
  /// Events already handed to opt_.batch_export.
  size_t exported_ = 0;
};

}  // namespace dsprof::collect
