#include "experiment/event_store.hpp"

#include <algorithm>
#include <cstring>

namespace dsprof::experiment {

namespace {

u64 hash_words(const u64* p, u32 n) {
  // FNV-style fold of splitmix-mixed words; the exact function is internal
  // (never serialized), it only needs to be fast and well distributed.
  u64 h = 0x243f6a8885a308d3ULL ^ n;
  for (u32 i = 0; i < n; ++i) h = mix_u64(h ^ p[i]);
  return h;
}

template <typename T>
void put_pod_column(ByteWriter& w, Column<T> col) {
  w.put_u64(col.size());
  if (!col.empty()) {
    const auto* p = reinterpret_cast<const u8*>(col.data());
    w.put_blob(p, col.size() * sizeof(T));
  } else {
    w.put_blob(nullptr, 0);
  }
}

template <typename T>
std::vector<T> get_pod_column(ByteReader& r) {
  const u64 n = r.get_u64();
  const std::vector<u8> raw = r.get_blob();
  // Divide instead of multiplying: `n * sizeof(T)` wraps for corrupt counts
  // near 2^64, and allocating `col(n)` before validating would OOM.
  DSP_CHECK(raw.size() % sizeof(T) == 0 && raw.size() / sizeof(T) == n,
            "event column size mismatch");
  std::vector<T> col(static_cast<size_t>(n));
  if (n != 0) std::memcpy(col.data(), raw.data(), raw.size());
  return col;
}

template <typename T>
void put_pod_column_aligned(ByteWriter& w, Column<T> col) {
  w.put_u64(col.size());
  w.align_to(8);
  if (!col.empty()) {
    const auto* p = reinterpret_cast<const u8*>(col.data());
    w.put_raw(p, col.size() * sizeof(T));
  }
}

/// Parse one aligned column as a view into the reader's buffer. No copy;
/// bounds- and overflow-checked like the blob path.
template <typename T>
Column<T> view_pod_column_aligned(ByteReader& r) {
  const u64 n = r.get_u64();
  r.align_to(8);
  DSP_CHECK(n <= r.remaining() / sizeof(T), "event column size mismatch");
  const u8* p = r.cursor();
  r.skip(n * sizeof(T));
  return Column<T>(reinterpret_cast<const T*>(p), static_cast<size_t>(n));
}

template <typename T>
std::vector<T> to_vector(Column<T> col) {
  std::vector<T> v(col.size());
  if (!col.empty()) std::memcpy(v.data(), col.data(), col.size() * sizeof(T));
  return v;
}

}  // namespace

u64 EventStore::intern(const u64* stack, u32 len) {
  if (len == 0) {
    has_empty_ = true;
    return 0;
  }
  u64 key = hash_words(stack, len);
  // Collision chain: if a hash bucket holds a *different* stack, derive the
  // next probe key deterministically and retry. With 64-bit mixed hashes the
  // chain length is ~1 in practice.
  for (;;) {
    Interned& slot = intern_[key];
    if (slot.len == 0) {
      // Fresh: copy the stack into the arena.
      slot.offset = arena_.size();
      slot.len = len;
      arena_.insert(arena_.end(), stack, stack + len);
      return slot.offset;
    }
    if (slot.len == len &&
        std::memcmp(arena_.data() + slot.offset, stack, len * sizeof(u64)) == 0) {
      return slot.offset;  // already interned
    }
    key = mix_u64(key + 0x9e3779b97f4a7c15ULL);
  }
}

void EventStore::append(u8 pic, machine::HwEvent event, u64 weight, u64 delivered_pc,
                        bool has_candidate, u64 candidate_pc, bool has_ea, u64 ea,
                        const u64* stack, size_t stack_len, u64 seq, u8 set) {
  DSP_CHECK(!frozen_, "append to a frozen EventStore");
  const u64 off = intern(stack, static_cast<u32>(stack_len));
  pic_.push_back(pic);
  event_.push_back(static_cast<u8>(event));
  weight_.push_back(weight);
  delivered_pc_.push_back(delivered_pc);
  flags_.push_back(static_cast<u8>((has_candidate ? kHasCandidate : 0) | (has_ea ? kHasEa : 0)));
  candidate_pc_.push_back(candidate_pc);
  ea_.push_back(ea);
  seq_.push_back(seq);
  cs_offset_.push_back(off);
  cs_len_.push_back(static_cast<u32>(stack_len));
  set_.push_back(set);
}

void EventStore::reserve(size_t n) {
  pic_.reserve(n);
  event_.reserve(n);
  weight_.reserve(n);
  delivered_pc_.reserve(n);
  flags_.reserve(n);
  candidate_pc_.reserve(n);
  ea_.reserve(n);
  seq_.reserve(n);
  cs_offset_.reserve(n);
  cs_len_.reserve(n);
  set_.reserve(n);
}

void EventStore::clear() {
  pic_.clear();
  event_.clear();
  weight_.clear();
  delivered_pc_.clear();
  flags_.clear();
  candidate_pc_.clear();
  ea_.clear();
  seq_.clear();
  cs_offset_.clear();
  cs_len_.clear();
  set_.clear();
  arena_.clear();
  intern_.clear();
  has_empty_ = false;
  // Dropping mapped/frozen state turns the store back into an empty owning
  // one (and releases the file mapping).
  mapped_ = false;
  mapped_rows_ = 0;
  mapping_.reset();
  frozen_ = false;
  frozen_unique_valid_ = false;
}

size_t EventStore::unique_callstacks() const {
  if (!frozen_) return intern_.size() + (has_empty_ ? 1 : 0);
  if (!frozen_unique_valid_) {
    // No interning table to consult: count distinct {offset,len} handles.
    // Only stats displays ask for this, so O(n log n) on demand is fine.
    const auto off = cs_offset_col();
    const auto len = cs_len_col();
    std::vector<std::pair<u64, u32>> handles;
    handles.reserve(off.size());
    for (size_t i = 0; i < off.size(); ++i) handles.emplace_back(off[i], len[i]);
    std::sort(handles.begin(), handles.end());
    frozen_unique_ = static_cast<size_t>(
        std::unique(handles.begin(), handles.end()) - handles.begin());
    frozen_unique_valid_ = true;
  }
  return frozen_unique_;
}

void EventStore::append_range(const EventStore& other, size_t begin, size_t end) {
  DSP_CHECK(begin <= end && end <= other.size(), "append_range outside source store");
  DSP_CHECK(&other != this, "append_range from self");
  reserve(size() + (end - begin));
  // Worst case every source callstack is new to this arena; reserving the
  // source arena's word count keeps re-interning allocation-free too.
  const auto o_pic = other.pic_col();
  const auto o_event = other.event_col();
  const auto o_weight = other.weight_col();
  const auto o_dpc = other.delivered_pc_col();
  const auto o_flags = other.flags_col();
  const auto o_cpc = other.candidate_pc_col();
  const auto o_ea = other.ea_col();
  const auto o_seq = other.seq_col();
  const auto o_off = other.cs_offset_col();
  const auto o_len = other.cs_len_col();
  const auto o_arena = other.arena();
  arena_.reserve(arena_.size() + o_arena.size());
  for (size_t i = begin; i < end; ++i) {
    append(o_pic[i], static_cast<machine::HwEvent>(o_event[i]), o_weight[i], o_dpc[i],
           (o_flags[i] & kHasCandidate) != 0, o_cpc[i], (o_flags[i] & kHasEa) != 0, o_ea[i],
           o_arena.data() + o_off[i], o_len[i], o_seq[i], other.event_set(i));
  }
}

void EventStore::serialize(ByteWriter& w, bool with_set) const {
  put_pod_column(w, pic_col());
  put_pod_column(w, event_col());
  put_pod_column(w, weight_col());
  put_pod_column(w, delivered_pc_col());
  put_pod_column(w, flags_col());
  put_pod_column(w, candidate_pc_col());
  put_pod_column(w, ea_col());
  put_pod_column(w, seq_col());
  put_pod_column(w, cs_offset_col());
  put_pod_column(w, cs_len_col());
  put_pod_column(w, arena());
  if (with_set) {
    if (set_col().size() == size()) {
      put_pod_column(w, set_col());
    } else {
      // A mapped pre-multiplexing store has no set column: every event
      // belongs to set 0.
      const std::vector<u8> zeros(size(), 0);
      put_pod_column(w, Column<u8>(zeros));
    }
  }
}

void EventStore::remap_slice(size_t begin, size_t end, std::vector<u64>& slice_off,
                             std::vector<u64>& slice_arena) const {
  const size_t n = end - begin;
  const auto src_off = cs_offset_col();
  const auto src_len = cs_len_col();
  const auto src_arena = arena();

  // Remap each referenced arena range into a compact slice arena. Handles
  // repeat heavily (that is the point of interning), so this is one hash
  // probe per event and one memcpy per *unique* stack in the slice. Keyed
  // by source offset; a len mismatch (possible only in hand-built stores
  // where handles overlap) falls through to the collision chain.
  struct Remap {
    u64 dest = 0;
    u32 len = 0;  // 0 = empty slot
  };
  FlatHashU64Map<Remap> remap;
  slice_off.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const u32 len = src_len[begin + i];
    if (len == 0) {
      slice_off[i] = 0;
      continue;
    }
    const u64 off = src_off[begin + i];
    u64 key = mix_u64(off);
    for (;;) {
      Remap& slot = remap[key];
      if (slot.len == 0) {
        slot.dest = slice_arena.size();
        slot.len = len;
        slice_arena.insert(slice_arena.end(), src_arena.data() + off,
                           src_arena.data() + off + len);
        slice_off[i] = slot.dest;
        break;
      }
      if (slot.len == len &&
          std::memcmp(slice_arena.data() + slot.dest, src_arena.data() + off,
                      len * sizeof(u64)) == 0) {
        slice_off[i] = slot.dest;
        break;
      }
      key = mix_u64(key + 0x9e3779b97f4a7c15ULL);
    }
  }
}

void EventStore::serialize_range(ByteWriter& w, size_t begin, size_t end, bool with_set) const {
  DSP_CHECK(begin <= end && end <= size(), "serialize_range outside store");
  const size_t n = end - begin;
  std::vector<u64> slice_off, slice_arena;
  remap_slice(begin, end, slice_off, slice_arena);

  put_pod_column(w, Column<u8>(pic_col().data() + begin, n));
  put_pod_column(w, Column<u8>(event_col().data() + begin, n));
  put_pod_column(w, Column<u64>(weight_col().data() + begin, n));
  put_pod_column(w, Column<u64>(delivered_pc_col().data() + begin, n));
  put_pod_column(w, Column<u8>(flags_col().data() + begin, n));
  put_pod_column(w, Column<u64>(candidate_pc_col().data() + begin, n));
  put_pod_column(w, Column<u64>(ea_col().data() + begin, n));
  put_pod_column(w, Column<u64>(seq_col().data() + begin, n));
  put_pod_column(w, Column<u64>(slice_off));
  put_pod_column(w, Column<u32>(cs_len_col().data() + begin, n));
  put_pod_column(w, Column<u64>(slice_arena));
  if (with_set) {
    if (set_col().size() == size()) {
      put_pod_column(w, Column<u8>(set_col().data() + begin, n));
    } else {
      const std::vector<u8> zeros(n, 0);
      put_pod_column(w, Column<u8>(zeros));
    }
  }
}

void EventStore::serialize_range_aligned(ByteWriter& w, size_t begin, size_t end,
                                         bool with_set) const {
  DSP_CHECK(begin <= end && end <= size(), "serialize_range outside store");
  const size_t n = end - begin;
  std::vector<u64> slice_off, slice_arena;
  remap_slice(begin, end, slice_off, slice_arena);

  put_pod_column_aligned(w, Column<u8>(pic_col().data() + begin, n));
  put_pod_column_aligned(w, Column<u8>(event_col().data() + begin, n));
  put_pod_column_aligned(w, Column<u64>(weight_col().data() + begin, n));
  put_pod_column_aligned(w, Column<u64>(delivered_pc_col().data() + begin, n));
  put_pod_column_aligned(w, Column<u8>(flags_col().data() + begin, n));
  put_pod_column_aligned(w, Column<u64>(candidate_pc_col().data() + begin, n));
  put_pod_column_aligned(w, Column<u64>(ea_col().data() + begin, n));
  put_pod_column_aligned(w, Column<u64>(seq_col().data() + begin, n));
  put_pod_column_aligned(w, Column<u64>(slice_off));
  put_pod_column_aligned(w, Column<u32>(cs_len_col().data() + begin, n));
  put_pod_column_aligned(w, Column<u64>(slice_arena));
  if (with_set) {
    if (set_col().size() == size()) {
      put_pod_column_aligned(w, Column<u8>(set_col().data() + begin, n));
    } else {
      const std::vector<u8> zeros(n, 0);
      put_pod_column_aligned(w, Column<u8>(zeros));
    }
  }
}

void EventStore::serialize_aligned(ByteWriter& w, bool with_set) const {
  put_pod_column_aligned(w, pic_col());
  put_pod_column_aligned(w, event_col());
  put_pod_column_aligned(w, weight_col());
  put_pod_column_aligned(w, delivered_pc_col());
  put_pod_column_aligned(w, flags_col());
  put_pod_column_aligned(w, candidate_pc_col());
  put_pod_column_aligned(w, ea_col());
  put_pod_column_aligned(w, seq_col());
  put_pod_column_aligned(w, cs_offset_col());
  put_pod_column_aligned(w, cs_len_col());
  put_pod_column_aligned(w, arena());
  if (with_set) {
    if (set_col().size() == size()) {
      put_pod_column_aligned(w, set_col());
    } else {
      const std::vector<u8> zeros(size(), 0);
      put_pod_column_aligned(w, Column<u8>(zeros));
    }
  }
}

void EventStore::validate_and_adopt(bool rebuild_intern) {
  const size_t n = pic_.size();
  DSP_CHECK(event_.size() == n && weight_.size() == n && delivered_pc_.size() == n &&
                flags_.size() == n && candidate_pc_.size() == n && ea_.size() == n &&
                seq_.size() == n && cs_offset_.size() == n && cs_len_.size() == n &&
                set_.size() == n,
            "event columns have inconsistent lengths");
  for (size_t i = 0; i < n; ++i) {
    // Overflow-safe form: offset + len can wrap past the arena size.
    DSP_CHECK(cs_offset_[i] <= arena_.size() && cs_len_[i] <= arena_.size() - cs_offset_[i],
              "callstack handle outside arena");
  }
  if (!rebuild_intern) {
    frozen_ = true;
    return;
  }
  // Rebuild the interning table so further appends keep deduplicating.
  for (size_t i = 0; i < n; ++i) {
    if (cs_len_[i] == 0) {
      has_empty_ = true;
      continue;
    }
    const u64* p = arena_.data() + cs_offset_[i];
    u64 key = hash_words(p, cs_len_[i]);
    for (;;) {
      Interned& slot = intern_[key];
      if (slot.len == 0) {
        slot.offset = cs_offset_[i];
        slot.len = cs_len_[i];
        break;
      }
      if (slot.len == cs_len_[i] &&
          std::memcmp(arena_.data() + slot.offset, p, slot.len * sizeof(u64)) == 0) {
        break;
      }
      key = mix_u64(key + 0x9e3779b97f4a7c15ULL);
    }
  }
}

EventStore EventStore::deserialize(ByteReader& r, bool rebuild_intern, bool with_set) {
  EventStore s;
  s.pic_ = get_pod_column<u8>(r);
  s.event_ = get_pod_column<u8>(r);
  s.weight_ = get_pod_column<u64>(r);
  s.delivered_pc_ = get_pod_column<u64>(r);
  s.flags_ = get_pod_column<u8>(r);
  s.candidate_pc_ = get_pod_column<u64>(r);
  s.ea_ = get_pod_column<u64>(r);
  s.seq_ = get_pod_column<u64>(r);
  s.cs_offset_ = get_pod_column<u64>(r);
  s.cs_len_ = get_pod_column<u32>(r);
  s.arena_ = get_pod_column<u64>(r);
  // Pre-multiplexing layouts have no set column: one always-live set 0.
  s.set_ = with_set ? get_pod_column<u8>(r) : std::vector<u8>(s.pic_.size(), 0);
  s.validate_and_adopt(rebuild_intern);
  return s;
}

EventStore EventStore::deserialize_aligned(ByteReader& r, std::shared_ptr<const void> keepalive,
                                           bool with_set) {
  // Parse the column views first (bounds-checked against the reader), then
  // either adopt them zero-copy or deep-copy into owning vectors.
  const Column<u8> pic = view_pod_column_aligned<u8>(r);
  const Column<u8> event = view_pod_column_aligned<u8>(r);
  const Column<u64> weight = view_pod_column_aligned<u64>(r);
  const Column<u64> delivered_pc = view_pod_column_aligned<u64>(r);
  const Column<u8> flags = view_pod_column_aligned<u8>(r);
  const Column<u64> candidate_pc = view_pod_column_aligned<u64>(r);
  const Column<u64> ea = view_pod_column_aligned<u64>(r);
  const Column<u64> seq = view_pod_column_aligned<u64>(r);
  const Column<u64> cs_offset = view_pod_column_aligned<u64>(r);
  const Column<u32> cs_len = view_pod_column_aligned<u32>(r);
  const Column<u64> arena = view_pod_column_aligned<u64>(r);
  const Column<u8> set = with_set ? view_pod_column_aligned<u8>(r) : Column<u8>();
  if (with_set) {
    DSP_CHECK(set.size() == pic.size(), "event columns have inconsistent lengths");
  }

  EventStore s;
  if (keepalive != nullptr) {
    const size_t n = pic.size();
    DSP_CHECK(event.size() == n && weight.size() == n && delivered_pc.size() == n &&
                  flags.size() == n && candidate_pc.size() == n && ea.size() == n &&
                  seq.size() == n && cs_offset.size() == n && cs_len.size() == n,
              "event columns have inconsistent lengths");
    for (size_t i = 0; i < n; ++i) {
      DSP_CHECK(cs_offset[i] <= arena.size() && cs_len[i] <= arena.size() - cs_offset[i],
                "callstack handle outside arena");
    }
    s.mapped_ = true;
    s.frozen_ = true;
    s.mapped_rows_ = n;
    s.m_pic_ = pic;
    s.m_event_ = event;
    s.m_weight_ = weight;
    s.m_delivered_pc_ = delivered_pc;
    s.m_flags_ = flags;
    s.m_candidate_pc_ = candidate_pc;
    s.m_ea_ = ea;
    s.m_seq_ = seq;
    s.m_cs_offset_ = cs_offset;
    s.m_cs_len_ = cs_len;
    s.m_arena_ = arena;
    s.m_set_ = set;  // empty for pre-multiplexing files: event_set() reads 0
    s.mapping_ = std::move(keepalive);
    return s;
  }

  // Stream fallback: copy the views out and build a full owning store.
  s.pic_ = to_vector(pic);
  s.event_ = to_vector(event);
  s.weight_ = to_vector(weight);
  s.delivered_pc_ = to_vector(delivered_pc);
  s.flags_ = to_vector(flags);
  s.candidate_pc_ = to_vector(candidate_pc);
  s.ea_ = to_vector(ea);
  s.seq_ = to_vector(seq);
  s.cs_offset_ = to_vector(cs_offset);
  s.cs_len_ = to_vector(cs_len);
  s.arena_ = to_vector(arena);
  s.set_ = with_set ? to_vector(set) : std::vector<u8>(s.pic_.size(), 0);
  s.validate_and_adopt(/*rebuild_intern=*/true);
  return s;
}

}  // namespace dsprof::experiment
