#include "experiment/event_store.hpp"

#include <cstring>

namespace dsprof::experiment {

namespace {

u64 hash_words(const u64* p, u32 n) {
  // FNV-style fold of splitmix-mixed words; the exact function is internal
  // (never serialized), it only needs to be fast and well distributed.
  u64 h = 0x243f6a8885a308d3ULL ^ n;
  for (u32 i = 0; i < n; ++i) h = mix_u64(h ^ p[i]);
  return h;
}

template <typename T>
void put_pod_column(ByteWriter& w, const std::vector<T>& col) {
  w.put_u64(col.size());
  if (!col.empty()) {
    const auto* p = reinterpret_cast<const u8*>(col.data());
    w.put_blob(p, col.size() * sizeof(T));
  } else {
    w.put_blob(nullptr, 0);
  }
}

template <typename T>
std::vector<T> get_pod_column(ByteReader& r) {
  const u64 n = r.get_u64();
  const std::vector<u8> raw = r.get_blob();
  // Divide instead of multiplying: `n * sizeof(T)` wraps for corrupt counts
  // near 2^64, and allocating `col(n)` before validating would OOM.
  DSP_CHECK(raw.size() % sizeof(T) == 0 && raw.size() / sizeof(T) == n,
            "event column size mismatch");
  std::vector<T> col(static_cast<size_t>(n));
  if (n != 0) std::memcpy(col.data(), raw.data(), raw.size());
  return col;
}

}  // namespace

u64 EventStore::intern(const u64* stack, u32 len) {
  if (len == 0) {
    has_empty_ = true;
    return 0;
  }
  u64 key = hash_words(stack, len);
  // Collision chain: if a hash bucket holds a *different* stack, derive the
  // next probe key deterministically and retry. With 64-bit mixed hashes the
  // chain length is ~1 in practice.
  for (;;) {
    Interned& slot = intern_[key];
    if (slot.len == 0) {
      // Fresh: copy the stack into the arena.
      slot.offset = arena_.size();
      slot.len = len;
      arena_.insert(arena_.end(), stack, stack + len);
      return slot.offset;
    }
    if (slot.len == len &&
        std::memcmp(arena_.data() + slot.offset, stack, len * sizeof(u64)) == 0) {
      return slot.offset;  // already interned
    }
    key = mix_u64(key + 0x9e3779b97f4a7c15ULL);
  }
}

void EventStore::append(u8 pic, machine::HwEvent event, u64 weight, u64 delivered_pc,
                        bool has_candidate, u64 candidate_pc, bool has_ea, u64 ea,
                        const u64* stack, size_t stack_len, u64 seq) {
  const u64 off = intern(stack, static_cast<u32>(stack_len));
  pic_.push_back(pic);
  event_.push_back(static_cast<u8>(event));
  weight_.push_back(weight);
  delivered_pc_.push_back(delivered_pc);
  flags_.push_back(static_cast<u8>((has_candidate ? kHasCandidate : 0) | (has_ea ? kHasEa : 0)));
  candidate_pc_.push_back(candidate_pc);
  ea_.push_back(ea);
  seq_.push_back(seq);
  cs_offset_.push_back(off);
  cs_len_.push_back(static_cast<u32>(stack_len));
}

void EventStore::reserve(size_t n) {
  pic_.reserve(n);
  event_.reserve(n);
  weight_.reserve(n);
  delivered_pc_.reserve(n);
  flags_.reserve(n);
  candidate_pc_.reserve(n);
  ea_.reserve(n);
  seq_.reserve(n);
  cs_offset_.reserve(n);
  cs_len_.reserve(n);
}

void EventStore::clear() {
  pic_.clear();
  event_.clear();
  weight_.clear();
  delivered_pc_.clear();
  flags_.clear();
  candidate_pc_.clear();
  ea_.clear();
  seq_.clear();
  cs_offset_.clear();
  cs_len_.clear();
  arena_.clear();
  intern_.clear();
  has_empty_ = false;
}

void EventStore::append_range(const EventStore& other, size_t begin, size_t end) {
  DSP_CHECK(begin <= end && end <= other.size(), "append_range outside source store");
  DSP_CHECK(&other != this, "append_range from self");
  reserve(size() + (end - begin));
  // Worst case every source callstack is new to this arena; reserving the
  // source arena's word count keeps re-interning allocation-free too.
  arena_.reserve(arena_.size() + other.arena_.size());
  for (size_t i = begin; i < end; ++i) {
    append(other.pic_[i], static_cast<machine::HwEvent>(other.event_[i]), other.weight_[i],
           other.delivered_pc_[i], (other.flags_[i] & kHasCandidate) != 0,
           other.candidate_pc_[i], (other.flags_[i] & kHasEa) != 0, other.ea_[i],
           other.arena_.data() + other.cs_offset_[i], other.cs_len_[i], other.seq_[i]);
  }
}

void EventStore::serialize(ByteWriter& w) const {
  put_pod_column(w, pic_);
  put_pod_column(w, event_);
  put_pod_column(w, weight_);
  put_pod_column(w, delivered_pc_);
  put_pod_column(w, flags_);
  put_pod_column(w, candidate_pc_);
  put_pod_column(w, ea_);
  put_pod_column(w, seq_);
  put_pod_column(w, cs_offset_);
  put_pod_column(w, cs_len_);
  put_pod_column(w, arena_);
}

EventStore EventStore::deserialize(ByteReader& r) {
  EventStore s;
  s.pic_ = get_pod_column<u8>(r);
  s.event_ = get_pod_column<u8>(r);
  s.weight_ = get_pod_column<u64>(r);
  s.delivered_pc_ = get_pod_column<u64>(r);
  s.flags_ = get_pod_column<u8>(r);
  s.candidate_pc_ = get_pod_column<u64>(r);
  s.ea_ = get_pod_column<u64>(r);
  s.seq_ = get_pod_column<u64>(r);
  s.cs_offset_ = get_pod_column<u64>(r);
  s.cs_len_ = get_pod_column<u32>(r);
  s.arena_ = get_pod_column<u64>(r);
  const size_t n = s.pic_.size();
  DSP_CHECK(s.event_.size() == n && s.weight_.size() == n && s.delivered_pc_.size() == n &&
                s.flags_.size() == n && s.candidate_pc_.size() == n && s.ea_.size() == n &&
                s.seq_.size() == n && s.cs_offset_.size() == n && s.cs_len_.size() == n,
            "event columns have inconsistent lengths");
  for (size_t i = 0; i < n; ++i) {
    // Overflow-safe form: offset + len can wrap past the arena size.
    DSP_CHECK(s.cs_offset_[i] <= s.arena_.size() &&
                  s.cs_len_[i] <= s.arena_.size() - s.cs_offset_[i],
              "callstack handle outside arena");
  }
  // Rebuild the interning table so further appends keep deduplicating.
  for (size_t i = 0; i < n; ++i) {
    if (s.cs_len_[i] == 0) {
      s.has_empty_ = true;
      continue;
    }
    const u64* p = s.arena_.data() + s.cs_offset_[i];
    u64 key = hash_words(p, s.cs_len_[i]);
    for (;;) {
      Interned& slot = s.intern_[key];
      if (slot.len == 0) {
        slot.offset = s.cs_offset_[i];
        slot.len = s.cs_len_[i];
        break;
      }
      if (slot.len == s.cs_len_[i] &&
          std::memcmp(s.arena_.data() + slot.offset, p, slot.len * sizeof(u64)) == 0) {
        break;
      }
      key = mix_u64(key + 0x9e3779b97f4a7c15ULL);
    }
  }
  return s;
}

}  // namespace dsprof::experiment
