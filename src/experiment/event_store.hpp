// Columnar (struct-of-arrays) storage for profile events.
//
// The seed kept a std::vector<EventRecord> where every event owned a
// heap-allocated callstack vector — at 10^5-10^6 events per run that is an
// allocation per event on the collection hot path and a pointer chase per
// event in every reduction. The EventStore instead keeps one column per
// field and interns callstacks into a single flat arena: identical stacks
// (the common case — a hot loop delivers thousands of events from the same
// call chain) are stored once and addressed by {offset,len} handles.
//
// Storage comes in two flavors behind one interface (Column<T> views):
//
//   owning   the default: std::vector columns + a live interning table.
//            Append-only; after warm-up, appending an event performs no
//            heap allocation beyond amortized column growth.
//   mapped   zero-copy views into a read-only file mapping (the DSPG
//            aligned on-disk layout, experiment.hpp). Columns are read
//            straight from the page cache; the store holds the mapping
//            alive via shared_ptr. Mapped stores are frozen: append()
//            is an error, reduction and serialization work unchanged.
//
// A store deserialized with rebuild_intern=false (the dsprofd batch decode
// path, which only folds and discards) is owning but also frozen — it skips
// the O(events) interning-table rebuild that appending would need.
#pragma once

#include <memory>
#include <vector>

#include "machine/counters.hpp"
#include "support/bytestream.hpp"
#include "support/flat_hash.hpp"
#include "support/mmap_file.hpp"

namespace dsprof::experiment {

/// Non-owning typed view of one column: either a window over an owning
/// std::vector or a slice of a read-only file mapping. Valid as long as the
/// owning EventStore is alive (and, for owning stores, un-appended).
template <typename T>
class Column {
 public:
  Column() = default;
  Column(const T* p, size_t n) : ptr_(p), n_(n) {}
  explicit Column(const std::vector<T>& v) : ptr_(v.data()), n_(v.size()) {}

  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  const T& operator[](size_t i) const { return ptr_[i]; }
  const T* data() const { return ptr_; }
  const T* begin() const { return ptr_; }
  const T* end() const { return ptr_ + n_; }

 private:
  const T* ptr_ = nullptr;
  size_t n_ = 0;
};

/// Non-owning view of an interned callstack (call-site PCs, outermost
/// first). Valid as long as the owning EventStore is alive and un-moved.
struct CallstackRef {
  const u64* ptr = nullptr;
  u32 len = 0;

  const u64* begin() const { return ptr; }
  const u64* end() const { return ptr + len; }
  size_t size() const { return len; }
  bool empty() const { return len == 0; }
  u64 operator[](size_t i) const { return ptr[i]; }

  std::vector<u64> to_vector() const { return std::vector<u64>(ptr, ptr + len); }

  friend bool operator==(const CallstackRef& a, const CallstackRef& b) {
    if (a.len != b.len) return false;
    for (u32 i = 0; i < a.len; ++i) {
      if (a.ptr[i] != b.ptr[i]) return false;
    }
    return true;
  }
  friend bool operator==(const CallstackRef& a, const std::vector<u64>& b) {
    return a == CallstackRef{b.data(), static_cast<u32>(b.size())};
  }
  friend bool operator==(const std::vector<u64>& a, const CallstackRef& b) { return b == a; }
};

/// One recorded profile event, materialized from the columns. Contains only
/// information available at collection time on real hardware: the skidded
/// delivered PC, the backtracked candidate trigger PC (if any), and the
/// recomputed effective address (if the address registers survived the
/// skid). Field-compatible with the seed's EventRecord.
struct EventView {
  u8 pic = 0;  // 0/1, or machine::kClockPic for clock-profile samples
  machine::HwEvent event = machine::HwEvent::Cycle_cnt;
  u64 weight = 0;  // overflow interval: estimated events per sample
  u64 delivered_pc = 0;
  bool has_candidate = false;
  u64 candidate_pc = 0;
  bool has_ea = false;
  u64 ea = 0;
  CallstackRef callstack;  // call-site PCs at delivery, outermost first
  u64 seq = 0;             // joins with the machine's ground-truth log
  u8 set = 0;              // multiplexed counter set the event belongs to
};

class EventStore {
 public:
  static constexpr u8 kHasCandidate = 1;
  static constexpr u8 kHasEa = 2;

  size_t size() const { return mapped_ ? mapped_rows_ : pic_.size(); }
  bool empty() const { return size() == 0; }

  /// True for zero-copy stores over a file mapping.
  bool is_mapped() const { return mapped_; }
  /// True when the store cannot accept appends: mapped stores, and stores
  /// deserialized without an interning table (the fold-and-discard path).
  bool is_frozen() const { return frozen_; }

  /// Append one event; the callstack words are interned into the arena.
  /// No per-event allocation once columns/arena capacity has warmed up
  /// (growth is amortized). Error on a frozen store. `set` is the
  /// multiplexed counter set the event was recorded under (0 when the run
  /// does not multiplex).
  void append(u8 pic, machine::HwEvent event, u64 weight, u64 delivered_pc, bool has_candidate,
              u64 candidate_pc, bool has_ea, u64 ea, const u64* stack, size_t stack_len, u64 seq,
              u8 set = 0);

  EventView operator[](size_t i) const {
    EventView v;
    v.pic = pic_col()[i];
    v.event = static_cast<machine::HwEvent>(event_col()[i]);
    v.weight = weight_col()[i];
    v.delivered_pc = delivered_pc_col()[i];
    v.has_candidate = (flags_col()[i] & kHasCandidate) != 0;
    v.candidate_pc = candidate_pc_col()[i];
    v.has_ea = (flags_col()[i] & kHasEa) != 0;
    v.ea = ea_col()[i];
    v.callstack = callstack(i);
    v.seq = seq_col()[i];
    v.set = event_set(i);
    return v;
  }

  /// Counter set of event `i`. Stores loaded from pre-multiplexing files
  /// have no set column and report 0 for every event (one always-live set).
  u8 event_set(size_t i) const {
    const Column<u8> s = set_col();
    return i < s.size() ? s[i] : 0;
  }

  CallstackRef callstack(size_t i) const {
    return CallstackRef{arena().data() + cs_offset_col()[i], cs_len_col()[i]};
  }

  // --- raw columns (reduction engine / serializer) --------------------------
  // Views into whichever storage backs the store; cheap to construct, so hot
  // loops should still hoist .data() out of the loop.
  Column<u8> pic_col() const { return mapped_ ? m_pic_ : Column<u8>(pic_); }
  Column<u8> event_col() const { return mapped_ ? m_event_ : Column<u8>(event_); }
  Column<u64> weight_col() const { return mapped_ ? m_weight_ : Column<u64>(weight_); }
  Column<u64> delivered_pc_col() const {
    return mapped_ ? m_delivered_pc_ : Column<u64>(delivered_pc_);
  }
  Column<u8> flags_col() const { return mapped_ ? m_flags_ : Column<u8>(flags_); }
  Column<u64> candidate_pc_col() const {
    return mapped_ ? m_candidate_pc_ : Column<u64>(candidate_pc_);
  }
  Column<u64> ea_col() const { return mapped_ ? m_ea_ : Column<u64>(ea_); }
  Column<u64> seq_col() const { return mapped_ ? m_seq_ : Column<u64>(seq_); }
  Column<u64> cs_offset_col() const { return mapped_ ? m_cs_offset_ : Column<u64>(cs_offset_); }
  Column<u32> cs_len_col() const { return mapped_ ? m_cs_len_ : Column<u32>(cs_len_); }
  Column<u64> arena() const { return mapped_ ? m_arena_ : Column<u64>(arena_); }
  /// Counter-set column. Empty (not size()-long) for mapped stores loaded
  /// from pre-multiplexing files — use event_set() for a safe per-event read.
  Column<u8> set_col() const { return mapped_ ? m_set_ : Column<u8>(set_); }

  /// Number of distinct interned callstacks (arena dedup effectiveness).
  /// For frozen stores (no interning table) this is computed on first call
  /// by scanning the handle columns.
  size_t unique_callstacks() const;
  size_t arena_words() const { return arena().size(); }

  void reserve(size_t n);
  void clear();

  /// Bulk-append events [begin, end) of `other` (callstacks re-interned
  /// into this store's arena). Reserves up front, so the batch paths —
  /// collect's batch export, the dsprofd wire codec, bench replay — pay
  /// amortized column growth once instead of per event. `other` may be
  /// mapped or frozen; `this` must not be.
  void append_range(const EventStore& other, size_t begin, size_t end);
  void append_store(const EventStore& other) { append_range(other, 0, other.size()); }

  // --- iteration ------------------------------------------------------------
  class const_iterator {
   public:
    using value_type = EventView;
    using difference_type = std::ptrdiff_t;

    const_iterator(const EventStore* s, size_t i) : s_(s), i_(i) {}
    EventView operator*() const { return (*s_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator t = *this;
      ++i_;
      return t;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }
    difference_type operator-(const const_iterator& o) const {
      return static_cast<difference_type>(i_) - static_cast<difference_type>(o.i_);
    }

   private:
    const EventStore* s_;
    size_t i_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size()); }

  // Every serializer/deserializer takes `with_set`: true appends the
  // counter-set column after the arena (multiplexed on-disk revisions, and
  // always on the v4 wire), false writes/reads the pre-multiplexing layout
  // byte for byte (a store with no set column loads with every set = 0).

  /// Serialize the columns + arena (the "DSPF" unaligned events layout;
  /// with_set = the "DSPI" multiplexed revision).
  void serialize(ByteWriter& w, bool with_set = false) const;

  /// Serialize events [begin, end) as a self-contained store in the same
  /// layout serialize() writes: only the arena ranges the slice references
  /// are emitted (each once), with handles remapped. This is the wire batch
  /// encoder's fast path — one hash probe per event to remap the handle,
  /// no per-event word hashing as append_range + serialize would pay.
  void serialize_range(ByteWriter& w, size_t begin, size_t end, bool with_set = false) const;

  /// Serialize with every column's payload padded to an 8-byte file offset
  /// (the "DSPG" aligned layout, zero-copy mappable; with_set = "DSPJ").
  /// `w` must hold the whole file from offset 0 for the alignment to be
  /// meaningful on disk.
  void serialize_aligned(ByteWriter& w, bool with_set = false) const;

  /// serialize_range's remap-the-arena slice encoding, in the aligned
  /// layout: the wire batch encoder writes this so the receiver can fold
  /// straight out of the frame payload without copying a column.
  void serialize_range_aligned(ByteWriter& w, size_t begin, size_t end,
                               bool with_set = false) const;

  /// Read the serialize() layout back into an owning store. With
  /// rebuild_intern=false the interning table is not rebuilt: the store is
  /// frozen (fold/serialize fine, append an error) and deserialization
  /// skips an O(events) hashing pass — the dsprofd batch decode path.
  static EventStore deserialize(ByteReader& r, bool rebuild_intern = true,
                                bool with_set = false);

  /// Read the serialize_aligned() layout. With a non-null `keepalive` whose
  /// bytes back `r` (a file mapping, a wire frame payload, ...), the result
  /// is a zero-copy mapped store holding that storage alive; with
  /// keepalive == nullptr the columns are copied into an owning store (the
  /// stream fallback, DSPROF_MMAP=0).
  static EventStore deserialize_aligned(ByteReader& r, std::shared_ptr<const void> keepalive,
                                        bool with_set = false);

 private:
  /// Intern `stack` into the arena, returning its offset. Identical stacks
  /// share one arena range.
  u64 intern(const u64* stack, u32 len);

  /// Validate column-length agreement and every callstack handle, then
  /// (optionally) rebuild the interning table. Shared by every loader.
  void validate_and_adopt(bool rebuild_intern);

  /// The serialize_range slice encoding: remap each referenced arena range
  /// of [begin, end) into a compact slice arena (one hash probe per event,
  /// one memcpy per unique stack). Shared by both range serializers.
  void remap_slice(size_t begin, size_t end, std::vector<u64>& slice_off,
                   std::vector<u64>& slice_arena) const;

  // Per-event columns, all size() long (owning storage).
  std::vector<u8> pic_;
  std::vector<u8> event_;
  std::vector<u64> weight_;
  std::vector<u64> delivered_pc_;
  std::vector<u8> flags_;
  std::vector<u64> candidate_pc_;
  std::vector<u64> ea_;
  std::vector<u64> seq_;
  std::vector<u64> cs_offset_;  // into arena_
  std::vector<u32> cs_len_;
  std::vector<u8> set_;         // multiplexed counter set per event

  std::vector<u64> arena_;  // concatenated unique callstacks

  // Mapped storage: views into `mapping_` (all mapped_rows_ long, except
  // m_set_ which stays empty for pre-multiplexing files).
  bool mapped_ = false;
  size_t mapped_rows_ = 0;
  Column<u8> m_pic_, m_event_, m_flags_, m_set_;
  Column<u64> m_weight_, m_delivered_pc_, m_candidate_pc_, m_ea_, m_seq_, m_cs_offset_;
  Column<u32> m_cs_len_;
  Column<u64> m_arena_;
  std::shared_ptr<const void> mapping_;  // file mapping or frame payload

  // Interning table: hash of stack words -> arena {offset,len} candidates.
  struct Interned {
    u64 offset;
    u32 len;
  };
  FlatHashU64Map<Interned> intern_;
  bool has_empty_ = false;  // an empty callstack has been appended
  bool frozen_ = false;     // no interning table: append() is an error

  // unique_callstacks() cache for frozen stores (computed on demand).
  mutable size_t frozen_unique_ = 0;
  mutable bool frozen_unique_valid_ = false;
};

}  // namespace dsprof::experiment
