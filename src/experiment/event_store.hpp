// Columnar (struct-of-arrays) storage for profile events.
//
// The seed kept a std::vector<EventRecord> where every event owned a
// heap-allocated callstack vector — at 10^5-10^6 events per run that is an
// allocation per event on the collection hot path and a pointer chase per
// event in every reduction. The EventStore instead keeps one column per
// field and interns callstacks into a single flat arena: identical stacks
// (the common case — a hot loop delivers thousands of events from the same
// call chain) are stored once and addressed by {offset,len} handles.
//
// The store is append-only. After warm-up, appending an event performs no
// heap allocation beyond amortized column growth; interning an already-seen
// callstack is a hash probe plus one memcmp.
#pragma once

#include <vector>

#include "machine/counters.hpp"
#include "support/bytestream.hpp"
#include "support/flat_hash.hpp"

namespace dsprof::experiment {

/// Non-owning view of an interned callstack (call-site PCs, outermost
/// first). Valid as long as the owning EventStore is alive and un-moved.
struct CallstackRef {
  const u64* ptr = nullptr;
  u32 len = 0;

  const u64* begin() const { return ptr; }
  const u64* end() const { return ptr + len; }
  size_t size() const { return len; }
  bool empty() const { return len == 0; }
  u64 operator[](size_t i) const { return ptr[i]; }

  std::vector<u64> to_vector() const { return std::vector<u64>(ptr, ptr + len); }

  friend bool operator==(const CallstackRef& a, const CallstackRef& b) {
    if (a.len != b.len) return false;
    for (u32 i = 0; i < a.len; ++i) {
      if (a.ptr[i] != b.ptr[i]) return false;
    }
    return true;
  }
  friend bool operator==(const CallstackRef& a, const std::vector<u64>& b) {
    return a == CallstackRef{b.data(), static_cast<u32>(b.size())};
  }
  friend bool operator==(const std::vector<u64>& a, const CallstackRef& b) { return b == a; }
};

/// One recorded profile event, materialized from the columns. Contains only
/// information available at collection time on real hardware: the skidded
/// delivered PC, the backtracked candidate trigger PC (if any), and the
/// recomputed effective address (if the address registers survived the
/// skid). Field-compatible with the seed's EventRecord.
struct EventView {
  u8 pic = 0;  // 0/1, or machine::kClockPic for clock-profile samples
  machine::HwEvent event = machine::HwEvent::Cycle_cnt;
  u64 weight = 0;  // overflow interval: estimated events per sample
  u64 delivered_pc = 0;
  bool has_candidate = false;
  u64 candidate_pc = 0;
  bool has_ea = false;
  u64 ea = 0;
  CallstackRef callstack;  // call-site PCs at delivery, outermost first
  u64 seq = 0;             // joins with the machine's ground-truth log
};

class EventStore {
 public:
  static constexpr u8 kHasCandidate = 1;
  static constexpr u8 kHasEa = 2;

  size_t size() const { return pic_.size(); }
  bool empty() const { return pic_.empty(); }

  /// Append one event; the callstack words are interned into the arena.
  /// No per-event allocation once columns/arena capacity has warmed up
  /// (growth is amortized).
  void append(u8 pic, machine::HwEvent event, u64 weight, u64 delivered_pc, bool has_candidate,
              u64 candidate_pc, bool has_ea, u64 ea, const u64* stack, size_t stack_len, u64 seq);

  EventView operator[](size_t i) const {
    EventView v;
    v.pic = pic_[i];
    v.event = static_cast<machine::HwEvent>(event_[i]);
    v.weight = weight_[i];
    v.delivered_pc = delivered_pc_[i];
    v.has_candidate = (flags_[i] & kHasCandidate) != 0;
    v.candidate_pc = candidate_pc_[i];
    v.has_ea = (flags_[i] & kHasEa) != 0;
    v.ea = ea_[i];
    v.callstack = callstack(i);
    v.seq = seq_[i];
    return v;
  }

  CallstackRef callstack(size_t i) const {
    return CallstackRef{arena_.data() + cs_offset_[i], cs_len_[i]};
  }

  // --- raw columns (reduction engine / serializer) --------------------------
  const std::vector<u8>& pic_col() const { return pic_; }
  const std::vector<u8>& event_col() const { return event_; }
  const std::vector<u64>& weight_col() const { return weight_; }
  const std::vector<u64>& delivered_pc_col() const { return delivered_pc_; }
  const std::vector<u8>& flags_col() const { return flags_; }
  const std::vector<u64>& candidate_pc_col() const { return candidate_pc_; }
  const std::vector<u64>& ea_col() const { return ea_; }
  const std::vector<u64>& seq_col() const { return seq_; }
  const std::vector<u64>& cs_offset_col() const { return cs_offset_; }
  const std::vector<u32>& cs_len_col() const { return cs_len_; }
  const std::vector<u64>& arena() const { return arena_; }

  /// Number of distinct interned callstacks (arena dedup effectiveness).
  size_t unique_callstacks() const { return intern_.size() + (has_empty_ ? 1 : 0); }
  size_t arena_words() const { return arena_.size(); }

  void reserve(size_t n);
  void clear();

  /// Bulk-append events [begin, end) of `other` (callstacks re-interned
  /// into this store's arena). Reserves up front, so the batch paths —
  /// collect's batch export, the dsprofd wire codec, bench replay — pay
  /// amortized column growth once instead of per event.
  void append_range(const EventStore& other, size_t begin, size_t end);
  void append_store(const EventStore& other) { append_range(other, 0, other.size()); }

  // --- iteration ------------------------------------------------------------
  class const_iterator {
   public:
    using value_type = EventView;
    using difference_type = std::ptrdiff_t;

    const_iterator(const EventStore* s, size_t i) : s_(s), i_(i) {}
    EventView operator*() const { return (*s_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator t = *this;
      ++i_;
      return t;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }
    difference_type operator-(const const_iterator& o) const {
      return static_cast<difference_type>(i_) - static_cast<difference_type>(o.i_);
    }

   private:
    const EventStore* s_;
    size_t i_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size()); }

  /// Serialize the columns + arena (the v2 "DSP2" events layout).
  void serialize(ByteWriter& w) const;
  static EventStore deserialize(ByteReader& r);

 private:
  /// Intern `stack` into the arena, returning its offset. Identical stacks
  /// share one arena range.
  u64 intern(const u64* stack, u32 len);

  // Per-event columns, all size() long.
  std::vector<u8> pic_;
  std::vector<u8> event_;
  std::vector<u64> weight_;
  std::vector<u64> delivered_pc_;
  std::vector<u8> flags_;
  std::vector<u64> candidate_pc_;
  std::vector<u64> ea_;
  std::vector<u64> seq_;
  std::vector<u64> cs_offset_;  // into arena_
  std::vector<u32> cs_len_;

  std::vector<u64> arena_;  // concatenated unique callstacks

  // Interning table: hash of stack words -> arena {offset,len} candidates.
  struct Interned {
    u64 offset;
    u32 len;
  };
  FlatHashU64Map<Interned> intern_;
  bool has_empty_ = false;  // an empty callstack has been appended
};

}  // namespace dsprof::experiment
