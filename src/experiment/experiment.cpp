#include "experiment/experiment.hpp"

#include <filesystem>

namespace dsprof::experiment {

namespace {

void put_counter(ByteWriter& w, const CounterSpec& c) {
  w.put_u8(static_cast<u8>(c.event));
  w.put_u64(c.interval);
  w.put_u8(c.backtrack ? 1 : 0);
  w.put_u8(static_cast<u8>(c.pic));
}

CounterSpec get_counter(ByteReader& r) {
  CounterSpec c;
  c.event = static_cast<machine::HwEvent>(r.get_u8());
  c.interval = r.get_u64();
  c.backtrack = r.get_u8() != 0;
  c.pic = r.get_u8();
  return c;
}

}  // namespace

void Experiment::save(const std::string& dir) const {
  std::filesystem::create_directories(dir);

  write_file(dir + "/log.txt", std::vector<u8>(log.begin(), log.end()));

  ByteWriter lo;
  image.serialize(lo);
  write_file(dir + "/loadobjects.bin", lo.bytes());

  ByteWriter w;
  w.put_u32(0x44535045);  // 'DSPE'
  w.put_u32(static_cast<u32>(counters.size()));
  for (const auto& c : counters) put_counter(w, c);
  w.put_u64(clock_interval);
  w.put_u64(clock_hz);
  w.put_u64(page_size);
  w.put_u64(ec_line_size);
  w.put_u64(total_cycles);
  w.put_u64(total_instructions);
  w.put_u32(static_cast<u32>(events.size()));
  for (const auto& e : events) {
    w.put_u8(e.pic);
    w.put_u8(static_cast<u8>(e.event));
    w.put_u64(e.weight);
    w.put_u64(e.delivered_pc);
    w.put_u8(static_cast<u8>((e.has_candidate ? 1 : 0) | (e.has_ea ? 2 : 0)));
    w.put_u64(e.candidate_pc);
    w.put_u64(e.ea);
    w.put_u32(static_cast<u32>(e.callstack.size()));
    for (u64 pc : e.callstack) w.put_u64(pc);
    w.put_u64(e.seq);
  }
  w.put_u32(static_cast<u32>(allocations.size()));
  for (const auto& [addr, size] : allocations) {
    w.put_u64(addr);
    w.put_u64(size);
  }
  w.put_u32(static_cast<u32>(truth.size()));
  for (const auto& t : truth) {
    w.put_u64(t.seq);
    w.put_u8(static_cast<u8>(t.pic));
    w.put_u8(static_cast<u8>(t.event));
    w.put_u64(t.trigger_pc);
    w.put_u8(t.ea_valid ? 1 : 0);
    w.put_u64(t.ea);
    w.put_u32(t.skid);
  }
  write_file(dir + "/events.bin", w.bytes());
}

Experiment Experiment::load(const std::string& dir) {
  Experiment ex;

  const auto logbytes = read_file(dir + "/log.txt");
  ex.log.assign(logbytes.begin(), logbytes.end());

  const auto lobytes = read_file(dir + "/loadobjects.bin");
  ByteReader lr(lobytes);
  ex.image = sym::Image::deserialize(lr);

  const auto evbytes = read_file(dir + "/events.bin");
  ByteReader r(evbytes);
  DSP_CHECK(r.get_u32() == 0x44535045, "bad experiment magic in " + dir);
  const u32 nc = r.get_u32();
  for (u32 i = 0; i < nc; ++i) ex.counters.push_back(get_counter(r));
  ex.clock_interval = r.get_u64();
  ex.clock_hz = r.get_u64();
  ex.page_size = r.get_u64();
  ex.ec_line_size = r.get_u64();
  ex.total_cycles = r.get_u64();
  ex.total_instructions = r.get_u64();
  const u32 ne = r.get_u32();
  for (u32 i = 0; i < ne; ++i) {
    EventRecord e;
    e.pic = r.get_u8();
    e.event = static_cast<machine::HwEvent>(r.get_u8());
    e.weight = r.get_u64();
    e.delivered_pc = r.get_u64();
    const u8 flags = r.get_u8();
    e.has_candidate = flags & 1;
    e.has_ea = flags & 2;
    e.candidate_pc = r.get_u64();
    e.ea = r.get_u64();
    const u32 depth = r.get_u32();
    e.callstack.reserve(depth);
    for (u32 d = 0; d < depth; ++d) e.callstack.push_back(r.get_u64());
    e.seq = r.get_u64();
    ex.events.push_back(std::move(e));
  }
  const u32 na = r.get_u32();
  for (u32 i = 0; i < na; ++i) {
    const u64 addr = r.get_u64();
    const u64 size = r.get_u64();
    ex.allocations.emplace_back(addr, size);
  }
  const u32 nt = r.get_u32();
  for (u32 i = 0; i < nt; ++i) {
    machine::TruthRecord t;
    t.seq = r.get_u64();
    t.pic = r.get_u8();
    t.event = static_cast<machine::HwEvent>(r.get_u8());
    t.trigger_pc = r.get_u64();
    t.ea_valid = r.get_u8() != 0;
    t.ea = r.get_u64();
    t.skid = r.get_u32();
    ex.truth.push_back(t);
  }
  return ex;
}

}  // namespace dsprof::experiment
