#include "experiment/experiment.hpp"

#include <cstdlib>
#include <filesystem>

#include "support/mmap_file.hpp"

namespace dsprof::experiment {

namespace {

constexpr u32 kMagicLegacy = 0x44535045;    // 'DSPE' — seed row layout
constexpr u32 kMagicColumnar = 0x44535046;  // 'DSPF' — columnar layout
constexpr u32 kMagicAligned = 0x44535047;   // 'DSPG' — aligned columnar, mmap-able
// Multiplexed siblings: same layouts plus counter-set ids and a slice table.
constexpr u32 kMagicLegacyMpx = 0x44535048;    // 'DSPH'
constexpr u32 kMagicColumnarMpx = 0x44535049;  // 'DSPI'
constexpr u32 kMagicAlignedMpx = 0x4453504A;   // 'DSPJ'

/// DSPROF_MMAP=0 turns the zero-copy loader off; anything else (including
/// unset) leaves it on for "DSPG" files.
bool mmap_enabled() {
  const char* env = std::getenv("DSPROF_MMAP");
  return env == nullptr || std::string(env) != "0";
}

void put_counter(ByteWriter& w, const CounterSpec& c, bool mpx) {
  w.put_u8(static_cast<u8>(c.event));
  w.put_u64(c.interval);
  w.put_u8(c.backtrack ? 1 : 0);
  w.put_u8(static_cast<u8>(c.pic));
  if (mpx) w.put_u8(static_cast<u8>(c.set));
}

CounterSpec get_counter(ByteReader& r, bool mpx) {
  CounterSpec c;
  c.event = static_cast<machine::HwEvent>(r.get_u8());
  c.interval = r.get_u64();
  c.backtrack = r.get_u8() != 0;
  c.pic = r.get_u8();
  if (mpx) c.set = r.get_u8();
  return c;
}

void put_header(ByteWriter& w, const Experiment& ex, bool mpx) {
  w.put_u32(static_cast<u32>(ex.counters.size()));
  for (const auto& c : ex.counters) put_counter(w, c, mpx);
  w.put_u64(ex.clock_interval);
  w.put_u64(ex.clock_hz);
  w.put_u64(ex.page_size);
  w.put_u64(ex.ec_line_size);
  w.put_u64(ex.total_cycles);
  w.put_u64(ex.total_instructions);
  if (mpx) {
    // Slice table: per-set live cycles + switch counts.
    w.put_u32(static_cast<u32>(ex.slices.size()));
    for (const auto& s : ex.slices) {
      w.put_u64(s.live_cycles);
      w.put_u64(s.switches);
    }
  }
}

void get_header(ByteReader& r, Experiment& ex, bool mpx) {
  const u32 nc = r.get_u32();
  // Pre-multiplexing layouts record at most one counter per PIC register; a
  // multiplexed run at most one per event type. A larger count means the
  // header is corrupt (and must not drive allocation).
  const u32 max_counters = mpx ? static_cast<u32>(machine::kNumHwEvents) : machine::kNumPics;
  DSP_CHECK(nc <= max_counters,
            "implausible counter count " + std::to_string(nc) + " in header");
  for (u32 i = 0; i < nc; ++i) ex.counters.push_back(get_counter(r, mpx));
  ex.clock_interval = r.get_u64();
  ex.clock_hz = r.get_u64();
  ex.page_size = r.get_u64();
  ex.ec_line_size = r.get_u64();
  ex.total_cycles = r.get_u64();
  ex.total_instructions = r.get_u64();
  if (mpx) {
    const u32 ns = r.get_u32();
    // Sets partition the counters, so there can never be more sets than
    // counters were recorded.
    DSP_CHECK(ns <= nc, "implausible slice-table set count " + std::to_string(ns) +
                            " in header (only " + std::to_string(nc) + " counters)");
    for (u32 i = 0; i < ns; ++i) {
      SliceInfo s;
      s.live_cycles = r.get_u64();
      s.switches = r.get_u64();
      ex.slices.push_back(s);
    }
    for (const auto& c : ex.counters) {
      DSP_CHECK(c.set < ex.slices.size(),
                "counter set id " + std::to_string(c.set) + " outside the " +
                    std::to_string(ex.slices.size()) + "-entry slice table");
    }
  }
}

// Older layouts ("DSPE"/"DSPF") carry (addr, size) allocation pairs; the
// "DSPG" trailer adds the allocation site PC so reports can name instances.
void put_trailer(ByteWriter& w, const Experiment& ex, bool with_site) {
  w.put_u32(static_cast<u32>(ex.allocations.size()));
  for (const auto& a : ex.allocations) {
    w.put_u64(a.addr);
    w.put_u64(a.size);
    if (with_site) w.put_u64(a.site_pc);
  }
  w.put_u32(static_cast<u32>(ex.truth.size()));
  for (const auto& t : ex.truth) {
    w.put_u64(t.seq);
    w.put_u8(static_cast<u8>(t.pic));
    w.put_u8(static_cast<u8>(t.event));
    w.put_u64(t.trigger_pc);
    w.put_u8(t.ea_valid ? 1 : 0);
    w.put_u64(t.ea);
    w.put_u32(t.skid);
  }
}

void get_trailer(ByteReader& r, Experiment& ex, bool with_site) {
  const u32 na = r.get_u32();
  for (u32 i = 0; i < na; ++i) {
    machine::AllocRecord a;
    a.addr = r.get_u64();
    a.size = r.get_u64();
    if (with_site) a.site_pc = r.get_u64();
    ex.allocations.push_back(a);
  }
  const u32 nt = r.get_u32();
  for (u32 i = 0; i < nt; ++i) {
    machine::TruthRecord t;
    t.seq = r.get_u64();
    t.pic = r.get_u8();
    t.event = static_cast<machine::HwEvent>(r.get_u8());
    t.trigger_pc = r.get_u64();
    t.ea_valid = r.get_u8() != 0;
    t.ea = r.get_u64();
    t.skid = r.get_u32();
    ex.truth.push_back(t);
  }
}

/// The seed's row-oriented event section (one record at a time, each with an
/// inline callstack).
void put_events_legacy(ByteWriter& w, const EventStore& events, bool with_set) {
  w.put_u32(static_cast<u32>(events.size()));
  for (size_t i = 0; i < events.size(); ++i) {
    const EventView e = events[i];
    w.put_u8(e.pic);
    w.put_u8(static_cast<u8>(e.event));
    w.put_u64(e.weight);
    w.put_u64(e.delivered_pc);
    w.put_u8(static_cast<u8>((e.has_candidate ? 1 : 0) | (e.has_ea ? 2 : 0)));
    w.put_u64(e.candidate_pc);
    w.put_u64(e.ea);
    w.put_u32(static_cast<u32>(e.callstack.size()));
    for (u64 pc : e.callstack) w.put_u64(pc);
    w.put_u64(e.seq);
    if (with_set) w.put_u8(e.set);
  }
}

void get_events_legacy(ByteReader& r, EventStore& events, bool with_set) {
  const u32 ne = r.get_u32();
  // Validate the count against the bytes actually present before reserving:
  // a corrupt count would otherwise drive a multi-gigabyte allocation long
  // before any read hits the bytestream bounds check. Every legacy record
  // occupies at least 47 bytes (fixed fields + empty callstack); the
  // multiplexed layout appends a set byte.
  const u64 min_record_bytes = with_set ? 48 : 47;
  DSP_CHECK(ne <= r.remaining() / min_record_bytes,
            "legacy event count " + std::to_string(ne) + " exceeds the " +
                std::to_string(r.remaining()) + " bytes remaining");
  events.reserve(ne);
  std::vector<u64> stack;  // reused scratch
  for (u32 i = 0; i < ne; ++i) {
    const u8 pic = r.get_u8();
    const auto event = static_cast<machine::HwEvent>(r.get_u8());
    const u64 weight = r.get_u64();
    const u64 delivered_pc = r.get_u64();
    const u8 flags = r.get_u8();
    const u64 candidate_pc = r.get_u64();
    const u64 ea = r.get_u64();
    const u32 depth = r.get_u32();
    DSP_CHECK(depth <= r.remaining() / 8,
              "callstack depth " + std::to_string(depth) + " exceeds remaining bytes");
    stack.clear();
    stack.reserve(depth);
    for (u32 d = 0; d < depth; ++d) stack.push_back(r.get_u64());
    const u64 seq = r.get_u64();
    const u8 set = with_set ? r.get_u8() : 0;
    events.append(pic, event, weight, delivered_pc, (flags & 1) != 0, candidate_pc,
                  (flags & 2) != 0, ea, stack.data(), stack.size(), seq, set);
  }
}

}  // namespace

void Experiment::save(const std::string& dir, FileFormat format) const {
  std::filesystem::create_directories(dir);

  write_file(dir + "/log.txt", std::vector<u8>(log.begin(), log.end()));

  ByteWriter lo;
  image.serialize(lo);
  write_file(dir + "/loadobjects.bin", lo.bytes());

  // A run that never multiplexed writes the pre-multiplexing magic and
  // layout byte for byte; only a populated slice table switches to the
  // sibling magic that carries set ids and the slice table.
  const bool mpx = !slices.empty();
  ByteWriter w;
  if (format == FileFormat::Legacy) {
    w.put_u32(mpx ? kMagicLegacyMpx : kMagicLegacy);
    put_header(w, *this, mpx);
    put_events_legacy(w, events, mpx);
  } else if (format == FileFormat::Columnar) {
    w.put_u32(mpx ? kMagicColumnarMpx : kMagicColumnar);
    put_header(w, *this, mpx);
    events.serialize(w, mpx);
  } else {
    w.put_u32(mpx ? kMagicAlignedMpx : kMagicAligned);
    put_header(w, *this, mpx);
    events.serialize_aligned(w, mpx);
  }
  put_trailer(w, *this, /*with_site=*/format == FileFormat::ColumnarAligned);
  write_file(dir + "/events.bin", w.bytes());
}

Experiment Experiment::load(const std::string& dir) {
  Experiment ex;

  const auto logbytes = read_file(dir + "/log.txt");
  ex.log.assign(logbytes.begin(), logbytes.end());

  // Every structural problem in either binary file — truncation, corrupt
  // counts, out-of-range handles — surfaces as an Error naming the file and
  // directory, never as undefined behaviour or an uncontextualized check.
  try {
    const auto lobytes = read_file(dir + "/loadobjects.bin");
    ByteReader lr(lobytes);
    ex.image = sym::Image::deserialize(lr);
  } catch (const Error& e) {
    fail("corrupt experiment loadobjects.bin in '" + dir + "': " + e.what());
  }

  try {
    // One read-only mapping serves every layout (a buffered read on
    // platforms without mmap); only the "DSPG" path keeps it alive past
    // load() by handing the EventStore zero-copy views into it.
    const auto mf = MappedFile::open(dir + "/events.bin");
    ByteReader r(mf->data(), mf->size());
    const u32 magic = r.get_u32();
    DSP_CHECK(magic == kMagicAligned || magic == kMagicColumnar || magic == kMagicLegacy ||
                  magic == kMagicAlignedMpx || magic == kMagicColumnarMpx ||
                  magic == kMagicLegacyMpx,
              "bad events.bin magic (expected DSPG/DSPF/DSPE or multiplexed DSPJ/DSPI/DSPH)");
    const bool mpx =
        magic == kMagicAlignedMpx || magic == kMagicColumnarMpx || magic == kMagicLegacyMpx;
    get_header(r, ex, mpx);
    if (magic == kMagicAligned || magic == kMagicAlignedMpx) {
      ex.events = EventStore::deserialize_aligned(r, mmap_enabled() ? mf : nullptr, mpx);
    } else if (magic == kMagicColumnar || magic == kMagicColumnarMpx) {
      ex.events = EventStore::deserialize(r, /*rebuild_intern=*/true, /*with_set=*/mpx);
    } else {
      get_events_legacy(r, ex.events, mpx);
    }
    get_trailer(r, ex, /*with_site=*/magic == kMagicAligned || magic == kMagicAlignedMpx);
    DSP_CHECK(r.at_end(), std::to_string(r.remaining()) + " trailing byte(s) after trailer");
  } catch (const Error& e) {
    fail("corrupt experiment events.bin in '" + dir + "': " + e.what());
  }
  return ex;
}

}  // namespace dsprof::experiment
