// The experiment: result of a `collect` run (paper §2.2) — a directory with
// a log, the loadobjects description (the executable image + symbol tables),
// and the recorded profile events. We keep experiments primarily in memory;
// save()/load() provide the on-disk directory form.
//
// Events are held in a columnar EventStore (event_store.hpp): one column per
// field, callstacks interned into a shared arena. The on-disk events.bin has
// three layouts: the aligned columnar "DSPG" layout (written by default;
// every column payload 8-byte aligned so load() can mmap the file and hand
// out zero-copy column views), the unaligned columnar "DSPF" layout, and the
// seed's row-oriented "DSPE" layout — load() auto-detects all three, and
// save(..., FileFormat::...) still writes the older two for compatibility.
// DSPROF_MMAP=0 disables the zero-copy path (DSPG files are then streamed
// through the same validation into an owning store).
//
// Multiplexed runs (more counters than PIC registers, rotated across time
// slices) save under sibling magics — "DSPJ"/"DSPI"/"DSPH" — that extend
// each layout with a per-counter set id, a per-event set column, and a
// slice table (set -> live cycles, switches). A run that does not multiplex
// always writes the original magic byte for byte, and loading an original
// file yields one always-live set — both directions of strict back-compat.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "experiment/event_store.hpp"
#include "machine/counters.hpp"
#include "sym/image.hpp"

namespace dsprof::experiment {

/// One requested hardware counter, e.g. "+ecstall,on":
/// leading '+' requests apropos backtracking (paper §2.2.3).
struct CounterSpec {
  machine::HwEvent event = machine::HwEvent::Cycle_cnt;
  u64 interval = 0;   // overflow interval (prime)
  bool backtrack = false;
  unsigned pic = 0;   // assigned counter register (within the set)
  unsigned set = 0;   // multiplexed counter set (0 when not multiplexing)
};

/// Per-set live-time accounting for a multiplexed run: how many cycles the
/// set's counters were actually armed, and how often the scheduler switched
/// to it. The renormalizing reduction scales a set's aggregates by
/// total_cycles / live_cycles to estimate the full-run counts.
struct SliceInfo {
  u64 live_cycles = 0;
  u64 switches = 0;
};

/// A materialized (row-form) profile event. The store of record is the
/// columnar EventStore; this struct remains for the legacy on-disk layout
/// and for call sites that want an owning copy of one event.
struct EventRecord {
  u8 pic = 0;  // 0/1, or machine::kClockPic for clock-profile samples
  machine::HwEvent event = machine::HwEvent::Cycle_cnt;
  u64 weight = 0;  // overflow interval: estimated events per sample
  u64 delivered_pc = 0;
  bool has_candidate = false;
  u64 candidate_pc = 0;
  bool has_ea = false;
  u64 ea = 0;
  /// Call-site PCs at delivery, outermost first (for callers/callees and
  /// inclusive metrics).
  std::vector<u64> callstack;
  u64 seq = 0;  // joins with the machine's ground-truth log (tests only)
  u8 set = 0;   // multiplexed counter set the event was recorded under
};

/// On-disk events.bin layouts.
enum class FileFormat {
  ColumnarAligned,  // current: "DSPG" 8-byte-aligned columns, mmap-able
  Columnar,         // "DSPF" columns + callstack arena (unaligned)
  Legacy,           // seed: "DSPE" row-oriented records
};

struct Experiment {
  std::string log;  // human-readable collection log
  sym::Image image;
  std::vector<CounterSpec> counters;
  u64 clock_interval = 0;  // cycles between clock-profile samples (0 = off)
  u64 clock_hz = 900'000'000;
  u64 page_size = 8 * 1024;
  u64 ec_line_size = 512;

  EventStore events;
  /// Heap allocations in order — for the instance view. `site_pc` names the
  /// allocation call site ("DSPG" files carry it; older layouts load as 0).
  std::vector<machine::AllocRecord> allocations;

  /// Slice table of a multiplexed run, indexed by counter set. Empty means
  /// the run did not multiplex: one set, live for all of total_cycles —
  /// exactly what every pre-multiplexing experiment file loads as, so the
  /// renormalizing reduction scales by 1.0 bit-identically.
  std::vector<SliceInfo> slices;

  bool multiplexed() const { return slices.size() > 1; }

  // Run totals (from the run, not estimated from samples).
  u64 total_cycles = 0;
  u64 total_instructions = 0;

  /// Ground truth per overflow event, recorded by the simulator for
  /// validation benches/tests only — the analyzer must not consult it.
  std::vector<machine::TruthRecord> truth;

  double seconds(u64 cycles) const {
    return static_cast<double>(cycles) / static_cast<double>(clock_hz);
  }

  /// Append a materialized record into the columnar store.
  void add_event(const EventRecord& e) {
    events.append(e.pic, e.event, e.weight, e.delivered_pc, e.has_candidate, e.candidate_pc,
                  e.has_ea, e.ea, e.callstack.data(), e.callstack.size(), e.seq, e.set);
  }

  /// Write the experiment directory (log.txt, loadobjects.bin, events.bin).
  void save(const std::string& dir, FileFormat format = FileFormat::ColumnarAligned) const;
  /// Read an experiment directory; auto-detects the events.bin layout.
  /// "DSPG" files are mmap'd for zero-copy column views unless DSPROF_MMAP=0
  /// (or the platform cannot map, in which case the stream loader runs).
  static Experiment load(const std::string& dir);
};

}  // namespace dsprof::experiment
