// The experiment: result of a `collect` run (paper §2.2) — a directory with
// a log, the loadobjects description (the executable image + symbol tables),
// and the recorded profile events. We keep experiments primarily in memory;
// save()/load() provide the on-disk directory form.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "machine/counters.hpp"
#include "sym/image.hpp"

namespace dsprof::experiment {

/// One requested hardware counter, e.g. "+ecstall,on":
/// leading '+' requests apropos backtracking (paper §2.2.3).
struct CounterSpec {
  machine::HwEvent event = machine::HwEvent::Cycle_cnt;
  u64 interval = 0;   // overflow interval (prime)
  bool backtrack = false;
  unsigned pic = 0;   // assigned counter register
};

/// One recorded profile event, as written by the collection system. Contains
/// only information available at collection time on real hardware: the
/// skidded delivered PC, the backtracked candidate trigger PC (if any), and
/// the recomputed effective address (if the address registers survived the
/// skid).
struct EventRecord {
  u8 pic = 0;  // 0/1, or machine::kClockPic for clock-profile samples
  machine::HwEvent event = machine::HwEvent::Cycle_cnt;
  u64 weight = 0;  // overflow interval: estimated events per sample
  u64 delivered_pc = 0;
  bool has_candidate = false;
  u64 candidate_pc = 0;
  bool has_ea = false;
  u64 ea = 0;
  /// Call-site PCs at delivery, outermost first (for callers/callees and
  /// inclusive metrics).
  std::vector<u64> callstack;
  u64 seq = 0;  // joins with the machine's ground-truth log (tests only)
};

struct Experiment {
  std::string log;  // human-readable collection log
  sym::Image image;
  std::vector<CounterSpec> counters;
  u64 clock_interval = 0;  // cycles between clock-profile samples (0 = off)
  u64 clock_hz = 900'000'000;
  u64 page_size = 8 * 1024;
  u64 ec_line_size = 512;

  std::vector<EventRecord> events;
  /// Heap allocations in order (address, size) — for the instance view.
  std::vector<std::pair<u64, u64>> allocations;

  // Run totals (from the run, not estimated from samples).
  u64 total_cycles = 0;
  u64 total_instructions = 0;

  /// Ground truth per overflow event, recorded by the simulator for
  /// validation benches/tests only — the analyzer must not consult it.
  std::vector<machine::TruthRecord> truth;

  double seconds(u64 cycles) const {
    return static_cast<double>(cycles) / static_cast<double>(clock_hz);
  }

  /// Write the experiment directory (log.txt, loadobjects.bin, events.bin).
  void save(const std::string& dir) const;
  static Experiment load(const std::string& dir);
};

}  // namespace dsprof::experiment
