#include "isa/assembler.hpp"

#include <algorithm>

namespace dsprof::isa {

LabelId Assembler::new_label(std::string name) {
  const LabelId id = static_cast<LabelId>(label_pos_.size());
  label_pos_.push_back(-1);
  label_names_.push_back(std::move(name));
  return id;
}

void Assembler::bind(LabelId label) {
  DSP_CHECK(label < label_pos_.size(), "bind: unknown label");
  DSP_CHECK(label_pos_[label] < 0, "bind: label bound twice: " + label_names_[label]);
  label_pos_[label] = static_cast<i64>(items_.size());
}

void Assembler::emit(const Instr& ins, u64 tag) { items_.push_back({ins, tag, -1}); }

void Assembler::emit_branch(Cond c, LabelId target, bool annul, bool pred_taken, u64 tag) {
  DSP_CHECK(target < label_pos_.size(), "branch: unknown label");
  Item it{branch(c, 0, annul, pred_taken), tag, static_cast<i64>(target)};
  items_.push_back(it);
  referenced_labels_.push_back(target);
}

void Assembler::emit_call(LabelId target, u64 tag) {
  DSP_CHECK(target < label_pos_.size(), "call: unknown label");
  Item it{call(0), tag, static_cast<i64>(target)};
  call_sites_.push_back(items_.size());
  items_.push_back(it);
  referenced_labels_.push_back(target);
}

void Assembler::set64(Reg rd, i64 value, Reg scratch, u64 tag) {
  DSP_CHECK(rd != G0, "set64 into %g0");
  if (fits_signed(value, 15)) {
    emit(mov_ri(rd, value), tag);
    return;
  }
  auto emit_u35 = [&](Reg r, u64 v) {
    // v in [0, 2^35): sethi covers bits [34:14], or-immediate bits [13:0].
    DSP_CHECK(v < (u64{1} << 35), "set64: value exceeds 35-bit sethi reach");
    emit(sethi(r, v >> 14), tag);
    const u64 lo = v & 0x3FFF;
    if (lo != 0) emit(alu_ri(Op::OR, r, r, static_cast<i64>(lo)), tag);
  };
  if (value > 0 && static_cast<u64>(value) < (u64{1} << 35)) {
    emit_u35(rd, static_cast<u64>(value));
    return;
  }
  if (value < 0 && -value > 0 && static_cast<u64>(-value) < (u64{1} << 35)) {
    emit_u35(rd, static_cast<u64>(-value));
    emit(alu_rr(Op::SUB, rd, G0, rd), tag);
    return;
  }
  // Full 64-bit build: upper half shifted, lower half OR-ed in via scratch.
  DSP_CHECK(scratch != G0 && scratch != rd, "set64: need a distinct scratch register");
  const u64 v = static_cast<u64>(value);
  emit_u35(rd, v >> 32);
  emit(alu_ri(Op::SLL, rd, rd, 32), tag);
  const u64 lo32 = v & 0xFFFFFFFFull;
  if (lo32 != 0) {
    emit_u35(scratch, lo32);
    emit(alu_rr(Op::OR, rd, rd, scratch), tag);
  }
}

std::optional<std::pair<Instr, u64>> Assembler::pop_last_plain() {
  if (items_.empty()) return std::nullopt;
  const Item& last = items_.back();
  if (last.fixup_label >= 0) return std::nullopt;
  const isa::OpInfo& info = op_info(last.ins.op);
  if (info.delayed || info.sets_cc || last.ins.op == Op::HCALL) return std::nullopt;
  // Never steal an instruction that is itself sitting in the delay slot of a
  // preceding transfer.
  if (items_.size() >= 2 && op_info(items_[items_.size() - 2].ins.op).delayed) {
    return std::nullopt;
  }
  const i64 last_idx = static_cast<i64>(items_.size()) - 1;
  for (i64 pos : label_pos_) {
    if (pos >= last_idx) return std::nullopt;
  }
  auto result = std::make_pair(last.ins, last.tag);
  items_.pop_back();
  return result;
}

Assembler::Output Assembler::finish() {
  Output out;
  out.base = base_;
  out.words.reserve(items_.size());
  out.tags.reserve(items_.size());

  auto label_addr = [&](LabelId l) -> u64 {
    DSP_CHECK(label_pos_[l] >= 0, "unbound label: " + label_names_[l]);
    return base_ + 4 * static_cast<u64>(label_pos_[l]);
  };

  for (size_t i = 0; i < items_.size(); ++i) {
    Item it = items_[i];
    if (it.fixup_label >= 0) {
      const u64 pc = base_ + 4 * i;
      it.ins.disp = static_cast<i64>(label_addr(static_cast<LabelId>(it.fixup_label))) -
                    static_cast<i64>(pc);
    }
    out.words.push_back(encode(it.ins));
    out.tags.push_back(it.tag);
  }

  // Branch-target table: every referenced label address, plus every call
  // return join (the instruction after a call's delay slot).
  for (LabelId l : referenced_labels_) out.branch_targets.push_back(label_addr(l));
  for (size_t site : call_sites_) out.branch_targets.push_back(base_ + 4 * site + 8);
  std::sort(out.branch_targets.begin(), out.branch_targets.end());
  out.branch_targets.erase(std::unique(out.branch_targets.begin(), out.branch_targets.end()),
                           out.branch_targets.end());

  out.label_addrs.resize(label_pos_.size(), 0);
  for (size_t l = 0; l < label_pos_.size(); ++l) {
    if (label_pos_[l] >= 0) out.label_addrs[l] = base_ + 4 * static_cast<u64>(label_pos_[l]);
  }
  return out;
}

}  // namespace dsprof::isa
