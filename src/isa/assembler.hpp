// Two-pass assembler for s3 text sections: emit decoded instructions with
// symbolic labels, then resolve branch/call displacements. Produces the word
// stream plus the branch-target address table that -xhwcprof-style symbol
// information requires (the analyzer validates apropos backtracking against
// this table, paper §2.3).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "isa/isa.hpp"

namespace dsprof::isa {

using LabelId = u32;

class Assembler {
 public:
  /// `base` is the virtual address of the first emitted instruction.
  explicit Assembler(u64 base) : base_(base) {}

  /// Create a label. `name` is only for diagnostics.
  LabelId new_label(std::string name = "");

  /// Bind `label` to the current position. A label may be bound only once.
  void bind(LabelId label);

  /// Append one instruction. `tag` is an opaque caller-owned annotation
  /// (the scc compiler stores indices into its line/memref side tables).
  void emit(const Instr& ins, u64 tag = 0);

  /// Append a conditional branch to `target` (resolved at finish()).
  void emit_branch(Cond c, LabelId target, bool annul = false, bool pred_taken = true,
                   u64 tag = 0);

  /// Append a call to `target` (resolved at finish()).
  void emit_call(LabelId target, u64 tag = 0);

  /// Materialize a 64-bit constant into rd. Emits 1-6 instructions; uses
  /// `scratch` only for constants needing a full 64-bit build. rd and scratch
  /// must differ and neither may be %g0.
  void set64(Reg rd, i64 value, Reg scratch, u64 tag = 0);

  /// Current instruction index (word offset from base).
  size_t position() const { return items_.size(); }

  /// Delay-slot filler support: if the most recent item is a plain
  /// instruction (no pending fixup, no label bound at or after it, not a
  /// delayed transfer, not a condition-code setter, not an HCALL), remove
  /// and return it so the caller can re-emit it inside a delay slot.
  /// The caller applies additional policy (e.g. -xhwcprof forbids memory
  /// operations in delay slots).
  std::optional<std::pair<Instr, u64>> pop_last_plain();

  u64 addr_of_position(size_t index) const { return base_ + 4 * index; }

  struct Output {
    u64 base = 0;
    std::vector<u32> words;
    std::vector<u64> tags;             // parallel to words
    std::vector<u64> branch_targets;   // sorted, deduplicated addresses
    std::vector<u64> label_addrs;      // indexed by LabelId (bound labels)
  };

  /// Resolve all fixups and return the final image. Throws Error on unbound
  /// labels or out-of-range displacements.
  Output finish();

 private:
  struct Item {
    Instr ins;
    u64 tag;
    // If >= 0, this instruction's displacement targets this label.
    i64 fixup_label = -1;
  };

  u64 base_;
  std::vector<Item> items_;
  std::vector<i64> label_pos_;          // per label: item index or -1
  std::vector<std::string> label_names_;
  std::vector<LabelId> referenced_labels_;
  std::vector<size_t> call_sites_;      // item indices of CALL instructions
};

}  // namespace dsprof::isa
