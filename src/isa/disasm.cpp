// Disassembler producing listings in the style of the paper's Figure 4.
#include <cstdio>

#include "isa/isa.hpp"

namespace dsprof::isa {

namespace {

std::string hex_addr(u64 a) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(a));
  return buf;
}

std::string mem_operand(const Instr& ins) {
  std::string s = "[";
  s += reg_name(ins.rs1);
  if (ins.has_imm) {
    if (ins.imm >= 0) {
      s += " + " + std::to_string(ins.imm);
    } else {
      s += " - " + std::to_string(-ins.imm);
    }
  } else if (ins.rs2 != G0) {
    s += std::string(" + ") + reg_name(ins.rs2);
  }
  s += "]";
  return s;
}

std::string src2(const Instr& ins) {
  return ins.has_imm ? std::to_string(ins.imm) : reg_name(ins.rs2);
}

}  // namespace

std::string disassemble(const Instr& ins, u64 pc) {
  const OpInfo& info = op_info(ins.op);
  switch (ins.op) {
    case Op::ILLEGAL:
      return "illegal";
    case Op::SETHI:
      if (ins.rd == G0 && ins.imm == 0) return "nop";
      return std::string("sethi %hi(") + hex_addr(static_cast<u64>(ins.imm) << 14) + "), " +
             reg_name(ins.rd);
    case Op::BR: {
      std::string s = "b";
      s += cond_name(ins.cond);
      if (ins.annul) s += ",a";
      if (ins.cond != Cond::A) s += ins.pred_taken ? ",pt" : ",pn";
      if (ins.cond != Cond::A) s += " %xcc,";
      s += " " + hex_addr(pc + static_cast<u64>(ins.disp));
      return s;
    }
    case Op::CALL:
      return "call " + hex_addr(pc + static_cast<u64>(ins.disp));
    case Op::JMPL:
      if (ins.rd == G0 && ins.rs1 == kLink && ins.has_imm && ins.imm == 8) return "ret";
      return std::string("jmpl ") + reg_name(ins.rs1) + " + " + src2(ins) + ", " +
             reg_name(ins.rd);
    case Op::HCALL:
      return "hcall " + std::to_string(ins.imm);
    case Op::PREFETCH:
      return "prefetch " + mem_operand(ins);
    default:
      break;
  }
  if (info.is_load) {
    return std::string(info.mnemonic) + " " + mem_operand(ins) + ", " + reg_name(ins.rd);
  }
  if (info.is_store) {
    return std::string(info.mnemonic) + " " + reg_name(ins.rd) + ", " + mem_operand(ins);
  }
  // ALU. Recognize the common pseudo-ops the paper's listings use.
  if (ins.op == Op::SUBCC && ins.rd == G0) {
    return std::string("cmp ") + reg_name(ins.rs1) + ", " + src2(ins);
  }
  if (ins.op == Op::OR && ins.rs1 == G0) {
    return std::string("mov ") + src2(ins) + ", " + reg_name(ins.rd);
  }
  if (ins.op == Op::ADD && ins.has_imm && ins.imm == 1 && ins.rd == ins.rs1) {
    return std::string("inc ") + reg_name(ins.rd);
  }
  return std::string(info.mnemonic) + " " + reg_name(ins.rs1) + ", " + src2(ins) + ", " +
         reg_name(ins.rd);
}

}  // namespace dsprof::isa
