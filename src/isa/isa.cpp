#include "isa/isa.hpp"

#include <array>

namespace dsprof::isa {

namespace {

constexpr unsigned kOpShift = 26;
constexpr unsigned kRdShift = 21;
constexpr unsigned kRs1Shift = 16;
constexpr u32 kImmBit = 1u << 15;
constexpr u32 kFmtAMbzMask = 0x7FE0;  // bits [14:5] when i=0

const std::array<const char*, kNumRegs> kRegNames = {
    "%g0", "%g1", "%g2", "%g3", "%g4", "%g5", "%g6", "%g7",
    "%o0", "%o1", "%o2", "%o3", "%o4", "%o5", "%o6", "%o7",
    "%l0", "%l1", "%l2", "%l3", "%l4", "%l5", "%l6", "%l7",
    "%i0", "%i1", "%i2", "%i3", "%i4", "%i5", "%i6", "%i7",
};

struct OpTableEntry {
  Op op;
  OpInfo info;
};

constexpr OpInfo alu(const char* m, bool cc = false) {
  OpInfo i{};
  i.mnemonic = m;
  i.sets_cc = cc;
  return i;
}
constexpr OpInfo ld(const char* m, unsigned size) {
  OpInfo i{};
  i.mnemonic = m;
  i.is_load = true;
  i.mem_size = size;
  return i;
}
constexpr OpInfo st(const char* m, unsigned size) {
  OpInfo i{};
  i.mnemonic = m;
  i.is_store = true;
  i.mem_size = size;
  return i;
}

const std::array<OpTableEntry, static_cast<size_t>(Op::kCount)> kOps = [] {
  std::array<OpTableEntry, static_cast<size_t>(Op::kCount)> t{};
  auto set = [&](Op op, OpInfo info) { t[static_cast<size_t>(op)] = {op, info}; };
  set(Op::ILLEGAL, alu("illegal"));
  set(Op::SETHI, alu("sethi"));
  set(Op::ADD, alu("add"));
  set(Op::SUB, alu("sub"));
  set(Op::ADDCC, alu("addcc", true));
  set(Op::SUBCC, alu("subcc", true));
  set(Op::MULX, alu("mulx"));
  set(Op::SDIVX, alu("sdivx"));
  set(Op::UDIVX, alu("udivx"));
  set(Op::AND, alu("and"));
  set(Op::OR, alu("or"));
  set(Op::XOR, alu("xor"));
  set(Op::ANDN, alu("andn"));
  set(Op::SLL, alu("sll"));
  set(Op::SRL, alu("srl"));
  set(Op::SRA, alu("sra"));
  set(Op::LDX, ld("ldx", 8));
  set(Op::LDUW, ld("lduw", 4));
  set(Op::LDUB, ld("ldub", 1));
  set(Op::STX, st("stx", 8));
  set(Op::STW, st("stw", 4));
  set(Op::STB, st("stb", 1));
  {
    OpInfo i{};
    i.mnemonic = "prefetch";
    i.is_prefetch = true;
    set(Op::PREFETCH, i);
  }
  {
    OpInfo i{};
    i.mnemonic = "b";  // printed with condition suffix
    i.is_branch = true;
    i.delayed = true;
    set(Op::BR, i);
  }
  {
    OpInfo i{};
    i.mnemonic = "call";
    i.is_call = true;
    i.delayed = true;
    set(Op::CALL, i);
  }
  {
    OpInfo i{};
    i.mnemonic = "jmpl";
    i.is_jmpl = true;
    i.delayed = true;
    set(Op::JMPL, i);
  }
  set(Op::HCALL, alu("hcall"));
  return t;
}();

const char* kCondNames[16] = {
    "n", "e", "le", "l", "leu", "lu", "?6", "?7",
    "a", "ne", "g", "ge", "gu", "geu", "?14", "?15",
};

bool valid_cond(u8 c) {
  return (c <= 5) || (c >= 8 && c <= 13);
}

}  // namespace

const char* reg_name(unsigned r) {
  DSP_CHECK(r < kNumRegs, "register index out of range");
  return kRegNames[r];
}

const char* cond_name(Cond c) { return kCondNames[static_cast<u8>(c) & 15]; }

const OpInfo& op_info(Op op) {
  const auto idx = static_cast<size_t>(op);
  DSP_CHECK(idx < kOps.size(), "bad opcode");
  return kOps[idx].info;
}

u32 encode(const Instr& ins) {
  const u32 opf = static_cast<u32>(ins.op) << kOpShift;
  DSP_CHECK(ins.op != Op::ILLEGAL && static_cast<u32>(ins.op) < static_cast<u32>(Op::kCount),
            "encode: invalid op");
  switch (ins.op) {
    case Op::SETHI: {
      DSP_CHECK(fits_unsigned(static_cast<u64>(ins.imm), 21), "sethi imm out of range");
      return opf | (u32{ins.rd} << kRdShift) | static_cast<u32>(ins.imm);
    }
    case Op::BR: {
      DSP_CHECK(ins.disp % 4 == 0, "branch displacement not word aligned");
      const i64 words = ins.disp / 4;
      DSP_CHECK(fits_signed(words, 20), "branch displacement out of range");
      return opf | (u32{static_cast<u8>(ins.cond)} << 22) | (ins.annul ? (1u << 21) : 0) |
             (ins.pred_taken ? (1u << 20) : 0) | (static_cast<u32>(words) & 0xFFFFF);
    }
    case Op::CALL: {
      DSP_CHECK(ins.disp % 4 == 0, "call displacement not word aligned");
      const i64 words = ins.disp / 4;
      DSP_CHECK(fits_signed(words, 26), "call displacement out of range");
      return opf | (static_cast<u32>(words) & 0x3FFFFFF);
    }
    default: {
      // Format A.
      DSP_CHECK(ins.rd < kNumRegs && ins.rs1 < kNumRegs && ins.rs2 < kNumRegs,
                "register out of range");
      u32 w = opf | (u32{ins.rd} << kRdShift) | (u32{ins.rs1} << kRs1Shift);
      if (ins.has_imm) {
        DSP_CHECK(fits_signed(ins.imm, 15), "simm15 out of range");
        w |= kImmBit | (static_cast<u32>(ins.imm) & 0x7FFF);
      } else {
        w |= ins.rs2;
      }
      return w;
    }
  }
}

Instr decode(u32 word) {
  Instr ins;
  const u32 opnum = word >> kOpShift;
  if (opnum == 0 || opnum >= static_cast<u32>(Op::kCount)) return ins;  // ILLEGAL
  const Op op = static_cast<Op>(opnum);
  ins.op = op;
  switch (op) {
    case Op::SETHI:
      ins.rd = (word >> kRdShift) & 31;
      ins.imm = word & 0x1FFFFF;
      ins.has_imm = true;
      return ins;
    case Op::BR: {
      const u8 c = (word >> 22) & 15;
      if (!valid_cond(c)) return Instr{};  // ILLEGAL
      ins.cond = static_cast<Cond>(c);
      ins.annul = (word >> 21) & 1;
      ins.pred_taken = (word >> 20) & 1;
      ins.disp = sign_extend(word & 0xFFFFF, 20) * 4;
      return ins;
    }
    case Op::CALL:
      ins.disp = sign_extend(word & 0x3FFFFFF, 26) * 4;
      return ins;
    default:
      ins.rd = (word >> kRdShift) & 31;
      ins.rs1 = (word >> kRs1Shift) & 31;
      if (word & kImmBit) {
        ins.has_imm = true;
        ins.imm = sign_extend(word & 0x7FFF, 15);
      } else {
        if (word & kFmtAMbzMask) return Instr{};  // must-be-zero violated
        ins.rs2 = word & 31;
      }
      return ins;
  }
}

// ---------------------------------------------------------------------------
// Construction helpers

namespace {
Instr fmt_a(Op op, u8 rd, u8 rs1) {
  Instr i;
  i.op = op;
  i.rd = rd;
  i.rs1 = rs1;
  return i;
}
}  // namespace

Instr alu_rr(Op op, Reg rd, Reg rs1, Reg rs2) {
  Instr i = fmt_a(op, rd, rs1);
  i.rs2 = rs2;
  return i;
}

Instr alu_ri(Op op, Reg rd, Reg rs1, i64 imm) {
  Instr i = fmt_a(op, rd, rs1);
  i.has_imm = true;
  i.imm = imm;
  return i;
}

Instr sethi(Reg rd, u64 imm21) {
  Instr i;
  i.op = Op::SETHI;
  i.rd = rd;
  i.has_imm = true;
  i.imm = static_cast<i64>(imm21);
  return i;
}

Instr nop() { return sethi(G0, 0); }

Instr load_ri(Op op, Reg rd, Reg base, i64 offset) {
  DSP_CHECK(op_info(op).is_load, "load_ri with non-load op");
  return alu_ri(op, rd, base, offset);
}

Instr load_rr(Op op, Reg rd, Reg base, Reg index) {
  DSP_CHECK(op_info(op).is_load, "load_rr with non-load op");
  return alu_rr(op, rd, base, index);
}

Instr store_ri(Op op, Reg data, Reg base, i64 offset) {
  DSP_CHECK(op_info(op).is_store, "store_ri with non-store op");
  return alu_ri(op, data, base, offset);
}

Instr store_rr(Op op, Reg data, Reg base, Reg index) {
  DSP_CHECK(op_info(op).is_store, "store_rr with non-store op");
  return alu_rr(op, data, base, index);
}

Instr prefetch_ri(Reg base, i64 offset) { return alu_ri(Op::PREFETCH, G0, base, offset); }

Instr branch(Cond c, i64 byte_disp, bool annul, bool pred_taken) {
  Instr i;
  i.op = Op::BR;
  i.cond = c;
  i.annul = annul;
  i.pred_taken = pred_taken;
  i.disp = byte_disp;
  return i;
}

Instr call(i64 byte_disp) {
  Instr i;
  i.op = Op::CALL;
  i.disp = byte_disp;
  return i;
}

Instr jmpl(Reg rd, Reg rs1, i64 imm) { return alu_ri(Op::JMPL, rd, rs1, imm); }

Instr ret() { return jmpl(G0, kLink, 8); }

Instr hcall(i64 code) { return alu_ri(Op::HCALL, G0, G0, code); }

Instr mov_rr(Reg rd, Reg rs) { return alu_rr(Op::OR, rd, G0, rs); }

Instr mov_ri(Reg rd, i64 imm) { return alu_ri(Op::OR, rd, G0, imm); }

Instr cmp_rr(Reg rs1, Reg rs2) { return alu_rr(Op::SUBCC, G0, rs1, rs2); }

Instr cmp_ri(Reg rs1, i64 imm) { return alu_ri(Op::SUBCC, G0, rs1, imm); }

std::optional<EaExpr> ea_expr(const Instr& ins) {
  const OpInfo& info = op_info(ins.op);
  if (!info.is_load && !info.is_store && !info.is_prefetch) return std::nullopt;
  EaExpr e;
  e.rs1 = ins.rs1;
  e.has_imm = ins.has_imm;
  e.imm = ins.imm;
  e.rs2 = ins.rs2;
  return e;
}

}  // namespace dsprof::isa
