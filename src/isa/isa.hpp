// The s3 instruction set: a SPARC-flavoured 64-bit RISC used by the dsprof
// machine simulator. It reproduces the properties the paper's profiling
// pipeline depends on:
//   * fixed 32-bit instruction words (the apropos backtracking search walks
//     backward through the text segment decoding words),
//   * delayed control transfers with an annul bit (the -xhwcprof compiler
//     rules are about delay slots and join nodes),
//   * %g/%o/%l/%i register naming and %xcc condition codes (so annotated
//     disassembly matches the paper's Figure 4),
//   * memory operations whose effective address is rs1 + (simm15 | rs2),
//     recomputable from a register snapshot.
//
// Encoding (32-bit word, little-endian in memory):
//   bits [31:26] opcode
//   Format A (ALU / memory / JMPL / HCALL / PREFETCH):
//     [25:21] rd   [20:16] rs1   [15] i   i=1: [14:0] simm15
//                                         i=0: [14:5] zero, [4:0] rs2
//   Format S (SETHI): [25:21] rd  [20:0] imm21;  rd = imm21 << 14
//   Format B (BR): [25:22] cond  [21] annul  [20] pred_taken
//                  [19:0] signed word displacement from the branch PC
//   Format C (CALL): [25:0] signed word displacement; link in %o7
//
// Addresses must fit in 35 bits (SETHI+ORI reach); the simulator's address
// map keeps every segment below 2^35.
#pragma once

#include <optional>
#include <string>

#include "support/common.hpp"

namespace dsprof::isa {

// ---------------------------------------------------------------------------
// Registers

inline constexpr unsigned kNumRegs = 32;

// SPARC-style names: %g0-%g7 (0-7), %o0-%o7 (8-15), %l0-%l7 (16-23),
// %i0-%i7 (24-31). %g0 reads as zero and ignores writes.
enum Reg : u8 {
  G0 = 0, G1, G2, G3, G4, G5, G6, G7,
  O0 = 8, O1, O2, O3, O4, O5, O6, O7,
  L0 = 16, L1, L2, L3, L4, L5, L6, L7,
  I0 = 24, I1, I2, I3, I4, I5, I6, I7,
};

inline constexpr Reg kSp = O6;    // stack pointer
inline constexpr Reg kLink = O7;  // call link register
inline constexpr Reg kFp = I6;    // frame pointer (by convention)

/// "%o3", "%g0", ...
const char* reg_name(unsigned r);

// ---------------------------------------------------------------------------
// Opcodes

enum class Op : u8 {
  ILLEGAL = 0,
  SETHI,  // rd = imm21 << 14  (SETHI %g0, 0 disassembles as nop)
  // ALU, format A. Arithmetic immediates are sign-extended simm15.
  ADD, SUB, ADDCC, SUBCC, MULX, SDIVX, UDIVX,
  AND, OR, XOR, ANDN, SLL, SRL, SRA,
  // Memory, format A. Loads zero-extend sub-64-bit data. For stores, rd is
  // the data source register.
  LDX, LDUW, LDUB, STX, STW, STB,
  PREFETCH,  // non-faulting E$ prefetch of [rs1 + imm/rs2]
  // Control transfers (all have one delay slot).
  BR,    // format B: conditional branch on %xcc
  CALL,  // format C: %o7 = PC, jump PC + 4*disp26
  JMPL,  // format A: rd = PC, jump rs1 + imm/rs2
  // Host call, format A: service code in imm (see machine/hostcall.hpp);
  // arguments in %o0..%o5, result in %o0. Not a delayed transfer.
  HCALL,
  kCount,
};

/// Branch conditions on the %xcc codes (N, Z, V, C from a 64-bit ADDCC/SUBCC).
enum class Cond : u8 {
  N = 0,  // never
  E,      // Z
  LE,     // Z | (N ^ V)
  L,      // N ^ V
  LEU,    // C | Z
  LU,     // C            (unsigned <, a.k.a. carry set)
  A = 8,  // always
  NE,     // !Z
  G,      // !(Z | (N ^ V))
  GE,     // !(N ^ V)
  GU,     // !(C | Z)
  GEU,    // !C
};

/// cond -> "e", "ne", "a", ... (as in "be", "bne", "ba").
const char* cond_name(Cond c);

/// Static classification used by decode validation, the timing model, and the
/// collector's backtracking search.
struct OpInfo {
  const char* mnemonic;
  bool is_load = false;
  bool is_store = false;
  bool is_prefetch = false;
  unsigned mem_size = 0;     // bytes for loads/stores
  bool sets_cc = false;      // ADDCC / SUBCC
  bool is_branch = false;    // BR
  bool is_call = false;      // CALL
  bool is_jmpl = false;      // JMPL
  bool delayed = false;      // has a delay slot
};

const OpInfo& op_info(Op op);

inline bool is_mem_op(Op op) {
  const OpInfo& i = op_info(op);
  return i.is_load || i.is_store;
}

// ---------------------------------------------------------------------------
// Decoded instruction

struct Instr {
  Op op = Op::ILLEGAL;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  bool has_imm = false;
  i64 imm = 0;  // sign-extended simm15 (format A) or raw imm21 (SETHI)
  // Branch fields (format B):
  Cond cond = Cond::N;
  bool annul = false;
  bool pred_taken = false;
  // Branch/call displacement in *bytes*, relative to this instruction's PC.
  i64 disp = 0;

  bool operator==(const Instr&) const = default;
};

/// Encode to a 32-bit word. Throws Error if a field is out of range
/// (e.g. branch displacement beyond ±2^19 words).
u32 encode(const Instr& ins);

/// Decode a word. Returns an Instr with op == Op::ILLEGAL for invalid
/// encodings (unknown opcode or nonzero must-be-zero bits).
Instr decode(u32 word);

/// Disassemble one instruction located at `pc` (needed to print absolute
/// branch/call targets), in the style of the paper's Figure 4:
///   "ldx [%o3 + 56], %o2", "be,pn %xcc,0x100003220", "cmp %o2, 1", "nop".
std::string disassemble(const Instr& ins, u64 pc);

// ---------------------------------------------------------------------------
// Construction helpers (used by the assembler and tests)

Instr alu_rr(Op op, Reg rd, Reg rs1, Reg rs2);
Instr alu_ri(Op op, Reg rd, Reg rs1, i64 imm);
Instr sethi(Reg rd, u64 imm21);
Instr nop();
Instr load_ri(Op op, Reg rd, Reg base, i64 offset);
Instr load_rr(Op op, Reg rd, Reg base, Reg index);
Instr store_ri(Op op, Reg data, Reg base, i64 offset);
Instr store_rr(Op op, Reg data, Reg base, Reg index);
Instr prefetch_ri(Reg base, i64 offset);
Instr branch(Cond c, i64 byte_disp, bool annul = false, bool pred_taken = true);
Instr call(i64 byte_disp);
Instr jmpl(Reg rd, Reg rs1, i64 imm);
Instr ret();  // jmpl %g0, %o7 + 8
Instr hcall(i64 code);
Instr mov_rr(Reg rd, Reg rs);   // or rd, %g0, rs
Instr mov_ri(Reg rd, i64 imm);  // or rd, %g0, imm (imm must fit simm15)
Instr cmp_rr(Reg rs1, Reg rs2);
Instr cmp_ri(Reg rs1, i64 imm);

/// The effective-address expression of a memory instruction, as the collector
/// recomputes it from a register snapshot: rs1 + (imm | rs2).
struct EaExpr {
  u8 rs1;
  bool has_imm;
  i64 imm;
  u8 rs2;
};
std::optional<EaExpr> ea_expr(const Instr& ins);

}  // namespace dsprof::isa
