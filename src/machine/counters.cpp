#include "machine/counters.hpp"

namespace dsprof::machine {

namespace {

constexpr u8 kPic0 = 1;
constexpr u8 kPic1 = 2;
constexpr u8 kBoth = 3;

const HwEventInfo kEvents[kNumHwEvents] = {
    // name       description                          cycles  pics   trigger                skid
    {"cycles", "Cycles", true, kBoth, TriggerKind::Any, 1, 10},
    {"insts", "Instructions Completed", false, kBoth, TriggerKind::Any, 1, 6},
    {"icm", "I$ Misses", false, kPic1, TriggerKind::Any, 1, 6},
    {"dcrm", "D$ Read Misses", false, kPic0, TriggerKind::Load, 1, 5},
    {"dcwm", "D$ Write Misses", false, kPic1, TriggerKind::LoadStore, 1, 5},
    {"ecref", "E$ Refs", false, kPic0, TriggerKind::LoadStore, 2, 16},
    {"ecrm", "E$ Read Misses", false, kPic1, TriggerKind::Load, 1, 4},
    {"ecstall", "E$ Stall Cycles", true, kPic0, TriggerKind::Load, 1, 5},
    {"dtlbm", "DTLB Misses", false, kPic1, TriggerKind::LoadStore, 0, 0},
};

}  // namespace

const HwEventInfo& hw_event_info(HwEvent ev) {
  const auto i = static_cast<size_t>(ev);
  DSP_CHECK(i < kNumHwEvents, "bad HwEvent");
  return kEvents[i];
}

HwEvent hw_event_by_name(const std::string& name) {
  for (size_t i = 0; i < kNumHwEvents; ++i) {
    if (name == kEvents[i].name) return static_cast<HwEvent>(i);
  }
  fail("unknown hardware counter: " + name);
}

}  // namespace dsprof::machine
