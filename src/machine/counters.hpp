// Hardware performance counters of the simulated UltraSPARC-III-like CPU.
// Two counter registers (PIC0/PIC1), each programmable with one event; a
// counter overflow raises an *imprecise* trap: the signal arrives a few
// retired instructions after the triggering instruction ("counter skid",
// paper §2.2.2), carrying only the next-to-issue PC and the register set at
// delivery time.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace dsprof::machine {

enum class HwEvent : u8 {
  Cycle_cnt = 0,
  Instr_cnt,
  IC_miss,
  DC_rd_miss,
  DC_wr_miss,
  EC_ref,
  EC_rd_miss,
  EC_stall_cycles,
  DTLB_miss,
  kCount,
};

inline constexpr size_t kNumHwEvents = static_cast<size_t>(HwEvent::kCount);
inline constexpr unsigned kNumPics = 2;
/// Virtual "pic" id used for clock-profiling deliveries.
inline constexpr unsigned kClockPic = 2;

/// What kind of instruction can trigger the event — this is what the apropos
/// backtracking search looks for when walking backward (paper §2.2.3:
/// "a memory-reference instruction of the appropriate type").
enum class TriggerKind : u8 {
  Any,        // cycles, instructions
  Load,       // read-miss style counters
  LoadStore,  // references, TLB
};

struct HwEventInfo {
  const char* name;        // collect -h name: "ecstall", "ecrm", ...
  const char* description;
  bool counts_cycles;      // cycle counters measure time lost, not events
  u8 pic_mask;             // bit i set => programmable on PIC i
  TriggerKind trigger;
  // Skid bounds in retired instructions. DTLB misses are precise on this
  // machine (skid 0), E$ references skid the most — the ordering behind the
  // paper's per-counter backtracking effectiveness (§3.2.5).
  u32 skid_min;
  u32 skid_max;
};

const HwEventInfo& hw_event_info(HwEvent ev);

/// Parse a collect-style counter name ("ecstall", "dtlbm", ...). Throws Error
/// for unknown names.
HwEvent hw_event_by_name(const std::string& name);

/// The overflow signal as the collection system sees it: no trigger PC, no
/// effective address — just the skidded next-PC and the registers now.
struct OverflowDelivery {
  unsigned pic = 0;             // 0, 1, or kClockPic
  HwEvent event = HwEvent::Cycle_cnt;
  u64 interval = 0;             // overflow interval (the event's weight)
  u64 delivered_pc = 0;         // next instruction to issue
  std::array<u64, 32> regs{};   // register set at delivery
  /// Call-site PCs, outermost first (the collection system unwinds the
  /// stack at each profile event — paper §2.2: "the callstacks associated
  /// with them").
  std::vector<u64> callstack;
  u64 seq = 0;                  // event id, joinable with the ground truth log
};

/// One dynamic heap allocation noted by the program under test (the
/// NoteAlloc host call). `site_pc` is the allocation call site — the PC of
/// the call into the runtime allocator (the noting instruction itself when
/// noted at top level). The analyzer symbolizes it to name instances the
/// way the paper does ("mcf_arena[k]": allocating function plus per-site
/// ordinal).
struct AllocRecord {
  u64 addr = 0;
  u64 size = 0;
  u64 site_pc = 0;

  friend bool operator==(const AllocRecord& a, const AllocRecord& b) {
    return a.addr == b.addr && a.size == b.size && a.site_pc == b.site_pc;
  }
};

/// What actually happened — recorded by the simulator for validation only.
/// The collector must never read this; tests use it to measure backtracking
/// accuracy against ground truth (something the paper's authors could only
/// estimate on real hardware).
struct TruthRecord {
  u64 seq = 0;
  unsigned pic = 0;
  HwEvent event = HwEvent::Cycle_cnt;
  u64 trigger_pc = 0;
  bool ea_valid = false;
  u64 ea = 0;
  u32 skid = 0;  // retired instructions between trigger and delivery
};

}  // namespace dsprof::machine
