#include "machine/cpu.hpp"

#include "machine/hostcall.hpp"

namespace dsprof::machine {

using isa::Instr;
using isa::Op;

Cpu::Cpu(mem::Memory& memory, const CpuConfig& cfg)
    : mem_(memory), cfg_(cfg), hier_(cfg.hierarchy), rng_(cfg.seed) {
  regs_[isa::kSp] = mem::kStackTop;
}

void Cpu::set_pc(u64 pc) {
  pc_ = pc;
  npc_ = pc + 4;
}

void Cpu::set_reg(unsigned r, u64 v) {
  DSP_CHECK(r < 32, "bad register");
  if (r != 0) regs_[r] = v;
}

void Cpu::configure_pic(unsigned pic, HwEvent ev, u64 interval, u64 start_value) {
  DSP_CHECK(pic < kNumPics, "bad PIC index");
  DSP_CHECK(interval > 0, "overflow interval must be positive");
  DSP_CHECK(start_value < interval, "PIC start value must be below the interval");
  const HwEventInfo& info = hw_event_info(ev);
  DSP_CHECK(info.pic_mask & (1u << pic),
            std::string("event ") + info.name + " cannot be counted on PIC" +
                std::to_string(pic));
  pics_[pic] = Pic{true, ev, interval, start_value};
  rebuild_event_routing();
}

void Cpu::disable_pic(unsigned pic) {
  DSP_CHECK(pic < kNumPics, "bad PIC index");
  pics_[pic].enabled = false;
  rebuild_event_routing();
}

u64 Cpu::pic_value(unsigned pic) const {
  DSP_CHECK(pic < kNumPics, "bad PIC index");
  return pics_[pic].value;
}

void Cpu::rebuild_event_routing() {
  for (auto& v : pic_for_event_) v = 0;
  // Each event can be live on at most one PIC at a time (the two registers
  // count different events).
  for (unsigned pic = 0; pic < kNumPics; ++pic) {
    if (pics_[pic].enabled) {
      pic_for_event_[static_cast<size_t>(pics_[pic].event)] = static_cast<u8>(pic + 1);
    }
  }
}

void Cpu::configure_clock_profiling(u64 interval_cycles) {
  DSP_CHECK(interval_cycles > 0, "clock interval must be positive");
  clock_interval_ = interval_cycles;
  clock_accum_ = 0;
}

void Cpu::configure_slice_timer(u64 interval_cycles) {
  slice_interval_ = interval_cycles;
  slice_accum_ = 0;
}

u32 Cpu::draw_skid(HwEvent ev) {
  const HwEventInfo& info = hw_event_info(ev);
  const u32 lo = static_cast<u32>(info.skid_min * cfg_.skid_scale);
  const u32 hi = static_cast<u32>(info.skid_max * cfg_.skid_scale);
  if (hi <= lo) return lo;
  return lo + static_cast<u32>(rng_.below(hi - lo + 1));
}

void Cpu::trigger_overflow(unsigned pic, u64 trigger_pc, bool ea_valid, u64 ea) {
  Pending p;
  p.active = true;
  const HwEvent ev = pic == kClockPic ? HwEvent::Cycle_cnt : pics_[pic].event;
  const u64 interval = pic == kClockPic ? clock_interval_ : pics_[pic].interval;
  const u32 skid = draw_skid(ev);
  // +1 because the trigger instruction's own retirement decrements once.
  p.skid_remaining = skid + 1;
  p.partial.pic = pic;
  p.partial.event = ev;
  p.partial.interval = interval;
  p.partial.seq = next_seq_++;
  // Clock samples have no trigger concept; ground truth covers HW counters.
  if (truth_enabled_ && pic != kClockPic) {
    truth_.push_back({p.partial.seq, pic, ev, trigger_pc, ea_valid, ea, skid});
  }
  pending_.push_back(p);
}

void Cpu::count_event(HwEvent ev, u64 amount, u64 trigger_pc, bool ea_valid, u64 ea) {
  event_totals_[static_cast<size_t>(ev)] += amount;
  const u8 pic_plus1 = pic_for_event_[static_cast<size_t>(ev)];
  if (pic_plus1 == 0) return;
  const unsigned pic = pic_plus1 - 1;
  Pic& p = pics_[pic];
  p.value += amount;
  if (p.value >= p.interval) {
    p.value %= p.interval;  // fold multiple overflows into one delivery
    trigger_overflow(pic, trigger_pc, ea_valid, ea);
  }
}

void Cpu::count_outcome(const cache::AccessOutcome& out, u64 pc, u64 ea) {
  if (out.dc_rd_miss) count_event(HwEvent::DC_rd_miss, 1, pc, true, ea);
  if (out.dc_wr_miss) count_event(HwEvent::DC_wr_miss, 1, pc, true, ea);
  if (out.ec_ref) count_event(HwEvent::EC_ref, 1, pc, true, ea);
  if (out.ec_rd_miss) count_event(HwEvent::EC_rd_miss, 1, pc, true, ea);
  if (out.dtlb_miss) count_event(HwEvent::DTLB_miss, 1, pc, true, ea);
  if (out.ec_stall_cycles) {
    count_event(HwEvent::EC_stall_cycles, out.ec_stall_cycles, pc, true, ea);
  }
}

void Cpu::deliver_due() {
  for (size_t i = 0; i < pending_.size();) {
    Pending& p = pending_[i];
    if (p.skid_remaining == 0) {
      // Fill the reusable scratch delivery: no per-event allocation (the
      // callstack assign reuses capacity after the first few deliveries).
      OverflowDelivery& d = scratch_delivery_;
      d.pic = p.partial.pic;
      d.event = p.partial.event;
      d.interval = p.partial.interval;
      d.seq = p.partial.seq;
      d.delivered_pc = pc_;
      d.regs = regs_;
      d.callstack.assign(call_stack_.begin(), call_stack_.end());
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      if (on_overflow) on_overflow(d);
    } else {
      ++i;
    }
  }
}

const Instr& Cpu::decoded(u64 pc) {
  if (decode_cache_.empty()) {
    const mem::Segment* text = nullptr;
    for (const auto& s : mem_.segments()) {
      if (s.kind == mem::SegKind::Text) text = &s;
    }
    DSP_CHECK(text != nullptr, "no text segment loaded");
    text_base_ = text->base;
    decode_cache_.resize(text->size / 4);
    decode_valid_.assign(text->size / 4, 0);
  }
  DSP_CHECK(pc >= text_base_ && (pc - text_base_) / 4 < decode_cache_.size() && pc % 4 == 0,
            "PC outside text segment");
  const size_t idx = (pc - text_base_) / 4;
  if (!decode_valid_[idx]) {
    decode_cache_[idx] = isa::decode(mem_.fetch_word(pc));
    decode_valid_[idx] = 1;
  }
  return decode_cache_[idx];
}

bool Cpu::eval_cond(isa::Cond c) const {
  using isa::Cond;
  switch (c) {
    case Cond::N: return false;
    case Cond::E: return cc_z_;
    case Cond::LE: return cc_z_ || (cc_n_ != cc_v_);
    case Cond::L: return cc_n_ != cc_v_;
    case Cond::LEU: return cc_c_ || cc_z_;
    case Cond::LU: return cc_c_;
    case Cond::A: return true;
    case Cond::NE: return !cc_z_;
    case Cond::G: return !(cc_z_ || (cc_n_ != cc_v_));
    case Cond::GE: return cc_n_ == cc_v_;
    case Cond::GU: return !(cc_c_ || cc_z_);
    case Cond::GEU: return !cc_c_;
  }
  fail("bad condition");
}

void Cpu::set_cc_add(u64 a, u64 b, u64 r) {
  cc_n_ = static_cast<i64>(r) < 0;
  cc_z_ = r == 0;
  cc_v_ = (~(a ^ b) & (a ^ r)) >> 63;
  cc_c_ = r < a;
}

void Cpu::set_cc_sub(u64 a, u64 b, u64 r) {
  cc_n_ = static_cast<i64>(r) < 0;
  cc_z_ = r == 0;
  cc_v_ = ((a ^ b) & (a ^ r)) >> 63;
  cc_c_ = a < b;  // borrow
}

void Cpu::exec_hcall(i64 code, u64 pc) {
  switch (static_cast<HostCall>(code)) {
    case HostCall::Exit:
      halted_ = true;
      exit_code_ = static_cast<i64>(regs_[isa::O0]);
      break;
    case HostCall::PutC:
      output_.push_back(static_cast<char>(regs_[isa::O0] & 0xFF));
      break;
    case HostCall::PutI:
      output_ += std::to_string(static_cast<i64>(regs_[isa::O0]));
      break;
    case HostCall::Abort:
      fail("simulated program aborted (hcall abort), %o0=" +
           std::to_string(static_cast<i64>(regs_[isa::O0])));
    case HostCall::Trace:
      trace_.push_back(static_cast<i64>(regs_[isa::O0]));
      break;
    case HostCall::NoteAlloc:
      // Attribute to the allocator's call site, not the allocator itself:
      // every allocation flows through the runtime malloc, so the noting
      // instruction's own PC would name them all "malloc[k]".
      allocs_.push_back(AllocRecord{regs_[isa::O0], regs_[isa::O1],
                                    call_stack_.empty() ? pc : call_stack_.back()});
      break;
    default:
      fail("unknown hcall code " + std::to_string(code));
  }
}

void Cpu::step() {
  deliver_due();

  if (annul_next_) {
    // The annulled delay-slot instruction is fetched but not executed; it
    // neither retires nor counts toward pending skid.
    annul_next_ = false;
    cycles_ += 1;
    count_event(HwEvent::Cycle_cnt, 1, pc_, false, 0);
    if (clock_interval_ != 0 && ++clock_accum_ >= clock_interval_) {
      clock_accum_ %= clock_interval_;
      trigger_overflow(kClockPic, pc_, false, 0);
    }
    if (slice_interval_ != 0 && ++slice_accum_ >= slice_interval_) {
      slice_accum_ %= slice_interval_;
      if (on_slice) on_slice();
    }
    pc_ = npc_;
    npc_ += 4;
    return;
  }

  const u64 pc = pc_;
  const cache::AccessOutcome fetch_out = hier_.fetch(pc);
  if (fetch_out.ic_miss) count_event(HwEvent::IC_miss, 1, pc, false, 0);

  const Instr& ins = decoded(pc);
  const isa::OpInfo& info = isa::op_info(ins.op);

  u64 next_pc = npc_;
  u64 next_npc = npc_ + 4;
  u32 cost = 1 + fetch_out.stall_cycles;

  const u64 a = regs_[ins.rs1];
  const u64 b = ins.has_imm ? static_cast<u64>(ins.imm) : regs_[ins.rs2];
  auto wr = [&](u64 v) {
    if (ins.rd != 0) regs_[ins.rd] = v;
  };

  switch (ins.op) {
    case Op::ILLEGAL:
      fail("illegal instruction at pc " + std::to_string(pc));
    case Op::SETHI:
      wr(static_cast<u64>(ins.imm) << 14);
      break;
    case Op::ADD:
      wr(a + b);
      break;
    case Op::SUB:
      wr(a - b);
      break;
    case Op::ADDCC: {
      const u64 r = a + b;
      set_cc_add(a, b, r);
      wr(r);
      break;
    }
    case Op::SUBCC: {
      const u64 r = a - b;
      set_cc_sub(a, b, r);
      wr(r);
      break;
    }
    case Op::MULX:
      cost += cfg_.mul_extra_cycles;
      wr(a * b);
      break;
    case Op::SDIVX: {
      cost += cfg_.div_extra_cycles;
      if (b == 0) fail("division by zero at pc " + std::to_string(pc));
      wr(static_cast<u64>(static_cast<i64>(a) / static_cast<i64>(b)));
      break;
    }
    case Op::UDIVX:
      cost += cfg_.div_extra_cycles;
      if (b == 0) fail("division by zero at pc " + std::to_string(pc));
      wr(a / b);
      break;
    case Op::AND:
      wr(a & b);
      break;
    case Op::OR:
      wr(a | b);
      break;
    case Op::XOR:
      wr(a ^ b);
      break;
    case Op::ANDN:
      wr(a & ~b);
      break;
    case Op::SLL:
      wr(a << (b & 63));
      break;
    case Op::SRL:
      wr(a >> (b & 63));
      break;
    case Op::SRA:
      wr(static_cast<u64>(static_cast<i64>(a) >> (b & 63)));
      break;
    case Op::LDX:
    case Op::LDUW:
    case Op::LDUB: {
      const u64 ea = a + b;
      const u64 v = mem_.load(ea, info.mem_size);
      const cache::AccessOutcome out = hier_.load(ea);
      cost += out.stall_cycles;
      count_outcome(out, pc, ea);
      wr(v);
      break;
    }
    case Op::STX:
    case Op::STW:
    case Op::STB: {
      const u64 ea = a + b;
      mem_.store(ea, info.mem_size, regs_[ins.rd]);
      const cache::AccessOutcome out = hier_.store(ea);
      cost += out.stall_cycles;
      count_outcome(out, pc, ea);
      break;
    }
    case Op::PREFETCH: {
      const u64 ea = a + b;
      // Non-faulting: silently dropped when the page is unmapped.
      if (mem_.find_segment(ea) != nullptr) {
        const cache::AccessOutcome out = hier_.prefetch(ea);
        if (out.ec_ref) count_event(HwEvent::EC_ref, 1, pc, true, ea);
      }
      break;
    }
    case Op::BR: {
      const bool taken = eval_cond(ins.cond);
      const u64 target = pc + static_cast<u64>(ins.disp);
      if (taken) {
        if (ins.annul && ins.cond == isa::Cond::A) {
          // ba,a: delay slot annulled, jump immediately.
          next_pc = target;
          next_npc = target + 4;
        } else {
          next_npc = target;
        }
      } else if (ins.annul) {
        annul_next_ = true;
      }
      break;
    }
    case Op::CALL: {
      regs_[isa::kLink] = pc;
      next_npc = pc + static_cast<u64>(ins.disp);
      call_stack_.push_back(pc);
      break;
    }
    case Op::JMPL: {
      const u64 target = a + b;
      DSP_CHECK(target % 4 == 0, "jmpl to misaligned target");
      wr(pc);
      next_npc = target;
      // A return (jmpl %g0, %o7 + 8) pops the shadow call stack.
      if (ins.rd == 0 && ins.rs1 == isa::kLink && !call_stack_.empty()) {
        call_stack_.pop_back();
      }
      break;
    }
    case Op::HCALL:
      exec_hcall(ins.imm, pc);
      break;
    default:
      fail("unhandled opcode");
  }

  cycles_ += cost;
  ++instructions_;
  count_event(HwEvent::Cycle_cnt, cost, pc, false, 0);
  count_event(HwEvent::Instr_cnt, 1, pc, false, 0);

  if (clock_interval_ != 0) {
    clock_accum_ += cost;
    if (clock_accum_ >= clock_interval_) {
      clock_accum_ %= clock_interval_;
      trigger_overflow(kClockPic, pc, false, 0);
    }
  }

  // Slice timer: fires between instructions (this one has fully counted, the
  // next has not started), so a rotation callback sees consistent registers.
  if (slice_interval_ != 0) {
    slice_accum_ += cost;
    if (slice_accum_ >= slice_interval_) {
      slice_accum_ %= slice_interval_;
      if (on_slice) on_slice();
    }
  }

  // This instruction retired: pending deliveries skid one instruction closer.
  for (auto& p : pending_) {
    if (p.skid_remaining > 0) --p.skid_remaining;
  }

  pc_ = next_pc;
  npc_ = next_npc;
}

RunResult Cpu::run(u64 max_instructions) {
  const u64 instr0 = instructions_;
  const u64 cyc0 = cycles_;
  while (!halted_) {
    step();
    if (max_instructions != 0 && instructions_ - instr0 >= max_instructions) break;
  }
  if (halted_) {
    // Deliveries still skidding when the program exits are flushed at the
    // exit point (the signal arrives during process teardown).
    for (auto& p : pending_) p.skid_remaining = 0;
    deliver_due();
  }
  RunResult r;
  r.halted = halted_;
  r.exit_code = exit_code_;
  r.instructions = instructions_ - instr0;
  r.cycles = cycles_ - cyc0;
  return r;
}

}  // namespace dsprof::machine
