// The s3 CPU interpreter with timing, hardware counters, overflow skid,
// clock-profile sampling, and a ground-truth event log.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "cache/hierarchy.hpp"
#include "isa/isa.hpp"
#include "machine/counters.hpp"
#include "mem/memory.hpp"
#include "support/rng.hpp"

namespace dsprof::machine {

struct CpuConfig {
  cache::HierarchyConfig hierarchy = cache::HierarchyConfig::ultrasparc3();
  u64 clock_hz = 900'000'000;  // the paper's 900 MHz US-III Cu
  u64 seed = 1;                // drives the skid distribution
  // Extra base cycles for expensive ops (beyond the 1-cycle issue cost).
  u32 mul_extra_cycles = 4;
  u32 div_extra_cycles = 40;
  // Multiplier applied to every event's skid bounds; 0 makes all counters
  // precise (used by the skid-ablation bench).
  double skid_scale = 1.0;
};

struct RunResult {
  bool halted = false;   // program executed HCALL Exit
  i64 exit_code = 0;
  u64 instructions = 0;  // retired this run() call
  u64 cycles = 0;        // elapsed this run() call
};

class Cpu {
 public:
  Cpu(mem::Memory& memory, const CpuConfig& cfg);

  // --- program setup -------------------------------------------------------
  void set_pc(u64 pc);
  void set_reg(unsigned r, u64 v);
  u64 reg(unsigned r) const { return regs_[r]; }
  u64 pc() const { return pc_; }

  // --- counter control -----------------------------------------------------
  /// Program PIC `pic` to count `ev`, overflowing every `interval` counts.
  /// `start_value` pre-loads the counter register (how a multiplexing driver
  /// resumes a partially-counted interval when its set comes back on duty).
  /// Throws Error if the event cannot be counted on that register.
  void configure_pic(unsigned pic, HwEvent ev, u64 interval, u64 start_value = 0);
  void disable_pic(unsigned pic);
  /// Current counter register value (the residual a multiplexing driver saves
  /// before switching the register to another event).
  u64 pic_value(unsigned pic) const;
  /// Enable clock profiling: a sample every `interval_cycles` cycles.
  void configure_clock_profiling(u64 interval_cycles);

  /// Arm the slice timer: `on_slice` fires between instructions every
  /// `interval_cycles` cycles (0 disarms). This is the OS-timer the
  /// counter-multiplexing scheduler rotates counter sets on; unlike the
  /// clock-profile path it delivers precisely (no skid) — it is a timer
  /// interrupt, not a counter overflow trap.
  void configure_slice_timer(u64 interval_cycles);

  /// Invoked at each (skidded) overflow delivery and clock sample.
  std::function<void(const OverflowDelivery&)> on_overflow;
  /// Invoked at each slice-timer expiry (see configure_slice_timer).
  std::function<void()> on_slice;

  // --- execution -----------------------------------------------------------
  /// Run until HCALL Exit or `max_instructions` retired (0 = no limit).
  RunResult run(u64 max_instructions = 0);

  bool halted() const { return halted_; }
  i64 exit_code() const { return exit_code_; }

  // --- statistics & ground truth -------------------------------------------
  u64 total_instructions() const { return instructions_; }
  u64 total_cycles() const { return cycles_; }
  /// True (unsampled) total for each event — the oracle the sampled profile
  /// estimates.
  u64 event_total(HwEvent ev) const { return event_totals_[static_cast<size_t>(ev)]; }

  void set_truth_log_enabled(bool on) { truth_enabled_ = on; }
  const std::vector<TruthRecord>& truth_log() const { return truth_; }

  const std::string& output() const { return output_; }
  const std::vector<i64>& trace() const { return trace_; }

  /// Heap allocations the program reported via HostCall::NoteAlloc, in
  /// allocation order; each carries the PC of the noting instruction so the
  /// analyzer can name the allocation site.
  const std::vector<AllocRecord>& allocations() const { return allocs_; }

  const cache::MemoryHierarchy& hierarchy() const { return hier_; }
  mem::Memory& memory() { return mem_; }

 private:
  struct Pic {
    bool enabled = false;
    HwEvent event = HwEvent::Cycle_cnt;
    u64 interval = 0;
    u64 value = 0;
  };

  struct Pending {
    bool active = false;
    u32 skid_remaining = 0;
    OverflowDelivery partial;  // filled except regs/delivered_pc
  };

  void step();
  void deliver_due();
  void count_event(HwEvent ev, u64 amount, u64 trigger_pc, bool ea_valid, u64 ea);
  void trigger_overflow(unsigned pic, u64 trigger_pc, bool ea_valid, u64 ea);
  void count_outcome(const cache::AccessOutcome& out, u64 pc, u64 ea);
  u32 draw_skid(HwEvent ev);
  const isa::Instr& decoded(u64 pc);
  void exec_hcall(i64 code, u64 pc);
  bool eval_cond(isa::Cond c) const;
  void set_cc_add(u64 a, u64 b, u64 r);
  void set_cc_sub(u64 a, u64 b, u64 r);

  mem::Memory& mem_;
  CpuConfig cfg_;
  cache::MemoryHierarchy hier_;
  Xoshiro256 rng_;

  std::array<u64, 32> regs_{};
  u64 pc_ = 0;
  u64 npc_ = 4;
  bool annul_next_ = false;
  bool cc_n_ = false, cc_z_ = false, cc_v_ = false, cc_c_ = false;
  bool halted_ = false;
  i64 exit_code_ = 0;

  u64 instructions_ = 0;
  u64 cycles_ = 0;
  std::array<u64, kNumHwEvents> event_totals_{};
  // Shadow call stack (call-site PCs) maintained by CALL/ret execution; the
  // stand-in for the collector's frame unwinding.
  std::vector<u64> call_stack_;

  std::array<Pic, kNumPics> pics_{};
  // Fast event -> PIC routing: 0 = not counted, else PIC index + 1.
  std::array<u8, kNumHwEvents> pic_for_event_{};
  void rebuild_event_routing();
  std::vector<Pending> pending_;  // in-flight skidding deliveries
  // Reused for every delivery so the hot path performs no per-event heap
  // allocation (the callstack vector keeps its capacity between events).
  OverflowDelivery scratch_delivery_;
  u64 clock_interval_ = 0;        // 0 = clock profiling off
  u64 clock_accum_ = 0;
  u64 slice_interval_ = 0;        // 0 = slice timer off
  u64 slice_accum_ = 0;
  u64 next_seq_ = 0;

  bool truth_enabled_ = true;
  std::vector<TruthRecord> truth_;
  std::string output_;
  std::vector<i64> trace_;
  std::vector<AllocRecord> allocs_;

  // Decode cache over the text segment.
  u64 text_base_ = 0;
  std::vector<isa::Instr> decode_cache_;
  std::vector<u8> decode_valid_;
};

}  // namespace dsprof::machine
