// Host-call service codes for the HCALL instruction — the simulated
// program's only channel to the outside (stands in for Solaris syscalls).
#pragma once

#include "support/common.hpp"

namespace dsprof::machine {

enum class HostCall : i64 {
  Exit = 0,   // terminate; %o0 = exit code
  PutC = 1,   // append low byte of %o0 to the program's output stream
  PutI = 2,   // append decimal of signed %o0 to the output stream
  Abort = 3,  // raise a simulator Error (failed assertion in DSL code)
  Trace = 4,      // append %o0 to the host-visible trace vector (test oracle)
  NoteAlloc = 5,  // record a heap allocation: %o0 = address, %o1 = size
};

}  // namespace dsprof::machine
