#include "mcf/generator.hpp"

#include <algorithm>

#include "support/rng.hpp"

namespace dsprof::mcf {

Network generate_instance(const GeneratorParams& p) {
  DSP_CHECK(p.nodes >= 4, "need at least 4 nodes");
  DSP_CHECK(p.sources >= 1 && 2 * p.sources < p.nodes, "bad source count");
  Xoshiro256 rng(p.seed);

  Network net;
  net.n = p.nodes;
  net.supply.assign(static_cast<size_t>(p.nodes + 1), 0);
  for (i64 s = 0; s < p.sources; ++s) {
    net.supply[static_cast<size_t>(1 + s)] = p.units;                    // pull-outs
    net.supply[static_cast<size_t>(p.nodes - s)] = -p.units;             // pull-ins
  }

  // Feasibility chain i -> i+1: ample capacity but expensive, so the optimal
  // basis prefers the random deadhead arcs — the resulting spanning tree
  // connects memory-distant nodes, giving refresh_potential the cache- and
  // TLB-hostile traversal the paper observes.
  for (i64 i = 1; i < p.nodes; ++i) {
    CandArc c;
    c.tail = i;
    c.head = i + 1;
    c.cost = p.max_cost + static_cast<cost_t>(rng.below(16));
    c.cap = p.units * p.sources;  // can carry everything
    net.cands.push_back(c);
  }
  // Random forward deadhead arcs: hub arcs fan out from the earliest trips
  // across the whole timetable; the rest stay within the local window.
  for (i64 k = 0; k < p.arcs; ++k) {
    CandArc c;
    if (rng.uniform() < p.hub_fraction) {
      c.tail = 1 + static_cast<i64>(rng.below(static_cast<u64>(std::min(p.hubs, p.nodes - 1))));
    } else {
      c.tail = 1 + static_cast<i64>(rng.below(static_cast<u64>(p.nodes - 1)));
    }
    const i64 reach = c.tail <= p.hubs ? p.nodes - c.tail
                                       : std::min<i64>(p.window, p.nodes - c.tail);
    c.head = c.tail + 1 + static_cast<i64>(rng.below(static_cast<u64>(reach)));
    c.cost = static_cast<cost_t>(rng.below(static_cast<u64>(p.max_cost)));
    c.cap = 1 + static_cast<flow_t>(rng.below(static_cast<u64>(p.max_cap)));
    net.cands.push_back(c);
  }

  // Reserve the full arc array; activate a prefix (the rest price in).
  net.arcs.assign(net.cands.size(), Arc{});
  return net;
}

}  // namespace dsprof::mcf
