// Deterministic instance generator replacing the SPEC `mcf.in` input (which
// we do not have): a vehicle-scheduling-flavoured min-cost-flow instance on
// a timeline of trips. Sources (depot pull-outs) feed the earliest trips,
// sinks (pull-ins) drain the latest; candidate deadhead arcs connect
// time-compatible trips. All arcs point forward in time, costs are
// nonnegative, and a high-capacity chain guarantees feasibility.
#pragma once

#include "mcf/net.hpp"

namespace dsprof::mcf {

struct GeneratorParams {
  u64 seed = 42;
  i64 nodes = 1000;          // trips
  i64 arcs = 8000;           // candidate deadhead arcs (the implicit set)
  i64 sources = 8;           // supply nodes (earliest trips)
  flow_t units = 4;          // supply per source
  i64 window = 64;           // max forward distance of a deadhead arc
  cost_t max_cost = 1000;
  flow_t max_cap = 3;        // deadhead arc capacity
  /// Fraction of candidate arcs activated up front (the rest are priced in
  /// by price_out_impl).
  double initial_active = 0.25;
  /// Hub structure: this fraction of deadhead arcs leaves one of the first
  /// `hubs` trips (depot-like pull-outs reaching far into the timetable).
  /// Hubs keep the optimal basis tree shallow — like real vehicle-scheduling
  /// bases — so pivots stay cheap relative to refresh_potential.
  double hub_fraction = 0.35;
  i64 hubs = 16;
};

/// Build a Network ready for primal_start_artificial()+global_opt().
/// The arcs array is reserved for the full candidate set.
Network generate_instance(const GeneratorParams& p);

}  // namespace dsprof::mcf
