// Native C++ reimplementation of the MCF benchmark (SPEC CPU 2000 181.mcf,
// Löbel's network simplex vehicle scheduler) — the paper's case study (§3).
//
// Data-structure layouts reproduce the paper's Figure 7 exactly:
//   node: 15 eight-byte members, 120 bytes; orientation at +56, child at +24,
//         potential at +88 — the hot members the analysis identifies.
//   arc:  64 bytes with cost at +32 (Figures 4/5 show arc.cost loads at +32).
//
// This native version is the algorithmic reference/oracle; src/mcfsim/
// expresses the same program in the scc DSL for profiling on the simulator.
#pragma once

#include <string>
#include <vector>

#include "support/common.hpp"

namespace dsprof::mcf {

using cost_t = i64;
using flow_t = i64;

inline constexpr i64 kUp = 1;
inline constexpr i64 kDown = 0;

// Arc states (ident). Suspended arcs live beyond net.m (the active prefix)
// and are only touched by price_out_impl / suspend_impl, as in the original.
inline constexpr i64 kBasic = 0;
inline constexpr i64 kAtLower = 1;
inline constexpr i64 kAtUpper = 2;
inline constexpr i64 kSuspended = 3;

struct Arc;

struct Node {
  i64 number;          // +0
  char* ident;         // +8   (name pointer; unused, kept for layout)
  Node* pred;          // +16  parent in the basis tree
  Node* child;         // +24  first child
  Node* sibling;       // +32  next sibling
  Node* sibling_prev;  // +40
  i64 depth;           // +48
  i64 orientation;     // +56  kUp: basic arc points node->pred
  Arc* basic_arc;      // +64
  Arc* firstout;       // +72
  Arc* firstin;        // +80
  cost_t potential;    // +88
  flow_t flow;         // +96
  i64 mark;            // +104
  i64 time;            // +112
};  // 120 bytes
static_assert(sizeof(Node) == 120, "node must be 120 bytes (paper Figure 7)");

struct Arc {
  Node* tail;       // +0
  Node* head;       // +8
  i64 ident;        // +16
  flow_t flow;      // +24
  cost_t cost;      // +32  (paper Figures 4/5)
  flow_t cap;       // +40
  Arc* nextout;     // +48
  cost_t org_cost;  // +56
};  // 64 bytes
static_assert(sizeof(Arc) == 64, "arc must be 64 bytes");

/// Candidate arc of the full (implicit) arc universe; price_out_impl
/// activates violating candidates into the working arc array (column
/// generation, §3).
struct CandArc {
  i64 tail = 0, head = 0;  // 1-based node numbers
  cost_t cost = 0;
  flow_t cap = 0;
};

/// Basket entry for multiple partial pricing (the BASKET of the original).
struct BasketEntry {
  Arc* a = nullptr;
  cost_t cost = 0;      // reduced cost when last evaluated
  cost_t abs_cost = 0;  // violation magnitude (sort key)
};

struct Network {
  i64 n = 0;           // real nodes, numbered 1..n (0 is the artificial root)
  i64 m = 0;           // active arcs (prefix of `arcs`)
  i64 total_arcs = 0;  // active + suspended (set when arcs materialize)
  std::vector<Node> nodes;       // size n+1
  std::vector<Arc> arcs;         // all candidates; [0, m) active, rest suspended
  std::vector<Arc> dummy_arcs;   // n artificial root arcs
  std::vector<flow_t> supply;    // size n+1 (index by node number)
  std::vector<CandArc> cands;    // the implicit arc universe
  cost_t art_cost = 0;           // BIG-M cost on artificial arcs

  // Multiple-partial-pricing state (primal_bea_mpp): the basket persists
  // across calls; stale entries are re-priced and dropped each call.
  i64 price_pos = 0;
  std::vector<BasketEntry> basket;

  // Instrumentation.
  u64 iterations = 0;
  u64 refreshes = 0;
  u64 checksum = 0;

  Node* root() { return &nodes[0]; }
};

/// Simplex tuning (the refresh cadence is the workload knob that sets
/// refresh_potential's share of the profile, as in the paper's Figure 2).
struct SimplexParams {
  i64 basket_size = 50;
  i64 group_size = 300;
  i64 refresh_gap = 4;       // refresh_potential every N pivots
  u64 max_iterations = 50'000'000;
  /// suspend_impl cut-off: after each simplex phase, deactivate flowless
  /// AT_LOWER arcs whose reduced cost exceeds this. Negative = disabled.
  cost_t suspend_threshold = -1;
};

/// Build the initial basis of artificial arcs (primal_start_artificial).
void primal_start_artificial(Network& net);

/// Recompute all node potentials by traversing the basis tree — the paper's
/// critical loop (Figure 3). Returns the checksum of DOWN-oriented nodes.
i64 refresh_potential(Network& net);

/// Multiple partial pricing: return the best eligible entering arc, or
/// nullptr at optimality (primal_bea_mpp + sort_basket).
Arc* primal_bea_mpp(Network& net, const SimplexParams& p);

/// One pivot on entering arc `e` (ratio test = primal_iminus, then flow and
/// tree updates = update_tree).
void primal_pivot(Network& net, Arc* e);

/// Run network simplex to optimality on the active arcs.
void primal_net_simplex(Network& net, const SimplexParams& p);

/// Column generation: activate candidate arcs with negative reduced cost
/// (up to `max_new`); returns how many were added (price_out_impl).
i64 price_out_impl(Network& net, i64 max_new);

/// Unconditionally activate the first `count` not-yet-active candidates
/// (the initial working set before any pricing).
void activate_arcs(Network& net, i64 count);

/// suspend_impl: deactivate flowless AT_LOWER active arcs whose reduced cost
/// exceeds `threshold`, swapping them out of the active prefix (they remain
/// candidates for price_out_impl). Returns the number suspended.
i64 suspend_impl(Network& net, cost_t threshold);

/// Convenience pipeline: primal_start_artificial + initial activation +
/// global_opt. Returns the optimal cost.
cost_t solve(Network& net, const SimplexParams& p, double initial_active = 0.25);

/// Full solve: simplex + pricing rounds until no candidate prices in
/// (global_opt). Returns the optimal cost.
cost_t global_opt(Network& net, const SimplexParams& p);

/// Objective of the current flow (flow_cost). Calls refresh_potential first,
/// as the original does.
cost_t flow_cost(Network& net);

/// Number of dual-feasibility violations (0 at optimality): BASIC arcs must
/// have zero reduced cost, AT_LOWER nonnegative, AT_UPPER nonpositive
/// (dual_feasible).
i64 dual_feasible(Network& net);

/// True if all artificial arcs carry zero flow (the instance was feasible).
bool primal_feasible(Network& net);

/// Reduced cost under the paper's orientation convention:
/// rc(a) = cost - potential(tail) + potential(head); zero on basic arcs.
inline cost_t red_cost(const Arc& a) {
  return a.cost - a.tail->potential + a.head->potential;
}

/// Text dump of positive flows (write_circulations). At most `max_rows` rows.
std::string write_circulations(Network& net, size_t max_rows = 50);

}  // namespace dsprof::mcf
