#include <algorithm>
#include <sstream>

#include "mcf/net.hpp"

namespace dsprof::mcf {

namespace {

// --- basis-tree child-list surgery -----------------------------------------

void detach(Node* x) {
  if (x->sibling_prev) {
    x->sibling_prev->sibling = x->sibling;
  } else {
    x->pred->child = x->sibling;
  }
  if (x->sibling) x->sibling->sibling_prev = x->sibling_prev;
  x->sibling = nullptr;
  x->sibling_prev = nullptr;
}

void attach(Node* x, Node* p) {
  x->sibling = p->child;
  if (p->child) p->child->sibling_prev = x;
  p->child = x;
  x->sibling_prev = nullptr;
  x->pred = p;
}

void set_from_parent(Node* v) {
  v->depth = v->pred->depth + 1;
  if (v->orientation == kUp) {
    v->potential = v->basic_arc->cost + v->pred->potential;
  } else {
    v->potential = v->pred->potential - v->basic_arc->cost;
  }
}

/// Preorder walk of the subtree rooted at q, refreshing depth & potential.
void update_subtree(Node* q) {
  Node* v = q;
  while (true) {
    if (v->child) {
      v = v->child;
      set_from_parent(v);
      continue;
    }
    while (v != q && v->sibling == nullptr) v = v->pred;
    if (v == q) break;
    v = v->sibling;
    set_from_parent(v);
  }
}

flow_t residual_up(const Arc& a) { return a.cap - a.flow; }

}  // namespace

void primal_start_artificial(Network& net) {
  DSP_CHECK(net.n >= 1, "empty network");
  DSP_CHECK(static_cast<i64>(net.supply.size()) == net.n + 1, "supply size mismatch");
  net.nodes.assign(static_cast<size_t>(net.n + 1), Node{});
  net.dummy_arcs.assign(static_cast<size_t>(net.n), Arc{});

  // art_cost: larger than any path cost so artificials leave the basis.
  cost_t max_c = 1;
  for (const auto& c : net.cands) max_c = std::max(max_c, c.cost < 0 ? -c.cost : c.cost);
  net.art_cost = (max_c + 1) * (net.n + 1);

  Node* root = net.root();
  root->number = 0;
  root->potential = -net.art_cost;  // as in the original (refresh keeps it fixed)
  root->depth = 0;

  for (i64 i = 1; i <= net.n; ++i) {
    Node* v = &net.nodes[static_cast<size_t>(i)];
    Arc* a = &net.dummy_arcs[static_cast<size_t>(i - 1)];
    v->number = i;
    const flow_t b = net.supply[static_cast<size_t>(i)];
    if (b >= 0) {
      // Supply flows i -> root.
      a->tail = v;
      a->head = root;
      v->orientation = kUp;
    } else {
      a->tail = root;
      a->head = v;
      v->orientation = kDown;
    }
    a->cost = net.art_cost;
    a->cap = net.art_cost;  // effectively unbounded
    a->flow = b >= 0 ? b : -b;
    a->ident = kBasic;
    v->basic_arc = a;
    v->flow = a->flow;
    attach(v, root);
    set_from_parent(v);
  }

  // Materialize the candidate universe (all suspended; activate_arcs or
  // price_out_impl move arcs into the active prefix).
  net.total_arcs = static_cast<i64>(net.cands.size());
  net.m = 0;
  for (size_t i = 0; i < net.cands.size(); ++i) {
    const CandArc& c = net.cands[i];
    Arc& a2 = net.arcs[i];
    a2.tail = &net.nodes[static_cast<size_t>(c.tail)];
    a2.head = &net.nodes[static_cast<size_t>(c.head)];
    a2.cost = c.cost;
    a2.org_cost = c.cost;
    a2.cap = c.cap;
    a2.flow = 0;
    a2.ident = kSuspended;
    a2.nextout = nullptr;
  }
}

i64 refresh_potential(Network& net) {
  // The paper's Figure 3 critical loop, verbatim structure.
  Node* root = net.root();
  Node* node = root->child;
  Node* tmp = node;
  i64 checksum = 0;
  while (node != root && node != nullptr) {
    while (node) {
      if (node->orientation == kUp) {
        node->potential = node->basic_arc->cost + node->pred->potential;
      } else { /* == DOWN */
        node->potential = node->pred->potential - node->basic_arc->cost;
        checksum++;
      }
      tmp = node;
      node = node->child;
    }
    node = tmp;
    while (node->pred) {
      tmp = node->sibling;
      if (tmp) {
        node = tmp;
        break;
      }
      node = node->pred;
    }
  }
  ++net.refreshes;
  net.checksum += static_cast<u64>(checksum);
  return checksum;
}

namespace {

/// sort_basket: descending by violation (the original's quicksort).
void sort_basket(std::vector<BasketEntry>& basket) {
  std::sort(basket.begin(), basket.end(), [](const BasketEntry& x, const BasketEntry& y) {
    if (x.abs_cost != y.abs_cost) return x.abs_cost > y.abs_cost;
    return x.a < y.a;
  });
}

bool eligible(const Arc& a, cost_t* red, cost_t* viol) {
  const cost_t rc = red_cost(a);
  *red = rc;
  if (a.ident == kAtLower && rc < 0) {
    *viol = -rc;
    return true;
  }
  if (a.ident == kAtUpper && rc > 0) {
    *viol = rc;
    return true;
  }
  return false;
}

}  // namespace

Arc* primal_bea_mpp(Network& net, const SimplexParams& p) {
  // Multiple partial pricing: re-price the persistent basket, then scan
  // groups of arcs round-robin from the last position until the basket holds
  // enough candidates (or everything has been scanned, proving optimality
  // when the basket stays empty). Amortized cost per pivot is one group, not
  // one full scan.
  cost_t red, viol;
  size_t keep = 0;
  for (const BasketEntry& e : net.basket) {
    if (eligible(*e.a, &red, &viol)) net.basket[keep++] = {e.a, red, viol};
  }
  net.basket.resize(keep);

  // Refill: scan one group per call; only an empty basket justifies
  // continuing (a full fruitless sweep proves optimality).
  i64 scanned = 0;
  i64 pos = net.price_pos;
  if (pos >= net.m) pos = 0;  // the active set may have shrunk (suspend_impl)
  while (scanned < net.m && static_cast<i64>(net.basket.size()) < p.basket_size &&
         (scanned < p.group_size || net.basket.empty())) {
    Arc* a = &net.arcs[static_cast<size_t>(pos)];
    pos = pos + 1 == net.m ? 0 : pos + 1;
    ++scanned;
    if (eligible(*a, &red, &viol)) net.basket.push_back({a, red, viol});
  }
  net.price_pos = pos;
  if (net.basket.empty()) {
    // Also price the artificial arcs (they can re-enter in pathological
    // cases; normally never eligible because of the BIG-M cost).
    for (auto& a : net.dummy_arcs) {
      if (a.ident != kBasic && eligible(a, &red, &viol)) net.basket.push_back({&a, red, viol});
    }
  }
  if (net.basket.empty()) return nullptr;
  sort_basket(net.basket);
  return net.basket.front().a;
}

namespace {

/// Ratio test (primal_iminus): walk the cycle closed by `e`, find delta and
/// the blocking arc. Returns the node whose basic arc blocks (or nullptr if
/// the entering arc blocks itself), plus which side of the cycle it is on.
struct RatioResult {
  flow_t delta = 0;
  Node* block = nullptr;  // node whose basic arc is the leaving arc
  bool block_on_tail_side = false;
};

RatioResult ratio_test(Arc* e, Node* join, Node* tail, Node* head, bool push_forward) {
  RatioResult r;
  // Entering arc residual bound.
  r.delta = push_forward ? residual_up(*e) : e->flow;

  // Cycle direction with push_forward: enter tail -> head, descend the tail
  // side (pred(x) -> x), ascend the head side (x -> pred(x)); a basic arc is
  // flow-increasing when aligned with the traversal. Pushing backward (an
  // AT_UPPER entering arc) flips every direction.
  for (Node* x = tail; x != join; x = x->pred) {
    const Arc* a = x->basic_arc;
    const bool increases = (x->orientation == kDown) == push_forward;
    const flow_t room = increases ? residual_up(*a) : a->flow;
    if (room < r.delta) {
      r.delta = room;
      r.block = x;
      r.block_on_tail_side = true;
    }
  }
  for (Node* x = head; x != join; x = x->pred) {
    const Arc* a = x->basic_arc;
    const bool increases = (x->orientation == kUp) == push_forward;
    const flow_t room = increases ? residual_up(*a) : a->flow;
    if (room < r.delta) {
      r.delta = room;
      r.block = x;
      r.block_on_tail_side = false;
    }
  }
  return r;
}

void apply_flows(Arc* e, Node* join, Node* tail, Node* head, bool push_forward, flow_t delta) {
  e->flow += push_forward ? delta : -delta;
  for (Node* x = tail; x != join; x = x->pred) {
    Arc* a = x->basic_arc;
    const bool increases = (x->orientation == kDown) == push_forward;
    a->flow += increases ? delta : -delta;
    x->flow = a->flow;
  }
  for (Node* x = head; x != join; x = x->pred) {
    Arc* a = x->basic_arc;
    const bool increases = (x->orientation == kUp) == push_forward;
    a->flow += increases ? delta : -delta;
    x->flow = a->flow;
  }
}

/// Re-root the subtree cut by removing `block`'s basic arc, attaching it to
/// the rest of the tree through entering arc `e` at node `q` (update_tree).
void update_tree(Arc* e, Node* q, Node* block) {
  Node* prev = (e->tail == q) ? e->head : e->tail;  // new parent of q
  Arc* carried = e;
  Node* cur = q;
  while (true) {
    Node* next = cur->pred;
    Arc* old_arc = cur->basic_arc;
    detach(cur);
    cur->basic_arc = carried;
    cur->orientation = (carried->tail == cur) ? kUp : kDown;
    cur->flow = carried->flow;
    attach(cur, prev);
    carried = old_arc;
    prev = cur;
    if (cur == block) break;
    cur = next;
  }
  set_from_parent(q);
  update_subtree(q);
}

}  // namespace

void primal_pivot(Network& net, Arc* e) {
  Node* tail = e->tail;
  Node* head = e->head;
  const bool push_forward = e->ident == kAtLower;

  // Find the join (deepest common ancestor).
  Node* t = tail;
  Node* h = head;
  while (t->depth > h->depth) t = t->pred;
  while (h->depth > t->depth) h = h->pred;
  while (t != h) {
    t = t->pred;
    h = h->pred;
  }
  Node* join = t;

  const RatioResult r = ratio_test(e, join, tail, head, push_forward);
  apply_flows(e, join, tail, head, push_forward, r.delta);

  if (r.block == nullptr) {
    // The entering arc itself blocks: it moves between its bounds without a
    // basis change.
    e->ident = push_forward ? kAtUpper : kAtLower;
    ++net.iterations;
    return;
  }

  // Leaving arc goes to the bound it hit.
  Arc* leaving = r.block->basic_arc;
  leaving->ident = leaving->flow == leaving->cap ? kAtUpper : kAtLower;
  DSP_CHECK(leaving->flow == 0 || leaving->flow == leaving->cap,
            "leaving arc must be at a bound");

  e->ident = kBasic;
  Node* q = r.block_on_tail_side ? tail : head;
  update_tree(e, q, r.block);
  ++net.iterations;
}

void primal_net_simplex(Network& net, const SimplexParams& p) {
  u64 since_refresh = 0;
  while (Arc* e = primal_bea_mpp(net, p)) {
    primal_pivot(net, e);
    DSP_CHECK(net.iterations < p.max_iterations, "simplex iteration limit exceeded");
    if (++since_refresh >= static_cast<u64>(p.refresh_gap)) {
      refresh_potential(net);
      since_refresh = 0;
    }
  }
  refresh_potential(net);
}

i64 price_out_impl(Network& net, i64 max_new) {
  // Scan the entire suspended (implicit) arc set, as the original does;
  // reactivate at most max_new violating candidates by swapping them into
  // the active prefix (suspended arcs are never basic, so no basis pointers
  // move on that side).
  i64 added = 0;
  for (i64 i = net.m; i < net.total_arcs; ++i) {
    Arc& a = net.arcs[static_cast<size_t>(i)];
    const cost_t rc = red_cost(a);
    if (rc < 0 && added < max_new) {
      Arc& b = net.arcs[static_cast<size_t>(net.m)];
      std::swap(a, b);
      b.ident = kAtLower;
      ++net.m;
      ++added;
    }
  }
  return added;
}

i64 suspend_impl(Network& net, cost_t threshold) {
  // Deactivate flowless AT_LOWER arcs with strongly positive reduced cost:
  // swap them past the end of the active prefix. The arc previously at the
  // prefix end may be basic — repoint its owning node's basic_arc.
  i64 suspended = 0;
  i64 i = 0;
  while (i < net.m) {
    Arc& a = net.arcs[static_cast<size_t>(i)];
    if (a.ident == kAtLower && a.flow == 0 && red_cost(a) > threshold) {
      Arc& last = net.arcs[static_cast<size_t>(net.m - 1)];
      std::swap(a, last);
      last.ident = kSuspended;
      --net.m;
      ++suspended;
      if (&a != &last && a.ident == kBasic) {
        // `a` now holds the arc that lived at the prefix end; exactly one of
        // its endpoints (the deeper one) owns it as basic_arc.
        Node* owner = a.tail->basic_arc == &last ? a.tail : a.head;
        DSP_CHECK(owner->basic_arc == &last, "basic arc ownership lost in suspend");
        owner->basic_arc = &a;
      }
      // Re-examine slot i (it holds a different arc now).
      continue;
    }
    ++i;
  }
  // Swapped arcs invalidate basket pointers' meaning; it re-prices anyway,
  // but entries now pointing at suspended slots must be dropped — the
  // revalidation in primal_bea_mpp handles that via the ident check. The
  // round-robin scan position may now lie beyond the active prefix.
  if (net.price_pos >= net.m) net.price_pos = 0;
  return suspended;
}

void activate_arcs(Network& net, i64 count) {
  // The initial working set is a prefix of the candidate order.
  DSP_CHECK(net.m == 0, "activate_arcs must run before any pricing");
  count = std::min(count, net.total_arcs);
  for (i64 i = 0; i < count; ++i) net.arcs[static_cast<size_t>(i)].ident = kAtLower;
  net.m = count;
}

cost_t solve(Network& net, const SimplexParams& p, double initial_active) {
  primal_start_artificial(net);
  activate_arcs(net, static_cast<i64>(static_cast<double>(net.cands.size()) * initial_active));
  return global_opt(net, p);
}

cost_t global_opt(Network& net, const SimplexParams& p) {
  primal_net_simplex(net, p);
  for (u64 round = 0;; ++round) {
    DSP_CHECK(round < 10000, "global_opt did not converge");
    if (p.suspend_threshold >= 0) suspend_impl(net, p.suspend_threshold);
    if (price_out_impl(net, net.n / 8 + 16) == 0) break;
    primal_net_simplex(net, p);
  }
  return flow_cost(net);
}

cost_t flow_cost(Network& net) {
  refresh_potential(net);
  cost_t total = 0;
  for (i64 i = 0; i < net.m; ++i) {
    const Arc& a = net.arcs[static_cast<size_t>(i)];
    total += a.cost * a.flow;
  }
  for (const Arc& a : net.dummy_arcs) total += a.cost * a.flow;
  return total;
}

i64 dual_feasible(Network& net) {
  i64 violations = 0;
  auto check = [&](const Arc& a) {
    const cost_t rc = red_cost(a);
    switch (a.ident) {
      case kBasic:
        if (rc != 0) ++violations;
        break;
      case kAtLower:
        if (rc < 0) ++violations;
        break;
      case kAtUpper:
        if (rc > 0) ++violations;
        break;
      default:
        ++violations;
    }
  };
  for (i64 i = 0; i < net.m; ++i) check(net.arcs[static_cast<size_t>(i)]);
  for (const Arc& a : net.dummy_arcs) check(a);
  // Suspended arcs are out of the basis at their lower bound: optimality
  // additionally requires their reduced cost to be nonnegative.
  for (i64 i = net.m; i < net.total_arcs; ++i) {
    if (red_cost(net.arcs[static_cast<size_t>(i)]) < 0) ++violations;
  }
  return violations;
}

bool primal_feasible(Network& net) {
  for (const Arc& a : net.dummy_arcs) {
    if (a.flow != 0) return false;
  }
  return true;
}

std::string write_circulations(Network& net, size_t max_rows) {
  std::ostringstream os;
  size_t rows = 0;
  for (i64 i = 0; i < net.m && rows < max_rows; ++i) {
    const Arc& a = net.arcs[static_cast<size_t>(i)];
    if (a.flow > 0) {
      os << a.tail->number << " -> " << a.head->number << " flow " << a.flow << " cost "
         << a.cost << "\n";
      ++rows;
    }
  }
  return os.str();
}

}  // namespace dsprof::mcf
