#include "mcf/ssp.hpp"

#include <algorithm>

namespace dsprof::mcf {

namespace {

struct REdge {
  i64 to;
  flow_t cap;
  cost_t cost;
  size_t rev;  // index of the reverse edge in graph[to]
};

}  // namespace

SspResult ssp_solve(i64 n, const std::vector<flow_t>& supply,
                    const std::vector<CandArc>& cands) {
  // Nodes 1..n plus super-source 0 and super-sink n+1.
  const i64 S = 0;
  const i64 T = n + 1;
  std::vector<std::vector<REdge>> g(static_cast<size_t>(n + 2));
  auto add_edge = [&](i64 a, i64 b, flow_t cap, cost_t cost) {
    g[static_cast<size_t>(a)].push_back({b, cap, cost, g[static_cast<size_t>(b)].size()});
    g[static_cast<size_t>(b)].push_back({a, 0, -cost, g[static_cast<size_t>(a)].size() - 1});
  };
  flow_t need = 0;
  for (i64 i = 1; i <= n; ++i) {
    const flow_t b = supply[static_cast<size_t>(i)];
    if (b > 0) {
      add_edge(S, i, b, 0);
      need += b;
    } else if (b < 0) {
      add_edge(i, T, -b, 0);
    }
  }
  for (const auto& c : cands) add_edge(c.tail, c.head, c.cap, c.cost);

  SspResult result;
  flow_t sent = 0;
  while (sent < need) {
    // Bellman-Ford shortest path S -> T in the residual graph.
    const cost_t INF = (i64{1} << 62);
    std::vector<cost_t> dist(static_cast<size_t>(n + 2), INF);
    std::vector<i64> pv(static_cast<size_t>(n + 2), -1);
    std::vector<size_t> pe(static_cast<size_t>(n + 2), 0);
    dist[S] = 0;
    bool changed = true;
    for (i64 round = 0; round <= n + 2 && changed; ++round) {
      changed = false;
      for (i64 v = 0; v <= n + 1; ++v) {
        if (dist[static_cast<size_t>(v)] == INF) continue;
        for (size_t ei = 0; ei < g[static_cast<size_t>(v)].size(); ++ei) {
          const REdge& e = g[static_cast<size_t>(v)][ei];
          if (e.cap <= 0) continue;
          const cost_t nd = dist[static_cast<size_t>(v)] + e.cost;
          if (nd < dist[static_cast<size_t>(e.to)]) {
            dist[static_cast<size_t>(e.to)] = nd;
            pv[static_cast<size_t>(e.to)] = v;
            pe[static_cast<size_t>(e.to)] = ei;
            changed = true;
          }
        }
      }
    }
    if (dist[static_cast<size_t>(T)] == INF) break;  // no augmenting path

    // Bottleneck along the path.
    flow_t aug = need - sent;
    for (i64 v = T; v != S; v = pv[static_cast<size_t>(v)]) {
      const REdge& e = g[static_cast<size_t>(pv[static_cast<size_t>(v)])][pe[static_cast<size_t>(v)]];
      aug = std::min(aug, e.cap);
    }
    for (i64 v = T; v != S; v = pv[static_cast<size_t>(v)]) {
      REdge& e = g[static_cast<size_t>(pv[static_cast<size_t>(v)])][pe[static_cast<size_t>(v)]];
      e.cap -= aug;
      g[static_cast<size_t>(v)][e.rev].cap += aug;
      result.cost += e.cost * aug;
    }
    sent += aug;
  }
  result.feasible = sent == need;
  return result;
}

}  // namespace dsprof::mcf
