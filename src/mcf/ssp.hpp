// Independent min-cost-flow oracle: successive shortest paths with
// Bellman-Ford on the residual graph. Slow but simple — used only to verify
// the network-simplex objective on small instances.
#pragma once

#include "mcf/net.hpp"

namespace dsprof::mcf {

struct SspResult {
  bool feasible = false;
  cost_t cost = 0;
};

/// Solve the instance described by `supply` and `cands` (the full candidate
/// arc set — SSP has no column generation; it uses every arc).
SspResult ssp_solve(i64 n, const std::vector<flow_t>& supply,
                    const std::vector<CandArc>& cands);

}  // namespace dsprof::mcf
