#include "mcfsim/experiments.hpp"

namespace dsprof::mcfsim {

namespace {

machine::CpuConfig scaled_machine() {
  machine::CpuConfig cfg;
  cfg.hierarchy.dcache = {16 * 1024, 4, 32, /*write_allocate=*/false};
  cfg.hierarchy.ecache = {128 * 1024, 2, 512, /*write_allocate=*/true};
  cfg.hierarchy.dtlb = {32, 2, 8 * 1024};
  // No E$ stream prefetch: UltraSPARC-III has no hardware prefetcher, and
  // the streaming arc scans' misses are a large part of the paper's profile
  // (primal_bea_mpp: 30% of E$ read misses at a ~14% miss rate).
  cfg.hierarchy.ec_stream_prefetch = false;
  return cfg;
}

}  // namespace

PaperSetup PaperSetup::standard(u64 seed) {
  PaperSetup s;
  s.run.instance.seed = seed;
  s.run.instance.nodes = 1200;
  // A large implicit arc universe, mostly suspended: column generation
  // (price_out_impl) sweeps it every round, as in the vehicle-scheduling
  // original.
  s.run.instance.arcs = 20000;
  s.run.instance.initial_active = 0.30;
  s.run.instance.sources = 6;
  s.run.instance.units = 4;
  s.run.instance.window = 900;  // long-range deadheads: memory-random tree
  s.run.refresh_gap = 6;
  // suspend_impl on, as in the original: arcs cycle out of and back into the
  // active set, driving repeated price_out_impl sweeps of the implicit set.
  s.run.suspend_threshold = s.run.instance.max_cost;
  s.cpu = scaled_machine();
  return s;
}

PaperSetup PaperSetup::small(u64 seed) {
  PaperSetup s = standard(seed);
  s.run.instance.nodes = 800;
  s.run.instance.arcs = 12000;
  s.run.instance.window = 600;
  // Scale the caches with the instance so the behaviour is preserved.
  s.cpu.hierarchy.ecache = {64 * 1024, 2, 512, true};
  s.cpu.hierarchy.dtlb = {8, 2, 8 * 1024};
  return s;
}

PaperExperiments collect_paper_experiments(const PaperSetup& s) {
  const sym::Image image = build_mcf_image(s.build);
  auto collect_one = [&](const std::string& hw, const std::string& clock) {
    collect::CollectOptions opt;
    opt.hw = hw;
    opt.clock = clock;
    opt.cpu = s.cpu;
    collect::Collector c(image, opt);
    return c.run([&](machine::Cpu& cpu) { write_input(cpu.memory(), s.run); });
  };
  PaperExperiments out;
  // The paper's two command lines (§3.1), intervals scaled to the simulated
  // run length (~10^9 cycles) for 10-30k samples per counter.
  // collect -S off -p on  -h +ecstall,...,+ecrm,...  mcf.exe mcf.in
  out.ex1 = collect_one("+ecstall,20011,+ecrm,211", "hi");
  // collect -S off -p off -h +ecref,...,+dtlbm,...   mcf.exe mcf.in
  out.ex2 = collect_one("+ecref,997,+dtlbm,101", "off");
  return out;
}

machine::RunResult measure_run(const PaperSetup& s) {
  const sym::Image image = build_mcf_image(s.build);
  mem::Memory mem;
  image.load_into(mem);
  machine::Cpu cpu(mem, s.cpu);
  cpu.set_truth_log_enabled(false);
  cpu.set_pc(image.entry);
  write_input(mem, s.run);
  machine::RunResult r = cpu.run();
  DSP_CHECK(r.halted, "mcf run did not complete");
  DSP_CHECK(cpu.trace().size() == 4 && cpu.trace()[1] == 0 && cpu.trace()[2] == 0,
            "mcf run did not reach a feasible optimum");
  return r;
}

}  // namespace dsprof::mcfsim
