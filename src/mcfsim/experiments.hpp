// Canonical experiment setup shared by the figure benches and examples:
// the paper's §3.1 methodology (two collect runs over the MCF target) on a
// proportionally scaled machine.
//
// Scaling note (DESIGN.md §2): the paper's testbed pairs a ~190 MB MCF
// working set against a 64 KB D$ / 8 MB E$ / 8 KB-page DTLB. Simulating
// 10^11 instructions is impractical, so the default setup scales both sides
// down together: a ~1.7 MB working set against a 16 KB D$ / 256 KB E$ /
// 16-entry DTLB, preserving the working-set : cache ratios that produce the
// paper's behaviour. The full US-III geometry remains available via
// machine::CpuConfig{} for anyone willing to wait.
#pragma once

#include "collect/collector.hpp"
#include "mcfsim/mcfsim.hpp"

namespace dsprof::mcfsim {

struct PaperSetup {
  BuildOptions build;
  RunParams run;
  machine::CpuConfig cpu;

  /// The standard scaled setup used by the figure benches.
  static PaperSetup standard(u64 seed = 42);
  /// A smaller/faster variant for benches that need several full runs.
  static PaperSetup small(u64 seed = 42);
};

struct PaperExperiments {
  experiment::Experiment ex1;  // collect -p on  -h +ecstall,...,+ecrm,...
  experiment::Experiment ex2;  // collect -p off -h +ecref,...,+dtlbm,...
};

/// Run the paper's two collect command lines (§3.1) against the setup.
PaperExperiments collect_paper_experiments(const PaperSetup& s);

/// One uninstrumented run; returns total cycles (for speedup comparisons).
machine::RunResult measure_run(const PaperSetup& s);

}  // namespace dsprof::mcfsim
