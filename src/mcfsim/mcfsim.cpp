#include "mcfsim/mcfsim.hpp"

#include "scc/builder.hpp"

namespace dsprof::mcfsim {

using scc::cast;
using scc::Function;
using scc::FunctionBuilder;
using scc::land;
using scc::Module;
using scc::StructDef;
using scc::Type;
using scc::Val;

namespace {

// Arc states (ident). SUSPENDED arcs live beyond net->m and are only touched
// by price_out_impl (column generation), as in the original mcf.
constexpr i64 kUp = 1;
constexpr i64 kDown = 0;
constexpr i64 kBasic = 0;
constexpr i64 kAtLower = 1;
constexpr i64 kAtUpper = 2;
constexpr i64 kSuspended = 3;

/// Input area layout (written by the host, read by the DSL program —
/// standing in for mcf.in). All values are 64-bit words at kHeapBase.
enum InputWord : i64 {
  kInN = 0,
  kInNCands = 1,
  kInSources = 2,
  kInUnits = 3,
  kInInitialActive = 4,
  kInRefreshGap = 5,
  kInBasketSize = 6,
  kInEmitOutput = 7,
  kInArtCost = 8,
  kInSuspendThreshold = 9,  // negative = suspend_impl disabled
  kInHeaderWords = 16,  // candidate records follow: tail, head, cost, cap
  kInWordsPerCand = 4,
};

}  // namespace

u64 input_size_bytes(const RunParams& params) {
  mcf::Network net = mcf::generate_instance(params.instance);
  return 8 * (kInHeaderWords + kInWordsPerCand * net.cands.size());
}

void write_input(mem::Memory& m, const RunParams& params) {
  mcf::Network net = mcf::generate_instance(params.instance);
  const u64 base = mem::kHeapBase;
  auto put = [&](i64 word, i64 value) {
    m.store(base + 8 * static_cast<u64>(word), 8, static_cast<u64>(value));
  };
  const i64 ncands = static_cast<i64>(net.cands.size());
  mcf::cost_t max_c = 1;
  for (const auto& c : net.cands) max_c = std::max(max_c, c.cost < 0 ? -c.cost : c.cost);

  // Initial active prefix: at least the feasibility chain (the generator
  // emits the chain arcs first).
  i64 init = static_cast<i64>(static_cast<double>(ncands) * params.instance.initial_active);
  init = std::max(init, params.instance.nodes - 1);
  init = std::min(init, ncands);

  put(kInN, params.instance.nodes);
  put(kInNCands, ncands);
  put(kInSources, params.instance.sources);
  put(kInUnits, params.instance.units);
  put(kInInitialActive, init);
  put(kInRefreshGap, params.refresh_gap);
  put(kInBasketSize, params.basket_size);
  put(kInEmitOutput, params.emit_output ? 1 : 0);
  put(kInArtCost, (max_c + 1) * (params.instance.nodes + 1));
  put(kInSuspendThreshold, params.suspend_threshold);
  for (i64 i = 0; i < ncands; ++i) {
    const mcf::CandArc& c = net.cands[static_cast<size_t>(i)];
    const i64 w = kInHeaderWords + i * kInWordsPerCand;
    put(w + 0, c.tail);
    put(w + 1, c.head);
    put(w + 2, c.cost);
    put(w + 3, c.cap);
  }
}

sym::Image build_mcf_image(const BuildOptions& opt) {
  Module m;

  // --- types ----------------------------------------------------------------
  StructDef* node_s = m.add_struct("node");
  StructDef* arc_s = m.add_struct("arc");
  const Type cost_t = Type::i64("cost_t");
  const Type flow_t = Type::i64("flow_t");
  node_s->field("number", Type::i64())
      .field("ident", Type::ptr_u8())
      .field("pred", Type::ptr(node_s))
      .field("child", Type::ptr(node_s))
      .field("sibling", Type::ptr(node_s))
      .field("sibling_prev", Type::ptr(node_s))
      .field("depth", Type::i64())
      .field("orientation", Type::i64())
      .field("basic_arc", Type::ptr(arc_s))
      .field("firstout", Type::ptr(arc_s))
      .field("firstin", Type::ptr(arc_s))
      .field("potential", cost_t)
      .field("flow", flow_t)
      .field("mark", Type::i64())
      .field("time", Type::i64());
  DSP_CHECK(node_s->size() == 120, "node must be 120 bytes");
  DSP_CHECK(node_s->offset_of("orientation") == 56 && node_s->offset_of("child") == 24 &&
                node_s->offset_of("potential") == 88,
            "node layout must match the paper's Figure 7");
  if (opt.optimized_node_layout) {
    // §3.3: pack the hot members (orientation, child, potential, pred,
    // basic_arc — the top of Figure 7) into the leading bytes and pad to a
    // power of two so whole objects map into cache lines.
    node_s->set_layout_order({"orientation", "child", "potential", "pred", "basic_arc",
                              "number", "ident", "sibling", "sibling_prev", "depth",
                              "firstout", "firstin", "flow", "mark", "time"});
    node_s->set_pad_to(128);
  }

  arc_s->field("tail", Type::ptr(node_s))
      .field("head", Type::ptr(node_s))
      .field("ident", Type::i64())
      .field("flow", flow_t)
      .field("cost", cost_t)
      .field("cap", flow_t)
      .field("nextout", Type::ptr(arc_s))
      .field("org_cost", cost_t);
  DSP_CHECK(arc_s->size() == 64,
            "arc must stay 64 bytes");
  if (opt.optimized_node_layout) {
    // §3.3 also reorders the arc members: the pricing scans touch cost,
    // ident, tail and head — pack them into one 32-byte D$ line.
    arc_s->set_layout_order(
        {"cost", "ident", "tail", "head", "flow", "cap", "nextout", "org_cost"});
  } else {
    DSP_CHECK(arc_s->offset_of("cost") == 32,
              "arc layout must place cost at +32 (paper Figures 4/5)");
  }

  StructDef* net_s = m.add_struct("network");
  net_s->field("n", Type::i64())
      .field("m", Type::i64())
      .field("total_arcs", Type::i64())
      .field("nodes", Type::ptr(node_s))
      .field("arcs", Type::ptr(arc_s))
      .field("dummy_arcs", Type::ptr(arc_s))
      .field("art_cost", cost_t)
      .field("price_pos", Type::i64())
      .field("refresh_gap", Type::i64())
      .field("basket_size", Type::i64())
      .field("emit_output", Type::i64())
      .field("iterations", Type::i64())
      .field("suspend_threshold", cost_t);

  StructDef* basket_s = m.add_struct("basket");
  basket_s->field("a", Type::ptr(arc_s)).field("cost", cost_t).field("abs_cost", cost_t);

  // er_opt's layout hook: every struct is declared (baseline checks above
  // have run against declaration order), no code exists yet — layout changes
  // made here flow into every size/offset the builders bake in below.
  if (opt.layout_hook) opt.layout_hook(m);

  const Type pnode = Type::ptr(node_s);
  const Type parc = Type::ptr(arc_s);
  const Type pnet = Type::ptr(net_s);
  const Type pbasket = Type::ptr(basket_s);

  // --- globals ----------------------------------------------------------------
  Function* malloc_fn = scc::add_runtime(m);
  m.add_global("g_basket", pbasket, 0);
  m.add_global("g_basket_cnt", Type::i64(), 0);
  m.add_global("g_delta", flow_t, 0);
  m.add_global("g_block", pnode, 0);
  m.add_global("g_on_tail", Type::i64(), 0);

  // --- tree surgery helpers ---------------------------------------------------
  Function* detach_fn = m.add_function("detach_node", Type::i64());
  {
    FunctionBuilder fb(m, *detach_fn);
    auto x = fb.param("x", pnode);
    fb.if_else(
        x["sibling_prev"] != 0,
        [&] { fb.set(x["sibling_prev"]["sibling"], x["sibling"]); },
        [&] { fb.set(x["pred"]["child"], x["sibling"]); });
    fb.if_(x["sibling"] != 0, [&] { fb.set(x["sibling"]["sibling_prev"], x["sibling_prev"]); });
    fb.set(x["sibling"], 0);
    fb.set(x["sibling_prev"], 0);
    fb.ret0();
  }

  Function* attach_fn = m.add_function("attach_node", Type::i64());
  {
    FunctionBuilder fb(m, *attach_fn);
    auto x = fb.param("x", pnode);
    auto p = fb.param("p", pnode);
    fb.set(x["sibling"], p["child"]);
    fb.if_(p["child"] != 0, [&] { fb.set(p["child"]["sibling_prev"], x); });
    fb.set(p["child"], x);
    fb.set(x["sibling_prev"], 0);
    fb.set(x["pred"], p);
    fb.ret0();
  }

  Function* setfrom_fn = m.add_function("set_from_parent", Type::i64());
  {
    FunctionBuilder fb(m, *setfrom_fn);
    auto v = fb.param("v", pnode);
    fb.set(v["depth"], v["pred"]["depth"] + 1);
    fb.if_else(
        v["orientation"] == kUp,
        [&] { fb.set(v["potential"], v["basic_arc"]["cost"] + v["pred"]["potential"]); },
        [&] { fb.set(v["potential"], v["pred"]["potential"] - v["basic_arc"]["cost"]); });
    fb.ret0();
  }

  // --- refresh_potential: the paper's Figure 3 critical loop ------------------
  Function* refresh_fn = m.add_function("refresh_potential", Type::i64());
  {
    FunctionBuilder fb(m, *refresh_fn);
    auto net = fb.param("net", pnet);
    auto node = fb.local("node", pnode);
    auto root = fb.local("root", pnode);
    auto tmp = fb.local("tmp", pnode);
    auto checksum = fb.local("checksum", Type::i64());
    fb.set(root, net["nodes"]);
    fb.set(checksum, 0);
    fb.set(node, root["child"]);
    fb.set(tmp, node);
    fb.while_(land(node != root, node != 0), [&] {
      fb.while_(node != 0, [&] {
        fb.if_else(
            node["orientation"] == kUp,
            [&] {
              fb.set(node["potential"], node["basic_arc"]["cost"] + node["pred"]["potential"]);
            },
            [&] { /* == DOWN */
              fb.set(node["potential"], node["pred"]["potential"] - node["basic_arc"]["cost"]);
              fb.set(checksum, checksum + 1);
            });
        fb.set(tmp, node);
        fb.set(node, node["child"]);
      });
      fb.set(node, tmp);
      fb.while_(node["pred"] != 0, [&] {
        fb.set(tmp, node["sibling"]);
        fb.if_else(tmp != 0, [&] { fb.set(node, tmp); fb.break_(); },
                   [&] { fb.set(node, node["pred"]); });
      });
    });
    fb.ret(checksum);
  }

  // --- sort_basket: recursive quicksort, descending |reduced cost| ------------
  Function* sort_fn = m.add_function("sort_basket", Type::i64());
  {
    FunctionBuilder fb(m, *sort_fn);
    auto l = fb.param("l", Type::i64());
    auto r = fb.param("r", Type::i64());
    auto i = fb.local("i", Type::i64());
    auto j = fb.local("j", Type::i64());
    auto pivot = fb.local("pivot", cost_t);
    auto bi = fb.local("bi", pbasket);
    auto bj = fb.local("bj", pbasket);
    auto ta = fb.local("ta", parc);
    auto tc = fb.local("tc", cost_t);
    fb.if_(l >= r, [&] { fb.ret0(); });
    auto basket = fb.global("g_basket");
    fb.set(i, l);
    fb.set(j, r);
    fb.set(pivot, (basket + ((l + r) / 2))["abs_cost"]);
    fb.while_(i <= j, [&] {
      fb.while_((basket + i)["abs_cost"] > pivot, [&] { fb.set(i, i + 1); });
      fb.while_((basket + j)["abs_cost"] < pivot, [&] { fb.set(j, j - 1); });
      fb.if_(i <= j, [&] {
        fb.set(bi, basket + i);
        fb.set(bj, basket + j);
        fb.set(ta, bi["a"]);
        fb.set(bi["a"], bj["a"]);
        fb.set(bj["a"], ta);
        fb.set(tc, bi["cost"]);
        fb.set(bi["cost"], bj["cost"]);
        fb.set(bj["cost"], tc);
        fb.set(tc, bi["abs_cost"]);
        fb.set(bi["abs_cost"], bj["abs_cost"]);
        fb.set(bj["abs_cost"], tc);
        fb.set(i, i + 1);
        fb.set(j, j - 1);
      });
    });
    fb.if_(l < j, [&] { fb.call_stmt(sort_fn, {l, j}); });
    fb.if_(i < r, [&] { fb.call_stmt(sort_fn, {i, r}); });
    fb.ret0();
  }

  // --- primal_bea_mpp: multiple partial pricing --------------------------------
  Function* bea_fn = m.add_function("primal_bea_mpp", parc);
  {
    FunctionBuilder fb(m, *bea_fn);
    auto net = fb.param("net", pnet);
    auto arc = fb.local("arc", parc);
    auto pos = fb.local("pos", Type::i64());
    auto scanned = fb.local("scanned", Type::i64());
    auto red = fb.local("red_cost", cost_t);
    auto cnt = fb.local("cnt", Type::i64());
    auto slot = fb.local("slot", pbasket);
    auto i = fb.local("i", Type::i64());
    // Loop invariants hoisted into registers, as an optimizing compiler would.
    auto arcs = fb.local("arcs", parc);
    auto mm = fb.local("mm", Type::i64());
    auto bsize = fb.local("bsize", Type::i64());
    auto basket0 = fb.local("basket0", pbasket);
    fb.set(arcs, net["arcs"]);
    fb.set(mm, net["m"]);
    fb.set(bsize, net["basket_size"]);
    fb.set(basket0, fb.global("g_basket"));
    // Re-price the persistent basket, keeping still-eligible entries.
    fb.set(cnt, 0);
    fb.set(i, 0);
    fb.while_(i < fb.global("g_basket_cnt"), [&] {
      fb.set(arc, (basket0 + i)["a"]);
      fb.set(red, arc["cost"] - arc["tail"]["potential"] + arc["head"]["potential"]);
      fb.if_(arc["ident"] == kAtLower, [&] {
        fb.if_(red < 0, [&] {
          fb.set(slot, basket0 + cnt);
          fb.set(slot["a"], arc);
          fb.set(slot["cost"], red);
          fb.set(slot["abs_cost"], 0 - red);
          fb.set(cnt, cnt + 1);
        });
      });
      fb.if_(arc["ident"] == kAtUpper, [&] {
        fb.if_(red > 0, [&] {
          fb.set(slot, basket0 + cnt);
          fb.set(slot["a"], arc);
          fb.set(slot["cost"], red);
          fb.set(slot["abs_cost"], red);
          fb.set(cnt, cnt + 1);
        });
      });
      fb.set(i, i + 1);
    });
    fb.set(scanned, 0);
    fb.set(pos, net["price_pos"]);
    // The active set may have shrunk since the last call (suspend_impl).
    fb.if_(pos >= mm, [&] { fb.set(pos, 0); });
    // Refill at most one group per call; keep sweeping only while the basket
    // is empty (a full fruitless sweep proves optimality).
    fb.while_(land(scanned < mm, cnt < bsize), [&] {
      fb.if_(land(scanned >= 300, cnt > 0), [&] { fb.break_(); });
      fb.set(arc, arcs + pos);
      if (opt.prefetch_arc_scan) {
        // One E$ line (8 arcs) ahead of the streaming scan.
        fb.prefetch((arcs + (pos + 8))["cost"]);
      }
      fb.set(pos, pos + 1);
      fb.if_(pos == mm, [&] { fb.set(pos, 0); });
      fb.set(red, arc["cost"] - arc["tail"]["potential"] + arc["head"]["potential"]);
      fb.if_(arc["ident"] == kAtLower, [&] {
        fb.if_(red < 0, [&] {
          fb.set(slot, basket0 + cnt);
          fb.set(slot["a"], arc);
          fb.set(slot["cost"], red);
          fb.set(slot["abs_cost"], 0 - red);
          fb.set(cnt, cnt + 1);
        });
      });
      fb.if_(arc["ident"] == kAtUpper, [&] {
        fb.if_(red > 0, [&] {
          fb.set(slot, basket0 + cnt);
          fb.set(slot["a"], arc);
          fb.set(slot["cost"], red);
          fb.set(slot["abs_cost"], red);
          fb.set(cnt, cnt + 1);
        });
      });
      fb.set(scanned, scanned + 1);
    });
    fb.set(net["price_pos"], pos);
    fb.if_(cnt == 0, [&] {
      // Price the artificial arcs as a last resort.
      fb.set(i, 0);
      fb.while_(land(i < net["n"], cnt < bsize), [&] {
        fb.set(arc, net["dummy_arcs"] + i);
        fb.if_(arc["ident"] != kBasic, [&] {
          fb.set(red, arc["cost"] - arc["tail"]["potential"] + arc["head"]["potential"]);
          fb.if_(land(arc["ident"] == kAtLower, red < 0), [&] {
            fb.set(slot, fb.global("g_basket") + cnt);
            fb.set(slot["a"], arc);
            fb.set(slot["cost"], red);
            fb.set(slot["abs_cost"], 0 - red);
            fb.set(cnt, cnt + 1);
          });
          fb.if_(land(arc["ident"] == kAtUpper, red > 0), [&] {
            fb.set(slot, fb.global("g_basket") + cnt);
            fb.set(slot["a"], arc);
            fb.set(slot["cost"], red);
            fb.set(slot["abs_cost"], red);
            fb.set(cnt, cnt + 1);
          });
        });
        fb.set(i, i + 1);
      });
    });
    fb.set(fb.global("g_basket_cnt"), cnt);
    fb.if_(cnt == 0, [&] { fb.ret(cast(0, parc)); });
    fb.call_stmt(sort_fn, {Val(0), cnt - 1});
    fb.ret(fb.global("g_basket")["a"]);
  }

  // --- find_join ----------------------------------------------------------------
  Function* join_fn = m.add_function("find_join", pnode);
  {
    FunctionBuilder fb(m, *join_fn);
    auto t = fb.param("t", pnode);
    auto h = fb.param("h", pnode);
    fb.while_(t["depth"] > h["depth"], [&] { fb.set(t, t["pred"]); });
    fb.while_(h["depth"] > t["depth"], [&] { fb.set(h, h["pred"]); });
    fb.while_(t != h, [&] {
      fb.set(t, t["pred"]);
      fb.set(h, h["pred"]);
    });
    fb.ret(t);
  }

  // --- primal_iminus: the ratio test ---------------------------------------------
  Function* iminus_fn = m.add_function("primal_iminus", Type::i64());
  {
    FunctionBuilder fb(m, *iminus_fn);
    auto e = fb.param("e", parc);
    auto join = fb.param("join", pnode);
    auto tail = fb.param("tail", pnode);
    auto head = fb.param("head", pnode);
    auto fwd = fb.param("fwd", Type::i64());
    auto x = fb.local("x", pnode);
    auto a = fb.local("a", parc);
    auto room = fb.local("room", flow_t);
    auto delta = fb.local("delta", flow_t);
    fb.if_else(fwd == 1, [&] { fb.set(delta, e["cap"] - e["flow"]); },
               [&] { fb.set(delta, e["flow"]); });
    fb.set(fb.global("g_block"), 0);
    fb.set(fb.global("g_on_tail"), 0);
    fb.set(x, tail);
    fb.while_(x != join, [&] {
      fb.set(a, x["basic_arc"]);
      fb.if_else((x["orientation"] == kDown) == fwd,
                 [&] { fb.set(room, a["cap"] - a["flow"]); }, [&] { fb.set(room, a["flow"]); });
      fb.if_(room < delta, [&] {
        fb.set(delta, room);
        fb.set(fb.global("g_block"), x);
        fb.set(fb.global("g_on_tail"), 1);
      });
      fb.set(x, x["pred"]);
    });
    fb.set(x, head);
    fb.while_(x != join, [&] {
      fb.set(a, x["basic_arc"]);
      fb.if_else((x["orientation"] == kUp) == fwd,
                 [&] { fb.set(room, a["cap"] - a["flow"]); }, [&] { fb.set(room, a["flow"]); });
      fb.if_(room < delta, [&] {
        fb.set(delta, room);
        fb.set(fb.global("g_block"), x);
        fb.set(fb.global("g_on_tail"), 0);
      });
      fb.set(x, x["pred"]);
    });
    fb.set(fb.global("g_delta"), delta);
    fb.ret0();
  }

  // --- flow update along the cycle -------------------------------------------------
  Function* applyflow_fn = m.add_function("apply_flows", Type::i64());
  {
    FunctionBuilder fb(m, *applyflow_fn);
    auto e = fb.param("e", parc);
    auto join = fb.param("join", pnode);
    auto tail = fb.param("tail", pnode);
    auto head = fb.param("head", pnode);
    auto fwd = fb.param("fwd", Type::i64());
    auto delta = fb.param("delta", flow_t);
    auto x = fb.local("x", pnode);
    auto a = fb.local("a", parc);
    fb.if_else(fwd == 1, [&] { fb.set(e["flow"], e["flow"] + delta); },
               [&] { fb.set(e["flow"], e["flow"] - delta); });
    fb.set(x, tail);
    fb.while_(x != join, [&] {
      fb.set(a, x["basic_arc"]);
      fb.if_else((x["orientation"] == kDown) == fwd,
                 [&] { fb.set(a["flow"], a["flow"] + delta); },
                 [&] { fb.set(a["flow"], a["flow"] - delta); });
      fb.set(x["flow"], a["flow"]);
      fb.set(x, x["pred"]);
    });
    fb.set(x, head);
    fb.while_(x != join, [&] {
      fb.set(a, x["basic_arc"]);
      fb.if_else((x["orientation"] == kUp) == fwd,
                 [&] { fb.set(a["flow"], a["flow"] + delta); },
                 [&] { fb.set(a["flow"], a["flow"] - delta); });
      fb.set(x["flow"], a["flow"]);
      fb.set(x, x["pred"]);
    });
    fb.ret0();
  }

  // --- update_tree: re-root the cut subtree ------------------------------------------
  Function* update_fn = m.add_function("update_tree", Type::i64());
  {
    FunctionBuilder fb(m, *update_fn);
    auto e = fb.param("e", parc);
    auto q = fb.param("q", pnode);
    auto block = fb.param("block", pnode);
    auto prev = fb.local("prev", pnode);
    auto cur = fb.local("cur", pnode);
    auto nxt = fb.local("nxt", pnode);
    auto carried = fb.local("carried", parc);
    auto old_arc = fb.local("old_arc", parc);
    auto v = fb.local("v", pnode);
    fb.if_else(e["tail"] == q, [&] { fb.set(prev, e["head"]); },
               [&] { fb.set(prev, e["tail"]); });
    fb.set(carried, e);
    fb.set(cur, q);
    fb.while_(Val(1) == 1, [&] {
      fb.set(nxt, cur["pred"]);
      fb.set(old_arc, cur["basic_arc"]);
      fb.call_stmt(detach_fn, {cur});
      fb.set(cur["basic_arc"], carried);
      fb.if_else(carried["tail"] == cur, [&] { fb.set(cur["orientation"], kUp); },
                 [&] { fb.set(cur["orientation"], kDown); });
      fb.set(cur["flow"], carried["flow"]);
      fb.call_stmt(attach_fn, {cur, prev});
      fb.set(carried, old_arc);
      fb.set(prev, cur);
      fb.if_(cur == block, [&] { fb.break_(); });
      fb.set(cur, nxt);
    });
    // Preorder refresh of depth & potential across the moved subtree.
    fb.call_stmt(setfrom_fn, {q});
    fb.set(v, q);
    fb.while_(Val(1) == 1, [&] {
      fb.if_(v["child"] != 0, [&] {
        fb.set(v, v["child"]);
        fb.call_stmt(setfrom_fn, {v});
        fb.continue_();
      });
      fb.while_(land(v != q, v["sibling"] == 0), [&] { fb.set(v, v["pred"]); });
      fb.if_(v == q, [&] { fb.break_(); });
      fb.set(v, v["sibling"]);
      fb.call_stmt(setfrom_fn, {v});
    });
    fb.ret0();
  }

  // --- one pivot ------------------------------------------------------------------------
  Function* pivot_fn = m.add_function("primal_pivot", Type::i64());
  {
    FunctionBuilder fb(m, *pivot_fn);
    auto net = fb.param("net", pnet);
    auto e = fb.param("e", parc);
    auto tail = fb.local("tail", pnode);
    auto head = fb.local("head", pnode);
    auto join = fb.local("join", pnode);
    auto fwd = fb.local("fwd", Type::i64());
    auto q = fb.local("q", pnode);
    auto leaving = fb.local("leaving", parc);
    fb.set(tail, e["tail"]);
    fb.set(head, e["head"]);
    fb.if_else(e["ident"] == kAtLower, [&] { fb.set(fwd, 1); }, [&] { fb.set(fwd, 0); });
    fb.set(join, fb.call(join_fn, {tail, head}));
    fb.call_stmt(iminus_fn, {e, join, tail, head, fwd});
    fb.call_stmt(applyflow_fn, {e, join, tail, head, fwd, fb.global("g_delta")});
    fb.set(net["iterations"], net["iterations"] + 1);
    fb.if_(fb.global("g_block") == 0, [&] {
      fb.if_else(fwd == 1, [&] { fb.set(e["ident"], kAtUpper); },
                 [&] { fb.set(e["ident"], kAtLower); });
      fb.ret0();
    });
    fb.set(leaving, fb.global("g_block")["basic_arc"]);
    fb.if_else(leaving["flow"] == leaving["cap"], [&] { fb.set(leaving["ident"], kAtUpper); },
               [&] { fb.set(leaving["ident"], kAtLower); });
    fb.set(e["ident"], kBasic);
    fb.if_else(fb.global("g_on_tail") == 1, [&] { fb.set(q, tail); }, [&] { fb.set(q, head); });
    fb.call_stmt(update_fn, {e, q, fb.global("g_block")});
    fb.ret0();
  }

  // --- the simplex driver -----------------------------------------------------------------
  Function* simplex_fn = m.add_function("primal_net_simplex", Type::i64());
  {
    FunctionBuilder fb(m, *simplex_fn);
    auto net = fb.param("net", pnet);
    auto e = fb.local("e", parc);
    auto since = fb.local("since_refresh", Type::i64());
    fb.set(since, 0);
    fb.set(e, fb.call(bea_fn, {net}));
    fb.while_(e != 0, [&] {
      fb.call_stmt(pivot_fn, {net, e});
      fb.set(since, since + 1);
      fb.if_(since >= net["refresh_gap"], [&] {
        fb.call_stmt(refresh_fn, {net});
        fb.set(since, 0);
      });
      fb.set(e, fb.call(bea_fn, {net}));
    });
    fb.call_stmt(refresh_fn, {net});
    fb.ret0();
  }

  // --- price_out_impl: column generation over the suspended arcs ---------------------------
  Function* price_fn = m.add_function("price_out_impl", Type::i64());
  {
    FunctionBuilder fb(m, *price_fn);
    auto net = fb.param("net", pnet);
    auto i = fb.local("i", Type::i64());
    auto a = fb.local("a", parc);
    auto b = fb.local("b", parc);
    auto red = fb.local("red_cost", cost_t);
    auto added = fb.local("added", Type::i64());
    auto max_new = fb.local("max_new", Type::i64());
    auto tp = fb.local("tp", pnode);
    auto tc = fb.local("tc", Type::i64());
    auto arcs = fb.local("arcs", parc);
    auto total = fb.local("total", Type::i64());
    fb.set(arcs, net["arcs"]);
    fb.set(total, net["total_arcs"]);
    fb.set(added, 0);
    fb.set(max_new, net["n"] / 8 + 16);
    fb.set(i, net["m"]);
    // Price the entire suspended (implicit) arc set, as the original does —
    // this streaming sweep is what gives price_out_impl its large E$-refs
    // share in the paper's Figure 2 — but activate at most max_new per round.
    fb.while_(i < total, [&] {
      fb.set(a, arcs + i);
      fb.set(red, a["cost"] - a["tail"]["potential"] + a["head"]["potential"]);
      fb.if_(land(red < 0, added < max_new), [&] {
        // Swap the attractive suspended arc into the active region
        // (suspended arcs are never basic, so no basis pointers move).
        fb.set(b, arcs + net["m"]);
        fb.set(tp, a["tail"]);
        fb.set(a["tail"], b["tail"]);
        fb.set(b["tail"], tp);
        fb.set(tp, a["head"]);
        fb.set(a["head"], b["head"]);
        fb.set(b["head"], tp);
        fb.set(a["ident"], b["ident"]);
        fb.set(b["ident"], kAtLower);
        fb.set(tc, a["flow"]);
        fb.set(a["flow"], b["flow"]);
        fb.set(b["flow"], tc);
        fb.set(tc, a["cost"]);
        fb.set(a["cost"], b["cost"]);
        fb.set(b["cost"], tc);
        fb.set(tc, a["cap"]);
        fb.set(a["cap"], b["cap"]);
        fb.set(b["cap"], tc);
        fb.set(tc, a["org_cost"]);
        fb.set(a["org_cost"], b["org_cost"]);
        fb.set(b["org_cost"], tc);
        fb.set(net["m"], net["m"] + 1);
        fb.set(added, added + 1);
      });
      fb.set(i, i + 1);
    });
    fb.ret(added);
  }

  // --- suspend_impl: deactivate flowless nonbasic arcs with strongly
  // positive reduced cost, swapping them past the active prefix (they stay
  // candidates for price_out_impl) -------------------------------------------
  Function* suspend_fn = m.add_function("suspend_impl", Type::i64());
  {
    FunctionBuilder fb(m, *suspend_fn);
    auto net = fb.param("net", pnet);
    auto i = fb.local("i", Type::i64());
    auto a = fb.local("a", parc);
    auto last = fb.local("last", parc);
    auto owner = fb.local("owner", pnode);
    auto red = fb.local("red_cost", cost_t);
    auto thr = fb.local("thr", cost_t);
    auto count = fb.local("count", Type::i64());
    auto tp = fb.local("tp", pnode);
    auto tc = fb.local("tc", Type::i64());
    auto arcs = fb.local("arcs", parc);
    auto again = fb.local("again", Type::i64());
    fb.set(arcs, net["arcs"]);
    fb.set(thr, net["suspend_threshold"]);
    fb.set(count, 0);
    fb.set(i, 0);
    fb.while_(i < net["m"], [&] {
      fb.set(a, arcs + i);
      fb.set(again, 0);
      fb.if_(land(a["ident"] == kAtLower, a["flow"] == 0), [&] {
        fb.set(red, a["cost"] - a["tail"]["potential"] + a["head"]["potential"]);
        fb.if_(red > thr, [&] {
          fb.set(last, arcs + (net["m"] - 1));
          // Swap a <-> last (8 fields).
          fb.set(tp, a["tail"]);
          fb.set(a["tail"], last["tail"]);
          fb.set(last["tail"], tp);
          fb.set(tp, a["head"]);
          fb.set(a["head"], last["head"]);
          fb.set(last["head"], tp);
          fb.set(tc, a["ident"]);
          fb.set(a["ident"], last["ident"]);
          fb.set(last["ident"], tc);
          fb.set(tc, a["flow"]);
          fb.set(a["flow"], last["flow"]);
          fb.set(last["flow"], tc);
          fb.set(tc, a["cost"]);
          fb.set(a["cost"], last["cost"]);
          fb.set(last["cost"], tc);
          fb.set(tc, a["cap"]);
          fb.set(a["cap"], last["cap"]);
          fb.set(last["cap"], tc);
          fb.set(tc, a["org_cost"]);
          fb.set(a["org_cost"], last["org_cost"]);
          fb.set(last["org_cost"], tc);
          fb.set(last["ident"], kSuspended);
          fb.set(net["m"], net["m"] - 1);
          fb.set(count, count + 1);
          // The arc previously at the prefix end now lives in slot i; if it
          // is basic, repoint its owning node's basic_arc.
          fb.if_(a != last, [&] {
            fb.if_(a["ident"] == kBasic, [&] {
              fb.if_else(a["tail"]["basic_arc"] == last,
                         [&] { fb.set(owner, a["tail"]); },
                         [&] { fb.set(owner, a["head"]); });
              fb.set(owner["basic_arc"], a);
            });
            fb.set(again, 1);  // re-examine slot i
          });
        });
      });
      fb.if_(again == 0, [&] { fb.set(i, i + 1); });
    });
    // The round-robin scan position may now lie beyond the active prefix.
    fb.if_(net["price_pos"] >= net["m"], [&] { fb.set(net["price_pos"], 0); });
    fb.ret(count);
  }

  // --- supply rule (matches the host generator) ---------------------------------------------
  Function* supply_fn = m.add_function("supply_of", flow_t);
  {
    FunctionBuilder fb(m, *supply_fn);
    auto net = fb.param("net", pnet);
    auto i = fb.param("i", Type::i64());
    auto sources = fb.param("sources", Type::i64());
    auto units = fb.param("units", Type::i64());
    fb.if_(i <= sources, [&] { fb.ret(units); });
    fb.if_(i > net["n"] - sources, [&] { fb.ret(0 - units); });
    fb.ret(Val(0));
  }

  // --- primal_start_artificial ------------------------------------------------------------
  Function* start_fn = m.add_function("primal_start_artificial", Type::i64());
  {
    FunctionBuilder fb(m, *start_fn);
    auto net = fb.param("net", pnet);
    auto sources = fb.param("sources", Type::i64());
    auto units = fb.param("units", Type::i64());
    auto root = fb.local("root", pnode);
    auto v = fb.local("v", pnode);
    auto a = fb.local("a", parc);
    auto i = fb.local("i", Type::i64());
    auto b = fb.local("b", flow_t);
    fb.set(root, net["nodes"]);
    fb.set(root["number"], 0);
    fb.set(root["potential"], 0 - net["art_cost"]);
    fb.set(root["depth"], 0);
    fb.set(root["pred"], 0);
    fb.set(root["child"], 0);
    fb.set(i, 1);
    fb.while_(i <= net["n"], [&] {
      fb.set(v, net["nodes"] + i);
      fb.set(a, net["dummy_arcs"] + (i - 1));
      fb.set(v["number"], i);
      fb.set(b, fb.call(supply_fn, {net, i, sources, units}));
      fb.if_else(
          b >= 0,
          [&] {
            fb.set(a["tail"], v);
            fb.set(a["head"], root);
            fb.set(v["orientation"], kUp);
            fb.set(a["flow"], b);
          },
          [&] {
            fb.set(a["tail"], root);
            fb.set(a["head"], v);
            fb.set(v["orientation"], kDown);
            fb.set(a["flow"], 0 - b);
          });
      fb.set(a["cost"], net["art_cost"]);
      fb.set(a["cap"], net["art_cost"]);
      fb.set(a["ident"], kBasic);
      fb.set(v["basic_arc"], a);
      fb.set(v["flow"], a["flow"]);
      fb.call_stmt(attach_fn, {v, root});
      fb.call_stmt(setfrom_fn, {v});
      fb.set(i, i + 1);
    });
    fb.ret0();
  }

  // --- flow_cost (calls refresh_potential, as the original does) -----------------------------
  Function* flowcost_fn = m.add_function("flow_cost", cost_t);
  {
    FunctionBuilder fb(m, *flowcost_fn);
    auto net = fb.param("net", pnet);
    auto total = fb.local("total", cost_t);
    auto i = fb.local("i", Type::i64());
    auto a = fb.local("a", parc);
    fb.call_stmt(refresh_fn, {net});
    fb.set(total, 0);
    fb.set(i, 0);
    fb.while_(i < net["m"], [&] {
      fb.set(a, net["arcs"] + i);
      fb.set(total, total + a["cost"] * a["flow"]);
      fb.set(i, i + 1);
    });
    fb.set(i, 0);
    fb.while_(i < net["n"], [&] {
      fb.set(a, net["dummy_arcs"] + i);
      fb.set(total, total + a["cost"] * a["flow"]);
      fb.set(i, i + 1);
    });
    fb.ret(total);
  }

  // --- dual_feasible --------------------------------------------------------------------------
  Function* dual_fn = m.add_function("dual_feasible", Type::i64());
  {
    FunctionBuilder fb(m, *dual_fn);
    auto net = fb.param("net", pnet);
    auto viol = fb.local("violations", Type::i64());
    auto i = fb.local("i", Type::i64());
    auto a = fb.local("a", parc);
    auto red = fb.local("red_cost", cost_t);
    fb.set(viol, 0);
    auto check_body = [&] {
      fb.set(red, a["cost"] - a["tail"]["potential"] + a["head"]["potential"]);
      fb.if_(land(a["ident"] == kBasic, red != 0), [&] { fb.set(viol, viol + 1); });
      fb.if_(land(a["ident"] == kAtLower, red < 0), [&] { fb.set(viol, viol + 1); });
      fb.if_(land(a["ident"] == kAtUpper, red > 0), [&] { fb.set(viol, viol + 1); });
    };
    fb.set(i, 0);
    fb.while_(i < net["m"], [&] {
      fb.set(a, net["arcs"] + i);
      check_body();
      fb.set(i, i + 1);
    });
    fb.set(i, 0);
    fb.while_(i < net["n"], [&] {
      fb.set(a, net["dummy_arcs"] + i);
      check_body();
      fb.set(i, i + 1);
    });
    // Suspended arcs sit at their lower bound outside the basis: optimality
    // requires nonnegative reduced cost for them too.
    fb.set(i, net["m"]);
    fb.while_(i < net["total_arcs"], [&] {
      fb.set(a, net["arcs"] + i);
      fb.set(red, a["cost"] - a["tail"]["potential"] + a["head"]["potential"]);
      fb.if_(red < 0, [&] { fb.set(viol, viol + 1); });
      fb.set(i, i + 1);
    });
    fb.ret(viol);
  }

  // --- write_circulations ------------------------------------------------------------------------
  Function* writec_fn = m.add_function("write_circulations", Type::i64());
  {
    FunctionBuilder fb(m, *writec_fn);
    auto net = fb.param("net", pnet);
    auto i = fb.local("i", Type::i64());
    auto rows = fb.local("rows", Type::i64());
    auto a = fb.local("a", parc);
    fb.set(i, 0);
    fb.set(rows, 0);
    fb.while_(land(i < net["m"], rows < 20), [&] {
      fb.set(a, net["arcs"] + i);
      fb.if_(a["flow"] > 0, [&] {
        fb.put_int(a["tail"]["number"]);
        fb.put_char(Val(32));
        fb.put_int(a["head"]["number"]);
        fb.put_char(Val(32));
        fb.put_int(a["flow"]);
        fb.put_char(Val(10));
        fb.set(rows, rows + 1);
      });
      fb.set(i, i + 1);
    });
    fb.ret0();
  }

  // --- read_min: build the network from the input area (replaces mcf.in parsing) ---------------
  Function* readmin_fn = m.add_function("read_min", pnet);
  {
    FunctionBuilder fb(m, *readmin_fn);
    auto in = fb.local("in", Type::ptr_i64());
    auto net = fb.local("net", pnet);
    auto i = fb.local("i", Type::i64());
    auto a = fb.local("a", parc);
    auto w = fb.local("w", Type::i64());
    auto sz = fb.local("sz", Type::i64());
    auto p = fb.local("p", Type::i64());
    fb.set(in, cast(Val(static_cast<i64>(mem::kHeapBase)), Type::ptr_i64()));
    // Move the heap break past the input area before the first malloc.
    fb.set(fb.global("__brk"),
           ((Val(static_cast<i64>(mem::kHeapBase)) + (kInHeaderWords * 8) +
             in.idx(kInNCands) * (kInWordsPerCand * 8)) +
            511) &
               -512);
    fb.set(net, cast(fb.call(malloc_fn, {Val(static_cast<i64>(net_s->size()))}), pnet));
    fb.set(net["n"], in.idx(kInN));
    fb.set(net["total_arcs"], in.idx(kInNCands));
    fb.set(net["m"], in.idx(kInInitialActive));
    fb.set(net["art_cost"], in.idx(kInArtCost));
    fb.set(net["price_pos"], 0);
    fb.set(net["refresh_gap"], in.idx(kInRefreshGap));
    fb.set(net["basket_size"], in.idx(kInBasketSize));
    fb.set(net["emit_output"], in.idx(kInEmitOutput));
    fb.set(net["iterations"], 0);
    fb.set(net["suspend_threshold"], in.idx(kInSuspendThreshold));

    const i64 node_size = static_cast<i64>(node_s->size());
    const i64 arc_size = static_cast<i64>(arc_s->size());
    auto alloc_array = [&](Val count, i64 elem_size) {
      fb.set(sz, count * elem_size);
      if (opt.align_heap_arrays) {
        fb.set(p, (fb.call(malloc_fn, {sz + 512}) + 511) & -512);
      } else {
        fb.set(p, fb.call(malloc_fn, {sz}));
      }
    };
    alloc_array(net["n"] + 1, node_size);
    fb.set(net["nodes"], cast(p, pnode));
    alloc_array(net["total_arcs"], arc_size);
    fb.set(net["arcs"], cast(p, parc));
    alloc_array(net["n"], arc_size);
    fb.set(net["dummy_arcs"], cast(p, parc));
    alloc_array(net["basket_size"] + 2, static_cast<i64>(basket_s->size()));
    fb.set(fb.global("g_basket"), cast(p, pbasket));

    // Materialize every candidate arc; the first `m` are active (AT_LOWER),
    // the rest suspended until price_out_impl pulls them in.
    auto arcs = fb.local("arcs", parc);
    auto nodes = fb.local("nodes", pnode);
    auto total = fb.local("total", Type::i64());
    auto act = fb.local("act", Type::i64());
    fb.set(arcs, net["arcs"]);
    fb.set(nodes, net["nodes"]);
    fb.set(total, net["total_arcs"]);
    fb.set(act, net["m"]);
    fb.set(i, 0);
    fb.while_(i < total, [&] {
      fb.set(a, arcs + i);
      fb.set(w, i * kInWordsPerCand + kInHeaderWords);
      fb.set(a["tail"], nodes + in.idx(w));
      fb.set(a["head"], nodes + in.idx(w + 1));
      fb.set(a["cost"], in.idx(w + 2));
      fb.set(a["org_cost"], in.idx(w + 2));
      fb.set(a["cap"], in.idx(w + 3));
      fb.set(a["flow"], 0);
      fb.if_else(i < act, [&] { fb.set(a["ident"], kAtLower); },
                 [&] { fb.set(a["ident"], kSuspended); });
      fb.set(i, i + 1);
    });
    fb.ret(net);
  }

  // --- main (global_opt driver) ---------------------------------------------------------------
  Function* main_fn = m.add_function("main", Type::i64());
  {
    FunctionBuilder fb(m, *main_fn);
    auto in = fb.local("in", Type::ptr_i64());
    auto net = fb.local("net", pnet);
    auto cost = fb.local("cost", cost_t);
    auto viol = fb.local("violations", Type::i64());
    auto artflow = fb.local("artflow", flow_t);
    auto i = fb.local("i", Type::i64());
    fb.set(in, cast(Val(static_cast<i64>(mem::kHeapBase)), Type::ptr_i64()));
    fb.set(net, fb.call(readmin_fn, {}));
    fb.call_stmt(start_fn, {net, in.idx(kInSources), in.idx(kInUnits)});
    fb.call_stmt(simplex_fn, {net});
    fb.while_(Val(1) == 1, [&] {
      fb.if_(net["suspend_threshold"] >= 0, [&] { fb.call_stmt(suspend_fn, {net}); });
      fb.if_(fb.call(price_fn, {net}) == 0, [&] { fb.break_(); });
      fb.call_stmt(simplex_fn, {net});
    });
    fb.set(cost, fb.call(flowcost_fn, {net}));
    fb.trace(cost);
    fb.set(viol, fb.call(dual_fn, {net}));
    fb.trace(viol);
    fb.set(artflow, 0);
    fb.set(i, 0);
    fb.while_(i < net["n"], [&] {
      fb.set(artflow, artflow + (net["dummy_arcs"] + i)["flow"]);
      fb.set(i, i + 1);
    });
    fb.trace(artflow);
    fb.trace(net["iterations"]);
    fb.if_(net["emit_output"] == 1, [&] { fb.call_stmt(writec_fn, {net}); });
    fb.ret(Val(0));
  }

  return scc::compile(m, opt.compile);
}

}  // namespace dsprof::mcfsim
