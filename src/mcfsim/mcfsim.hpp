// The MCF benchmark expressed in the scc DSL, compiled to s3 code and run on
// the simulated machine — the profiled target of the paper's case study.
// Algorithmically identical to the native src/mcf/ implementation (tests
// compare objectives); structurally identical to the paper's program:
// the same function decomposition (refresh_potential, primal_bea_mpp,
// sort_basket, price_out_impl, update_tree, primal_iminus, flow_cost,
// dual_feasible, write_circulations) and the same node/arc layouts.
//
// The instance is supplied as "input" poked into simulated memory by the
// host before the run (standing in for reading mcf.in), so one compiled
// image can run many instances.
#pragma once

#include <functional>

#include "mcf/generator.hpp"
#include "scc/compile.hpp"

namespace dsprof::mcfsim {

struct BuildOptions {
  scc::CompileOptions compile;
  /// §3.3 optimization 1: reorder node members by reference frequency and
  /// pad the 120-byte struct to 128 bytes.
  bool optimized_node_layout = false;
  /// §3.3 optimization 1b: align the big heap arrays to 512-byte E$ lines.
  bool align_heap_arrays = false;
  /// §4 future work: software prefetch ahead of the streaming arc scan in
  /// primal_bea_mpp (pointer-chasing loads cannot be prefetched — the paper
  /// notes arc.cost is reached "too soon to be effectively prefetched").
  bool prefetch_arc_scan = false;
  /// er_opt's entry point into the build (src/opt/apply.hpp): invoked after
  /// the structs are declared (and the baseline-layout checks have run) but
  /// before any code is generated, so layout directives applied here —
  /// set_layout_order / set_pad_to — are reflected in every generated size
  /// and offset. Composes with (and typically replaces) the hand-tuned
  /// optimized_node_layout flag above.
  std::function<void(scc::Module&)> layout_hook;
};

/// Build and compile the DSL MCF program.
sym::Image build_mcf_image(const BuildOptions& opt = {});

struct RunParams {
  mcf::GeneratorParams instance;
  i64 refresh_gap = 4;
  i64 basket_size = 50;
  /// suspend_impl cut-off: flowless AT_LOWER arcs with reduced cost above
  /// this are deactivated between pricing rounds. Negative = disabled.
  i64 suspend_threshold = -1;
  bool emit_output = false;  // write_circulations text via host output
};

/// Encode the instance + runtime parameters into the simulated input area
/// (at the start of the heap). Call from the Collector's setup callback.
void write_input(mem::Memory& m, const RunParams& params);

/// Address and size of the input area for `params`.
u64 input_size_bytes(const RunParams& params);

}  // namespace dsprof::mcfsim
