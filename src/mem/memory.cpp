#include "mem/memory.hpp"

#include <cstring>

namespace dsprof::mem {

const char* seg_kind_name(SegKind k) {
  switch (k) {
    case SegKind::Text: return "text";
    case SegKind::Data: return "data";
    case SegKind::Heap: return "heap";
    case SegKind::Stack: return "stack";
    case SegKind::Unmapped: return "unmapped";
  }
  return "?";
}

void Memory::add_segment(Segment seg) {
  DSP_CHECK(seg.size > 0, "empty segment: " + seg.name);
  for (const auto& s : segments_) {
    const bool disjoint = seg.base + seg.size <= s.base || s.base + s.size <= seg.base;
    DSP_CHECK(disjoint, "segments overlap: " + seg.name + " vs " + s.name);
  }
  segments_.push_back(std::move(seg));
  cached_segment_ = nullptr;  // vector growth may have moved the segments
}

const Segment* Memory::find_segment(u64 addr) const {
  for (const auto& s : segments_) {
    if (s.contains(addr)) return &s;
  }
  return nullptr;
}

SegKind Memory::classify(u64 addr) const {
  const Segment* s = find_segment(addr);
  return s ? s->kind : SegKind::Unmapped;
}

u8* Memory::chunk_for(u64 addr) {
  const u64 region = addr >> kRegionBits;
  DSP_CHECK(region < kNumRegions, "address beyond the 2^35 simulated space");
  std::unique_ptr<Region>& r = regions_[region];
  if (!r) r = std::make_unique<Region>();
  std::unique_ptr<u8[]>& c = r->chunks[(addr >> kChunkBits) & (kChunksPerRegion - 1)];
  if (!c) {
    c = std::make_unique<u8[]>(kChunkSize);
    std::memset(c.get(), 0, kChunkSize);
  }
  return c.get();
}

const u8* Memory::chunk_if_present(u64 addr) const {
  const u64 region = addr >> kRegionBits;
  if (region >= kNumRegions || !regions_[region]) return nullptr;
  return regions_[region]->chunks[(addr >> kChunkBits) & (kChunksPerRegion - 1)].get();
}

const Segment* Memory::require_segment(u64 addr, unsigned size, bool write, bool exec) {
  const Segment* s = cached_segment_;
  if (!s || !s->contains(addr)) {
    s = find_segment(addr);
    cached_segment_ = s;
  }
  if (!s || !s->contains(addr + size - 1)) {
    fail("memory fault: access to unmapped address " + std::to_string(addr));
  }
  if (write && !s->writable) fail("memory fault: write to read-only segment " + s->name);
  if (exec && !s->executable) fail("memory fault: fetch from non-executable segment " + s->name);
  return s;
}

u64 Memory::load(u64 addr, unsigned size) {
  require_segment(addr, size, /*write=*/false, /*exec=*/false);
  DSP_CHECK(addr % size == 0, "misaligned load");
  // Accesses never straddle a chunk: size <= 8 and addr is size-aligned.
  const u8* c = chunk_for(addr);
  const u64 off = addr & (kChunkSize - 1);
  u64 v = 0;
  std::memcpy(&v, c + off, size);
  return v;
}

void Memory::store(u64 addr, unsigned size, u64 value) {
  require_segment(addr, size, /*write=*/true, /*exec=*/false);
  DSP_CHECK(addr % size == 0, "misaligned store");
  u8* c = chunk_for(addr);
  const u64 off = addr & (kChunkSize - 1);
  std::memcpy(c + off, &value, size);
}

u32 Memory::fetch_word(u64 addr) {
  require_segment(addr, 4, /*write=*/false, /*exec=*/true);
  DSP_CHECK(addr % 4 == 0, "misaligned fetch");
  const u8* c = chunk_for(addr);
  u32 v;
  std::memcpy(&v, c + (addr & (kChunkSize - 1)), 4);
  return v;
}

void Memory::write_bytes(u64 addr, const void* data, size_t n) {
  const auto* p = static_cast<const u8*>(data);
  while (n > 0) {
    u8* c = chunk_for(addr);
    const u64 off = addr & (kChunkSize - 1);
    const size_t take = static_cast<size_t>(std::min<u64>(n, kChunkSize - off));
    std::memcpy(c + off, p, take);
    addr += take;
    p += take;
    n -= take;
  }
}

void Memory::read_bytes(u64 addr, void* data, size_t n) const {
  auto* p = static_cast<u8*>(data);
  while (n > 0) {
    const u64 off = addr & (kChunkSize - 1);
    const size_t take = static_cast<size_t>(std::min<u64>(n, kChunkSize - off));
    const u8* c = chunk_if_present(addr);
    if (c) {
      std::memcpy(p, c + off, take);
    } else {
      std::memset(p, 0, take);
    }
    addr += take;
    p += take;
    n -= take;
  }
}

}  // namespace dsprof::mem
