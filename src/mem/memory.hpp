// Simulated 64-bit flat memory with named segments. The machine's loads and
// stores go through here; the collector also reads the text segment when it
// backtracks through instruction words.
//
// Address map (everything below 2^35 so SETHI+OR can form any address):
//   text   0x1'0000'0000   (the paper's Figure 4 PCs are 0x1000031xx)
//   data   0x2'0000'0000   (globals)
//   heap   0x3'0000'0000   (grows up; bump allocator in the scc runtime)
//   stack  0x7'FF80'0000   (grows down from 0x7'FFFF'C000)
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace dsprof::mem {

inline constexpr u64 kTextBase = 0x1'0000'0000ull;
inline constexpr u64 kDataBase = 0x2'0000'0000ull;
inline constexpr u64 kHeapBase = 0x3'0000'0000ull;
inline constexpr u64 kStackTop = 0x7'FFFF'C000ull;
inline constexpr u64 kStackSize = 0x80'0000ull;  // 8 MB

/// Segment classification used by the analyzer's address views (paper §4:
/// "memory segment (of load objects or allocated to stack, heap, ...)").
enum class SegKind : u8 { Text, Data, Heap, Stack, Unmapped };

const char* seg_kind_name(SegKind k);

struct Segment {
  std::string name;
  SegKind kind;
  u64 base;
  u64 size;
  bool writable;
  bool executable;

  bool contains(u64 addr) const { return addr >= base && addr - base < size; }
};

class Memory {
 public:
  Memory() = default;
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;

  /// Register a segment. Segments must not overlap.
  void add_segment(Segment seg);

  const Segment* find_segment(u64 addr) const;
  SegKind classify(u64 addr) const;
  const std::vector<Segment>& segments() const { return segments_; }

  /// Typed accesses. `size` is 1, 4 or 8; loads zero-extend.
  /// Throws Error on unmapped addresses or (for writes) read-only segments.
  u64 load(u64 addr, unsigned size);
  void store(u64 addr, unsigned size, u64 value);

  /// Instruction fetch (requires an executable segment).
  u32 fetch_word(u64 addr);

  /// Bulk accessors for the loader and host-side instance builders; these
  /// bypass writability checks (the loader writes text).
  void write_bytes(u64 addr, const void* data, size_t n);
  void read_bytes(u64 addr, void* data, size_t n) const;

 private:
  static constexpr u64 kChunkBits = 16;  // 64 KB backing chunks
  static constexpr u64 kChunkSize = u64{1} << kChunkBits;
  // Two-level page table over the 2^35-byte address space: 32 regions of
  // 1 GB, each holding 16384 chunks — chunk lookup is two dependent loads,
  // no hashing (this sits on the simulator's hottest path).
  static constexpr u64 kRegionBits = 30;
  static constexpr u64 kNumRegions = 32;
  static constexpr u64 kChunksPerRegion = u64{1} << (kRegionBits - kChunkBits);

  struct Region {
    std::vector<std::unique_ptr<u8[]>> chunks{kChunksPerRegion};
  };

  u8* chunk_for(u64 addr);
  const u8* chunk_if_present(u64 addr) const;
  const Segment* require_segment(u64 addr, unsigned size, bool write, bool exec);

  std::vector<Segment> segments_;
  const Segment* cached_segment_ = nullptr;  // 1-entry lookup cache
  std::array<std::unique_ptr<Region>, kNumRegions> regions_;
};

}  // namespace dsprof::mem
