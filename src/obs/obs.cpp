#include "obs/obs.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace dsprof::obs {

namespace {

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("DSPROF_OBS");
  return !(env != nullptr && env[0] == '0' && env[1] == '\0');
}()};

constexpr size_t bucket_of(u64 v) {
  return v == 0 ? 0 : std::min<size_t>(static_cast<size_t>(std::bit_width(v)),
                                       kHistBuckets - 1);
}

/// Per-thread metric shard. Slots are relaxed atomics: each slot has one
/// writer (its thread) and any number of snapshot readers, so relaxed
/// ordering is sufficient — snapshot() observes a value at least as fresh
/// as the last write that happened-before the snapshot call.
struct Shard {
  std::array<std::atomic<u64>, kMaxCounters> counters{};

  struct Hist {
    std::atomic<u64> count{0};
    std::atomic<u64> sum{0};
    std::array<std::atomic<u64>, kHistBuckets> buckets{};
  };
  std::array<Hist, kMaxHistograms> hists{};

  // Span ring. Records are plain structs, so cross-thread reads take the
  // per-shard mutex; spans are batch/shard-grained (never per-event), so
  // the uncontended lock is noise next to the work being spanned.
  std::mutex span_mu;
  std::array<SpanRecord, kSpanRingCapacity> ring{};
  u64 span_head = 0;  // total spans ever recorded; ring slot = head % cap
  u32 tid = 0;
};

/// Name table for one metric kind: name -> slot index, capacity-checked.
struct NameTable {
  std::vector<std::string> names;
  size_t capacity;

  explicit NameTable(size_t cap) : capacity(cap) {}

  u32 intern(const std::string& name) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<u32>(i);
    }
    DSP_CHECK(names.size() < capacity,
              "obs: metric table full registering '" + name +
                  "' (raise the kMax* capacity in obs.hpp)");
    names.push_back(name);
    return static_cast<u32>(names.size() - 1);
  }
};

struct Registry {
  std::mutex mu;  // registration + shard list; never on the hot path
  NameTable counters{kMaxCounters};
  NameTable gauges{kMaxGauges};
  NameTable histograms{kMaxHistograms};
  NameTable spans{kMaxCounters};  // span names share the counter capacity

  // Gauges are single global slots (last writer wins): an instantaneous
  // value has no meaningful per-thread merge.
  std::array<std::atomic<i64>, kMaxGauges> gauge_values{};

  // Shards are created on a thread's first instrumented call and never
  // freed: a thread may exit, but its tallies must survive into later
  // snapshots. The vector holds stable pointers (unique_ptr).
  std::vector<std::unique_ptr<Shard>> shards;

  Shard* acquire_shard() {
    std::lock_guard<std::mutex> lock(mu);
    shards.push_back(std::make_unique<Shard>());
    shards.back()->tid = static_cast<u32>(shards.size());
    return shards.back().get();
  }
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit handlers
  return *r;
}

Shard& shard() {
  thread_local Shard* s = registry().acquire_shard();
  return *s;
}

}  // namespace

u64 now_ns() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

Counter counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return Counter{r.counters.intern(name)};
}

Gauge gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return Gauge{r.gauges.intern(name)};
}

Histogram histogram(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return Histogram{r.histograms.intern(name)};
}

SpanName span_name(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return SpanName{r.spans.intern(name)};
}

void Counter::add(u64 delta) const {
  if (!enabled()) return;
  shard().counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void Gauge::set(i64 v) const {
  if (!enabled()) return;
  registry().gauge_values[id].store(v, std::memory_order_relaxed);
}

void Histogram::record(u64 value) const {
  if (!enabled()) return;
  Shard::Hist& h = shard().hists[id];
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.fetch_add(value, std::memory_order_relaxed);
  h.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(SpanName name) : name_(name) {
  if (enabled()) t0_ = now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (t0_ == 0 || !enabled()) return;
  const u64 t1 = now_ns();
  Shard& s = shard();
  std::lock_guard<std::mutex> lock(s.span_mu);
  s.ring[s.span_head % kSpanRingCapacity] = SpanRecord{name_.id, s.tid, t0_, t1};
  s.span_head += 1;
}

ScopedTimer::ScopedTimer(Histogram h) : h_(h) {
  if (enabled()) t0_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (t0_ == 0 || !enabled()) return;
  h_.record(now_ns() - t0_);
}

u64 HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  const u64 target = static_cast<u64>(q * static_cast<double>(count));
  u64 cum = 0;
  for (size_t i = 0; i < kHistBuckets; ++i) {
    cum += buckets[i];
    if (cum > target || (cum == count && cum != 0)) {
      return i + 1 < kHistBuckets ? (u64{1} << i) : ~u64{0};
    }
  }
  return ~u64{0};
}

u64 Snapshot::counter_value(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* Snapshot::histogram_by_name(const std::string& name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

Snapshot snapshot() {
  Registry& r = registry();
  Snapshot out;
  out.was_enabled = enabled();

  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<u64> counter_totals(r.counters.names.size(), 0);
  std::vector<HistogramSnapshot> hist_totals(r.histograms.names.size());
  for (const auto& s : r.shards) {
    for (size_t c = 0; c < counter_totals.size(); ++c) {
      counter_totals[c] += s->counters[c].load(std::memory_order_relaxed);
    }
    for (size_t h = 0; h < hist_totals.size(); ++h) {
      hist_totals[h].count += s->hists[h].count.load(std::memory_order_relaxed);
      hist_totals[h].sum += s->hists[h].sum.load(std::memory_order_relaxed);
      for (size_t b = 0; b < kHistBuckets; ++b) {
        hist_totals[h].buckets[b] +=
            s->hists[h].buckets[b].load(std::memory_order_relaxed);
      }
    }
    std::lock_guard<std::mutex> span_lock(s->span_mu);
    out.spans_recorded += s->span_head;
    out.spans_dropped +=
        s->span_head > kSpanRingCapacity ? s->span_head - kSpanRingCapacity : 0;
  }

  for (size_t c = 0; c < counter_totals.size(); ++c) {
    out.counters.emplace_back(r.counters.names[c], counter_totals[c]);
  }
  for (size_t g = 0; g < r.gauges.names.size(); ++g) {
    out.gauges.emplace_back(r.gauges.names[g],
                            r.gauge_values[g].load(std::memory_order_relaxed));
  }
  for (size_t h = 0; h < hist_totals.size(); ++h) {
    out.histograms.emplace_back(r.histograms.names[h], hist_totals[h]);
  }
  const auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

std::vector<SpanRecord> span_records(std::vector<std::string>* names) {
  Registry& r = registry();
  std::vector<SpanRecord> out;
  std::lock_guard<std::mutex> lock(r.mu);
  if (names != nullptr) *names = r.spans.names;
  for (const auto& s : r.shards) {
    std::lock_guard<std::mutex> span_lock(s->span_mu);
    const u64 kept = std::min<u64>(s->span_head, kSpanRingCapacity);
    for (u64 i = 0; i < kept; ++i) {
      out.push_back(s->ring[(s->span_head - kept + i) % kSpanRingCapacity]);
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    return a.t0_ns != b.t0_ns ? a.t0_ns < b.t0_ns : a.t1_ns < b.t1_ns;
  });
  return out;
}

namespace {

void append_json_escaped(std::string& s, const std::string& v) {
  for (char c : v) {
    if (c == '"' || c == '\\') s.push_back('\\');
    s.push_back(c);
  }
}

}  // namespace

std::string Snapshot::to_json() const {
  std::string s = "{\"enabled\":";
  s += was_enabled ? "true" : "false";
  s += ",\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i != 0) s += ",";
    s += "\"";
    append_json_escaped(s, counters[i].first);
    s += "\":" + std::to_string(counters[i].second);
  }
  s += "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i != 0) s += ",";
    s += "\"";
    append_json_escaped(s, gauges[i].first);
    s += "\":" + std::to_string(gauges[i].second);
  }
  s += "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i].second;
    if (i != 0) s += ",";
    s += "\"";
    append_json_escaped(s, histograms[i].first);
    s += "\":{\"count\":" + std::to_string(h.count) + ",\"sum\":" + std::to_string(h.sum) +
         ",\"mean\":" + std::to_string(h.mean()) +
         ",\"p50\":" + std::to_string(h.quantile(0.5)) +
         ",\"p95\":" + std::to_string(h.quantile(0.95)) + ",\"buckets\":[";
    bool first = true;
    for (size_t b = 0; b < kHistBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) s += ",";
      first = false;
      s += "[" + std::to_string(HistogramSnapshot::bucket_floor(b)) + "," +
           std::to_string(h.buckets[b]) + "]";
    }
    s += "]}";
  }
  s += "},\"spans\":{\"recorded\":" + std::to_string(spans_recorded) +
       ",\"dropped\":" + std::to_string(spans_dropped) + "}}";
  return s;
}

std::string Snapshot::to_text() const {
  std::string s = "Self-profile (obs";
  s += was_enabled ? "" : ", DISABLED";
  s += ")\n";
  if (!counters.empty()) {
    s += "  counters:\n";
    for (const auto& [n, v] : counters) {
      s += "    " + n;
      if (n.size() < 36) s += std::string(36 - n.size(), ' ');
      s += " " + std::to_string(v) + "\n";
    }
  }
  if (!gauges.empty()) {
    s += "  gauges:\n";
    for (const auto& [n, v] : gauges) {
      s += "    " + n;
      if (n.size() < 36) s += std::string(36 - n.size(), ' ');
      s += " " + std::to_string(v) + "\n";
    }
  }
  if (!histograms.empty()) {
    s += "  histograms (ns):\n";
    for (const auto& [n, h] : histograms) {
      s += "    " + n;
      if (n.size() < 36) s += std::string(36 - n.size(), ' ');
      s += " count=" + std::to_string(h.count) + " mean=" + std::to_string(h.mean()) +
           " p50<" + std::to_string(h.quantile(0.5)) + " p95<" +
           std::to_string(h.quantile(0.95)) + "\n";
    }
  }
  s += "  spans: recorded=" + std::to_string(spans_recorded) +
       " dropped=" + std::to_string(spans_dropped) + "\n";
  return s;
}

std::string chrome_trace_json() {
  std::vector<std::string> names;
  const std::vector<SpanRecord> recs = span_records(&names);
  std::string s = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < recs.size(); ++i) {
    const SpanRecord& r = recs[i];
    if (i != 0) s += ",";
    s += "{\"name\":\"";
    append_json_escaped(s, r.name < names.size() ? names[r.name] : "?");
    // Timestamps are microseconds; keep nanosecond precision as a fraction.
    s += "\",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(r.tid) +
         ",\"ts\":" + std::to_string(r.t0_ns / 1000) + "." +
         std::to_string(r.t0_ns % 1000) +
         ",\"dur\":" + std::to_string((r.t1_ns - r.t0_ns) / 1000) + "." +
         std::to_string((r.t1_ns - r.t0_ns) % 1000) + "}";
  }
  s += "]}";
  return s;
}

void reset_for_test() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& g : r.gauge_values) g.store(0, std::memory_order_relaxed);
  for (const auto& s : r.shards) {
    for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : s->hists) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> span_lock(s->span_mu);
    s->span_head = 0;
  }
}

}  // namespace dsprof::obs

