// Self-observability layer (DESIGN.md §3.4): the profiler profiling itself.
//
// The paper's collector must keep its own overhead "sufficiently low to
// avoid distorting the data" (§2.2) — a claim we could not previously back
// with numbers. This subsystem gives every layer of the pipeline a
// low-overhead way to account for its own cost:
//
//   * monotonic counters     event/outcome tallies (overflows handled,
//                            backtrack outcomes, events folded, drops);
//   * gauges                 instantaneous values (queue depth, sessions);
//   * latency histograms     fixed power-of-two buckets over nanoseconds
//                            (backtrack query time, per-shard fold time,
//                            queue wait time);
//   * scoped trace spans     begin/end timestamps in per-thread ring
//                            buffers, exportable as chrome://tracing JSON.
//
// Design constraints, in order:
//
//   1. Always compiled in, ~zero cost when disabled. `DSPROF_OBS=0`
//      disables at startup (set_enabled() is the bench/test seam); every
//      hot-path call then reduces to one relaxed atomic-bool load and a
//      predictable branch. bench/obs_overhead enforces < 3% overhead on
//      the pipeline and ingest hot paths even when *enabled*.
//
//   2. Lock-free hot path. Counter/histogram updates are relaxed atomic
//      adds on a thread-local shard; no shared cache line is written by
//      two threads. snapshot() merges the shards (integer addition —
//      associative and commutative, so the merged totals are exact and
//      deterministic for any thread schedule; tests/obs_test.cpp).
//
//   3. Bounded memory. Fixed-capacity metric tables and span rings; a
//      full ring overwrites its oldest records and counts the loss
//      (spans_dropped) rather than allocating or blocking.
//
// Handles are interned once (function-local statics at the use site) and
// are trivially copyable; the hot path never touches the registry mutex.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace dsprof::obs {

// --- capacities (fixed: shards are flat arrays, never resized) -------------
inline constexpr size_t kMaxCounters = 64;
inline constexpr size_t kMaxGauges = 16;
inline constexpr size_t kMaxHistograms = 32;
/// Histogram buckets: bucket i counts values in [2^(i-1), 2^i); bucket 0
/// counts zero. 48 buckets cover ~78 hours in nanoseconds.
inline constexpr size_t kHistBuckets = 48;
/// Per-thread span ring capacity; wraps (oldest overwritten, loss counted).
inline constexpr size_t kSpanRingCapacity = 4096;

/// Monotonic wall clock (steady), nanoseconds. The single time source for
/// every obs timestamp, so spans and histograms share one timeline.
u64 now_ns();

/// Global enable flag. Initialized once from the DSPROF_OBS environment
/// variable ("0" disables; anything else, or unset, enables). Reads are
/// relaxed atomic loads — the only cost instrumentation pays when off.
bool enabled();

/// Test/bench seam: flip instrumentation at runtime (bench/obs_overhead
/// measures the same process with obs off and on).
void set_enabled(bool on);

// --- handles ----------------------------------------------------------------
// Interning a name twice returns the same handle. Handles are valid for the
// process lifetime. Registration takes the registry mutex; do it once
// (function-local static) and keep the handle.

struct Counter {
  u32 id = 0;
  /// Monotonic add (relaxed, thread-local shard).
  void add(u64 delta = 1) const;
};

struct Gauge {
  u32 id = 0;
  /// Last-writer-wins instantaneous value (single global slot).
  void set(i64 v) const;
};

struct Histogram {
  u32 id = 0;
  /// Record one sample (power-of-two bucket + exact count/sum).
  void record(u64 value) const;
};

struct SpanName {
  u32 id = 0;
};

Counter counter(const std::string& name);
Gauge gauge(const std::string& name);
Histogram histogram(const std::string& name);
SpanName span_name(const std::string& name);

/// RAII trace span: records [construction, destruction) into the calling
/// thread's ring buffer. When obs is disabled at construction, destruction
/// does nothing (t0 sentinel) — a span never straddles an enable flip.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanName name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanName name_;
  u64 t0_ = 0;  // 0 = disabled at construction; skip the record
};

/// RAII latency sample: records elapsed nanoseconds into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram h);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram h_;
  u64 t0_ = 0;  // 0 = disabled at construction
};

// --- snapshots --------------------------------------------------------------

struct HistogramSnapshot {
  u64 count = 0;
  u64 sum = 0;
  std::array<u64, kHistBuckets> buckets{};

  /// Inclusive lower bound of bucket i (0 for bucket 0, else 2^(i-1)).
  static u64 bucket_floor(size_t i) { return i == 0 ? 0 : u64{1} << (i - 1); }
  /// Approximate quantile: upper bound of the bucket where the cumulative
  /// count first reaches q*count. Deterministic, exact to one bucket.
  u64 quantile(double q) const;
  u64 mean() const { return count == 0 ? 0 : sum / count; }
};

/// One completed span, timestamps from now_ns(). `tid` is the shard index
/// (a stable small integer per thread), `name` indexes Snapshot::span_names.
struct SpanRecord {
  u32 name = 0;
  u32 tid = 0;
  u64 t0_ns = 0;
  u64 t1_ns = 0;
};

/// Point-in-time merge of every thread shard. Metric vectors are sorted by
/// name; merged counts are exact (integer sums), so two snapshots with no
/// intervening activity are identical for any thread schedule.
struct Snapshot {
  bool was_enabled = false;
  std::vector<std::pair<std::string, u64>> counters;
  std::vector<std::pair<std::string, i64>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  u64 spans_recorded = 0;
  u64 spans_dropped = 0;

  /// Counter value by name (0 when absent) — the cross-layer agreement
  /// checks (dsprofd Stats vs er_print -O) key on these.
  u64 counter_value(const std::string& name) const;
  const HistogramSnapshot* histogram_by_name(const std::string& name) const;

  /// One-line machine-diffable JSON object.
  std::string to_json() const;
  /// Human-readable self-profile report (er_print -O).
  std::string to_text() const;
};

Snapshot snapshot();

/// All retained span records, sorted by start time, plus the name table.
std::vector<SpanRecord> span_records(std::vector<std::string>* names = nullptr);

/// chrome://tracing-compatible JSON ({"traceEvents":[...]}, "X" phase
/// events, microsecond timestamps). Load via chrome://tracing or Perfetto.
std::string chrome_trace_json();

/// Zero every counter/gauge/histogram/ring (names and handles survive).
/// Single-threaded use only — tests and benches isolating a measurement.
void reset_for_test();

}  // namespace dsprof::obs
