#include "opt/affinity.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace dsprof::opt {

namespace {

/// Index of the allocation containing `ea`, or npos.
size_t find_alloc(const std::vector<machine::AllocRecord>& allocs, u64 ea) {
  // allocations() is in allocation order; bases are increasing (bump
  // allocator), so binary search on addr.
  size_t lo = 0, hi = allocs.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (allocs[mid].addr <= ea) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return static_cast<size_t>(-1);
  const auto& a = allocs[lo - 1];
  if (ea >= a.addr && ea < a.addr + a.size) return lo - 1;
  return static_cast<size_t>(-1);
}

StrideInfo summarize_strides(const std::vector<sa::StructStride>& strides,
                             sym::TypeId sid, u64 struct_size) {
  StrideInfo s;
  for (const auto& st : strides) {
    if (st.sid != sid) continue;
    ++s.refs;
    s.max_loop_depth = std::max(s.max_loop_depth, st.loop_depth);
    if (!st.has_stride || st.stride == 0) continue;
    ++s.strided;
    const i64 mag = st.stride < 0 ? -st.stride : st.stride;
    if (s.min_abs_stride == 0 || mag < s.min_abs_stride) s.min_abs_stride = mag;
    if (static_cast<u64>(mag) >= struct_size) s.streaming = true;
  }
  return s;
}

}  // namespace

AffinityReport analyze_affinity(const analyze::Analysis& a,
                                const sa::LoopAnalysis* loops,
                                const AffinityOptions& opt) {
  AffinityReport r;
  r.metric = opt.metric;
  r.metric_name = analyze::metric_short_name(opt.metric);
  r.windows = a.access_windows();
  r.line_size = a.ec_line_size();

  const auto& types = a.symtab().types();
  const auto& accesses = a.member_accesses();
  const auto& allocs = a.allocations();
  const u64 heap_base = a.image().heap_base;

  std::vector<sa::StructStride> strides;
  if (loops != nullptr) strides = sa::export_struct_strides(*loops, a.symtab());

  // --- hot structs, ranked by the data-object view -------------------------
  double struct_total = 0;
  for (const auto& row : a.data_objects(opt.metric)) {
    if (row.cat == analyze::DataCat::Struct) struct_total += row.mv[opt.metric];
  }
  for (const auto& row : a.data_objects(opt.metric)) {
    if (row.cat != analyze::DataCat::Struct) continue;
    const double w = row.mv[opt.metric];
    if (w <= 0 || struct_total <= 0) continue;
    const double share = w / struct_total;
    if (share < opt.min_struct_share) continue;

    const auto& type = types.get(row.sid);
    StructReport sr;
    sr.sid = row.sid;
    sr.name = type.name;
    sr.size = type.size;
    sr.total = w;
    sr.share = share;
    for (u32 m = 0; m < type.members.size(); ++m) {
      MemberInfo mi;
      mi.member = m;
      mi.name = type.members[m].name;
      mi.offset = type.members[m].offset;
      mi.size = type.members[m].size;
      sr.members.push_back(std::move(mi));
    }
    sr.affinity.assign(sr.members.size() * sr.members.size(), 0.0);
    sr.strides = summarize_strides(strides, row.sid, sr.size);
    r.structs.push_back(std::move(sr));
  }
  // data_objects is already descending by metric; keep that order but make
  // ties deterministic by name.
  std::stable_sort(r.structs.begin(), r.structs.end(),
                   [](const StructReport& x, const StructReport& y) {
                     if (x.total != y.total) return x.total > y.total;
                     return x.name < y.name;
                   });

  std::map<sym::TypeId, size_t> by_sid;
  for (size_t i = 0; i < r.structs.size(); ++i) by_sid[r.structs[i].sid] = i;

  // --- member weights + per-window co-access affinity ----------------------
  // window -> (struct report index, member) -> weight, for the rank metric.
  std::map<u32, std::map<std::pair<size_t, u32>, double>> windows;
  for (const auto& s : accesses) {
    auto it = by_sid.find(s.sid);
    if (it == by_sid.end()) continue;
    StructReport& sr = r.structs[it->second];
    if (s.member >= sr.members.size()) continue;  // stale descriptor; ignore
    if (s.metric != opt.metric) continue;
    const double w = static_cast<double>(s.weight);
    sr.members[s.member].weight += w;
    windows[s.window][{it->second, s.member}] += w;
    if (s.has_ea && s.ea >= heap_base) sr.heap_resident = true;
  }
  for (const auto& [win, entries] : windows) {
    (void)win;
    for (auto i = entries.begin(); i != entries.end(); ++i) {
      for (auto j = std::next(i); j != entries.end(); ++j) {
        if (i->first.first != j->first.first) continue;  // same struct only
        StructReport& sr = r.structs[i->first.first];
        const u32 mi = i->first.second, mj = j->first.second;
        const double v = std::min(i->second, j->second);
        sr.affinity[mi * sr.members.size() + mj] += v;
        sr.affinity[mj * sr.members.size() + mi] += v;
      }
    }
  }

  // --- hot E$ lines + page locality ----------------------------------------
  struct LineAgg {
    double weight = 0;
    std::set<sym::TypeId> sids;
    std::set<size_t> alloc_idx;
  };
  std::map<u64, LineAgg> lines;
  std::set<u64> pages, heap_pages;
  std::set<size_t> hot_allocs;
  const u64 page_size = a.page_size();
  for (const auto& s : accesses) {
    if (!s.has_ea) continue;
    if (s.metric == opt.metric) {
      LineAgg& la = lines[s.ea / r.line_size * r.line_size];
      la.weight += static_cast<double>(s.weight);
      la.sids.insert(s.sid);
      const size_t ai = find_alloc(allocs, s.ea);
      if (ai != static_cast<size_t>(-1)) {
        la.alloc_idx.insert(ai);
        hot_allocs.insert(ai);
      }
    }
    pages.insert(s.ea / page_size);
    if (s.ea >= heap_base) heap_pages.insert(s.ea / page_size);
  }
  for (const auto& [addr, la] : lines) {
    HotLine hl;
    hl.addr = addr;
    hl.weight = la.weight;
    hl.distinct_structs = static_cast<u32>(la.sids.size());
    hl.distinct_allocs = static_cast<u32>(la.alloc_idx.size());
    hl.shared = hl.distinct_structs > 1 || hl.distinct_allocs > 1;
    for (sym::TypeId sid : la.sids) {
      if (sid != sym::kInvalidType) hl.structs.push_back(types.get(sid).name);
    }
    std::sort(hl.structs.begin(), hl.structs.end());
    r.hot_lines.push_back(std::move(hl));
  }
  std::stable_sort(r.hot_lines.begin(), r.hot_lines.end(),
                   [](const HotLine& x, const HotLine& y) {
                     if (x.weight != y.weight) return x.weight > y.weight;
                     return x.addr < y.addr;
                   });
  if (r.hot_lines.size() > opt.top_lines) r.hot_lines.resize(opt.top_lines);

  r.pages.page_size = page_size;
  r.pages.hot_pages = static_cast<u32>(pages.size());
  r.pages.heap_pages = static_cast<u32>(heap_pages.size());
  for (size_t ai : hot_allocs) r.pages.hot_heap_bytes += allocs[ai].size;
  return r;
}

std::string affinity_to_text(const AffinityReport& r) {
  std::ostringstream os;
  os << "Affinity report (metric: " << r.metric_name << ", " << r.windows
     << " windows)\n";
  for (const auto& s : r.structs) {
    os << "\nstruct " << s.name << "  size " << s.size << "  weight "
       << static_cast<u64>(s.total) << "  share "
       << static_cast<u64>(s.share * 100 + 0.5) << "%"
       << (s.heap_resident ? "  heap" : "") << "\n";
    if (s.strides.refs > 0) {
      os << "  static: " << s.strides.strided << "/" << s.strides.refs
         << " loop refs strided";
      if (s.strides.min_abs_stride != 0) {
        os << ", min |stride| " << s.strides.min_abs_stride;
      }
      if (s.strides.streaming) os << ", streaming";
      os << "\n";
    }
    for (const auto& m : s.members) {
      os << "    +" << m.offset << "\t" << m.name << "\t"
         << static_cast<u64>(m.weight) << "\n";
    }
  }
  if (!r.hot_lines.empty()) {
    os << "\nHot E$ lines (" << r.line_size << " B):\n";
    for (const auto& hl : r.hot_lines) {
      os << "  0x" << std::hex << hl.addr << std::dec << "\t"
         << static_cast<u64>(hl.weight) << "\t" << hl.distinct_structs
         << " structs, " << hl.distinct_allocs << " allocs"
         << (hl.shared ? "  SHARED" : "") << "\n";
    }
  }
  os << "\nPages: " << r.pages.hot_pages << " hot (" << r.pages.heap_pages
     << " heap), page size " << r.pages.page_size << ", hot heap bytes "
     << r.pages.hot_heap_bytes << "\n";
  return os.str();
}

}  // namespace dsprof::opt
