// The er_opt affinity analyzer: turns an Analysis into the evidence the
// layout planner acts on. Three views, all derived from the validated
// per-access samples (Analysis::member_accesses):
//
//  * per-struct member co-access affinity — members whose samples land in
//    the same (callstack, leaf) window are touched together, so they should
//    share an E$ line (the automated version of the paper's §3.3 reading of
//    Figure 7: orientation/basic_arc/pred/child/potential are hot together);
//  * hot E$ lines — the top-N lines by attributed weight, flagged when a
//    line holds samples from more than one struct type or more than one
//    allocation (false-sharing / layout-conflict candidates);
//  * page locality — how many distinct pages (heap pages in particular) the
//    attributed accesses touch, versus the DTLB reach (drives the §3.3
//    large-page hint).
//
// When a static LoopAnalysis is supplied, each struct also carries the
// sa stride summary (streaming sweep vs. pointer chase) as a cross-check:
// a struct swept with stride >= sizeof(struct) benefits from padding to a
// power of two; a pointer-chased struct benefits from member clustering.
#pragma once

#include <string>
#include <vector>

#include "analyze/analysis.hpp"
#include "sa/loops.hpp"

namespace dsprof::opt {

/// One member of a hot struct, in emitted (current layout) order.
struct MemberInfo {
  u32 member = 0;  // emitted index
  std::string name;
  u64 offset = 0;
  u64 size = 0;
  double weight = 0;  // attributed rank-metric weight
};

/// Static-stride cross-check summary for one struct (from sa loop analysis).
struct StrideInfo {
  u32 refs = 0;            // loop memory refs naming the struct
  u32 strided = 0;         // ... with a resolved affine stride
  i64 min_abs_stride = 0;  // smallest nonzero |stride| (0 if none)
  bool streaming = false;  // some ref sweeps whole objects (|stride| >= size)
  u32 max_loop_depth = 0;
};

struct StructReport {
  sym::TypeId sid = sym::kInvalidType;
  std::string name;
  u64 size = 0;
  double total = 0;  // rank-metric weight attributed to the struct
  double share = 0;  // of the struct-category data-space total
  bool heap_resident = false;
  std::vector<MemberInfo> members;
  /// members.size() x members.size() row-major co-access affinity:
  /// aff[i][j] = sum over windows of min(weight_i, weight_j).
  std::vector<double> affinity;
  StrideInfo strides;

  double aff(size_t i, size_t j) const { return affinity[i * members.size() + j]; }
};

struct HotLine {
  u64 addr = 0;  // line base address
  double weight = 0;
  u32 distinct_structs = 0;
  u32 distinct_allocs = 0;
  /// More than one struct type or allocation on the line — a false-sharing /
  /// layout-conflict candidate (the paper's split 120-byte nodes).
  bool shared = false;
  std::vector<std::string> structs;  // names, sorted
};

struct PageReport {
  u64 page_size = 0;
  u32 hot_pages = 0;        // distinct pages with attributed samples
  u32 heap_pages = 0;       // ... of which in the heap
  u64 hot_heap_bytes = 0;   // total size of allocations that received samples
};

struct AffinityOptions {
  /// Rank metric (default E$ stall cycles, the paper's headline data metric).
  size_t metric = static_cast<size_t>(machine::HwEvent::EC_stall_cycles);
  size_t top_lines = 10;
  /// Drop structs below this share of the struct-category total.
  double min_struct_share = 0.05;
};

struct AffinityReport {
  size_t metric = 0;
  std::string metric_name;  // short name ("ecstall")
  u32 windows = 0;          // distinct (callstack, leaf) windows seen
  u64 line_size = 0;
  std::vector<StructReport> structs;  // descending by total
  std::vector<HotLine> hot_lines;     // descending by weight
  PageReport pages;
};

/// Run the analyzer. `loops` is optional (offline plans may lack the image's
/// CFG); when present, per-struct stride summaries are filled in.
AffinityReport analyze_affinity(const analyze::Analysis& a,
                                const sa::LoopAnalysis* loops = nullptr,
                                const AffinityOptions& opt = {});

/// Human-readable report (er_opt's default output).
std::string affinity_to_text(const AffinityReport& r);

}  // namespace dsprof::opt
