#include "opt/apply.hpp"

#include <set>

namespace dsprof::opt {

ApplyStats apply_plan(scc::Module& m, const LayoutPlan& plan) {
  ApplyStats stats;
  for (const auto& d : plan.structs) {
    scc::StructDef* s = m.find_struct(d.struct_name);
    if (s == nullptr) {
      stats.skipped.push_back("struct " + d.struct_name + ": not in module");
      continue;
    }
    if (!d.member_order.empty()) {
      // Pre-validate: the order must be exactly the module's field set
      // (set_layout_order throws on mismatch; a skipped directive is the
      // contract here).
      std::set<std::string> want(d.member_order.begin(), d.member_order.end());
      std::set<std::string> have;
      for (u32 i = 0; i < s->field_count(); ++i) have.insert(s->field_name(i));
      if (want != have || d.member_order.size() != s->field_count()) {
        stats.skipped.push_back("struct " + d.struct_name +
                                ": member order does not match the module's fields");
      } else {
        s->set_layout_order(d.member_order);
        ++stats.reordered;
      }
    }
    if (d.pad_to != 0) {
      if (d.pad_to < s->size()) {
        stats.skipped.push_back("struct " + d.struct_name + ": pad " +
                                std::to_string(d.pad_to) + " below natural size " +
                                std::to_string(s->size()));
      } else {
        s->set_pad_to(d.pad_to);
        ++stats.padded;
      }
    }
    if (d.align_line) ++stats.aligned;    // workload-mapped (allocator alignment)
    if (d.prefetch) ++stats.prefetched;   // workload-mapped (prefetch insertion)
  }
  return stats;
}

}  // namespace dsprof::opt
