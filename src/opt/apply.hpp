// The er_opt applier: map a LayoutPlan onto a scc::Module's StructDefs via
// the existing layout hooks (set_layout_order / set_pad_to), before any code
// is generated. Applying is idempotent — the directives describe an absolute
// layout, not a delta — so applying the same plan twice (or to a rebuilt
// module) yields byte-identical compiled images.
//
// Directives the module cannot honor (unknown struct, member set that does
// not match) are skipped and reported rather than thrown: a plan produced
// from one binary may be replayed against a newer build where a struct
// changed, and the rest of the plan should still land.
#pragma once

#include <string>
#include <vector>

#include "opt/plan.hpp"
#include "scc/module.hpp"

namespace dsprof::opt {

struct ApplyStats {
  u32 reordered = 0;   // structs whose member order was changed
  u32 padded = 0;      // structs padded
  u32 aligned = 0;     // directives requesting E$-line alignment
  u32 prefetched = 0;  // directives requesting prefetch insertion
  /// Human-readable reasons for directives that did not land.
  std::vector<std::string> skipped;

  bool clean() const { return skipped.empty(); }
};

/// Apply every directive in `plan` to `m`. Must run before any function
/// bodies are built (struct sizes are baked into generated code); the
/// mcfsim BuildOptions::layout_hook guarantees that window.
ApplyStats apply_plan(scc::Module& m, const LayoutPlan& plan);

}  // namespace dsprof::opt
