#include "opt/driver.hpp"

#include <cmath>
#include <memory>
#include <sstream>

#include "collect/collector.hpp"
#include "sa/cfg.hpp"

namespace dsprof::opt {

namespace {

MetricDelta make_delta(size_t metric, double before, double after, u64 n_before,
                       u64 n_after) {
  MetricDelta d;
  d.metric = metric;
  d.name = analyze::metric_short_name(metric);
  d.before = before;
  d.after = after;
  d.n_before = n_before;
  d.n_after = n_after;
  d.delta_pct = before > 0 ? 100.0 * (before - after) / before : 0;
  // s.e.(T) ~ T/sqrt(n) per run; combine in quadrature (driver.hpp header).
  double var = 0;
  if (n_before > 0) var += before * before / static_cast<double>(n_before);
  if (n_after > 0) var += after * after / static_cast<double>(n_after);
  d.z = var > 0 ? std::abs(before - after) / std::sqrt(var) : 0;
  d.significant = d.z >= 2.0;
  return d;
}

std::string json_num(double v) {
  std::ostringstream os;
  os << static_cast<u64>(v + 0.5);
  return os.str();
}

}  // namespace

const MetricDelta* LoopResult::delta_for(size_t metric) const {
  for (const auto& d : deltas) {
    if (d.metric == metric) return &d;
  }
  return nullptr;
}

Planned plan_for(const analyze::Analysis& a, const DriverOptions& opt,
                 u32 dtlb_entries) {
  AffinityOptions ao;
  ao.metric = opt.metric;
  ao.top_lines = opt.top_lines;
  ao.min_struct_share = opt.min_struct_share;

  std::unique_ptr<sa::LoopAnalysis> la;
  if (opt.static_strides) {
    const sa::Cfg cfg = sa::Cfg::build(a.image());
    const sa::ProgramFacts pf = sa::ProgramFacts::build(a.image(), cfg);
    la = std::make_unique<sa::LoopAnalysis>(sa::LoopAnalysis::build(pf, a.image()));
  }

  Planned p;
  p.affinity = analyze_affinity(a, la.get(), ao);

  PlanOptions po;
  po.min_struct_share = opt.min_struct_share;
  po.line_size = a.ec_line_size();
  po.dtlb_entries = dtlb_entries;
  p.plan = plan_layout(p.affinity, po);
  return p;
}

LoopResult run_loop(const Workload& w, const DriverOptions& opt) {
  LoopResult r;
  r.workload = w.name;

  auto profile = [&](const sym::Image& img, const machine::CpuConfig& cfg) {
    collect::CollectOptions copt;
    copt.hw = opt.hw.empty() ? w.hw : opt.hw;
    copt.clock = w.clock;
    copt.cpu = cfg;
    collect::Collector c(img, copt);
    return c.run(w.setup);
  };
  auto measure = [&](const sym::Image& img, const machine::CpuConfig& cfg) {
    mem::Memory mem;
    img.load_into(mem);
    machine::Cpu cpu(mem, cfg);
    cpu.set_truth_log_enabled(false);
    cpu.set_pc(img.entry);
    if (w.setup) w.setup(cpu);
    const machine::RunResult rr = cpu.run();
    DSP_CHECK(rr.halted, "er_opt: workload " + w.name + " did not run to completion");
    return rr.cycles;
  };

  // 1. Profile the baseline build and plan from it.
  const sym::Image base = w.build(nullptr);
  const experiment::Experiment ex_before = profile(base, w.cpu_for(nullptr));
  analyze::AnalysisOptions aopt;
  aopt.threads = opt.threads;
  analyze::Analysis a_before(ex_before, aopt);
  Planned planned = plan_for(a_before, opt, w.cpu.hierarchy.dtlb.entries);
  r.affinity = std::move(planned.affinity);
  r.plan = std::move(planned.plan);

  // 2. Apply (inside the workload's build) and re-profile.
  const sym::Image tuned = w.build(&r.plan);
  const machine::CpuConfig cpu_tuned = w.cpu_for(&r.plan);
  const experiment::Experiment ex_after = profile(tuned, cpu_tuned);
  analyze::Analysis a_after(ex_after, aopt);

  // 3. Uninstrumented end-to-end cycle comparison.
  r.baseline_cycles = measure(base, w.cpu_for(nullptr));
  r.optimized_cycles = measure(tuned, cpu_tuned);
  r.speedup_pct = 100.0 * (1.0 - static_cast<double>(r.optimized_cycles) /
                                     static_cast<double>(r.baseline_cycles));

  // 4. Per-metric deltas, rank metric first.
  const auto& tb = a_before.total();
  const auto& ta = a_after.total();
  const auto& nb = a_before.sample_counts();
  const auto& na = a_after.sample_counts();
  const auto& pb = a_before.present();
  const auto& pa = a_after.present();
  if (pb[opt.metric] || pa[opt.metric]) {
    r.deltas.push_back(
        make_delta(opt.metric, tb[opt.metric], ta[opt.metric], nb[opt.metric], na[opt.metric]));
  }
  for (size_t m = 0; m < analyze::kNumMetrics; ++m) {
    if (m == opt.metric || (!pb[m] && !pa[m])) continue;
    r.deltas.push_back(make_delta(m, tb[m], ta[m], nb[m], na[m]));
  }
  return r;
}

std::string loop_to_text(const LoopResult& r) {
  std::ostringstream os;
  os << "== er_opt closed loop: " << r.workload << " ==\n\n";
  os << affinity_to_text(r.affinity) << "\n";
  os << "-- plan --\n" << plan_to_text(r.plan);
  os << "\n-- verified re-run --\n";
  os << "baseline:  " << r.baseline_cycles << " cycles\n";
  os << "optimized: " << r.optimized_cycles << " cycles  (";
  {
    std::ostringstream pct;
    pct.setf(std::ios::fixed);
    pct.precision(1);
    pct << r.speedup_pct;
    os << pct.str() << "% faster)\n";
  }
  os << "\nmetric deltas (profiled totals, sampling significance):\n";
  for (const auto& d : r.deltas) {
    std::ostringstream row;
    row.setf(std::ios::fixed);
    row.precision(1);
    row << "  " << d.name << "\tbefore " << static_cast<u64>(d.before) << " (n="
        << d.n_before << ")\tafter " << static_cast<u64>(d.after) << " (n="
        << d.n_after << ")\t" << d.delta_pct << "%\tz=" << d.z
        << (d.significant ? "  significant" : "  not significant");
    os << row.str() << "\n";
  }
  return os.str();
}

std::string loop_to_json(const LoopResult& r) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << "{\"workload\":\"" << r.workload << "\",\"plan\":" << plan_to_json(r.plan)
     << ",\"baseline_cycles\":" << r.baseline_cycles
     << ",\"optimized_cycles\":" << r.optimized_cycles
     << ",\"speedup_pct\":" << r.speedup_pct << ",\"deltas\":[";
  for (size_t i = 0; i < r.deltas.size(); ++i) {
    const auto& d = r.deltas[i];
    if (i) os << ",";
    os << "{\"metric\":\"" << d.name << "\",\"before\":" << json_num(d.before)
       << ",\"after\":" << json_num(d.after) << ",\"n_before\":" << d.n_before
       << ",\"n_after\":" << d.n_after << ",\"delta_pct\":" << d.delta_pct
       << ",\"z\":" << d.z << ",\"significant\":" << (d.significant ? "true" : "false")
       << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace dsprof::opt
