// The er_opt closed loop (the automated §3.3 methodology):
//
//   profile baseline -> affinity analysis -> LayoutPlan -> apply + rebuild
//   -> re-profile -> per-metric delta with sampling significance
//
// plus two uninstrumented measure runs (no counters, no truth log) so the
// headline speedup is an end-to-end cycle count, not a profiled estimate.
//
// Significance: a profiled metric total is the sum of n overflow samples,
// each contributing the overflow interval w. Treating sample arrivals as
// Poisson (the intervals are primes precisely so samples decorrelate from
// loop periods), the relative sampling error of a total T built from n
// samples is ~1/sqrt(n), i.e. s.e.(T) ~ T/sqrt(n). A before/after delta is
// flagged significant when |T_b - T_a| exceeds twice the combined error
// sqrt(T_b^2/n_b + T_a^2/n_a) — the clock-sample significance rule applied
// to every present metric (clock samples land under User CPU).
#pragma once

#include "analyze/analysis.hpp"
#include "opt/affinity.hpp"
#include "opt/plan.hpp"
#include "opt/workloads.hpp"

namespace dsprof::opt {

struct DriverOptions {
  /// Rank metric for the affinity analysis and the plan.
  size_t metric = static_cast<size_t>(machine::HwEvent::EC_stall_cycles);
  /// Counter spec override for the profiling runs; empty keeps the
  /// workload's default. More than two counters multiplex (er_opt --hw).
  std::string hw;
  /// Reduction threads (AnalysisOptions::threads); 0 = $DSPROF_THREADS.
  unsigned threads = 0;
  double min_struct_share = 0.05;
  size_t top_lines = 10;
  /// Build the static loop/stride cross-check (sa::LoopAnalysis) for the
  /// affinity report. Costs one CFG + dataflow pass over the image.
  bool static_strides = true;
};

/// One metric's before/after comparison from the two profiled runs.
struct MetricDelta {
  size_t metric = 0;
  std::string name;  // short name
  double before = 0, after = 0;
  u64 n_before = 0, n_after = 0;  // sample counts behind the totals
  /// (before - after) / before * 100; positive = improvement.
  double delta_pct = 0;
  /// |before - after| in combined-standard-error units.
  double z = 0;
  bool significant = false;  // z >= 2
};

struct LoopResult {
  std::string workload;
  AffinityReport affinity;
  LayoutPlan plan;
  /// Uninstrumented end-to-end cycles.
  u64 baseline_cycles = 0;
  u64 optimized_cycles = 0;
  double speedup_pct = 0;  // 100 * (1 - optimized/baseline)
  /// Every metric present in the profiles, rank metric first.
  std::vector<MetricDelta> deltas;

  const MetricDelta* delta_for(size_t metric) const;
};

/// Offline half of the loop: analyze an existing profile and plan, without
/// rebuilding anything (er_opt <experiment-dir> mode). `dtlb_entries` feeds
/// the large-page hint; pass 0 when the target machine is unknown.
struct Planned {
  AffinityReport affinity;
  LayoutPlan plan;
};
Planned plan_for(const analyze::Analysis& a, const DriverOptions& opt = {},
                 u32 dtlb_entries = 0);

/// The full closed loop on a builtin workload.
LoopResult run_loop(const Workload& w, const DriverOptions& opt = {});

/// Reports.
std::string loop_to_text(const LoopResult& r);
std::string loop_to_json(const LoopResult& r);

}  // namespace dsprof::opt
