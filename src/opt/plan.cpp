#include "opt/plan.hpp"

#include <algorithm>
#include <sstream>

#include "opt/affinity.hpp"

namespace dsprof::opt {

namespace {

constexpr const char* kTextHeader = "# dsprof layout plan v1";

u64 next_pow2(u64 v) {
  u64 p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

u64 parse_u64_tok(const std::string& tok, const char* what) {
  if (tok.empty() || tok[0] == '-') fail(std::string("plan: bad ") + what + ": " + tok);
  u64 v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') fail(std::string("plan: bad ") + what + ": " + tok);
    v = v * 10 + static_cast<u64>(c - '0');
  }
  return v;
}

// --- minimal JSON reader (plan schema only) --------------------------------

class JsonReader {
 public:
  explicit JsonReader(const std::string& s) : s_(s) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c) {
      fail(std::string("plan json: expected '") + c + "' at offset " +
           std::to_string(pos_));
    }
    ++pos_;
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char e = s_[pos_++];
        switch (e) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          default:
            out += e;  // \" \\ \/ and anything else: literal
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= s_.size()) fail("plan json: unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  u64 number() {
    skip_ws();
    const size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    if (pos_ == start) fail("plan json: expected number at offset " + std::to_string(start));
    return parse_u64_tok(s_.substr(start, pos_ - start), "number");
  }

  bool boolean() {
    skip_ws();
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail("plan json: expected boolean at offset " + std::to_string(pos_));
  }

  void end() {
    skip_ws();
    if (pos_ != s_.size()) fail("plan json: trailing data at offset " + std::to_string(pos_));
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

StructDirective json_directive(JsonReader& r) {
  StructDirective d;
  r.expect('{');
  bool first = true;
  while (!r.try_consume('}')) {
    if (!first) r.expect(',');
    first = false;
    const std::string key = r.string();
    r.expect(':');
    if (key == "name") {
      d.struct_name = r.string();
    } else if (key == "order") {
      r.expect('[');
      while (!r.try_consume(']')) {
        if (!d.member_order.empty()) r.expect(',');
        d.member_order.push_back(r.string());
      }
    } else if (key == "pad_to") {
      d.pad_to = r.number();
    } else if (key == "align_line") {
      d.align_line = r.boolean();
    } else if (key == "prefetch") {
      d.prefetch = r.boolean();
    } else if (key == "note") {
      d.note = r.string();
    } else {
      fail("plan json: unknown struct key \"" + key + "\"");
    }
  }
  return d;
}

}  // namespace

const StructDirective* LayoutPlan::find(const std::string& struct_name) const {
  for (const auto& d : structs) {
    if (d.struct_name == struct_name) return &d;
  }
  return nullptr;
}

bool LayoutPlan::wants_align() const {
  return std::any_of(structs.begin(), structs.end(),
                     [](const StructDirective& d) { return d.align_line; });
}

std::string plan_to_text(const LayoutPlan& plan) {
  std::ostringstream os;
  os << kTextHeader << "\n";
  if (!plan.metric.empty()) os << "metric " << plan.metric << "\n";
  if (plan.page_size_hint != 0) os << "pagesize " << plan.page_size_hint << "\n";
  for (const auto& d : plan.structs) {
    os << "struct " << d.struct_name << "\n";
    if (!d.member_order.empty()) {
      os << "  order";
      for (const auto& m : d.member_order) os << " " << m;
      os << "\n";
    }
    if (d.pad_to != 0) os << "  pad " << d.pad_to << "\n";
    if (d.align_line) os << "  align line\n";
    if (d.prefetch) os << "  prefetch\n";
    if (!d.note.empty()) os << "  note " << d.note << "\n";
    os << "end\n";
  }
  return os.str();
}

LayoutPlan plan_from_text(const std::string& text) {
  LayoutPlan plan;
  std::istringstream is(text);
  std::string line;
  bool saw_header = false;
  StructDirective cur;
  bool in_struct = false;
  size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto toks = split_ws(line);
    if (toks.empty()) continue;
    if (!saw_header) {
      if (line.rfind(kTextHeader, 0) != 0) {
        fail("plan: missing \"" + std::string(kTextHeader) + "\" header");
      }
      saw_header = true;
      continue;
    }
    if (toks[0][0] == '#') continue;
    const auto where = [&] { return " (line " + std::to_string(lineno) + ")"; };
    if (toks[0] == "struct") {
      if (in_struct) fail("plan: nested struct" + where());
      if (toks.size() != 2) fail("plan: struct needs a name" + where());
      cur = StructDirective{};
      cur.struct_name = toks[1];
      in_struct = true;
    } else if (toks[0] == "end") {
      if (!in_struct) fail("plan: end outside struct" + where());
      plan.structs.push_back(std::move(cur));
      in_struct = false;
    } else if (toks[0] == "order") {
      if (!in_struct) fail("plan: order outside struct" + where());
      if (toks.size() < 2) fail("plan: empty order" + where());
      cur.member_order.assign(toks.begin() + 1, toks.end());
    } else if (toks[0] == "pad") {
      if (!in_struct) fail("plan: pad outside struct" + where());
      if (toks.size() != 2) fail("plan: pad needs one size" + where());
      cur.pad_to = parse_u64_tok(toks[1], "pad size");
    } else if (toks[0] == "align") {
      if (!in_struct) fail("plan: align outside struct" + where());
      if (toks.size() != 2 || toks[1] != "line") fail("plan: expected 'align line'" + where());
      cur.align_line = true;
    } else if (toks[0] == "prefetch") {
      if (!in_struct) fail("plan: prefetch outside struct" + where());
      if (toks.size() != 1) fail("plan: prefetch takes no arguments" + where());
      cur.prefetch = true;
    } else if (toks[0] == "note") {
      if (!in_struct) fail("plan: note outside struct" + where());
      const size_t at = line.find("note");
      cur.note = line.substr(at + 5);
    } else if (toks[0] == "metric") {
      if (in_struct || toks.size() != 2) fail("plan: bad metric line" + where());
      plan.metric = toks[1];
    } else if (toks[0] == "pagesize") {
      if (in_struct || toks.size() != 2) fail("plan: bad pagesize line" + where());
      plan.page_size_hint = parse_u64_tok(toks[1], "page size");
    } else {
      fail("plan: unknown keyword \"" + toks[0] + "\"" + where());
    }
  }
  if (!saw_header) fail("plan: empty input");
  if (in_struct) fail("plan: unterminated struct " + cur.struct_name);
  return plan;
}

std::string plan_to_json(const LayoutPlan& plan) {
  std::ostringstream os;
  os << "{\"version\":1,\"metric\":\"" << json_escape(plan.metric)
     << "\",\"page_size_hint\":" << plan.page_size_hint << ",\"structs\":[";
  for (size_t i = 0; i < plan.structs.size(); ++i) {
    const auto& d = plan.structs[i];
    if (i) os << ",";
    os << "{\"name\":\"" << json_escape(d.struct_name) << "\",\"order\":[";
    for (size_t j = 0; j < d.member_order.size(); ++j) {
      if (j) os << ",";
      os << "\"" << json_escape(d.member_order[j]) << "\"";
    }
    os << "],\"pad_to\":" << d.pad_to
       << ",\"align_line\":" << (d.align_line ? "true" : "false")
       << ",\"prefetch\":" << (d.prefetch ? "true" : "false") << ",\"note\":\""
       << json_escape(d.note) << "\"}";
  }
  os << "]}";
  return os.str();
}

LayoutPlan plan_from_json(const std::string& json) {
  LayoutPlan plan;
  JsonReader r(json);
  r.expect('{');
  bool first = true;
  while (!r.try_consume('}')) {
    if (!first) r.expect(',');
    first = false;
    const std::string key = r.string();
    r.expect(':');
    if (key == "version") {
      if (r.number() != 1) fail("plan json: unsupported version");
    } else if (key == "metric") {
      plan.metric = r.string();
    } else if (key == "page_size_hint") {
      plan.page_size_hint = r.number();
    } else if (key == "structs") {
      r.expect('[');
      while (!r.try_consume(']')) {
        if (!plan.structs.empty()) r.expect(',');
        plan.structs.push_back(json_directive(r));
      }
    } else {
      fail("plan json: unknown key \"" + key + "\"");
    }
  }
  r.end();
  return plan;
}

LayoutPlan plan_layout(const AffinityReport& report, const PlanOptions& opt) {
  LayoutPlan plan;
  plan.metric = report.metric_name;

  for (const auto& sr : report.structs) {
    if (sr.share < opt.min_struct_share) continue;
    const size_t n = sr.members.size();
    if (n == 0) continue;

    double wsum = 0;
    for (const auto& m : sr.members) wsum += m.weight;

    // Hot set: members carrying a meaningful share of the struct's weight.
    std::vector<size_t> hot;
    for (size_t i = 0; i < n; ++i) {
      if (wsum > 0 && sr.members[i].weight >= opt.hot_member_share * wsum) {
        hot.push_back(i);
      }
    }

    // Greedy affinity clustering: seed with the hottest member, then grow by
    // strongest total affinity to the already-placed prefix. Ties break by
    // weight, then by current layout position — fully deterministic.
    std::vector<size_t> order;
    std::vector<bool> placed(n, false);
    if (!hot.empty()) {
      size_t seed = hot[0];
      for (size_t i : hot) {
        if (sr.members[i].weight > sr.members[seed].weight) seed = i;
      }
      order.push_back(seed);
      placed[seed] = true;
      while (order.size() < hot.size()) {
        size_t best = static_cast<size_t>(-1);
        double best_aff = -1;
        for (size_t c : hot) {
          if (placed[c]) continue;
          double aff = 0;
          for (size_t p : order) aff += sr.aff(p, c);
          const bool better =
              best == static_cast<size_t>(-1) || aff > best_aff ||
              (aff == best_aff && sr.members[c].weight > sr.members[best].weight);
          if (better) {
            best = c;
            best_aff = aff;
          }
        }
        order.push_back(best);
        placed[best] = true;
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (!placed[i]) order.push_back(i);  // cold tail keeps layout order
    }

    StructDirective d;
    d.struct_name = sr.name;
    bool reordered = false;
    for (size_t i = 0; i < n; ++i) {
      if (order[i] != i) reordered = true;
    }
    if (reordered) {
      for (size_t i : order) d.member_order.push_back(sr.members[i].name);
    }

    // Pad to the next power of two when the growth is cheap, so padded
    // objects tile E$ lines instead of straddling them (§3.3: 120 -> 128).
    u64 padded = sr.size;
    if (!is_pow2(sr.size)) {
      const u64 p2 = next_pow2(sr.size);
      if ((p2 - sr.size) * 100 <= sr.size * opt.max_pad_growth_pct) {
        d.pad_to = p2;
        padded = p2;
      }
    }
    // Alignment makes the padding effective for heap arrays: only useful
    // when whole objects tile the line (or span whole lines).
    if (sr.heap_resident &&
        (opt.line_size % padded == 0 || padded % opt.line_size == 0)) {
      d.align_line = true;
    }
    // §4 prefetch feedback, static half: a proven object-by-object sweep can
    // be prefetched ahead; pointer chases (no resolved stride) cannot.
    if (sr.strides.streaming) d.prefetch = true;

    std::ostringstream note;
    note << "hot " << hot.size() << "/" << n << " members, "
         << static_cast<u64>(sr.share * 100 + 0.5) << "% of " << report.metric_name;
    if (d.pad_to != 0) note << "; pad " << sr.size << "->" << d.pad_to;
    if (d.prefetch) note << "; streaming sweep -> prefetch";
    d.note = note.str();

    if (!d.member_order.empty() || d.pad_to != 0 || d.align_line || d.prefetch) {
      plan.structs.push_back(std::move(d));
    }
  }

  std::sort(plan.structs.begin(), plan.structs.end(),
            [](const StructDirective& a, const StructDirective& b) {
              return a.struct_name < b.struct_name;
            });

  // §3.3 optimization 2: large pages when the hot heap footprint outruns the
  // DTLB reach (entries * page size).
  if (opt.dtlb_entries > 0 &&
      report.pages.heap_pages > opt.dtlb_entries) {
    plan.page_size_hint = opt.page_hint_size;
  }
  return plan;
}

}  // namespace dsprof::opt
