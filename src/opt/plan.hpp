// LayoutPlan — the serializable artifact at the center of the er_opt closed
// loop (paper §3.3, automated): the affinity analyzer reads a profile, the
// planner emits a LayoutPlan, the applier maps it onto scc::StructDef layout
// hooks, and the driver re-runs the workload to verify the delta.
//
// A plan is deliberately plain data with two interchangeable encodings
// (line-oriented text for humans and feedback files, JSON for tooling); both
// round-trip exactly, and directives are kept sorted by struct name so the
// same analysis always serializes to the same bytes regardless of discovery
// order or thread count.
#pragma once

#include <string>
#include <vector>

#include "support/common.hpp"

namespace dsprof::opt {

struct AffinityReport;  // affinity.hpp

/// Layout directives for one struct (the paper's two §3.3 fixes plus the
/// alignment that makes padding effective for heap arrays).
struct StructDirective {
  std::string struct_name;
  /// Full member permutation in the new layout order; empty = keep the
  /// current order (pad/align-only directive).
  std::vector<std::string> member_order;
  /// Pad the struct to this size (0 = no padding directive).
  u64 pad_to = 0;
  /// Align heap arrays of this struct to the E$ line (workload-mapped:
  /// mcf's align_heap_arrays, churn's allocator alignment).
  bool align_line = false;
  /// Software-prefetch the streaming sweeps over this struct (workload-
  /// mapped: mcf's prefetch_arc_scan). Set when the static stride
  /// cross-check proves an object-by-object sweep — the §4 prefetch
  /// feedback folded into the loop; pointer chases never get it.
  bool prefetch = false;
  /// One-line planner rationale; serialized for the report, ignored by the
  /// applier.
  std::string note;

  friend bool operator==(const StructDirective& a, const StructDirective& b) {
    return a.struct_name == b.struct_name && a.member_order == b.member_order &&
           a.pad_to == b.pad_to && a.align_line == b.align_line &&
           a.prefetch == b.prefetch && a.note == b.note;
  }
};

struct LayoutPlan {
  /// Short name of the metric the plan was ranked by ("ecstall").
  std::string metric;
  /// Large-page request for the heap (§3.3's -xpagesize_heap; 0 = none).
  u64 page_size_hint = 0;
  /// Sorted by struct_name (serialization is deterministic).
  std::vector<StructDirective> structs;

  bool empty() const { return structs.empty() && page_size_hint == 0; }
  const StructDirective* find(const std::string& struct_name) const;
  /// True if any directive asks for E$-line alignment.
  bool wants_align() const;

  friend bool operator==(const LayoutPlan& a, const LayoutPlan& b) {
    return a.metric == b.metric && a.page_size_hint == b.page_size_hint &&
           a.structs == b.structs;
  }
};

/// Line-oriented text form ("# dsprof layout plan v1" header). Parse throws
/// Error on malformed input (unknown keyword, bad number, missing header).
std::string plan_to_text(const LayoutPlan& plan);
LayoutPlan plan_from_text(const std::string& text);

/// JSON form (one object, schema {"version":1,"metric":...,"structs":[...]}).
std::string plan_to_json(const LayoutPlan& plan);
LayoutPlan plan_from_json(const std::string& json);

/// Planner knobs. Everything is deterministic: ties in the affinity
/// clustering break by member weight, then by current layout position.
struct PlanOptions {
  /// Keep a struct hot enough to plan for when its share of the
  /// struct-category data-space total reaches this.
  double min_struct_share = 0.05;
  /// A member is "hot" (clustered to the front) when it carries at least
  /// this share of its struct's member weight.
  double hot_member_share = 0.01;
  /// E$ line size the pad/align directives target.
  u64 line_size = 512;
  /// Pad to the next power of two only when the growth stays within this
  /// percentage (node: 120 -> 128 is +6.7%).
  u32 max_pad_growth_pct = 34;
  /// DTLB geometry for the large-page hint; entries == 0 disables the hint
  /// (offline plans have no machine to read it from).
  u32 dtlb_entries = 0;
  u64 page_hint_size = 512 * 1024;
};

/// Turn an affinity report into layout directives: greedy co-access
/// clustering orders each hot struct's members (hottest first, then highest
/// affinity to the already-placed set), pad-to-power-of-two when cheap, and
/// E$-line alignment for heap-resident structs whose padded size tiles the
/// line. Purely a function of the report — no profile re-reads.
LayoutPlan plan_layout(const AffinityReport& report, const PlanOptions& opt = {});

}  // namespace dsprof::opt
