#include "opt/workloads.hpp"

#include "mcfsim/experiments.hpp"
#include "opt/apply.hpp"
#include "scc/builder.hpp"
#include "scc/compile.hpp"

namespace dsprof::opt {

namespace {

using scc::FunctionBuilder;
using scc::Type;
using scc::Val;

sym::Image build_churn(const LayoutPlan* plan) {
  scc::Module mod;
  scc::StructDef* rec = mod.add_struct("record");
  rec->field("id", Type::i64())
      .field("hot_a", Type::i64())
      .field("pad1", Type::i64())
      .field("pad2", Type::i64())
      .field("pad3", Type::i64())
      .field("hot_b", Type::i64())
      .field("pad4", Type::i64())
      .field("pad5", Type::i64());
  u64 malloc_align = 16;
  if (plan != nullptr) {
    apply_plan(mod, *plan);
    if (plan->wants_align()) malloc_align = 512;  // E$ line
  }
  scc::Function* mal = scc::add_runtime(mod, malloc_align);
  scc::Function* churn = mod.add_function("churn");
  {
    FunctionBuilder fb(mod, *churn);
    auto rs = fb.param("rs", Type::ptr(rec));
    auto n = fb.param("n", Type::i64());
    auto i = fb.local("i", Type::i64());
    auto p = fb.local("p", Type::ptr(rec));
    auto sum = fb.local("sum", Type::i64());
    fb.set(sum, 0);
    fb.set(i, 0);
    fb.while_(i < n, [&] {
      fb.set(p, rs + (i * 6151) % n);  // prime stride: cache-hostile order
      fb.set(sum, sum + p["hot_a"] + p["hot_b"]);
      fb.set(i, i + 1);
    });
    fb.ret(sum);
  }
  scc::Function* main_fn = mod.add_function("main");
  {
    FunctionBuilder fb(mod, *main_fn);
    auto rs = fb.local("rs", Type::ptr(rec));
    auto it = fb.local("it", Type::i64());
    const i64 n = 40000;
    fb.set(rs, scc::cast(fb.call(mal, {Val(n * static_cast<i64>(rec->size()))}),
                         Type::ptr(rec)));
    fb.set(it, 0);
    fb.while_(it < 12, [&] {
      fb.call_stmt(churn, {rs, Val(n)});
      fb.set(it, it + 1);
    });
    fb.ret(Val(0));
  }
  return scc::compile(mod);
}

machine::CpuConfig churn_machine() {
  // D$ far smaller than the record array (no sweep reuse), E$ large enough
  // to back D$ misses with hits — the regime where member packing pays.
  machine::CpuConfig cfg;
  cfg.hierarchy.dcache = {8 * 1024, 4, 32, false};
  cfg.hierarchy.ecache = {4 * 1024 * 1024, 2, 512, true};
  return cfg;
}

mcfsim::PaperSetup mcf_setup(bool small) {
  // The §3.3 experiment regime (bench/opt_speedups): D$ far smaller than the
  // node array, E$ backing D$ misses with hits, DTLB reach the heap exceeds.
  mcfsim::PaperSetup s = small ? mcfsim::PaperSetup::small() : mcfsim::PaperSetup::standard();
  s.cpu.hierarchy.dcache = {8 * 1024, 4, 32, false};
  s.cpu.hierarchy.ecache = {small ? 256 * 1024ULL : 1024 * 1024ULL, 2, 512, true};
  s.cpu.hierarchy.dtlb = {small ? 16u : 64u, 2, 8 * 1024};
  return s;
}

}  // namespace

machine::CpuConfig Workload::cpu_for(const LayoutPlan* plan) const {
  machine::CpuConfig cfg = cpu;
  if (plan != nullptr && plan->page_size_hint != 0) {
    cfg.hierarchy.dtlb.page_size = plan->page_size_hint;
  }
  return cfg;
}

Workload make_mcf_workload(bool small) {
  const mcfsim::PaperSetup s = mcf_setup(small);
  Workload w;
  w.name = small ? "mcf-small" : "mcf";
  w.description = small ? "MCF case study, scaled-down instance (fast smoke)"
                        : "the paper's MCF case study on the §3.3 machine regime";
  w.cpu = s.cpu;
  w.hw = "+ecstall,20011,+ecrm,211";
  w.clock = "hi";
  w.build = [s](const LayoutPlan* plan) {
    mcfsim::BuildOptions b = s.build;
    if (plan != nullptr) {
      b.layout_hook = [plan](scc::Module& m) { apply_plan(m, *plan); };
      b.align_heap_arrays = plan->wants_align();
      const StructDirective* arc = plan->find("arc");
      b.prefetch_arc_scan = arc != nullptr && arc->prefetch;
    }
    return mcfsim::build_mcf_image(b);
  };
  w.setup = [s](machine::Cpu& cpu) { mcfsim::write_input(cpu.memory(), s.run); };
  return w;
}

Workload make_churn_workload() {
  Workload w;
  w.name = "churn";
  w.description = "record-churn microbenchmark (two hot members, prime-stride sweep)";
  w.cpu = churn_machine();
  w.hw = "+ecstall,hi,+ecrm,hi";
  w.clock = "hi";
  w.build = [](const LayoutPlan* plan) { return build_churn(plan); };
  w.setup = nullptr;
  return w;
}

LayoutPlan churn_hand_plan() {
  LayoutPlan plan;
  plan.metric = "ecstall";
  StructDirective d;
  d.struct_name = "record";
  d.member_order = {"hot_a", "hot_b", "id", "pad1", "pad2", "pad3", "pad4", "pad5"};
  d.pad_to = 64;
  d.align_line = true;
  d.note = "hand-tuned: pack hot_a/hot_b into one D$ line, pad to a power of two";
  plan.structs.push_back(std::move(d));
  return plan;
}

Workload workload_by_name(const std::string& name) {
  if (name == "mcf") return make_mcf_workload(false);
  if (name == "mcf-small") return make_mcf_workload(true);
  if (name == "churn") return make_churn_workload();
  fail("unknown workload \"" + name + "\" (try: mcf, mcf-small, churn)");
}

std::vector<std::string> workload_names() { return {"mcf", "mcf-small", "churn"}; }

}  // namespace dsprof::opt
