// Builtin closed-loop workloads for er_opt --run: a workload packages
// everything the driver needs to go around the loop — how to build the
// image (baseline, or with a LayoutPlan applied via the module's layout
// hooks), how to set up a run, which machine to run on, and which counters
// to profile with.
//
// The plan's non-module directives map per workload: `align line` becomes
// the allocator/heap-array alignment, `pagesize` becomes the DTLB page size
// of the re-run (the simulated stand-in for -xpagesize_heap).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "machine/cpu.hpp"
#include "opt/plan.hpp"
#include "sym/image.hpp"

namespace dsprof::opt {

struct Workload {
  std::string name;
  std::string description;
  /// Machine the workload targets (profile and measure runs).
  machine::CpuConfig cpu;
  /// Counter spec for the profiling runs ("+ecstall,20011,+ecrm,211").
  std::string hw;
  /// Clock-profiling rate ("hi" / "on" / "off"); keep it on — the driver's
  /// significance test needs clock samples.
  std::string clock = "on";
  /// Build the image; plan == nullptr is the baseline layout.
  std::function<sym::Image(const LayoutPlan* plan)> build;
  /// Pre-run setup (poke the input into simulated memory); may be null.
  std::function<void(machine::Cpu&)> setup;

  /// Machine config for a run under `plan` (applies the page-size hint).
  machine::CpuConfig cpu_for(const LayoutPlan* plan) const;
};

/// The paper's MCF case study on the §3.3 machine regime (bench/opt_speedups);
/// `small` uses the faster scaled-down instance for smokes and tests.
Workload make_mcf_workload(bool small = false);

/// The record-churn microbenchmark (formerly examples/struct_layout_tuning):
/// 8-member record, two hot members 40 bytes apart, prime-stride sweep.
/// The hand-tuned §3.3 fix is hot_a/hot_b packed together + pad to 64.
Workload make_churn_workload();

/// Hand-tuned reference plan for the churn record — what a developer reading
/// the member view would write down. Used by benches/tests to check the
/// planner reproduces (or beats) the manual fix.
LayoutPlan churn_hand_plan();

/// Lookup by CLI name ("mcf", "mcf-small", "churn"); throws on unknown.
Workload workload_by_name(const std::string& name);
std::vector<std::string> workload_names();

}  // namespace dsprof::opt
