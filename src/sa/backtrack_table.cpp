#include "sa/backtrack_table.hpp"

#include "isa/isa.hpp"

namespace dsprof::sa {

using machine::TriggerKind;

/// Precompute the answer for one (delivered word, trigger kind) pair by
/// replaying the dynamic reference search (collect::backtrack_dynamic) over
/// the decoded text. Word index `dw` corresponds to delivered PC
/// text_base + 4*dw; `dw == code.size()` is the one-past-the-end PC.
///
/// Every branch of the reference is mirrored here, including its deliberate
/// conservatisms:
///   - the between-scan treats annulled delay-slot instructions as executed
///     writers (see the header comment);
///   - HCALL is treated as writing no register, matching the reference scan
///     (its %o0 result is invisible to the clobber logic there too).
/// Changing either here without changing the reference would break the
/// bit-identity contract enforced by the tests.
BacktrackTable::Entry BacktrackTable::precompute(const std::vector<isa::Instr>& code,
                                                 size_t dw, TriggerKind kind, u32 window) {
  BacktrackTable::Entry e;
  const size_t n = code.size();
  // Reference loop: pc starts at the delivered PC; each step requires
  // pc >= text_lo + 4 && pc <= text_hi before decrementing. In word terms:
  // the current position `cur` must satisfy 1 <= cur <= n.
  size_t cur = dw;
  for (u32 step = 0; step < window; ++step) {
    if (cur < 1 || cur > n) break;
    --cur;  // pc -= 4
    const isa::Instr& ins = code[cur];
    const isa::OpInfo& info = isa::op_info(ins.op);
    const bool matches = kind == TriggerKind::Load
                             ? info.is_load
                             : (info.is_load || info.is_store || info.is_prefetch);
    if (!matches) continue;

    e.flags |= BacktrackTable::kFound;
    e.candidate_word = static_cast<u32>(cur);

    const auto ea = isa::ea_expr(ins);
    DSP_CHECK(ea.has_value(), "memory op without EA expression");
    bool clobbered = false;
    // Self-clobber: a load that overwrites its own base/index register.
    if (info.is_load && ins.rd != 0 &&
        (ins.rd == ea->rs1 || (!ea->has_imm && ins.rd == ea->rs2))) {
      clobbered = true;
    }
    // Skid-gap clobber scan: instructions strictly between the candidate and
    // the delivered PC. Conservative: includes possibly-annulled delay slots.
    for (size_t q = cur + 1; q < dw && !clobbered; ++q) {
      const isa::Instr& between = code[q];
      const isa::OpInfo& binfo = isa::op_info(between.op);
      u8 written = 32;  // none
      if (binfo.is_load || (!binfo.is_store && !binfo.is_branch && !binfo.is_call &&
                            !binfo.is_prefetch && between.op != isa::Op::ILLEGAL &&
                            between.op != isa::Op::HCALL)) {
        written = between.rd;
      }
      if (binfo.is_call) written = isa::kLink;
      if (written != 32 && written != 0) {
        if (written == ea->rs1 || (!ea->has_imm && written == ea->rs2)) clobbered = true;
      }
    }
    if (!clobbered) {
      e.flags |= BacktrackTable::kEaStatic;
      e.rs1 = ea->rs1;
      if (ea->has_imm) {
        e.flags |= BacktrackTable::kHasImm;
        e.imm = ea->imm;
      } else {
        e.rs2 = ea->rs2;
      }
    }
    return e;
  }
  return e;  // nothing found within the window: (Unresolvable)
}

BacktrackTable BacktrackTable::build(const sym::Image& img, u32 window) {
  BacktrackTable t;
  t.text_base_ = img.text_base;
  t.window_ = window;
  const size_t n = img.text_words.size();
  std::vector<isa::Instr> code(n);
  for (size_t i = 0; i < n; ++i) code[i] = isa::decode(img.text_words[i]);
  t.load_.resize(n + 1);
  t.loadstore_.resize(n + 1);
  for (size_t dw = 0; dw <= n; ++dw) {
    t.load_[dw] = precompute(code, dw, TriggerKind::Load, window);
    t.loadstore_[dw] = precompute(code, dw, TriggerKind::LoadStore, window);
  }
  return t;
}

BacktrackAnswer BacktrackTable::query(u64 delivered_pc, TriggerKind kind,
                                      const std::array<u64, 32>& regs) const {
  BacktrackAnswer r;
  if (kind == TriggerKind::Any) return r;  // nothing to search for
  if (delivered_pc < text_base_ || (delivered_pc & 3) != 0) return r;
  const u64 dw = (delivered_pc - text_base_) >> 2;
  const std::vector<Entry>& tab = table_for(kind);
  if (dw >= tab.size()) return r;
  const Entry& e = tab[static_cast<size_t>(dw)];
  if (!(e.flags & kFound)) return r;
  r.found = true;
  r.candidate_pc = text_base_ + 4 * static_cast<u64>(e.candidate_word);
  if (e.flags & kEaStatic) {
    r.ea_known = true;
    const u64 off = (e.flags & kHasImm) ? static_cast<u64>(e.imm) : regs[e.rs2];
    r.ea = regs[e.rs1] + off;
  }
  return r;
}

BacktrackTable::StaticEntry BacktrackTable::static_entry(u64 delivered_pc,
                                                         TriggerKind kind) const {
  StaticEntry s;
  if (kind == TriggerKind::Any) return s;
  if (delivered_pc < text_base_ || (delivered_pc & 3) != 0) return s;
  const u64 dw = (delivered_pc - text_base_) >> 2;
  const std::vector<Entry>& tab = table_for(kind);
  if (dw >= tab.size()) return s;
  const Entry& e = tab[static_cast<size_t>(dw)];
  s.found = (e.flags & kFound) != 0;
  s.ea_static = (e.flags & kEaStatic) != 0;
  if (s.found) s.candidate_pc = text_base_ + 4 * static_cast<u64>(e.candidate_word);
  return s;
}

size_t BacktrackTable::size_bytes() const {
  return (load_.size() + loadstore_.size()) * sizeof(Entry);
}

size_t BacktrackTable::count_found(TriggerKind kind) const {
  if (kind == TriggerKind::Any) return 0;  // matches query(): nothing to search
  size_t c = 0;
  for (const Entry& e : table_for(kind)) c += (e.flags & kFound) ? 1 : 0;
  return c;
}

size_t BacktrackTable::count_ea_static(TriggerKind kind) const {
  if (kind == TriggerKind::Any) return 0;
  size_t c = 0;
  for (const Entry& e : table_for(kind)) c += (e.flags & kEaStatic) ? 1 : 0;
  return c;
}

}  // namespace dsprof::sa
