// Dataflow-precomputed apropos backtracking (paper §2.2.3, hoisted).
//
// The collector's dynamic search walks backward from the skidded delivered PC
// on *every* overflow event, re-decoding up to `window` instructions to find
// the candidate trigger and re-running a register-clobber scan over the skid
// gap. Every input to that search except the register values is static: the
// text segment never changes after load. This table precomputes, for every
// possible delivered PC and trigger kind, the complete answer — candidate
// trigger PC, clobber verdict, and the effective-address expression — so the
// overflow hot path is one O(1) lookup plus (at most) one add.
//
// The table is built once per image (Collector does this lazily on first
// use) and must be *bit-identical* to the dynamic reference search
// (collect::backtrack_dynamic): same candidate PC, same found/ea_known
// flags, same EA, for every delivered PC, trigger kind, and register set.
// tests/sa_test.cpp and tests/scc_fuzz_test.cpp enforce the equivalence;
// bench/backtrack_table measures the win.
//
// Conservative annulled-delay-slot rule (shared with the dynamic search):
// the clobber scan treats every instruction between the candidate and the
// delivered PC as an executed writer, including delay slots that an
// annulling branch may have skipped at run time. An annulled slot that
// *would* have written an address register therefore downgrades the answer
// to ea_known=false — a lost sample, never a wrong address. See
// backtrack_dynamic in collect/collector.hpp for the rationale.
#pragma once

#include <array>
#include <vector>

#include "machine/counters.hpp"
#include "sym/image.hpp"

namespace dsprof::isa {
struct Instr;
}

namespace dsprof::sa {

/// One backtracking answer, in the shape the collector records it.
struct BacktrackAnswer {
  bool found = false;      // a matching memory op exists within the window
  u64 candidate_pc = 0;    // its PC (valid iff found)
  bool ea_known = false;   // EA registers survived the skid un-clobbered
  u64 ea = 0;              // recomputed effective address (valid iff ea_known)
};

class BacktrackTable {
 public:
  /// Precompute answers for every word-aligned delivered PC in
  /// [text_base, text_base + text_size] (inclusive: the delivered PC is the
  /// *next* instruction to issue, so one-past-the-end is deliverable) and
  /// both searchable trigger kinds. `window` must match the collector's
  /// backtrack_window for the equivalence guarantee to hold.
  static BacktrackTable build(const sym::Image& img, u32 window);

  /// O(1) lookup. TriggerKind::Any, out-of-range, or misaligned delivered
  /// PCs return an empty answer (the dynamic search finds nothing there
  /// either). `regs` is only read when the precomputed EA expression is
  /// statically recoverable.
  BacktrackAnswer query(u64 delivered_pc, machine::TriggerKind kind,
                        const std::array<u64, 32>& regs) const;

  /// The register-independent part of one precomputed answer: does a
  /// candidate exist for this delivered PC, where, and did its EA expression
  /// survive the clobber scan. The attribution-coverage classifier
  /// (dataflow.hpp) consumes these directly so its verdicts reuse the exact
  /// table/reference search semantics instead of re-deriving them.
  struct StaticEntry {
    bool found = false;
    bool ea_static = false;
    u64 candidate_pc = 0;  // valid iff found
  };
  StaticEntry static_entry(u64 delivered_pc, machine::TriggerKind kind) const;

  u32 window() const { return window_; }
  u64 text_base() const { return text_base_; }
  size_t num_entries() const { return load_.size() + loadstore_.size(); }
  size_t size_bytes() const;

  /// Of the (n_words+1) delivered PCs for `kind`, how many have a candidate /
  /// a statically recoverable EA? (s3verify reports these as coverage facts.)
  size_t count_found(machine::TriggerKind kind) const;
  size_t count_ea_static(machine::TriggerKind kind) const;

 private:
  // Flat per-delivered-PC entry. `flags` encodes the precomputed verdict;
  // the EA expression (rs1 + imm | rs1 + rs2) is stored expanded so query()
  // does no decoding.
  struct Entry {
    u32 candidate_word = 0;  // word index of the candidate trigger
    u8 flags = 0;
    u8 rs1 = 0;
    u8 rs2 = 0;
    i64 imm = 0;
  };
  static constexpr u8 kFound = 1u;     // candidate exists within the window
  static constexpr u8 kEaStatic = 2u;  // no clobber: EA recomputable from regs
  static constexpr u8 kHasImm = 4u;    // EA offset is the immediate, not rs2

  static Entry precompute(const std::vector<isa::Instr>& code, size_t dw,
                          machine::TriggerKind kind, u32 window);

  const std::vector<Entry>& table_for(machine::TriggerKind kind) const {
    return kind == machine::TriggerKind::Load ? load_ : loadstore_;
  }

  u64 text_base_ = 0;
  u32 window_ = 0;
  // Indexed by delivered-PC word offset, size n_words+1 each.
  std::vector<Entry> load_;
  std::vector<Entry> loadstore_;
};

}  // namespace dsprof::sa
