#include "sa/cfg.hpp"

#include <algorithm>

#include "isa/isa.hpp"
#include "machine/hostcall.hpp"

namespace dsprof::sa {

namespace {

bool is_exit_hcall(const isa::Instr& ins) {
  return ins.op == isa::Op::HCALL && ins.has_imm &&
         ins.imm == static_cast<i64>(machine::HostCall::Exit);
}

/// Does the delay slot of a branch execute on its taken / untaken path?
/// (machine/cpu.cpp: `ba,a` annuls always; a conditional with the annul bit
/// annuls only when untaken.)
bool slot_runs_taken(const isa::Instr& br) {
  return !(br.annul && br.cond == isa::Cond::A);
}
bool slot_runs_untaken(const isa::Instr& br) { return !br.annul; }

}  // namespace

Cfg Cfg::build(const sym::Image& img) {
  Cfg g;
  g.text_base_ = img.text_base;
  const size_t n = img.text_words.size();
  g.instr_reachable_.assign(n, 0);
  g.delay_slot_.assign(n, 0);
  g.block_of_.assign(n, 0);
  if (n == 0) return g;

  std::vector<isa::Instr> code(n);
  for (size_t i = 0; i < n; ++i) code[i] = isa::decode(img.text_words[i]);

  auto in_text = [&](u64 pc) {
    return pc >= g.text_base_ && pc < g.text_base_ + 4 * n && (pc & 3) == 0;
  };
  auto word_of = [&](u64 pc) { return static_cast<size_t>((pc - g.text_base_) >> 2); };

  // Delay-slot map: the word after any delayed transfer.
  for (size_t i = 0; i + 1 < n; ++i) {
    if (isa::op_info(code[i].op).delayed) g.delay_slot_[i + 1] = 1;
  }

  // --- instruction-level reachability ---------------------------------------
  // Walk straight-line runs from each pending entry point; delayed transfers
  // mark their slot reachable (on the paths where it executes) and enqueue
  // their control successors, so a slot shadowed by `ba,a` never gets marked
  // through the annulled path.
  std::vector<u64> work;
  auto enqueue = [&](u64 pc) {
    if (in_text(pc) && !g.instr_reachable_[word_of(pc)]) work.push_back(pc);
  };
  enqueue(img.entry);
  while (!work.empty()) {
    u64 pc = work.back();
    work.pop_back();
    while (in_text(pc)) {
      const size_t w = word_of(pc);
      if (g.instr_reachable_[w]) break;
      g.instr_reachable_[w] = 1;
      const isa::Instr& ins = code[w];
      const isa::OpInfo& info = isa::op_info(ins.op);
      if (ins.op == isa::Op::ILLEGAL || is_exit_hcall(ins)) break;
      if (!info.delayed) {
        pc += 4;
        continue;
      }
      const u64 slot = pc + 4;
      if (ins.op == isa::Op::BR) {
        const bool taken_possible = ins.cond != isa::Cond::N;
        const bool untaken_possible = ins.cond != isa::Cond::A;
        if ((taken_possible && slot_runs_taken(ins)) ||
            (untaken_possible && slot_runs_untaken(ins))) {
          if (in_text(slot)) g.instr_reachable_[word_of(slot)] = 1;
        }
        if (taken_possible) enqueue(pc + static_cast<u64>(ins.disp));
        if (untaken_possible) enqueue(pc + 8);
      } else if (ins.op == isa::Op::CALL) {
        if (in_text(slot)) g.instr_reachable_[word_of(slot)] = 1;
        enqueue(pc + static_cast<u64>(ins.disp));
        enqueue(pc + 8);  // the call-return join (assuming the callee returns)
      } else {  // JMPL: indirect target — no static successor
        if (in_text(slot)) g.instr_reachable_[word_of(slot)] = 1;
      }
      break;
    }
  }

  // --- basic blocks ----------------------------------------------------------
  // Leaders: entry, every decoded branch/call target, the join after each
  // delayed transfer's slot, and every address in the symbol table's
  // branch-target table.
  std::vector<u8> leader(n, 0);
  leader[0] = 1;
  if (in_text(img.entry)) leader[word_of(img.entry)] = 1;
  for (size_t i = 0; i < n; ++i) {
    const isa::Instr& ins = code[i];
    if (ins.op == isa::Op::BR || ins.op == isa::Op::CALL) {
      const u64 target = g.text_base_ + 4 * i + static_cast<u64>(ins.disp);
      if (in_text(target)) leader[word_of(target)] = 1;
    }
    if (isa::op_info(ins.op).delayed && i + 2 < n) leader[i + 2] = 1;
  }
  for (u64 t : img.symtab.branch_targets()) {
    if (in_text(t)) leader[word_of(t)] = 1;
  }
  // A delay slot never starts a block unless it is itself a branch target;
  // clear leaders synthesized purely by structure.
  // (Targets landing in a slot are kept: the machine can jump there.)

  std::vector<size_t> starts;
  for (size_t i = 0; i < n; ++i) {
    if (leader[i]) starts.push_back(i);
  }
  g.blocks_.reserve(starts.size());
  for (size_t b = 0; b < starts.size(); ++b) {
    const size_t lo = starts[b];
    const size_t hi = b + 1 < starts.size() ? starts[b + 1] : n;
    BasicBlock blk;
    blk.lo = g.text_base_ + 4 * lo;
    blk.hi = g.text_base_ + 4 * hi;
    for (size_t i = lo; i < hi; ++i) {
      g.block_of_[i] = static_cast<u32>(b);
      blk.reachable = blk.reachable || g.instr_reachable_[i] != 0;
    }
    g.blocks_.push_back(std::move(blk));
  }

  // Successor edges from each block's terminator.
  auto block_index_at = [&](u64 pc) -> std::optional<u32> {
    if (!in_text(pc)) return std::nullopt;
    return g.block_of_[word_of(pc)];
  };
  for (size_t b = 0; b < g.blocks_.size(); ++b) {
    BasicBlock& blk = g.blocks_[b];
    const size_t last = word_of(blk.hi) - 1;
    // The terminating transfer is the instruction before the slot (if the
    // block ends in transfer+slot), else the final instruction.
    size_t term = last;
    if (g.delay_slot_[last] && last >= 1 && word_of(blk.lo) <= last - 1) term = last - 1;
    const isa::Instr& ins = code[term];
    std::vector<u32> succ;
    auto add = [&](u64 pc) {
      if (auto s = block_index_at(pc)) {
        if (std::find(succ.begin(), succ.end(), *s) == succ.end()) succ.push_back(*s);
      }
    };
    if (ins.op == isa::Op::BR) {
      if (ins.cond != isa::Cond::N) add(g.text_base_ + 4 * term + static_cast<u64>(ins.disp));
      if (ins.cond != isa::Cond::A) add(g.text_base_ + 4 * term + 8);
    } else if (ins.op == isa::Op::CALL) {
      add(g.text_base_ + 4 * term + static_cast<u64>(ins.disp));
      add(g.text_base_ + 4 * term + 8);
    } else if (ins.op == isa::Op::JMPL || ins.op == isa::Op::ILLEGAL || is_exit_hcall(ins)) {
      // no static successors
    } else {
      add(blk.hi);  // plain fall-through
    }
    blk.succ = std::move(succ);
  }
  return g;
}

bool Cfg::instr_reachable(u64 pc) const {
  if (pc < text_base_ || (pc & 3) != 0) return false;
  const size_t w = static_cast<size_t>((pc - text_base_) >> 2);
  return w < instr_reachable_.size() && instr_reachable_[w] != 0;
}

const BasicBlock* Cfg::block_at(u64 pc) const {
  if (pc < text_base_ || (pc & 3) != 0) return nullptr;
  const size_t w = static_cast<size_t>((pc - text_base_) >> 2);
  if (w >= block_of_.size()) return nullptr;
  return &blocks_[block_of_[w]];
}

bool Cfg::is_delay_slot(u64 pc) const {
  if (pc < text_base_ || (pc & 3) != 0) return false;
  const size_t w = static_cast<size_t>((pc - text_base_) >> 2);
  return w < delay_slot_.size() && delay_slot_[w] != 0;
}

size_t Cfg::reachable_blocks() const {
  size_t n = 0;
  for (const auto& b : blocks_) n += b.reachable ? 1 : 0;
  return n;
}

size_t Cfg::num_edges() const {
  size_t n = 0;
  for (const auto& b : blocks_) n += b.succ.size();
  return n;
}

}  // namespace dsprof::sa
