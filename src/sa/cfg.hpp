// Static control-flow-graph reconstruction over a compiled s3 image.
//
// The CFG is built from two sources: the decoded text segment (direct
// branch/call targets, delayed-transfer structure, HCALL Exit terminators)
// and the -xdebugformat=dwarf branch-target table carried by the symbol
// tables (which additionally names indirect join points such as call
// returns). It underlies the hwcprof invariant linter (lint.hpp) and the
// reachability facts reported by the s3verify CLI.
//
// Delay-slot modelling follows the machine exactly (machine/cpu.cpp):
// the instruction after a delayed transfer executes with it, except that an
// annulling branch skips it on the untaken path and `ba,a` skips it always.
#pragma once

#include <vector>

#include "sym/image.hpp"

namespace dsprof::sa {

struct BasicBlock {
  u64 lo = 0;  // first instruction address
  u64 hi = 0;  // one past the last instruction (delay slots stay with their
               // transfer, so a block ends after the slot)
  /// Successor block indices (direct control transfers + fall-through).
  /// Indirect transfers (jmpl/ret) and HCALL Exit contribute no edges.
  std::vector<u32> succ;
  bool reachable = false;  // reachable from the image entry point
};

class Cfg {
 public:
  /// Reconstruct the CFG of `img`'s text segment.
  static Cfg build(const sym::Image& img);

  const std::vector<BasicBlock>& blocks() const { return blocks_; }

  u64 text_base() const { return text_base_; }
  size_t num_words() const { return instr_reachable_.size(); }

  /// Is the instruction word at `pc` reachable from the entry point?
  /// (Delay slots count as reachable only on paths where they execute.)
  bool instr_reachable(u64 pc) const;

  /// Block containing `pc`, or nullptr if `pc` is outside the text segment.
  const BasicBlock* block_at(u64 pc) const;

  /// Is the instruction at `pc` the delay slot of a preceding delayed
  /// control transfer?
  bool is_delay_slot(u64 pc) const;

  size_t reachable_blocks() const;
  size_t num_edges() const;

 private:
  u64 text_base_ = 0;
  std::vector<BasicBlock> blocks_;
  std::vector<u32> block_of_;         // word index -> block index
  std::vector<u8> instr_reachable_;   // word index -> executed on some path
  std::vector<u8> delay_slot_;        // word index -> sits in a delay slot
};

}  // namespace dsprof::sa
