#include "sa/dataflow.hpp"

#include <algorithm>
#include <array>
#include <optional>

namespace dsprof::sa {

using machine::TriggerKind;

namespace {

constexpr u32 kAllRegs = 0xFFFFFFFEu;  // every register except %g0

u32 bit(u8 r) { return r == 0 ? 0u : (1u << r); }

}  // namespace

// ---------------------------------------------------------------------------
// Per-instruction register facts

RegFacts reg_facts(const isa::Instr& ins) {
  RegFacts f;
  const isa::OpInfo& info = isa::op_info(ins.op);
  // Written register: the backtracking clobber scan's rule, verbatim
  // (backtrack_table.cpp): loads and ALU-type ops (including SETHI and JMPL)
  // write rd, CALL writes the link register, everything else writes nothing.
  if (info.is_load || (!info.is_store && !info.is_branch && !info.is_call &&
                       !info.is_prefetch && ins.op != isa::Op::ILLEGAL &&
                       ins.op != isa::Op::HCALL)) {
    f.def = ins.rd;
  }
  if (info.is_call) f.def = isa::kLink;
  if (f.def == 0) f.def = kNoReg;  // %g0 writes are dropped

  switch (ins.op) {
    case isa::Op::ILLEGAL:
    case isa::Op::SETHI:
    case isa::Op::BR:    // reads the condition codes, no registers
    case isa::Op::CALL:
      break;
    case isa::Op::HCALL:
      // Host calls read their arguments from %o0-%o5 (machine/hostcall.hpp);
      // which ones depends on the service code, so read them all.
      for (u8 r = isa::O0; r <= isa::O5; ++r) f.uses |= bit(r);
      break;
    default:
      if (info.is_store) f.uses |= bit(ins.rd);  // rd is the data source
      f.uses |= bit(ins.rs1);
      if (!ins.has_imm) f.uses |= bit(ins.rs2);
      break;
  }
  return f;
}

bool is_identity_move(const isa::Instr& ins) {
  if (ins.op != isa::Op::OR && ins.op != isa::Op::ADD) return false;
  const bool zero_second = ins.has_imm ? ins.imm == 0 : ins.rs2 == 0;
  if (ins.rs1 == ins.rd && zero_second) return true;                      // rd op= 0
  if (ins.rs1 == 0 && !ins.has_imm && ins.rs2 == ins.rd) return true;    // rd = 0 op rd
  return false;
}

// ---------------------------------------------------------------------------
// ProgramFacts

ProgramFacts ProgramFacts::build(const sym::Image& img, const Cfg& cfg) {
  ProgramFacts pf;
  pf.cfg = &cfg;
  pf.text_base = img.text_base;
  const size_t n = img.text_words.size();
  pf.code.resize(n);
  for (size_t i = 0; i < n; ++i) pf.code[i] = isa::decode(img.text_words[i]);

  const size_t nb = cfg.blocks().size();
  pf.preds.assign(nb, {});
  for (size_t b = 0; b < nb; ++b) {
    for (const u32 s : cfg.blocks()[b].succ) pf.preds[s].push_back(static_cast<u32>(b));
  }

  // Reverse postorder: iterative DFS from the entry block, then from every
  // function entry (uncalled functions get analyzed too), then stragglers.
  std::vector<u32> roots;
  if (const BasicBlock* eb = cfg.block_at(img.entry)) {
    roots.push_back(static_cast<u32>(eb - cfg.blocks().data()));
  }
  for (const auto& f : img.symtab.functions()) {
    if (const BasicBlock* fb = cfg.block_at(f.lo)) {
      roots.push_back(static_cast<u32>(fb - cfg.blocks().data()));
    }
  }
  for (u32 b = 0; b < nb; ++b) roots.push_back(b);

  std::vector<u8> state(nb, 0);  // 0 unvisited, 1 on stack, 2 done
  std::vector<u32> postorder;
  postorder.reserve(nb);
  std::vector<std::pair<u32, size_t>> stack;
  for (const u32 root : roots) {
    if (state[root] != 0) continue;
    state[root] = 1;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [b, next] = stack.back();
      const auto& succ = cfg.blocks()[b].succ;
      if (next < succ.size()) {
        const u32 s = succ[next++];
        if (state[s] == 0) {
          state[s] = 1;
          stack.emplace_back(s, 0);
        }
      } else {
        state[b] = 2;
        postorder.push_back(b);
        stack.pop_back();
      }
    }
  }
  pf.rpo.assign(postorder.rbegin(), postorder.rend());
  pf.rpo_index.assign(nb, 0);
  for (size_t i = 0; i < pf.rpo.size(); ++i) pf.rpo_index[pf.rpo[i]] = static_cast<u32>(i);
  return pf;
}

size_t ProgramFacts::block_lo_word(u32 b) const {
  return word_of(cfg->blocks()[b].lo);
}

size_t ProgramFacts::block_hi_word(u32 b) const {
  return word_of(cfg->blocks()[b].hi);
}

bool ProgramFacts::may_annul(size_t w) const {
  if (!cfg->is_delay_slot(pc_of(w)) || w == 0) return false;
  const isa::Instr& br = code[w - 1];
  return br.op == isa::Op::BR && br.annul;
}

// ---------------------------------------------------------------------------
// Liveness

namespace {

struct LivenessProblem {
  using Value = u32;
  const ProgramFacts& pf;

  Value init() const { return 0; }
  Value boundary(u32 /*b*/) const { return kAllRegs; }
  bool is_boundary(u32 b) const {
    const BasicBlock& blk = pf.cfg->blocks()[b];
    if (blk.succ.empty()) return true;
    // Effective terminator: the instruction before the slot when the block
    // ends in transfer+slot. Calls, indirect jumps and host calls hand
    // control to code whose reads we cannot see: everything is live.
    size_t last = pf.block_hi_word(b) - 1;
    if (pf.cfg->is_delay_slot(pf.pc_of(last)) && last > pf.block_lo_word(b)) --last;
    const isa::Op op = pf.code[last].op;
    return op == isa::Op::CALL || op == isa::Op::JMPL || op == isa::Op::HCALL;
  }
  bool join(Value& into, const Value& from) const {
    const Value next = into | from;
    const bool changed = next != into;
    into = next;
    return changed;
  }
  Value transfer(u32 b, const Value& live_out) const {
    Value live = live_out;
    const size_t lo = pf.block_lo_word(b);
    for (size_t w = pf.block_hi_word(b); w-- > lo;) {
      const RegFacts f = reg_facts(pf.code[w]);
      // An annullable delay slot may be skipped: its def never kills.
      if (!pf.may_annul(w) && f.def != kNoReg) live &= ~bit(f.def);
      live |= f.uses;
    }
    return live;
  }
};

}  // namespace

Liveness Liveness::build(const ProgramFacts& pf) {
  Liveness lv;
  LivenessProblem prob{pf};
  std::vector<u32> exit_side;  // live-out per block (the meet side)
  std::vector<u32> entry_side;
  const SolveResult res =
      solve_worklist(pf, prob, Direction::Backward, exit_side, entry_side);
  lv.iterations_ = res.iterations;
  lv.live_out_ = std::move(exit_side);
  lv.live_in_ = std::move(entry_side);

  // Dead-write scan: replay each reachable block backward from its live-out
  // set; a non-memory ALU definition of a register that is dead right after
  // it executes is a wasted instruction.
  for (u32 b = 0; b < pf.num_blocks(); ++b) {
    if (!pf.cfg->blocks()[b].reachable) continue;
    u32 live = lv.live_out_[b];
    const size_t lo = pf.block_lo_word(b);
    for (size_t w = pf.block_hi_word(b); w-- > lo;) {
      const isa::Instr& ins = pf.code[w];
      const isa::OpInfo& info = isa::op_info(ins.op);
      const RegFacts f = reg_facts(ins);
      const bool reportable = f.def != kNoReg && !info.is_load && !info.is_call &&
                              !info.is_jmpl && !is_identity_move(ins) &&
                              pf.cfg->instr_reachable(pf.pc_of(w)) &&
                              !pf.cfg->is_delay_slot(pf.pc_of(w));
      if (reportable && (live & bit(f.def)) == 0) {
        lv.dead_.push_back(DeadWrite{pf.pc_of(w), f.def});
      }
      if (!pf.may_annul(w) && f.def != kNoReg) live &= ~bit(f.def);
      live |= f.uses;
    }
  }
  std::sort(lv.dead_.begin(), lv.dead_.end(),
            [](const DeadWrite& a, const DeadWrite& b) { return a.pc < b.pc; });
  return lv;
}

// ---------------------------------------------------------------------------
// Reaching definitions

namespace {

struct ReachingProblem {
  using Value = std::vector<u64>;
  const ProgramFacts& pf;
  const std::vector<u32>& site_of_word;
  // Per register: bit masks of all its def sites (for kills).
  const std::array<Value, 32>& sites_of_reg;
  size_t nwords;

  Value init() const { return Value(nwords, 0); }
  Value boundary(u32 /*b*/) const { return init(); }
  bool is_boundary(u32 /*b*/) const { return false; }
  bool join(Value& into, const Value& from) const {
    bool changed = false;
    for (size_t i = 0; i < nwords; ++i) {
      const u64 next = into[i] | from[i];
      changed = changed || next != into[i];
      into[i] = next;
    }
    return changed;
  }
  void apply(Value& v, size_t w) const {
    const u32 site = site_of_word[w];
    if (site == ~0u) return;
    const RegFacts f = reg_facts(pf.code[w]);
    // A must-def kills every other def of the register; a may-def (an
    // annullable delay slot) only adds its own site.
    if (!pf.may_annul(w)) {
      const Value& kills = sites_of_reg[f.def];
      for (size_t i = 0; i < nwords; ++i) v[i] &= ~kills[i];
    }
    v[site / 64] |= u64{1} << (site % 64);
  }
  Value transfer(u32 b, const Value& in) const {
    Value v = in;
    const size_t hi = pf.block_hi_word(b);
    for (size_t w = pf.block_lo_word(b); w < hi; ++w) apply(v, w);
    return v;
  }
};

}  // namespace

ReachingDefs ReachingDefs::build(const ProgramFacts& pf) {
  ReachingDefs rd;
  rd.pf_ = &pf;
  rd.site_of_word_.assign(pf.code.size(), kNoSite);
  for (size_t w = 0; w < pf.code.size(); ++w) {
    const RegFacts f = reg_facts(pf.code[w]);
    if (f.def == kNoReg) continue;
    rd.site_of_word_[w] = static_cast<u32>(rd.sites_.size());
    rd.sites_.push_back(DefSite{pf.pc_of(w), f.def});
  }
  const size_t nwords = (rd.sites_.size() + 63) / 64;
  std::array<Bits, 32> sites_of_reg;
  for (auto& b : sites_of_reg) b.assign(nwords, 0);
  for (size_t i = 0; i < rd.sites_.size(); ++i) {
    sites_of_reg[rd.sites_[i].reg][i / 64] |= u64{1} << (i % 64);
  }
  ReachingProblem prob{pf, rd.site_of_word_, sites_of_reg, nwords};
  std::vector<Bits> out;
  const SolveResult res = solve_worklist(pf, prob, Direction::Forward, rd.in_, out);
  rd.iterations_ = res.iterations;
  return rd;
}

std::vector<u64> ReachingDefs::defs_reaching(u64 pc, u8 reg) const {
  std::vector<u64> out;
  const BasicBlock* blk = pf_->cfg->block_at(pc);
  if (blk == nullptr || reg == 0 || reg >= kNoReg) return out;
  const u32 b = static_cast<u32>(blk - pf_->cfg->blocks().data());
  const size_t nwords = (sites_.size() + 63) / 64;
  Bits v = in_.empty() ? Bits(nwords, 0) : in_[b];
  // Replay the block prefix up to (not including) `pc`.
  const size_t target = pf_->word_of(pc);
  for (size_t w = pf_->block_lo_word(b); w < target; ++w) {
    const u32 site = site_of_word_[w];
    if (site == kNoSite) continue;
    const RegFacts f = reg_facts(pf_->code[w]);
    if (!pf_->may_annul(w)) {
      for (size_t i = 0; i < sites_.size(); ++i) {
        if (sites_[i].reg == f.def) v[i / 64] &= ~(u64{1} << (i % 64));
      }
    }
    v[site / 64] |= u64{1} << (site % 64);
  }
  for (size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i].reg == reg && (v[i / 64] >> (i % 64) & 1) != 0) {
      out.push_back(sites_[i].pc);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Attribution coverage

const char* ea_class_name(EaClass c) {
  switch (c) {
    case EaClass::Attributable: return "attributable";
    case EaClass::Clobbered: return "clobbered";
    case EaClass::Unknown: return "unknown";
  }
  return "?";
}

AttributionCoverage AttributionCoverage::build(const sym::Image& img, const Cfg& cfg,
                                               const BacktrackTable& table) {
  AttributionCoverage ac;
  ac.text_base_ = img.text_base;
  const size_t n = img.text_words.size();
  std::vector<isa::Instr> code(n);
  for (size_t i = 0; i < n; ++i) code[i] = isa::decode(img.text_words[i]);

  // --- the issue-reachable delivery set -----------------------------------
  // Mirror cpu.cpp's issue sequence: every pc_ a step can start with. That is
  // the address-next word for straight-line code, slot + target for delayed
  // transfers, the fall-through after an annul step (the slot is fetched but
  // not retired), and the word after a reachable Exit hcall (pending
  // deliveries are flushed there at halt).
  ac.delivery_.assign(n + 1, 0);
  auto in_text_word = [&](u64 pc) -> std::optional<size_t> {
    // One past the end (w == n) is a legitimate delivery point: the machine
    // can hold it as the next-to-issue PC for one step before faulting or
    // halting, and the backtrack table has an entry for it.
    if (pc < img.text_base || (pc & 3) != 0) return std::nullopt;
    const size_t w = static_cast<size_t>((pc - img.text_base) >> 2);
    if (w > n) return std::nullopt;
    return w;
  };
  auto mark = [&](size_t w) {
    if (w <= n) ac.delivery_[w] = 1;
  };

  // An indirect jump's target is only statically known for the return idiom
  // (jmpl %g0, %o7 + 8) when %o7 provably holds a call PC; otherwise fall
  // back to "anywhere" — sound, just less precise. Likewise for a delayed
  // transfer sitting in another transfer's delay slot: the machine's
  // overlapping-npc behavior is not modelled here, so give up precision
  // rather than risk missing a delivery point.
  bool universal = false;
  for (size_t w = 0; w < n && !universal; ++w) {
    if (!cfg.instr_reachable(img.text_base + 4 * w)) continue;
    const isa::Instr& ins = code[w];
    if (ins.op == isa::Op::JMPL &&
        !(ins.rd == 0 && ins.rs1 == isa::kLink && ins.has_imm && ins.imm == 8)) {
      universal = true;  // computed jump: target unknowable
    }
    if (ins.op != isa::Op::CALL && reg_facts(ins).def == isa::kLink) {
      universal = true;  // %o7 no longer guaranteed to hold a call PC
    }
    if (isa::op_info(ins.op).delayed && cfg.is_delay_slot(img.text_base + 4 * w)) {
      universal = true;  // transfer in a delay slot: npc interleaving
    }
  }

  if (universal) {
    std::fill(ac.delivery_.begin(), ac.delivery_.end(), u8{1});
  } else {
    // The entry word itself can head a step (no delivery can be pending that
    // early, but marking it costs nothing and keeps the set a superset of
    // every PC the machine ever holds as next-to-issue).
    if (auto ew = in_text_word(img.entry)) mark(*ew);
    bool has_ret = false;
    for (size_t w = 0; w < n; ++w) {
      if (!cfg.instr_reachable(img.text_base + 4 * w)) continue;
      const isa::Instr& ins = code[w];
      switch (ins.op) {
        case isa::Op::ILLEGAL:
          break;  // the machine faults: nothing is issued after
        case isa::Op::BR: {
          const bool taken_possible = ins.cond != isa::Cond::N;
          const bool untaken_possible = ins.cond != isa::Cond::A;
          const u64 target = img.text_base + 4 * w + static_cast<u64>(ins.disp);
          if (ins.annul && ins.cond == isa::Cond::A) {
            // ba,a: the slot is never issued; control moves straight on.
            if (auto tw = in_text_word(target)) mark(*tw);
          } else {
            mark(w + 1);  // the slot is issued (possibly as an annul step)
            if (taken_possible) {
              if (auto tw = in_text_word(target)) mark(*tw);
            }
            // Annulled slots do not execute: the issue point after the annul
            // step is the fall-through, which instruction-level reachability
            // may not cover (e.g. bn,a). Mark it here.
            if (ins.annul && untaken_possible) mark(w + 2);
          }
          break;
        }
        case isa::Op::CALL: {
          mark(w + 1);  // slot
          const u64 target = img.text_base + 4 * w + static_cast<u64>(ins.disp);
          if (auto tw = in_text_word(target)) mark(*tw);
          break;
        }
        case isa::Op::JMPL:
          mark(w + 1);  // slot; targets handled below (return idiom only)
          has_ret = true;
          break;
        default:
          // Straight-line issue. For an Exit hcall this is the flush-at-halt
          // delivery point; for everything else the next fetch.
          mark(w + 1);
          break;
      }
    }
    if (has_ret) {
      // Return targets: the join after any reachable call site.
      for (size_t w = 0; w < n; ++w) {
        if (code[w].op == isa::Op::CALL && cfg.instr_reachable(img.text_base + 4 * w)) {
          mark(w + 2);
        }
      }
    }
  }

  // --- classify every memory op -------------------------------------------
  const u32 window = table.window();
  for (size_t p = 0; p < n; ++p) {
    const isa::Instr& ins = code[p];
    const isa::OpInfo& info = isa::op_info(ins.op);
    if (!info.is_load && !info.is_store && !info.is_prefetch) continue;
    MemOpFact fact;
    fact.pc = img.text_base + 4 * p;
    fact.is_load = info.is_load;
    fact.is_store = info.is_store;
    fact.is_prefetch = info.is_prefetch;
    fact.reachable = cfg.instr_reachable(fact.pc);

    // Loads can be blamed by both Load- and LoadStore-triggered counters;
    // stores and prefetches only by LoadStore ones.
    const std::array<TriggerKind, 2> kinds = {
        info.is_load ? TriggerKind::Load : TriggerKind::LoadStore,
        TriggerKind::LoadStore};
    const size_t nkinds = info.is_load ? 2 : 1;

    bool attributable = false;
    for (size_t dw = p + 1; dw <= std::min(p + window, n); ++dw) {
      if (ac.delivery_[dw] == 0) continue;
      bool resolves = false;
      bool ea_ok = false;
      for (size_t k = 0; k < nkinds; ++k) {
        const auto se = table.static_entry(img.text_base + 4 * dw, kinds[k]);
        if (se.found && se.candidate_pc == fact.pc) {
          resolves = true;
          ea_ok = ea_ok || se.ea_static;
        }
      }
      fact.resolving_deliveries += resolves ? 1 : 0;
      fact.ea_static_deliveries += ea_ok ? 1 : 0;
      attributable = attributable || ea_ok;
    }
    fact.cls = attributable
                   ? EaClass::Attributable
                   : (fact.resolving_deliveries > 0 ? EaClass::Clobbered : EaClass::Unknown);

    // Address-order distance to the first downstream EA-register writer.
    if (const auto ea = isa::ea_expr(ins)) {
      for (size_t q = p + 1; q < std::min(p + window, n); ++q) {
        const RegFacts f = reg_facts(code[q]);
        if (f.def != kNoReg &&
            (f.def == ea->rs1 || (!ea->has_imm && f.def == ea->rs2))) {
          fact.clobber_depth = static_cast<u32>(q - p);
          break;
        }
      }
    }

    ac.reachable_ += fact.reachable ? 1 : 0;
    ac.attributable_ += (fact.reachable && fact.cls == EaClass::Attributable) ? 1 : 0;
    ac.ops_.push_back(fact);
  }
  return ac;
}

const MemOpFact* AttributionCoverage::find(u64 pc) const {
  const auto it = std::lower_bound(
      ops_.begin(), ops_.end(), pc,
      [](const MemOpFact& f, u64 target) { return f.pc < target; });
  if (it == ops_.end() || it->pc != pc) return nullptr;
  return &*it;
}

bool AttributionCoverage::is_delivery_point(u64 pc) const {
  if (pc < text_base_ || (pc & 3) != 0) return false;
  const size_t w = static_cast<size_t>((pc - text_base_) >> 2);
  return w < delivery_.size() && delivery_[w] != 0;
}

double AttributionCoverage::fraction() const {
  if (reachable_ == 0) return 1.0;
  return static_cast<double>(attributable_) / static_cast<double>(reachable_);
}

std::vector<FunctionCoverage> AttributionCoverage::by_function(const sym::Image& img) const {
  std::vector<FunctionCoverage> rows;
  for (const auto& f : img.symtab.functions()) {
    FunctionCoverage row;
    row.name = f.name;
    row.lo = f.lo;
    row.hi = f.hi;
    for (const auto& op : ops_) {
      if (op.pc < f.lo || op.pc >= f.hi) continue;
      ++row.mem_ops;
      if (!op.reachable) continue;
      ++row.reachable_mem_ops;
      row.attributable += op.cls == EaClass::Attributable ? 1 : 0;
    }
    row.fraction = row.reachable_mem_ops == 0
                       ? 1.0
                       : static_cast<double>(row.attributable) /
                             static_cast<double>(row.reachable_mem_ops);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const FunctionCoverage& a, const FunctionCoverage& b) { return a.lo < b.lo; });
  return rows;
}

}  // namespace dsprof::sa
