// Worklist dataflow framework over the reconstructed CFG (cfg.hpp).
//
// The framework is deliberately small: ProgramFacts decodes the text once
// and derives the block-level facts every analysis needs (predecessor lists,
// a reverse postorder, delay-slot/annul structure), reg_facts() gives the
// per-instruction register transfer function, and solve_worklist() runs any
// forward or backward problem to its fixpoint. Three instantiations live
// here:
//
//   * Liveness     — backward may-analysis over 32-bit register masks. Blocks
//     ending in CALL/JMPL/HCALL (or with no static successors) are boundary
//     blocks with everything live: the callee/host may read any register.
//     Feeds the dead-register-write lint rule.
//   * ReachingDefs — forward may-analysis over def sites (one bit per
//     register-writing instruction). Solver unit tests exercise it on
//     hand-built CFGs; loops.hpp uses the same def/use facts for stride
//     inference.
//   * AttributionCoverage — the static attribution-coverage proof. See below.
//
// Delay-slot exactness: an instruction in the delay slot of an annulling
// branch may be skipped at run time (machine/cpu.cpp), so its definition
// must not kill facts flowing across it — it is a *may*-def. Both transfer
// functions honor that, mirroring the conservative annulled-slot rule of the
// backtracking clobber scan (backtrack_table.hpp).
//
// --- The attribution-coverage classification -------------------------------
//
// The dynamic pipeline attributes a counter event by an *address-order*
// backward search from the skidded delivered PC: the first matching memory
// op below the delivered PC becomes the candidate, whether or not it is
// path-connected to the true trigger. A memory-op PC therefore appears in
// profiles with a valid effective address exactly when some *reachable
// delivery point* resolves to it with the EA registers un-clobbered. That
// makes the classification delivery-centric:
//
//   Attributable — some issue-reachable delivered PC within the backtrack
//                  window resolves to this op with a statically recoverable
//                  EA: samples here can carry a data address.
//   Clobbered    — deliveries resolve to this op, but every one of them
//                  loses the EA to the skid-gap clobber scan (including the
//                  self-clobbering-load case): the op can only ever appear
//                  as <invalid EA>.
//   Unknown      — no issue-reachable delivery resolves to this op at all:
//                  it is invisible to the profiler (its own events, if any,
//                  are attributed elsewhere).
//
// "Issue-reachable" is the dataflow product: the set of PCs the machine can
// present as a delivered PC. It is instruction-level reachability plus the
// points cpu.cpp can issue without retiring — the delay slot of an annulling
// conditional branch (fetched, then annulled) and the word after a reachable
// Exit hcall (pending deliveries are flushed there at halt). The
// conservativeness theorem — every dynamically delivered PC lies in this
// set, hence every dynamically attributed candidate is classified
// Attributable — is enforced by tests/dataflow_test.cpp and the
// scc_fuzz_test property harness over random programs.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "sa/backtrack_table.hpp"
#include "sa/cfg.hpp"

namespace dsprof::sa {

// ---------------------------------------------------------------------------
// Shared program facts

inline constexpr u8 kNoReg = 32;

/// Per-instruction register transfer facts. `def` follows the *written
/// register* rule of the backtracking clobber scan exactly (loads and
/// ALU-type ops write rd, CALL writes the link register, stores/branches/
/// prefetches/HCALL/ILLEGAL write nothing, %g0 writes are dropped) — the two
/// analyses must never disagree about what clobbers a register. `uses` is a
/// register bitmask (%g0 excluded); HCALL conservatively reads %o0-%o5.
struct RegFacts {
  u8 def = kNoReg;
  u32 uses = 0;
};

RegFacts reg_facts(const isa::Instr& ins);

/// True for register-preserving identity moves (`or rd, rd, %g0`,
/// `add rd, rd, 0` and permutations): they write a register without changing
/// its value, so the dead-write rule must not flag them even though the
/// clobber scan (correctly, conservatively) treats them as writers.
bool is_identity_move(const isa::Instr& ins);

/// Decoded text + CFG-derived block facts shared by every analysis.
struct ProgramFacts {
  static ProgramFacts build(const sym::Image& img, const Cfg& cfg);

  const Cfg* cfg = nullptr;
  u64 text_base = 0;
  std::vector<isa::Instr> code;
  std::vector<std::vector<u32>> preds;  // per block, from cfg succ edges
  /// Every block exactly once: reverse postorder from the image entry and
  /// each function entry (so uncalled functions are analyzed too), then any
  /// stragglers in address order.
  std::vector<u32> rpo;
  std::vector<u32> rpo_index;  // block -> position in rpo

  size_t num_blocks() const { return preds.size(); }
  u64 pc_of(size_t w) const { return text_base + 4 * w; }
  size_t word_of(u64 pc) const { return static_cast<size_t>((pc - text_base) >> 2); }
  size_t block_lo_word(u32 b) const;
  size_t block_hi_word(u32 b) const;
  /// May the instruction at word `w` be annulled (it sits in the delay slot
  /// of an annulling branch)? Its defs are may-defs, never kills.
  bool may_annul(size_t w) const;
};

// ---------------------------------------------------------------------------
// Generic worklist solver

enum class Direction : u8 { Forward, Backward };

struct SolveResult {
  size_t iterations = 0;  // block transfer evaluations until fixpoint
};

/// Run `prob` to its fixpoint over `pf`'s blocks. The problem supplies the
/// lattice and transfer:
///   Value   — copyable fact type;
///   Value init()                      — bottom (pre-join) value;
///   Value boundary(u32 b)             — entry fact for boundary blocks
///                                       (entry blocks forward, exit-like
///                                       blocks backward);
///   bool   is_boundary(u32 b)         — which blocks get boundary();
///   bool   join(Value& into, const Value& from) — merge, true if changed;
///   Value  transfer(u32 b, const Value& in)     — block transfer function.
/// `in` and `out` come back indexed by block: `in` is the fact at the block
/// entry (forward) or exit (backward) side facing the meet; `out` is the
/// transferred side.
template <class Problem>
SolveResult solve_worklist(const ProgramFacts& pf, Problem& prob, Direction dir,
                           std::vector<typename Problem::Value>& in,
                           std::vector<typename Problem::Value>& out) {
  const size_t n = pf.num_blocks();
  in.assign(n, prob.init());
  out.assign(n, prob.init());
  SolveResult res;
  if (n == 0) return res;
  // Seed every block in evaluation order: RPO forward, reverse RPO backward.
  std::vector<u32> order = pf.rpo;
  if (dir == Direction::Backward) std::reverse(order.begin(), order.end());
  std::vector<u8> queued(n, 1);
  std::vector<u32> work(order.begin(), order.end());
  size_t head = 0;
  auto edges_in = [&](u32 b) -> const std::vector<u32>& {
    return dir == Direction::Forward ? pf.preds[b] : pf.cfg->blocks()[b].succ;
  };
  while (head < work.size()) {
    const u32 b = work[head++];
    queued[b] = 0;
    typename Problem::Value v = prob.init();
    if (prob.is_boundary(b)) {
      prob.join(v, prob.boundary(b));
    }
    for (const u32 e : edges_in(b)) prob.join(v, out[e]);
    in[b] = v;
    typename Problem::Value t = prob.transfer(b, in[b]);
    ++res.iterations;
    bool changed = prob.join(out[b], t);
    if (changed) {
      // Requeue dependents.
      if (dir == Direction::Forward) {
        for (const u32 s : pf.cfg->blocks()[b].succ) {
          if (!queued[s]) {
            queued[s] = 1;
            work.push_back(s);
          }
        }
      } else {
        for (const u32 p : pf.preds[b]) {
          if (!queued[p]) {
            queued[p] = 1;
            work.push_back(p);
          }
        }
      }
    }
  }
  return res;
}

// ---------------------------------------------------------------------------
// Liveness

struct DeadWrite {
  u64 pc = 0;
  u8 reg = kNoReg;
};

class Liveness {
 public:
  static Liveness build(const ProgramFacts& pf);

  /// Registers live on entry / exit of block `b`, as a bitmask.
  u32 live_in(u32 b) const { return live_in_[b]; }
  u32 live_out(u32 b) const { return live_out_[b]; }

  /// Register-writing instructions whose value is provably never read:
  /// reachable, not in a delay slot, not an identity move, and the written
  /// register is dead immediately after. Conservative boundaries (calls,
  /// indirect jumps, host calls treat every register as live-out) keep this
  /// a may-not-be-read proof, never a false positive. Sorted by PC.
  const std::vector<DeadWrite>& dead_writes() const { return dead_; }

  size_t solver_iterations() const { return iterations_; }

 private:
  std::vector<u32> live_in_;
  std::vector<u32> live_out_;
  std::vector<DeadWrite> dead_;
  size_t iterations_ = 0;
};

// ---------------------------------------------------------------------------
// Reaching definitions

class ReachingDefs {
 public:
  static ReachingDefs build(const ProgramFacts& pf);

  struct DefSite {
    u64 pc = 0;
    u8 reg = kNoReg;
  };

  const std::vector<DefSite>& def_sites() const { return sites_; }

  /// PCs of the definitions of `reg` that may reach the instruction at `pc`
  /// (before it executes). Sorted ascending.
  std::vector<u64> defs_reaching(u64 pc, u8 reg) const;

  size_t solver_iterations() const { return iterations_; }

 private:
  using Bits = std::vector<u64>;
  const ProgramFacts* pf_ = nullptr;
  std::vector<DefSite> sites_;
  std::vector<u32> site_of_word_;  // word -> site index or kNoSite
  static constexpr u32 kNoSite = ~0u;
  std::vector<Bits> in_;  // per block: sites reaching block entry
  size_t iterations_ = 0;
};

// ---------------------------------------------------------------------------
// Attribution coverage

enum class EaClass : u8 { Attributable = 0, Clobbered = 1, Unknown = 2 };

const char* ea_class_name(EaClass c);

struct MemOpFact {
  u64 pc = 0;
  bool is_load = false;
  bool is_store = false;
  bool is_prefetch = false;
  bool reachable = false;  // the op itself can execute
  EaClass cls = EaClass::Unknown;
  /// Issue-reachable delivered PCs resolving to this op / those with the EA
  /// registers intact.
  u32 resolving_deliveries = 0;
  u32 ea_static_deliveries = 0;
  /// Address-order distance (instructions) to the first downstream writer of
  /// this op's EA registers within the window; 0 = none. A small depth means
  /// only near-zero skids keep the sample attributable.
  u32 clobber_depth = 0;
};

struct FunctionCoverage {
  std::string name;
  u64 lo = 0;
  u64 hi = 0;
  size_t mem_ops = 0;            // all memory-op PCs in [lo, hi)
  size_t reachable_mem_ops = 0;  // of those, executable
  size_t attributable = 0;       // of the reachable ones
  double fraction = 1.0;         // attributable / reachable (1.0 if none)
};

/// Static proof of attribution coverage: classifies every memory-op PC
/// against the precomputed backtrack table and the issue-reachable delivery
/// set (see the file header for the exact semantics and the conservativeness
/// theorem).
class AttributionCoverage {
 public:
  static AttributionCoverage build(const sym::Image& img, const Cfg& cfg,
                                   const BacktrackTable& table);

  const std::vector<MemOpFact>& mem_ops() const { return ops_; }
  const MemOpFact* find(u64 pc) const;

  /// Can the machine present `pc` as a delivered PC? (The static
  /// over-approximation; every dynamic delivered_pc must satisfy it.)
  bool is_delivery_point(u64 pc) const;

  size_t reachable_mem_ops() const { return reachable_; }
  size_t attributable() const { return attributable_; }
  /// attributable / reachable_mem_ops (1.0 for an image without memory ops).
  double fraction() const;

  /// Per-function coverage rows, in function address order.
  std::vector<FunctionCoverage> by_function(const sym::Image& img) const;

 private:
  u64 text_base_ = 0;
  std::vector<u8> delivery_;  // word index (n+1 entries) -> issue-reachable
  std::vector<MemOpFact> ops_;
  size_t reachable_ = 0;
  size_t attributable_ = 0;
};

}  // namespace dsprof::sa
