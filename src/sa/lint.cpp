#include "sa/lint.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "isa/isa.hpp"
#include "sa/dataflow.hpp"

namespace dsprof::sa {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

size_t count_severity(const std::vector<Diag>& diags, Severity s) {
  size_t n = 0;
  for (const auto& d : diags) n += d.severity == s ? 1 : 0;
  return n;
}

namespace {

std::string hex(u64 v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

bool is_mem(const isa::OpInfo& info) {
  return info.is_load || info.is_store || info.is_prefetch;
}

class Linter {
 public:
  Linter(const sym::Image& img, const Cfg& cfg, const BacktrackTable& table,
         const LintOptions& opt)
      : img_(img), cfg_(cfg), table_(table), opt_(opt) {
    const size_t n = img.text_words.size();
    code_.resize(n);
    for (size_t i = 0; i < n; ++i) code_[i] = isa::decode(img.text_words[i]);
  }

  std::vector<Diag> run() {
    rule_delay_slot();
    rule_nop_pad();
    rule_descriptor();
    rule_branch_targets();
    rule_line_table();
    rule_unreachable();
    rule_unprofilable();
    rule_dead_write();
    rule_clobber_depth();
    std::sort(out_.begin(), out_.end(), [](const Diag& a, const Diag& b) {
      if (a.pc != b.pc) return a.pc < b.pc;
      return a.rule < b.rule;
    });
    return std::move(out_);
  }

 private:
  void add(Severity sev, u64 pc, const char* rule, std::string msg) {
    out_.push_back(Diag{sev, pc, rule, std::move(msg)});
  }
  u64 pc_of(size_t w) const { return img_.text_base + 4 * w; }
  bool in_text(u64 pc) const {
    return pc >= img_.text_base && pc < img_.text_base + img_.text_size() && (pc & 3) == 0;
  }
  size_t word_of(u64 pc) const { return static_cast<size_t>((pc - img_.text_base) >> 2); }

  /// hwcprof contract: loads/stores/prefetches are never scheduled into
  /// branch delay slots (paper §2.1 — an event attributed to a slot PC would
  /// belong to two basic blocks at once).
  void rule_delay_slot() {
    if (!img_.symtab.hwcprof()) return;
    for (size_t w = 0; w < code_.size(); ++w) {
      if (!cfg_.is_delay_slot(pc_of(w))) continue;
      const isa::OpInfo& info = isa::op_info(code_[w].op);
      if (is_mem(info)) {
        add(Severity::Error, pc_of(w), rule::kMemOpInDelaySlot,
            std::string(info.mnemonic) + " scheduled in a branch delay slot");
      }
    }
  }

  /// hwcprof contract: at least pad_nops non-memory instructions separate
  /// the last memory op from any join node, so a skidded counter event is
  /// still delivered inside the triggering basic block. Mirrors the
  /// compiler's since_mem_ accounting: the window resets at control
  /// transfers (and their slots), and the scan never blames a delay-slot
  /// PC — a memory op there is kMemOpInDelaySlot, the more specific rule.
  void rule_nop_pad() {
    if (!img_.symtab.hwcprof() || !img_.symtab.has_branch_targets()) return;
    for (u64 t : img_.symtab.branch_targets()) {
      if (!in_text(t) && t != img_.text_base + img_.text_size()) continue;
      u64 pc = t;
      for (u32 dist = 0; dist < opt_.pad_nops; ++dist) {
        if (pc < img_.text_base + 4) break;  // ran off the start of text
        pc -= 4;
        const size_t w = word_of(pc);
        const isa::OpInfo& info = isa::op_info(code_[w].op);
        if (info.delayed || cfg_.is_delay_slot(pc)) break;  // window reset
        if (is_mem(info)) {
          add(Severity::Error, pc, rule::kMissingNopPad,
              std::string(info.mnemonic) + " only " + std::to_string(dist) +
                  " instruction(s) before join " + hex(t) + " (need >= " +
                  std::to_string(opt_.pad_nops) + ")");
          break;
        }
      }
    }
  }

  /// hwcprof contract: every memory-reference PC carries a data descriptor
  /// (paper §2.1 — without one, the analyzer can only say <Unknown>).
  void rule_descriptor() {
    if (!img_.symtab.hwcprof()) return;
    for (size_t w = 0; w < code_.size(); ++w) {
      const isa::OpInfo& info = isa::op_info(code_[w].op);
      if (!is_mem(info)) continue;
      if (img_.symtab.memref_for(pc_of(w)) == nullptr) {
        add(Severity::Error, pc_of(w), rule::kMissingDescriptor,
            std::string(info.mnemonic) + " has no data descriptor in the symbol table");
      }
    }
  }

  /// dwarf contract: every direct branch/call target — and every call-return
  /// join — appears in the branch-target table the analyzer uses to validate
  /// apropos backtracking (a missing join silently weakens verification).
  void rule_branch_targets() {
    if (!img_.symtab.has_branch_targets()) return;
    const auto& targets = img_.symtab.branch_targets();
    auto in_table = [&](u64 t) {
      return std::binary_search(targets.begin(), targets.end(), t);
    };
    for (size_t w = 0; w < code_.size(); ++w) {
      const isa::Instr& ins = code_[w];
      if (ins.op != isa::Op::BR && ins.op != isa::Op::CALL) continue;
      const u64 target = pc_of(w) + static_cast<u64>(ins.disp);
      if (in_text(target) && !in_table(target)) {
        add(Severity::Error, pc_of(w), rule::kBranchTargetMissing,
            std::string(ins.op == isa::Op::CALL ? "call" : "branch") + " target " +
                hex(target) + " absent from the branch-target table");
      }
      if (ins.op == isa::Op::CALL) {
        const u64 join = pc_of(w) + 8;
        if (in_text(join) && !in_table(join)) {
          add(Severity::Error, pc_of(w), rule::kBranchTargetMissing,
              "call-return join " + hex(join) + " absent from the branch-target table");
        }
      }
    }
  }

  /// Line table sanity: entries strictly increasing by PC with nonzero line
  /// numbers (order is enforced at build time but not on deserialization),
  /// and every function other than the _start shim covered from its entry.
  void rule_line_table() {
    const auto& lines = img_.symtab.lines();
    for (size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].line == 0) {
        add(Severity::Error, lines[i].pc, rule::kLineTableOrder,
            "line-table entry with line number 0");
      }
      if (i > 0 && lines[i].pc <= lines[i - 1].pc) {
        add(Severity::Error, lines[i].pc, rule::kLineTableOrder,
            "line-table PCs not strictly increasing (" + hex(lines[i - 1].pc) +
                " then " + hex(lines[i].pc) + ")");
      }
    }
    for (const auto& f : img_.symtab.functions()) {
      if (f.name == "_start") continue;
      u64 first = 0;
      for (const auto& e : lines) {
        if (e.pc >= f.lo && e.pc < f.hi) {
          first = e.pc;
          break;
        }
      }
      if (first == 0) {
        add(Severity::Warning, f.lo, rule::kLineTableGap,
            "function '" + f.name + "' has no line-table entries");
      } else if (first != f.lo) {
        add(Severity::Warning, f.lo, rule::kLineTableGap,
            "function '" + f.name + "' uncovered from " + hex(f.lo) + " to " + hex(first));
      }
    }
  }

  /// Text not reachable from the entry point (warning: uncalled functions
  /// are legal; pure nop padding — e.g. the _start shim's trailing slot —
  /// is exempt).
  void rule_unreachable() {
    for (const auto& blk : cfg_.blocks()) {
      if (blk.reachable) continue;
      size_t non_nop = 0;
      for (u64 pc = blk.lo; pc < blk.hi; pc += 4) {
        if (code_[word_of(pc)] != isa::nop()) ++non_nop;
      }
      if (non_nop == 0) continue;
      const sym::FuncInfo* f = img_.symtab.find_function(blk.lo);
      add(Severity::Warning, blk.lo, rule::kUnreachableText,
          "unreachable block of " + std::to_string((blk.hi - blk.lo) / 4) +
              " instruction(s)" + (f ? " in '" + f->name + "'" : ""));
    }
  }

  /// Dataflow-backed upgrade of the old ea-self-clobber heuristic: a
  /// reachable memory op the attribution-coverage classifier cannot prove
  /// Attributable will never appear in a profile with a valid effective
  /// address — Clobbered ops (self-clobbering loads included) show up as
  /// <invalid EA>, Unknown ops not at all (the paper's unprofilable
  /// patterns, proved here at compile time; scc never emits them).
  void rule_unprofilable() {
    const AttributionCoverage& cov = coverage();
    for (const MemOpFact& op : cov.mem_ops()) {
      if (!op.reachable || op.cls == EaClass::Attributable) continue;
      const isa::OpInfo& info = isa::op_info(code_[word_of(op.pc)].op);
      add(Severity::Warning, op.pc, rule::kUnprofilableLoad,
          std::string(info.mnemonic) + " statically " + ea_class_name(op.cls) +
              (op.cls == EaClass::Clobbered
                   ? ": every resolving delivery loses the EA registers"
                   : ": no issue-reachable delivery resolves to it"));
    }
  }

  /// Liveness-backed: a register written by a reachable non-memory ALU
  /// instruction and provably never read afterwards. Pure waste — and a
  /// gratuitous clobber hazard for any memory op above it.
  void rule_dead_write() {
    for (const DeadWrite& dw : liveness().dead_writes()) {
      add(Severity::Warning, dw.pc, rule::kDeadRegisterWrite,
          std::string(isa::op_info(code_[word_of(dw.pc)].op).mnemonic) +
              " writes " + isa::reg_name(dw.reg) + " which is never read");
    }
  }

  /// An attributable op whose EA registers are overwritten within
  /// clobber_depth_min following instructions: only near-zero skids keep its
  /// samples attributable, so its profile coverage degrades first as skid
  /// grows. Informational — the schedule is legal, just fragile.
  void rule_clobber_depth() {
    if (opt_.clobber_depth_min == 0) return;
    for (const MemOpFact& op : coverage().mem_ops()) {
      if (!op.reachable || op.cls != EaClass::Attributable) continue;
      if (op.clobber_depth == 0 || op.clobber_depth > opt_.clobber_depth_min) continue;
      add(Severity::Info, op.pc, rule::kEaClobberDepth,
          std::string(isa::op_info(code_[word_of(op.pc)].op).mnemonic) +
              " EA register overwritten " + std::to_string(op.clobber_depth) +
              " instruction(s) later: attribution survives only shorter skids");
    }
  }

  // The dataflow products are built lazily: the plain-image rules don't pay
  // for them, and the two coverage rules share one build.
  const AttributionCoverage& coverage() {
    if (!cov_) cov_ = AttributionCoverage::build(img_, cfg_, table_);
    return *cov_;
  }
  const Liveness& liveness() {
    if (!live_) {
      pf_ = ProgramFacts::build(img_, cfg_);
      live_ = Liveness::build(pf_);
    }
    return *live_;
  }

  const sym::Image& img_;
  const Cfg& cfg_;
  const BacktrackTable& table_;
  LintOptions opt_;
  std::vector<isa::Instr> code_;
  std::optional<AttributionCoverage> cov_;
  ProgramFacts pf_;
  std::optional<Liveness> live_;
  std::vector<Diag> out_;
};

}  // namespace

std::vector<Diag> lint(const sym::Image& img, const Cfg& cfg, const LintOptions& opt) {
  const BacktrackTable table = BacktrackTable::build(img, opt.backtrack_window);
  return Linter(img, cfg, table, opt).run();
}

std::vector<Diag> lint(const sym::Image& img, const Cfg& cfg, const BacktrackTable& table,
                       const LintOptions& opt) {
  return Linter(img, cfg, table, opt).run();
}

}  // namespace dsprof::sa
