// hwcprof invariant linter (paper §2.1, statically checked).
//
// The data-space profiling pipeline only works when the compiler kept its
// side of the contract: memory ops never sit in branch delay slots, nop
// padding separates memory ops from join nodes, every memory-reference PC
// carries a data descriptor, and the branch-target table names every join.
// The tests exercise these dynamically; this linter proves them (or names
// the violation) from the image alone, so a bad toolchain configuration is
// caught before any simulation time is spent.
//
// Each rule has a stable string id (used by tests and by s3verify's JSON
// output) and a fixed severity. "Lint-clean" means *no error-severity
// diagnostics*: warnings cover soft properties (unreachable code, line-table
// gaps, statically-unprofilable loads) that legal images may exhibit.
//
// Rule gating follows what the image claims about itself:
//   - hwcprof()            gates the codegen-contract rules (delay slot,
//                          nop pad, descriptors) — a non-hwcprof compile
//                          never promised them (paper: "(Unascertainable)");
//   - has_branch_targets() gates the join-table rules — without dwarf there
//                          is no table to check ("(Unverifiable)").
#pragma once

#include <string>
#include <vector>

#include "sa/backtrack_table.hpp"
#include "sa/cfg.hpp"

namespace dsprof::sa {

enum class Severity : u8 { Info = 0, Warning = 1, Error = 2 };

const char* severity_name(Severity s);

/// Stable rule identifiers (see lint.cpp for the exact predicate of each).
namespace rule {
inline constexpr const char* kMemOpInDelaySlot = "mem-op-in-delay-slot";
inline constexpr const char* kMissingNopPad = "missing-nop-pad";
inline constexpr const char* kMissingDescriptor = "missing-descriptor";
inline constexpr const char* kBranchTargetMissing = "branch-target-missing";
inline constexpr const char* kLineTableOrder = "line-table-order";
inline constexpr const char* kLineTableGap = "line-table-gap";
inline constexpr const char* kUnreachableText = "unreachable-text";
/// Dataflow-backed (dataflow.hpp AttributionCoverage / Liveness):
inline constexpr const char* kUnprofilableLoad = "statically-unprofilable-load";
inline constexpr const char* kDeadRegisterWrite = "dead-register-write";
inline constexpr const char* kEaClobberDepth = "ea-clobber-depth";
}  // namespace rule

struct Diag {
  Severity severity = Severity::Warning;
  u64 pc = 0;           // offending PC (0 when the finding is not PC-specific)
  std::string rule;     // stable id from sa::rule
  std::string message;  // human-readable detail
};

struct LintOptions {
  /// Expected minimum non-memory instruction distance between a memory op
  /// and any join node (must match the compiler's CompileOptions::pad_nops).
  u32 pad_nops = 2;
  /// Backtrack window used when the caller does not supply a prebuilt
  /// BacktrackTable (must match the collector's backtrack_window for the
  /// dataflow-backed rules to mirror run-time attribution exactly).
  u32 backtrack_window = 16;
  /// ea-clobber-depth fires when an attributable op's EA registers are
  /// overwritten within this many following instructions (address order):
  /// samples survive only skids shorter than the depth. 0 disables the rule.
  u32 clobber_depth_min = 1;
};

/// Run every rule over `img`, using `cfg` for delay-slot and reachability
/// facts. Diagnostics come back sorted by (pc, rule id). The first overload
/// builds its own BacktrackTable (window = opt.backtrack_window); the second
/// reuses one the caller already has (the verifier does).
std::vector<Diag> lint(const sym::Image& img, const Cfg& cfg, const LintOptions& opt = {});
std::vector<Diag> lint(const sym::Image& img, const Cfg& cfg, const BacktrackTable& table,
                       const LintOptions& opt = {});

/// Convenience: count of diagnostics at exactly `s`.
size_t count_severity(const std::vector<Diag>& diags, Severity s);

}  // namespace dsprof::sa
