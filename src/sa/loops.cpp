#include "sa/loops.hpp"

#include <algorithm>
#include <array>

namespace dsprof::sa {

namespace {

// Internal "no idom computed yet" marker, distinct from kNoBlock (which
// build() uses as the virtual super-root parent).
constexpr u32 kUnprocessed = ~0u - 1;

}  // namespace

// ---------------------------------------------------------------------------
// Dominators

DomTree DomTree::build(const ProgramFacts& pf) {
  DomTree dt;
  const size_t nb = pf.num_blocks();
  dt.idom_.assign(nb, kUnprocessed);
  if (nb == 0) return dt;

  // Rank in iteration order; the virtual root ranks before everything.
  auto rank = [&](u32 b) -> u32 { return b == kNoBlock ? 0 : pf.rpo_index[b] + 1; };
  auto intersect = [&](u32 a, u32 b) -> u32 {
    while (a != b) {
      while (rank(a) > rank(b)) a = dt.idom_[a];
      while (rank(b) > rank(a)) b = dt.idom_[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const u32 b : pf.rpo) {
      u32 ni = kUnprocessed;
      for (const u32 p : pf.preds[b]) {
        if (dt.idom_[p] == kUnprocessed) continue;
        ni = ni == kUnprocessed ? p : intersect(p, ni);
      }
      if (ni == kUnprocessed) ni = kNoBlock;  // no processed pred: a root
      if (dt.idom_[b] != ni) {
        dt.idom_[b] = ni;
        changed = true;
      }
    }
  }
  return dt;
}

bool DomTree::dominates(u32 a, u32 b) const {
  while (b != kNoBlock) {
    if (b == a) return true;
    b = idom_[b];
  }
  return false;
}

// ---------------------------------------------------------------------------
// Affine resolution

namespace {

std::optional<Affine> affine_const(i64 c) {
  Affine a;
  a.offset = c;
  return a;
}

std::optional<Affine> affine_combine(const Affine& x, const Affine& y, i64 sign) {
  Affine r = x;
  r.offset += sign * y.offset;
  for (const Affine::Term& t : y.terms) {
    bool merged = false;
    for (auto it = r.terms.begin(); it != r.terms.end(); ++it) {
      if (it->reg == t.reg) {
        it->mult += sign * t.mult;
        if (it->mult == 0) r.terms.erase(it);
        merged = true;
        break;
      }
    }
    if (!merged) r.terms.push_back({t.reg, sign * t.mult});
  }
  if (r.terms.size() > 2) return std::nullopt;
  return r;
}

Affine affine_scale(const Affine& x, i64 c) {
  Affine r;
  r.offset = x.offset * c;
  if (c != 0) {
    for (const Affine::Term& t : x.terms) r.terms.push_back({t.reg, t.mult * c});
  }
  return r;
}

constexpr int kMaxDepth = 16;

std::optional<Affine> resolve_at(const ProgramFacts& pf, u8 reg, size_t w, int depth);

/// Value of `rd` right after the instruction at word `d` executes, anchored
/// at its block's entry values. nullopt outside the resolvable fragment.
std::optional<Affine> eval_def(const ProgramFacts& pf, size_t d, int depth) {
  if (depth >= kMaxDepth) return std::nullopt;
  const isa::Instr& ins = pf.code[d];
  auto lhs = [&]() { return resolve_at(pf, ins.rs1, d, depth + 1); };
  auto rhs = [&]() -> std::optional<Affine> {
    if (ins.has_imm) return affine_const(ins.imm);
    return resolve_at(pf, ins.rs2, d, depth + 1);
  };
  switch (ins.op) {
    case isa::Op::SETHI:
      return affine_const(ins.imm << 14);
    case isa::Op::ADD:
    case isa::Op::SUB: {
      const auto a = lhs();
      const auto b = rhs();
      if (!a || !b) return std::nullopt;
      return affine_combine(*a, *b, ins.op == isa::Op::ADD ? 1 : -1);
    }
    case isa::Op::OR: {
      // Only the move/constant idioms are affine: or rd, %g0, x and
      // or rd, x, 0 (and the set64 sethi|or chain, where the low half ORs
      // into known-zero bits of a constant — treated as addition).
      const auto a = lhs();
      const auto b = rhs();
      if (!a || !b) return std::nullopt;
      const bool a_zero = a->terms.empty() && a->offset == 0;
      const bool b_zero = b->terms.empty() && b->offset == 0;
      if (a_zero) return b;
      if (b_zero) return a;
      if (a->terms.empty() && b->terms.empty() && (a->offset & b->offset) == 0) {
        return affine_const(a->offset | b->offset);
      }
      return std::nullopt;
    }
    case isa::Op::SLL: {
      const auto a = lhs();
      if (!a || !ins.has_imm || ins.imm < 0 || ins.imm > 62) return std::nullopt;
      return affine_scale(*a, i64{1} << ins.imm);
    }
    case isa::Op::MULX: {
      const auto a = lhs();
      const auto b = rhs();
      if (!a || !b) return std::nullopt;
      if (b->terms.empty()) return affine_scale(*a, b->offset);
      if (a->terms.empty()) return affine_scale(*b, a->offset);
      return std::nullopt;
    }
    default:
      return std::nullopt;  // loads, divisions, cc ops, ...: give up
  }
}

std::optional<Affine> resolve_at(const ProgramFacts& pf, u8 reg, size_t w, int depth) {
  if (reg == 0) return affine_const(0);
  if (reg >= kNoReg) return std::nullopt;
  if (depth >= kMaxDepth) return std::nullopt;
  const BasicBlock* blk = pf.cfg->block_at(pf.pc_of(w));
  if (blk == nullptr) return std::nullopt;
  const size_t lo = pf.word_of(blk->lo);
  for (size_t d = w; d-- > lo;) {
    if (reg_facts(pf.code[d]).def != reg) continue;
    // A definition in an annullable delay slot may not have executed.
    if (pf.may_annul(d)) return std::nullopt;
    return eval_def(pf, d, depth);
  }
  // Not defined earlier in this block: the block-entry value itself.
  Affine a;
  a.terms.push_back({reg, 1});
  return a;
}

}  // namespace

std::optional<Affine> LoopAnalysis::resolve_affine(const ProgramFacts& pf, u8 reg,
                                                   size_t w) {
  return resolve_at(pf, reg, w, 0);
}

// ---------------------------------------------------------------------------
// Loop detection + strides

LoopAnalysis LoopAnalysis::build(const ProgramFacts& pf, const sym::Image& img) {
  LoopAnalysis la;
  la.dom_ = DomTree::build(pf);
  const size_t nb = pf.num_blocks();

  // Back edges -> natural loop bodies, merged per head.
  std::vector<std::pair<u32, std::vector<u8>>> heads;  // (head, in-loop flags)
  for (u32 t = 0; t < nb; ++t) {
    if (!pf.cfg->blocks()[t].reachable) continue;
    for (const u32 h : pf.cfg->blocks()[t].succ) {
      const bool retreating = pf.rpo_index[h] <= pf.rpo_index[t];
      if (!retreating) continue;
      if (!la.dom_.dominates(h, t)) {
        la.irreducible_ = true;  // retreating edge into a non-dominator
        continue;
      }
      auto it = std::find_if(heads.begin(), heads.end(),
                             [&](const auto& p) { return p.first == h; });
      if (it == heads.end()) {
        heads.emplace_back(h, std::vector<u8>(nb, 0));
        it = heads.end() - 1;
        it->second[h] = 1;
      }
      // Reverse reachability from the tail, stopping at the head.
      std::vector<u32> work;
      if (!it->second[t]) {
        it->second[t] = 1;
        work.push_back(t);
      }
      while (!work.empty()) {
        const u32 b = work.back();
        work.pop_back();
        for (const u32 p : pf.preds[b]) {
          if (!it->second[p]) {
            it->second[p] = 1;
            work.push_back(p);
          }
        }
      }
    }
  }

  for (const auto& [h, in_loop] : heads) {
    Loop loop;
    loop.head_block = h;
    loop.head_pc = pf.cfg->blocks()[h].lo;
    loop.blocks.push_back(h);
    for (u32 b = 0; b < nb; ++b) {
      if (in_loop[b] && b != h) loop.blocks.push_back(b);
    }
    if (const sym::FuncInfo* f = img.symtab.find_function(loop.head_pc)) {
      loop.function = f->name;
    }

    // Induction-variable steps: per register, the number of in-loop
    // definitions and (if unique) the defining word.
    std::array<u32, 32> def_count{};
    std::array<size_t, 32> def_word{};
    for (const u32 b : loop.blocks) {
      const size_t hi = pf.block_hi_word(b);
      for (size_t w = pf.block_lo_word(b); w < hi; ++w) {
        const u8 r = reg_facts(pf.code[w]).def;
        if (r == kNoReg) continue;
        ++def_count[r];
        def_word[r] = w;
      }
    }
    // step[r]: 0 = invariant, k = induction step, nullopt = unknown.
    std::array<std::optional<i64>, 32> step;
    step[0] = 0;
    for (u8 r = 1; r < 32; ++r) {
      if (def_count[r] == 0) {
        step[r] = 0;
        continue;
      }
      if (def_count[r] != 1 || pf.may_annul(def_word[r])) continue;
      const auto a = eval_def(pf, def_word[r], 0);
      if (a && a->terms.size() == 1 && a->terms[0].reg == r && a->terms[0].mult == 1) {
        step[r] = a->offset;  // r = r@entry + k every iteration
      }
    }

    for (const u32 b : loop.blocks) {
      const size_t hi = pf.block_hi_word(b);
      for (size_t w = pf.block_lo_word(b); w < hi; ++w) {
        const isa::Instr& ins = pf.code[w];
        const isa::OpInfo& info = isa::op_info(ins.op);
        if (!info.is_load && !info.is_store && !info.is_prefetch) continue;
        LoopMemRef ref;
        ref.pc = pf.pc_of(w);
        ref.is_load = info.is_load;
        ref.is_store = info.is_store;
        ref.is_prefetch = info.is_prefetch;
        const auto ea = isa::ea_expr(ins);
        std::optional<Affine> addr;
        if (ea) {
          addr = resolve_at(pf, ea->rs1, w, 0);
          if (addr) {
            const auto off = ea->has_imm
                                 ? affine_const(ea->imm)
                                 : resolve_at(pf, ea->rs2, w, 0);
            addr = off ? affine_combine(*addr, *off, 1) : std::nullopt;
          }
        }
        if (addr) {
          i64 stride = 0;
          bool known = true;
          for (const Affine::Term& t : addr->terms) {
            if (!step[t.reg]) {
              known = false;
              break;
            }
            stride += t.mult * *step[t.reg];
          }
          ref.has_stride = known;
          ref.stride = stride;
        }
        loop.mem_refs.push_back(ref);
      }
    }
    std::sort(loop.mem_refs.begin(), loop.mem_refs.end(),
              [](const LoopMemRef& a, const LoopMemRef& b) { return a.pc < b.pc; });
    la.loops_.push_back(std::move(loop));
  }

  // Nesting depth: loop A contains loop B when B's head lies in A's body.
  for (size_t i = 0; i < la.loops_.size(); ++i) {
    for (size_t j = 0; j < la.loops_.size(); ++j) {
      if (i == j) continue;
      const auto& body = la.loops_[j].blocks;
      if (std::find(body.begin(), body.end(), la.loops_[i].head_block) != body.end()) {
        ++la.loops_[i].depth;
      }
    }
  }
  std::sort(la.loops_.begin(), la.loops_.end(),
            [](const Loop& a, const Loop& b) { return a.head_pc < b.head_pc; });
  return la;
}

std::vector<StructStride> export_struct_strides(const LoopAnalysis& la,
                                                const sym::SymbolTable& st) {
  std::vector<StructStride> out;
  for (const Loop& loop : la.loops()) {
    for (const LoopMemRef& ref : loop.mem_refs) {
      if (ref.is_prefetch) continue;
      const sym::MemRef* mr = st.memref_for(ref.pc);
      if (!mr || mr->kind != sym::MemRef::Kind::StructMember) continue;
      StructStride s;
      s.sid = mr->aggregate;
      s.member = mr->member;
      s.pc = ref.pc;
      s.function = loop.function;
      s.loop_depth = loop.depth;
      s.has_stride = ref.has_stride;
      s.stride = ref.stride;
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace dsprof::sa
