// Dominator tree, natural-loop detection, and induction-variable stride
// inference over ProgramFacts (dataflow.hpp).
//
// Dominators use the classic iterative RPO algorithm (Cooper/Harvey/Kennedy)
// generalized to the multi-rooted RPO ProgramFacts builds (image entry, every
// function entry, stragglers): roots hang off a virtual super-root so blocks
// from different functions never claim to dominate each other.
//
// A back edge t -> h (h dominates t) induces the natural loop of h: h plus
// everything that reaches t without passing through h. A retreating edge
// whose head does *not* dominate its tail makes the graph irreducible; such
// edges are skipped and the analysis reports `irreducible()` so consumers
// (s3verify, er_opt) know the loop table is a lower bound there.
//
// Stride inference resolves each loop memory op's effective address into an
// affine form  sum(mult_i * reg_i@block-entry) + const  by walking the
// nearest intra-block definitions backward (mov/add/sub/sll/mulx/sethi
// chains; anything else — loads in particular — gives up). A register with
// exactly one definition in the loop whose right-hand side resolves to
// itself +/- k at block entry is an induction variable with step k; loop
// invariants (no in-loop definition) have step 0. The EA stride per
// iteration is then  sum(mult_i * step_i)  when every term is known —
// pointer-chase loops (base register loaded from memory) honestly report no
// stride. This is the static half of the ROADMAP's feedback-directed er_opt
// item: loop depth + stride feed prefetch/layout decisions.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sa/dataflow.hpp"

namespace dsprof::sa {

inline constexpr u32 kNoBlock = ~0u;

class DomTree {
 public:
  static DomTree build(const ProgramFacts& pf);

  /// Immediate dominator of `b`; kNoBlock for virtual-root children (DFS
  /// roots and blocks only reachable from them through no common ancestor).
  u32 idom(u32 b) const { return idom_[b]; }

  /// Does `a` dominate `b` (reflexively)?
  bool dominates(u32 a, u32 b) const;

 private:
  std::vector<u32> idom_;
};

/// One memory op inside a loop, with its per-iteration EA stride when the
/// affine resolution succeeds (has_stride). stride is in bytes, signed.
struct LoopMemRef {
  u64 pc = 0;
  bool is_load = false;
  bool is_store = false;
  bool is_prefetch = false;
  bool has_stride = false;
  i64 stride = 0;
};

struct Loop {
  u64 head_pc = 0;
  u32 head_block = kNoBlock;
  u32 depth = 1;  // 1 = outermost
  std::vector<u32> blocks;  // block indices, head first, then ascending
  std::string function;     // containing function name ("" if unknown)
  std::vector<LoopMemRef> mem_refs;  // address order
};

/// Affine value form used by the stride resolver: at most two register terms
/// anchored at block entry, plus a constant.
struct Affine {
  struct Term {
    u8 reg = kNoReg;
    i64 mult = 0;
  };
  std::vector<Term> terms;  // size <= 2, distinct regs, nonzero mult
  i64 offset = 0;
};

/// One loop memory reference resolved to a structure member through the
/// image's hwcprof descriptor, with its static per-iteration stride — the
/// static half of the er_opt cross-check: a struct whose loop refs stride
/// by >= its size is swept object-by-object, so member reordering pays;
/// a ref with no stride is a pointer chase (layout still helps, prefetch
/// does not).
struct StructStride {
  sym::TypeId sid = sym::kInvalidType;
  u32 member = 0;
  u64 pc = 0;
  std::string function;
  u32 loop_depth = 1;
  bool has_stride = false;
  i64 stride = 0;  // bytes per iteration, signed, valid when has_stride
};

class LoopAnalysis {
 public:
  static LoopAnalysis build(const ProgramFacts& pf, const sym::Image& img);

  const std::vector<Loop>& loops() const { return loops_; }
  /// True if any retreating edge failed the dominance test: the CFG is
  /// irreducible and `loops()` is only the reducible subset.
  bool irreducible() const { return irreducible_; }
  const DomTree& dom() const { return dom_; }

  /// Resolve the value of `reg` just before word `w` executes into affine
  /// form, chasing nearest intra-block definitions backward. nullopt when
  /// the chain leaves the resolvable fragment (memory loads, divisions,
  /// too many terms). Exposed for tests.
  static std::optional<Affine> resolve_affine(const ProgramFacts& pf, u8 reg,
                                              size_t w);

 private:
  DomTree dom_;
  std::vector<Loop> loops_;
  bool irreducible_ = false;
};

/// Flatten loops() into struct-member stride records, in (loop, address)
/// order — deterministic for a given image. Refs without a StructMember
/// descriptor are skipped.
std::vector<StructStride> export_struct_strides(const LoopAnalysis& la,
                                                const sym::SymbolTable& st);

}  // namespace dsprof::sa
