#include "sa/verifier.hpp"

#include <iomanip>
#include <sstream>

namespace dsprof::sa {

using machine::TriggerKind;

VerifyReport verify(const sym::Image& img, const std::string& name,
                    const VerifyOptions& opt) {
  VerifyReport r;
  r.name = name;
  r.text_base = img.text_base;
  r.entry = img.entry;
  r.text_words = img.text_words.size();
  r.num_functions = img.symtab.functions().size();
  r.hwcprof = img.symtab.hwcprof();
  r.has_branch_targets = img.symtab.has_branch_targets();
  r.num_branch_targets = img.symtab.branch_targets().size();

  const Cfg cfg = Cfg::build(img);
  r.num_blocks = cfg.blocks().size();
  r.reachable_blocks = cfg.reachable_blocks();
  r.num_edges = cfg.num_edges();
  for (size_t w = 0; w < r.text_words; ++w) {
    const u64 pc = img.text_base + 4 * w;
    r.reachable_instrs += cfg.instr_reachable(pc) ? 1 : 0;
    r.delay_slots += cfg.is_delay_slot(pc) ? 1 : 0;
  }

  const BacktrackTable table = BacktrackTable::build(img, opt.backtrack_window);
  r.backtrack_window = opt.backtrack_window;
  r.table_bytes = table.size_bytes();
  r.load_found = table.count_found(TriggerKind::Load);
  r.load_ea_static = table.count_ea_static(TriggerKind::Load);
  r.loadstore_found = table.count_found(TriggerKind::LoadStore);
  r.loadstore_ea_static = table.count_ea_static(TriggerKind::LoadStore);

  const AttributionCoverage cov = AttributionCoverage::build(img, cfg, table);
  r.mem_ops = cov.mem_ops().size();
  r.reachable_mem_ops = cov.reachable_mem_ops();
  r.attributable = cov.attributable();
  r.coverage_fraction = cov.fraction();
  if (opt.coverage) {
    r.coverage_detail = true;
    r.func_coverage = cov.by_function(img);
    const ProgramFacts pf = ProgramFacts::build(img, cfg);
    const LoopAnalysis la = LoopAnalysis::build(pf, img);
    r.loops = la.loops();
    r.irreducible = la.irreducible();
  }

  r.diags = lint(img, cfg, table, opt.lint);
  return r;
}

std::string to_text(const VerifyReport& r) {
  std::ostringstream os;
  os << "s3verify: " << r.name << "\n";
  os << "  text: " << r.text_words << " instructions at 0x" << std::hex << r.text_base
     << ", entry 0x" << r.entry << std::dec << ", " << r.num_functions << " functions\n";
  os << "  tables: hwcprof=" << (r.hwcprof ? "yes" : "no")
     << " branch-targets=" << (r.has_branch_targets ? std::to_string(r.num_branch_targets)
                                                    : std::string("absent"))
     << "\n";
  os << "  cfg: " << r.num_blocks << " blocks (" << r.reachable_blocks << " reachable), "
     << r.num_edges << " edges, " << r.reachable_instrs << "/" << r.text_words
     << " instructions reachable, " << r.delay_slots << " delay slots\n";
  const size_t pcs = r.text_words + 1;
  os << "  backtrack table: window " << r.backtrack_window << ", " << r.table_bytes
     << " bytes for " << pcs << " delivered PCs\n";
  os << "    load triggers:      " << r.load_found << " resolvable, " << r.load_ea_static
     << " with static EA\n";
  os << "    load+store triggers: " << r.loadstore_found << " resolvable, "
     << r.loadstore_ea_static << " with static EA\n";
  os << "  coverage: " << r.attributable << "/" << r.reachable_mem_ops
     << " reachable memory ops statically attributable ("
     << std::fixed << std::setprecision(1) << r.coverage_fraction * 100.0
     << "%)\n";
  os.unsetf(std::ios::fixed);
  os << std::setprecision(6);
  if (r.coverage_detail) {
    for (const auto& f : r.func_coverage) {
      os << "    " << f.name << ": " << f.attributable << "/" << f.reachable_mem_ops
         << " attributable";
      if (f.mem_ops != f.reachable_mem_ops) {
        os << " (" << f.mem_ops - f.reachable_mem_ops << " unreachable)";
      }
      os << "\n";
    }
    os << "  loops: " << r.loops.size()
       << (r.irreducible ? " (irreducible edges skipped)" : "") << "\n";
    for (const auto& l : r.loops) {
      os << "    head 0x" << std::hex << l.head_pc << std::dec << " depth " << l.depth
         << ", " << l.blocks.size() << " block(s)"
         << (l.function.empty() ? "" : " in '" + l.function + "'") << "\n";
      for (const auto& m : l.mem_refs) {
        os << "      0x" << std::hex << m.pc << std::dec << " "
           << (m.is_load ? "load" : (m.is_store ? "store" : "prefetch")) << " stride ";
        if (m.has_stride) {
          os << (m.stride >= 0 ? "+" : "") << m.stride;
        } else {
          os << "?";
        }
        os << "\n";
      }
    }
  }
  if (r.diags.empty()) {
    os << "  lint: clean\n";
  } else {
    os << "  lint: " << r.errors() << " error(s), " << r.warnings() << " warning(s)\n";
    for (const auto& d : r.diags) {
      os << "    " << severity_name(d.severity) << " [" << d.rule << "] 0x" << std::hex
         << d.pc << std::dec << ": " << d.message << "\n";
    }
  }
  os << "  verdict: " << (r.clean() ? "OK" : "FAIL") << "\n";
  return os.str();
}

namespace {

void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c)) << std::dec
             << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string to_json(const VerifyReport& r) {
  std::ostringstream os;
  os << "{\"name\":";
  json_escape(os, r.name);
  os << ",\"text_base\":" << r.text_base << ",\"entry\":" << r.entry
     << ",\"text_words\":" << r.text_words << ",\"functions\":" << r.num_functions
     << ",\"hwcprof\":" << (r.hwcprof ? "true" : "false")
     << ",\"branch_targets\":" << (r.has_branch_targets ? "true" : "false")
     << ",\"num_branch_targets\":" << r.num_branch_targets << ",\"cfg\":{\"blocks\":"
     << r.num_blocks << ",\"reachable_blocks\":" << r.reachable_blocks
     << ",\"edges\":" << r.num_edges << ",\"reachable_instrs\":" << r.reachable_instrs
     << ",\"delay_slots\":" << r.delay_slots << "},\"backtrack_table\":{\"window\":"
     << r.backtrack_window << ",\"bytes\":" << r.table_bytes
     << ",\"load_found\":" << r.load_found << ",\"load_ea_static\":" << r.load_ea_static
     << ",\"loadstore_found\":" << r.loadstore_found
     << ",\"loadstore_ea_static\":" << r.loadstore_ea_static << "},\"coverage\":{"
     << "\"mem_ops\":" << r.mem_ops << ",\"reachable_mem_ops\":" << r.reachable_mem_ops
     << ",\"attributable\":" << r.attributable << ",\"fraction\":" << r.coverage_fraction;
  if (r.coverage_detail) {
    os << ",\"functions\":[";
    for (size_t i = 0; i < r.func_coverage.size(); ++i) {
      const auto& f = r.func_coverage[i];
      if (i) os << ",";
      os << "{\"name\":";
      json_escape(os, f.name);
      os << ",\"lo\":" << f.lo << ",\"hi\":" << f.hi << ",\"mem_ops\":" << f.mem_ops
         << ",\"reachable_mem_ops\":" << f.reachable_mem_ops
         << ",\"attributable\":" << f.attributable << ",\"fraction\":" << f.fraction << "}";
    }
    os << "],\"irreducible\":" << (r.irreducible ? "true" : "false") << ",\"loops\":[";
    for (size_t i = 0; i < r.loops.size(); ++i) {
      const auto& l = r.loops[i];
      if (i) os << ",";
      os << "{\"head\":" << l.head_pc << ",\"depth\":" << l.depth
         << ",\"blocks\":" << l.blocks.size() << ",\"function\":";
      json_escape(os, l.function);
      os << ",\"mem_refs\":[";
      for (size_t j = 0; j < l.mem_refs.size(); ++j) {
        const auto& m = l.mem_refs[j];
        if (j) os << ",";
        os << "{\"pc\":" << m.pc << ",\"kind\":\""
           << (m.is_load ? "load" : (m.is_store ? "store" : "prefetch"))
           << "\",\"stride\":";
        if (m.has_stride) {
          os << m.stride;
        } else {
          os << "null";
        }
        os << "}";
      }
      os << "]}";
    }
    os << "]";
  }
  os << "},\"diagnostics\":[";
  for (size_t i = 0; i < r.diags.size(); ++i) {
    const Diag& d = r.diags[i];
    if (i) os << ",";
    os << "{\"severity\":\"" << severity_name(d.severity) << "\",\"pc\":" << d.pc
       << ",\"rule\":";
    json_escape(os, d.rule);
    os << ",\"message\":";
    json_escape(os, d.message);
    os << "}";
  }
  os << "],\"errors\":" << r.errors() << ",\"warnings\":" << r.warnings()
     << ",\"clean\":" << (r.clean() ? "true" : "false") << "}";
  return os.str();
}

}  // namespace dsprof::sa
