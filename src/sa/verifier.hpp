// s3verify: one-call static verification of a compiled image.
//
// Bundles the three sa passes — CFG reconstruction, backtrack-table
// precomputation, and the hwcprof invariant lint — into a single report
// with human-readable and JSON renderings (examples/s3verify.cpp is the
// CLI front end; scripts/check.sh runs it over the example images and
// fails the build on any error-severity diagnostic).
#pragma once

#include <string>

#include "sa/backtrack_table.hpp"
#include "sa/dataflow.hpp"
#include "sa/lint.hpp"
#include "sa/loops.hpp"

namespace dsprof::sa {

struct VerifyOptions {
  /// Backtracking window for table statistics (CollectOptions default).
  u32 backtrack_window = 16;
  /// Include the detailed attribution-coverage report: per-function
  /// attributable-PC fractions and the loop/stride table. The coverage
  /// *summary* (reachable_mem_ops / attributable / fraction) is always
  /// computed — check.sh's coverage floor gate reads it from the JSON.
  bool coverage = false;
  LintOptions lint;
};

struct VerifyReport {
  // Image facts.
  std::string name;  // caller-supplied label for the report header
  u64 text_base = 0;
  u64 entry = 0;
  size_t text_words = 0;
  size_t num_functions = 0;
  bool hwcprof = false;
  bool has_branch_targets = false;
  size_t num_branch_targets = 0;

  // CFG facts.
  size_t num_blocks = 0;
  size_t reachable_blocks = 0;
  size_t num_edges = 0;
  size_t reachable_instrs = 0;
  size_t delay_slots = 0;

  // Backtrack-table coverage: of all deliverable PCs, how many resolve to a
  // candidate / to a statically recomputable EA, per trigger kind.
  u32 backtrack_window = 0;
  size_t table_bytes = 0;
  size_t load_found = 0;
  size_t load_ea_static = 0;
  size_t loadstore_found = 0;
  size_t loadstore_ea_static = 0;

  // Attribution-coverage summary (dataflow.hpp). Always present.
  size_t mem_ops = 0;
  size_t reachable_mem_ops = 0;
  size_t attributable = 0;
  double coverage_fraction = 1.0;

  // Detailed coverage (VerifyOptions::coverage): per-function rows and the
  // loop/stride table.
  bool coverage_detail = false;
  std::vector<FunctionCoverage> func_coverage;
  std::vector<Loop> loops;
  bool irreducible = false;

  // Lint results.
  std::vector<Diag> diags;

  size_t errors() const { return count_severity(diags, Severity::Error); }
  size_t warnings() const { return count_severity(diags, Severity::Warning); }
  bool clean() const { return errors() == 0; }
};

/// Run all passes over `img`. `name` labels the report (e.g. the image file
/// or builtin name).
VerifyReport verify(const sym::Image& img, const std::string& name,
                    const VerifyOptions& opt = {});

/// Human-readable multi-line report (er_print style).
std::string to_text(const VerifyReport& r);

/// Single JSON object (stable keys; diagnostics as an array).
std::string to_json(const VerifyReport& r);

}  // namespace dsprof::sa
