#include "scc/ast.hpp"

namespace dsprof::scc {

bool is_compare(BinOp op) {
  switch (op) {
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
    case BinOp::Eq:
    case BinOp::Ne:
      return true;
    default:
      return false;
  }
}

const char* binop_token(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::BitAnd: return "&";
    case BinOp::BitOr: return "|";
    case BinOp::BitXor: return "^";
    case BinOp::Shl: return "<<";
    case BinOp::Shr: return ">>";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
  }
  return "?";
}

bool is_lvalue(const ExprNode& e) {
  using K = ExprNode::Kind;
  return e.kind == K::Var || e.kind == K::Global || e.kind == K::Member ||
         e.kind == K::Index || e.kind == K::Deref;
}

namespace {

bool needs_parens(const ExprNode& e) {
  return e.kind == ExprNode::Kind::Bin || e.kind == ExprNode::Kind::Neg;
}

std::string sub(const Expr& e) {
  std::string s = expr_to_source(*e);
  if (needs_parens(*e)) return "(" + s + ")";
  return s;
}

}  // namespace

std::string expr_to_source(const ExprNode& e) {
  using K = ExprNode::Kind;
  switch (e.kind) {
    case K::Int:
      return std::to_string(e.ival);
    case K::Var:
    case K::Global:
      return e.name;
    case K::Member: {
      const StructDef* s = e.a->type.pointee_struct();
      return sub(e.a) + "->" + s->field_name(e.member);
    }
    case K::Index:
      return sub(e.a) + "[" + expr_to_source(*e.b) + "]";
    case K::PtrIndex:
      return sub(e.a) + " + " + sub(e.b);
    case K::Deref:
      return "*" + sub(e.a);
    case K::Bin:
      return sub(e.a) + " " + binop_token(e.bop) + " " + sub(e.b);
    case K::Neg:
      return "-" + sub(e.a);
    case K::Call: {
      std::string s;
      for (const auto& a : e.args) {
        if (!s.empty()) s += ", ";
        s += expr_to_source(*a);
      }
      return e.name + "(" + s + ")";
    }
    case K::Cast:
      return "(" + e.type.display() + ")" + sub(e.a);
  }
  return "?";
}

}  // namespace dsprof::scc
