// AST for the scc DSL. Programs are built through the FunctionBuilder
// (builder.hpp); the codegen walks these nodes to emit s3 instructions and
// the data-space symbol tables.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "scc/type.hpp"

namespace dsprof::scc {

class Function;

struct ExprNode;
using Expr = std::shared_ptr<const ExprNode>;

enum class BinOp : u8 {
  Add, Sub, Mul, Div, Mod, BitAnd, BitOr, BitXor, Shl, Shr,
  Lt, Le, Gt, Ge, Eq, Ne,
};

bool is_compare(BinOp op);
const char* binop_token(BinOp op);

struct ExprNode {
  enum class Kind : u8 {
    Int,       // ival
    Var,       // function variable `var` (param or local)
    Global,    // module global `var`
    Member,    // a->field: a is PtrStruct, member is the declaration index
    Index,     // a[b] load of a scalar array element (a is PtrI64/PtrU8)
    PtrIndex,  // a + b in C pointer arithmetic (a is PtrStruct): no load
    Deref,     // *a (a is PtrI64/PtrU8)
    Bin,       // a bop b
    Neg,       // -a
    Call,      // callee(args...)
    Cast,      // (T)a — reinterpreting pointer/integer cast
  };

  Kind kind = Kind::Int;
  Type type;
  i64 ival = 0;
  u32 var = 0;
  Expr a, b;
  u32 member = 0;
  BinOp bop = BinOp::Add;
  const Function* callee = nullptr;
  std::vector<Expr> args;
  std::string name;  // display name for Var/Global
};

/// True if the node can be assigned to.
bool is_lvalue(const ExprNode& e);

/// C-like rendering used for the synthetic annotated-source listing.
std::string expr_to_source(const ExprNode& e);

struct StmtNode;
using Stmt = std::unique_ptr<StmtNode>;

struct StmtNode {
  enum class Kind : u8 {
    Assign,    // lhs = e
    If,        // if (e) body else else_body
    While,     // while (e) body
    Return,    // return e (e may be null for void-style return 0)
    CallStmt,  // e is a Call whose result is discarded
    Break,
    Continue,
    Prefetch,  // prefetch the address of lvalue e (hint)
    Trace,     // host trace of e (test oracle)
    PutC,      // emit character e
    PutI,      // emit decimal e
    NoteAlloc, // runtime allocation record: lhs = address, e = size
  };

  Kind kind = Kind::Assign;
  u32 line = 0;       // synthetic source line of this statement
  u32 end_line = 0;   // closing brace line for If/While
  Expr lhs, e;
  std::vector<Stmt> body, else_body;
};

}  // namespace dsprof::scc
