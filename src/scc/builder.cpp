#include "scc/builder.hpp"

namespace dsprof::scc {

namespace {

Expr make_int(i64 v) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Int;
  n->type = Type::i64();
  n->ival = v;
  return n;
}

bool is_null_literal(const ExprNode& e) {
  return e.kind == ExprNode::Kind::Int && e.ival == 0;
}

Expr make_bin(BinOp op, Expr a, Expr b) {
  const Type& ta = a->type;
  const Type& tb = b->type;
  auto n = std::make_shared<ExprNode>();
  if (is_compare(op)) {
    const bool both_int = !ta.is_pointer() && !tb.is_pointer();
    const bool ptr_ptr = ta.is_pointer() && tb.is_pointer() && ta.same_as(tb);
    const bool ptr_null = (ta.is_pointer() && is_null_literal(*b)) ||
                          (tb.is_pointer() && is_null_literal(*a));
    DSP_CHECK(both_int || ptr_ptr || ptr_null, "invalid comparison operand types");
    n->kind = ExprNode::Kind::Bin;
    n->type = Type::i64();
    n->bop = op;
    n->a = std::move(a);
    n->b = std::move(b);
    return n;
  }
  if ((op == BinOp::Add || op == BinOp::Sub) && ta.is_pointer()) {
    DSP_CHECK(!tb.is_pointer(), "pointer +/- pointer is not supported");
    n->kind = ExprNode::Kind::PtrIndex;
    n->type = ta;
    n->a = std::move(a);
    n->b = op == BinOp::Sub ? [&] {
      auto neg = std::make_shared<ExprNode>();
      neg->kind = ExprNode::Kind::Neg;
      neg->type = Type::i64();
      neg->a = std::move(b);
      return Expr(neg);
    }() : std::move(b);
    return n;
  }
  DSP_CHECK(!ta.is_pointer() && !tb.is_pointer(), "arithmetic on pointers");
  n->kind = ExprNode::Kind::Bin;
  n->type = Type::i64();
  n->bop = op;
  n->a = std::move(a);
  n->b = std::move(b);
  return n;
}

}  // namespace

Val::Val(i64 v) : e_(make_int(v)) {}

Val Val::field(const std::string& fname) const {
  const Expr& base = expr();
  DSP_CHECK(base->type.is_ptr_struct(), "member access on non-struct pointer");
  const StructDef* s = base->type.pointee_struct();
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Member;
  n->member = s->field_index(fname);
  n->type = s->field_type(n->member);
  n->a = base;
  return Val(n);
}

Val Val::operator[](const char* f) const { return field(f); }

Val Val::idx(const Val& index) const {
  const Expr& base = expr();
  DSP_CHECK(base->type.kind() == Type::Kind::PtrI64 || base->type.kind() == Type::Kind::PtrU8,
            "idx() requires a scalar-array pointer");
  DSP_CHECK(!index.type().is_pointer(), "index must be an integer");
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Index;
  n->type = base->type.pointee();
  n->a = base;
  n->b = index.expr();
  return Val(n);
}

Val Val::deref() const {
  const Expr& base = expr();
  DSP_CHECK(base->type.kind() == Type::Kind::PtrI64 || base->type.kind() == Type::Kind::PtrU8,
            "deref requires a scalar pointer");
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Deref;
  n->type = base->type.pointee();
  n->a = base;
  return Val(n);
}

#define DSP_BIN(OPER, TOKEN)                                   \
  Val operator OPER(const Val& a, const Val& b) {              \
    return Val(make_bin(BinOp::TOKEN, a.expr(), b.expr()));    \
  }
DSP_BIN(+, Add)
DSP_BIN(-, Sub)
DSP_BIN(*, Mul)
DSP_BIN(/, Div)
DSP_BIN(%, Mod)
DSP_BIN(&, BitAnd)
DSP_BIN(|, BitOr)
DSP_BIN(^, BitXor)
DSP_BIN(<<, Shl)
DSP_BIN(>>, Shr)
DSP_BIN(<, Lt)
DSP_BIN(<=, Le)
DSP_BIN(>, Gt)
DSP_BIN(>=, Ge)
DSP_BIN(==, Eq)
DSP_BIN(!=, Ne)
#undef DSP_BIN

Val operator-(const Val& a) {
  DSP_CHECK(!a.type().is_pointer(), "negating a pointer");
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Neg;
  n->type = Type::i64();
  n->a = a.expr();
  return Val(n);
}

Val land(const Val& a, const Val& b) { return Val(make_bin(BinOp::BitAnd, a.expr(), b.expr())); }
Val lor(const Val& a, const Val& b) { return Val(make_bin(BinOp::BitOr, a.expr(), b.expr())); }

FunctionBuilder::FunctionBuilder(Module& m, Function& f) : m_(m), f_(f) {
  blocks_.push_back(&f_.body());
}

void FunctionBuilder::ensure_header() {
  if (header_emitted_) return;
  header_emitted_ = true;
  std::string params;
  for (const auto& v : f_.vars()) {
    if (!v.is_param) continue;
    if (!params.empty()) params += ", ";
    params += v.type.display() + " " + v.name;
  }
  f_.set_decl_line(m_.next_line(f_.return_type().display() + " " + f_.name() + "(" + params +
                                ") {"));
}

Val FunctionBuilder::param(std::string name, Type t) {
  DSP_CHECK(!header_emitted_, "declare all params before the first statement");
  DSP_CHECK(f_.param_count() < 6, "at most 6 parameters are supported");
  const u32 idx = f_.add_var(name, t, /*is_param=*/true);
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Var;
  n->type = t;
  n->var = idx;
  n->name = f_.vars()[idx].name;
  return Val(n);
}

Val FunctionBuilder::local(std::string name, Type t) {
  const u32 idx = f_.add_var(name, t, /*is_param=*/false);
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Var;
  n->type = t;
  n->var = idx;
  n->name = f_.vars()[idx].name;
  return Val(n);
}

Val FunctionBuilder::global(const std::string& name) {
  const u32 idx = m_.find_global(name);
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Global;
  n->type = m_.global(idx).type;
  n->var = idx;
  n->name = name;
  return Val(n);
}

Stmt FunctionBuilder::make(StmtNode::Kind kind, std::string text) {
  ensure_header();
  auto s = std::make_unique<StmtNode>();
  s->kind = kind;
  s->line = m_.next_line(std::move(text));
  return s;
}

void FunctionBuilder::push(Stmt s) { blocks_.back()->push_back(std::move(s)); }

void FunctionBuilder::nest(std::vector<Stmt>& block, const std::function<void()>& fill) {
  blocks_.push_back(&block);
  fill();
  blocks_.pop_back();
}

void FunctionBuilder::set(const Val& lhs, const Val& rhs) {
  DSP_CHECK(is_lvalue(*lhs.expr()), "assignment target is not an lvalue");
  const Type& tl = lhs.type();
  const Type& tr = rhs.type();
  const bool ok = tl.same_as(tr) || (tl.is_pointer() && is_null_literal(*rhs.expr())) ||
                  (!tl.is_pointer() && !tr.is_pointer());
  DSP_CHECK(ok, "assignment type mismatch");
  Stmt s = make(StmtNode::Kind::Assign,
                expr_to_source(*lhs.expr()) + " = " + expr_to_source(*rhs.expr()) + ";");
  s->lhs = lhs.expr();
  s->e = rhs.expr();
  push(std::move(s));
}

void FunctionBuilder::if_(const Val& cond, const std::function<void()>& then) {
  Stmt s = make(StmtNode::Kind::If, "if (" + expr_to_source(*cond.expr()) + ") {");
  s->e = cond.expr();
  nest(s->body, then);
  s->end_line = m_.next_line("}");
  push(std::move(s));
}

void FunctionBuilder::if_else(const Val& cond, const std::function<void()>& then,
                              const std::function<void()>& otherwise) {
  Stmt s = make(StmtNode::Kind::If, "if (" + expr_to_source(*cond.expr()) + ") {");
  s->e = cond.expr();
  nest(s->body, then);
  m_.next_line("} else {");
  nest(s->else_body, otherwise);
  s->end_line = m_.next_line("}");
  push(std::move(s));
}

void FunctionBuilder::while_(const Val& cond, const std::function<void()>& body) {
  Stmt s = make(StmtNode::Kind::While, "while (" + expr_to_source(*cond.expr()) + ") {");
  s->e = cond.expr();
  nest(s->body, body);
  s->end_line = m_.next_line("}");
  push(std::move(s));
}

void FunctionBuilder::break_() { push(make(StmtNode::Kind::Break, "break;")); }

void FunctionBuilder::continue_() { push(make(StmtNode::Kind::Continue, "continue;")); }

void FunctionBuilder::ret(const Val& v) {
  Stmt s = make(StmtNode::Kind::Return, "return " + expr_to_source(*v.expr()) + ";");
  s->e = v.expr();
  push(std::move(s));
}

void FunctionBuilder::ret0() {
  Stmt s = make(StmtNode::Kind::Return, "return;");
  push(std::move(s));
}

Val FunctionBuilder::call(Function* callee, std::vector<Val> args) {
  DSP_CHECK(callee != nullptr, "call to null function");
  DSP_CHECK(args.size() == callee->param_count(), "argument count mismatch calling " +
                                                     callee->name());
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Call;
  n->type = callee->return_type();
  n->callee = callee;
  n->name = callee->name();
  for (size_t i = 0; i < args.size(); ++i) {
    const Type& pt = callee->vars()[i].type;
    const Type& at = args[i].type();
    const bool ok = pt.same_as(at) || (pt.is_pointer() && is_null_literal(*args[i].expr())) ||
                    (!pt.is_pointer() && !at.is_pointer());
    DSP_CHECK(ok, "argument type mismatch calling " + callee->name());
    n->args.push_back(args[i].expr());
  }
  return Val(n);
}

void FunctionBuilder::call_stmt(Function* callee, std::vector<Val> args) {
  Val c = call(callee, std::move(args));
  Stmt s = make(StmtNode::Kind::CallStmt, expr_to_source(*c.expr()) + ";");
  s->e = c.expr();
  push(std::move(s));
}

void FunctionBuilder::prefetch(const Val& lvalue) {
  const ExprNode& e = *lvalue.expr();
  DSP_CHECK(e.kind == ExprNode::Kind::Member || e.kind == ExprNode::Kind::Index ||
                e.kind == ExprNode::Kind::Deref,
            "prefetch target must be a memory reference");
  Stmt s = make(StmtNode::Kind::Prefetch, "prefetch(&" + expr_to_source(e) + ");");
  s->e = lvalue.expr();
  push(std::move(s));
}

void FunctionBuilder::trace(const Val& v) {
  Stmt s = make(StmtNode::Kind::Trace, "__trace(" + expr_to_source(*v.expr()) + ");");
  s->e = v.expr();
  push(std::move(s));
}

void FunctionBuilder::put_char(const Val& v) {
  Stmt s = make(StmtNode::Kind::PutC, "putchar(" + expr_to_source(*v.expr()) + ");");
  s->e = v.expr();
  push(std::move(s));
}

Val cast(const Val& v, Type to) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprNode::Kind::Cast;
  n->type = to;
  n->a = v.expr();
  return Val(n);
}

void FunctionBuilder::note_alloc(const Val& addr, const Val& size) {
  Stmt s = make(StmtNode::Kind::NoteAlloc, "__note_alloc(" + expr_to_source(*addr.expr()) +
                                               ", " + expr_to_source(*size.expr()) + ");");
  s->lhs = addr.expr();
  s->e = size.expr();
  push(std::move(s));
}

void FunctionBuilder::put_int(const Val& v) {
  Stmt s = make(StmtNode::Kind::PutI, "printf(\"%ld\", " + expr_to_source(*v.expr()) + ");");
  s->e = v.expr();
  push(std::move(s));
}

}  // namespace dsprof::scc
