// Ergonomic embedded-DSL builder: Val wraps an expression with overloaded
// operators; FunctionBuilder appends statements (auto-generating the
// synthetic source line text the annotated-source view renders).
//
// Example (the paper's refresh_potential critical loop, Figure 3):
//   FunctionBuilder fb(mod, *mod.add_function("refresh_potential"));
//   auto net  = fb.param("net", Type::ptr(net_s));
//   auto node = fb.local("node", Type::ptr(node_s));
//   ...
//   fb.while_(node != root, [&] {
//     fb.while_(node != 0, [&] {
//       fb.if_else(node["orientation"] == UP,
//         [&] { fb.set(node["potential"],
//                      node["basic_arc"]["cost"] + node["pred"]["potential"]); },
//         [&] { ... });
//       ...
//     });
//   });
#pragma once

#include <functional>

#include "scc/module.hpp"

namespace dsprof::scc {

class Val {
 public:
  Val() = default;
  /* implicit */ Val(i64 v);
  /* implicit */ Val(int v) : Val(static_cast<i64>(v)) {}
  explicit Val(Expr e) : e_(std::move(e)) {}

  const Expr& expr() const {
    DSP_CHECK(e_ != nullptr, "empty Val");
    return e_;
  }
  Type type() const { return expr()->type; }

  /// Struct member access through a pointer: node["potential"] is
  /// node->potential.
  Val operator[](const char* field) const;
  Val field(const std::string& fname) const;

  /// Scalar-array element load: arr.idx(i) is arr[i] (arr: long*/char*).
  Val idx(const Val& index) const;

  /// Dereference a scalar pointer.
  Val deref() const;

 private:
  Expr e_;
};

// Arithmetic / comparison operators. Pointer +/- integer yields pointer
// arithmetic in element units (C semantics).
Val operator+(const Val& a, const Val& b);
Val operator-(const Val& a, const Val& b);
Val operator*(const Val& a, const Val& b);
Val operator/(const Val& a, const Val& b);
Val operator%(const Val& a, const Val& b);
Val operator&(const Val& a, const Val& b);
Val operator|(const Val& a, const Val& b);
Val operator^(const Val& a, const Val& b);
Val operator<<(const Val& a, const Val& b);
Val operator>>(const Val& a, const Val& b);
Val operator<(const Val& a, const Val& b);
Val operator<=(const Val& a, const Val& b);
Val operator>(const Val& a, const Val& b);
Val operator>=(const Val& a, const Val& b);
Val operator==(const Val& a, const Val& b);
Val operator!=(const Val& a, const Val& b);
Val operator-(const Val& a);  // negation

/// Logical and/or over 0/1 comparison results. NOTE: both sides are always
/// evaluated (no short circuit) — don't dereference possibly-null pointers
/// on the right-hand side; nest if_ instead.
Val land(const Val& a, const Val& b);
Val lor(const Val& a, const Val& b);

/// Reinterpreting cast between integers and pointers (C "(node *)p").
Val cast(const Val& v, Type to);

class FunctionBuilder {
 public:
  FunctionBuilder(Module& m, Function& f);

  /// Declare the next parameter (in order; max 6).
  Val param(std::string name, Type t);
  Val local(std::string name, Type t);
  /// Reference a module global by name.
  Val global(const std::string& name);

  void set(const Val& lhs, const Val& rhs);
  void if_(const Val& cond, const std::function<void()>& then);
  void if_else(const Val& cond, const std::function<void()>& then,
               const std::function<void()>& otherwise);
  void while_(const Val& cond, const std::function<void()>& body);
  void break_();
  void continue_();
  void ret(const Val& v);
  void ret0();

  /// Call with a used result / as a statement.
  Val call(Function* callee, std::vector<Val> args = {});
  void call_stmt(Function* callee, std::vector<Val> args = {});

  /// Software prefetch of the address of an lvalue (Member/Index/Deref).
  void prefetch(const Val& lvalue);

  void trace(const Val& v);
  void put_char(const Val& v);
  void put_int(const Val& v);
  /// Record a heap allocation with the host (used by the runtime malloc so
  /// the analyzer's instance view can map addresses to objects).
  void note_alloc(const Val& addr, const Val& size);

  Module& module() { return m_; }
  Function& function() { return f_; }

 private:
  Stmt make(StmtNode::Kind kind, std::string text);
  void push(Stmt s);
  void nest(std::vector<Stmt>& block, const std::function<void()>& fill);

  Module& m_;
  Function& f_;
  std::vector<std::vector<Stmt>*> blocks_;
  bool header_emitted_ = false;
  void ensure_header();
};

}  // namespace dsprof::scc
