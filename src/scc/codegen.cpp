// AST -> s3 code generation.
//
// Register conventions (flat file, no register windows):
//   %g1-%g6  expression temporaries (caller-saved)
//   %g7      assembler scratch for 64-bit constants (reserved)
//   %o0-%o5  argument/result registers (caller-saved)
//   %o6      stack pointer, %o7 link
//   %l0-%l7, %i0-%i5  register homes for params/locals (callee-saved)
//   %i6/%i7  reserved
//
// Frame layout (from %sp, grows down, 16-byte aligned):
//   [sp+0]                 saved %o7
//   [sp+8 ...]             saved callee-saved homes
//   [...]                  frame-homed variables (when >14 vars)
//   [...]                  staging stack (argument values and temps saved
//                          across calls; stack-disciplined so nested calls
//                          inside argument expressions cannot clobber it)
#include <functional>
#include <optional>
#include <unordered_map>

#include "isa/assembler.hpp"
#include "machine/hostcall.hpp"
#include "scc/builder.hpp"
#include "scc/compile.hpp"

namespace dsprof::scc {

namespace {

using isa::Cond;
using isa::Instr;
using isa::LabelId;
using isa::Op;
using isa::Reg;

constexpr Reg kTempRegs[] = {isa::G1, isa::G2, isa::G3, isa::G4, isa::G5, isa::G6};
constexpr size_t kNumTemps = 6;
constexpr Reg kHomeRegs[] = {isa::L0, isa::L1, isa::L2, isa::L3, isa::L4, isa::L5,
                             isa::L6, isa::L7, isa::I0, isa::I1, isa::I2, isa::I3,
                             isa::I4, isa::I5};
constexpr size_t kNumHomeRegs = 14;
constexpr Reg kScratch = isa::G7;

Op load_op_for(unsigned size) {
  switch (size) {
    case 1: return Op::LDUB;
    case 4: return Op::LDUW;
    case 8: return Op::LDX;
  }
  fail("bad load size");
}

Op store_op_for(unsigned size) {
  switch (size) {
    case 1: return Op::STB;
    case 4: return Op::STW;
    case 8: return Op::STX;
  }
  fail("bad store size");
}

Cond cond_for(BinOp op) {
  switch (op) {
    case BinOp::Lt: return Cond::L;
    case BinOp::Le: return Cond::LE;
    case BinOp::Gt: return Cond::G;
    case BinOp::Ge: return Cond::GE;
    case BinOp::Eq: return Cond::E;
    case BinOp::Ne: return Cond::NE;
    default: fail("not a comparison");
  }
}

Cond negate(Cond c) {
  switch (c) {
    case Cond::L: return Cond::GE;
    case Cond::LE: return Cond::G;
    case Cond::G: return Cond::LE;
    case Cond::GE: return Cond::L;
    case Cond::E: return Cond::NE;
    case Cond::NE: return Cond::E;
    case Cond::LU: return Cond::GEU;
    case Cond::LEU: return Cond::GU;
    case Cond::GU: return Cond::LEU;
    case Cond::GEU: return Cond::LU;
    default: fail("cannot negate condition");
  }
}

/// A value held in a register; `owned` temps must be released.
struct RVal {
  Reg reg = isa::G0;
  bool owned = false;
};

class Codegen {
 public:
  Codegen(const Module& m, const CompileOptions& opt) : m_(m), opt_(opt) {}

  sym::Image run();

 private:
  // --- emission wrappers with hwcprof bookkeeping ---------------------------
  u64 tag(u32 line, i32 memref) const {
    return (static_cast<u64>(memref + 1) << 32) | line;
  }
  void emit(const Instr& ins, u32 line, i32 memref = -1) {
    asm_.emit(ins, tag(line, memref));
    const isa::OpInfo& info = isa::op_info(ins.op);
    if (info.is_load || info.is_store || info.is_prefetch) {
      since_mem_ = 0;
    } else {
      ++since_mem_;
    }
  }
  void set64(Reg rd, i64 v, u32 line) {
    asm_.set64(rd, v, kScratch, tag(line, -1));
    since_mem_ += 6;  // set64 never emits memory ops
  }
  /// -xhwcprof: keep `pad_nops` non-memory instructions between the last
  /// memory op and any join node (paper §2.1).
  void pad_before_join(u32 line) {
    if (!opt_.hwcprof || opt_.mutate_skip_nop_pad) return;
    while (since_mem_ < opt_.pad_nops) emit(isa::nop(), line);
  }
  void bind(LabelId l, u32 line) {
    pad_before_join(line);
    asm_.bind(l);
    since_mem_ = 1000;  // a join resets the window
  }
  /// Emit a control transfer and fill its delay slot (with a hoisted
  /// preceding instruction when legal, else a nop).
  void transfer(const std::function<void()>& emit_transfer, u32 line) {
    std::optional<std::pair<Instr, u64>> slot;
    if (opt_.mutate_mem_in_delay_slot && opt_.fill_delay_slots) {
      // Mutation hook (testing only): hoist a trailing memory op into the
      // delay slot *before* the join padding runs — under the normal
      // ordering the pads land between the memory op and the transfer, so
      // the op could never reach the slot even with the hwcprof restriction
      // below disabled. since_mem_ is forced past the pad threshold so the
      // only violated invariant is the delay-slot one (rule isolation).
      slot = asm_.pop_last_plain();
      if (slot) {
        const isa::OpInfo& info = isa::op_info(slot->first.op);
        const bool is_mem = info.is_load || info.is_store || info.is_prefetch;
        if (is_mem) {
          since_mem_ = 1000;
        } else {
          asm_.emit(slot->first, slot->second);  // put it back
          slot.reset();
        }
      }
    }
    pad_before_join(line);
    if (!slot && opt_.fill_delay_slots) {
      slot = asm_.pop_last_plain();
      if (slot) {
        const isa::OpInfo& info = isa::op_info(slot->first.op);
        const bool is_mem = info.is_load || info.is_store || info.is_prefetch;
        const bool is_nop = slot->first == isa::nop();
        // hwcprof rule: never schedule loads/stores into delay slots.
        if (is_nop || (opt_.hwcprof && is_mem)) {
          asm_.emit(slot->first, slot->second);  // put it back
          slot.reset();
        }
      }
    }
    emit_transfer();
    if (slot) {
      asm_.emit(slot->first, slot->second);
    } else {
      asm_.emit(isa::nop(), tag(line, -1));
    }
    since_mem_ = 1000;
  }
  void branch_to(Cond c, LabelId target, u32 line) {
    transfer([&] { asm_.emit_branch(c, target, false, true, tag(line, -1)); }, line);
  }
  void call_to(LabelId target, u32 line) {
    transfer([&] { asm_.emit_call(target, tag(line, -1)); }, line);
    since_mem_ = 1000;
  }

  // --- temporaries ----------------------------------------------------------
  Reg alloc_temp() {
    for (size_t i = 0; i < kNumTemps; ++i) {
      if (!temp_busy_[i]) {
        temp_busy_[i] = true;
        return kTempRegs[i];
      }
    }
    fail("expression too deep: temporary registers exhausted");
  }
  void free_temp(Reg r) {
    for (size_t i = 0; i < kNumTemps; ++i) {
      if (kTempRegs[i] == r) {
        DSP_CHECK(temp_busy_[i], "double free of temp");
        temp_busy_[i] = false;
        return;
      }
    }
    fail("freeing a non-temp register");
  }
  void release(const RVal& v) {
    if (v.owned) free_temp(v.reg);
  }
  /// Ensure the value is in an owned temp (copying a variable home if needed).
  RVal own(RVal v, u32 line) {
    if (v.owned) return v;
    const Reg t = alloc_temp();
    emit(isa::mov_rr(t, v.reg), line);
    return {t, true};
  }

  // --- memref side table ----------------------------------------------------
  i32 memref_member(const StructDef* s, u32 decl_index) {
    if (!emit_memrefs_) return -1;
    sym::MemRef r;
    r.kind = sym::MemRef::Kind::StructMember;
    r.aggregate = types_.struct_id(s);
    r.member = TypeEmitter::member_index(s, decl_index);
    memrefs_.push_back(r);
    return static_cast<i32>(memrefs_.size() - 1);
  }
  i32 memref_scalar(const Type& t) {
    if (!emit_memrefs_) return -1;
    sym::MemRef r;
    r.kind = sym::MemRef::Kind::Scalar;
    r.aggregate = types_.scalar_id(t);
    memrefs_.push_back(r);
    return static_cast<i32>(memrefs_.size() - 1);
  }
  i32 memref_unidentified() {
    if (!emit_memrefs_) return -1;
    sym::MemRef r;
    r.kind = sym::MemRef::Kind::Unidentified;
    memrefs_.push_back(r);
    return static_cast<i32>(memrefs_.size() - 1);
  }

  // --- per-function helpers -------------------------------------------------
  struct VarHome {
    bool in_reg = false;
    Reg reg = isa::G0;
    i64 frame_off = 0;
  };

  void gen_function(const Function& f);
  void gen_stmts(const std::vector<Stmt>& body);
  void gen_stmt(const StmtNode& s);
  RVal gen_expr(const ExprNode& e, u32 line);
  RVal gen_call(const ExprNode& e, u32 line);
  void gen_cond_branch_false(const ExprNode& cond, LabelId if_false, u32 line);
  void gen_assign(const StmtNode& s);
  /// Address of a memory lvalue as (base register, constant offset, memref).
  struct MemAddr {
    RVal base;
    i64 off = 0;
    i32 memref = -1;
    unsigned size = 8;
  };
  MemAddr gen_mem_addr(const ExprNode& e, u32 line);

  // --- module-level state ---------------------------------------------------
  const Module& m_;
  CompileOptions opt_;
  isa::Assembler asm_{mem::kTextBase};
  sym::SymbolTable symtab_;
  TypeEmitter types_{symtab_.types()};
  std::vector<sym::MemRef> memrefs_;
  bool emit_memrefs_ = false;
  std::unordered_map<const Function*, LabelId> func_labels_;
  u32 since_mem_ = 1000;

  // --- per-function state ---------------------------------------------------
  const Function* cur_ = nullptr;
  std::vector<VarHome> homes_;
  bool temp_busy_[kNumTemps] = {};
  i64 frame_size_ = 0;
  i64 stage_off_ = 0;   // base of the staging stack in the frame
  i64 stage_top_ = 0;   // current staging depth (slots)
  LabelId epilogue_ = 0;
  std::vector<LabelId> loop_heads_, loop_ends_;
  size_t reg_home_count_ = 0;

  static constexpr i64 kStageSlots = 48;
  i64 stage_slot_off(i64 idx) const { return stage_off_ + 8 * idx; }
  i64 stage_push(Reg r, u32 line) {
    DSP_CHECK(stage_top_ < kStageSlots, "staging stack overflow (expression too complex)");
    emit(isa::store_ri(Op::STX, r, isa::kSp, stage_slot_off(stage_top_)), line,
         memref_unidentified());
    return stage_top_++;
  }
};

sym::Image Codegen::run() {
  emit_memrefs_ = opt_.hwcprof && opt_.dwarf && !opt_.mutate_skip_memref;

  for (const auto& f : m_.functions()) {
    func_labels_[f.get()] = asm_.new_label(f->name());
  }

  // _start shim: call main, exit with its result.
  const Function* main_fn = nullptr;
  for (const auto& f : m_.functions()) {
    if (f->name() == "main") main_fn = f.get();
  }
  DSP_CHECK(main_fn != nullptr, "module has no main()");
  DSP_CHECK(main_fn->param_count() == 0, "main() must take no parameters");
  const LabelId start = asm_.new_label("_start");
  asm_.bind(start);
  const u64 start_pos = asm_.position();
  asm_.emit_call(func_labels_[main_fn], 0);
  asm_.emit(isa::nop(), 0);
  asm_.emit(isa::hcall(static_cast<i64>(machine::HostCall::Exit)), 0);
  asm_.emit(isa::nop(), 0);  // not reached
  const u64 start_end = asm_.position();

  struct FuncSpan {
    const Function* fn;
    u64 lo_pos, hi_pos;
  };
  std::vector<FuncSpan> spans;
  for (const auto& f : m_.functions()) {
    const u64 lo = asm_.position();
    gen_function(*f);
    spans.push_back({f.get(), lo, asm_.position()});
  }

  types_.define_all();
  isa::Assembler::Output out = asm_.finish();

  sym::Image img;
  img.text_words = std::move(out.words);
  img.entry = out.base + 4 * start_pos;

  // Data segment: globals with 8-byte little-endian initializers.
  img.data_size = m_.data_segment_size();
  img.data_init.assign(img.data_size, 0);
  for (const auto& g : m_.globals()) {
    u64 v = static_cast<u64>(g.init);
    for (unsigned b = 0; b < g.type.size(); ++b) {
      img.data_init[g.offset + b] = static_cast<u8>(v >> (8 * b));
    }
  }

  // Symbol tables. The hwcprof flag states what the compiler *claims*
  // (mutate_skip_memref keeps the claim while breaking the contract, so the
  // linter's missing-descriptor rule can catch the mismatch).
  symtab_.set_hwcprof(opt_.hwcprof && opt_.dwarf);
  symtab_.set_has_branch_targets(opt_.dwarf);
  if (opt_.dwarf) {
    symtab_.set_branch_targets(std::move(out.branch_targets));
  } else {
    symtab_.set_branch_targets({});
  }
  symtab_.add_function({"_start", out.base + 4 * start_pos, out.base + 4 * start_end});
  for (const auto& s : spans) {
    symtab_.add_function({s.fn->name(), out.base + 4 * s.lo_pos, out.base + 4 * s.hi_pos});
  }
  u32 prev_line = 0;
  for (size_t i = 0; i < out.tags.size(); ++i) {
    const u64 t = out.tags[i];
    const u64 pc = out.base + 4 * i;
    const u32 line = static_cast<u32>(t & 0xFFFFFFFF);
    const u32 mref = static_cast<u32>(t >> 32);
    if (line != 0 && line != prev_line) {
      symtab_.add_line(pc, line);
      prev_line = line;
    }
    if (mref != 0) symtab_.add_memref(pc, memrefs_[mref - 1]);
  }
  for (const auto& [line, text] : m_.source_lines()) symtab_.add_source_line(line, text);

  img.symtab = std::move(symtab_);
  return img;
}

void Codegen::gen_function(const Function& f) {
  cur_ = &f;
  for (bool& b : temp_busy_) b = false;
  loop_heads_.clear();
  loop_ends_.clear();

  // Variable homes: first 14 in callee-saved registers, the rest in frame.
  const auto& vars = f.vars();
  homes_.assign(vars.size(), VarHome{});
  reg_home_count_ = std::min(vars.size(), kNumHomeRegs);
  size_t frame_vars = vars.size() > kNumHomeRegs ? vars.size() - kNumHomeRegs : 0;

  // Frame layout.
  const i64 saved_regs_off = 8;  // after saved %o7
  const i64 frame_vars_off = saved_regs_off + 8 * static_cast<i64>(reg_home_count_);
  stage_off_ = frame_vars_off + 8 * static_cast<i64>(frame_vars);
  stage_top_ = 0;
  frame_size_ = static_cast<i64>(round_up(static_cast<u64>(stage_off_ + 8 * kStageSlots), 16));

  for (size_t i = 0; i < vars.size(); ++i) {
    if (i < kNumHomeRegs) {
      homes_[i] = {true, kHomeRegs[i], 0};
    } else {
      homes_[i] = {false, isa::G0, frame_vars_off + 8 * static_cast<i64>(i - kNumHomeRegs)};
    }
  }

  const u32 line = f.decl_line();
  since_mem_ = 1000;
  asm_.bind(func_labels_.at(&f));

  // Prologue.
  emit(isa::alu_ri(Op::ADD, isa::kSp, isa::kSp, -frame_size_), line);
  emit(isa::store_ri(Op::STX, isa::kLink, isa::kSp, 0), line, memref_unidentified());
  for (size_t i = 0; i < reg_home_count_; ++i) {
    emit(isa::store_ri(Op::STX, kHomeRegs[i], isa::kSp, saved_regs_off + 8 * static_cast<i64>(i)),
         line, memref_unidentified());
  }
  for (size_t i = 0; i < f.param_count(); ++i) {
    const Reg arg = static_cast<Reg>(isa::O0 + i);
    if (homes_[i].in_reg) {
      emit(isa::mov_rr(homes_[i].reg, arg), line);
    } else {
      emit(isa::store_ri(Op::STX, arg, isa::kSp, homes_[i].frame_off), line,
           memref_scalar(vars[i].type));
    }
  }

  epilogue_ = asm_.new_label(f.name() + ".epilogue");
  gen_stmts(f.body());

  // Implicit `return 0` when control falls off the end.
  emit(isa::mov_ri(isa::O0, 0), line);

  bind(epilogue_, line);
  for (size_t i = 0; i < reg_home_count_; ++i) {
    emit(isa::load_ri(Op::LDX, kHomeRegs[i], isa::kSp, saved_regs_off + 8 * static_cast<i64>(i)),
         line, memref_unidentified());
  }
  emit(isa::load_ri(Op::LDX, isa::kLink, isa::kSp, 0), line, memref_unidentified());
  emit(isa::alu_ri(Op::ADD, isa::kSp, isa::kSp, frame_size_), line);
  transfer([&] { asm_.emit(isa::ret(), tag(line, -1)); }, line);
}

void Codegen::gen_stmts(const std::vector<Stmt>& body) {
  for (const auto& s : body) gen_stmt(*s);
}

RVal Codegen::gen_call(const ExprNode& e, u32 line) {
  const i64 stage_base = stage_top_;
  // Save live expression temps to the staging stack and free the registers
  // (nested calls inside argument expressions push deeper, never clobbering).
  std::vector<std::pair<Reg, i64>> saved;
  for (size_t i = 0; i < kNumTemps; ++i) {
    if (temp_busy_[i]) {
      saved.emplace_back(kTempRegs[i], stage_push(kTempRegs[i], line));
      temp_busy_[i] = false;
    }
  }
  // Evaluate arguments onto the staging stack (an argument may itself
  // contain a call, which clobbers %o registers and temps).
  std::vector<i64> arg_slots;
  for (const auto& arg : e.args) {
    RVal a = gen_expr(*arg, line);
    arg_slots.push_back(stage_push(a.reg, line));
    release(a);
  }
  for (size_t i = 0; i < arg_slots.size(); ++i) {
    emit(isa::load_ri(Op::LDX, static_cast<Reg>(isa::O0 + i), isa::kSp,
                      stage_slot_off(arg_slots[i])),
         line, memref_unidentified());
  }
  call_to(func_labels_.at(e.callee), line);
  // Restore saved temps (marking them busy again), then move the result into
  // a freshly allocated temp — distinct from every restored register.
  for (const auto& [reg, slot] : saved) {
    emit(isa::load_ri(Op::LDX, reg, isa::kSp, stage_slot_off(slot)), line,
         memref_unidentified());
    for (size_t i = 0; i < kNumTemps; ++i) {
      if (kTempRegs[i] == reg) temp_busy_[i] = true;
    }
  }
  stage_top_ = stage_base;
  const Reg t = alloc_temp();
  if (opt_.mutate_dead_register_write) {
    // Mutation hook (testing only): this write is overwritten by the result
    // move below before anything can read it — the liveness-backed
    // dead-register-write rule (and only it) must flag this instruction.
    emit(isa::mov_ri(t, 0), line);
  }
  emit(isa::mov_rr(t, isa::O0), line);
  return {t, true};
}

Codegen::MemAddr Codegen::gen_mem_addr(const ExprNode& e, u32 line) {
  using K = ExprNode::Kind;
  MemAddr a;
  switch (e.kind) {
    case K::Member: {
      const StructDef* s = e.a->type.pointee_struct();
      a.base = gen_expr(*e.a, line);
      a.off = static_cast<i64>(s->offset_of(e.member));
      a.memref = memref_member(s, e.member);
      a.size = s->field_type(e.member).mem_size();
      return a;
    }
    case K::Index: {
      const Type elem = e.a->type.pointee();
      RVal base = gen_expr(*e.a, line);
      RVal idx = gen_expr(*e.b, line);
      RVal addr = own(std::move(base), line);
      if (elem.size() == 1) {
        emit(isa::alu_rr(Op::ADD, addr.reg, addr.reg, idx.reg), line);
        release(idx);
      } else {
        RVal scaled = own(std::move(idx), line);
        emit(isa::alu_ri(Op::SLL, scaled.reg, scaled.reg,
                         static_cast<i64>(log2_exact(elem.size()))),
             line);
        emit(isa::alu_rr(Op::ADD, addr.reg, addr.reg, scaled.reg), line);
        release(scaled);
      }
      a.base = addr;
      a.off = 0;
      a.memref = memref_scalar(elem);
      a.size = elem.mem_size();
      return a;
    }
    case K::Deref: {
      const Type elem = e.a->type.pointee();
      a.base = gen_expr(*e.a, line);
      a.off = 0;
      a.memref = memref_scalar(elem);
      a.size = elem.mem_size();
      return a;
    }
    case K::Global: {
      const Module::Global& g = m_.global(e.var);
      const Reg t = alloc_temp();
      set64(t, static_cast<i64>(mem::kDataBase + g.offset), line);
      a.base = {t, true};
      a.off = 0;
      a.memref = memref_scalar(g.type);
      a.size = g.type.mem_size();
      return a;
    }
    default:
      fail("not a memory lvalue");
  }
}

RVal Codegen::gen_expr(const ExprNode& e, u32 line) {
  using K = ExprNode::Kind;
  switch (e.kind) {
    case K::Int: {
      const Reg t = alloc_temp();
      set64(t, e.ival, line);
      return {t, true};
    }
    case K::Var: {
      const VarHome& h = homes_[e.var];
      if (h.in_reg) return {h.reg, false};
      const Reg t = alloc_temp();
      emit(isa::load_ri(Op::LDX, t, isa::kSp, h.frame_off), line,
           memref_scalar(cur_->vars()[e.var].type));
      if (opt_.mutate_clobber_ea_early) {
        // Mutation hook (testing only): an identity move of the stack
        // pointer — value-preserving, so the program is unchanged and the
        // load stays attributable via the delivery right after it, but the
        // verbatim clobber scan sees a writer of the load's EA register at
        // distance 1 (lint rule: ea-clobber-depth, and only it). Stack loads
        // are the observable site: temp-based loads already sit at depth 1
        // from register recycling.
        emit(isa::mov_rr(isa::kSp, isa::kSp), line);
      }
      return {t, true};
    }
    case K::Global:
    case K::Member:
    case K::Index:
    case K::Deref: {
      // Load into a register distinct from the base: a load that overwrote
      // its own address register would make the effective address
      // unrecoverable for the profiler (paper §2.2.3) — and real compilers
      // avoid it for scheduling reasons anyway.
      MemAddr a = gen_mem_addr(e, line);
      if (opt_.mutate_self_clobber_load && a.base.owned) {
        // Mutation hook (testing only): load into the address register
        // itself. Every delivery that resolves to this load loses the EA to
        // the self-clobber, so the dataflow classifier must report it
        // Clobbered (lint rule: statically-unprofilable-load, and only it).
        emit(isa::load_ri(load_op_for(a.size), a.base.reg, a.base.reg, a.off), line,
             a.memref);
        return a.base;
      }
      const Reg dst = alloc_temp();
      emit(isa::load_ri(load_op_for(a.size), dst, a.base.reg, a.off), line, a.memref);
      release(a.base);
      return {dst, true};
    }
    case K::PtrIndex: {
      const u64 elem = e.a->type.is_ptr_struct() ? e.a->type.pointee_struct()->size()
                                                 : e.a->type.pointee().size();
      RVal base = gen_expr(*e.a, line);
      RVal idx = own(gen_expr(*e.b, line), line);
      if (is_pow2(elem)) {
        if (elem > 1) {
          emit(isa::alu_ri(Op::SLL, idx.reg, idx.reg, static_cast<i64>(log2_exact(elem))),
               line);
        }
      } else {
        const Reg c = alloc_temp();
        set64(c, static_cast<i64>(elem), line);
        emit(isa::alu_rr(Op::MULX, idx.reg, idx.reg, c), line);
        free_temp(c);
      }
      emit(isa::alu_rr(Op::ADD, idx.reg, base.reg, idx.reg), line);
      release(base);
      return idx;
    }
    case K::Neg: {
      RVal a = gen_expr(*e.a, line);
      RVal dst = own(std::move(a), line);
      emit(isa::alu_rr(Op::SUB, dst.reg, isa::G0, dst.reg), line);
      return dst;
    }
    case K::Cast:
      return gen_expr(*e.a, line);
    case K::Call:
      return gen_call(e, line);
    case K::Bin:
      break;  // handled below
  }

  // Binary operators.
  const BinOp op = e.bop;
  if (is_compare(op)) {
    // Materialize 0/1: cmp; mov t,1; b<cc> done; nop; mov t,0; done:
    RVal a = gen_expr(*e.a, line);
    const bool imm_b = e.b->kind == K::Int && fits_signed(e.b->ival, 15);
    RVal b{};
    if (imm_b) {
      emit(isa::cmp_ri(a.reg, e.b->ival), line);
    } else {
      b = gen_expr(*e.b, line);
      emit(isa::cmp_rr(a.reg, b.reg), line);
    }
    release(a);
    if (!imm_b) release(b);
    const Reg t = alloc_temp();
    emit(isa::mov_ri(t, 1), line);
    const LabelId done = asm_.new_label("cmp.done");
    branch_to(cond_for(op), done, line);
    emit(isa::mov_ri(t, 0), line);
    bind(done, line);
    return {t, true};
  }

  // Immediate form for the common `x op constant` case.
  const bool imm_b = e.b->kind == K::Int && fits_signed(e.b->ival, 15);
  RVal a = gen_expr(*e.a, line);
  RVal b{};
  if (!imm_b) b = gen_expr(*e.b, line);
  const Reg dst = alloc_temp();
  auto binop = [&](Op machine_op) {
    if (imm_b) {
      emit(isa::alu_ri(machine_op, dst, a.reg, e.b->ival), line);
    } else {
      emit(isa::alu_rr(machine_op, dst, a.reg, b.reg), line);
    }
  };
  switch (op) {
    case BinOp::Add: binop(Op::ADD); break;
    case BinOp::Sub: binop(Op::SUB); break;
    case BinOp::Mul: binop(Op::MULX); break;
    case BinOp::Div: binop(Op::SDIVX); break;
    case BinOp::Mod: {
      // a - (a / b) * b
      binop(Op::SDIVX);
      if (imm_b) {
        emit(isa::alu_ri(Op::MULX, dst, dst, e.b->ival), line);
      } else {
        emit(isa::alu_rr(Op::MULX, dst, dst, b.reg), line);
      }
      emit(isa::alu_rr(Op::SUB, dst, a.reg, dst), line);
      break;
    }
    case BinOp::BitAnd: binop(Op::AND); break;
    case BinOp::BitOr: binop(Op::OR); break;
    case BinOp::BitXor: binop(Op::XOR); break;
    case BinOp::Shl: binop(Op::SLL); break;
    case BinOp::Shr: binop(Op::SRA); break;
    default: fail("unhandled binop");
  }
  release(a);
  if (!imm_b) release(b);
  return {dst, true};
}

void Codegen::gen_cond_branch_false(const ExprNode& cond, LabelId if_false, u32 line) {
  if (cond.kind == ExprNode::Kind::Bin && is_compare(cond.bop)) {
    RVal a = gen_expr(*cond.a, line);
    const bool imm_b = cond.b->kind == ExprNode::Kind::Int && fits_signed(cond.b->ival, 15);
    if (imm_b) {
      emit(isa::cmp_ri(a.reg, cond.b->ival), line);
    } else {
      RVal b = gen_expr(*cond.b, line);
      emit(isa::cmp_rr(a.reg, b.reg), line);
      release(b);
    }
    release(a);
    branch_to(negate(cond_for(cond.bop)), if_false, line);
    return;
  }
  RVal v = gen_expr(cond, line);
  emit(isa::cmp_ri(v.reg, 0), line);
  release(v);
  branch_to(Cond::E, if_false, line);
}

void Codegen::gen_assign(const StmtNode& s) {
  const u32 line = s.line;
  const ExprNode& lhs = *s.lhs;
  if (lhs.kind == ExprNode::Kind::Var) {
    const VarHome& h = homes_[lhs.var];
    RVal v = gen_expr(*s.e, line);
    if (h.in_reg) {
      emit(isa::mov_rr(h.reg, v.reg), line);
    } else {
      emit(isa::store_ri(Op::STX, v.reg, isa::kSp, h.frame_off), line,
           memref_scalar(cur_->vars()[lhs.var].type));
    }
    release(v);
    return;
  }
  RVal v = gen_expr(*s.e, line);
  MemAddr a = gen_mem_addr(lhs, line);
  emit(isa::store_ri(store_op_for(a.size), v.reg, a.base.reg, a.off), line, a.memref);
  release(a.base);
  release(v);
}

void Codegen::gen_stmt(const StmtNode& s) {
  using K = StmtNode::Kind;
  const u32 line = s.line;
  switch (s.kind) {
    case K::Assign:
      gen_assign(s);
      return;
    case K::If: {
      const LabelId else_l = asm_.new_label("if.else");
      gen_cond_branch_false(*s.e, else_l, line);
      gen_stmts(s.body);
      if (s.else_body.empty()) {
        bind(else_l, s.end_line);
      } else {
        const LabelId end_l = asm_.new_label("if.end");
        transfer([&] { asm_.emit_branch(Cond::A, end_l, false, true, tag(line, -1)); }, line);
        bind(else_l, line);
        gen_stmts(s.else_body);
        bind(end_l, s.end_line);
      }
      return;
    }
    case K::While: {
      const LabelId head = asm_.new_label("while.head");
      const LabelId end = asm_.new_label("while.end");
      bind(head, line);
      gen_cond_branch_false(*s.e, end, line);
      loop_heads_.push_back(head);
      loop_ends_.push_back(end);
      gen_stmts(s.body);
      loop_heads_.pop_back();
      loop_ends_.pop_back();
      transfer([&] { asm_.emit_branch(Cond::A, head, false, true, tag(s.end_line, -1)); },
               s.end_line);
      bind(end, s.end_line);
      return;
    }
    case K::Break:
      DSP_CHECK(!loop_ends_.empty(), "break outside a loop");
      transfer([&] { asm_.emit_branch(Cond::A, loop_ends_.back(), false, true, tag(line, -1)); },
               line);
      return;
    case K::Continue:
      DSP_CHECK(!loop_heads_.empty(), "continue outside a loop");
      transfer(
          [&] { asm_.emit_branch(Cond::A, loop_heads_.back(), false, true, tag(line, -1)); },
          line);
      return;
    case K::Return: {
      if (s.e) {
        RVal v = gen_expr(*s.e, line);
        emit(isa::mov_rr(isa::O0, v.reg), line);
        release(v);
      } else {
        emit(isa::mov_ri(isa::O0, 0), line);
      }
      transfer([&] { asm_.emit_branch(Cond::A, epilogue_, false, true, tag(line, -1)); }, line);
      return;
    }
    case K::CallStmt: {
      RVal v = gen_call(*s.e, line);
      release(v);
      return;
    }
    case K::Prefetch: {
      MemAddr a = gen_mem_addr(*s.e, line);
      emit(isa::prefetch_ri(a.base.reg, a.off), line, a.memref);
      release(a.base);
      return;
    }
    case K::Trace:
    case K::PutC:
    case K::PutI: {
      RVal v = gen_expr(*s.e, line);
      emit(isa::mov_rr(isa::O0, v.reg), line);
      release(v);
      const auto code = s.kind == K::Trace  ? machine::HostCall::Trace
                        : s.kind == K::PutC ? machine::HostCall::PutC
                                            : machine::HostCall::PutI;
      emit(isa::hcall(static_cast<i64>(code)), line);
      return;
    }
    case K::NoteAlloc: {
      RVal addr = gen_expr(*s.lhs, line);
      RVal size = gen_expr(*s.e, line);
      emit(isa::mov_rr(isa::O0, addr.reg), line);
      emit(isa::mov_rr(isa::O1, size.reg), line);
      release(addr);
      release(size);
      emit(isa::hcall(static_cast<i64>(machine::HostCall::NoteAlloc)), line);
      return;
    }
  }
  fail("unhandled statement kind");
}

}  // namespace

sym::Image compile(const Module& m, const CompileOptions& opt) {
  Codegen cg(m, opt);
  return cg.run();
}

Function* add_runtime(Module& m, u64 malloc_align) {
  DSP_CHECK(is_pow2(malloc_align) && malloc_align >= 8, "malloc alignment must be pow2 >= 8");
  m.add_global("__brk", Type::i64(), static_cast<i64>(mem::kHeapBase));
  Function* f = m.add_function("malloc", Type::i64());
  FunctionBuilder fb(m, *f);
  auto size = fb.param("size", Type::i64());
  auto p = fb.local("p", Type::i64());
  const i64 mask = -static_cast<i64>(malloc_align);
  fb.set(p, (fb.global("__brk") + static_cast<i64>(malloc_align - 1)) & mask);
  fb.set(fb.global("__brk"), p + ((size + 15) & -16));
  fb.note_alloc(p, size);
  fb.ret(p);
  return f;
}

}  // namespace dsprof::scc
