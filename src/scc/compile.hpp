// Compilation entry point: Module -> loadable sym::Image, implementing the
// paper's -xhwcprof / -xdebugformat=dwarf behaviour (§2.1):
//  * with hwcprof: every memory-reference instruction gets a data descriptor
//    (struct type + member) in the symbol table; nop padding is inserted
//    between memory operations and join nodes (labels/branches) so counter
//    events are captured in the triggering basic block; loads/stores are
//    never scheduled into branch delay slots;
//  * with dwarf: branch-target and line tables are emitted (STABS cannot
//    carry them — without dwarf the analyzer reports (Unverifiable));
//  * without hwcprof: memory descriptors are absent (the analyzer reports
//    (Unascertainable)) and delay slots may hold loads/stores.
#pragma once

#include "scc/module.hpp"
#include "sym/image.hpp"

namespace dsprof::scc {

struct CompileOptions {
  bool hwcprof = true;  // -xhwcprof
  bool dwarf = true;    // -xdebugformat=dwarf
  /// Minimum instruction distance kept between a memory operation and the
  /// next join node under hwcprof (nops inserted as needed).
  u32 pad_nops = 2;
  /// Fill branch delay slots with a preceding instruction when legal
  /// (always nop under hwcprof if the candidate is a memory op).
  bool fill_delay_slots = true;

  // --- mutation hooks (testing only) ----------------------------------------
  // Each deliberately breaks exactly one hwcprof codegen pass while leaving
  // the symbol-table flags claiming the contract holds, so the sa linter's
  // corresponding rule — and only that rule — must fire
  // (tests/sa_test.cpp mutation tests). All default off; default-compiled
  // output is byte-identical to before these hooks existed.
  /// Disable the nop padding between memory ops and join nodes
  /// (lint rule: missing-nop-pad).
  bool mutate_skip_nop_pad = false;
  /// Let the delay-slot filler hoist memory ops into branch delay slots
  /// (lint rule: mem-op-in-delay-slot).
  bool mutate_mem_in_delay_slot = false;
  /// Drop data descriptors while still flagging the image as hwcprof
  /// (lint rule: missing-descriptor).
  bool mutate_skip_memref = false;
  /// Load into the address register itself instead of a fresh temp, making
  /// the effective address statically unrecoverable
  /// (lint rule: statically-unprofilable-load).
  bool mutate_self_clobber_load = false;
  /// Write a constant into the call-result temp right before the real result
  /// move overwrites it (lint rule: dead-register-write).
  bool mutate_dead_register_write = false;
  /// Emit an identity move of the stack pointer immediately after each
  /// stack-slot load — semantically a no-op, but a clobber-scan writer of
  /// the load's EA register at distance 1. Temp-based loads already sit at
  /// depth 1 from register recycling; %sp is otherwise never redefined, so
  /// this is observable (lint rule: ea-clobber-depth).
  bool mutate_clobber_ea_early = false;
};

/// Compile `m` to an executable image. The module must define a function
/// named "main" (no parameters); a _start shim calls it and exits with its
/// return value.
sym::Image compile(const Module& m, const CompileOptions& opt = {});

/// Define the DSL runtime in `m`: a bump-pointer `malloc(size)` returning an
/// i64 address (cast at call sites), with allocations aligned to
/// `malloc_align` and reported to the host for the instance view.
/// Returns the malloc function.
Function* add_runtime(Module& m, u64 malloc_align = 16);

}  // namespace dsprof::scc
