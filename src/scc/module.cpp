#include "scc/module.hpp"

namespace dsprof::scc {

u32 Function::add_var(std::string vname, Type type, bool is_param) {
  for (const auto& v : vars_) {
    DSP_CHECK(v.name != vname, "duplicate variable " + vname + " in " + name_);
  }
  if (is_param) {
    DSP_CHECK(vars_.size() == param_count_, "params must be declared before locals");
    ++param_count_;
  }
  vars_.push_back({std::move(vname), type, is_param});
  return static_cast<u32>(vars_.size() - 1);
}

StructDef* Module::add_struct(std::string name) {
  DSP_CHECK(find_struct(name) == nullptr, "duplicate struct " + name);
  structs_.push_back(std::make_unique<StructDef>(std::move(name)));
  return structs_.back().get();
}

StructDef* Module::find_struct(const std::string& name) {
  for (auto& s : structs_) {
    if (s->name() == name) return s.get();
  }
  return nullptr;
}

u32 Module::add_global(std::string name, Type type, i64 init) {
  for (const auto& g : globals_) {
    DSP_CHECK(g.name != name, "duplicate global " + name);
  }
  Global g;
  g.name = std::move(name);
  g.type = type;
  g.init = init;
  data_size_ = round_up(data_size_, type.align());
  g.offset = data_size_;
  data_size_ += type.size();
  globals_.push_back(std::move(g));
  return static_cast<u32>(globals_.size() - 1);
}

u32 Module::find_global(const std::string& name) const {
  for (size_t i = 0; i < globals_.size(); ++i) {
    if (globals_[i].name == name) return static_cast<u32>(i);
  }
  fail("no global named " + name);
}

Function* Module::add_function(std::string name, Type ret) {
  DSP_CHECK(find_function(name) == nullptr, "duplicate function " + name);
  funcs_.push_back(std::make_unique<Function>(std::move(name), ret));
  return funcs_.back().get();
}

Function* Module::find_function(const std::string& name) {
  for (auto& f : funcs_) {
    if (f->name() == name) return f.get();
  }
  return nullptr;
}

u32 Module::next_line(std::string text) {
  source_[++line_counter_] = std::move(text);
  return line_counter_;
}

}  // namespace dsprof::scc
