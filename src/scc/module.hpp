// Module and Function containers for the scc DSL: structs, globals, and
// function bodies, plus the synthetic source listing (one line per
// statement) that powers the analyzer's annotated-source view.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "scc/ast.hpp"

namespace dsprof::scc {

class Function {
 public:
  struct Var {
    std::string name;
    Type type;
    bool is_param = false;
  };

  Function(std::string name, Type ret) : name_(std::move(name)), ret_(ret) {}

  const std::string& name() const { return name_; }
  Type return_type() const { return ret_; }

  u32 add_var(std::string vname, Type type, bool is_param);
  const std::vector<Var>& vars() const { return vars_; }
  size_t param_count() const { return param_count_; }

  std::vector<Stmt>& body() { return body_; }
  const std::vector<Stmt>& body() const { return body_; }

  void set_decl_line(u32 line) { decl_line_ = line; }
  u32 decl_line() const { return decl_line_; }

 private:
  std::string name_;
  Type ret_;
  std::vector<Var> vars_;  // params first
  size_t param_count_ = 0;
  std::vector<Stmt> body_;
  u32 decl_line_ = 0;
};

class Module {
 public:
  struct Global {
    std::string name;
    Type type;
    i64 init = 0;
    u64 offset = 0;  // within the data segment
  };

  /// Declare a struct type. The returned pointer stays valid for the life of
  /// the module (layout may be adjusted until compile time).
  StructDef* add_struct(std::string name);
  StructDef* find_struct(const std::string& name);
  /// Every declared struct, in declaration order (the opt::apply_plan
  /// surface: enumerate + mutate layouts before code is built).
  const std::vector<std::unique_ptr<StructDef>>& structs() const { return structs_; }

  u32 add_global(std::string name, Type type, i64 init = 0);
  const std::vector<Global>& globals() const { return globals_; }
  const Global& global(u32 idx) const { return globals_[idx]; }
  u32 find_global(const std::string& name) const;
  u64 data_segment_size() const { return data_size_; }

  /// Create a function shell; build its body with a FunctionBuilder.
  Function* add_function(std::string name, Type ret = Type::i64());
  Function* find_function(const std::string& name);
  const std::vector<std::unique_ptr<Function>>& functions() const { return funcs_; }

  /// Allocate the next synthetic source line, recording its text.
  u32 next_line(std::string text);
  const std::map<u32, std::string>& source_lines() const { return source_; }

 private:
  std::vector<std::unique_ptr<StructDef>> structs_;
  std::vector<Global> globals_;
  u64 data_size_ = 0;
  std::vector<std::unique_ptr<Function>> funcs_;
  std::map<u32, std::string> source_;
  u32 line_counter_ = 0;
};

}  // namespace dsprof::scc
