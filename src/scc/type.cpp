#include "scc/type.hpp"

#include <algorithm>

namespace dsprof::scc {

Type Type::pointee() const {
  switch (kind_) {
    case Kind::PtrI64:
      return Type::i64();
    case Kind::PtrU8:
      return Type::byte();
    case Kind::PtrStruct:
      fail("pointee() of a struct pointer is not a scalar; use member access");
    default:
      fail("pointee() on a non-pointer type");
  }
}

std::string Type::display() const {
  switch (kind_) {
    case Kind::I64:
      return alias_.empty() ? "long" : alias_;
    case Kind::U8:
      return "char";
    case Kind::PtrI64:
      return "long *";
    case Kind::PtrU8:
      return "char *";
    case Kind::PtrStruct:
      return sdef_->name() + " *";
  }
  return "?";
}

StructDef& StructDef::field(std::string fname, Type type) {
  for (const auto& f : fields_) {
    DSP_CHECK(f.name != fname, "duplicate field " + fname + " in struct " + name_);
  }
  fields_.push_back({std::move(fname), type});
  order_.push_back(static_cast<u32>(fields_.size() - 1));
  dirty_ = true;
  return *this;
}

void StructDef::set_layout_order(const std::vector<std::string>& names) {
  DSP_CHECK(names.size() == fields_.size(),
            "layout order must name every field of " + name_);
  std::vector<u32> order;
  std::vector<bool> seen(fields_.size(), false);
  for (const auto& n : names) {
    const u32 idx = field_index(n);
    DSP_CHECK(!seen[idx], "field " + n + " repeated in layout order");
    seen[idx] = true;
    order.push_back(idx);
  }
  order_ = std::move(order);
  dirty_ = true;
}

void StructDef::set_pad_to(u64 size) {
  pad_to_ = size;
  dirty_ = true;
}

u32 StructDef::field_index(const std::string& fname) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == fname) return static_cast<u32>(i);
  }
  fail("struct " + name_ + " has no field " + fname);
}

void StructDef::recompute() const {
  offsets_.assign(fields_.size(), 0);
  u64 off = 0;
  u64 max_align = 1;
  for (u32 decl : order_) {
    const Type& t = fields_[decl].type;
    off = round_up(off, t.align());
    offsets_[decl] = off;
    off += t.size();
    max_align = std::max(max_align, t.align());
  }
  size_ = round_up(off, max_align);
  if (pad_to_ > size_) size_ = round_up(pad_to_, max_align);
  dirty_ = false;
}

u64 StructDef::offset_of(u32 decl_index) const {
  DSP_CHECK(decl_index < fields_.size(), "bad field index");
  if (dirty_) recompute();
  return offsets_[decl_index];
}

u64 StructDef::size() const {
  DSP_CHECK(!fields_.empty(), "empty struct " + name_);
  if (dirty_) recompute();
  return size_;
}

sym::TypeId TypeEmitter::struct_id(const StructDef* s) {
  for (const auto& [def, id] : structs_) {
    if (def == s) return id;
  }
  const sym::TypeId id = table_.declare_struct(s->name());
  structs_.emplace_back(s, id);
  return id;
}

sym::TypeId TypeEmitter::scalar_id(const Type& t) {
  std::string key = t.display();
  for (const auto& [k, id] : scalars_) {
    if (k == key) return id;
  }
  sym::TypeId id;
  switch (t.kind()) {
    case Type::Kind::I64:
      if (t.alias().empty()) {
        id = table_.add_base("long", 8);
      } else {
        id = table_.add_alias(t.alias(), scalar_id(Type::i64()));
      }
      break;
    case Type::Kind::U8:
      id = table_.add_base("char", 1);
      break;
    case Type::Kind::PtrI64:
      id = table_.add_pointer(scalar_id(Type::i64()));
      break;
    case Type::Kind::PtrU8:
      id = table_.add_pointer(scalar_id(Type::byte()));
      break;
    case Type::Kind::PtrStruct:
      id = table_.add_pointer(struct_id(t.pointee_struct()));
      break;
    default:
      fail("unhandled scalar type");
  }
  scalars_.emplace_back(std::move(key), id);
  return id;
}

void TypeEmitter::define_all() {
  // structs_ may grow while we emit member types; index loop on purpose.
  for (size_t i = 0; i < structs_.size(); ++i) {
    const StructDef* s = structs_[i].first;
    const sym::TypeId id = structs_[i].second;
    std::vector<sym::Member> members;
    for (u32 decl : s->layout_order()) {
      sym::Member m;
      m.name = s->field_name(decl);
      m.type = scalar_id(s->field_type(decl));
      m.offset = s->offset_of(decl);
      m.size = s->field_type(decl).size();
      members.push_back(std::move(m));
    }
    table_.define_struct(id, s->size(), std::move(members));
  }
}

u32 TypeEmitter::member_index(const StructDef* s, u32 decl_index) {
  const auto& order = s->layout_order();
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == decl_index) return static_cast<u32>(i);
  }
  fail("field not in layout order");
}

}  // namespace dsprof::scc
