// DSL-side type system for the scc compiler: 64-bit integers (optionally
// with a typedef display name, so annotations read "cost_t=long"), bytes,
// pointers to scalars, and pointers to named structs.
//
// The StructDef layout engine implements exactly what the paper's §3.3
// optimization needs: declaration-order natural layout by default, an
// explicit member reordering, and padding to a target size (node: 120 B ->
// reorder hot members together, pad to 128 B so whole objects map into
// 512 B E$ lines).
#pragma once

#include <string>
#include <vector>

#include "support/common.hpp"
#include "sym/types.hpp"

namespace dsprof::scc {

class StructDef;

/// A value/variable type in the DSL.
class Type {
 public:
  enum class Kind : u8 { I64, U8, PtrStruct, PtrI64, PtrU8 };

  static Type i64(std::string alias = "") {
    Type t;
    t.kind_ = Kind::I64;
    t.alias_ = std::move(alias);
    return t;
  }
  static Type byte() {
    Type t;
    t.kind_ = Kind::U8;
    return t;
  }
  static Type ptr(const StructDef* s) {
    DSP_CHECK(s != nullptr, "ptr to null struct");
    Type t;
    t.kind_ = Kind::PtrStruct;
    t.sdef_ = s;
    return t;
  }
  static Type ptr_i64() {
    Type t;
    t.kind_ = Kind::PtrI64;
    return t;
  }
  static Type ptr_u8() {
    Type t;
    t.kind_ = Kind::PtrU8;
    return t;
  }

  Kind kind() const { return kind_; }
  bool is_pointer() const {
    return kind_ == Kind::PtrStruct || kind_ == Kind::PtrI64 || kind_ == Kind::PtrU8;
  }
  bool is_ptr_struct() const { return kind_ == Kind::PtrStruct; }
  const StructDef* pointee_struct() const {
    DSP_CHECK(kind_ == Kind::PtrStruct, "not a struct pointer");
    return sdef_;
  }
  /// Element type a Deref/Index of this pointer yields.
  Type pointee() const;

  u64 size() const { return kind_ == Kind::U8 ? 1 : 8; }
  /// Memory access width when loading/storing a value of this type.
  unsigned mem_size() const { return kind_ == Kind::U8 ? 1 : 8; }
  u64 align() const { return size(); }

  const std::string& alias() const { return alias_; }

  /// C-like spelling for generated source text ("long", "node *").
  std::string display() const;

  bool same_as(const Type& o) const { return kind_ == o.kind_ && sdef_ == o.sdef_; }

 private:
  Kind kind_ = Kind::I64;
  const StructDef* sdef_ = nullptr;
  std::string alias_;
};

/// A named struct with declaration-order fields and a configurable layout.
class StructDef {
 public:
  explicit StructDef(std::string name) : name_(std::move(name)) {}

  StructDef& field(std::string fname, Type type);

  /// Lay members out in the given order instead of declaration order
  /// (the §3.3 "re-arranging the members according to their frequency of
  /// reference" optimization). Every declared field must appear once.
  void set_layout_order(const std::vector<std::string>& names);

  /// Pad the struct to at least `size` bytes (the §3.3 "pad the structure
  /// with an additional 8 bytes" optimization).
  void set_pad_to(u64 size);

  const std::string& name() const { return name_; }
  size_t field_count() const { return fields_.size(); }
  const std::string& field_name(u32 decl_index) const { return fields_[decl_index].name; }
  Type field_type(u32 decl_index) const { return fields_[decl_index].type; }

  /// Declaration index for `fname`; throws if absent.
  u32 field_index(const std::string& fname) const;

  /// Byte offset of a field under the current layout.
  u64 offset_of(u32 decl_index) const;
  u64 offset_of(const std::string& fname) const { return offset_of(field_index(fname)); }

  /// Total size including padding.
  u64 size() const;

  /// Layout order as declaration indices.
  const std::vector<u32>& layout_order() const { return order_; }

 private:
  struct Field {
    std::string name;
    Type type;
  };
  void recompute() const;

  std::string name_;
  std::vector<Field> fields_;
  std::vector<u32> order_;
  u64 pad_to_ = 0;
  // Lazily computed layout.
  mutable bool dirty_ = true;
  mutable std::vector<u64> offsets_;  // by declaration index
  mutable u64 size_ = 0;
};

/// Emits DSL types into a sym::TypeTable, handling recursive struct pointers
/// (node.pred is a node*) via declare-then-define.
class TypeEmitter {
 public:
  explicit TypeEmitter(sym::TypeTable& table) : table_(table) {}

  /// TypeId for a struct; declares a stub on first use.
  sym::TypeId struct_id(const StructDef* s);

  /// Fill in members of every declared struct. Call once after all code has
  /// been generated (new structs may be declared lazily by memory ops).
  void define_all();

  /// TypeId for a scalar or pointer DSL type.
  sym::TypeId scalar_id(const Type& t);

  /// Emitted member index (layout order) for a declaration-order field index.
  static u32 member_index(const StructDef* s, u32 decl_index);

 private:
  sym::TypeTable& table_;
  std::vector<std::pair<const StructDef*, sym::TypeId>> structs_;
  std::vector<std::pair<std::string, sym::TypeId>> scalars_;
};

}  // namespace dsprof::scc
