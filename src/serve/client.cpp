#include "serve/client.hpp"

#include <chrono>
#include <thread>

namespace dsprof::serve {

Client::Client(std::unique_ptr<Transport> transport, ClientOptions options)
    : transport_(std::move(transport)), opt_(options) {}

Client::~Client() {
  if (transport_) transport_->shutdown();
}

Status Client::recv_expect(FrameType want, Frame& out) {
  std::vector<u8> buf(64 * 1024);
  unsigned attempts = 0;
  unsigned backoff = opt_.backoff_ms;
  for (;;) {
    Frame f;
    while (frames_.next_frame(f)) {
      if (f.type == FrameType::Error) {
        Status carried;
        if (Status st = decode_error(f.payload, carried); !st.ok()) return st;
        return carried;
      }
      if (f.type == want) {
        out = std::move(f);
        return {};
      }
      // Frames of other types in a strictly request/response conversation
      // mean the two sides fell out of step.
      return Status::make(StatusCode::Refused,
                          std::string("expected ") + frame_type_name(want) + ", got " +
                              frame_type_name(f.type));
    }
    size_t got = 0;
    Status st = transport_->recv_some(buf.data(), buf.size(), got, opt_.recv_timeout_ms);
    if (st.code == StatusCode::Timeout) {
      // The one transient failure: wait out a slow reducer with backoff.
      if (attempts++ >= opt_.max_retries) return st;
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff *= 2;
      continue;
    }
    if (!st.ok()) return st;
    if (Status fst = frames_.feed(buf.data(), got); !fst.ok()) return fst;
  }
}

Status Client::hello(const HelloPayload& h, u64& session_id) {
  const std::vector<u8> bytes = encode_frame(FrameType::Hello, encode_hello(h));
  if (Status st = transport_->send(bytes.data(), bytes.size()); !st.ok()) return st;
  Frame ack;
  if (Status st = recv_expect(FrameType::HelloAck, ack); !st.ok()) return st;
  if (Status st = decode_hello_ack(ack.payload, session_id); !st.ok()) return st;
  session_id_ = session_id;
  return {};
}

Status Client::hello(const experiment::Experiment& ex, u64& session_id) {
  HelloPayload h;
  h.client_name = opt_.client_name;
  h.image = ex.image;
  h.counters = ex.counters;
  h.clock_interval = ex.clock_interval;
  h.clock_hz = ex.clock_hz;
  h.page_size = ex.page_size;
  h.ec_line_size = ex.ec_line_size;
  h.total_cycles = ex.total_cycles;
  h.total_instructions = ex.total_instructions;
  h.slices = ex.slices;
  return hello(h, session_id);
}

Status Client::send_batch(const experiment::EventStore& events, size_t begin, size_t end) {
  const std::vector<u8> bytes =
      encode_frame(FrameType::EventBatch, encode_event_batch(events, begin, end));
  return transport_->send(bytes.data(), bytes.size());
}

Status Client::send_allocations(const std::vector<machine::AllocRecord>& allocs) {
  const std::vector<u8> bytes = encode_frame(FrameType::Alloc, encode_allocs(allocs));
  return transport_->send(bytes.data(), bytes.size());
}

Status Client::flush(Accounting& acct) {
  const std::vector<u8> bytes = encode_frame(FrameType::Flush, {});
  if (Status st = transport_->send(bytes.data(), bytes.size()); !st.ok()) return st;
  Frame f;
  if (Status st = recv_expect(FrameType::FlushAck, f); !st.ok()) return st;
  return decode_flush_ack(f.payload, acct);
}

Status Client::snapshot(Accounting& acct, std::string& json_report) {
  const std::vector<u8> bytes = encode_frame(FrameType::SnapshotReq, {});
  if (Status st = transport_->send(bytes.data(), bytes.size()); !st.ok()) return st;
  Frame f;
  if (Status st = recv_expect(FrameType::Snapshot, f); !st.ok()) return st;
  return decode_snapshot(f.payload, acct, json_report);
}

Status Client::merged_snapshot(Accounting& acct, std::string& json_report) {
  const std::vector<u8> bytes =
      encode_frame(FrameType::SnapshotReq, {}, kSnapshotMergedFlag);
  if (Status st = transport_->send(bytes.data(), bytes.size()); !st.ok()) return st;
  Frame f;
  if (Status st = recv_expect(FrameType::Snapshot, f); !st.ok()) return st;
  return decode_snapshot(f.payload, acct, json_report);
}

Status Client::server_stats(std::string& json) {
  const std::vector<u8> bytes = encode_frame(FrameType::StatsReq, {});
  if (Status st = transport_->send(bytes.data(), bytes.size()); !st.ok()) return st;
  Frame f;
  if (Status st = recv_expect(FrameType::Stats, f); !st.ok()) return st;
  return decode_stats(f.payload, json);
}

Status Client::close(Accounting& acct) {
  if (closed_) return {};
  const std::vector<u8> bytes = encode_frame(FrameType::Close, {});
  if (Status st = transport_->send(bytes.data(), bytes.size()); !st.ok()) return st;
  Frame f;
  if (Status st = recv_expect(FrameType::CloseAck, f); !st.ok()) return st;
  closed_ = true;
  return decode_flush_ack(f.payload, acct);
}

Status stream_experiment(Client& c, const experiment::Experiment& ex, size_t batch_events,
                         Accounting& acct) {
  if (batch_events == 0) batch_events = 8192;
  u64 session_id = 0;
  if (Status st = c.hello(ex, session_id); !st.ok()) return st;
  if (!ex.allocations.empty()) {
    if (Status st = c.send_allocations(ex.allocations); !st.ok()) return st;
  }
  for (size_t begin = 0; begin < ex.events.size(); begin += batch_events) {
    const size_t end = std::min(ex.events.size(), begin + batch_events);
    if (Status st = c.send_batch(ex.events, begin, end); !st.ok()) return st;
  }
  return c.flush(acct);
}

}  // namespace dsprof::serve
