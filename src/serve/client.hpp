// Collector-side client for the dsprofd wire protocol.
//
// A Client wraps a connected Transport and drives the request/response
// conversation: hello() handshakes (image + counter specs), send_batch()
// streams columnar event batches, flush() is a fold barrier, snapshot()
// fetches the rendered JSON report, close() finalizes the session.
//
// Retry policy: only Timeout is transient (status.hpp). Requests that
// expect a reply retry the *receive* with exponential backoff up to
// `max_retries`; the request frame itself is never re-sent (the server
// answers every request exactly once, so re-sending would desynchronize
// the conversation — a lost connection surfaces as Disconnected, which is
// terminal). Batch sends block on transport backpressure by design: under
// the server's Block overload policy that is exactly the flow control the
// paper-scale firehose needs.
#pragma once

#include <memory>
#include <string>

#include "serve/transport.hpp"
#include "serve/wire.hpp"

namespace dsprof::serve {

struct ClientOptions {
  /// Per-recv timeout; total per request ~= sum of backoff'd attempts.
  int recv_timeout_ms = 2000;
  /// Timeout retries per request (exponential backoff between attempts).
  unsigned max_retries = 3;
  /// First backoff sleep; doubles each retry.
  unsigned backoff_ms = 10;
  std::string client_name = "dsprof-client";
};

class Client {
 public:
  explicit Client(std::unique_ptr<Transport> transport, ClientOptions options = {});
  ~Client();

  /// Handshake; fills `session_id` from the HelloAck.
  Status hello(const HelloPayload& h, u64& session_id);

  /// Convenience: build the HelloPayload from an experiment's context.
  Status hello(const experiment::Experiment& ex, u64& session_id);

  /// Stream events [begin, end) of `events` as one EventBatch frame,
  /// serialized straight from the source store's columns (serialize_range —
  /// no intermediate sub-store). Fire-and-forget: blocks only on transport
  /// backpressure.
  Status send_batch(const experiment::EventStore& events, size_t begin, size_t end);
  Status send_batch(const experiment::EventStore& events) {
    return send_batch(events, 0, events.size());
  }

  Status send_allocations(const std::vector<machine::AllocRecord>& allocs);

  /// Barrier: returns once the server has folded everything sent so far.
  Status flush(Accounting& acct);

  /// Fetch the rendered JSON report of the live aggregates (reports.hpp's
  /// render_json_report — byte-identical to offline `er_print -J` over the
  /// same events when nothing was dropped).
  Status snapshot(Accounting& acct, std::string& json_report);

  /// Fetch the merged *fleet* view (SnapshotReq with kSnapshotMergedFlag):
  /// every retained session on the daemon — completed and in-flight —
  /// reduced into one multi-experiment report, byte-identical to an offline
  /// multi-dir `er_print -J` over the same events. Needs no preceding
  /// hello(): a monitoring client can connect, query and close. `acct` sums
  /// the merged sessions' accounting triples.
  Status merged_snapshot(Accounting& acct, std::string& json_report);

  /// Server-wide introspection counters as JSON.
  Status server_stats(std::string& json);

  /// Graceful close; final accounting from the CloseAck.
  Status close(Accounting& acct);

  u64 session_id() const { return session_id_; }

 private:
  /// Receive frames until one of type `want` arrives (retrying timeouts
  /// with backoff); an Error frame from the server is decoded and returned
  /// as its carried status.
  Status recv_expect(FrameType want, Frame& out);

  std::unique_ptr<Transport> transport_;
  ClientOptions opt_;
  FrameReader frames_;
  u64 session_id_ = 0;
  bool closed_ = false;
};

/// Slice an experiment's events into `batch_events`-sized EventBatch frames
/// and stream the whole run (hello, allocations, batches, flush). Returns
/// the accounting at the final flush barrier. This is the dsprof_send path
/// and the replay harness for tests/bench.
Status stream_experiment(Client& c, const experiment::Experiment& ex, size_t batch_events,
                         Accounting& acct);

}  // namespace dsprof::serve
