#include "serve/server.hpp"

#include <cstdio>

#include "analyze/analysis.hpp"
#include "analyze/reports.hpp"
#include "obs/obs.hpp"

namespace dsprof::serve {

namespace {

using obs::now_ns;

// Self-observability (src/obs/): per-session reader/reducer queue health.
// Counters tally the same quantities the Accounting triple carries, so the
// obs snapshot and the Stats frame can be cross-checked; the histograms add
// what a single triple cannot show — queue-depth and wait-time
// distributions under load.
const obs::Counter& c_batches_in() {
  static const obs::Counter c = obs::counter("serve.batches.in");
  return c;
}
const obs::Counter& c_events_in() {
  static const obs::Counter c = obs::counter("serve.events.in");
  return c;
}
const obs::Counter& c_events_dropped() {
  static const obs::Counter c = obs::counter("serve.events.dropped");
  return c;
}
const obs::Counter& c_snapshots() {
  static const obs::Counter c = obs::counter("serve.snapshots");
  return c;
}
const obs::Histogram& h_queue_depth() {
  static const obs::Histogram h = obs::histogram("serve.queue.depth");
  return h;
}
const obs::Histogram& h_queue_wait_ns() {
  static const obs::Histogram h = obs::histogram("serve.queue.wait_ns");
  return h;
}
const obs::Histogram& h_reduce_ns() {
  static const obs::Histogram h = obs::histogram("serve.reduce.fold_ns");
  return h;
}
const obs::Counter& c_direct_folds() {
  static const obs::Counter c = obs::counter("serve.direct_folds");
  return c;
}
const obs::Counter& c_merged_snapshots() {
  static const obs::Counter c = obs::counter("serve.snapshots.merged");
  return c;
}
const obs::Counter& c_sessions_evicted() {
  static const obs::Counter c = obs::counter("serve.sessions.evicted");
  return c;
}
const obs::Gauge& g_sessions_retained() {
  static const obs::Gauge g = obs::gauge("serve.sessions.retained");
  return g;
}
const obs::SpanName& fold_span() {
  // Shared by the reducer thread and the reader's queue-free path: either
  // way a fold is a "serve.fold" span, so span-based gates see one fold per
  // batch regardless of which thread ran it.
  static const obs::SpanName s = obs::span_name("serve.fold");
  return s;
}

Status send_frame(Transport& t, FrameType type, const std::vector<u8>& payload) {
  const std::vector<u8> bytes = encode_frame(type, payload);
  return t.send(bytes.data(), bytes.size());
}

}  // namespace

std::string ServerStats::to_json() const {
  std::string s = "{";
  const auto field = [&s](const char* k, u64 v, bool last = false) {
    s += std::string("\"") + k + "\":" + std::to_string(v) + (last ? "" : ",");
  };
  field("sessions_total", sessions_total);
  field("sessions_active", sessions_active);
  field("frames_in", frames_in);
  field("batches_in", batches_in);
  field("events_in", events_in);
  field("events_reduced", events_reduced);
  field("events_dropped", events_dropped);
  field("snapshots", snapshots);
  field("max_queue_depth", max_queue_depth);
  field("reduce_calls", reduce_calls);
  field("reduce_ns", reduce_ns);
  field("direct_folds", direct_folds);
  field("sessions_retained", sessions_retained);
  field("sessions_evicted", sessions_evicted);
  // Rolling-window self-profile: what the daemon did over the trailing
  // stats_window_ms, so an always-on monitor reads current load without
  // differencing cumulative counters itself.
  char wbuf[256];
  std::snprintf(wbuf, sizeof wbuf,
                "\"window\":{\"ms\":%llu,\"sessions\":%llu,\"events_in\":%llu,"
                "\"events_reduced\":%llu,\"events_dropped\":%llu,\"snapshots\":%llu,"
                "\"events_per_sec\":%.1f},",
                static_cast<unsigned long long>(window_ms),
                static_cast<unsigned long long>(window_sessions),
                static_cast<unsigned long long>(window_events_in),
                static_cast<unsigned long long>(window_events_reduced),
                static_cast<unsigned long long>(window_events_dropped),
                static_cast<unsigned long long>(window_snapshots),
                window_events_per_sec);
  s += wbuf;
  // Extended Stats frame: the daemon's own obs snapshot rides along, so a
  // remote `dsprof_send --stats` sees queue/latency distributions, not just
  // the aggregate triple.
  s += "\"obs\":" + obs::snapshot().to_json();
  s += "}";
  return s;
}

struct Server::Session {
  u64 id = 0;
  std::unique_ptr<Transport> transport;
  FrameReader frames;

  // Handshake result: the rendering context a snapshot Analysis needs.
  // hello_done is written once by the reader under qmu (after ex and the
  // reducer are fully built) and read under qmu by merged_report, which
  // makes the context fields immutable-after-publish for cross-thread
  // readers; ex.allocations — the one context field that grows mid-session
  // — is appended under qmu too.
  bool hello_done = false;
  bool closing = false;
  bool evicted = false;  // guarded by Server::mu_ (retention)
  experiment::Experiment ex;  // events stay empty; batches live in the queue
  std::unique_ptr<analyze::IncrementalReducer> reducer;

  // Bounded batch queue, reader -> reducer.
  std::mutex qmu;
  std::condition_variable qcv;       // reducer waits: batch available or stop
  std::condition_variable space_cv;  // reader waits under Block policy
  std::condition_variable drain_cv;  // reader waits: queue empty + reducer idle
  /// Queued batch plus its enqueue timestamp (queue wait accounting).
  struct QueuedBatch {
    experiment::EventStore store;
    u64 enq_ns = 0;
  };
  std::deque<QueuedBatch> queue;
  bool reducing = false;
  bool stop = false;

  // Accounting (guarded by qmu; events_reduced mirrors the reducer's fold
  // counter so stats can be read while a fold is in flight). The invariant —
  // after any drain, events_in == events_reduced + events_dropped — holds
  // because every enqueued event is eventually either folded or
  // evicted-and-counted.
  u64 events_in = 0;
  u64 events_reduced = 0;
  u64 events_dropped = 0;
  u64 batches_in = 0;
  u64 frames_in = 0;
  u64 snapshots = 0;
  u64 max_queue_depth = 0;
  u64 reduce_calls = 0;
  u64 reduce_ns = 0;
  u64 direct_folds = 0;

  bool finalized = false;
  std::thread reader_thread;
  std::thread reducer_thread;

  /// Wait until every queued batch has been folded (the snapshot barrier).
  void drain() {
    std::unique_lock<std::mutex> lock(qmu);
    drain_cv.wait(lock, [&] { return queue.empty() && !reducing; });
  }

  Accounting accounting() {
    std::lock_guard<std::mutex> lock(qmu);
    return {events_in, events_reduced, events_dropped};
  }
};

Server::Server(ServerOptions options) : opt_(options) {}

Server::~Server() { stop(); }

namespace {
const obs::Gauge& g_sessions_active() {
  static const obs::Gauge g = obs::gauge("serve.sessions.active");
  return g;
}
}  // namespace

u64 Server::add_session(std::unique_ptr<Transport> transport) {
  std::lock_guard<std::mutex> lock(mu_);
  auto s = std::make_unique<Session>();
  s->id = next_session_id_++;
  s->transport = std::move(transport);
  Session& ref = *s;
  sessions_.push_back(std::move(s));
  i64 active = 0;
  for (const auto& sp : sessions_) active += sp->finalized ? 0 : 1;
  g_sessions_active().set(active);
  ref.reducer_thread = std::thread([this, &ref] { reducer_main(ref); });
  ref.reader_thread = std::thread([this, &ref] { reader_main(ref); });
  return ref.id;
}

void Server::serve(Listener& listener) {
  while (!stopping_.load()) {
    Status st;
    auto t = listener.accept(st, /*timeout_ms=*/200);
    if (t) {
      add_session(std::move(t));
      continue;
    }
    if (st.code == StatusCode::Timeout) continue;  // poll the stop flag
    break;  // listener closed or failed
  }
}

void Server::reader_main(Session& s) {
  std::vector<u8> buf(64 * 1024);

  const auto handle_frame = [&](Frame& f) -> Status {
    switch (f.type) {
      case FrameType::Hello: {
        if (s.hello_done)
          return Status::make(StatusCode::Refused, "duplicate Hello");
        HelloPayload h;
        if (Status st = decode_hello(f.payload, h); !st.ok()) return st;
        s.ex.log = "dsprofd streamed session from '" + h.client_name + "'";
        s.ex.image = std::move(h.image);
        s.ex.counters = h.counters;
        s.ex.clock_interval = h.clock_interval;
        s.ex.clock_hz = h.clock_hz;
        s.ex.page_size = h.page_size;
        s.ex.ec_line_size = h.ec_line_size;
        s.ex.total_cycles = h.total_cycles;
        s.ex.total_instructions = h.total_instructions;
        s.ex.slices = h.slices;
        s.reducer = std::make_unique<analyze::IncrementalReducer>(s.ex.image.symtab,
                                                                  s.ex.counters);
        {
          // Publish: merged_report reads hello_done under qmu and may then
          // touch ex and the reducer from another thread.
          std::lock_guard<std::mutex> lock(s.qmu);
          s.hello_done = true;
        }
        return send_frame(*s.transport, FrameType::HelloAck, encode_hello_ack(s.id));
      }
      case FrameType::EventBatch: {
        if (!s.hello_done)
          return Status::make(StatusCode::Refused, "EventBatch before Hello");
        experiment::EventStore batch;
        if (Status st = decode_event_batch(std::move(f.payload), batch); !st.ok()) return st;
        if (opt_.max_batch_events != 0 && batch.size() > opt_.max_batch_events)
          return Status::make(StatusCode::Refused,
                              "batch of " + std::to_string(batch.size()) +
                                  " events exceeds per-batch cap");
        const u64 n = batch.size();
        std::unique_lock<std::mutex> lock(s.qmu);
        // Queue-free fast path: the reducer is idle and nothing is queued,
        // so fold right here in the reader thread and skip the queue hop
        // entirely. Holding `reducing` keeps the drain barrier honest; the
        // reader is the only enqueuer, so the queue stays empty until the
        // fold finishes and fold order is preserved. The before_reduce test
        // seam forces the queued path — overload tests rely on stalling the
        // reducer thread while the reader keeps enqueuing.
        if (opt_.direct_fold && !opt_.before_reduce && s.queue.empty() && !s.reducing) {
          s.events_in += n;
          s.batches_in += 1;
          s.reducing = true;
          lock.unlock();
          c_events_in().add(n);
          c_batches_in().add();
          const u64 t0 = now_ns();
          u64 folded = n;
          {
            const obs::ScopedSpan span(fold_span());
            try {
              s.reducer->fold(batch, 0, batch.size());
            } catch (const Error&) {
              // Same defensive stance as the reducer thread: a fold
              // invariant accounts the batch as dropped, never kills the
              // daemon (fold bumps its counter only on success).
              folded = 0;
            }
          }
          const u64 t1 = now_ns();
          h_reduce_ns().record(t1 - t0);
          lock.lock();
          s.reducing = false;
          if (folded != 0) s.events_reduced += folded;
          else s.events_dropped += n;
          s.reduce_calls += 1;
          s.reduce_ns += t1 - t0;
          s.direct_folds += 1;
          c_direct_folds().add();
          if (s.queue.empty()) s.drain_cv.notify_all();
          return {};
        }
        if (s.queue.size() >= opt_.max_queued_batches) {
          if (opt_.overload == ServerOptions::Overload::DropOldest) {
            // Evict the oldest queued batch; its events are accounted as
            // dropped, which the snapshot surfaces as "(Dropped)".
            s.events_dropped += s.queue.front().store.size();
            c_events_dropped().add(s.queue.front().store.size());
            s.queue.pop_front();
          } else {
            // Block: stop reading until the reducer makes room. The pipe /
            // socket buffer fills behind us — that is the backpressure the
            // client feels.
            s.space_cv.wait(lock, [&] {
              return s.stop || s.queue.size() < opt_.max_queued_batches;
            });
            if (s.stop) return Status::make(StatusCode::Disconnected, "session stopping");
          }
        }
        s.events_in += n;
        s.batches_in += 1;
        s.queue.push_back(Session::QueuedBatch{std::move(batch), now_ns()});
        s.max_queue_depth = std::max<u64>(s.max_queue_depth, s.queue.size());
        c_events_in().add(n);
        c_batches_in().add();
        h_queue_depth().record(s.queue.size());
        s.qcv.notify_one();
        return {};
      }
      case FrameType::Alloc: {
        if (!s.hello_done)
          return Status::make(StatusCode::Refused, "Alloc before Hello");
        std::vector<machine::AllocRecord> allocs;
        if (Status st = decode_allocs(f.payload, allocs); !st.ok()) return st;
        {
          // merged_report reads the allocation log from other threads.
          std::lock_guard<std::mutex> lock(s.qmu);
          s.ex.allocations.insert(s.ex.allocations.end(), allocs.begin(), allocs.end());
        }
        return {};
      }
      case FrameType::Flush: {
        if (!s.hello_done) return Status::make(StatusCode::Refused, "Flush before Hello");
        s.drain();
        return send_frame(*s.transport, FrameType::FlushAck,
                          encode_flush_ack(s.accounting()));
      }
      case FrameType::SnapshotReq: {
        if ((f.flags & kSnapshotMergedFlag) != 0) {
          // Fleet view: merge every retained session (no Hello required —
          // a monitoring client can connect just to ask).
          std::string json;
          Accounting macct;
          if (Status st = merged_report(json, macct); !st.ok()) return st;
          {
            std::lock_guard<std::mutex> lock(s.qmu);
            s.snapshots += 1;
          }
          c_snapshots().add();
          c_merged_snapshots().add();
          return send_frame(*s.transport, FrameType::Snapshot, encode_snapshot(macct, json));
        }
        if (!s.hello_done)
          return Status::make(StatusCode::Refused, "SnapshotReq before Hello");
        s.drain();
        const Accounting acct = s.accounting();
        // Deep-copy the live aggregates between folds and render through the
        // same Analysis + render_json_report path `er_print -J` uses: the
        // snapshot is byte-identical to an offline report over these events.
        static const obs::SpanName kSnapshotSpan = obs::span_name("serve.snapshot");
        const obs::ScopedSpan span(kSnapshotSpan);
        analyze::Analysis a(s.ex, s.reducer->snapshot());
        const std::string json = analyze::render_json_report(a, acct.events_dropped);
        {
          std::lock_guard<std::mutex> lock(s.qmu);
          s.snapshots += 1;
        }
        c_snapshots().add();
        return send_frame(*s.transport, FrameType::Snapshot, encode_snapshot(acct, json));
      }
      case FrameType::StatsReq:
        return send_frame(*s.transport, FrameType::Stats, encode_stats(stats().to_json()));
      case FrameType::Close: {
        if (s.hello_done) s.drain();  // final accounting must be complete
        s.closing = true;
        return send_frame(*s.transport, FrameType::CloseAck,
                          encode_flush_ack(s.accounting()));
      }
      default:
        return Status::make(StatusCode::Refused,
                            std::string("unexpected frame type ") +
                                frame_type_name(f.type));
    }
  };

  for (;;) {
    size_t got = 0;
    Status st = s.transport->recv_some(buf.data(), buf.size(), got, /*timeout_ms=*/-1);
    if (!st.ok()) break;  // disconnect / shutdown: finalize below
    st = s.frames.feed(buf.data(), got);
    {
      std::lock_guard<std::mutex> lock(s.qmu);
      s.frames_in = s.frames.frames_decoded();
    }
    bool fatal = false;
    if (!st.ok()) {
      // Framing corruption: tell the client why, then drop the session.
      (void)send_frame(*s.transport, FrameType::Error, encode_error(st));
      fatal = true;
    } else {
      Frame f;
      while (s.frames.next_frame(f)) {
        try {
          st = handle_frame(f);
        } catch (const Error& e) {
          // Analyzer invariants tripped by hostile payloads surface as a
          // clean per-session error, never a daemon crash.
          st = Status::make(StatusCode::Malformed, e.what());
        }
        if (!st.ok()) {
          if (st.code != StatusCode::Disconnected)
            (void)send_frame(*s.transport, FrameType::Error, encode_error(st));
          fatal = true;
          break;
        }
        if (s.closing) break;
      }
    }
    if (fatal || s.closing) break;
  }

  // A partial frame still buffered here is the mid-batch disconnect case:
  // those bytes never decoded into events, so they are simply discarded —
  // they appear in no counter, keeping the accounting exact.
  finalize(s);
}

void Server::reducer_main(Session& s) {
  for (;;) {
    experiment::EventStore batch;
    u64 enq_ns = 0;
    {
      std::unique_lock<std::mutex> lock(s.qmu);
      s.qcv.wait(lock, [&] { return s.stop || !s.queue.empty(); });
      if (s.queue.empty()) break;  // stop requested and fully drained
      batch = std::move(s.queue.front().store);
      enq_ns = s.queue.front().enq_ns;
      s.queue.pop_front();
      s.reducing = true;
      s.space_cv.notify_one();
    }
    if (opt_.before_reduce) opt_.before_reduce(s.id);
    const u64 t0 = now_ns();
    h_queue_wait_ns().record(t0 - enq_ns);
    const obs::ScopedSpan span(fold_span());
    u64 folded = batch.size();
    try {
      s.reducer->fold(batch, 0, batch.size());
    } catch (const Error&) {
      // Defensive: EventStore::deserialize already validated the batch, but
      // a long-lived daemon must not die on a fold invariant. The batch is
      // accounted as dropped (fold bumps its counter only on success), so
      // events_in == events_reduced + events_dropped still holds.
      folded = 0;
    }
    const u64 t1 = now_ns();
    h_reduce_ns().record(t1 - t0);
    {
      std::lock_guard<std::mutex> lock(s.qmu);
      s.reducing = false;
      if (folded != 0) s.events_reduced += folded;
      else s.events_dropped += batch.size();
      s.reduce_calls += 1;
      s.reduce_ns += t1 - t0;
      if (s.queue.empty()) s.drain_cv.notify_all();
    }
  }
  std::lock_guard<std::mutex> lock(s.qmu);
  s.drain_cv.notify_all();
}

void Server::finalize(Session& s) {
  {
    std::lock_guard<std::mutex> lock(s.qmu);
    s.stop = true;
    s.qcv.notify_all();
    s.space_cv.notify_all();
  }
  s.reducer_thread.join();  // drains the queue first (fold-before-exit)
  s.transport->shutdown();
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.finalized = true;
    evict_locked();
    i64 active = 0;
    for (const auto& sp : sessions_) active += sp->finalized ? 0 : 1;
    g_sessions_active().set(active);
    // A completed session is a load event worth a window sample even when
    // nobody is polling Stats just now.
    (void)stats_locked();
  }
  session_done_cv_.notify_all();
}

void Server::evict_locked() {
  size_t retained = 0;
  for (const auto& sp : sessions_)
    if (sp->finalized && !sp->evicted) ++retained;
  for (auto& sp : sessions_) {
    if (retained <= opt_.retain_sessions) break;
    if (!sp->finalized || sp->evicted) continue;
    // Oldest first (sessions_ is in id order). Free the aggregates and the
    // rendering context — the bulk of a completed session's footprint; the
    // accounting counters stay, so cumulative stats never move backwards.
    // The session's threads are done (finalized) and merged_report skips
    // evicted sessions under mu_, so nobody can be reading these.
    sp->evicted = true;
    sp->reducer.reset();
    sp->ex = experiment::Experiment();
    ++sessions_evicted_;
    c_sessions_evicted().add();
    --retained;
  }
  g_sessions_retained().set(static_cast<i64>(retained));
}

Status Server::merged_report(std::string& json, Accounting& acct) {
  // One consistent cut across the fleet: hold mu_ (freezing admission and
  // retention) plus every included session's queue lock, each session
  // drained to a fold boundary, for the whole copy-merge-render. Lock
  // order is mu_ then qmu in session-id order; no thread acquires a second
  // lock while holding a qmu, so the ordering is acyclic. Draining a
  // session waits on its reducer thread, which needs only its own qmu —
  // released by the wait — so progress is independent of the locks already
  // held here.
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<Session*> included;
  std::vector<std::unique_lock<std::mutex>> qlocks;
  for (auto& sp : sessions_) {
    if (sp->evicted) continue;
    std::unique_lock<std::mutex> ql(sp->qmu);
    if (!sp->hello_done) continue;
    sp->drain_cv.wait(ql, [&] { return sp->queue.empty() && !sp->reducing; });
    included.push_back(sp.get());
    qlocks.push_back(std::move(ql));
  }
  if (included.empty())
    return Status::make(StatusCode::Refused, "no sessions to merge");

  static const obs::SpanName kMergedSpan = obs::span_name("serve.snapshot.merged");
  const obs::ScopedSpan span(kMergedSpan);
  std::vector<analyze::ReductionResult> parts;
  std::vector<const experiment::Experiment*> exps;
  parts.reserve(included.size());
  exps.reserve(included.size());
  acct = {};
  for (Session* s : included) {
    parts.push_back(s->reducer->snapshot());
    exps.push_back(&s->ex);
    acct.events_in += s->events_in;
    acct.events_reduced += s->events_reduced;
    acct.events_dropped += s->events_dropped;
  }
  std::vector<const analyze::ReductionResult*> part_ptrs;
  part_ptrs.reserve(parts.size());
  for (const auto& p : parts) part_ptrs.push_back(&p);
  // merge_results + the multi-experiment precomputed Analysis render the
  // exact bytes an offline multi-dir `er_print -J` over the same events
  // would (the cross-session extension of the bit-identity invariant).
  analyze::Analysis a(exps, analyze::merge_results(part_ptrs));
  json = analyze::render_json_report(a, acct.events_dropped);
  return {};
}

void Server::wait_session(u64 id) {
  std::unique_lock<std::mutex> lock(mu_);
  session_done_cv_.wait(lock, [&] {
    for (const auto& s : sessions_)
      if (s->id == id) return s->finalized;
    return true;  // unknown id: nothing to wait for
  });
}

void Server::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  session_done_cv_.wait(lock, [&] {
    for (const auto& s : sessions_)
      if (!s->finalized) return false;
    return true;
  });
}

void Server::stop() {
  stopping_.store(true);
  std::vector<Session*> open;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& s : sessions_) open.push_back(s.get());
  }
  for (Session* s : open) s->transport->shutdown();  // unblock readers
  for (Session* s : open) {
    if (s->reader_thread.joinable()) s->reader_thread.join();
    // finalize() already joined the reducer from the reader thread.
  }
}

size_t Server::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& s : sessions_)
    if (!s->finalized) ++n;
  return n;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_locked();
}

ServerStats Server::stats_locked() const {
  ServerStats st;
  st.sessions_total = sessions_.size();
  for (const auto& s : sessions_) {
    if (!s->finalized) ++st.sessions_active;
    std::lock_guard<std::mutex> lock(s->qmu);
    st.frames_in += s->frames_in;
    st.batches_in += s->batches_in;
    st.events_in += s->events_in;
    st.events_reduced += s->events_reduced;
    st.events_dropped += s->events_dropped;
    st.snapshots += s->snapshots;
    st.max_queue_depth = std::max(st.max_queue_depth, s->max_queue_depth);
    st.reduce_calls += s->reduce_calls;
    st.reduce_ns += s->reduce_ns;
    st.direct_folds += s->direct_folds;
  }
  st.sessions_evicted = sessions_evicted_;
  for (const auto& s : sessions_)
    if (s->finalized && !s->evicted) ++st.sessions_retained;

  // Advance the rolling window: sample the cumulative counters now, prune
  // points that fell out of the trailing window (keeping the newest such
  // point as the baseline so the delta spans the whole window), and report
  // deltas against the baseline.
  st.window_ms = opt_.stats_window_ms;
  const u64 now = now_ns();
  window_.push_back(WindowPoint{now, st.sessions_total, st.events_in, st.events_reduced,
                                st.events_dropped, st.snapshots});
  const u64 span_ns = opt_.stats_window_ms * 1'000'000ull;
  while (window_.size() >= 2 && now - window_[1].t_ns >= span_ns) window_.pop_front();
  const WindowPoint& base = window_.front();
  st.window_sessions = st.sessions_total - base.sessions_total;
  st.window_events_in = st.events_in - base.events_in;
  st.window_events_reduced = st.events_reduced - base.events_reduced;
  st.window_events_dropped = st.events_dropped - base.events_dropped;
  st.window_snapshots = st.snapshots - base.snapshots;
  const double secs = static_cast<double>(now - base.t_ns) / 1e9;
  st.window_events_per_sec =
      secs > 0 ? static_cast<double>(st.window_events_in) / secs : 0.0;
  return st;
}

}  // namespace dsprof::serve
