// dsprofd: the profiling daemon (DESIGN.md §3.3).
//
// A Server owns any number of concurrent Sessions, one per connected
// collector client. Each session runs two threads:
//
//   reader   recv bytes -> FrameReader -> decode frames. Control frames
//            (Flush/SnapshotReq/StatsReq/Close) are answered inline;
//            EventBatch/Alloc frames are validated and enqueued.
//   reducer  pops decoded batches from a bounded queue and folds them into
//            an IncrementalReducer (analyze/reduction.hpp) — the *online*
//            aggregates. Because the fold accumulates integer weights, the
//            live aggregates after any batch split are bit-identical to one
//            offline reduction over the same events (the serve subsystem's
//            central invariant; tests/serve_test.cpp proves it property-
//            style, tests/integration_test.cpp on the MCF workload).
//
// Queue-free fast path: when `direct_fold` is on (the default) and the
// reducer keeps up — queue empty, reducer idle, no before_reduce seam
// installed — the reader folds a decoded batch inline instead of paying the
// enqueue/wake/dequeue hop. The `reducing` flag is held while it folds, so
// the reducer thread, drain barrier and accounting are untouched; under
// backlog the batch takes the queued path with the exact same overload and
// drop accounting as before. Folds are still strictly ordered (one fold at
// a time per session), so aggregates remain bit-identical either way.
//
// Overload: the batch queue holds at most `max_queued_batches`. When the
// reducer falls behind, the policy decides:
//
//   DropOldest  (default) evict the oldest queued batch and count its
//               events as dropped. Snapshots stay available under overload
//               and the loss is surfaced: the accounting triple satisfies
//               events_in == events_reduced + events_dropped exactly, and
//               the JSON report grows a "(Dropped)" row (reports.hpp).
//   Block       the reader stops reading; backpressure propagates through
//               the transport to the client's send() (a full pipe/socket),
//               which either waits or times out and retries. No loss.
//
// Snapshot protocol: SnapshotReq first *drains* (waits until the queue is
// empty and the reducer is idle), then renders views from a deep copy of
// the live aggregates via Analysis's precomputed-result constructor. The
// drain barrier means a client that sends batches then SnapshotReq sees
// every event it sent (minus accounted drops) — no torn reads, because the
// copy is taken between folds, never during one.
//
// Disconnect mid-batch: the partial frame buffered in the FrameReader is
// discarded, complete frames already queued are still folded, and the
// session finalizes with the accounting invariant intact.
//
// Fleet view (merged_report / SnapshotReq with kSnapshotMergedFlag): the
// aggregates of every retained session — completed and in-flight — merge
// into one report via analyze::merge_results, byte-identical to an offline
// multi-dir `er_print -J` over the same events. Completed sessions are
// retained up to ServerOptions::retain_sessions; beyond the cap the oldest
// is evicted (aggregates and rendering context freed, accounting counters
// kept, obs serve.sessions.retained / serve.sessions.evicted updated).
// The Stats frame carries, next to the cumulative totals, a rolling
// time-windowed self-profile (stats_window_ms) — deltas and event rate
// over the trailing window, for always-on monitoring.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "analyze/reduction.hpp"
#include "serve/transport.hpp"
#include "serve/wire.hpp"

namespace dsprof::serve {

struct ServerOptions {
  /// Bounded per-session batch queue (the backpressure window).
  size_t max_queued_batches = 64;

  enum class Overload { DropOldest, Block };
  Overload overload = Overload::DropOldest;

  /// Reject event batches larger than this many events (0 = no cap).
  size_t max_batch_events = 0;

  /// Fold batches inline in the reader thread when the reducer is idle and
  /// the queue is empty (see the header comment). Off forces every batch
  /// through the bounded queue — the pre-fast-path behavior.
  bool direct_fold = true;

  /// Test seam: called by the reducer thread before each fold. Stalling
  /// here makes the queue overflow deterministically (overload tests).
  std::function<void(u64 session_id)> before_reduce;

  /// Completed sessions retained for the merged fleet view. Beyond the cap
  /// the oldest completed session is *evicted*: its aggregates and
  /// rendering context are freed (the bulk of a session's memory) and it
  /// drops out of merged snapshots; its accounting counters stay, so the
  /// cumulative Stats totals never move backwards. 0 retains nothing.
  size_t retain_sessions = 64;

  /// Rolling window of the self-profile endpoint: the Stats frame reports,
  /// next to the cumulative totals, the deltas and event rate over the
  /// trailing window (sampled at each Stats request and session
  /// finalization). 0 disables the window fields' motion (they stay 0).
  u64 stats_window_ms = 60'000;
};

/// Aggregated introspection counters (the Stats frame payload).
struct ServerStats {
  u64 sessions_total = 0;
  u64 sessions_active = 0;
  u64 frames_in = 0;
  u64 batches_in = 0;
  u64 events_in = 0;
  u64 events_reduced = 0;
  u64 events_dropped = 0;
  u64 snapshots = 0;
  u64 max_queue_depth = 0;
  u64 reduce_calls = 0;
  u64 reduce_ns = 0;  // cumulative wall time inside fold()
  u64 direct_folds = 0;  // batches folded inline by the reader (queue-free)
  u64 sessions_retained = 0;  // completed sessions still mergeable
  u64 sessions_evicted = 0;   // completed sessions freed past the cap

  // Rolling-window self-profile (ServerOptions::stats_window_ms): deltas of
  // the cumulative counters over the trailing window, plus the event rate.
  u64 window_ms = 0;
  u64 window_sessions = 0;
  u64 window_events_in = 0;
  u64 window_events_reduced = 0;
  u64 window_events_dropped = 0;
  u64 window_snapshots = 0;
  double window_events_per_sec = 0.0;

  std::string to_json() const;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Adopt a connected transport as a new session (threads start
  /// immediately). Returns the session id the HelloAck will carry.
  u64 add_session(std::unique_ptr<Transport> transport);

  /// Accept loop over any listener (Unix-domain or TCP); returns when the
  /// listener is closed or stop() is called. Each accepted connection
  /// becomes a session.
  void serve(Listener& listener);

  /// The fleet view: merge every retained session's live aggregates —
  /// completed and in-flight — and render one multi-experiment JSON report,
  /// byte-identical to an offline multi-dir `er_print a b … -J` over the
  /// same events (reduction.hpp::merge_results documents why). Takes a
  /// consistent cut: each included session is held quiescent (queue
  /// drained, reducer idle) while its aggregates are copied, so no fold is
  /// ever torn across the merge. `acct` sums the included sessions'
  /// accounting triples. Refused when no session has completed a Hello.
  Status merged_report(std::string& json, Accounting& acct);

  /// Block until session `id` has finalized (client closed/disconnected).
  void wait_session(u64 id);

  /// Block until every session so far has finalized.
  void wait_all();

  /// Shut down every session (transports included) and join all threads.
  void stop();

  size_t active_sessions() const;
  ServerStats stats() const;

 private:
  struct Session;

  void reader_main(Session& s);
  void reducer_main(Session& s);
  void finalize(Session& s);
  ServerStats stats_locked() const;
  /// Evict completed sessions beyond retain_sessions; callers hold mu_.
  void evict_locked();

  ServerOptions opt_;
  mutable std::mutex mu_;
  std::condition_variable session_done_cv_;
  std::vector<std::unique_ptr<Session>> sessions_;
  u64 next_session_id_ = 1;
  u64 sessions_evicted_ = 0;  // guarded by mu_
  std::atomic<bool> stopping_{false};

  /// Rolling-window samples of the cumulative counters (guarded by mu_;
  /// mutable so the const stats() endpoint can advance the window).
  struct WindowPoint {
    u64 t_ns = 0;
    u64 sessions_total = 0;
    u64 events_in = 0;
    u64 events_reduced = 0;
    u64 events_dropped = 0;
    u64 snapshots = 0;
  };
  mutable std::deque<WindowPoint> window_;
};

}  // namespace dsprof::serve
