// dsprofd: the profiling daemon (DESIGN.md §3.3).
//
// A Server owns any number of concurrent Sessions, one per connected
// collector client. Each session runs two threads:
//
//   reader   recv bytes -> FrameReader -> decode frames. Control frames
//            (Flush/SnapshotReq/StatsReq/Close) are answered inline;
//            EventBatch/Alloc frames are validated and enqueued.
//   reducer  pops decoded batches from a bounded queue and folds them into
//            an IncrementalReducer (analyze/reduction.hpp) — the *online*
//            aggregates. Because the fold accumulates integer weights, the
//            live aggregates after any batch split are bit-identical to one
//            offline reduction over the same events (the serve subsystem's
//            central invariant; tests/serve_test.cpp proves it property-
//            style, tests/integration_test.cpp on the MCF workload).
//
// Queue-free fast path: when `direct_fold` is on (the default) and the
// reducer keeps up — queue empty, reducer idle, no before_reduce seam
// installed — the reader folds a decoded batch inline instead of paying the
// enqueue/wake/dequeue hop. The `reducing` flag is held while it folds, so
// the reducer thread, drain barrier and accounting are untouched; under
// backlog the batch takes the queued path with the exact same overload and
// drop accounting as before. Folds are still strictly ordered (one fold at
// a time per session), so aggregates remain bit-identical either way.
//
// Overload: the batch queue holds at most `max_queued_batches`. When the
// reducer falls behind, the policy decides:
//
//   DropOldest  (default) evict the oldest queued batch and count its
//               events as dropped. Snapshots stay available under overload
//               and the loss is surfaced: the accounting triple satisfies
//               events_in == events_reduced + events_dropped exactly, and
//               the JSON report grows a "(Dropped)" row (reports.hpp).
//   Block       the reader stops reading; backpressure propagates through
//               the transport to the client's send() (a full pipe/socket),
//               which either waits or times out and retries. No loss.
//
// Snapshot protocol: SnapshotReq first *drains* (waits until the queue is
// empty and the reducer is idle), then renders views from a deep copy of
// the live aggregates via Analysis's precomputed-result constructor. The
// drain barrier means a client that sends batches then SnapshotReq sees
// every event it sent (minus accounted drops) — no torn reads, because the
// copy is taken between folds, never during one.
//
// Disconnect mid-batch: the partial frame buffered in the FrameReader is
// discarded, complete frames already queued are still folded, and the
// session finalizes with the accounting invariant intact.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "analyze/reduction.hpp"
#include "serve/transport.hpp"
#include "serve/wire.hpp"

namespace dsprof::serve {

struct ServerOptions {
  /// Bounded per-session batch queue (the backpressure window).
  size_t max_queued_batches = 64;

  enum class Overload { DropOldest, Block };
  Overload overload = Overload::DropOldest;

  /// Reject event batches larger than this many events (0 = no cap).
  size_t max_batch_events = 0;

  /// Fold batches inline in the reader thread when the reducer is idle and
  /// the queue is empty (see the header comment). Off forces every batch
  /// through the bounded queue — the pre-fast-path behavior.
  bool direct_fold = true;

  /// Test seam: called by the reducer thread before each fold. Stalling
  /// here makes the queue overflow deterministically (overload tests).
  std::function<void(u64 session_id)> before_reduce;
};

/// Aggregated introspection counters (the Stats frame payload).
struct ServerStats {
  u64 sessions_total = 0;
  u64 sessions_active = 0;
  u64 frames_in = 0;
  u64 batches_in = 0;
  u64 events_in = 0;
  u64 events_reduced = 0;
  u64 events_dropped = 0;
  u64 snapshots = 0;
  u64 max_queue_depth = 0;
  u64 reduce_calls = 0;
  u64 reduce_ns = 0;  // cumulative wall time inside fold()
  u64 direct_folds = 0;  // batches folded inline by the reader (queue-free)

  std::string to_json() const;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Adopt a connected transport as a new session (threads start
  /// immediately). Returns the session id the HelloAck will carry.
  u64 add_session(std::unique_ptr<Transport> transport);

  /// Accept loop over a Unix-domain listener; returns when the listener is
  /// closed or stop() is called. Each accepted connection becomes a session.
  void serve(UdsListener& listener);

  /// Block until session `id` has finalized (client closed/disconnected).
  void wait_session(u64 id);

  /// Block until every session so far has finalized.
  void wait_all();

  /// Shut down every session (transports included) and join all threads.
  void stop();

  size_t active_sessions() const;
  ServerStats stats() const;

 private:
  struct Session;

  void reader_main(Session& s);
  void reducer_main(Session& s);
  void finalize(Session& s);
  ServerStats stats_locked() const;

  ServerOptions opt_;
  mutable std::mutex mu_;
  std::condition_variable session_done_cv_;
  std::vector<std::unique_ptr<Session>> sessions_;
  u64 next_session_id_ = 1;
  std::atomic<bool> stopping_{false};
};

}  // namespace dsprof::serve
