// Error model for the serve subsystem (dsprofd).
//
// Everything inside src/serve/ reports failures by value: a Status carries a
// machine-checkable code plus a human-readable message. The rest of dsprof
// throws dsprof::Error for violated invariants — appropriate for an offline
// analyzer where a corrupt experiment file is fatal — but a long-lived daemon
// must survive a hostile or broken client: a truncated frame, a bad magic, an
// oversized length prefix, or a mid-batch disconnect tears down *that
// session* with a clean error, never the server. The wire decoders therefore
// catch the bytestream layer's Error and convert it to Status::Malformed at
// the subsystem boundary.
#pragma once

#include <string>

#include "support/common.hpp"

namespace dsprof::serve {

enum class StatusCode : u8 {
  Ok = 0,
  Timeout,        // recv deadline expired (caller may retry)
  Disconnected,   // peer closed or shut down the transport
  BadMagic,       // frame header magic mismatch
  BadVersion,     // unsupported protocol version
  FrameTooLarge,  // length prefix exceeds the payload cap
  Malformed,      // payload failed to decode (truncated, corrupt)
  Overloaded,     // server refused work due to backpressure policy
  Refused,        // protocol violation (e.g. batch before handshake)
  IoError,        // OS-level transport failure
};

const char* status_code_name(StatusCode c);

struct [[nodiscard]] Status {
  StatusCode code = StatusCode::Ok;
  std::string message;

  bool ok() const { return code == StatusCode::Ok; }
  /// Timeouts are the one transient failure: clients retry them with
  /// backoff; every other non-Ok code is terminal for the attempt.
  bool retryable() const { return code == StatusCode::Timeout; }

  std::string to_string() const {
    std::string s = status_code_name(code);
    if (!message.empty()) s += ": " + message;
    return s;
  }

  static Status make(StatusCode c, std::string msg) { return {c, std::move(msg)}; }
};

inline Status ok_status() { return {}; }

}  // namespace dsprof::serve
