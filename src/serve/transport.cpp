#include "serve/transport.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <poll.h>
#include <vector>

namespace dsprof::serve {

// --- in-process pipe --------------------------------------------------------

namespace {

/// One direction of the pipe: a bounded byte queue with blocking producer
/// and consumer sides. shutdown() wakes both.
class PipeDuct {
 public:
  explicit PipeDuct(size_t capacity) : capacity_(capacity) {}

  Status send(const u8* data, size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    size_t off = 0;
    while (off < n) {
      space_cv_.wait(lock, [&] { return closed_ || bytes_.size() < capacity_; });
      if (closed_) return Status::make(StatusCode::Disconnected, "pipe closed");
      const size_t room = capacity_ - bytes_.size();
      const size_t take = std::min(room, n - off);
      bytes_.insert(bytes_.end(), data + off, data + off + take);
      off += take;
      data_cv_.notify_all();
    }
    return {};
  }

  Status recv_some(u8* buf, size_t cap, size_t& got, int timeout_ms) {
    got = 0;
    std::unique_lock<std::mutex> lock(mu_);
    const auto ready = [&] { return closed_ || !bytes_.empty(); };
    if (timeout_ms < 0) {
      data_cv_.wait(lock, ready);
    } else if (!data_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready)) {
      return Status::make(StatusCode::Timeout, "pipe recv timed out");
    }
    if (bytes_.empty()) {
      // closed_ must be set (ready() held with no data).
      return Status::make(StatusCode::Disconnected, "pipe closed");
    }
    const size_t take = std::min(cap, bytes_.size());
    std::copy(bytes_.begin(), bytes_.begin() + take, buf);
    bytes_.erase(bytes_.begin(), bytes_.begin() + take);
    got = take;
    space_cv_.notify_all();
    return {};
  }

  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    data_cv_.notify_all();
    space_cv_.notify_all();
  }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable data_cv_;   // consumer waits: data or close
  std::condition_variable space_cv_;  // producer waits: space or close
  std::deque<u8> bytes_;
  bool closed_ = false;
};

class PipeTransport final : public Transport {
 public:
  PipeTransport(std::shared_ptr<PipeDuct> out, std::shared_ptr<PipeDuct> in)
      : out_(std::move(out)), in_(std::move(in)) {}
  ~PipeTransport() override { shutdown(); }

  Status send(const u8* data, size_t n) override { return out_->send(data, n); }
  Status recv_some(u8* buf, size_t cap, size_t& got, int timeout_ms) override {
    return in_->recv_some(buf, cap, got, timeout_ms);
  }
  void shutdown() override {
    out_->close();
    in_->close();
  }

 private:
  std::shared_ptr<PipeDuct> out_;
  std::shared_ptr<PipeDuct> in_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> make_pipe_pair(
    size_t capacity) {
  auto a_to_b = std::make_shared<PipeDuct>(capacity);
  auto b_to_a = std::make_shared<PipeDuct>(capacity);
  auto a = std::make_unique<PipeTransport>(a_to_b, b_to_a);
  auto b = std::make_unique<PipeTransport>(b_to_a, a_to_b);
  return {std::move(a), std::move(b)};
}

// --- unix-domain sockets ----------------------------------------------------

namespace {

class UdsTransport final : public Transport {
 public:
  explicit UdsTransport(int fd) : fd_(fd) {}
  ~UdsTransport() override {
    shutdown();
    if (fd_ >= 0) ::close(fd_);
  }

  Status send(const u8* data, size_t n) override {
    size_t off = 0;
    while (off < n) {
      const ssize_t w = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EPIPE || errno == ECONNRESET)
          return Status::make(StatusCode::Disconnected, "peer closed");
        return Status::make(StatusCode::IoError, std::string("send: ") + std::strerror(errno));
      }
      off += static_cast<size_t>(w);
    }
    return {};
  }

  Status recv_some(u8* buf, size_t cap, size_t& got, int timeout_ms) override {
    got = 0;
    struct pollfd pfd {fd_, POLLIN, 0};
    for (;;) {
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return Status::make(StatusCode::IoError, std::string("poll: ") + std::strerror(errno));
      }
      if (pr == 0) return Status::make(StatusCode::Timeout, "socket recv timed out");
      break;
    }
    for (;;) {
      const ssize_t r = ::recv(fd_, buf, cap, 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == ECONNRESET)
          return Status::make(StatusCode::Disconnected, "peer reset");
        return Status::make(StatusCode::IoError, std::string("recv: ") + std::strerror(errno));
      }
      if (r == 0) return Status::make(StatusCode::Disconnected, "peer closed");
      got = static_cast<size_t>(r);
      return {};
    }
  }

  void shutdown() override {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

 private:
  int fd_;
};

}  // namespace

UdsListener::UdsListener(const std::string& path) : path_(path) {
  DSP_CHECK(path.size() < sizeof(sockaddr_un{}.sun_path), "socket path too long");
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  DSP_CHECK(fd_ >= 0, std::string("socket: ") + std::strerror(errno));
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    fail("bind " + path + ": " + err);
  }
  if (::listen(fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    fail("listen " + path + ": " + err);
  }
}

UdsListener::~UdsListener() { close(); }

std::unique_ptr<Transport> UdsListener::accept(Status& status, int timeout_ms) {
  status = {};
  if (fd_ < 0) {
    status = Status::make(StatusCode::Disconnected, "listener closed");
    return nullptr;
  }
  struct pollfd pfd {fd_, POLLIN, 0};
  for (;;) {
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      status = Status::make(StatusCode::IoError, std::string("poll: ") + std::strerror(errno));
      return nullptr;
    }
    if (pr == 0) {
      status = Status::make(StatusCode::Timeout, "accept timed out");
      return nullptr;
    }
    break;
  }
  const int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) {
    status = Status::make(fd_ < 0 ? StatusCode::Disconnected : StatusCode::IoError,
                          std::string("accept: ") + std::strerror(errno));
    return nullptr;
  }
  return std::make_unique<UdsTransport>(cfd);
}

void UdsListener::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
    ::unlink(path_.c_str());
  }
}

std::unique_ptr<Transport> uds_connect(const std::string& path, Status& status) {
  status = {};
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    status = Status::make(StatusCode::IoError, "socket path too long");
    return nullptr;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    status = Status::make(StatusCode::IoError, std::string("socket: ") + std::strerror(errno));
    return nullptr;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    status = Status::make(StatusCode::IoError,
                          "connect " + path + ": " + std::strerror(errno));
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<UdsTransport>(fd);
}

}  // namespace dsprof::serve
