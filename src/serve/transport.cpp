#include "serve/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace dsprof::serve {

// --- in-process pipe --------------------------------------------------------

namespace {

/// One direction of the pipe: a bounded byte queue with blocking producer
/// and consumer sides. shutdown() wakes both.
class PipeDuct {
 public:
  explicit PipeDuct(size_t capacity) : capacity_(capacity) {}

  Status send(const u8* data, size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    size_t off = 0;
    while (off < n) {
      space_cv_.wait(lock, [&] { return closed_ || bytes_.size() < capacity_; });
      if (closed_) return Status::make(StatusCode::Disconnected, "pipe closed");
      const size_t room = capacity_ - bytes_.size();
      const size_t take = std::min(room, n - off);
      bytes_.insert(bytes_.end(), data + off, data + off + take);
      off += take;
      data_cv_.notify_all();
    }
    return {};
  }

  Status recv_some(u8* buf, size_t cap, size_t& got, int timeout_ms) {
    got = 0;
    std::unique_lock<std::mutex> lock(mu_);
    const auto ready = [&] { return closed_ || !bytes_.empty(); };
    if (timeout_ms < 0) {
      data_cv_.wait(lock, ready);
    } else if (!data_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready)) {
      return Status::make(StatusCode::Timeout, "pipe recv timed out");
    }
    if (bytes_.empty()) {
      // closed_ must be set (ready() held with no data).
      return Status::make(StatusCode::Disconnected, "pipe closed");
    }
    const size_t take = std::min(cap, bytes_.size());
    std::copy(bytes_.begin(), bytes_.begin() + take, buf);
    bytes_.erase(bytes_.begin(), bytes_.begin() + take);
    got = take;
    space_cv_.notify_all();
    return {};
  }

  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    data_cv_.notify_all();
    space_cv_.notify_all();
  }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable data_cv_;   // consumer waits: data or close
  std::condition_variable space_cv_;  // producer waits: space or close
  std::deque<u8> bytes_;
  bool closed_ = false;
};

class PipeTransport final : public Transport {
 public:
  PipeTransport(std::shared_ptr<PipeDuct> out, std::shared_ptr<PipeDuct> in)
      : out_(std::move(out)), in_(std::move(in)) {}
  ~PipeTransport() override { shutdown(); }

  Status send(const u8* data, size_t n) override { return out_->send(data, n); }
  Status recv_some(u8* buf, size_t cap, size_t& got, int timeout_ms) override {
    return in_->recv_some(buf, cap, got, timeout_ms);
  }
  void shutdown() override {
    out_->close();
    in_->close();
  }

 private:
  std::shared_ptr<PipeDuct> out_;
  std::shared_ptr<PipeDuct> in_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> make_pipe_pair(
    size_t capacity) {
  auto a_to_b = std::make_shared<PipeDuct>(capacity);
  auto b_to_a = std::make_shared<PipeDuct>(capacity);
  auto a = std::make_unique<PipeTransport>(a_to_b, b_to_a);
  auto b = std::make_unique<PipeTransport>(b_to_a, a_to_b);
  return {std::move(a), std::move(b)};
}

// --- stream sockets (Unix-domain and TCP) -----------------------------------

namespace {

/// One connected SOCK_STREAM fd; both socket flavors get identical send
/// (all-or-fail, blocks on a full buffer), poll-based recv timeout, and
/// shutdown semantics — the wire protocol sees no difference between a
/// local and a remote peer.
class FdTransport final : public Transport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}
  ~FdTransport() override {
    shutdown();
    if (fd_ >= 0) ::close(fd_);
  }

  Status send(const u8* data, size_t n) override {
    size_t off = 0;
    while (off < n) {
      const ssize_t w = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EPIPE || errno == ECONNRESET)
          return Status::make(StatusCode::Disconnected, "peer closed");
        return Status::make(StatusCode::IoError, std::string("send: ") + std::strerror(errno));
      }
      off += static_cast<size_t>(w);
    }
    return {};
  }

  Status recv_some(u8* buf, size_t cap, size_t& got, int timeout_ms) override {
    got = 0;
    struct pollfd pfd {fd_, POLLIN, 0};
    for (;;) {
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return Status::make(StatusCode::IoError, std::string("poll: ") + std::strerror(errno));
      }
      if (pr == 0) return Status::make(StatusCode::Timeout, "socket recv timed out");
      break;
    }
    for (;;) {
      const ssize_t r = ::recv(fd_, buf, cap, 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == ECONNRESET)
          return Status::make(StatusCode::Disconnected, "peer reset");
        return Status::make(StatusCode::IoError, std::string("recv: ") + std::strerror(errno));
      }
      if (r == 0) return Status::make(StatusCode::Disconnected, "peer closed");
      got = static_cast<size_t>(r);
      return {};
    }
  }

  void shutdown() override {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

 private:
  int fd_;
};

/// Small control frames must not queue behind event batches; Nagle off.
void set_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Shared poll-then-accept loop for both listener flavors.
int poll_accept(int listen_fd, Status& status, int timeout_ms) {
  struct pollfd pfd {listen_fd, POLLIN, 0};
  for (;;) {
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      status = Status::make(StatusCode::IoError, std::string("poll: ") + std::strerror(errno));
      return -1;
    }
    if (pr == 0) {
      status = Status::make(StatusCode::Timeout, "accept timed out");
      return -1;
    }
    break;
  }
  const int cfd = ::accept(listen_fd, nullptr, nullptr);
  if (cfd < 0) {
    status = Status::make(listen_fd < 0 ? StatusCode::Disconnected : StatusCode::IoError,
                          std::string("accept: ") + std::strerror(errno));
  }
  return cfd;
}

}  // namespace

UdsListener::UdsListener(const std::string& path) : path_(path) {
  DSP_CHECK(path.size() < sizeof(sockaddr_un{}.sun_path), "socket path too long");
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  DSP_CHECK(fd_ >= 0, std::string("socket: ") + std::strerror(errno));
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    fail("bind " + path + ": " + err);
  }
  if (::listen(fd_, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    fail("listen " + path + ": " + err);
  }
}

UdsListener::~UdsListener() { close(); }

std::unique_ptr<Transport> UdsListener::accept(Status& status, int timeout_ms) {
  status = {};
  if (fd_ < 0) {
    status = Status::make(StatusCode::Disconnected, "listener closed");
    return nullptr;
  }
  const int cfd = poll_accept(fd_, status, timeout_ms);
  if (cfd < 0) return nullptr;
  return std::make_unique<FdTransport>(cfd);
}

void UdsListener::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
    ::unlink(path_.c_str());
  }
}

std::unique_ptr<Transport> uds_connect(const std::string& path, Status& status) {
  status = {};
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    status = Status::make(StatusCode::IoError, "socket path too long");
    return nullptr;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    status = Status::make(StatusCode::IoError, std::string("socket: ") + std::strerror(errno));
    return nullptr;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    status = Status::make(StatusCode::IoError,
                          "connect " + path + ": " + std::strerror(errno));
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<FdTransport>(fd);
}

// --- TCP --------------------------------------------------------------------

TcpListener::TcpListener(const std::string& host, u16 port) : host_(host), port_(port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  DSP_CHECK(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
            "bad TCP host '" + host + "' (numeric IPv4 expected)");
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  DSP_CHECK(fd_ >= 0, std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    fail("bind tcp://" + host + ":" + std::to_string(port) + ": " + err);
  }
  if (::listen(fd_, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    fail("listen tcp://" + host + ":" + std::to_string(port) + ": " + err);
  }
  // Ephemeral-port request (port 0): report what the kernel picked.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
}

TcpListener::~TcpListener() { close(); }

std::unique_ptr<Transport> TcpListener::accept(Status& status, int timeout_ms) {
  status = {};
  if (fd_ < 0) {
    status = Status::make(StatusCode::Disconnected, "listener closed");
    return nullptr;
  }
  const int cfd = poll_accept(fd_, status, timeout_ms);
  if (cfd < 0) return nullptr;
  set_nodelay(cfd);
  return std::make_unique<FdTransport>(cfd);
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

std::string TcpListener::endpoint() const {
  return "tcp://" + host_ + ":" + std::to_string(port_);
}

std::unique_ptr<Transport> tcp_connect(const std::string& host, u16 port, Status& status,
                                       int timeout_ms) {
  status = {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    status = Status::make(StatusCode::IoError,
                          "bad TCP host '" + host + "' (numeric IPv4 expected)");
    return nullptr;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    status = Status::make(StatusCode::IoError, std::string("socket: ") + std::strerror(errno));
    return nullptr;
  }
  const std::string where = "tcp://" + host + ":" + std::to_string(port);
  if (timeout_ms >= 0) {
    // Bounded connect: non-blocking connect, poll for writability, then
    // read SO_ERROR for the real outcome and restore blocking mode.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno == EINPROGRESS) {
      struct pollfd pfd {fd, POLLOUT, 0};
      int pr;
      do {
        pr = ::poll(&pfd, 1, timeout_ms);
      } while (pr < 0 && errno == EINTR);
      if (pr == 0) {
        status = Status::make(StatusCode::Timeout, "connect " + where + ": timed out");
        ::close(fd);
        return nullptr;
      }
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      if (pr < 0 || ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 || soerr != 0) {
        status = Status::make(StatusCode::IoError,
                              "connect " + where + ": " +
                                  std::strerror(soerr != 0 ? soerr : errno));
        ::close(fd);
        return nullptr;
      }
      rc = 0;
    }
    if (rc != 0) {
      status = Status::make(StatusCode::IoError,
                            "connect " + where + ": " + std::strerror(errno));
      ::close(fd);
      return nullptr;
    }
    (void)::fcntl(fd, F_SETFL, flags);
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    status = Status::make(StatusCode::IoError,
                          "connect " + where + ": " + std::strerror(errno));
    ::close(fd);
    return nullptr;
  }
  set_nodelay(fd);
  return std::make_unique<FdTransport>(fd);
}

// --- endpoint URIs ----------------------------------------------------------

Status parse_endpoint(const std::string& uri, Endpoint& out) {
  out = {};
  if (uri.empty()) return Status::make(StatusCode::Refused, "empty endpoint");
  if (uri.rfind("unix://", 0) == 0) {
    out.kind = Endpoint::Kind::Unix;
    out.path = uri.substr(7);
    if (out.path.empty())
      return Status::make(StatusCode::Refused, "empty unix:// socket path");
    return {};
  }
  if (uri.rfind("tcp://", 0) == 0) {
    const std::string rest = uri.substr(6);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0)
      return Status::make(StatusCode::Refused,
                          "tcp endpoint '" + uri + "' wants tcp://host:port");
    out.kind = Endpoint::Kind::Tcp;
    out.host = rest.substr(0, colon);
    const std::string port_s = rest.substr(colon + 1);
    char* end = nullptr;
    const unsigned long p = std::strtoul(port_s.c_str(), &end, 10);
    if (port_s.empty() || end == nullptr || *end != '\0' || p > 65535)
      return Status::make(StatusCode::Refused, "bad tcp port '" + port_s + "'");
    out.port = static_cast<u16>(p);
    return {};
  }
  if (uri.find("://") != std::string::npos)
    return Status::make(StatusCode::Refused,
                        "unknown endpoint scheme in '" + uri + "' (tcp:// or unix://)");
  // Bare path: the historic --socket form.
  out.kind = Endpoint::Kind::Unix;
  out.path = uri;
  return {};
}

std::unique_ptr<Listener> make_listener(const std::string& uri) {
  Endpoint ep;
  const Status st = parse_endpoint(uri, ep);
  DSP_CHECK(st.ok(), st.message);
  if (ep.kind == Endpoint::Kind::Tcp)
    return std::make_unique<TcpListener>(ep.host, ep.port);
  return std::make_unique<UdsListener>(ep.path);
}

std::unique_ptr<Transport> connect_endpoint(const std::string& uri, Status& status,
                                            int timeout_ms) {
  Endpoint ep;
  status = parse_endpoint(uri, ep);
  if (!status.ok()) return nullptr;
  if (ep.kind == Endpoint::Kind::Tcp)
    return tcp_connect(ep.host, ep.port, status, timeout_ms);
  return uds_connect(ep.path, status);
}

std::unique_ptr<Transport> connect_with_retry(const std::string& uri, Status& status,
                                              ConnectRetry retry) {
  unsigned backoff = retry.backoff_ms;
  for (unsigned attempt = 0;; ++attempt) {
    auto t = connect_endpoint(uri, status, retry.timeout_ms);
    if (t) return t;
    // A malformed URI never becomes connectable; only I/O failures retry.
    if (status.code == StatusCode::Refused) return nullptr;
    if (attempt + 1 >= retry.attempts) return nullptr;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    backoff *= 2;
  }
}

}  // namespace dsprof::serve
