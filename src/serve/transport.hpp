// Byte transports for the dsprofd wire protocol.
//
// Three implementations behind one interface:
//
//   * PipeTransport — an in-process, bidirectional byte pipe built on two
//     bounded chunk queues. Hermetic (no OS sockets), so the whole
//     client/server stack runs inside one test process under ASan/TSan.
//     The bounded capacity is real backpressure: when the daemon stops
//     draining (e.g. the test stalls the reducer), the client's send()
//     blocks exactly like a full socket buffer would.
//
//   * Unix-domain sockets — UdsListener::accept() / uds_connect() for a
//     single-host dsprofd + dsprof_send pair. SIGPIPE is avoided via
//     MSG_NOSIGNAL.
//
//   * TCP sockets — TcpListener::accept() / tcp_connect() for fleet-scale
//     deployment: one dsprofd aggregating collectors across hosts. Both
//     socket flavors share one fd-based Transport (identical backpressure,
//     poisoning and drop-accounting semantics — a full socket buffer blocks
//     send() either way); TCP additionally sets TCP_NODELAY so small
//     control frames (Flush/SnapshotReq) are not Nagle-delayed behind
//     event batches.
//
// Semantics shared by all:
//   send()      writes all n bytes or fails; blocks on backpressure.
//   recv_some() returns at least 1 byte, or Timeout after timeout_ms
//               (timeout_ms < 0 = block forever), or Disconnected once the
//               peer has closed AND the stream is drained.
//   shutdown()  unblocks both directions; subsequent I/O on either end
//               completes with Disconnected. Safe to call from any thread
//               (that is how the server interrupts a blocked reader).
//
// Endpoint URIs pick a transport at run time (dsprofd --listen,
// dsprof_send --connect):
//   tcp://host:port   TCP (numeric IPv4 host; port 0 = ephemeral when
//                     listening — TcpListener::port() reports the choice)
//   unix://path       Unix-domain socket
//   path              bare paths mean unix:// (backward compatible)
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "serve/status.hpp"

namespace dsprof::serve {

class Transport {
 public:
  virtual ~Transport() = default;
  virtual Status send(const u8* data, size_t n) = 0;
  virtual Status recv_some(u8* buf, size_t cap, size_t& got, int timeout_ms) = 0;
  virtual void shutdown() = 0;
};

/// Create a connected in-process pair (client end, server end). `capacity`
/// bounds each direction's buffered bytes — the backpressure knob.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> make_pipe_pair(
    size_t capacity = 1u << 20);

/// A listening socket of either flavor; Server::serve() accepts over this
/// interface, so the daemon is transport-agnostic.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Accept one connection; nullptr with non-Ok status on timeout/close.
  /// timeout_ms < 0 blocks until a client arrives or close() is called.
  virtual std::unique_ptr<Transport> accept(Status& status, int timeout_ms = -1) = 0;

  /// Unblock accept() and stop listening.
  virtual void close() = 0;

  /// Canonical endpoint URI ("unix://path" / "tcp://host:port", with the
  /// real port when an ephemeral one was requested).
  virtual std::string endpoint() const = 0;
};

/// Listening Unix-domain socket. The path is unlinked on bind and on close.
class UdsListener final : public Listener {
 public:
  /// Bind and listen; throws dsprof::Error on failure (daemon startup is
  /// fail-fast — there is no session to degrade yet).
  explicit UdsListener(const std::string& path);
  ~UdsListener() override;
  UdsListener(const UdsListener&) = delete;
  UdsListener& operator=(const UdsListener&) = delete;

  std::unique_ptr<Transport> accept(Status& status, int timeout_ms = -1) override;
  void close() override;
  std::string endpoint() const override { return "unix://" + path_; }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Listening TCP socket (numeric IPv4 host, e.g. "127.0.0.1" or "0.0.0.0").
/// Port 0 requests an ephemeral port; port() reports the bound one.
class TcpListener final : public Listener {
 public:
  /// Bind and listen; throws dsprof::Error on failure (fail-fast, like
  /// UdsListener).
  TcpListener(const std::string& host, u16 port);
  ~TcpListener() override;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::unique_ptr<Transport> accept(Status& status, int timeout_ms = -1) override;
  void close() override;
  std::string endpoint() const override;

  u16 port() const { return port_; }
  const std::string& host() const { return host_; }

 private:
  std::string host_;
  u16 port_ = 0;
  int fd_ = -1;
};

/// Connect to a listening dsprofd socket.
std::unique_ptr<Transport> uds_connect(const std::string& path, Status& status);

/// Connect to a listening TCP dsprofd. `timeout_ms` bounds the connect
/// itself (< 0 = the OS default); TCP_NODELAY is set on success.
std::unique_ptr<Transport> tcp_connect(const std::string& host, u16 port, Status& status,
                                       int timeout_ms = -1);

// --- endpoint URIs ----------------------------------------------------------

struct Endpoint {
  enum class Kind { Unix, Tcp };
  Kind kind = Kind::Unix;
  std::string path;  // unix socket path
  std::string host;  // numeric IPv4 host
  u16 port = 0;
};

/// Parse "tcp://host:port", "unix://path" or a bare path (= unix).
Status parse_endpoint(const std::string& uri, Endpoint& out);

/// Listener for a URI; throws dsprof::Error on a malformed URI or a bind
/// failure (daemon startup is fail-fast).
std::unique_ptr<Listener> make_listener(const std::string& uri);

/// One connect attempt to a URI endpoint.
std::unique_ptr<Transport> connect_endpoint(const std::string& uri, Status& status,
                                            int timeout_ms = -1);

/// Connection retry policy for collectors racing daemon startup: retry the
/// connect with exponential backoff (mirrors ClientOptions' recv retry).
struct ConnectRetry {
  unsigned attempts = 5;    // total connect attempts
  unsigned backoff_ms = 20; // first sleep; doubles each retry
  int timeout_ms = 2000;    // per-attempt connect timeout (TCP)
};

/// Connect to a URI endpoint, retrying per `retry`. On failure returns
/// nullptr with the last attempt's status.
std::unique_ptr<Transport> connect_with_retry(const std::string& uri, Status& status,
                                              ConnectRetry retry = {});

}  // namespace dsprof::serve
