// Byte transports for the dsprofd wire protocol.
//
// Two implementations behind one interface:
//
//   * PipeTransport — an in-process, bidirectional byte pipe built on two
//     bounded chunk queues. Hermetic (no OS sockets), so the whole
//     client/server stack runs inside one test process under ASan/TSan.
//     The bounded capacity is real backpressure: when the daemon stops
//     draining (e.g. the test stalls the reducer), the client's send()
//     blocks exactly like a full socket buffer would.
//
//   * Unix-domain sockets — UdsListener::accept() / uds_connect() for the
//     dsprofd + dsprof_send CLI pair. SIGPIPE is avoided via MSG_NOSIGNAL.
//
// Semantics shared by both:
//   send()      writes all n bytes or fails; blocks on backpressure.
//   recv_some() returns at least 1 byte, or Timeout after timeout_ms
//               (timeout_ms < 0 = block forever), or Disconnected once the
//               peer has closed AND the stream is drained.
//   shutdown()  unblocks both directions; subsequent I/O on either end
//               completes with Disconnected. Safe to call from any thread
//               (that is how the server interrupts a blocked reader).
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "serve/status.hpp"

namespace dsprof::serve {

class Transport {
 public:
  virtual ~Transport() = default;
  virtual Status send(const u8* data, size_t n) = 0;
  virtual Status recv_some(u8* buf, size_t cap, size_t& got, int timeout_ms) = 0;
  virtual void shutdown() = 0;
};

/// Create a connected in-process pair (client end, server end). `capacity`
/// bounds each direction's buffered bytes — the backpressure knob.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> make_pipe_pair(
    size_t capacity = 1u << 20);

/// Listening Unix-domain socket. The path is unlinked on bind and on close.
class UdsListener {
 public:
  /// Bind and listen; throws dsprof::Error on failure (daemon startup is
  /// fail-fast — there is no session to degrade yet).
  explicit UdsListener(const std::string& path);
  ~UdsListener();
  UdsListener(const UdsListener&) = delete;
  UdsListener& operator=(const UdsListener&) = delete;

  /// Accept one connection; nullptr with non-Ok status on timeout/close.
  /// timeout_ms < 0 blocks until a client arrives or close() is called.
  std::unique_ptr<Transport> accept(Status& status, int timeout_ms = -1);

  /// Unblock accept() and stop listening.
  void close();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Connect to a listening dsprofd socket.
std::unique_ptr<Transport> uds_connect(const std::string& path, Status& status);

}  // namespace dsprof::serve
