#include "serve/wire.hpp"

#include <cstring>

namespace dsprof::serve {

const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::Ok: return "ok";
    case StatusCode::Timeout: return "timeout";
    case StatusCode::Disconnected: return "disconnected";
    case StatusCode::BadMagic: return "bad magic";
    case StatusCode::BadVersion: return "bad version";
    case StatusCode::FrameTooLarge: return "frame too large";
    case StatusCode::Malformed: return "malformed";
    case StatusCode::Overloaded: return "overloaded";
    case StatusCode::Refused: return "refused";
    case StatusCode::IoError: return "io error";
  }
  return "?";
}

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::Hello: return "Hello";
    case FrameType::HelloAck: return "HelloAck";
    case FrameType::EventBatch: return "EventBatch";
    case FrameType::Alloc: return "Alloc";
    case FrameType::Flush: return "Flush";
    case FrameType::FlushAck: return "FlushAck";
    case FrameType::SnapshotReq: return "SnapshotReq";
    case FrameType::Snapshot: return "Snapshot";
    case FrameType::StatsReq: return "StatsReq";
    case FrameType::Stats: return "Stats";
    case FrameType::Close: return "Close";
    case FrameType::CloseAck: return "CloseAck";
    case FrameType::Error: return "Error";
  }
  return "?";
}

std::vector<u8> encode_frame(FrameType type, const std::vector<u8>& payload, u16 flags) {
  DSP_CHECK(payload.size() <= kMaxPayload, "frame payload exceeds cap");
  ByteWriter w;
  w.put_u32(kWireMagic);
  w.put_u8(kWireVersion);
  w.put_u8(static_cast<u8>(type));
  w.put_u16(flags);
  w.put_u32(static_cast<u32>(payload.size()));
  std::vector<u8> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Status FrameReader::feed(const u8* data, size_t n) {
  if (poisoned_) return Status::make(StatusCode::Malformed, "frame stream already poisoned");
  buf_.insert(buf_.end(), data, data + n);
  for (;;) {
    if (buf_.size() < kFrameHeaderSize) return {};
    u32 magic = 0, len = 0;
    u16 flags = 0;
    std::memcpy(&magic, buf_.data(), 4);
    const u8 version = buf_[4];
    const u8 type = buf_[5];
    std::memcpy(&flags, buf_.data() + 6, 2);
    std::memcpy(&len, buf_.data() + 8, 4);
    if (magic != kWireMagic) {
      poisoned_ = true;
      return Status::make(StatusCode::BadMagic, "frame magic mismatch");
    }
    if (version != kWireVersion) {
      poisoned_ = true;
      return Status::make(StatusCode::BadVersion,
                          "protocol version " + std::to_string(version) + " unsupported");
    }
    if (len > max_payload_) {
      poisoned_ = true;
      return Status::make(StatusCode::FrameTooLarge,
                          "payload length " + std::to_string(len) + " exceeds cap");
    }
    if (buf_.size() < kFrameHeaderSize + len) return {};
    Frame f;
    f.type = static_cast<FrameType>(type);
    f.flags = flags;
    f.payload.assign(buf_.begin() + kFrameHeaderSize, buf_.begin() + kFrameHeaderSize + len);
    buf_.erase(buf_.begin(), buf_.begin() + kFrameHeaderSize + len);
    ready_.push_back(std::move(f));
    ++frames_decoded_;
  }
}

bool FrameReader::next_frame(Frame& out) {
  if (ready_.empty()) return false;
  out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

// --- payload codecs ---------------------------------------------------------

namespace {

/// Run a ByteReader decode body, converting bytestream underruns (thrown as
/// dsprof::Error by DSP_CHECK) into a clean Malformed status. This is the
/// subsystem boundary described in status.hpp.
template <typename Fn>
Status guarded_decode(const char* what, Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return Status::make(StatusCode::Malformed, std::string(what) + ": " + e.what());
  }
  return {};
}

}  // namespace

std::vector<u8> encode_hello(const HelloPayload& h) {
  ByteWriter w;
  w.put_string(h.client_name);
  h.image.serialize(w);
  w.put_u32(static_cast<u32>(h.counters.size()));
  for (const auto& c : h.counters) {
    w.put_u8(static_cast<u8>(c.event));
    w.put_u64(c.interval);
    w.put_u8(c.backtrack ? 1 : 0);
    w.put_u8(static_cast<u8>(c.pic));
    w.put_u8(static_cast<u8>(c.set));
  }
  w.put_u64(h.clock_interval);
  w.put_u64(h.clock_hz);
  w.put_u64(h.page_size);
  w.put_u64(h.ec_line_size);
  w.put_u64(h.total_cycles);
  w.put_u64(h.total_instructions);
  w.put_u32(static_cast<u32>(h.slices.size()));
  for (const auto& s : h.slices) {
    w.put_u64(s.live_cycles);
    w.put_u64(s.switches);
  }
  return w.take();
}

Status decode_hello(const std::vector<u8>& payload, HelloPayload& out) {
  return guarded_decode("hello", [&] {
    ByteReader r(payload);
    out.client_name = r.get_string();
    out.image = sym::Image::deserialize(r);
    const u32 n = r.get_u32();
    out.counters.clear();
    out.counters.reserve(n);
    for (u32 i = 0; i < n; ++i) {
      experiment::CounterSpec c;
      c.event = static_cast<machine::HwEvent>(r.get_u8());
      c.interval = r.get_u64();
      c.backtrack = r.get_u8() != 0;
      c.pic = r.get_u8();
      c.set = r.get_u8();
      out.counters.push_back(c);
    }
    out.clock_interval = r.get_u64();
    out.clock_hz = r.get_u64();
    out.page_size = r.get_u64();
    out.ec_line_size = r.get_u64();
    out.total_cycles = r.get_u64();
    out.total_instructions = r.get_u64();
    const u32 ns = r.get_u32();
    DSP_CHECK(ns <= machine::kNumHwEvents,
              "implausible slice-table set count " + std::to_string(ns) + " in hello");
    out.slices.clear();
    out.slices.reserve(ns);
    for (u32 i = 0; i < ns; ++i) {
      experiment::SliceInfo s;
      s.live_cycles = r.get_u64();
      s.switches = r.get_u64();
      out.slices.push_back(s);
    }
    DSP_CHECK(r.at_end(), "trailing bytes after hello payload");
  });
}

std::vector<u8> encode_hello_ack(u64 session_id) {
  ByteWriter w;
  w.put_u64(session_id);
  return w.take();
}

Status decode_hello_ack(const std::vector<u8>& payload, u64& session_id) {
  return guarded_decode("hello_ack", [&] {
    ByteReader r(payload);
    session_id = r.get_u64();
    DSP_CHECK(r.at_end(), "trailing bytes after hello_ack payload");
  });
}

// v4 frames always carry the set column (zero-filled when the client did
// not multiplex): the wire owes no byte-compat to v3, and an unconditional
// column keeps the codec single-layout.
std::vector<u8> encode_event_batch(const experiment::EventStore& events) {
  ByteWriter w;
  events.serialize_aligned(w, /*with_set=*/true);
  return w.take();
}

std::vector<u8> encode_event_batch(const experiment::EventStore& events, size_t begin,
                                   size_t end) {
  ByteWriter w;
  events.serialize_range_aligned(w, begin, end, /*with_set=*/true);
  return w.take();
}

Status decode_event_batch(std::vector<u8>&& payload, experiment::EventStore& out) {
  return guarded_decode("event batch", [&] {
    // Zero-copy: move the payload into shared storage and let the store's
    // column views point straight at it. The aligned layout guarantees the
    // u64/u32 columns sit on 8-byte offsets, and a heap vector's data() is
    // at least 8-aligned, so the views are properly aligned. Validation
    // (column-length agreement, every callstack handle) runs inside
    // deserialize_aligned before the views are adopted.
    const auto keep = std::make_shared<const std::vector<u8>>(std::move(payload));
    ByteReader r(*keep);
    out = experiment::EventStore::deserialize_aligned(r, keep, /*with_set=*/true);
    DSP_CHECK(r.at_end(), "trailing bytes after event batch payload");
  });
}

std::vector<u8> encode_allocs(const std::vector<machine::AllocRecord>& allocs) {
  ByteWriter w;
  w.put_u64(allocs.size());
  for (const auto& a : allocs) {
    w.put_u64(a.addr);
    w.put_u64(a.size);
    w.put_u64(a.site_pc);
  }
  return w.take();
}

Status decode_allocs(const std::vector<u8>& payload, std::vector<machine::AllocRecord>& out) {
  return guarded_decode("alloc log", [&] {
    ByteReader r(payload);
    const u64 n = r.get_u64();
    DSP_CHECK(n <= r.remaining() / 24, "alloc count exceeds payload");
    out.clear();
    out.reserve(n);
    for (u64 i = 0; i < n; ++i) {
      machine::AllocRecord a;
      a.addr = r.get_u64();
      a.size = r.get_u64();
      a.site_pc = r.get_u64();
      out.push_back(a);
    }
    DSP_CHECK(r.at_end(), "trailing bytes after alloc payload");
  });
}

namespace {

void put_accounting(ByteWriter& w, const Accounting& a) {
  w.put_u64(a.events_in);
  w.put_u64(a.events_reduced);
  w.put_u64(a.events_dropped);
}

void get_accounting(ByteReader& r, Accounting& a) {
  a.events_in = r.get_u64();
  a.events_reduced = r.get_u64();
  a.events_dropped = r.get_u64();
}

}  // namespace

std::vector<u8> encode_flush_ack(const Accounting& a) {
  ByteWriter w;
  put_accounting(w, a);
  return w.take();
}

Status decode_flush_ack(const std::vector<u8>& payload, Accounting& out) {
  return guarded_decode("flush_ack", [&] {
    ByteReader r(payload);
    get_accounting(r, out);
    DSP_CHECK(r.at_end(), "trailing bytes after flush_ack payload");
  });
}

std::vector<u8> encode_snapshot(const Accounting& a, const std::string& json_report) {
  ByteWriter w;
  put_accounting(w, a);
  w.put_string(json_report);
  return w.take();
}

Status decode_snapshot(const std::vector<u8>& payload, Accounting& a, std::string& json_report) {
  return guarded_decode("snapshot", [&] {
    ByteReader r(payload);
    get_accounting(r, a);
    json_report = r.get_string();
    DSP_CHECK(r.at_end(), "trailing bytes after snapshot payload");
  });
}

std::vector<u8> encode_stats(const std::string& json) {
  ByteWriter w;
  w.put_string(json);
  return w.take();
}

Status decode_stats(const std::vector<u8>& payload, std::string& json) {
  return guarded_decode("stats", [&] {
    ByteReader r(payload);
    json = r.get_string();
    DSP_CHECK(r.at_end(), "trailing bytes after stats payload");
  });
}

std::vector<u8> encode_error(const Status& s) {
  ByteWriter w;
  w.put_u8(static_cast<u8>(s.code));
  w.put_string(s.message);
  return w.take();
}

Status decode_error(const std::vector<u8>& payload, Status& out) {
  return guarded_decode("error frame", [&] {
    ByteReader r(payload);
    out.code = static_cast<StatusCode>(r.get_u8());
    out.message = r.get_string();
    DSP_CHECK(r.at_end(), "trailing bytes after error payload");
  });
}

}  // namespace dsprof::serve
